package multilogvc_test

import (
	"fmt"

	multilogvc "multilogvc"
)

// ExampleSystem_BuildGraph builds a small graph on the simulated SSD and
// runs BFS on the MultiLogVC engine.
func ExampleSystem_BuildGraph() {
	sys, _ := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 4096})
	// A 4-vertex cycle.
	edges := []multilogvc.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	}
	g, _ := sys.BuildGraph("cycle", edges, multilogvc.GraphOptions{})
	res, _ := g.Run(multilogvc.NewBFS(0), multilogvc.RunOptions{})
	fmt.Println("distances:", res.Values)
	// Output: distances: [0 1 2 3]
}

// ExampleGraph_Run compares engines: every engine returns identical
// results for the same program.
func ExampleGraph_Run() {
	sys, _ := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 4096})
	edges, _ := multilogvc.Grid(4, 4)
	g, _ := sys.BuildGraph("grid", edges, multilogvc.GraphOptions{})

	mlvc, _ := g.Run(multilogvc.NewWCC(), multilogvc.RunOptions{})
	chi, _ := g.Run(multilogvc.NewWCC(), multilogvc.RunOptions{Engine: multilogvc.EngineGraphChi})

	same := true
	for v := range mlvc.Values {
		if mlvc.Values[v] != chi.Values[v] {
			same = false
		}
	}
	fmt.Println("engines agree:", same)
	fmt.Println("components:", mlvc.Values[0], mlvc.Values[15])
	// Output:
	// engines agree: true
	// components: 0 0
}

// ExampleSystem_BuildWeightedGraph runs weighted shortest paths.
func ExampleSystem_BuildWeightedGraph() {
	sys, _ := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 4096})
	wedges := []multilogvc.WeightedEdge{
		{Src: 0, Dst: 1, Weight: 10},
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 2, Dst: 1, Weight: 2},
	}
	g, _ := sys.BuildWeightedGraph("w", wedges, multilogvc.GraphOptions{})
	res, _ := g.Run(multilogvc.NewSSSP(0), multilogvc.RunOptions{})
	fmt.Println("dist to 1:", res.Values[1]) // via 2: 1 + 2
	// Output: dist to 1: 3
}

// ExampleParseEngine shows the engine names accepted by the CLI tools.
func ExampleParseEngine() {
	for _, name := range []string{"multilogvc", "graphchi", "grafboost"} {
		e, _ := multilogvc.ParseEngine(name)
		fmt.Println(e)
	}
	// Output:
	// multilogvc
	// graphchi
	// grafboost
}
