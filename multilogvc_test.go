package multilogvc_test

import (
	"path/filepath"
	"testing"

	multilogvc "multilogvc"
)

func buildTestGraph(t *testing.T) *multilogvc.Graph {
	t.Helper()
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 512, Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	edges, err := multilogvc.RMAT(9, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sys.BuildGraph("g", edges, multilogvc.GraphOptions{
		NumVertices:  512,
		MemoryBudget: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g := buildTestGraph(t)
	if g.NumVertices() != 512 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.Intervals() < 2 {
		t.Fatalf("edges=%d intervals=%d", g.NumEdges(), g.Intervals())
	}
	res, err := g.Run(multilogvc.NewPageRank(), multilogvc.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 512 {
		t.Fatalf("values = %d", len(res.Values))
	}
	var total float64
	for _, v := range res.Values {
		total += multilogvc.PageRankValue(v)
	}
	if total <= 0 {
		t.Fatal("no rank mass")
	}
	if res.Report.Engine != "multilogvc" {
		t.Fatalf("engine = %s", res.Report.Engine)
	}
}

func TestAllEnginesAgreeViaPublicAPI(t *testing.T) {
	g := buildTestGraph(t)
	bfs := func() multilogvc.Program { return multilogvc.NewBFS(3) }
	base, err := g.Run(bfs(), multilogvc.RunOptions{Engine: multilogvc.EngineMultiLog, MaxSupersteps: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []multilogvc.Engine{multilogvc.EngineGraphChi, multilogvc.EngineGraFBoost} {
		res, err := g.Run(bfs(), multilogvc.RunOptions{Engine: eng, MaxSupersteps: 40})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		for v := range base.Values {
			if res.Values[v] != base.Values[v] {
				t.Fatalf("%v: value[%d] = %d, want %d", eng, v, res.Values[v], base.Values[v])
			}
		}
	}
}

func TestGraFBoostRejectsColoring(t *testing.T) {
	g := buildTestGraph(t)
	if _, err := g.Run(multilogvc.NewColoring(), multilogvc.RunOptions{Engine: multilogvc.EngineGraFBoost}); err == nil {
		t.Fatal("GraFBoost should reject non-combinable programs")
	}
	if _, err := g.Run(multilogvc.NewColoring(), multilogvc.RunOptions{Engine: multilogvc.EngineGraFBoostAdapted, MaxSupersteps: 20}); err != nil {
		t.Fatalf("adapted mode failed: %v", err)
	}
}

func TestParseEngine(t *testing.T) {
	cases := map[string]multilogvc.Engine{
		"":                  multilogvc.EngineMultiLog,
		"mlvc":              multilogvc.EngineMultiLog,
		"multilogvc":        multilogvc.EngineMultiLog,
		"graphchi":          multilogvc.EngineGraphChi,
		"grafboost":         multilogvc.EngineGraFBoost,
		"grafboost-adapted": multilogvc.EngineGraFBoostAdapted,
	}
	for name, want := range cases {
		got, err := multilogvc.ParseEngine(name)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := multilogvc.ParseEngine("zzz"); err == nil {
		t.Fatal("unknown engine should fail")
	}
	if multilogvc.EngineGraphChi.String() != "graphchi" {
		t.Fatal("String() wrong")
	}
}

func TestStructuralUpdatesViaPublicAPI(t *testing.T) {
	sys, _ := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 512, Channels: 2})
	edges := []multilogvc.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	g, err := sys.BuildGraph("g", edges, multilogvc.GraphOptions{NumVertices: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Connect 2 and 3 into the component, then BFS must reach them.
	for _, e := range [][2]uint32{{1, 2}, {2, 1}, {2, 3}, {3, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := g.Run(multilogvc.NewBFS(0), multilogvc.RunOptions{MaxSupersteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[3] != 3 {
		t.Fatalf("depth of 3 = %d, want 3", res.Values[3])
	}
	// The shard baseline sees the update too (edges slice maintained).
	res, err = g.Run(multilogvc.NewBFS(0), multilogvc.RunOptions{Engine: multilogvc.EngineGraphChi, MaxSupersteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[3] != 3 {
		t.Fatalf("graphchi depth of 3 = %d, want 3", res.Values[3])
	}
	if err := g.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	res, err = g.Run(multilogvc.NewBFS(0), multilogvc.RunOptions{MaxSupersteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[3] != multilogvc.BFSUnvisited {
		t.Fatalf("after removal, depth of 3 = %d, want unvisited", res.Values[3])
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	edges := []multilogvc.Edge{{Src: 0, Dst: 1}, {Src: 5, Dst: 2}}
	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := multilogvc.WriteEdgeListFile(path, edges); err != nil {
			t.Fatal(err)
		}
		got, err := multilogvc.ReadEdgeListFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[1] != edges[1] {
			t.Fatalf("%s round trip = %v", name, got)
		}
	}
	if _, err := multilogvc.ReadEdgeListFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestDiskBackedSystem(t *testing.T) {
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{
		PageSize: 512, Channels: 2, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	edges, _ := multilogvc.Grid(8, 8)
	g, err := sys.BuildGraph("grid", edges, multilogvc.GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(multilogvc.NewBFS(0), multilogvc.RunOptions{MaxSupersteps: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[63] != 14 {
		t.Fatalf("corner depth = %d, want 14", res.Values[63])
	}
}

func TestMISConstants(t *testing.T) {
	g := buildTestGraph(t)
	res, err := g.Run(multilogvc.NewMIS(1), multilogvc.RunOptions{MaxSupersteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	in, out := 0, 0
	for _, v := range res.Values {
		switch v {
		case multilogvc.MISIn:
			in++
		case multilogvc.MISOut:
			out++
		}
	}
	if in == 0 || out == 0 {
		t.Fatalf("MIS degenerate: in=%d out=%d", in, out)
	}
}

func TestDeviceStatsExposed(t *testing.T) {
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 512, Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	edges, _ := multilogvc.Grid(10, 10)
	g, err := sys.BuildGraph("g", edges, multilogvc.GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Device().Stats()
	if _, err := g.Run(multilogvc.NewPageRank(), multilogvc.RunOptions{MaxSupersteps: 3}); err != nil {
		t.Fatal(err)
	}
	after := sys.Device().Stats()
	if after.PagesRead <= before.PagesRead {
		t.Fatal("device stats did not advance")
	}
	if after.StorageTime() <= before.StorageTime() {
		t.Fatal("virtual storage clock did not advance")
	}
}

func TestWeightedGraphPublicAPI(t *testing.T) {
	sys, _ := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 512, Channels: 4})
	edges, _ := multilogvc.Grid(6, 6)
	wedges := multilogvc.RandomWeights(edges, 9, 7)
	g, err := sys.BuildWeightedGraph("roads", wedges, multilogvc.GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// SSSP must agree across all engines on the weighted graph.
	base, err := g.Run(multilogvc.NewSSSP(0), multilogvc.RunOptions{MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []multilogvc.Engine{multilogvc.EngineGraphChi, multilogvc.EngineGraFBoost} {
		res, err := g.Run(multilogvc.NewSSSP(0), multilogvc.RunOptions{Engine: eng, MaxSupersteps: 200})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		for v := range base.Values {
			if res.Values[v] != base.Values[v] {
				t.Fatalf("%v: dist[%d] = %d, want %d", eng, v, res.Values[v], base.Values[v])
			}
		}
	}
	// Weighted distances must differ from hop counts somewhere (weights
	// up to 9 on a grid).
	bfs, err := g.Run(multilogvc.NewBFS(0), multilogvc.RunOptions{MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for v := range base.Values {
		if base.Values[v] != bfs.Values[v] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("weighted SSSP identical to BFS; weights not applied")
	}
	// Weighted structural update.
	far := g.NumVertices() - 1
	if err := g.AddWeightedEdge(0, far, 2); err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(multilogvc.NewSSSP(0), multilogvc.RunOptions{MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[far] != 2 {
		t.Fatalf("dist after weighted shortcut = %d, want 2", res.Values[far])
	}
}

func TestWCCAndKCorePublicAPI(t *testing.T) {
	sys, _ := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 512, Channels: 4})
	edges, _ := multilogvc.RMAT(8, 6, 3)
	g, err := sys.BuildGraph("g", edges, multilogvc.GraphOptions{MemoryBudget: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	wcc, err := g.Run(multilogvc.NewWCC(), multilogvc.RunOptions{MaxSupersteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if wcc.Values[e.Src] != wcc.Values[e.Dst] {
			t.Fatalf("WCC labels differ across edge %v", e)
		}
	}
	kc, err := g.Run(multilogvc.NewKCore(2), multilogvc.RunOptions{MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	members := 0
	for _, v := range kc.Values {
		if multilogvc.KCoreMember(v) {
			members++
		}
	}
	if members == 0 {
		t.Fatal("2-core empty on a dense RMAT graph")
	}
}

func TestOpenGraphAcrossProcessesSimulation(t *testing.T) {
	dir := t.TempDir()
	// Process 1: build a weighted graph on a disk-backed device.
	{
		sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 512, Channels: 2, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		edges, _ := multilogvc.Grid(8, 8)
		wedges := multilogvc.RandomWeights(edges, 5, 3)
		if _, err := sys.BuildWeightedGraph("persisted", wedges, multilogvc.GraphOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Process 2: a fresh System over the same directory adopts the files.
	sys, err := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 512, Channels: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g, err := sys.OpenGraph("persisted", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 64 {
		t.Fatalf("reopened vertices = %d", g.NumVertices())
	}
	res, err := g.Run(multilogvc.NewSSSP(0), multilogvc.RunOptions{MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Same graph rebuilt in RAM must give the same distances (weights
	// survived persistence).
	ramSys, _ := multilogvc.NewSystem(multilogvc.SystemOptions{PageSize: 512, Channels: 2})
	edges, _ := multilogvc.Grid(8, 8)
	ramG, err := ramSys.BuildWeightedGraph("ram", multilogvc.RandomWeights(edges, 5, 3), multilogvc.GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ramG.Run(multilogvc.NewSSSP(0), multilogvc.RunOptions{MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Values {
		if res.Values[v] != want.Values[v] {
			t.Fatalf("persisted dist[%d] = %d, want %d", v, res.Values[v], want.Values[v])
		}
	}
	// GraphChi baseline also works on the reopened graph.
	chi, err := g.Run(multilogvc.NewSSSP(0), multilogvc.RunOptions{Engine: multilogvc.EngineGraphChi, MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Values {
		if chi.Values[v] != want.Values[v] {
			t.Fatalf("graphchi reopened dist[%d] = %d, want %d", v, chi.Values[v], want.Values[v])
		}
	}
	if _, err := sys.OpenGraph("missing", 0); err == nil {
		t.Fatal("OpenGraph of missing graph should fail")
	}
}

func TestNewProgramByName(t *testing.T) {
	for _, name := range multilogvc.ProgramNames() {
		prog, err := multilogvc.NewProgramByName(name, multilogvc.ProgramOptions{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prog.Name() != name {
			t.Fatalf("program %q reports name %q", name, prog.Name())
		}
	}
	if _, err := multilogvc.NewProgramByName("nope", multilogvc.ProgramOptions{}); err == nil {
		t.Fatal("unknown program should fail")
	}
}
