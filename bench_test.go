// Benchmarks regenerating the paper's evaluation: one benchmark per table
// or figure (see DESIGN.md's experiment index). Each runs the same
// experiment code as cmd/mlvc-bench at the Tiny dataset scale so the full
// suite completes quickly; custom metrics expose the figure's headline
// quantity (speedups, ratios, accuracy) alongside ns/op.
//
// For the recorded full-scale results, see EXPERIMENTS.md, generated with
//
//	go run ./cmd/mlvc-bench -size small -exp all
package multilogvc_test

import (
	"strconv"
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/harness"
	"multilogvc/internal/metrics"
)

const benchSize = harness.Tiny

// avgColumn parses and averages one numeric table column.
func avgColumn(t *metrics.Table, col int) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, row := range t.Rows {
		v, _ := strconv.ParseFloat(row[col], 64)
		sum += v
	}
	return sum / float64(len(t.Rows))
}

// BenchmarkTable1Datasets regenerates Table I (dataset preparation +
// CSR build).
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dss, err := harness.Datasets(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		for _, ds := range dss {
			if _, err := harness.Prepare(ds, harness.EnvOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2ActiveShrink regenerates Fig 2: active vertices/edges per
// superstep of graph coloring. Reports the final superstep's active
// fraction (the paper's point: it shrinks far below 1).
func BenchmarkFig2ActiveShrink(b *testing.B) {
	var lastActive float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig2(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		last := t.Rows[len(t.Rows)-1]
		lastActive, _ = strconv.ParseFloat(last[2], 64)
	}
	b.ReportMetric(lastActive, "final-active-frac")
}

// BenchmarkFig3PageUtil regenerates Fig 3: fraction of touched pages with
// <10% utilization, averaged over apps and datasets.
func BenchmarkFig3PageUtil(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig3(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		frac = avgColumn(t, 2)
	}
	b.ReportMetric(frac, "ineff-page-frac")
}

// BenchmarkFig5aBFSSpeedup regenerates Fig 5: BFS speedup and page-ratio
// versus traversal fraction (Fig 5a/5b/5c share these runs).
func BenchmarkFig5aBFSSpeedup(b *testing.B) {
	var speedup, pageRatio float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig5(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		speedup = avgColumn(t, 2)
		pageRatio = avgColumn(t, 3)
	}
	b.ReportMetric(speedup, "speedup-vs-graphchi")
	b.ReportMetric(pageRatio, "page-ratio")
}

// fig6Bench runs the Fig 6 cross-engine comparison for one application.
func fig6Bench(b *testing.B, app string) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		runs, err := harness.Fig6Runs(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, r := range runs {
			if r.App == app {
				sum += metrics.Speedup(r.GraphChi, r.MLVC)
				n++
			}
		}
		speedup = sum / float64(n)
	}
	b.ReportMetric(speedup, "speedup-vs-graphchi")
}

// BenchmarkFig6aPagerank .. BenchmarkFig6eRandomWalk regenerate Fig 6's
// per-application comparisons (paper averages: 1.19x, 1.65x, 1.38x,
// 3.15x, 6.00x).
func BenchmarkFig6aPagerank(b *testing.B)   { fig6Bench(b, "pagerank") }
func BenchmarkFig6bCDLP(b *testing.B)       { fig6Bench(b, "cdlp") }
func BenchmarkFig6cColoring(b *testing.B)   { fig6Bench(b, "coloring") }
func BenchmarkFig6dMIS(b *testing.B)        { fig6Bench(b, "mis") }
func BenchmarkFig6eRandomWalk(b *testing.B) { fig6Bench(b, "randomwalk") }

// BenchmarkFig7PerSuperstep regenerates Fig 7's per-superstep series
// (derived from the same runs as Fig 6).
func BenchmarkFig7PerSuperstep(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		runs, err := harness.Fig6Runs(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(harness.Fig7(runs).Rows)
	}
	b.ReportMetric(float64(rows), "series-points")
}

// BenchmarkFig8GraFBoost regenerates Fig 8: PageRank first iteration
// against the single-log baseline (paper average: 2.8x).
func BenchmarkFig8GraFBoost(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig8(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		speedup = avgColumn(t, 1)
	}
	b.ReportMetric(speedup, "speedup-vs-grafboost")
}

// BenchmarkAdaptedGraFBoostGC regenerates the §VIII adapted-GraFBoost
// graph coloring comparison (paper: 2.72x / 2.67x).
func BenchmarkAdaptedGraFBoostGC(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		t, err := harness.AdaptedGC(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		speedup = avgColumn(t, 1)
	}
	b.ReportMetric(speedup, "speedup-vs-adapted")
}

// BenchmarkFig9Prediction regenerates Fig 9: edge-log predictor accuracy
// (paper average: 34%).
func BenchmarkFig9Prediction(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig9(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		acc = avgColumn(t, 2)
	}
	b.ReportMetric(acc, "accuracy-pct")
}

// BenchmarkFig10MemScale regenerates Fig 10: MIS speedup across 1x/4x/8x
// memory budgets (paper: roughly flat, +5-10%).
func BenchmarkFig10MemScale(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig10(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		speedup = avgColumn(t, 2)
	}
	b.ReportMetric(speedup, "avg-speedup")
}

// BenchmarkAblationEdgeLog, -Combiner, -Fusing measure MultiLogVC's own
// design choices (DESIGN.md's ablation index): time with the feature off
// divided by time with it on.
func ablationBench(b *testing.B, feature string) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Ablation(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, row := range t.Rows {
			if row[1] == feature {
				v, _ := strconv.ParseFloat(row[3], 64)
				sum += v
				n++
			}
		}
		ratio = sum / float64(n)
	}
	b.ReportMetric(ratio, "off-over-on")
}

func BenchmarkAblationEdgeLog(b *testing.B)  { ablationBench(b, "edge-log") }
func BenchmarkAblationCombiner(b *testing.B) { ablationBench(b, "combiner") }
func BenchmarkAblationFusing(b *testing.B)   { ablationBench(b, "fusing") }

// BenchmarkEngineMLVCPageRank and friends measure raw engine throughput
// on one dataset (not a paper figure; useful for regression tracking).
func engineBench(b *testing.B, run func(env *harness.Env) error) {
	ds, err := harness.CFMini(benchSize)
	if err != nil {
		b.Fatal(err)
	}
	env, err := harness.Prepare(ds, harness.EnvOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineMLVCPageRank(b *testing.B) {
	engineBench(b, func(env *harness.Env) error {
		_, _, err := harness.RunMLVC(env, &apps.PageRank{}, harness.RunOpts{MaxSupersteps: 15})
		return err
	})
}

func BenchmarkEngineGraphChiPageRank(b *testing.B) {
	engineBench(b, func(env *harness.Env) error {
		_, _, err := harness.RunGraphChi(env, &apps.PageRank{}, harness.RunOpts{MaxSupersteps: 15})
		return err
	})
}

func BenchmarkEngineGraFBoostPageRank(b *testing.B) {
	engineBench(b, func(env *harness.Env) error {
		_, _, err := harness.RunGraFBoost(env, &apps.PageRank{}, harness.RunOpts{MaxSupersteps: 15})
		return err
	})
}

// BenchmarkExtendedApps measures the extension applications (SSSP/WCC/
// k-core) across engines.
func BenchmarkExtendedApps(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Extended(benchSize)
		if err != nil {
			b.Fatal(err)
		}
		speedup = avgColumn(t, 2)
	}
	b.ReportMetric(speedup, "speedup-vs-graphchi")
}
