module multilogvc

go 1.23
