package apps

import "multilogvc/internal/vc"

// WCC labels weakly connected components with the HashMin algorithm:
// every vertex starts labeled with its own id and adopts the minimum
// label heard from any neighbor, propagating changes. On the symmetric
// closures this repository uses for undirected graphs, weak and strong
// connectivity coincide. Updates merge by minimum (combinable).
//
// Vertex values are component labels (the minimum vertex id in the
// component after convergence).
type WCC struct{}

// Name implements vc.Program.
func (w *WCC) Name() string { return "wcc" }

// InitValue implements vc.Program.
func (w *WCC) InitValue(v, n uint32) uint32 { return v }

// InitActive implements vc.Program.
func (w *WCC) InitActive(n uint32) vc.InitSet { return vc.InitSet{All: true} }

// Process implements vc.Program.
func (w *WCC) Process(ctx vc.Context, msgs []vc.Msg) {
	label := ctx.Value()
	best := label
	for _, m := range msgs {
		if m.Data < best {
			best = m.Data
		}
	}
	if best < label || ctx.Superstep() == 0 {
		ctx.SetValue(best)
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, best)
		}
	}
	ctx.VoteToHalt()
}

// Combine implements vc.Combiner: labels merge by minimum.
func (w *WCC) Combine(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
