package apps

import "multilogvc/internal/vc"

// SSSP computes single-source shortest paths over non-negative integer
// edge weights (the CSR val vector; Fig 1a of the paper shows the
// weighted representation). It is the Bellman-Ford-style vertex-centric
// formulation: a vertex whose distance improves relaxes all out-edges.
// Updates merge by minimum, so SSSP is combinable like BFS.
//
// Vertex values are distances; unreachable vertices hold Inf. On
// unweighted graphs every edge costs 1 and SSSP degenerates to BFS.
type SSSP struct {
	Source uint32
}

// Name implements vc.Program.
func (s *SSSP) Name() string { return "sssp" }

// InitValue implements vc.Program.
func (s *SSSP) InitValue(v, n uint32) uint32 {
	if v == s.Source {
		return 0
	}
	return Inf
}

// InitActive implements vc.Program.
func (s *SSSP) InitActive(n uint32) vc.InitSet {
	return vc.InitSet{Verts: []uint32{s.Source}}
}

// Process implements vc.Program.
func (s *SSSP) Process(ctx vc.Context, msgs []vc.Msg) {
	dist := ctx.Value()
	best := dist
	if ctx.Superstep() == 0 {
		best = 0
	}
	for _, m := range msgs {
		if m.Data < best {
			best = m.Data
		}
	}
	if best < dist || ctx.Superstep() == 0 {
		ctx.SetValue(best)
		out := ctx.OutEdges()
		weights := ctx.OutWeights()
		for i, dst := range out {
			w := uint32(1)
			if weights != nil {
				w = weights[i]
			}
			next := best + w
			if next < best { // overflow guard
				next = Inf
			}
			if next < Inf {
				ctx.Send(dst, next)
			}
		}
	}
	ctx.VoteToHalt()
}

// Combine implements vc.Combiner: distance updates merge by minimum.
func (s *SSSP) Combine(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
