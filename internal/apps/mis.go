package apps

import "multilogvc/internal/vc"

// MIS vertex states.
const (
	MISUnknown = uint32(0)
	MISIn      = uint32(1)
	MISOut     = uint32(2)
)

// misMarker is the "I joined the MIS" announcement; random priorities are
// masked below it so the two message kinds cannot collide.
const misMarker = ^uint32(0)

// MIS computes a maximal independent set with Luby's algorithm in the
// Pregel formulation (Salihoglu & Widom, the paper's [26]). Rounds take
// two supersteps:
//
//   - select (even): every undecided vertex that heard a neighbor joined
//     the set drops out; the rest draw a deterministic random priority for
//     the round and announce it to their neighbors.
//   - decide (odd): an undecided vertex whose own (priority, id) is
//     strictly smallest among its undecided neighborhood joins the set and
//     announces misMarker.
//
// Priorities come from vc.Hash64(Seed, vertex, round), so runs are
// reproducible and identical across engines. Because the decide step must
// see each neighbor's priority and the select step distinct markers,
// updates cannot be merged into one value.
type MIS struct {
	Seed uint64
}

// Name implements vc.Program.
func (m *MIS) Name() string { return "mis" }

// InitValue implements vc.Program.
func (m *MIS) InitValue(v, n uint32) uint32 { return MISUnknown }

// InitActive implements vc.Program.
func (m *MIS) InitActive(n uint32) vc.InitSet { return vc.InitSet{All: true} }

// priority returns the masked 32-bit round priority of v.
func (m *MIS) priority(v uint32, round int) uint32 {
	return uint32(vc.Hash64(m.Seed, uint64(v), uint64(round))) & 0x7fffffff
}

// Process implements vc.Program.
func (m *MIS) Process(ctx vc.Context, msgs []vc.Msg) {
	state := ctx.Value()
	if state != MISUnknown {
		// Decided vertices ignore stray messages and stay halted.
		ctx.VoteToHalt()
		return
	}
	v := ctx.Vertex()
	step := ctx.Superstep()
	round := step / 2
	if step%2 == 0 { // select
		for _, msg := range msgs {
			if msg.Data == misMarker {
				ctx.SetValue(MISOut)
				ctx.VoteToHalt()
				return
			}
		}
		p := m.priority(v, round)
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, p)
		}
		// Stay active: the decide step must run even if no undecided
		// neighbor sends a priority.
		return
	}
	// decide
	myP := m.priority(v, round)
	win := true
	for _, msg := range msgs {
		if msg.Data == misMarker {
			// Neighbor joined in an earlier interleaving; defer to the
			// next select step (keep the message effect by dropping out
			// now — identical outcome, fewer supersteps).
			ctx.SetValue(MISOut)
			ctx.VoteToHalt()
			return
		}
		if msg.Data < myP || (msg.Data == myP && msg.Src < v) {
			win = false
		}
	}
	if win {
		ctx.SetValue(MISIn)
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, misMarker)
		}
		ctx.VoteToHalt()
		return
	}
	// Lost the round; stay active for the next select step.
}

// IsIndependentSet verifies the MIS invariants over final values given the
// adjacency: no two MISIn vertices are adjacent, and (if decided
// everywhere) every MISOut vertex has a MISIn neighbor. Returns an empty
// string when valid, else a description of the violation. Intended for
// tests.
func IsIndependentSet(values []uint32, out func(v uint32) []uint32) string {
	for v := range values {
		switch values[v] {
		case MISIn:
			for _, nb := range out(uint32(v)) {
				if values[nb] == MISIn {
					return "adjacent vertices both in set"
				}
			}
		case MISOut:
			hasIn := false
			for _, nb := range out(uint32(v)) {
				if values[nb] == MISIn {
					hasIn = true
					break
				}
			}
			if !hasIn {
				return "excluded vertex has no neighbor in set"
			}
		}
	}
	return ""
}
