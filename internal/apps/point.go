package apps

import (
	"fmt"

	"multilogvc/internal/vc"
)

// NewPoint returns the single-source reference program for a point-query
// kind. It is the solo re-run path behind the serving plane's batch fault
// isolation: when a lane-batched execution dies of a retryable device
// fault, each surviving member re-executes as this program — whose output
// is, by the batching contract, bit-identical to its lane of the batch.
func NewPoint(kind string, source uint32) (vc.Program, error) {
	switch kind {
	case "bfs":
		return &BFS{Source: source}, nil
	case "sssp":
		return &SSSP{Source: source}, nil
	default:
		return nil, fmt.Errorf("apps: unknown point-query kind %q", kind)
	}
}
