package apps

import (
	"sort"
	"testing"

	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/vc"
)

// refRun runs prog on edges with the reference engine.
func refRun(t *testing.T, edges []graphio.Edge, n uint32, prog vc.Program, maxSteps int) *vc.RefResult {
	t.Helper()
	return vc.NewRef(edges, n).Run(prog, maxSteps)
}

// bruteBFS computes hop distances with a queue.
func bruteBFS(edges []graphio.Edge, n, source uint32) []uint32 {
	adj := make([][]uint32, n)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range adj[v] {
			if dist[nb] == Inf {
				dist[nb] = dist[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

func TestBFSOnGrid(t *testing.T) {
	edges, _ := gen.Grid(8, 8)
	res := refRun(t, edges, 64, &BFS{Source: 0}, 100)
	want := bruteBFS(edges, 64, 0)
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("BFS dist[%d] = %d, want %d", v, res.Values[v], want[v])
		}
	}
	if !res.Converged {
		t.Fatal("BFS should converge")
	}
}

func TestBFSOnRMAT(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(9, 8, 3))
	n := graphio.NumVertices(edges)
	res := refRun(t, edges, n, &BFS{Source: 1}, 200)
	want := bruteBFS(edges, n, 1)
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("BFS dist[%d] = %d, want %d", v, res.Values[v], want[v])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	edges := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 2, Dst: 3}, {Src: 3, Dst: 2}}
	res := refRun(t, edges, 4, &BFS{Source: 0}, 50)
	if res.Values[2] != Inf || res.Values[3] != Inf {
		t.Fatalf("unreachable vertices should stay Inf: %v", res.Values)
	}
	if res.Values[1] != 1 {
		t.Fatalf("dist[1] = %d", res.Values[1])
	}
}

func TestBFSCombinerIsMin(t *testing.T) {
	b := &BFS{}
	if b.Combine(3, 5) != 3 || b.Combine(5, 3) != 3 {
		t.Fatal("BFS combiner should be min")
	}
}

func TestBFSActiveFrontierExpands(t *testing.T) {
	edges, _ := gen.Grid(16, 16)
	res := refRun(t, edges, 256, &BFS{Source: 0}, 100)
	// Frontier grows then shrinks — the BFS pattern the paper describes.
	peak := 0
	for i, a := range res.ActivePerStep {
		if a > res.ActivePerStep[peak] {
			peak = i
		}
		_ = a
	}
	if peak == 0 || peak == len(res.ActivePerStep)-1 {
		t.Fatalf("frontier pattern unexpected: %v", res.ActivePerStep)
	}
}

func TestPageRankConservesMass(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(8, 8, 4))
	n := graphio.NumVertices(edges)
	res := refRun(t, edges, n, &PageRank{Threshold: 1}, 30)
	var total float64
	for _, v := range res.Values {
		total += Rank(v)
	}
	// With threshold ~0 and damping 0.85 the total mass approaches n
	// (residual formulation); sinks and truncation lose a little.
	if total < 0.5*float64(n) || total > 1.2*float64(n) {
		t.Fatalf("total rank %f for n=%d out of range", total, n)
	}
}

func TestPageRankActiveShrinks(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(10, 8, 9))
	n := graphio.NumVertices(edges)
	res := refRun(t, edges, n, &PageRank{}, 15)
	first := res.ActivePerStep[0]
	last := res.ActivePerStep[len(res.ActivePerStep)-1]
	if last >= first {
		t.Fatalf("active set should shrink: %v", res.ActivePerStep)
	}
}

func TestPageRankHubsRankHigher(t *testing.T) {
	// Star graph: center receives from all leaves.
	var edges []graphio.Edge
	const n = 50
	for i := uint32(1); i < n; i++ {
		edges = append(edges, graphio.Edge{Src: i, Dst: 0}, graphio.Edge{Src: 0, Dst: i})
	}
	res := refRun(t, edges, n, &PageRank{Threshold: 1}, 30)
	if Rank(res.Values[0]) <= Rank(res.Values[1])*5 {
		t.Fatalf("hub rank %f not dominant over leaf %f", Rank(res.Values[0]), Rank(res.Values[1]))
	}
}

func TestCDLPPlantedPartition(t *testing.T) {
	edges, _ := gen.PlantedPartition(4, 30, 10, 0.2, 6)
	n := graphio.NumVertices(edges)
	res := refRun(t, edges, n, &CDLP{}, 20)
	// Most vertices in a community should share their community's label.
	agree := 0
	for g := 0; g < 4; g++ {
		counts := map[uint32]int{}
		for v := g * 30; v < (g+1)*30 && v < int(n); v++ {
			counts[res.Values[v]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		agree += best
	}
	if agree < int(n)*7/10 {
		t.Fatalf("CDLP found weak communities: %d/%d vertices agree", agree, n)
	}
}

func TestCDLPConvergesOnClique(t *testing.T) {
	// A clique converges to the smallest id's label.
	var edges []graphio.Edge
	const k = 6
	for i := uint32(0); i < k; i++ {
		for j := uint32(0); j < k; j++ {
			if i != j {
				edges = append(edges, graphio.Edge{Src: i, Dst: j})
			}
		}
	}
	res := refRun(t, edges, k, &CDLP{}, 30)
	for v, l := range res.Values {
		if l != 0 {
			t.Fatalf("clique label[%d] = %d, want 0 (values %v)", v, l, res.Values)
		}
	}
}

func TestFrequentLabel(t *testing.T) {
	if got := frequentLabel([]uint32{1, 2, 2, 3}); got != 2 {
		t.Fatalf("frequentLabel = %d, want 2", got)
	}
	// Tie: smaller label wins.
	if got := frequentLabel([]uint32{3, 3, 1, 1}); got != 1 {
		t.Fatalf("tie frequentLabel = %d, want 1", got)
	}
	if got := frequentLabel([]uint32{UnknownLabel}); got != UnknownLabel {
		t.Fatalf("all-unknown frequentLabel = %d", got)
	}
	if got := frequentLabel(nil); got != UnknownLabel {
		t.Fatalf("empty frequentLabel = %d", got)
	}
}

func checkProperColoring(t *testing.T, edges []graphio.Edge, values []uint32) {
	t.Helper()
	for _, e := range edges {
		if e.Src != e.Dst && values[e.Src] == values[e.Dst] {
			t.Fatalf("edge (%d,%d) endpoints share color %d", e.Src, e.Dst, values[e.Src])
		}
	}
}

func TestColoringGrid(t *testing.T) {
	edges, _ := gen.Grid(10, 10)
	res := refRun(t, edges, 100, &Coloring{}, 100)
	if !res.Converged {
		t.Fatal("coloring should converge on a grid")
	}
	checkProperColoring(t, edges, res.Values)
	// Grids are 2-colorable but greedy may use a few more; bound loosely.
	maxColor := uint32(0)
	for _, c := range res.Values {
		if c > maxColor {
			maxColor = c
		}
	}
	if maxColor > 4 {
		t.Fatalf("grid used %d colors", maxColor+1)
	}
}

func TestColoringRMAT(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(9, 6, 8))
	n := graphio.NumVertices(edges)
	res := refRun(t, edges, n, &Coloring{}, 200)
	if !res.Converged {
		t.Fatal("coloring did not converge")
	}
	checkProperColoring(t, edges, res.Values)
}

func TestColoringActivityShrinks(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(10, 8, 2))
	n := graphio.NumVertices(edges)
	res := refRun(t, edges, n, &Coloring{}, 15)
	if len(res.ActivePerStep) < 3 {
		t.Skip("converged too fast")
	}
	first := res.ActivePerStep[1]
	last := res.ActivePerStep[len(res.ActivePerStep)-1]
	if last >= first {
		t.Fatalf("active set should shrink: %v", res.ActivePerStep)
	}
}

func TestMISGrid(t *testing.T) {
	edges, _ := gen.Grid(10, 10)
	eng := vc.NewRef(edges, 100)
	res := eng.Run(&MIS{Seed: 1}, 200)
	if !res.Converged {
		t.Fatal("MIS should converge")
	}
	adj := adjacency(edges, 100)
	if msg := IsIndependentSet(res.Values, func(v uint32) []uint32 { return adj[v] }); msg != "" {
		t.Fatal(msg)
	}
	// Everyone decided.
	for v, s := range res.Values {
		if s == MISUnknown {
			t.Fatalf("vertex %d undecided", v)
		}
	}
}

func TestMISRMAT(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(9, 6, 12))
	n := graphio.NumVertices(edges)
	res := vc.NewRef(edges, n).Run(&MIS{Seed: 7}, 400)
	if !res.Converged {
		t.Fatal("MIS did not converge")
	}
	adj := adjacency(edges, n)
	if msg := IsIndependentSet(res.Values, func(v uint32) []uint32 { return adj[v] }); msg != "" {
		t.Fatal(msg)
	}
}

func TestMISIsolatedVerticesJoin(t *testing.T) {
	// Isolated vertices must all end up in the set.
	edges := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	res := vc.NewRef(edges, 5).Run(&MIS{Seed: 3}, 50)
	for v := uint32(2); v < 5; v++ {
		if res.Values[v] != MISIn {
			t.Fatalf("isolated vertex %d state = %d", v, res.Values[v])
		}
	}
}

func TestIsIndependentSetDetectsViolations(t *testing.T) {
	adj := [][]uint32{{1}, {0}}
	both := []uint32{MISIn, MISIn}
	if IsIndependentSet(both, func(v uint32) []uint32 { return adj[v] }) == "" {
		t.Fatal("adjacent MISIn pair not detected")
	}
	orphan := []uint32{MISOut, MISOut}
	if IsIndependentSet(orphan, func(v uint32) []uint32 { return adj[v] }) == "" {
		t.Fatal("non-maximal exclusion not detected")
	}
}

func TestRandomWalkVisitConservation(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(8, 8, 21))
	n := graphio.NumVertices(edges)
	rw := &RandomWalk{SampleEvery: 16, WalkLength: 10, Seed: 5}
	res := vc.NewRef(edges, n).Run(rw, 50)
	var total uint64
	for _, v := range res.Values {
		total += uint64(v)
	}
	sources := (n + 15) / 16
	// Each walker makes at most WalkLength+1 visits (start + steps); dead
	// ends may cut walks short but RMAT analogs rarely have them, and at
	// least the starting visits must be there.
	if total < uint64(sources) {
		t.Fatalf("total visits %d < sources %d", total, sources)
	}
	if total > uint64(sources)*11 {
		t.Fatalf("total visits %d exceed max %d", total, uint64(sources)*11)
	}
	if !res.Converged {
		t.Fatal("random walk should converge (walks expire)")
	}
	if res.Supersteps > 12 {
		t.Fatalf("walks of length 10 ran %d supersteps", res.Supersteps)
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(7, 8, 9))
	n := graphio.NumVertices(edges)
	rw := &RandomWalk{SampleEvery: 8, WalkLength: 6, Seed: 1}
	a := vc.NewRef(edges, n).Run(rw, 50)
	b := vc.NewRef(edges, n).Run(rw, 50)
	for v := range a.Values {
		if a.Values[v] != b.Values[v] {
			t.Fatal("random walk not deterministic")
		}
	}
}

func TestRandomWalkDeadEnd(t *testing.T) {
	// 0 -> 1, 1 has no out-edges: walker stops there.
	edges := []graphio.Edge{{Src: 0, Dst: 1}}
	rw := &RandomWalk{SampleEvery: 100, WalkLength: 10, Seed: 2}
	res := vc.NewRef(edges, 2).Run(rw, 50)
	if res.Values[0] != 1 || res.Values[1] != 1 {
		t.Fatalf("visits = %v, want [1 1]", res.Values)
	}
}

func adjacency(edges []graphio.Edge, n uint32) [][]uint32 {
	adj := make([][]uint32, n)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	for _, a := range adj {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	return adj
}

func TestPageRankOptions(t *testing.T) {
	edges, _ := gen.Grid(6, 6)
	// A higher threshold converges in fewer supersteps.
	loose := refRun(t, edges, 36, &PageRank{Threshold: PRScale / 2}, 30)
	tight := refRun(t, edges, 36, &PageRank{Threshold: 1}, 30)
	if loose.Supersteps > tight.Supersteps {
		t.Fatalf("loose threshold ran %d supersteps, tight %d", loose.Supersteps, tight.Supersteps)
	}
	// Custom damping shifts mass: with damping ~0 the rank stays at the
	// base value everywhere.
	flat := refRun(t, edges, 36, &PageRank{DampingNum: 1, Threshold: 1}, 30)
	for v, val := range flat.Values {
		if Rank(val) > 1.01 {
			t.Fatalf("near-zero damping rank[%d] = %f", v, Rank(val))
		}
	}
}

func TestRankDecoding(t *testing.T) {
	if Rank(PRScale) != 1.0 {
		t.Fatalf("Rank(PRScale) = %f", Rank(PRScale))
	}
	if Rank(PRScale/2) != 0.5 {
		t.Fatalf("Rank(PRScale/2) = %f", Rank(PRScale/2))
	}
}

func TestBFSSelfLoopIgnored(t *testing.T) {
	edges := []graphio.Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}}
	res := refRun(t, edges, 2, &BFS{Source: 0}, 10)
	if res.Values[0] != 0 || res.Values[1] != 1 {
		t.Fatalf("distances = %v", res.Values)
	}
}

func TestMISDifferentSeedsDifferentSets(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(8, 6, 3))
	n := graphio.NumVertices(edges)
	a := vc.NewRef(edges, n).Run(&MIS{Seed: 1}, 200)
	b := vc.NewRef(edges, n).Run(&MIS{Seed: 2}, 200)
	same := true
	for v := range a.Values {
		if a.Values[v] != b.Values[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical independent sets")
	}
}
