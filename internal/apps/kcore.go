package apps

import "multilogvc/internal/vc"

// KCoreRemoved marks a vertex that peeled out of the k-core.
const KCoreRemoved = ^uint32(0)

// KCore computes the k-core of an undirected graph: the maximal subgraph
// in which every vertex has degree ≥ K. Vertices iteratively remove
// themselves when their remaining degree drops below K and notify their
// neighbors, whose remaining degrees shrink in turn. Removal counts merge
// by addition (combinable).
//
// Final vertex values: the remaining degree (≥ K) for core members, or
// KCoreRemoved for peeled vertices. InCore decodes them.
type KCore struct {
	K uint32
}

// Name implements vc.Program.
func (k *KCore) Name() string { return "kcore" }

// InitValue implements vc.Program: remaining degree starts unknown (0);
// superstep 0 initializes it from the out-edge list.
func (k *KCore) InitValue(v, n uint32) uint32 { return 0 }

// InitActive implements vc.Program.
func (k *KCore) InitActive(n uint32) vc.InitSet { return vc.InitSet{All: true} }

// InCore reports whether a final vertex value denotes core membership.
func InCore(value uint32) bool { return value != KCoreRemoved }

// Process implements vc.Program.
func (k *KCore) Process(ctx vc.Context, msgs []vc.Msg) {
	val := ctx.Value()
	if val == KCoreRemoved {
		ctx.VoteToHalt()
		return
	}
	var deg uint32
	if ctx.Superstep() == 0 {
		deg = uint32(len(ctx.OutEdges()))
	} else {
		deg = val
		for _, m := range msgs {
			removed := m.Data
			if removed >= deg {
				deg = 0
			} else {
				deg -= removed
			}
		}
	}
	if deg < k.K {
		ctx.SetValue(KCoreRemoved)
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, 1)
		}
	} else {
		ctx.SetValue(deg)
	}
	ctx.VoteToHalt()
}

// Combine implements vc.Combiner: removal notifications merge by sum.
func (k *KCore) Combine(a, b uint32) uint32 { return a + b }
