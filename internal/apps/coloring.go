package apps

import "multilogvc/internal/vc"

// Coloring is speculative greedy graph coloring in the PowerGraph style
// (Gonzalez et al., the paper's [9]): every vertex starts with color 0,
// remembers each neighbor's last announced color (per-in-edge aux state),
// and when it conflicts with a higher-priority neighbor — smaller vertex
// id wins — re-colors itself with the smallest color unused among its
// neighbors and announces the change. The algorithm converges to a proper
// coloring; like CDLP it needs every neighbor's color individually, so
// updates cannot be merged.
//
// Vertex values are colors.
type Coloring struct{}

// Name implements vc.Program.
func (c *Coloring) Name() string { return "coloring" }

// InitValue implements vc.Program.
func (c *Coloring) InitValue(v, n uint32) uint32 { return 0 }

// InitActive implements vc.Program.
func (c *Coloring) InitActive(n uint32) vc.InitSet { return vc.InitSet{All: true} }

// AuxInit implements vc.AuxUser: every neighbor starts at color 0, which
// is consistent with InitValue.
func (c *Coloring) AuxInit(n uint32) uint32 { return 0 }

// Process implements vc.Program.
func (c *Coloring) Process(ctx vc.Context, msgs []vc.Msg) {
	v := ctx.Vertex()
	if ctx.Superstep() == 0 {
		// Everyone holds color 0; only vertices that must yield to a
		// higher-priority neighbor re-color. A vertex yields if any
		// neighbor with a smaller id exists (all colors are 0 now).
		sources := ctx.InEdgeSources()
		if len(sources) > 0 && sources[0] < v {
			c.recolor(ctx)
		}
		ctx.VoteToHalt()
		return
	}
	sources := ctx.InEdgeSources()
	aux := ctx.Aux()
	for _, m := range msgs {
		if i := vc.FindSource(sources, m.Src); i >= 0 {
			aux[i] = m.Data
		}
	}
	mine := ctx.Value()
	conflict := false
	for i, src := range sources {
		if src < v && aux[i] == mine {
			conflict = true
			break
		}
	}
	if conflict {
		c.recolor(ctx)
	}
	ctx.VoteToHalt()
}

// recolor picks the smallest color not present among known neighbor
// colors, stores it, and announces it.
func (c *Coloring) recolor(ctx vc.Context) {
	aux := ctx.Aux()
	used := make(map[uint32]bool, len(aux))
	for _, col := range aux {
		used[col] = true
	}
	var color uint32
	for used[color] {
		color++
	}
	if color == ctx.Value() {
		return
	}
	ctx.SetValue(color)
	for _, dst := range ctx.OutEdges() {
		ctx.Send(dst, color)
	}
}
