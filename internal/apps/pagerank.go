package apps

import "multilogvc/internal/vc"

// PRScale is the fixed-point scale for PageRank values: a vertex value of
// PRScale represents rank 1.0. Fixed-point integer arithmetic keeps rank
// updates associative and commutative, so every engine — whatever order it
// combines messages in — produces bit-identical results.
const PRScale = 4096

// PageRank is the delta-based (residual) formulation used by out-of-core
// engines: each vertex accumulates incoming rank deltas and only
// propagates when the accumulated delta exceeds Threshold, so the active
// set shrinks as ranks converge (§VII: "a vertex in pagerank gets
// activated if it receives a delta update greater than a certain threshold
// value").
//
// Vertex values are fixed-point ranks (see PRScale and Rank).
type PageRank struct {
	// DampingNum/PRScale is the damping factor; defaults to 0.85.
	DampingNum uint32
	// Threshold is the minimum accumulated fixed-point delta that keeps a
	// vertex propagating; defaults to PRScale/100 (0.01).
	Threshold uint32
}

func (p *PageRank) damping() uint64 {
	if p.DampingNum == 0 {
		return 3482 // ≈ 0.85 × 4096
	}
	return uint64(p.DampingNum)
}

func (p *PageRank) threshold() uint32 {
	if p.Threshold == 0 {
		return PRScale / 100
	}
	return p.Threshold
}

// Rank converts a PageRank vertex value to a float64 rank.
func Rank(value uint32) float64 { return float64(value) / PRScale }

// Name implements vc.Program.
func (p *PageRank) Name() string { return "pagerank" }

// InitValue implements vc.Program: every vertex starts at the base rank
// (1 - d).
func (p *PageRank) InitValue(v, n uint32) uint32 {
	return uint32(PRScale - p.damping())
}

// InitActive implements vc.Program.
func (p *PageRank) InitActive(n uint32) vc.InitSet { return vc.InitSet{All: true} }

// Process implements vc.Program.
func (p *PageRank) Process(ctx vc.Context, msgs []vc.Msg) {
	var delta uint32
	if ctx.Superstep() == 0 {
		// The initial rank mass is the first delta.
		delta = ctx.Value()
	} else {
		for _, m := range msgs {
			delta += m.Data
		}
		ctx.SetValue(ctx.Value() + delta)
	}
	if delta > p.threshold() || ctx.Superstep() == 0 {
		out := ctx.OutEdges()
		if len(out) > 0 {
			share := uint32(p.damping() * uint64(delta) / PRScale / uint64(len(out)))
			if share > 0 {
				for _, dst := range out {
					ctx.Send(dst, share)
				}
			}
		}
	}
	ctx.VoteToHalt()
}

// Combine implements vc.Combiner: deltas merge by addition.
func (p *PageRank) Combine(a, b uint32) uint32 { return a + b }
