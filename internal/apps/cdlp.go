package apps

import "multilogvc/internal/vc"

// UnknownLabel marks an aux entry whose neighbor label has not been heard
// yet.
const UnknownLabel = ^uint32(0)

// CDLP is community detection by label propagation (Raghavan et al.),
// following the paper's Algorithm 2: each vertex remembers the last label
// announced by every in-neighbor (per-in-edge aux state), adopts the most
// frequent known label, and re-announces its own label only when it
// changed. Updates cannot be merged — every neighbor's label must be
// recorded individually — so CDLP is in the class of programs GraFBoost's
// combine-based log cannot run.
//
// Vertex values are labels; initial label = vertex id. Ties in the
// frequency count break toward the smaller label, which makes the
// algorithm deterministic.
type CDLP struct{}

// Name implements vc.Program.
func (c *CDLP) Name() string { return "cdlp" }

// InitValue implements vc.Program.
func (c *CDLP) InitValue(v, n uint32) uint32 { return v }

// InitActive implements vc.Program.
func (c *CDLP) InitActive(n uint32) vc.InitSet { return vc.InitSet{All: true} }

// AuxInit implements vc.AuxUser.
func (c *CDLP) AuxInit(n uint32) uint32 { return UnknownLabel }

// Process implements vc.Program.
func (c *CDLP) Process(ctx vc.Context, msgs []vc.Msg) {
	if ctx.Superstep() == 0 {
		// Announce the initial label.
		label := ctx.Value()
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, label)
		}
		ctx.VoteToHalt()
		return
	}
	sources := ctx.InEdgeSources()
	aux := ctx.Aux()
	for _, m := range msgs {
		if i := vc.FindSource(sources, m.Src); i >= 0 {
			aux[i] = m.Data
		}
	}
	newLabel := frequentLabel(aux)
	if newLabel != UnknownLabel && newLabel != ctx.Value() {
		ctx.SetValue(newLabel)
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, newLabel)
		}
	}
	ctx.VoteToHalt()
}

// frequentLabel returns the most frequent non-unknown label, breaking ties
// toward the smaller label; UnknownLabel if none known.
func frequentLabel(labels []uint32) uint32 {
	counts := make(map[uint32]int, len(labels))
	best := UnknownLabel
	bestCount := 0
	for _, l := range labels {
		if l == UnknownLabel {
			continue
		}
		counts[l]++
		c := counts[l]
		if c > bestCount || (c == bestCount && l < best) {
			best = l
			bestCount = c
		}
	}
	return best
}
