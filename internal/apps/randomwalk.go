package apps

import "multilogvc/internal/vc"

// RandomWalk is a DrunkardMob-style walk simulation (the paper's [13]):
// every SampleEvery-th vertex launches one walker; each walker takes up to
// WalkLength random steps, and every vertex counts the visits it receives.
// Walkers are individual and cannot be reduced to a single value per
// destination vertex — which puts RW in the non-combinable class.
//
// All walks advance one hop per superstep, so every live walker holds the
// same remaining-step count; a message therefore carries
// (walkerCount << 8) | stepsRemaining for one edge. At most one message
// traverses any edge per superstep, which keeps the program runnable on
// edge-value engines (GraphChi) with results identical to the
// message-passing engines. Next hops are drawn with
// vc.Hash64(Seed, vertex, superstep, walkerIndex), so trajectories are
// deterministic and engine-independent.
//
// Vertex values are visit counts.
type RandomWalk struct {
	// SampleEvery launches a walker from every k-th vertex; defaults to
	// 1000 (the paper's sampling).
	SampleEvery uint32
	// WalkLength is the maximum number of steps per walker; defaults to
	// 10 (the paper's max step size).
	WalkLength uint32
	Seed       uint64
}

func (r *RandomWalk) sampleEvery() uint32 {
	if r.SampleEvery == 0 {
		return 1000
	}
	return r.SampleEvery
}

func (r *RandomWalk) walkLength() uint32 {
	if r.WalkLength == 0 {
		return 10
	}
	if r.WalkLength > 255 {
		return 255
	}
	return r.WalkLength
}

// Name implements vc.Program.
func (r *RandomWalk) Name() string { return "randomwalk" }

// InitValue implements vc.Program.
func (r *RandomWalk) InitValue(v, n uint32) uint32 { return 0 }

// InitActive implements vc.Program: the walk sources.
func (r *RandomWalk) InitActive(n uint32) vc.InitSet {
	var verts []uint32
	for v := uint32(0); v < n; v += r.sampleEvery() {
		verts = append(verts, v)
	}
	return vc.InitSet{Verts: verts}
}

// Process implements vc.Program.
func (r *RandomWalk) Process(ctx vc.Context, msgs []vc.Msg) {
	var walkers, steps uint32
	if ctx.Superstep() == 0 {
		walkers, steps = 1, r.walkLength()
	} else {
		for _, m := range msgs {
			walkers += m.Data >> 8
			steps = m.Data & 0xff // uniform across all live walkers
		}
	}
	ctx.SetValue(ctx.Value() + walkers)
	if steps == 0 || walkers == 0 {
		ctx.VoteToHalt()
		return
	}
	out := ctx.OutEdges()
	if len(out) == 0 {
		ctx.VoteToHalt()
		return
	}
	// Each walker independently draws a next hop; group per destination
	// so each out-edge carries at most one message.
	v, step := ctx.Vertex(), ctx.Superstep()
	perDst := make(map[uint32]uint32, walkers)
	for i := uint32(0); i < walkers; i++ {
		h := vc.Hash64(r.Seed, uint64(v), uint64(step), uint64(i))
		perDst[out[h%uint64(len(out))]]++
	}
	payload := steps - 1
	for dst, count := range perDst {
		ctx.Send(dst, (count<<8)|payload)
	}
	ctx.VoteToHalt()
}
