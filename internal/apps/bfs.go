// Package apps implements the six vertex-centric graph algorithms the
// paper evaluates (§VII): BFS, PageRank, community detection by label
// propagation (CDLP), speculative graph coloring (GC), Luby-style maximal
// independent set (MIS), and DrunkardMob-style random walk (RW).
//
// Each program is written once against the vc contract and runs unchanged
// on every engine. BFS and PageRank implement vc.Combiner (their updates
// merge); the other four require individual message delivery, which is
// the class of algorithms MultiLogVC supports but GraFBoost does not.
package apps

import "multilogvc/internal/vc"

// Inf is the "unvisited" BFS depth.
const Inf = ^uint32(0)

// BFS computes single-source shortest hop counts. Vertex values are
// depths; unvisited vertices hold Inf.
type BFS struct {
	Source uint32
}

// Name implements vc.Program.
func (b *BFS) Name() string { return "bfs" }

// InitValue implements vc.Program.
func (b *BFS) InitValue(v, n uint32) uint32 {
	if v == b.Source {
		return 0
	}
	return Inf
}

// InitActive implements vc.Program.
func (b *BFS) InitActive(n uint32) vc.InitSet {
	return vc.InitSet{Verts: []uint32{b.Source}}
}

// Process implements vc.Program.
func (b *BFS) Process(ctx vc.Context, msgs []vc.Msg) {
	depth := ctx.Value()
	if ctx.Superstep() == 0 {
		// Source announces depth 1 to its neighbors.
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, 1)
		}
		ctx.VoteToHalt()
		return
	}
	best := depth
	for _, m := range msgs {
		if m.Data < best {
			best = m.Data
		}
	}
	if best < depth {
		ctx.SetValue(best)
		next := best + 1
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, next)
		}
	}
	ctx.VoteToHalt()
}

// Combine implements vc.Combiner: depth updates merge by minimum.
func (b *BFS) Combine(a, c uint32) uint32 {
	if a < c {
		return a
	}
	return c
}
