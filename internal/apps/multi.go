package apps

import (
	"fmt"
	"sort"

	"multilogvc/internal/vc"
)

// Multi-source query batching: MultiBFS and MultiSSSP run K independent
// point queries ("lanes") in one superstep execution. Each lane owns one
// slot of a lane-strided value array and tags its messages with the lane
// id, so the union frontier makes one pass over the adjacency lists and
// message logs while the per-lane results stay bit-identical to K
// sequential single-source runs (the daemon's batching contract).
//
// A message packs <lane:6, distance:26>: up to MaxLanes queries per
// batch, distances below LaneInf. LaneInf is the per-lane "unvisited"
// sentinel; extraction (LaneResult) maps it back to Inf so a lane's
// result compares equal to the single-source program's output. Graphs
// whose finite distances could reach LaneInf (2^26-1) are out of scope
// for batching — every graph in this repository is far below that.
const (
	// LaneShift is the bit position of the lane id in a packed message.
	LaneShift = 26
	// LaneInf is the per-lane "unvisited" distance (all 26 payload bits).
	LaneInf = uint32(1)<<LaneShift - 1
	// MaxLanes is the largest batch a packed message can address.
	MaxLanes = 1 << (32 - LaneShift)
)

// packLane encodes a lane-tagged distance message.
func packLane(lane int, dist uint32) uint32 {
	return uint32(lane)<<LaneShift | dist
}

// unpackLane splits a lane-tagged message payload.
func unpackLane(data uint32) (lane int, dist uint32) {
	return int(data >> LaneShift), data & LaneInf
}

// laneSources validates a batch's source list and returns the sorted
// deduplicated initially-active set (lanes may share a source; each still
// computes independently).
func laneSources(kind string, sources []uint32) ([]uint32, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("apps: %s: empty source batch", kind)
	}
	if len(sources) > MaxLanes {
		return nil, fmt.Errorf("apps: %s: %d sources exceeds the %d-lane message format", kind, len(sources), MaxLanes)
	}
	verts := append([]uint32(nil), sources...)
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	out := verts[:1]
	for _, v := range verts[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out, nil
}

// MultiBFS computes hop distances from K sources at once, one lane per
// source. Lane q's extracted result (LaneResult) is bit-identical to
// BFS{Source: Sources[q]}.
//
// It deliberately does not implement vc.Combiner: messages of different
// lanes share a destination but must never merge.
type MultiBFS struct {
	Sources []uint32
	active  []uint32
}

// NewMultiBFS validates the batch and builds the program.
func NewMultiBFS(sources []uint32) (*MultiBFS, error) {
	active, err := laneSources("multibfs", sources)
	if err != nil {
		return nil, err
	}
	return &MultiBFS{Sources: append([]uint32(nil), sources...), active: active}, nil
}

// Name implements vc.Program.
func (b *MultiBFS) Name() string { return "multibfs" }

// Lanes implements vc.LaneProgram.
func (b *MultiBFS) Lanes() int { return len(b.Sources) }

// InitValueLane implements vc.LaneProgram: lane q starts at 0 on its own
// source and LaneInf everywhere else.
func (b *MultiBFS) InitValueLane(v uint32, lane int, n uint32) uint32 {
	if v == b.Sources[lane] {
		return 0
	}
	return LaneInf
}

// InitValue implements vc.Program (lane 0's view, for single-lane engines).
func (b *MultiBFS) InitValue(v, n uint32) uint32 { return b.InitValueLane(v, 0, n) }

// InitActive implements vc.Program: the union of the lane sources.
func (b *MultiBFS) InitActive(n uint32) vc.InitSet {
	return vc.InitSet{Verts: b.active}
}

// Process implements vc.Program, mirroring BFS.Process per lane exactly.
func (b *MultiBFS) Process(ctx vc.Context, msgs []vc.Msg) {
	lc := ctx.(vc.LaneContext)
	if ctx.Superstep() == 0 {
		// Each lane whose source this vertex is announces depth 1.
		v := ctx.Vertex()
		for lane, src := range b.Sources {
			if src != v {
				continue
			}
			for _, dst := range ctx.OutEdges() {
				ctx.Send(dst, packLane(lane, 1))
			}
		}
		ctx.VoteToHalt()
		return
	}
	best := make([]uint32, len(b.Sources))
	for i := range best {
		best[i] = LaneInf
	}
	for _, m := range msgs {
		lane, d := unpackLane(m.Data)
		if lane < len(best) && d < best[lane] {
			best[lane] = d
		}
	}
	for lane, d := range best {
		if d >= lc.ValueLane(lane) {
			continue
		}
		lc.SetValueLane(lane, d)
		next := d + 1
		for _, dst := range ctx.OutEdges() {
			ctx.Send(dst, packLane(lane, next))
		}
	}
	ctx.VoteToHalt()
}

// MultiSSSP computes shortest path distances from K sources at once, one
// lane per source. Lane q's extracted result is bit-identical to
// SSSP{Source: Sources[q]} whenever every finite distance is below
// LaneInf (always true for this repository's graphs).
type MultiSSSP struct {
	Sources []uint32
	active  []uint32
}

// NewMultiSSSP validates the batch and builds the program.
func NewMultiSSSP(sources []uint32) (*MultiSSSP, error) {
	active, err := laneSources("multisssp", sources)
	if err != nil {
		return nil, err
	}
	return &MultiSSSP{Sources: append([]uint32(nil), sources...), active: active}, nil
}

// Name implements vc.Program.
func (s *MultiSSSP) Name() string { return "multisssp" }

// Lanes implements vc.LaneProgram.
func (s *MultiSSSP) Lanes() int { return len(s.Sources) }

// InitValueLane implements vc.LaneProgram.
func (s *MultiSSSP) InitValueLane(v uint32, lane int, n uint32) uint32 {
	if v == s.Sources[lane] {
		return 0
	}
	return LaneInf
}

// InitValue implements vc.Program (lane 0's view).
func (s *MultiSSSP) InitValue(v, n uint32) uint32 { return s.InitValueLane(v, 0, n) }

// InitActive implements vc.Program.
func (s *MultiSSSP) InitActive(n uint32) vc.InitSet {
	return vc.InitSet{Verts: s.active}
}

// Process implements vc.Program, mirroring SSSP.Process per lane exactly:
// superstep 0 relaxes each source lane from distance 0; later supersteps
// relax any lane whose distance a message improved.
func (s *MultiSSSP) Process(ctx vc.Context, msgs []vc.Msg) {
	lc := ctx.(vc.LaneContext)
	relax := func(lane int, best uint32) {
		out := ctx.OutEdges()
		weights := ctx.OutWeights()
		for i, dst := range out {
			w := uint32(1)
			if weights != nil {
				w = weights[i]
			}
			next := best + w
			if next < best { // overflow guard
				next = LaneInf
			}
			if next < LaneInf {
				ctx.Send(dst, packLane(lane, next))
			}
		}
	}
	if ctx.Superstep() == 0 {
		v := ctx.Vertex()
		for lane, src := range s.Sources {
			if src != v {
				continue
			}
			lc.SetValueLane(lane, 0)
			relax(lane, 0)
		}
		ctx.VoteToHalt()
		return
	}
	best := make([]uint32, len(s.Sources))
	for i := range best {
		best[i] = LaneInf
	}
	for _, m := range msgs {
		lane, d := unpackLane(m.Data)
		if lane < len(best) && d < best[lane] {
			best[lane] = d
		}
	}
	for lane, d := range best {
		if d >= lc.ValueLane(lane) {
			continue
		}
		lc.SetValueLane(lane, d)
		relax(lane, d)
	}
	ctx.VoteToHalt()
}

// LaneResult extracts lane's per-vertex values from a lane-strided result
// (as loaded by Values.LoadAll on a Lanes()-lane array), mapping the
// packed sentinel LaneInf back to Inf so the slice compares bit-identical
// to the matching single-source run.
func LaneResult(slots []uint32, lanes, lane int) []uint32 {
	n := len(slots) / lanes
	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		d := slots[v*lanes+lane]
		if d >= LaneInf {
			d = Inf
		}
		out[v] = d
	}
	return out
}
