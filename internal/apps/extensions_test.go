package apps

import (
	"testing"

	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/vc"
)

// weightFor derives a deterministic pseudo-random weight in [1, 16].
func weightFor(src, dst uint32) uint32 {
	return uint32(vc.Hash64(uint64(src), uint64(dst))%16) + 1
}

// symWeights attaches symmetric weights (w(u,v) == w(v,u)) so undirected
// SSSP distances are well-defined.
func symWeights(edges []graphio.Edge) []graphio.WeightedEdge {
	return graphio.AttachWeights(edges, func(s, d uint32) uint32 {
		if s > d {
			s, d = d, s
		}
		return weightFor(s, d)
	})
}

// bruteDijkstra computes shortest path distances for the weighted edges.
func bruteDijkstra(wedges []graphio.WeightedEdge, n, source uint32) []uint32 {
	type arc struct{ to, w uint32 }
	adj := make([][]arc, n)
	for _, e := range wedges {
		adj[e.Src] = append(adj[e.Src], arc{e.Dst, e.Weight})
	}
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	visited := make([]bool, n)
	for {
		// O(n^2) extract-min; fine at test scale.
		u := uint32(Inf)
		best := uint32(Inf)
		for v := uint32(0); v < n; v++ {
			if !visited[v] && dist[v] < best {
				best = dist[v]
				u = v
			}
		}
		if u == uint32(Inf) {
			break
		}
		visited[u] = true
		for _, a := range adj[u] {
			if nd := dist[u] + a.w; nd < dist[a.to] {
				dist[a.to] = nd
			}
		}
	}
	return dist
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(8, 6, 77))
	n := graphio.NumVertices(edges)
	wedges := symWeights(edges)
	res := vc.NewRefWeighted(wedges, n).Run(&SSSP{Source: 2}, 300)
	want := bruteDijkstra(wedges, n, 2)
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Values[v], want[v])
		}
	}
	if !res.Converged {
		t.Fatal("SSSP should converge")
	}
}

func TestSSSPUnweightedEqualsBFS(t *testing.T) {
	edges, _ := gen.Grid(10, 10)
	sssp := vc.NewRef(edges, 100).Run(&SSSP{Source: 0}, 200)
	bfs := vc.NewRef(edges, 100).Run(&BFS{Source: 0}, 200)
	for v := range bfs.Values {
		if sssp.Values[v] != bfs.Values[v] {
			t.Fatalf("unweighted SSSP dist[%d] = %d, BFS %d", v, sssp.Values[v], bfs.Values[v])
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	edges := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	res := vc.NewRef(edges, 3).Run(&SSSP{Source: 0}, 20)
	if res.Values[2] != Inf {
		t.Fatalf("unreachable dist = %d", res.Values[2])
	}
}

func TestWCCTwoComponents(t *testing.T) {
	var edges []graphio.Edge
	// Component A: 0-1-2, component B: 3-4.
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {3, 4}} {
		edges = append(edges, graphio.Edge{Src: e[0], Dst: e[1]}, graphio.Edge{Src: e[1], Dst: e[0]})
	}
	res := vc.NewRef(edges, 5).Run(&WCC{}, 50)
	want := []uint32{0, 0, 0, 3, 3}
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("wcc = %v, want %v", res.Values, want)
		}
	}
	if !res.Converged {
		t.Fatal("WCC should converge")
	}
}

func TestWCCRMAT(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(9, 4, 15))
	n := graphio.NumVertices(edges)
	res := vc.NewRef(edges, n).Run(&WCC{}, 200)
	// Verify: endpoints of every edge share a label, and each label is
	// the smallest vertex id carrying it.
	for _, e := range edges {
		if res.Values[e.Src] != res.Values[e.Dst] {
			t.Fatalf("edge %v spans labels %d/%d", e, res.Values[e.Src], res.Values[e.Dst])
		}
	}
	for v, l := range res.Values {
		if l > uint32(v) {
			t.Fatalf("label[%d] = %d exceeds own id", v, l)
		}
	}
	for v, l := range res.Values {
		if res.Values[l] != l {
			t.Fatalf("label %d (of %d) is not a fixed point", l, v)
		}
	}
}

func TestKCorePeelsCorrectly(t *testing.T) {
	// A triangle (0,1,2) plus a pendant chain 2-3-4: the 2-core is the
	// triangle.
	var edges []graphio.Edge
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}} {
		edges = append(edges, graphio.Edge{Src: e[0], Dst: e[1]}, graphio.Edge{Src: e[1], Dst: e[0]})
	}
	res := vc.NewRef(edges, 5).Run(&KCore{K: 2}, 50)
	wantIn := []bool{true, true, true, false, false}
	for v, want := range wantIn {
		if got := InCore(res.Values[v]); got != want {
			t.Fatalf("InCore(%d) = %v, want %v (values %v)", v, got, want, res.Values)
		}
	}
	if !res.Converged {
		t.Fatal("k-core should converge")
	}
}

func TestKCoreInvariant(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(9, 6, 33))
	n := graphio.NumVertices(edges)
	const k = 4
	res := vc.NewRef(edges, n).Run(&KCore{K: k}, 300)
	if !res.Converged {
		t.Fatal("k-core did not converge")
	}
	adj := adjacency(edges, n)
	// Every core member has >= k core neighbors.
	for v := uint32(0); v < n; v++ {
		if !InCore(res.Values[v]) {
			continue
		}
		coreDeg := uint32(0)
		for _, nb := range adj[v] {
			if InCore(res.Values[nb]) {
				coreDeg++
			}
		}
		if coreDeg < k {
			t.Fatalf("core vertex %d has only %d core neighbors", v, coreDeg)
		}
		if res.Values[v] != coreDeg {
			t.Fatalf("core vertex %d remaining degree %d != %d", v, res.Values[v], coreDeg)
		}
	}
}

func TestKCoreZeroKKeepsAll(t *testing.T) {
	edges := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	res := vc.NewRef(edges, 3).Run(&KCore{K: 0}, 20)
	for v, val := range res.Values {
		if !InCore(val) {
			t.Fatalf("K=0 removed vertex %d", v)
		}
	}
}
