package graphchi

import (
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

func TestGraphChiSSSPWeighted(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 5)
	wedges := graphio.AttachWeights(edges, func(s, d uint32) uint32 {
		if s > d {
			s, d = d, s
		}
		return uint32(vc.Hash64(uint64(s), uint64(d))%16) + 1
	})
	dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
	ivs := csr.Partition(graphio.InDegrees(edges, n), csr.MsgBytes, 2048)
	eng := NewWeighted(dev, "g", wedges, ivs, Config{MaxSupersteps: 300})
	res, err := eng.Run(&apps.SSSP{Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := vc.NewRefWeighted(wedges, n).Run(&apps.SSSP{Source: 1}, 300)
	for v := range ref.Values {
		if res.Values[v] != ref.Values[v] {
			t.Fatalf("dist[%d] = %d, ref %d", v, res.Values[v], ref.Values[v])
		}
	}
}

func TestGraphChiWCC(t *testing.T) {
	edges, n := rmatEdges(t, 9, 4, 3)
	runBoth(t, edges, n, &apps.WCC{}, 100)
}

func TestGraphChiKCore(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 13)
	runBoth(t, edges, n, &apps.KCore{K: 3}, 200)
}
