// Package graphchi is the GraphChi baseline engine (Kyrola et al., the
// paper's comparison system), reimplemented over the same device model and
// vertex-centric contract as MultiLogVC.
//
// It follows the parallel-sliding-windows design: to process vertex
// interval k it loads shard k in full (all in-edges of the interval) plus
// the sliding-window block of interval k inside every other shard (the
// interval's out-edges), processes the interval's vertices, and writes
// everything back. Messages travel as edge values. The decisive property
// the paper measures is reproduced exactly: even when one vertex of an
// interval is active, the whole shard is loaded — and with real active
// sets, effectively every shard is loaded every superstep.
//
// Execution is synchronous (two value slots per edge, see internal/shard)
// so results are bit-identical to the reference engine and MultiLogVC.
package graphchi

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"multilogvc/internal/bitset"
	"multilogvc/internal/csr"
	"multilogvc/internal/graphio"
	"multilogvc/internal/metrics"
	"multilogvc/internal/obsv"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/shard"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// Config tunes the baseline engine.
type Config struct {
	// MaxSupersteps defaults to 15.
	MaxSupersteps int
	// Workers is the vertex-processing parallelism; defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// StopAfter, when non-nil, ends the run after the superstep for which
	// it returns true (same contract as the MultiLogVC engine).
	StopAfter func(superstep int, cumProcessed uint64) bool
	// Context, when non-nil, aborts the run at the next superstep boundary
	// once cancelled or past its deadline. The baseline has no checkpoint
	// machinery, so the run just stops with the context's error wrapped.
	Context context.Context
	// Cache is the page cache attached to the device, if any; the engine
	// only reads its counters for per-superstep reporting. The caller owns
	// attachment and lifecycle.
	Cache *pagecache.Cache
}

func (c Config) withDefaults() Config {
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = 15
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Engine is a GraphChi-style shard engine.
type Engine struct {
	dev      *ssd.Device
	name     string
	edges    []graphio.WeightedEdge
	weighted bool
	ivs      []csr.Interval
	n        uint32
	idx      *csr.IntervalIndex
	cfg      Config
}

// New creates the engine. Intervals are shared with the CSR layout so both
// engines process identical vertex groupings; shards are built per run
// (edge values are program state).
func New(dev *ssd.Device, name string, edges []graphio.Edge, ivs []csr.Interval, cfg Config) *Engine {
	wedges := make([]graphio.WeightedEdge, len(edges))
	for i, e := range edges {
		wedges[i] = graphio.WeightedEdge{Src: e.Src, Dst: e.Dst}
	}
	n := ivs[len(ivs)-1].Hi
	return &Engine{
		dev: dev, name: name, edges: wedges, ivs: ivs, n: n,
		idx: csr.NewIntervalIndex(ivs, n), cfg: cfg.withDefaults(),
	}
}

// NewWeighted is New for weighted graphs: record weights flow to
// Context.OutWeights.
func NewWeighted(dev *ssd.Device, name string, edges []graphio.WeightedEdge, ivs []csr.Interval, cfg Config) *Engine {
	kept := make([]graphio.WeightedEdge, len(edges))
	copy(kept, edges)
	n := ivs[len(ivs)-1].Hi
	return &Engine{
		dev: dev, name: name, edges: kept, weighted: true, ivs: ivs, n: n,
		idx: csr.NewIntervalIndex(ivs, n), cfg: cfg.withDefaults(),
	}
}

// Result carries the run report and final vertex values.
type Result struct {
	Report *metrics.Report
	Values []uint32
}

// send is one buffered message emitted during vertex processing.
type send struct {
	src, dst, data uint32
}

// Run executes prog to convergence or the superstep cap.
func (e *Engine) Run(prog vc.Program) (*Result, error) {
	cfg := e.cfg
	report := &metrics.Report{Engine: "graphchi", App: prog.Name(), Graph: e.name}
	wallStart := time.Now()

	if cfg.Context != nil {
		// Let the device's retry backoff observe cancellation too.
		e.dev.SetRunContext(cfg.Context)
		defer e.dev.SetRunContext(nil)
	}

	auxUser, isAux := prog.(vc.AuxUser)
	initVal := uint32(0)
	if isAux {
		initVal = auxUser.AuxInit(e.n)
	}
	// Shards are program state (edge values); build fresh per run. Setup
	// IO is excluded from superstep accounting, mirroring how the paper
	// reports per-run execution times on preformatted graphs.
	prevS, prevIv := e.dev.SetStage(obsv.StageBuild, -1)
	store, err := shard.BuildWeighted(e.dev, e.name+".gc", e.edges, e.ivs, initVal)
	if err != nil {
		e.dev.SetStage(prevS, prevIv)
		return nil, err
	}
	defer store.Remove()

	values, err := csr.CreateValuesFunc(e.dev, e.name+".gc.values", e.n, func(v uint32) uint32 {
		return prog.InitValue(v, e.n)
	})
	e.dev.SetStage(prevS, prevIv)
	if err != nil {
		return nil, err
	}

	active := bitset.New(int(e.n))
	is := prog.InitActive(e.n)
	if is.All {
		for v := uint32(0); v < e.n; v++ {
			active.Set(int(v))
		}
	} else {
		for _, v := range is.Verts {
			active.Set(int(v))
		}
	}

	var cumProcessed uint64
	converged := false
	for step := 0; step < cfg.MaxSupersteps; step++ {
		if !active.Any() {
			converged = true
			break
		}
		if cfg.Context != nil {
			if err := cfg.Context.Err(); err != nil {
				return nil, fmt.Errorf("graphchi: run aborted at superstep %d: %w", step, err)
			}
		}
		stepStart := time.Now()
		devBefore := e.dev.Stats()
		var cacheBefore pagecache.Stats
		if cfg.Cache != nil {
			cacheBefore = cfg.Cache.Stats()
		}
		ss := metrics.SuperstepStats{Superstep: step}

		p := step % 2
		nextActive := bitset.New(int(e.n))
		halted := bitset.New(int(e.n))

		for k := range e.ivs {
			iv := e.ivs[k]
			// GraphChi can skip a shard only when the whole interval is
			// inactive; aux programs need every shard's copy-forward to
			// keep edge state coherent, so they never skip.
			if !isAux && !active.AnyInRange(int(iv.Lo), int(iv.Hi)) {
				continue
			}
			if err := e.processInterval(&intervalRun{
				prog: prog, store: store, values: values, k: k, p: p,
				step: step, active: active, nextActive: nextActive,
				halted: halted, isAux: isAux, ss: &ss,
			}); err != nil {
				return nil, err
			}
		}

		// Next superstep's active set: message receivers plus processed
		// vertices that did not halt. A message reactivates a vertex even
		// if it voted to halt this superstep.
		carried := active
		carried.AndNot(halted)
		nextActive.Or(carried)
		active = nextActive

		devDelta := e.dev.Stats().Sub(devBefore)
		ss.Stages = metrics.StagesFromDevice(devDelta)
		ss.PagesRead = devDelta.PagesRead
		ss.PagesWritten = devDelta.PagesWritten
		ss.StorageTime = devDelta.StorageTime()
		ss.ReadBatchPages = devDelta.ReadBatchPages
		ss.WriteBatchPages = devDelta.WriteBatchPages
		ss.ReadLatencyUS = devDelta.ReadLatencyUS
		ss.WriteLatencyUS = devDelta.WriteLatencyUS
		ss.ComputeTime = time.Since(stepStart)
		if cache := cfg.Cache; cache != nil {
			cd := cache.Stats().Sub(cacheBefore)
			ss.CacheHits = cd.Hits
			ss.CacheMisses = cd.Misses
			ss.CacheEvictions = cd.Evictions
			ss.PrefetchInserts = cd.PrefetchInserts
			ss.PrefetchHits = cd.PrefetchHits
			ss.PrefetchDropped = cd.PrefetchDropped
		}
		cumProcessed += ss.Active
		report.Supersteps = append(report.Supersteps, ss)

		if cfg.StopAfter != nil && cfg.StopAfter(step, cumProcessed) {
			break
		}
	}
	if !converged {
		converged = !active.Any()
	}
	report.Converged = converged
	report.WallTime = time.Since(wallStart)
	report.Finish()

	finalValues, err := values.LoadAll()
	if err != nil {
		return nil, err
	}
	return &Result{Report: report, Values: finalValues}, nil
}

// intervalRun bundles the state of one interval's processing.
type intervalRun struct {
	prog       vc.Program
	store      *shard.Store
	values     *csr.Values
	k          int
	p          int
	step       int
	active     *bitset.Set
	nextActive *bitset.Set
	halted     *bitset.Set
	isAux      bool
	ss         *metrics.SuperstepStats
}

func (e *Engine) processInterval(ir *intervalRun) error {
	iv := e.ivs[ir.k]
	p := ir.p
	// All shard and value IO for this interval is vertex-processing work in
	// GraphChi's PSW model.
	prevS, prevIv := e.dev.SetStage(obsv.StageVertex, ir.k)
	defer e.dev.SetStage(prevS, prevIv)

	// Load shard k in full (the whole-shard cost the paper measures).
	recs, err := ir.store.LoadShard(ir.k)
	if err != nil {
		return err
	}
	// Copy-forward: slots for the next superstep start from the current
	// value unless a message already arrived there.
	otherFlag := uint32(shard.FlagMsg0 << (1 - p))
	curFlag := uint32(shard.FlagMsg0 << p)
	for i := range recs {
		if recs[i].Flags&otherFlag == 0 {
			recs[i].Val[1-p] = recs[i].Val[p]
		}
	}

	// Index in-edges by destination (preserving source-sorted order) and
	// extract this superstep's messages.
	inEdges := make(map[uint32][]int) // dst -> record indices
	msgs := make(map[uint32][]vc.Msg)
	for i := range recs {
		r := &recs[i]
		inEdges[r.Dst] = append(inEdges[r.Dst], i)
		if r.Flags&curFlag != 0 {
			msgs[r.Dst] = append(msgs[r.Dst], vc.Msg{Src: r.Src, Data: r.Val[p]})
			r.Flags &^= curFlag // consumed
		}
	}

	// Load the sliding windows holding this interval's out-edges. The
	// self-window is served from the in-memory shard records.
	windows := make([]*shard.Window, len(e.ivs))
	for j := range e.ivs {
		if j == ir.k {
			continue
		}
		w, err := ir.store.LoadWindow(j, ir.k)
		if err != nil {
			return err
		}
		windows[j] = w
	}

	// Out-edge lists per vertex, assembled from the windows (and the
	// self block inside shard k).
	outEdges := make(map[uint32][]uint32)
	var outWeights map[uint32][]uint32
	if e.weighted {
		outWeights = make(map[uint32][]uint32)
	}
	collect := func(ws []shard.Record) {
		for i := range ws {
			r := &ws[i]
			if r.Src >= iv.Lo && r.Src < iv.Hi {
				outEdges[r.Src] = append(outEdges[r.Src], r.Dst)
				if outWeights != nil {
					outWeights[r.Src] = append(outWeights[r.Src], r.Weight)
				}
			}
		}
	}
	// Iterate destination intervals in ascending order so each vertex's
	// out-edge list is sorted by destination, matching the CSR engines —
	// programs that index into OutEdges (random walk) depend on a
	// consistent order.
	for j := range e.ivs {
		if j == ir.k {
			collect(recs) // self block
		} else if w := windows[j]; w != nil {
			collect(w.Records())
		}
	}

	// The active vertices of this interval.
	var verts []uint32
	ir.active.RangeInRange(int(iv.Lo), int(iv.Hi), func(i int) bool {
		verts = append(verts, uint32(i))
		return true
	})
	if len(verts) == 0 && !ir.isAux {
		return nil
	}
	ir.ss.Active += uint64(len(verts))

	// Vertex values for the interval.
	vb, _, err := ir.values.LoadForVerts(verts)
	if err != nil {
		return err
	}

	// Process vertices in parallel; sends buffer per worker and apply
	// sequentially afterwards (edge records are shared state).
	workers := e.cfg.Workers
	if workers > len(verts) {
		workers = len(verts)
	}
	sends := make([][]send, workers)
	haltedFlags := make([]bool, len(verts))
	var wg sync.WaitGroup
	chunk := 0
	if workers > 0 {
		chunk = (len(verts) + workers - 1) / workers
	}
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(verts) {
			hi = len(verts)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ctx := &chiCtx{eng: e, ir: ir, vb: vb, recs: recs, inEdges: inEdges, outEdges: outEdges, outWeights: outWeights}
			for i := lo; i < hi; i++ {
				v := verts[i]
				ctx.vertex = v
				ctx.haltedFlag = &haltedFlags[i]
				ctx.sends = &sends[w]
				ctx.prepare()
				ir.prog.Process(ctx, msgs[v])
				ctx.persistAux()
			}
		}(w, lo, hi)
	}
	wg.Wait()

	for i, v := range verts {
		if haltedFlags[i] {
			ir.halted.Set(int(v))
		} else {
			ir.halted.Clear(int(v))
		}
		ir.ss.MsgsDelivered += uint64(len(msgs[v]))
	}

	// Apply buffered sends: write the message into the out-edge record
	// (self block or window) and activate the destination.
	for _, bucket := range sends {
		for _, s := range bucket {
			ir.ss.MsgsSent++
			ir.nextActive.Set(int(s.dst))
			j := e.idx.Of(s.dst)
			var rec *shard.Record
			if j == ir.k {
				rec = findRecord(recs, inEdges, s.src, s.dst)
			} else if w := windows[j]; w != nil {
				rec = w.Find(s.src, s.dst)
			}
			if rec == nil {
				// Message along a non-existent edge: GraphChi cannot
				// deliver it; our programs never do this.
				continue
			}
			rec.Val[1-p] = s.data
			rec.Flags |= otherFlag
		}
	}

	// Write everything back.
	if err := ir.store.StoreShard(ir.k, recs); err != nil {
		return err
	}
	for j, w := range windows {
		if j == ir.k || w == nil {
			continue
		}
		if err := w.WriteBack(); err != nil {
			return err
		}
	}
	if _, err := vb.Flush(); err != nil {
		return err
	}
	return nil
}

// findRecord locates (src, dst) among shard k's records using the per-dst
// index (records per dst are source-sorted).
func findRecord(recs []shard.Record, inEdges map[uint32][]int, src, dst uint32) *shard.Record {
	idxs := inEdges[dst]
	i := sort.Search(len(idxs), func(i int) bool { return recs[idxs[i]].Src >= src })
	if i < len(idxs) && recs[idxs[i]].Src == src {
		return &recs[idxs[i]]
	}
	return nil
}

// chiCtx implements vc.Context for the GraphChi engine.
type chiCtx struct {
	eng        *Engine
	ir         *intervalRun
	vb         *csr.ValueBatch
	recs       []shard.Record
	inEdges    map[uint32][]int
	outEdges   map[uint32][]uint32
	outWeights map[uint32][]uint32 // nil for unweighted graphs

	vertex     uint32
	haltedFlag *bool
	sends      *[]send

	srcsBuf []uint32
	auxBuf  []uint32
	hasAux  bool
}

// prepare assembles the aux view (in-edge sources + current edge values)
// for AuxUser programs.
func (c *chiCtx) prepare() {
	c.hasAux = false
	if !c.ir.isAux {
		return
	}
	idxs := c.inEdges[c.vertex]
	c.srcsBuf = c.srcsBuf[:0]
	c.auxBuf = c.auxBuf[:0]
	for _, i := range idxs {
		c.srcsBuf = append(c.srcsBuf, c.recs[i].Src)
		c.auxBuf = append(c.auxBuf, c.recs[i].Val[c.ir.p])
	}
	c.hasAux = true
}

// persistAux writes aux mutations into the next-superstep value slots
// (unless a fresh message already claimed the slot).
func (c *chiCtx) persistAux() {
	if !c.hasAux {
		return
	}
	p := c.ir.p
	otherFlag := uint32(shard.FlagMsg0 << (1 - p))
	for j, i := range c.inEdges[c.vertex] {
		r := &c.recs[i]
		if r.Flags&otherFlag == 0 && r.Val[1-p] != c.auxBuf[j] {
			r.Val[1-p] = c.auxBuf[j]
		}
	}
}

func (c *chiCtx) Superstep() int      { return c.ir.step }
func (c *chiCtx) NumVertices() uint32 { return c.eng.n }
func (c *chiCtx) Vertex() uint32      { return c.vertex }
func (c *chiCtx) Value() uint32       { return c.vb.Get(c.vertex) }
func (c *chiCtx) SetValue(v uint32)   { c.vb.Set(c.vertex, v) }
func (c *chiCtx) VoteToHalt()         { *c.haltedFlag = true }
func (c *chiCtx) OutEdges() []uint32  { return c.outEdges[c.vertex] }
func (c *chiCtx) OutWeights() []uint32 {
	if c.outWeights == nil {
		return nil
	}
	return c.outWeights[c.vertex]
}
func (c *chiCtx) Send(dst, data uint32) {
	*c.sends = append(*c.sends, send{src: c.vertex, dst: dst, data: data})
}
func (c *chiCtx) InEdgeSources() []uint32 {
	if !c.hasAux {
		return nil
	}
	return c.srcsBuf
}
func (c *chiCtx) Aux() []uint32 {
	if !c.hasAux {
		return nil
	}
	return c.auxBuf
}
