package graphchi

import (
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

func newEngine(t *testing.T, edges []graphio.Edge, n uint32, cfg Config) *Engine {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
	if m := graphio.NumVertices(edges); m > n {
		n = m
	}
	ivs := csr.Partition(graphio.InDegrees(edges, n), csr.MsgBytes, 2048)
	return New(dev, "g", edges, ivs, cfg)
}

// runBoth executes prog on the GraphChi engine and the reference engine
// and asserts identical values.
func runBoth(t *testing.T, edges []graphio.Edge, n uint32, prog vc.Program, maxSteps int) *Result {
	t.Helper()
	eng := newEngine(t, edges, n, Config{MaxSupersteps: maxSteps})
	got, err := eng.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := vc.NewRef(edges, n).Run(prog, maxSteps)
	diff := 0
	for v := range want.Values {
		if got.Values[v] != want.Values[v] {
			diff++
			if diff <= 5 {
				t.Errorf("value[%d] = %d, want %d", v, got.Values[v], want.Values[v])
			}
		}
	}
	if diff > 0 {
		t.Fatalf("%d/%d values differ from reference", diff, len(want.Values))
	}
	return got
}

func rmatEdges(t *testing.T, scale, ef int, seed int64) ([]graphio.Edge, uint32) {
	t.Helper()
	edges, err := gen.RMAT(gen.DefaultRMAT(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return edges, uint32(1 << scale)
}

func TestGraphChiBFS(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 11)
	runBoth(t, edges, n, &apps.BFS{Source: 3}, 50)
}

func TestGraphChiBFSGrid(t *testing.T) {
	edges, _ := gen.Grid(12, 12)
	runBoth(t, edges, 144, &apps.BFS{Source: 0}, 60)
}

func TestGraphChiPageRank(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 7)
	runBoth(t, edges, n, &apps.PageRank{}, 15)
}

func TestGraphChiCDLP(t *testing.T) {
	edges, err := gen.PlantedPartition(3, 40, 8, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, edges, graphio.NumVertices(edges), &apps.CDLP{}, 15)
}

func TestGraphChiColoring(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 19)
	res := runBoth(t, edges, n, &apps.Coloring{}, 40)
	for _, e := range edges {
		if e.Src != e.Dst && res.Values[e.Src] == res.Values[e.Dst] {
			t.Fatalf("improper coloring on edge %v", e)
		}
	}
}

func TestGraphChiMIS(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 23)
	res := runBoth(t, edges, n, &apps.MIS{Seed: 5}, 100)
	adj := make(map[uint32][]uint32)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	if msg := apps.IsIndependentSet(res.Values, func(v uint32) []uint32 { return adj[v] }); msg != "" {
		t.Fatal(msg)
	}
}

func TestGraphChiRandomWalk(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 31)
	runBoth(t, edges, n, &apps.RandomWalk{SampleEvery: 16, WalkLength: 8, Seed: 3}, 20)
}

func TestGraphChiLoadsWholeShardsEverySuperstep(t *testing.T) {
	// The defining inefficiency: per-superstep page reads stay near the
	// whole-graph volume even as BFS's frontier stays tiny.
	edges, n := rmatEdges(t, 10, 8, 3)
	eng := newEngine(t, edges, n, Config{MaxSupersteps: 8})
	res, err := eng.Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	ss := res.Report.Supersteps
	if len(ss) < 4 {
		t.Skip("BFS finished too quickly")
	}
	// Superstep 1 (tiny frontier) must still read a large share of what
	// the peak superstep reads — shards are loaded regardless.
	peak := uint64(0)
	for _, s := range ss {
		if s.PagesRead > peak {
			peak = s.PagesRead
		}
	}
	if ss[1].PagesRead*3 < peak {
		t.Fatalf("superstep 1 read %d pages vs peak %d — shard engine unexpectedly selective", ss[1].PagesRead, peak)
	}
}

func TestGraphChiWorkerCountInvariance(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 2)
	r1, err := newEngine(t, edges, n, Config{MaxSupersteps: 15, Workers: 1}).Run(&apps.Coloring{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := newEngine(t, edges, n, Config{MaxSupersteps: 15, Workers: 4}).Run(&apps.Coloring{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Values {
		if r1.Values[v] != r2.Values[v] {
			t.Fatalf("worker count changed results at vertex %d", v)
		}
	}
}

func TestGraphChiStopAfter(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 13)
	eng := newEngine(t, edges, n, Config{
		MaxSupersteps: 50,
		StopAfter:     func(step int, cum uint64) bool { return step >= 2 },
	})
	res, err := eng.Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Supersteps) != 3 {
		t.Fatalf("ran %d supersteps, want 3", len(res.Report.Supersteps))
	}
}

func TestGraphChiReportIdentity(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 1)
	res, err := newEngine(t, edges, n, Config{MaxSupersteps: 5}).Run(&apps.PageRank{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Engine != "graphchi" {
		t.Fatalf("engine name = %q", res.Report.Engine)
	}
	if res.Report.PagesRead == 0 || res.Report.PagesWritten == 0 {
		t.Fatal("no IO recorded")
	}
}

func TestGraphChiOutEdgesSorted(t *testing.T) {
	// Programs may index OutEdges (random walk); the contract is
	// ascending destination order, assembled across windows.
	edges, n := rmatEdges(t, 8, 6, 77)
	eng := newEngine(t, edges, n, Config{MaxSupersteps: 1})
	if _, err := eng.Run(orderProbe{t: t}); err != nil {
		t.Fatal(err)
	}
}

type orderProbe struct{ t *testing.T }

func (orderProbe) Name() string                   { return "orderprobe" }
func (orderProbe) InitValue(v, n uint32) uint32   { return 0 }
func (orderProbe) InitActive(n uint32) vc.InitSet { return vc.InitSet{All: true} }
func (p orderProbe) Process(ctx vc.Context, _ []vc.Msg) {
	out := ctx.OutEdges()
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			p.t.Errorf("vertex %d OutEdges not strictly ascending: %v", ctx.Vertex(), out)
			break
		}
	}
	ctx.VoteToHalt()
}
