package core

import (
	"strings"
	"sync"
	"testing"

	"multilogvc/internal/apps"

	"multilogvc/internal/pagecache"
	"multilogvc/internal/ssd"
)

func TestLaneBatchBFSBitIdentical(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 31)
	g := buildGraph(t, edges, n, 2048)
	dev := g.Device()
	sources := []uint32{3, 7, 100, 400, 3} // duplicate source on purpose

	singles := make([][]uint32, len(sources))
	var singlePages uint64
	for i, src := range sources {
		before := dev.Stats()
		res, err := New(g, Config{MaxSupersteps: 50}).Run(&apps.BFS{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = res.Values
		singlePages += dev.Stats().Sub(before).PagesRead
	}

	prog, err := apps.NewMultiBFS(sources)
	if err != nil {
		t.Fatal(err)
	}
	sc := ssd.NewScope()
	res, err := New(g, Config{
		MaxSupersteps: 50, RunTag: "batch", Ephemeral: true, Scope: sc,
	}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for lane := range sources {
		got := apps.LaneResult(res.Values, len(sources), lane)
		if len(got) != len(singles[lane]) {
			t.Fatalf("lane %d: %d values, want %d", lane, len(got), len(singles[lane]))
		}
		for v := range got {
			if got[v] != singles[lane][v] {
				t.Fatalf("lane %d vertex %d: batched %d != single %d", lane, v, got[v], singles[lane][v])
			}
		}
	}

	// One batched pass must cost fewer device reads than K sequential runs.
	batchPages := sc.Stats().PagesRead
	if batchPages == 0 {
		t.Fatal("scope saw no read traffic; scoping is broken")
	}
	if batchPages >= singlePages {
		t.Fatalf("batched run read %d pages, not fewer than %d sequential", batchPages, singlePages)
	}
	t.Logf("pages read: %d batched vs %d sequential (%.0f%%)",
		batchPages, singlePages, 100*float64(batchPages)/float64(singlePages))

	// Ephemeral: the run's scratch namespace must be gone.
	for _, name := range dev.ListFiles() {
		if strings.HasPrefix(name, "g.batch.") {
			t.Fatalf("ephemeral run left scratch file %q", name)
		}
	}
}

func TestLaneBatchSSSPBitIdenticalWeighted(t *testing.T) {
	_, _, g := weightedFixture(t, 8, 5)
	sources := []uint32{0, 9, 200}

	singles := make([][]uint32, len(sources))
	for i, src := range sources {
		res, err := New(g, Config{MaxSupersteps: 300}).Run(&apps.SSSP{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = res.Values
	}

	prog, err := apps.NewMultiSSSP(sources)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(g, Config{MaxSupersteps: 300, RunTag: "sbatch", Ephemeral: true}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for lane := range sources {
		got := apps.LaneResult(res.Values, len(sources), lane)
		for v := range got {
			if got[v] != singles[lane][v] {
				t.Fatalf("lane %d vertex %d: batched %d != single %d", lane, v, got[v], singles[lane][v])
			}
		}
	}
}

func TestLaneBatchBFSCachedParity(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 13)
	g := buildGraph(t, edges, n, 2048)
	dev := g.Device()
	cache := pagecache.NewSharded(256, dev.PageSize(), 4)
	dev.AttachCache(cache)
	sources := []uint32{1, 42, 300, 77}

	singles := make([][]uint32, len(sources))
	for i, src := range sources {
		res, err := New(g, Config{MaxSupersteps: 50, Cache: cache}).Run(&apps.BFS{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = res.Values
	}

	prog, err := apps.NewMultiBFS(sources)
	if err != nil {
		t.Fatal(err)
	}
	pf := pagecache.NewPrefetcher(8)
	defer pf.Close()
	res, err := New(g, Config{
		MaxSupersteps: 50, Cache: cache, Prefetcher: pf,
		RunTag: "cbatch", Ephemeral: true, Scope: ssd.NewScope(),
	}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for lane := range sources {
		got := apps.LaneResult(res.Values, len(sources), lane)
		for v := range got {
			if got[v] != singles[lane][v] {
				t.Fatalf("lane %d vertex %d: batched %d != single %d", lane, v, got[v], singles[lane][v])
			}
		}
	}
	if p := cache.PinnedPages(); p != 0 {
		t.Fatalf("%d pages left pinned after run", p)
	}
}

// TestConcurrentScopedEngineRuns is the serving shape: two engine runs
// over one resident graph, one shared device and page cache, each with
// its own run tag, IO scope, and prefetcher. Under -race this doubles as
// the cross-run interference audit: results must be untouched by the
// neighbor, no pins may leak, and each scope must see only its own IO.
func TestConcurrentScopedEngineRuns(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 47)
	g := buildGraph(t, edges, n, 2048)
	dev := g.Device()
	cache := pagecache.NewSharded(128, dev.PageSize(), 4)
	dev.AttachCache(cache)

	// Expected values, computed sequentially first.
	want := make([][]uint32, 2)
	srcs := []uint32{5, 250}
	for i, src := range srcs {
		res, err := New(g, Config{MaxSupersteps: 50}).Run(&apps.BFS{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Values
	}

	scopes := [2]*ssd.IOScope{ssd.NewScope(), ssd.NewScope()}
	got := make([][]uint32, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pf := pagecache.NewPrefetcher(8)
			defer pf.Close()
			tag := []string{"qa", "qb"}[i]
			res, err := New(g, Config{
				MaxSupersteps: 50, Cache: cache, Prefetcher: pf,
				RunTag: tag, Ephemeral: true, Scope: scopes[i],
			}).Run(&apps.BFS{Source: srcs[i]})
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res.Values
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		for v := range want[i] {
			if got[i][v] != want[i][v] {
				t.Fatalf("run %d vertex %d: %d != %d", i, v, got[i][v], want[i][v])
			}
		}
		if scopes[i].Stats().PagesRead == 0 {
			t.Fatalf("run %d: scope saw no reads", i)
		}
	}
	if p := cache.PinnedPages(); p != 0 {
		t.Fatalf("%d pages left pinned after concurrent runs", p)
	}
	for _, name := range dev.ListFiles() {
		if strings.HasPrefix(name, "g.qa.") || strings.HasPrefix(name, "g.qb.") {
			t.Fatalf("scratch file %q survived ephemeral cleanup", name)
		}
	}
}
