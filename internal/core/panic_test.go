package core

import (
	"errors"
	"strings"
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/vc"
)

// panicProg is a BFS whose Process panics the moment it runs — the
// stand-in for a bug in program or engine internals.
type panicProg struct{ apps.BFS }

func (p *panicProg) Process(ctx vc.Context, msgs []vc.Msg) {
	panic("injected program panic")
}

// TestEnginePanicContained: a panic inside a vertex worker surfaces as a
// classified ErrPanic from RunCtx instead of killing the process, the
// run's ephemeral scratch is swept during unwinding, and the same engine
// stack still computes correct results afterwards.
func TestEnginePanicContained(t *testing.T) {
	edges, n := rmatEdges(t, 8, 8, 71)
	g := buildGraph(t, edges, n, 2048)
	dev := g.Device()

	prog := &panicProg{apps.BFS{Source: 1}}
	res, err := New(g, Config{MaxSupersteps: 10, RunTag: "pt", Ephemeral: true}).Run(prog)
	if err == nil {
		t.Fatal("panicking program returned nil error")
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("error %v does not wrap ErrPanic", err)
	}
	if res != nil {
		t.Fatalf("panicking run returned a result: %+v", res)
	}
	for _, name := range dev.ListFiles() {
		if strings.HasPrefix(name, "g.pt.") {
			t.Fatalf("ephemeral scratch %q survived the panic", name)
		}
	}

	// The graph and device are untouched: a clean run still matches the
	// reference.
	got, err := New(g, Config{MaxSupersteps: 100}).Run(&apps.BFS{Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := vc.NewRef(edges, n).Run(&apps.BFS{Source: 1}, 100)
	for v := range want.Values {
		if got.Values[v] != want.Values[v] {
			t.Fatalf("post-panic value[%d] = %d, want %d", v, got.Values[v], want.Values[v])
		}
	}
}
