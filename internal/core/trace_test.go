package core

import (
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/obsv"
)

// TestEngineTraceSpans runs a traced PageRank and checks the span stream
// matches the report: one superstep span per recorded superstep, every
// engine-stage span nested inside a superstep span on tid 1, and per-batch
// stage spans present.
func TestEngineTraceSpans(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 31)
	g := buildGraph(t, edges, n, 2048)
	tr := obsv.NewTrace()
	eng := New(g, Config{MaxSupersteps: 5, Trace: tr})
	res, err := eng.Run(&apps.PageRank{})
	if err != nil {
		t.Fatal(err)
	}

	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	var steps []obsv.Event
	stages := map[string]int{}
	for _, ev := range evs {
		if ev.Cat != "engine" {
			continue
		}
		if ev.Name == "superstep" {
			steps = append(steps, ev)
		} else {
			stages[ev.Name]++
		}
	}
	if len(steps) != len(res.Report.Supersteps) {
		t.Fatalf("%d superstep spans, report has %d supersteps", len(steps), len(res.Report.Supersteps))
	}
	for _, name := range []string{"load+sort", "process-batch", "process-vertices", "load-values", "load-adjacency", "flush-values", "flush-logs"} {
		if stages[name] == 0 {
			t.Errorf("no %q spans recorded", name)
		}
	}

	// Every tid-1 stage span must fall inside exactly one superstep span.
	for _, ev := range evs {
		if ev.Tid != 1 || ev.Name == "superstep" {
			continue
		}
		contained := false
		for _, st := range steps {
			if ev.Start >= st.Start && ev.Start+ev.Dur <= st.Start+st.Dur {
				contained = true
				break
			}
		}
		if !contained {
			t.Fatalf("stage span %q [%v,+%v] outside every superstep span", ev.Name, ev.Start, ev.Dur)
		}
	}

	// Superstep spans carry step/active/pages args.
	for k, want := range map[string]bool{"step": true, "active": true, "pages_read": true} {
		found := false
		for _, a := range steps[0].Args {
			if a.Key == k {
				found = true
			}
		}
		if want && !found {
			t.Errorf("superstep span missing %q arg", k)
		}
	}
}

// TestEngineNilTraceMatchesTraced makes sure tracing is observational only:
// the same run with and without a tracer produces identical values.
func TestEngineNilTraceMatchesTraced(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 31)

	run := func(tr *obsv.Trace) []uint32 {
		g := buildGraph(t, edges, n, 2048)
		eng := New(g, Config{MaxSupersteps: 5, Trace: tr})
		res, err := eng.Run(&apps.PageRank{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}

	plain := run(nil)
	traced := run(obsv.NewTrace())
	if len(plain) != len(traced) {
		t.Fatalf("value count %d != %d", len(plain), len(traced))
	}
	for v := range plain {
		if plain[v] != traced[v] {
			t.Fatalf("value[%d] differs: %d (untraced) vs %d (traced)", v, plain[v], traced[v])
		}
	}
}

// TestEngineHistogramsPopulated checks the per-superstep device histograms
// carry observations consistent with the page counters.
func TestEngineHistogramsPopulated(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 31)
	g := buildGraph(t, edges, n, 2048)
	eng := New(g, Config{MaxSupersteps: 3})
	res, err := eng.Run(&apps.PageRank{})
	if err != nil {
		t.Fatal(err)
	}
	for i, ss := range res.Report.Supersteps {
		if ss.PagesRead > 0 && ss.ReadBatchPages.N == 0 {
			t.Fatalf("superstep %d read %d pages but ReadBatchPages is empty", ss.Superstep, ss.PagesRead)
		}
		if ss.PagesRead > 0 && ss.ReadBatchPages.Sum != ss.PagesRead {
			t.Fatalf("superstep %d: ReadBatchPages.Sum=%d, PagesRead=%d", ss.Superstep, ss.ReadBatchPages.Sum, ss.PagesRead)
		}
		if ss.PagesWritten > 0 && ss.WriteBatchPages.Sum != ss.PagesWritten {
			t.Fatalf("superstep %d: WriteBatchPages.Sum=%d, PagesWritten=%d", ss.Superstep, ss.WriteBatchPages.Sum, ss.PagesWritten)
		}
		if ss.PagesRead > 0 && ss.ReadLatencyUS.N != ss.ReadBatchPages.N {
			t.Fatalf("superstep %d: latency observations %d != batch observations %d", ss.Superstep, ss.ReadLatencyUS.N, ss.ReadBatchPages.N)
		}
		// MsgSkew measures the incoming message distribution, i.e. what the
		// previous superstep sent; 1.0 is perfectly balanced.
		if i > 0 && res.Report.Supersteps[i-1].MsgsSent > 0 && ss.MsgSkew < 1 {
			t.Fatalf("superstep %d: MsgSkew=%f with %d incoming messages (must be >= 1)", ss.Superstep, ss.MsgSkew, res.Report.Supersteps[i-1].MsgsSent)
		}
	}
}
