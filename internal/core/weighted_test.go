package core

import (
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

func weightedFixture(t *testing.T, scale int, seed int64) ([]graphio.WeightedEdge, uint32, *csr.Graph) {
	t.Helper()
	edges, err := gen.RMAT(gen.DefaultRMAT(scale, 6, seed))
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(1 << scale)
	wedges := graphio.AttachWeights(edges, func(s, d uint32) uint32 {
		if s > d {
			s, d = d, s
		}
		return uint32(vc.Hash64(uint64(s), uint64(d))%16) + 1
	})
	dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
	g, err := csr.BuildWeighted(dev, "g", wedges, csr.BuildOptions{NumVertices: n, IntervalBudget: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return wedges, n, g
}

func TestEngineSSSPWeightedMatchesReference(t *testing.T) {
	wedges, n, g := weightedFixture(t, 9, 5)
	res, err := New(g, Config{MaxSupersteps: 300}).Run(&apps.SSSP{Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := vc.NewRefWeighted(wedges, n).Run(&apps.SSSP{Source: 1}, 300)
	for v := range ref.Values {
		if res.Values[v] != ref.Values[v] {
			t.Fatalf("dist[%d] = %d, ref %d", v, res.Values[v], ref.Values[v])
		}
	}
}

func TestEngineSSSPWeightedWithEdgeLogDisabled(t *testing.T) {
	wedges, n, g := weightedFixture(t, 8, 9)
	res, err := New(g, Config{MaxSupersteps: 300, DisableEdgeLog: true}).Run(&apps.SSSP{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	ref := vc.NewRefWeighted(wedges, n).Run(&apps.SSSP{Source: 0}, 300)
	for v := range ref.Values {
		if res.Values[v] != ref.Values[v] {
			t.Fatalf("dist[%d] = %d, ref %d", v, res.Values[v], ref.Values[v])
		}
	}
}

func TestEngineWCC(t *testing.T) {
	edges, n := rmatEdges(t, 9, 4, 3)
	runBoth(t, edges, n, &apps.WCC{}, 100, Config{})
}

func TestEngineKCore(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 13)
	res, _ := runBoth(t, edges, n, &apps.KCore{K: 3}, 200, Config{})
	in := 0
	for _, v := range res.Values {
		if apps.InCore(v) {
			in++
		}
	}
	if in == 0 || in == len(res.Values) {
		t.Fatalf("degenerate 3-core: %d of %d", in, len(res.Values))
	}
}

func TestWeightedStructuralUpdate(t *testing.T) {
	// Add a weighted shortcut and verify SSSP uses it.
	wedges := []graphio.WeightedEdge{
		{Src: 0, Dst: 1, Weight: 10}, {Src: 1, Dst: 2, Weight: 10},
	}
	dev := ssd.MustOpen(ssd.Config{PageSize: 256, Channels: 2})
	g, err := csr.BuildWeighted(dev, "g", wedges, csr.BuildOptions{NumVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(g, Config{MaxSupersteps: 20}).Run(&apps.SSSP{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[2] != 20 {
		t.Fatalf("dist before shortcut = %d, want 20", res.Values[2])
	}
	if err := g.AddEdgeWeighted(0, 2, 3, 1000); err != nil {
		t.Fatal(err)
	}
	res, err = New(g, Config{MaxSupersteps: 20}).Run(&apps.SSSP{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[2] != 3 {
		t.Fatalf("dist with shortcut = %d, want 3", res.Values[2])
	}
	// Merge and re-check (weights survive the CSR rewrite).
	if err := g.MergeInterval(g.IntervalOf(0)); err != nil {
		t.Fatal(err)
	}
	res, err = New(g, Config{MaxSupersteps: 20}).Run(&apps.SSSP{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[2] != 3 {
		t.Fatalf("dist after merge = %d, want 3", res.Values[2])
	}
}
