// Package core implements the MultiLogVC engine: the paper's primary
// contribution. It runs vc.Programs out-of-core over an interval-
// partitioned CSR graph (internal/csr), exchanging messages through the
// multi-log update unit (internal/mlog), sorting and grouping them with
// interval fusing (internal/sortgroup), and reducing adjacency read
// amplification with the edge-log optimizer (internal/edgelog).
//
// One superstep follows Algorithm 1 of the paper:
//
//	for each (fused) vertex interval:
//	    load its update log, sort by destination, extract active vertices
//	    load the active vertices' values, adjacency (CSR pages or edge
//	    log), and aux state
//	    process each active vertex; sends append to next-generation logs
//	    log out-edges of predicted-active vertices on inefficient pages
//	flush next-generation logs; swap generations
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"multilogvc/internal/bitset"
	"multilogvc/internal/ckpt"
	"multilogvc/internal/csr"
	"multilogvc/internal/edgelog"
	"multilogvc/internal/metrics"
	"multilogvc/internal/mlog"
	"multilogvc/internal/obsv"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/sortgroup"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// ErrCorruptData is returned when the engine hits corrupt vital data
// (message-log, value, CSR, or aux pages) it cannot recover from: either
// checkpointing is off, or rollback attempts were exhausted. Redundant
// data (edge-log pages) never surfaces this — it is healed from CSR.
var ErrCorruptData = errors.New("core: corrupt data beyond recovery")

// ErrInterrupted is returned when Config.Interrupt fires. The engine
// commits a checkpoint at the superstep boundary before returning, so an
// interrupted run is always resumable with Config.Resume.
var ErrInterrupted = errors.New("core: run interrupted; checkpoint committed")

// ErrDeadline is returned when the run context passed to RunCtx expires.
// A deadline observed at a superstep boundary commits a checkpoint first
// (the same graceful path as ErrInterrupted); one observed mid-superstep —
// by the device retry layer or the prefetcher wait — surfaces without one,
// but the newest periodic checkpoint (if any) remains valid for Resume.
var ErrDeadline = errors.New("core: run deadline exceeded")

// ErrPanic is returned when a panic escapes the engine — a vertex
// worker's Process call or any stage on the run goroutine. The engine
// contains it instead of letting it kill the process: deferred cleanup
// (ephemeral scratch sweep, run-context reset) runs during unwinding, so
// a long-lived host (the serving daemon) survives a panicking program
// with nothing leaked. The panic value and location are preserved in the
// wrapping message.
var ErrPanic = errors.New("core: panic during run")

// maxRollbacks bounds how many times one Run re-executes from the newest
// checkpoint after hitting corrupt vital data. Transiently-planted
// corruption (an injected flip on data that is rewritten, like value or
// mlog pages) clears on the first rollback; corruption that survives
// rollback (a damaged CSR page) re-fails each attempt and surfaces as
// ErrCorruptData after the budget.
const maxRollbacks = 3

// Config tunes the engine. The memory budget is split exactly as Fig 4 of
// the paper: SortPct (X%) for the sort-and-group unit, MLogPct (A%) for
// the multi-log buffers, ELogPct (B%) for the edge-log buffer.
type Config struct {
	// MemoryBudget in bytes; defaults to 64 MiB.
	MemoryBudget int64
	// SortPct defaults to 75 (the paper's X%).
	SortPct int
	// MLogPct defaults to 5 (the paper's A%).
	MLogPct int
	// ELogPct defaults to 5 (the paper's B%).
	ELogPct int
	// MaxSupersteps defaults to 15, the paper's evaluation cap.
	MaxSupersteps int
	// Workers is the vertex-processing parallelism; defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// DisableEdgeLog turns the edge-log optimizer off (ablation).
	DisableEdgeLog bool
	// DisableCombiner ignores programs' Combiner even when present
	// (ablation).
	DisableCombiner bool
	// DisableFusing processes every vertex interval's log separately
	// instead of fusing small consecutive logs into one sort batch
	// (ablation of §V-A2).
	DisableFusing bool
	// Async selects the asynchronous computation model (§V-F): an update
	// sent to a vertex interval that has not been processed yet in the
	// current superstep is delivered within this superstep; updates to
	// already-processed intervals arrive next superstep. Fixpoint
	// algorithms (BFS, SSSP, WCC, PageRank) converge in fewer supersteps;
	// phase-structured algorithms (MIS) require the synchronous model.
	Async bool
	// UtilThreshold is the inefficient-page utilization threshold;
	// defaults to 0.10.
	UtilThreshold float64
	// StopAfter, when non-nil, is consulted after every superstep with
	// the cumulative number of vertex activations; returning true ends
	// the run (used by the BFS traversal-fraction experiments).
	StopAfter func(superstep int, cumProcessed uint64) bool
	// Trace, when non-nil, receives begin/end spans for every superstep
	// and per-batch stage (load+sort, value/adjacency loads, vertex
	// processing, edge-log relog, flushes). A nil Trace costs one pointer
	// test per stage.
	Trace *obsv.Trace
	// Cache is the buffer pool attached to the graph's device, when one
	// is (nil = uncached, the paper-faithful default). The device serves
	// cached reads on its own; the engine uses this handle for
	// per-superstep counter deltas and live gauges.
	Cache *pagecache.Cache
	// Prefetcher, when non-nil (requires Cache), warms the next
	// interval's message-log and CSR pages in the background while the
	// current batch computes. The engine cancels pending work at every
	// superstep boundary and releases pin epochs one batch after their
	// pages are consumed. The caller owns the prefetcher's lifecycle.
	Prefetcher *pagecache.Prefetcher
	// CheckpointEvery commits a checkpoint to the device every K superstep
	// boundaries (see internal/ckpt). 0 disables checkpointing.
	// Checkpoint IO is charged to the device like any other IO and
	// reported per superstep (SuperstepStats.Checkpoint*).
	CheckpointEvery int
	// Resume restarts from the latest valid checkpoint on the device
	// instead of superstep 0. With no checkpoint present the run starts
	// fresh; a checkpoint whose every slot is torn or corrupt is an error
	// (ckpt.ErrCorrupt).
	Resume bool
	// Interrupt, when non-nil, requests graceful shutdown: at the next
	// superstep boundary after the channel closes (or receives), the
	// engine commits a checkpoint — even when CheckpointEvery is 0 — and
	// returns ErrInterrupted, so the run can be finished later with
	// Resume.
	Interrupt <-chan struct{}
	// SortBudget overrides the sort-and-group budget in bytes (0 derives
	// it from MemoryBudget×SortPct, the paper's split). An interval log
	// exceeding the budget no longer over-allocates: it spills through
	// sortgroup's chunked external sort-group, trading extra device IO for
	// a hard memory bound, with results identical to the in-memory path.
	SortBudget int64
	// RunTag namespaces the run's scratch files (values, message logs,
	// edge log, spill runs, checkpoints) as "<graph>.<RunTag>.*" instead
	// of "<graph>.*", so concurrent runs over one resident graph never
	// collide. Empty keeps the historical names.
	RunTag string
	// Ephemeral marks a transient query run (the serving daemon's mode):
	// an interrupt or deadline at a superstep boundary returns without
	// committing a checkpoint, and every scratch file is removed when the
	// run returns, success or not. Requires RunTag (the cleanup sweep is
	// prefix-based) and is incompatible with CheckpointEvery and Resume.
	Ephemeral bool
	// Scope, when non-nil, attributes the run's device IO to a per-run
	// ssd.IOScope: stage tags, the retry-layer run context, and the
	// stats/interval counters the engine reads per superstep all resolve
	// against the scope instead of the device-global slots. Required for
	// correct attribution when several runs share one device; checkpoint
	// slot IO (ckpt files are not scoped) still lands device-global.
	Scope *ssd.IOScope
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 64 << 20
	}
	if c.SortPct <= 0 {
		c.SortPct = 75
	}
	if c.MLogPct <= 0 {
		c.MLogPct = 5
	}
	if c.ELogPct <= 0 {
		c.ELogPct = 5
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = 15
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.UtilThreshold <= 0 {
		c.UtilThreshold = edgelog.DefaultThreshold
	}
	return c
}

// reclaimState tracks what the run can safely give back under disk
// pressure: the consumed intervals of the message-log generation being
// drained (marked after each batch finishes) and the stale slot of the
// newest committed checkpoint. The engine updates it at batch and boundary
// transitions; the device calls reclaim from whichever goroutine's write
// hit the quota.
type reclaimState struct {
	mu      sync.Mutex
	dev     *ssd.Device
	prefix  string
	log     *mlog.Log
	newest  uint64
	hasCkpt bool
	// ckptBusy suppresses checkpoint GC while a checkpoint write is in
	// flight: the write targets exactly the slot the bookkeeping calls
	// stale, so a reclaim triggered from inside it (a quota hit on the
	// slot's own pages) would self-deadlock trying to remove the file the
	// writer holds locked.
	ckptBusy bool
}

func (r *reclaimState) setLog(l *mlog.Log) {
	r.mu.Lock()
	r.log = l
	r.mu.Unlock()
}

func (r *reclaimState) noteCheckpoint(seq uint64) {
	r.mu.Lock()
	r.newest, r.hasCkpt = seq, true
	r.mu.Unlock()
}

func (r *reclaimState) setCkptBusy(busy bool) {
	r.mu.Lock()
	r.ckptBusy = busy
	r.mu.Unlock()
}

// reclaim is the registered device hook. Best-effort: errors are dropped —
// a sweep that frees nothing leaves the retried reservation to fail
// classified as ssd.ErrNoSpace, which is the honest outcome.
func (r *reclaimState) reclaim() {
	r.mu.Lock()
	log, newest, has := r.log, r.newest, r.hasCkpt && !r.ckptBusy
	r.mu.Unlock()
	if log != nil {
		_ = log.ReclaimConsumed()
	}
	if has {
		_ = ckpt.GCStale(r.dev, r.prefix, newest)
	}
}

// Engine runs vertex-centric programs with the MultiLogVC architecture.
type Engine struct {
	g   *csr.Graph
	cfg Config
	io  runIO
}

// New creates an engine over an opened CSR graph. With Config.Scope set,
// the engine works through a scoped view of the graph so all its CSR and
// scratch IO is attributed to the scope.
func New(g *csr.Graph, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{g: g.View(cfg.Scope), cfg: cfg, io: runIO{dev: g.Device(), sc: cfg.Scope}}
}

// runIO resolves where the run's ambient stage tag, stats, and interval
// counters live: its IOScope when configured, else the device's global
// slots (the pre-scope behavior).
type runIO struct {
	dev *ssd.Device
	sc  *ssd.IOScope
}

func (r runIO) SetStage(s obsv.Stage, iv int) (obsv.Stage, int) {
	if r.sc != nil {
		return r.sc.SetStage(s, iv)
	}
	return r.dev.SetStage(s, iv)
}

func (r runIO) Stats() ssd.Stats {
	if r.sc != nil {
		return r.sc.Stats()
	}
	return r.dev.Stats()
}

func (r runIO) IntervalIO() map[int]uint64 {
	if r.sc != nil {
		return r.sc.IntervalIO()
	}
	return r.dev.IntervalIO()
}

func (r runIO) SetRunContext(ctx context.Context) {
	if r.sc != nil {
		r.sc.SetRunContext(ctx)
		return
	}
	r.dev.SetRunContext(ctx)
}

// Result carries the run report and final vertex values. For a
// lane-batched program (vc.LaneProgram with K > 1 lanes) Values holds
// n×K slots laid out v*K+lane; apps.LaneResult extracts one query's view.
type Result struct {
	Report *metrics.Report
	Values []uint32
}

// Run executes prog to convergence or the superstep cap. When the run
// fails on a corrupt page and checkpointing is armed, Run rolls back: it
// re-executes from the newest valid checkpoint (or from scratch when none
// committed yet), up to maxRollbacks times. Corruption that persists
// through rollback — or strikes with checkpointing off — surfaces as
// ErrCorruptData wrapping the page-level failure.
func (e *Engine) Run(prog vc.Program) (*Result, error) {
	return e.RunCtx(context.Background(), prog)
}

// RunCtx is Run bounded by a context. The context reaches every layer that
// can stall: the superstep loop checks it at each boundary (committing a
// checkpoint before returning ErrDeadline, like an interrupt), the device
// retry layer abandons its backoff schedule when it expires, and the
// prefetcher wait is cut short. A deadline expiry anywhere surfaces
// classified as ErrDeadline.
func (e *Engine) RunCtx(ctx context.Context, prog vc.Program) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Contain panics from the run goroutine (engine stages, program
	// callbacks reached outside the worker pool). Deferred cleanup below
	// this frame — the ephemeral scratch sweep, SetRunContext(nil) — has
	// already run by the time the recover fires, so the device is left
	// exactly as a failed run leaves it.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	e.io.SetRunContext(ctx)
	defer e.io.SetRunContext(nil)

	res, err = e.runOnce(ctx, prog, e.cfg.Resume, 0)
	if err != nil && errors.Is(err, ssd.ErrCorruptPage) && !errors.Is(err, ErrInterrupted) {
		live := obsv.Live()
		for rollbacks := 1; e.cfg.CheckpointEvery > 0 && rollbacks <= maxRollbacks; rollbacks++ {
			live.Rollbacks.Add(1)
			res, err = e.runOnce(ctx, prog, true, rollbacks)
			if err == nil || !errors.Is(err, ssd.ErrCorruptPage) {
				break
			}
		}
		if err != nil && errors.Is(err, ssd.ErrCorruptPage) {
			return nil, fmt.Errorf("%w: %w", ErrCorruptData, err)
		}
	}
	// Deadline expiry below a boundary (device retry, prefetcher wait)
	// propagates as a raw context error; classify it like the boundary path.
	if err != nil && errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrDeadline) {
		err = fmt.Errorf("%w: %w", ErrDeadline, err)
	}
	return res, err
}

// runOnce is one execution attempt: resume selects the starting point and
// rollbacks records how many rollback re-executions preceded this one.
func (e *Engine) runOnce(ctx context.Context, prog vc.Program, resume bool, rollbacks int) (*Result, error) {
	cfg := e.cfg
	cfg.Resume = resume
	g := e.g
	dev := g.Device()
	n := g.NumVertices()
	ivs := g.Intervals()
	name := g.Name()

	// RunTag namespaces every scratch file so concurrent runs over one
	// resident graph never collide.
	base := name
	auxName := prog.Name()
	if cfg.RunTag != "" {
		base = name + "." + cfg.RunTag
		auxName = prog.Name() + "." + cfg.RunTag
	}

	// Lane-batched programs fan K point queries into one execution. Lanes
	// rule out checkpoint/resume (snapshots are single-lane) and Combiner
	// (messages of different lanes must never merge).
	lanes := 1
	laneProg, _ := prog.(vc.LaneProgram)
	if laneProg != nil {
		if lanes = laneProg.Lanes(); lanes < 1 {
			lanes = 1
		}
	}
	if lanes > 1 {
		if cfg.CheckpointEvery > 0 || cfg.Resume {
			return nil, fmt.Errorf("core: lane-batched program %q does not support checkpointing or resume", prog.Name())
		}
		if _, ok := prog.(vc.Combiner); ok {
			return nil, fmt.Errorf("core: lane-batched program %q must not implement vc.Combiner", prog.Name())
		}
	}

	if cfg.Ephemeral {
		if cfg.RunTag == "" {
			return nil, fmt.Errorf("core: Ephemeral requires RunTag (scratch cleanup sweeps the run's name prefix)")
		}
		if cfg.CheckpointEvery > 0 || cfg.Resume {
			return nil, fmt.Errorf("core: Ephemeral is incompatible with checkpointing and resume")
		}
		// Leave nothing behind, success or failure: the run's scratch
		// namespace (values, message logs, edge log, spill runs) and any
		// aux arrays are swept when the run returns.
		defer func() {
			_, _ = dev.RemovePrefix(base + ".")
			_, _ = dev.RemovePrefix(fmt.Sprintf("%s.aux.%s.", name, auxName))
		}()
	}

	report := &metrics.Report{Engine: "multilogvc", App: prog.Name(), Graph: name}
	report.Rollbacks = rollbacks
	wallStart := time.Now()

	// Resume: load the newest committed checkpoint before creating any
	// run state, so every unit below initializes straight from it. A
	// missing checkpoint degrades to a fresh start; a corrupt one (every
	// slot torn or CRC-invalid) is an error the caller can distinguish
	// via ckpt.ErrCorrupt.
	ckptPrefix := base + "." + prog.Name()
	var rst *ckpt.State
	var ckptSeq uint64
	startStep := 0
	if cfg.Resume {
		prevS, prevIv := e.io.SetStage(obsv.StageCheckpoint, -1)
		st, err := ckpt.Load(dev, ckptPrefix)
		e.io.SetStage(prevS, prevIv)
		switch {
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			// Nothing to resume from: run from superstep 0.
		case err != nil:
			return nil, err
		case st.App != prog.Name() || st.Graph != name || st.NumVertices != n:
			return nil, fmt.Errorf("core: checkpoint is for %s/%s (%d vertices), run is %s/%s (%d vertices)",
				st.App, st.Graph, st.NumVertices, prog.Name(), name, n)
		default:
			rst = st
			startStep = st.Step
			ckptSeq = st.Seq + 1
		}
	}

	initLane := func(v uint32, lane int) uint32 {
		if laneProg != nil {
			return laneProg.InitValueLane(v, lane, n)
		}
		return prog.InitValue(v, n)
	}
	if rst != nil { // resume implies lanes == 1
		initLane = func(v uint32, _ int) uint32 { return rst.Values[v] }
	}
	values, err := csr.CreateValuesLanesFunc(dev, base+".values", n, lanes, cfg.Scope, initLane)
	if err != nil {
		return nil, err
	}

	var aux *csr.Aux
	auxUser, isAux := prog.(vc.AuxUser)
	if isAux {
		aux, err = csr.CreateAux(g, auxName, auxUser.AuxInit(n))
		if err != nil {
			return nil, err
		}
	}

	var combiner vc.Combiner
	if c, ok := prog.(vc.Combiner); ok && !cfg.DisableCombiner {
		combiner = c
	}

	mlogBudget := cfg.MemoryBudget * int64(cfg.MLogPct) / 100
	sortBudget := cfg.MemoryBudget * int64(cfg.SortPct) / 100
	if cfg.SortBudget > 0 {
		sortBudget = cfg.SortBudget
	}
	sortOpts := sortgroup.Options{SortBudget: sortBudget, NoFuse: cfg.DisableFusing}
	tr := cfg.Trace
	curLog, err := mlog.New(dev, base+".mlog.0", len(ivs), mlogBudget)
	if err != nil {
		return nil, err
	}
	nextLog, err := mlog.New(dev, base+".mlog.1", len(ivs), mlogBudget)
	if err != nil {
		return nil, err
	}
	curLog.SetTracer(tr)
	nextLog.SetTracer(tr)
	curLog.SetScope(cfg.Scope)
	nextLog.SetScope(cfg.Scope)

	var elog *edgelog.EdgeLog
	var pred *edgelog.Predictor
	if !cfg.DisableEdgeLog {
		elog, err = edgelog.New(dev, base+".elog", g.HasWeights())
		if err != nil {
			return nil, err
		}
		elog.SetTracer(tr)
		elog.SetScope(cfg.Scope)
		pred = edgelog.NewPredictor(n, dev.PageSize(), cfg.UtilThreshold)
	}
	elogBudget := cfg.MemoryBudget * int64(cfg.ELogPct) / 100

	// carry holds vertices that are live without needing a message
	// (processed last superstep and did not vote to halt); messages in
	// the current log activate the rest.
	carry := bitset.New(int(n))
	is := prog.InitActive(n)
	if is.All {
		for v := uint32(0); v < n; v++ {
			carry.Set(int(v))
		}
	} else {
		for _, v := range is.Verts {
			carry.Set(int(v))
		}
	}

	// Space governance: register what this run can give back when a write
	// hits the disk quota — consumed intervals of the previous-generation
	// message log and the stale checkpoint slot. The device runs these
	// hooks and retries the failing write once before surfacing ErrNoSpace.
	rcl := &reclaimState{dev: dev, prefix: ckptPrefix}
	rcl.setLog(curLog)
	if rst != nil {
		rcl.noteCheckpoint(rst.Seq)
	}
	unregister := dev.AddReclaimer(rcl.reclaim)
	defer unregister()

	// Hoisted prefetcher cleanup: every early return below (load error,
	// batch error, checkpoint error, context expiry) must drop the pin
	// epochs covering in-flight batches, or the pinned frames would stay
	// unevictable for the life of the cache.
	if pf := cfg.Prefetcher; pf != nil {
		defer func() {
			pf.CancelPending()
			pf.WaitIdle()
			pf.ReleaseAll()
		}()
	}

	var cumProcessed uint64
	converged := false
	live := obsv.Live()
	live.Runs.Add(1)

	if rst != nil {
		prevS, prevIv := e.io.SetStage(obsv.StageCheckpoint, -1)
		err := restoreState(rst, carry, aux, curLog, elog, pred, report)
		e.io.SetStage(prevS, prevIv)
		if err != nil {
			return nil, err
		}
		cumProcessed = rst.CumProcessed
		live.Resumes.Add(1)
	}

	for step := startStep; step < cfg.MaxSupersteps; step++ {
		select {
		case <-cfg.Interrupt:
			// Graceful shutdown: the boundary state is consistent, so
			// commit it — regardless of CheckpointEvery — and classify the
			// exit so the caller knows a resume will pick up here. An
			// ephemeral run has nothing worth resuming: it returns
			// immediately and its scratch is swept by the deferred cleanup.
			if cfg.Ephemeral {
				return nil, fmt.Errorf("%w at superstep %d", ErrInterrupted, step)
			}
			rcl.setCkptBusy(true)
			err := e.writeCheckpoint(ckptPrefix, ckptSeq, step, cumProcessed,
				values, carry, aux, isAux, curLog, elog, pred, report, nil)
			rcl.setCkptBusy(false)
			if err != nil {
				return nil, fmt.Errorf("core: interrupt checkpoint: %w", err)
			}
			return nil, fmt.Errorf("%w at superstep %d", ErrInterrupted, step)
		case <-ctx.Done():
			// Deadline or cancellation: same graceful boundary exit as an
			// interrupt, classified so the caller can tell them apart.
			cause := ErrInterrupted
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				cause = ErrDeadline
			}
			if cfg.Ephemeral {
				return nil, fmt.Errorf("%w at superstep %d", cause, step)
			}
			rcl.setCkptBusy(true)
			err := e.writeCheckpoint(ckptPrefix, ckptSeq, step, cumProcessed,
				values, carry, aux, isAux, curLog, elog, pred, report, nil)
			rcl.setCkptBusy(false)
			if err != nil {
				return nil, fmt.Errorf("core: deadline checkpoint: %w", err)
			}
			return nil, fmt.Errorf("%w at superstep %d (checkpoint committed)", cause, step)
		default:
		}
		var stepMuts []vc.Mutation
		if !carry.Any() && curLog.Total() == 0 {
			converged = true
			break
		}
		stepStart := time.Now()
		devBefore := e.io.Stats()
		ivBefore := e.io.IntervalIO()
		var cacheBefore pagecache.Stats
		if cache := cfg.Cache; cache != nil {
			cacheBefore = cache.Stats()
		}
		ss := metrics.SuperstepStats{Superstep: step}
		ss.MsgSkew = intervalSkew(curLog, len(ivs))
		stepSpan := tr.Begin("engine", "superstep")
		stepSpan.Arg("step", int64(step))

		pf := cfg.Prefetcher
		var pfEpoch uint64 // pins covering the batch about to be processed
		for ivStart := 0; ivStart < len(ivs); {
			loadSpan := tr.Begin("engine", "load+sort")
			loadBefore := e.io.Stats()
			batch, err := sortgroup.Load(curLog, ivs, ivStart, sortOpts)
			if err != nil {
				return nil, err
			}
			loadSpan.Arg("pages_read", int64(e.io.Stats().Sub(loadBefore).PagesRead))
			loadSpan.Arg("first_iv", int64(batch.FirstIv))
			loadSpan.Arg("last_iv", int64(batch.LastIv))
			loadSpan.Arg("records", int64(len(batch.Recs)))
			if batch.Spilled {
				loadSpan.Arg("spill_bytes", batch.SpillBytes())
				ss.Spills++
				ss.SpillBytes += uint64(batch.SpillBytes())
			}
			loadSpan.End()

			// Warm the next batch's first interval in the background while
			// this batch computes: its message-log pages plus the value and
			// CSR pages of its predicted-active vertices.
			var nextEpoch uint64
			if pf != nil {
				if nextIv := batch.LastIv + 1; nextIv < len(ivs) {
					pfSpan := tr.Begin("engine", "prefetch-submit")
					nextEpoch = pf.BeginEpoch()
					jobs := e.planPrefetch(nextIv, curLog, values, carry, pred, elog)
					pf.Submit(nextEpoch, jobs...)
					pfSpan.Arg("iv", int64(nextIv))
					pfSpan.Arg("jobs", int64(len(jobs)))
					pfSpan.End()
				}
			}

			// A spilled batch arrives in destination-aligned chunks, each
			// within the sort budget; an in-memory batch is one chunk. The
			// chunks tile the interval's vertex range, so every vertex —
			// message-activated or carry-only — is processed exactly once.
			procSpan := tr.Begin("engine", "process-batch")
			procSpan.Arg("first_iv", int64(batch.FirstIv))
			procBefore := e.io.Stats()
			for err == nil {
				if err = e.processBatch(&batchRun{
					prog: prog, combiner: combiner, aux: aux, isAux: isAux,
					values: values, batch: batch, carry: carry, step: step,
					elog: elog, pred: pred, elogBudget: elogBudget,
					nextLog: nextLog, curLog: curLog, ss: &ss,
					muts: &stepMuts,
				}); err != nil {
					break
				}
				more, cerr := batch.NextChunk()
				if cerr != nil || !more {
					err = cerr
					break
				}
			}
			batch.Close()
			if err != nil {
				return nil, err
			}
			procDelta := e.io.Stats().Sub(procBefore)
			procSpan.Arg("pages_read", int64(procDelta.PagesRead))
			procSpan.Arg("pages_written", int64(procDelta.PagesWritten))
			procSpan.End()
			// The batch is fully drained: its intervals are never re-read
			// this generation, so the device may reclaim their log pages
			// under disk pressure.
			curLog.MarkConsumed(batch.FirstIv, batch.LastIv)
			if pf != nil {
				// The pages pinned for this batch have been consumed; the
				// ones pinned for the next batch stay until it finishes.
				if pfEpoch != 0 {
					pf.ReleaseEpoch(pfEpoch)
				}
				pfEpoch = nextEpoch
			}
			ivStart = batch.LastIv + 1
		}
		if pf != nil {
			// Superstep boundary: stale predictions are worthless and the
			// graph may mutate below — cancel queued jobs, wait out the one
			// in flight (bounded by the run context), and drop every
			// remaining pin.
			pf.CancelPending()
			waitErr := pf.WaitIdleCtx(ctx)
			pf.ReleaseAll()
			if waitErr != nil {
				return nil, waitErr
			}
		}

		// Apply structural mutations at the superstep boundary (§V-E):
		// they become visible at the start of the next superstep.
		if len(stepMuts) > 0 && isAux {
			// Merging rewrites the in-CSR the aux layout mirrors; the aux
			// file would go stale. The paper's aux-state programs (CDLP,
			// GC) do not mutate structure either.
			return nil, fmt.Errorf("core: structural mutation is not supported for programs with per-in-edge aux state")
		}
		if len(stepMuts) > 0 && cfg.CheckpointEvery > 0 {
			// Checkpoints snapshot run state, not the CSR itself; a
			// mutated graph would not match the snapshot on resume.
			return nil, fmt.Errorf("core: structural mutation is not supported with checkpointing enabled")
		}
		if len(stepMuts) > 0 {
			// One batch per boundary: a single WAL group commit and a
			// single published epoch cover the whole superstep's mutations.
			ms := make([]csr.Mutation, len(stepMuts))
			for i, m := range stepMuts {
				ms[i] = csr.Mutation{Del: !m.Add, Src: m.Src, Dst: m.Dst, Weight: m.Weight}
			}
			if err := g.ApplyMutations(ms, 0); err != nil {
				return nil, err
			}
		}

		flushSpan := tr.Begin("engine", "flush-logs")
		// The boundary flush drains message-log pages the vertex stage
		// produced; it belongs to the same traffic class as the in-batch
		// Send evictions.
		prevS, prevIv := e.io.SetStage(obsv.StageVertex, -1)
		err := nextLog.FlushAll()
		e.io.SetStage(prevS, prevIv)
		if err != nil {
			return nil, err
		}
		if elog != nil {
			st := pred.EndSuperstep()
			ss.InefficientPages = st.InefficientPages
			ss.PredictedIneff = st.PredictedIneff
			ss.CorrectPredicted = st.Correct
			ss.UtilPagesTouched = st.PagesTouched
			prevS, prevIv := e.io.SetStage(obsv.StageRelog, -1)
			err := elog.EndSuperstep()
			e.io.SetStage(prevS, prevIv)
			if err != nil {
				return nil, err
			}
		}

		curLog, nextLog = nextLog, curLog
		rcl.setLog(curLog)
		if err := nextLog.ResetAll(); err != nil {
			return nil, err
		}
		flushSpan.End()

		devDelta := e.io.Stats().Sub(devBefore)
		ss.Stages = metrics.StagesFromDevice(devDelta)
		// Interval-level IO skew: how unevenly this superstep's tagged
		// device traffic spread over the vertex intervals. The histogram
		// keeps the shape; IOSkew (busiest/mean) flags stragglers that
		// message-count skew alone can miss (a hot interval whose log is
		// small but whose spill or CSR traffic is not).
		var maxIvP, sumIvP uint64
		var nIv int
		for iv, p := range e.io.IntervalIO() {
			d := p - ivBefore[iv]
			if d == 0 {
				continue
			}
			ss.IntervalPages.Observe(d)
			sumIvP += d
			nIv++
			if d > maxIvP {
				maxIvP = d
			}
		}
		if sumIvP > 0 {
			ss.IOSkew = float64(maxIvP) * float64(nIv) / float64(sumIvP)
		}
		ss.PagesRead = devDelta.PagesRead
		ss.PagesWritten = devDelta.PagesWritten
		ss.StorageTime = devDelta.StorageTime()
		ss.ComputeTime = time.Since(stepStart)
		ss.ReadBatchPages = devDelta.ReadBatchPages
		ss.WriteBatchPages = devDelta.WriteBatchPages
		ss.ReadLatencyUS = devDelta.ReadLatencyUS
		ss.WriteLatencyUS = devDelta.WriteLatencyUS
		ss.TransientFaults = devDelta.TransientFaults
		ss.Retries = devDelta.Retries
		ss.RetryBackoff = devDelta.RetryBackoff
		ss.RetriesExhausted = devDelta.RetriesExhausted
		ss.CorruptPages = devDelta.CorruptPages
		ss.NoSpaceFaults = devDelta.NoSpaceFaults
		ss.Reclaims = devDelta.Reclaims
		ss.ReclaimedBytes = devDelta.ReclaimedBytes
		if cache := cfg.Cache; cache != nil {
			cd := cache.Stats().Sub(cacheBefore)
			ss.CacheHits = cd.Hits
			ss.CacheMisses = cd.Misses
			ss.CacheEvictions = cd.Evictions
			ss.PrefetchInserts = cd.PrefetchInserts
			ss.PrefetchHits = cd.PrefetchHits
			ss.PrefetchDropped = cd.PrefetchDropped
			live.CacheHitRate.Set(cd.HitRate())
			live.CacheResident.Set(int64(cache.Resident()))
			live.PrefetchAcc.Set(cd.PrefetchAccuracy())
			stepSpan.Arg("cache_hits", int64(cd.Hits))
			stepSpan.Arg("cache_misses", int64(cd.Misses))
			stepSpan.Arg("prefetch_warmed", int64(cd.PrefetchInserts))
		}
		cumProcessed += ss.Active

		// Checkpoint at the boundary every K supersteps. The snapshot's
		// IO is charged to the device and folded into this superstep's
		// stats, so checkpoint overhead shows up in per-step exports and
		// report totals.
		if k := cfg.CheckpointEvery; k > 0 && (step+1)%k == 0 {
			ckSpan := tr.Begin("engine", "checkpoint")
			ckSpan.Arg("step", int64(step+1))
			ckBefore := e.io.Stats()
			var ckCacheBefore pagecache.Stats
			if cache := cfg.Cache; cache != nil {
				ckCacheBefore = cache.Stats()
			}
			rcl.setCkptBusy(true)
			err := e.writeCheckpoint(ckptPrefix, ckptSeq, step+1, cumProcessed,
				values, carry, aux, isAux, curLog, elog, pred, report, &ss)
			rcl.setCkptBusy(false)
			if err != nil {
				return nil, err
			}
			rcl.noteCheckpoint(ckptSeq)
			ckptSeq++
			ckDelta := e.io.Stats().Sub(ckBefore)
			ss.Stages = metrics.MergeStages(ss.Stages, metrics.StagesFromDevice(ckDelta))
			if cache := cfg.Cache; cache != nil {
				// The snapshot reads go through the cache too; fold their
				// hit/miss delta in so the stage rows' cache counters keep
				// summing to the superstep totals.
				ckCd := cache.Stats().Sub(ckCacheBefore)
				ss.CacheHits += ckCd.Hits
				ss.CacheMisses += ckCd.Misses
				ss.CacheEvictions += ckCd.Evictions
			}
			ss.Checkpoints = 1
			ss.CheckpointPages = ckDelta.PagesRead + ckDelta.PagesWritten
			ss.CheckpointTime = ckDelta.StorageTime()
			ss.PagesRead += ckDelta.PagesRead
			ss.PagesWritten += ckDelta.PagesWritten
			ss.StorageTime += ckDelta.StorageTime()
			ss.TransientFaults += ckDelta.TransientFaults
			ss.Retries += ckDelta.Retries
			ss.RetryBackoff += ckDelta.RetryBackoff
			ss.RetriesExhausted += ckDelta.RetriesExhausted
			ss.CorruptPages += ckDelta.CorruptPages
			ss.NoSpaceFaults += ckDelta.NoSpaceFaults
			ss.Reclaims += ckDelta.Reclaims
			ss.ReclaimedBytes += ckDelta.ReclaimedBytes
			live.Checkpoints.Add(1)
			ckSpan.Arg("pages", int64(ss.CheckpointPages))
			ckSpan.End()
		}

		report.Supersteps = append(report.Supersteps, ss)

		stepSpan.Arg("active", int64(ss.Active))
		stepSpan.Arg("msgs_sent", int64(ss.MsgsSent))
		stepSpan.Arg("pages_read", int64(ss.PagesRead))
		stepSpan.Arg("pages_written", int64(ss.PagesWritten))
		stepSpan.End()
		publishLive(live, &ss)

		if cfg.StopAfter != nil && cfg.StopAfter(step, cumProcessed) {
			break
		}
	}
	if !converged {
		converged = !carry.Any() && curLog.Total() == 0
	}
	report.Converged = converged
	report.WallTime = time.Since(wallStart)
	report.Finish()

	finalValues, err := values.LoadAll()
	if err != nil {
		return nil, err
	}
	return &Result{Report: report, Values: finalValues}, nil
}

// writeCheckpoint snapshots the run state at the boundary after superstep
// step-1 (so step is the next superstep to execute) and commits it with
// ckpt.Save. All reads it issues (value pages, message-log pages, edge-log
// pages, aux pages) go through the device and are charged as checkpoint
// overhead by the caller.
// ss is the in-progress superstep to include in the snapshot's report
// history; nil (the interrupt path) snapshots completed supersteps only.
func (e *Engine) writeCheckpoint(prefix string, seq uint64, step int, cumProcessed uint64,
	values *csr.Values, carry *bitset.Set, aux *csr.Aux, isAux bool,
	curLog *mlog.Log, elog *edgelog.EdgeLog, pred *edgelog.Predictor,
	report *metrics.Report, ss *metrics.SuperstepStats) error {

	// All snapshot IO — the state reads below and ckpt.Save's slot writes —
	// is checkpoint overhead, tagged here so every call site (periodic,
	// interrupt, deadline) attributes identically.
	prevS, prevIv := e.io.SetStage(obsv.StageCheckpoint, -1)
	defer e.io.SetStage(prevS, prevIv)

	st := &ckpt.State{
		App:          report.App,
		Graph:        report.Graph,
		Seq:          seq,
		Step:         step,
		NumVertices:  e.g.NumVertices(),
		CumProcessed: cumProcessed,
		Carry:        carry.Words(),
	}
	var err error
	if st.Values, err = values.LoadAll(); err != nil {
		return err
	}
	st.Msgs = make([][]ckpt.MsgRec, curLog.NumIntervals())
	for iv := range st.Msgs {
		recs := make([]ckpt.MsgRec, 0, curLog.Count(iv))
		if err := curLog.Read(iv, func(dst, src, data uint32) {
			recs = append(recs, ckpt.MsgRec{Dst: dst, Src: src, Data: data})
		}); err != nil {
			return err
		}
		st.Msgs[iv] = recs
	}
	if elog != nil {
		if _, err := elog.Dump(func(v uint32, nbrs, weights []uint32) {
			ent := ckpt.ElogEntry{V: v, Nbrs: append([]uint32(nil), nbrs...)}
			if weights != nil {
				ent.Weights = append([]uint32(nil), weights...)
			}
			st.Elog = append(st.Elog, ent)
		}); err != nil {
			if !errors.Is(err, ssd.ErrCorruptPage) {
				return err
			}
			// A corrupt edge-log page under the checkpointer: the log is
			// redundant with CSR, so heal — drop the generation and
			// snapshot without it — rather than fail the checkpoint.
			st.Elog = nil
			if ierr := elog.InvalidateCurrent(); ierr != nil {
				return ierr
			}
			if ss != nil {
				ss.ElogHealed++
			}
		}
	}
	if pred != nil {
		st.PredActive, st.PredIneff = pred.History()
	}
	if isAux {
		if st.Aux, err = aux.DumpAll(); err != nil {
			return err
		}
	}
	// Completed supersteps including the current one; its Checkpoint*
	// fields are zero in the snapshot (the cost is only known after Save).
	st.Supersteps = append([]metrics.SuperstepStats(nil), report.Supersteps...)
	if ss != nil {
		st.Supersteps = append(st.Supersteps, *ss)
	}
	return ckpt.Save(e.g.Device(), prefix, st)
}

// restoreState rehydrates every engine unit from a loaded checkpoint: the
// carry bitset, aux files, the current-generation message log, the edge
// log (replayed into the next generation, then swapped current), the
// predictor's history, and the report's completed supersteps.
func restoreState(rst *ckpt.State, carry *bitset.Set, aux *csr.Aux,
	curLog *mlog.Log, elog *edgelog.EdgeLog, pred *edgelog.Predictor,
	report *metrics.Report) error {

	carry.SetWords(rst.Carry)
	if aux != nil && rst.Aux != nil {
		if err := aux.RestoreAll(rst.Aux); err != nil {
			return err
		}
	}
	if len(rst.Msgs) != curLog.NumIntervals() {
		return fmt.Errorf("core: checkpoint has %d message-log intervals, graph has %d",
			len(rst.Msgs), curLog.NumIntervals())
	}
	for iv, recs := range rst.Msgs {
		for _, r := range recs {
			if err := curLog.Append(iv, r.Dst, r.Src, r.Data); err != nil {
				return err
			}
		}
	}
	// The edge log is an adjacency cache: replay only when the optimizer
	// is still on; dropping it costs CSR reads, never correctness.
	if elog != nil && len(rst.Elog) > 0 {
		for _, ent := range rst.Elog {
			if err := elog.LogEdges(ent.V, ent.Nbrs, ent.Weights); err != nil {
				return err
			}
		}
		if err := elog.EndSuperstep(); err != nil {
			return err
		}
	}
	if pred != nil && rst.PredActive != nil {
		pred.RestoreHistory(rst.PredActive, rst.PredIneff)
	}
	report.Supersteps = append(report.Supersteps, rst.Supersteps...)
	report.Resumed = true
	report.ResumeStep = rst.Step
	return nil
}

// maxPrefetchVerts caps how many predicted-active vertices one prefetch
// plan expands into page sets, bounding plan time on dense intervals.
const maxPrefetchVerts = 1 << 16

// planPrefetch builds the warm jobs for interval nextIv, to run while the
// current batch computes. The prediction is the same signal the edge-log
// optimizer uses: a vertex is expected active next if it carried over
// live or its activity history predicts it (Predictor.PredictActive).
// Three page families are warmed, all pinned until the consuming batch
// releases the epoch:
//
//  1. the interval's message-log pages (sortgroup will read them whole),
//  2. the value pages of the predicted vertices,
//  3. their CSR pages — row-pointer pages up front (pure arithmetic),
//     column-index pages via a second-stage Expand that reads the row
//     entries through the now-warm cache on the prefetch worker.
//
// Everything here runs on the engine goroutine except the Expand closure,
// which touches only thread-safe state (device files and the graph's
// immutable layout).
func (e *Engine) planPrefetch(nextIv int, curLog *mlog.Log, values *csr.Values,
	carry *bitset.Set, pred *edgelog.Predictor, elog *edgelog.EdgeLog) []pagecache.Job {

	var jobs []pagecache.Job
	if f, pages := curLog.FilePages(nextIv); f != nil {
		jobs = append(jobs, pagecache.Job{File: f, Pages: pages, Pin: true})
	}

	iv := e.g.Intervals()[nextIv]
	verts := make([]uint32, 0, 256)
	for v := iv.Lo; v < iv.Hi && len(verts) < maxPrefetchVerts; v++ {
		if carry.Test(int(v)) || (pred != nil && pred.PredictActive(v)) {
			verts = append(verts, v)
		}
	}
	if len(verts) == 0 {
		return jobs
	}

	if pages := values.PagesForVerts(verts); len(pages) > 0 {
		jobs = append(jobs, pagecache.Job{File: values.File(), Pages: pages, Pin: true})
	}

	// Adjacency: only vertices the edge log will not serve read CSR pages.
	csrVerts := verts
	if elog != nil {
		csrVerts = make([]uint32, 0, len(verts))
		for _, v := range verts {
			if !elog.Has(v) {
				csrVerts = append(csrVerts, v)
			}
		}
	}
	if rowF, rowPages := e.g.OutRowPages(nextIv, csrVerts); rowF != nil && len(rowPages) > 0 {
		jobs = append(jobs, pagecache.Job{
			File: rowF, Pages: rowPages, Pin: true,
			Expand: func() ([]pagecache.Job, error) {
				colF, colPages, err := e.g.OutColPages(nextIv, csrVerts)
				if err != nil {
					return nil, err
				}
				if colF == nil || len(colPages) == 0 {
					return nil, nil
				}
				return []pagecache.Job{{File: colF, Pages: colPages, Pin: true}}, nil
			},
		})
	}
	return jobs
}

// batchRun bundles the state of one fused-interval batch.
type batchRun struct {
	prog       vc.Program
	combiner   vc.Combiner
	aux        *csr.Aux
	isAux      bool
	values     *csr.Values
	batch      *sortgroup.Batch
	carry      *bitset.Set
	step       int
	elog       *edgelog.EdgeLog
	pred       *edgelog.Predictor
	elogBudget int64
	nextLog    *mlog.Log
	curLog     *mlog.Log
	ss         *metrics.SuperstepStats
	muts       *[]vc.Mutation
}

// adjEntry is one active vertex's adjacency, plus where it came from.
type adjEntry struct {
	nbrs      []uint32
	weights   []uint32 // nil for unweighted graphs
	fromElog  bool
	pageIneff bool // any covering CSR page measured inefficient now
	interval  int32
	firstPage int32
	lastPage  int32
}

func (e *Engine) processBatch(br *batchRun) error {
	batch := br.batch
	// Everything this batch touches — value pages, adjacency, aux, and the
	// message-log evictions its worker Sends trigger — is vertex-processing
	// IO on the batch's interval range. Workers inherit the tag: they only
	// issue device IO through Send, whose eviction path runs while this
	// phase owns the device tag.
	prevS, prevIv := e.io.SetStage(obsv.StageVertex, batch.FirstIv)
	defer e.io.SetStage(prevS, prevIv)
	// Active set = message destinations ∪ carried-live vertices in range.
	verts := batch.ActiveVertices()
	br.carry.RangeInRange(int(batch.Lo), int(batch.Hi), func(i int) bool {
		verts = append(verts, uint32(i))
		return true
	})
	verts = sortedDedup(verts)
	if len(verts) == 0 {
		return nil
	}
	br.ss.Active += uint64(len(verts))
	br.ss.MsgsDelivered += uint64(len(batch.Recs))
	if br.pred != nil {
		for _, v := range verts {
			br.pred.NoteActive(v)
		}
	}

	tr := e.cfg.Trace

	// Load values for exactly the covering pages of the active set.
	valSpan := tr.Begin("engine", "load-values")
	valSpan.Arg("verts", int64(len(verts)))
	vb, _, err := br.values.LoadForVerts(verts)
	if err != nil {
		return err
	}
	valSpan.End()

	// Split adjacency sources: edge log vs CSR, then load both.
	adjSpan := tr.Begin("engine", "load-adjacency")
	adj := make(map[uint32]*adjEntry, len(verts))
	var fromLog []uint32
	perIv := make(map[int][]uint32)
	for _, v := range verts {
		if br.elog != nil && br.elog.Has(v) {
			fromLog = append(fromLog, v)
		} else {
			iv := e.g.IntervalOf(v)
			perIv[iv] = append(perIv[iv], v)
		}
	}
	if len(fromLog) > 0 {
		pages, err := br.elog.Load(fromLog, func(v uint32, nbrs, weights []uint32) {
			cp := make([]uint32, len(nbrs))
			copy(cp, nbrs)
			var wcp []uint32
			if weights != nil {
				wcp = make([]uint32, len(weights))
				copy(wcp, weights)
			}
			adj[v] = &adjEntry{nbrs: cp, weights: wcp, fromElog: true}
		})
		switch {
		case errors.Is(err, ssd.ErrCorruptPage):
			// Self-healing: the edge log is a redundant adjacency cache, so
			// a corrupt page costs the whole current generation — never
			// correctness. Load batches all its page reads before the first
			// visit, so no partial adjacency was delivered; reroute every
			// log-resident vertex to canonical CSR loading below.
			if ierr := br.elog.InvalidateCurrent(); ierr != nil {
				return ierr
			}
			br.ss.ElogHealed++
			for _, v := range fromLog {
				iv := e.g.IntervalOf(v)
				perIv[iv] = append(perIv[iv], v)
			}
		case err != nil:
			return err
		default:
			br.ss.EdgeLogPagesRead += uint64(pages)
		}
	}
	ivKeys := make([]int, 0, len(perIv))
	for iv := range perIv {
		ivKeys = append(ivKeys, iv)
	}
	sort.Ints(ivKeys)
	for _, iv := range ivKeys {
		stats, err := e.g.LoadOutEdgesFull(iv, perIv[iv], func(v uint32, nbrs, weights []uint32, first, last int32) {
			cp := make([]uint32, len(nbrs))
			copy(cp, nbrs)
			var wcp []uint32
			if weights != nil {
				wcp = make([]uint32, len(weights))
				copy(wcp, weights)
			}
			adj[v] = &adjEntry{nbrs: cp, weights: wcp, interval: int32(iv), firstPage: first, lastPage: last}
		})
		if err != nil {
			return err
		}
		br.ss.ColIdxPagesRead += uint64(stats.ColIdxPages)
		if br.pred != nil {
			br.pred.NotePageUtils(stats.PageUtils)
			// Mark vertices whose pages measured inefficient this
			// superstep; the edge-log decision reads this below.
			for _, v := range perIv[iv] {
				a := adj[v]
				for p := a.firstPage; p <= a.lastPage; p++ {
					if br.pred.PageIneffNow(csr.PageKey{Side: 0, Interval: a.interval, Page: p}) {
						a.pageIneff = true
						break
					}
				}
			}
		}
	}

	adjSpan.Arg("from_elog", int64(len(fromLog)))
	adjSpan.Arg("from_csr", int64(len(verts)-len(fromLog)))
	adjSpan.End()

	// Aux state for AuxUser programs.
	var auxSpan obsv.Span
	if br.isAux {
		auxSpan = tr.Begin("engine", "load-aux")
	}
	var auxBatches map[int]*csr.AuxBatch
	inSources := make(map[uint32][]uint32)
	if br.isAux {
		auxBatches = make(map[int]*csr.AuxBatch)
		perIvAll := make(map[int][]uint32)
		for _, v := range verts {
			iv := e.g.IntervalOf(v)
			perIvAll[iv] = append(perIvAll[iv], v)
		}
		keys := make([]int, 0, len(perIvAll))
		for iv := range perIvAll {
			keys = append(keys, iv)
		}
		sort.Ints(keys)
		for _, iv := range keys {
			ab, stats, err := br.aux.LoadBatch(iv, perIvAll[iv])
			if err != nil {
				return err
			}
			auxBatches[iv] = ab
			_ = stats // device stats already count these pages
			if _, err := e.g.LoadInEdges(iv, perIvAll[iv], func(v uint32, srcs []uint32) {
				cp := make([]uint32, len(srcs))
				copy(cp, srcs)
				inSources[v] = cp
			}); err != nil {
				return err
			}
		}
	}

	auxSpan.End()

	// Per-vertex message ranges within the sorted record slice.
	msgRange := make([][2]int, len(verts))
	recs := batch.Recs
	pos := 0
	for i, v := range verts {
		for pos < len(recs) && recs[pos].Dst < v {
			pos++
		}
		start := pos
		for pos < len(recs) && recs[pos].Dst == v {
			pos++
		}
		msgRange[i] = [2]int{start, pos}
	}

	// Process vertices in parallel chunks.
	procSpan := tr.Begin("engine", "process-vertices")
	procSpan.Arg("verts", int64(len(verts)))
	workers := e.cfg.Workers
	if workers > len(verts) {
		workers = len(verts)
	}
	halted := make([]bool, len(verts))
	var sent atomic.Uint64
	var firstErr atomic.Value
	// Panic capture is separate from firstErr: a program's Process panic
	// on a worker goroutine would otherwise kill the whole process (the
	// serving daemon included). The first panic wins; wg.Wait() publishes
	// the write.
	var panicOnce sync.Once
	var panicErr error
	var wg sync.WaitGroup
	workerMuts := make([][]vc.Mutation, workers)
	chunk := (len(verts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(verts) {
			hi = len(verts)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicErr = fmt.Errorf("%w: vertex worker: %v", ErrPanic, r)
					})
				}
			}()
			ctx := &engineCtx{eng: e, br: br, vb: vb, adj: adj, inSources: inSources, auxBatches: auxBatches, sent: &sent, muts: &workerMuts[w]}
			var msgBuf []vc.Msg
			for i := lo; i < hi; i++ {
				v := verts[i]
				r := msgRange[i]
				msgBuf = msgBuf[:0]
				for k := r[0]; k < r[1]; k++ {
					msgBuf = append(msgBuf, vc.Msg{Src: recs[k].Src, Data: recs[k].Data})
				}
				msgs := msgBuf
				if br.combiner != nil && len(msgs) > 1 {
					acc := msgs[0].Data
					for _, m := range msgs[1:] {
						acc = br.combiner.Combine(acc, m.Data)
					}
					msgs = []vc.Msg{{Src: msgs[0].Src, Data: acc}}
				}
				ctx.vertex = v
				ctx.haltedFlag = &halted[i]
				br.prog.Process(ctx, msgs)
				if ctx.err != nil {
					firstErr.CompareAndSwap(nil, ctx.err)
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if panicErr != nil {
		return panicErr
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	for _, wm := range workerMuts {
		*br.muts = append(*br.muts, wm...)
	}
	br.ss.MsgsSent += sent.Load()
	procSpan.End()

	// Update the carry set: processed vertices stay live unless halted.
	for i, v := range verts {
		br.carry.SetTo(int(v), !halted[i])
	}

	// Edge-log decisions (single-threaded; the log writer is not
	// concurrent): log CSR-served vertices predicted active whose pages
	// were inefficient, within the edge-log buffer budget.
	if br.elog != nil {
		relogSpan := tr.Begin("engine", "edgelog-relog")
		e.io.SetStage(obsv.StageRelog, batch.FirstIv)
		for _, v := range verts {
			a := adj[v]
			if a == nil || a.fromElog || len(a.nbrs) == 0 || !a.pageIneff {
				continue
			}
			if !br.pred.PredictActive(v) {
				continue
			}
			if br.elog.LoggedBytes() >= br.elogBudget {
				break
			}
			if err := br.elog.LogEdges(v, a.nbrs, a.weights); err != nil {
				return err
			}
			br.ss.EdgeLogPagesWrite++ // approximate: accounted precisely at flush
		}
		relogSpan.Arg("logged_bytes", br.elog.LoggedBytes())
		relogSpan.End()
		e.io.SetStage(obsv.StageVertex, batch.FirstIv)
	}

	// Write dirty value pages and aux pages back.
	flushSpan := tr.Begin("engine", "flush-values")
	if _, err := vb.Flush(); err != nil {
		return err
	}
	for _, ab := range auxBatches {
		if _, err := ab.Flush(); err != nil {
			return err
		}
	}
	flushSpan.End()
	return nil
}

// engineCtx implements vc.Context for one worker.
type engineCtx struct {
	eng        *Engine
	br         *batchRun
	vb         *csr.ValueBatch
	adj        map[uint32]*adjEntry
	inSources  map[uint32][]uint32
	auxBatches map[int]*csr.AuxBatch
	sent       *atomic.Uint64

	vertex     uint32
	haltedFlag *bool
	muts       *[]vc.Mutation
	err        error
}

func (c *engineCtx) Superstep() int      { return c.br.step }
func (c *engineCtx) NumVertices() uint32 { return c.eng.g.NumVertices() }
func (c *engineCtx) Vertex() uint32      { return c.vertex }
func (c *engineCtx) Value() uint32       { return c.vb.Get(c.vertex) }
func (c *engineCtx) SetValue(v uint32)   { c.vb.Set(c.vertex, v) }
func (c *engineCtx) VoteToHalt()         { *c.haltedFlag = true }

// ValueLane and SetValueLane implement vc.LaneContext: lane-batched
// programs address the lane-strided value slots of the processed vertex.
// Distinct (vertex, lane) slots are written by at most one worker, so the
// ValueBatch's concurrency contract holds.
func (c *engineCtx) ValueLane(lane int) uint32 { return c.vb.GetLane(c.vertex, lane) }

func (c *engineCtx) SetValueLane(lane int, v uint32) { c.vb.SetLane(c.vertex, lane, v) }

func (c *engineCtx) OutEdges() []uint32 {
	if a := c.adj[c.vertex]; a != nil {
		return a.nbrs
	}
	return nil
}

func (c *engineCtx) OutWeights() []uint32 {
	if a := c.adj[c.vertex]; a != nil {
		return a.weights
	}
	return nil
}

func (c *engineCtx) Send(dst, data uint32) {
	iv := c.eng.g.IntervalOf(dst)
	log := c.br.nextLog
	// Asynchronous model: forward sends (to intervals processed later
	// this superstep) stay in the current generation.
	if c.eng.cfg.Async && iv > c.br.batch.LastIv {
		log = c.br.curLog
	}
	if err := log.Append(iv, dst, c.vertex, data); err != nil && c.err == nil {
		c.err = err
	}
	c.sent.Add(1)
}

func (c *engineCtx) InEdgeSources() []uint32 { return c.inSources[c.vertex] }

// AddEdge implements vc.Mutator: the edge appears next superstep.
func (c *engineCtx) AddEdge(src, dst, weight uint32) {
	*c.muts = append(*c.muts, vc.Mutation{Add: true, Src: src, Dst: dst, Weight: weight})
}

// RemoveEdge implements vc.Mutator: the removal applies next superstep.
func (c *engineCtx) RemoveEdge(src, dst uint32) {
	*c.muts = append(*c.muts, vc.Mutation{Src: src, Dst: dst})
}

func (c *engineCtx) Aux() []uint32 {
	if c.auxBatches == nil {
		return nil
	}
	iv := c.eng.g.IntervalOf(c.vertex)
	if ab := c.auxBatches[iv]; ab != nil {
		return ab.Get(c.vertex)
	}
	return nil
}

// intervalSkew measures how unevenly the superstep's incoming messages
// spread over the vertex intervals: the busiest interval's log volume over
// the mean across all intervals. 1.0 is perfectly balanced; 0 means no
// messages flowed (a carry-only superstep).
func intervalSkew(log *mlog.Log, numIntervals int) float64 {
	var maxC, sumC uint64
	for iv := 0; iv < numIntervals; iv++ {
		c := log.Count(iv)
		sumC += c
		if c > maxC {
			maxC = c
		}
	}
	if sumC == 0 {
		return 0
	}
	return float64(maxC) * float64(numIntervals) / float64(sumC)
}

// publishLive pushes the finished superstep onto the process-wide expvar
// gauges — a handful of atomic stores, cheap enough to run unconditionally
// so a debug listener attached mid-run sees live state.
func publishLive(live *obsv.LiveVars, ss *metrics.SuperstepStats) {
	live.Superstep.Set(int64(ss.Superstep))
	live.Active.Set(int64(ss.Active))
	live.PagesRead.Add(int64(ss.PagesRead))
	live.PagesWritten.Add(int64(ss.PagesWritten))
	live.MsgsSent.Add(int64(ss.MsgsSent))
	live.MsgSkew.Set(ss.MsgSkew)
	if adj := ss.ColIdxPagesRead + ss.EdgeLogPagesRead; adj > 0 {
		live.EdgeLogHitRate.Set(float64(ss.EdgeLogPagesRead) / float64(adj))
	}
	if ss.TransientFaults > 0 {
		live.TransientFaults.Add(int64(ss.TransientFaults))
		live.Retries.Add(int64(ss.Retries))
	}
	if ss.CorruptPages > 0 {
		live.CorruptPages.Add(int64(ss.CorruptPages))
	}
	if ss.ElogHealed > 0 {
		live.ElogHeals.Add(int64(ss.ElogHealed))
	}
	if ss.Spills > 0 {
		live.Spills.Add(int64(ss.Spills))
		live.SpillBytes.Add(int64(ss.SpillBytes))
	}
	if ss.NoSpaceFaults > 0 || ss.Reclaims > 0 {
		live.NoSpaceFaults.Add(int64(ss.NoSpaceFaults))
		live.Reclaims.Add(int64(ss.Reclaims))
		live.ReclaimedBytes.Add(int64(ss.ReclaimedBytes))
	}
	for _, st := range ss.Stages {
		if st.PagesRead > 0 {
			live.StagePagesRead.Add(st.Stage, int64(st.PagesRead))
		}
		if st.PagesWritten > 0 {
			live.StagePagesWritten.Add(st.Stage, int64(st.PagesWritten))
		}
	}
}

func sortedDedup(s []uint32) []uint32 {
	if len(s) == 0 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}
