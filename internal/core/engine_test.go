package core

import (
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// buildGraph places edges on a fresh small-page device.
func buildGraph(t *testing.T, edges []graphio.Edge, n uint32, ivBudget int64) *csr.Graph {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
	g, err := csr.Build(dev, "g", edges, csr.BuildOptions{NumVertices: n, IntervalBudget: ivBudget})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runBoth executes prog on the MultiLogVC engine and the reference engine
// and asserts identical vertex values.
func runBoth(t *testing.T, edges []graphio.Edge, n uint32, prog vc.Program, maxSteps int, cfg Config) (*Result, *vc.RefResult) {
	t.Helper()
	g := buildGraph(t, edges, n, 2048)
	cfg.MaxSupersteps = maxSteps
	eng := New(g, cfg)
	got, err := eng.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := vc.NewRef(edges, n).Run(prog, maxSteps)
	if len(got.Values) != len(want.Values) {
		t.Fatalf("value count %d != %d", len(got.Values), len(want.Values))
	}
	diff := 0
	for v := range want.Values {
		if got.Values[v] != want.Values[v] {
			diff++
			if diff <= 5 {
				t.Errorf("value[%d] = %d, want %d", v, got.Values[v], want.Values[v])
			}
		}
	}
	if diff > 0 {
		t.Fatalf("%d/%d values differ from reference", diff, len(want.Values))
	}
	return got, want
}

func rmatEdges(t *testing.T, scale, ef int, seed int64) ([]graphio.Edge, uint32) {
	t.Helper()
	edges, err := gen.RMAT(gen.DefaultRMAT(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return edges, uint32(1 << scale)
}

func TestEngineBFSMatchesReference(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 11)
	res, ref := runBoth(t, edges, n, &apps.BFS{Source: 3}, 50, Config{})
	if res.Report.Converged != ref.Converged {
		t.Fatalf("converged = %v, ref %v", res.Report.Converged, ref.Converged)
	}
	if len(res.Report.Supersteps) != ref.Supersteps {
		t.Fatalf("supersteps = %d, ref %d", len(res.Report.Supersteps), ref.Supersteps)
	}
}

func TestEngineBFSGrid(t *testing.T) {
	edges, _ := gen.Grid(12, 12)
	runBoth(t, edges, 144, &apps.BFS{Source: 0}, 60, Config{})
}

func TestEnginePageRankMatchesReference(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 7)
	runBoth(t, edges, n, &apps.PageRank{}, 15, Config{})
}

func TestEnginePageRankNoCombiner(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 7)
	runBoth(t, edges, n, &apps.PageRank{}, 10, Config{DisableCombiner: true})
}

func TestEngineCDLPMatchesReference(t *testing.T) {
	edges, err := gen.PlantedPartition(3, 40, 8, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := graphio.NumVertices(edges)
	runBoth(t, edges, n, &apps.CDLP{}, 15, Config{})
}

func TestEngineColoringMatchesReference(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 19)
	res, _ := runBoth(t, edges, n, &apps.Coloring{}, 40, Config{})
	for _, e := range edges {
		if e.Src != e.Dst && res.Values[e.Src] == res.Values[e.Dst] {
			t.Fatalf("improper coloring on edge %v", e)
		}
	}
}

func TestEngineMISMatchesReference(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 23)
	res, _ := runBoth(t, edges, n, &apps.MIS{Seed: 5}, 100, Config{})
	adj := make(map[uint32][]uint32)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	if msg := apps.IsIndependentSet(res.Values, func(v uint32) []uint32 { return adj[v] }); msg != "" {
		t.Fatal(msg)
	}
}

func TestEngineRandomWalkMatchesReference(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 31)
	runBoth(t, edges, n, &apps.RandomWalk{SampleEvery: 16, WalkLength: 8, Seed: 3}, 20, Config{})
}

func TestEngineEdgeLogDisabledSameResults(t *testing.T) {
	edges, n := rmatEdges(t, 8, 8, 41)
	g1 := buildGraph(t, edges, n, 2048)
	r1, err := New(g1, Config{MaxSupersteps: 40}).Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	g2 := buildGraph(t, edges, n, 2048)
	r2, err := New(g2, Config{MaxSupersteps: 40, DisableEdgeLog: true}).Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Values {
		if r1.Values[v] != r2.Values[v] {
			t.Fatalf("edge log changed results at vertex %d", v)
		}
	}
}

func TestEngineSingleWorkerDeterministic(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 2)
	g1 := buildGraph(t, edges, n, 1024)
	r1, err := New(g1, Config{MaxSupersteps: 15, Workers: 1}).Run(&apps.Coloring{})
	if err != nil {
		t.Fatal(err)
	}
	g2 := buildGraph(t, edges, n, 1024)
	r2, err := New(g2, Config{MaxSupersteps: 15, Workers: 4}).Run(&apps.Coloring{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Values {
		if r1.Values[v] != r2.Values[v] {
			t.Fatalf("worker count changed results at vertex %d", v)
		}
	}
}

func TestEngineStopAfter(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 13)
	g := buildGraph(t, edges, n, 4096)
	stopped := 0
	cfg := Config{MaxSupersteps: 50, StopAfter: func(step int, cum uint64) bool {
		stopped = step
		return step >= 2
	}}
	res, err := New(g, cfg).Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Supersteps) != 3 {
		t.Fatalf("ran %d supersteps, want 3", len(res.Report.Supersteps))
	}
	if stopped != 2 {
		t.Fatalf("StopAfter last called with step %d", stopped)
	}
}

func TestEngineReportAccounting(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 17)
	g := buildGraph(t, edges, n, 4096)
	res, err := New(g, Config{MaxSupersteps: 15}).Run(&apps.PageRank{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Engine != "multilogvc" || rep.App != "pagerank" {
		t.Fatalf("report identity: %s/%s", rep.Engine, rep.App)
	}
	if rep.PagesRead == 0 || rep.PagesWritten == 0 {
		t.Fatalf("no IO recorded: %+v", rep)
	}
	if rep.StorageTime <= 0 || rep.ComputeTime <= 0 {
		t.Fatalf("times not recorded: storage=%v compute=%v", rep.StorageTime, rep.ComputeTime)
	}
	if rep.Supersteps[0].Active != uint64(n) {
		t.Fatalf("superstep 0 active = %d, want %d", rep.Supersteps[0].Active, n)
	}
	// Activity must shrink for PageRank.
	last := rep.Supersteps[len(rep.Supersteps)-1]
	if last.Active >= rep.Supersteps[0].Active {
		t.Fatalf("active did not shrink: first=%d last=%d", rep.Supersteps[0].Active, last.Active)
	}
}

func TestEngineActiveOnlyReadsFewerPagesThanFullScan(t *testing.T) {
	// With a tiny active set (BFS late supersteps), per-superstep page
	// reads must be far below the whole-graph page count.
	edges, n := rmatEdges(t, 11, 8, 3)
	g := buildGraph(t, edges, n, 1<<16)
	res, err := New(g, Config{MaxSupersteps: 30}).Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	graphPages := uint64(0)
	for iv := range g.Intervals() {
		graphPages += uint64(g.Device().PageSize()) // placeholder; compare per-superstep below
		_ = iv
	}
	// The last superstep (empty frontier digestion) must read almost
	// nothing compared to the first full-frontier supersteps.
	ss := res.Report.Supersteps
	if len(ss) < 3 {
		t.Skip("BFS finished too quickly")
	}
	maxRead := uint64(0)
	for _, s := range ss {
		if s.PagesRead > maxRead {
			maxRead = s.PagesRead
		}
	}
	lastRead := ss[len(ss)-1].PagesRead
	if lastRead*2 >= maxRead {
		t.Fatalf("late superstep reads %d pages, peak %d — selective loading broken", lastRead, maxRead)
	}
}

func TestEnginePaperGraph(t *testing.T) {
	// The 6-vertex example from the paper's Fig 1 (0-indexed).
	edges := []graphio.Edge{
		{Src: 2, Dst: 0}, {Src: 5, Dst: 0},
		{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 5, Dst: 1},
		{Src: 5, Dst: 2}, {Src: 5, Dst: 3}, {Src: 5, Dst: 4},
	}
	runBoth(t, edges, 6, &apps.BFS{Source: 5}, 10, Config{})
}

func TestEngineEmptyProgramNoActive(t *testing.T) {
	edges := []graphio.Edge{{Src: 0, Dst: 1}}
	g := buildGraph(t, edges, 2, 1024)
	res, err := New(g, Config{MaxSupersteps: 5}).Run(&noneActive{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Converged || len(res.Report.Supersteps) != 0 {
		t.Fatalf("empty program: %+v", res.Report)
	}
}

type noneActive struct{}

func (noneActive) Name() string                   { return "none" }
func (noneActive) InitValue(v, n uint32) uint32   { return 0 }
func (noneActive) InitActive(n uint32) vc.InitSet { return vc.InitSet{} }
func (noneActive) Process(vc.Context, []vc.Msg)   {}

func TestEngineAsyncConvergesToSameFixpoint(t *testing.T) {
	edges, n := rmatEdges(t, 9, 6, 47)
	gSync := buildGraph(t, edges, n, 2048)
	syncRes, err := New(gSync, Config{MaxSupersteps: 64}).Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	gAsync := buildGraph(t, edges, n, 2048)
	// DisableFusing forces one interval per batch so forward delivery
	// across batches actually happens.
	asyncRes, err := New(gAsync, Config{MaxSupersteps: 64, Async: true, DisableFusing: true}).Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	for v := range syncRes.Values {
		if asyncRes.Values[v] != syncRes.Values[v] {
			t.Fatalf("async BFS dist[%d] = %d, sync %d", v, asyncRes.Values[v], syncRes.Values[v])
		}
	}
	// Forward delivery within a superstep must not slow convergence.
	if len(asyncRes.Report.Supersteps) > len(syncRes.Report.Supersteps) {
		t.Fatalf("async took %d supersteps, sync %d",
			len(asyncRes.Report.Supersteps), len(syncRes.Report.Supersteps))
	}
}

func TestEngineAsyncWCC(t *testing.T) {
	edges, n := rmatEdges(t, 9, 4, 51)
	gSync := buildGraph(t, edges, n, 2048)
	syncRes, err := New(gSync, Config{MaxSupersteps: 128}).Run(&apps.WCC{})
	if err != nil {
		t.Fatal(err)
	}
	gAsync := buildGraph(t, edges, n, 2048)
	asyncRes, err := New(gAsync, Config{MaxSupersteps: 128, Async: true, DisableFusing: true}).Run(&apps.WCC{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range syncRes.Values {
		if asyncRes.Values[v] != syncRes.Values[v] {
			t.Fatalf("async WCC label[%d] = %d, sync %d", v, asyncRes.Values[v], syncRes.Values[v])
		}
	}
	if len(asyncRes.Report.Supersteps) >= len(syncRes.Report.Supersteps) {
		t.Logf("async %d supersteps, sync %d (forward delivery gave no win on this graph)",
			len(asyncRes.Report.Supersteps), len(syncRes.Report.Supersteps))
	}
}

func TestEngineAsyncActuallyForwards(t *testing.T) {
	// A forward chain across intervals completes in far fewer supersteps
	// under the async model with per-interval batches.
	edges := []graphio.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	g := buildGraph(t, edges, 4, 13) // one vertex per interval (13 bytes > one 12-byte msg)
	if len(g.Intervals()) < 3 {
		t.Fatalf("need one interval per vertex, got %d", len(g.Intervals()))
	}
	res, err := New(g, Config{MaxSupersteps: 64, Async: true, DisableFusing: true}).Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[3] != 3 {
		t.Fatalf("dist[3] = %d, want 3", res.Values[3])
	}
	if len(res.Report.Supersteps) > 3 {
		t.Fatalf("async chain took %d supersteps", len(res.Report.Supersteps))
	}
}

// mutationProg drops every vertex's edge to its largest neighbor during
// superstep 0 (via vc.Mutator) and records the remaining out-degree in
// superstep 1.
type mutationProg struct{}

func (mutationProg) Name() string                   { return "mutate" }
func (mutationProg) InitValue(v, n uint32) uint32   { return 0 }
func (mutationProg) InitActive(n uint32) vc.InitSet { return vc.InitSet{All: true} }
func (mutationProg) Process(ctx vc.Context, msgs []vc.Msg) {
	switch ctx.Superstep() {
	case 0:
		out := ctx.OutEdges()
		if len(out) > 1 {
			if m, ok := ctx.(vc.Mutator); ok {
				m.RemoveEdge(ctx.Vertex(), out[len(out)-1])
			}
		}
		// Stay active to observe the mutated graph next superstep.
	case 1:
		ctx.SetValue(uint32(len(ctx.OutEdges())))
		ctx.VoteToHalt()
	default:
		ctx.VoteToHalt()
	}
}

func TestEngineContextMutation(t *testing.T) {
	edges, n := rmatEdges(t, 7, 5, 91)
	res, _ := runBoth(t, edges, n, mutationProg{}, 5, Config{})
	// Spot check: some vertex lost an edge.
	shrunk := false
	degs := make(map[uint32]uint32)
	for _, e := range edges {
		degs[e.Src]++
	}
	for v, val := range res.Values {
		if d := degs[uint32(v)]; d > 1 && val == d-1 {
			shrunk = true
			break
		}
	}
	if !shrunk {
		t.Fatal("no vertex lost an edge through Context mutation")
	}
}

func TestEngineSelfLoops(t *testing.T) {
	// Self-loops deliver messages back to the sender next superstep.
	edges := []graphio.Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}}
	runBoth(t, edges, 2, &apps.PageRank{}, 8, Config{})
}

func TestEngineSingleVertex(t *testing.T) {
	edges := []graphio.Edge{{Src: 0, Dst: 0}}
	runBoth(t, edges, 1, &apps.BFS{Source: 0}, 5, Config{})
}

func TestEngineStarGraph(t *testing.T) {
	// Extreme skew: one hub with n-1 leaves, interval budget smaller than
	// the hub's in-degree (the Partition huge-vertex path).
	var edges []graphio.Edge
	const n = 200
	for i := uint32(1); i < n; i++ {
		edges = append(edges, graphio.Edge{Src: 0, Dst: i}, graphio.Edge{Src: i, Dst: 0})
	}
	g := buildGraph(t, edges, n, 10*12) // hub interval alone exceeds budget
	res, err := New(g, Config{MaxSupersteps: 20}).Run(&apps.PageRank{})
	if err != nil {
		t.Fatal(err)
	}
	ref := vc.NewRef(edges, n).Run(&apps.PageRank{}, 20)
	for v := range ref.Values {
		if res.Values[v] != ref.Values[v] {
			t.Fatalf("value[%d] = %d, ref %d", v, res.Values[v], ref.Values[v])
		}
	}
}

func TestEngineMutationRejectedForAuxPrograms(t *testing.T) {
	edges, n := rmatEdges(t, 6, 4, 3)
	g := buildGraph(t, edges, n, 2048)
	_, err := New(g, Config{MaxSupersteps: 5}).Run(auxMutator{})
	if err == nil {
		t.Fatal("aux program mutating structure should be rejected")
	}
}

// auxMutator is an (invalid) program combining aux state with mutation.
type auxMutator struct{}

func (auxMutator) Name() string                   { return "auxmut" }
func (auxMutator) InitValue(v, n uint32) uint32   { return 0 }
func (auxMutator) InitActive(n uint32) vc.InitSet { return vc.InitSet{All: true} }
func (auxMutator) AuxInit(n uint32) uint32        { return 0 }
func (auxMutator) Process(ctx vc.Context, msgs []vc.Msg) {
	if m, ok := ctx.(vc.Mutator); ok && ctx.Vertex() == 0 {
		m.AddEdge(0, 1, 1)
	}
	ctx.VoteToHalt()
}

func TestEngineEdgeLogActuallyServes(t *testing.T) {
	// Construct conditions where the edge log pays off: a sparse random
	// walk whose sources stay active across supersteps on big pages
	// (heavy read amplification).
	edges, n := rmatEdges(t, 10, 6, 8)
	dev := ssd.MustOpen(ssd.Config{PageSize: 8192, Channels: 4})
	g, err := csr.Build(dev, "g", edges, csr.BuildOptions{NumVertices: n, IntervalBudget: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	prog := &apps.RandomWalk{SampleEvery: 64, WalkLength: 12, Seed: 3}
	res, err := New(g, Config{MaxSupersteps: 14}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	var served, logged uint64
	for _, ss := range res.Report.Supersteps {
		served += ss.EdgeLogPagesRead
		logged += ss.EdgeLogPagesWrite
	}
	if logged == 0 {
		t.Skip("predictor logged nothing on this graph/seed")
	}
	if served == 0 {
		t.Fatalf("edge log was written (%d) but never served reads", logged)
	}
}

func TestEngineTinyBudgetStress(t *testing.T) {
	// A deliberately starved memory budget: many intervals, forced log
	// eviction, multiple fused batches per superstep. Results must still
	// match the reference exactly.
	edges, n := rmatEdges(t, 9, 8, 99)
	for _, prog := range []vc.Program{
		vc.Program(&apps.PageRank{}),
		vc.Program(&apps.CDLP{}),
		vc.Program(&apps.MIS{Seed: 11}),
	} {
		g := buildGraph(t, edges, n, 512) // ~43 msgs worst case per interval
		eng := New(g, Config{MaxSupersteps: 12, MemoryBudget: 8 << 10})
		got, err := eng.Run(prog)
		if err != nil {
			t.Fatalf("%s: %v", prog.Name(), err)
		}
		want := vc.NewRef(edges, n).Run(prog, 12)
		for v := range want.Values {
			if got.Values[v] != want.Values[v] {
				t.Fatalf("%s: value[%d] = %d, want %d", prog.Name(), v, got.Values[v], want.Values[v])
			}
		}
	}
}
