package sortgroup

import (
	"math/rand"
	"testing"

	"multilogvc/internal/csr"
	"multilogvc/internal/mlog"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

func fixture(t *testing.T) (*mlog.Log, []csr.Interval) {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: 120, Channels: 2})
	ivs := []csr.Interval{{Lo: 0, Hi: 10}, {Lo: 10, Hi: 20}, {Lo: 20, Hi: 30}}
	l, err := mlog.New(dev, "log", len(ivs), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return l, ivs
}

func TestLoadFusedSingleInterval(t *testing.T) {
	l, ivs := fixture(t)
	// Fill every interval beyond the tiny budget so no fusing happens.
	for i := uint32(0); i < 30; i++ {
		l.Append(int(i/10), i, 99, i*2)
	}
	l.FlushAll()
	// Budget fits exactly one interval's log: no room to fuse, no spill.
	b, err := LoadFused(l, ivs, 0, 10*mlog.RecordBytes)
	if err != nil {
		t.Fatal(err)
	}
	if b.Spilled {
		t.Fatal("a log exactly at the budget must not spill")
	}
	if b.FirstIv != 0 || b.LastIv != 0 {
		t.Fatalf("fused [%d,%d], want [0,0]", b.FirstIv, b.LastIv)
	}
	if len(b.Recs) != 10 {
		t.Fatalf("recs = %d, want 10", len(b.Recs))
	}
	for i := 1; i < len(b.Recs); i++ {
		if b.Recs[i-1].Dst > b.Recs[i].Dst {
			t.Fatal("records not sorted by dst")
		}
	}
}

func TestLoadFusedMergesSmallLogs(t *testing.T) {
	l, ivs := fixture(t)
	for i := uint32(0); i < 30; i++ {
		l.Append(int(i/10), i, 0, 0)
	}
	l.FlushAll()
	// Budget fits everything: all three logs fuse into one batch.
	b, err := LoadFused(l, ivs, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b.FirstIv != 0 || b.LastIv != 2 {
		t.Fatalf("fused [%d,%d], want [0,2]", b.FirstIv, b.LastIv)
	}
	if b.Lo != 0 || b.Hi != 30 {
		t.Fatalf("range [%d,%d)", b.Lo, b.Hi)
	}
	if len(b.Recs) != 30 {
		t.Fatalf("recs = %d", len(b.Recs))
	}
}

func TestLoadFusedPartial(t *testing.T) {
	l, ivs := fixture(t)
	// Interval 0 and 1 small, interval 2 large.
	l.Append(0, 1, 0, 0)
	l.Append(1, 11, 0, 0)
	for i := 0; i < 50; i++ {
		l.Append(2, 21, 0, 0)
	}
	l.FlushAll()
	b, err := LoadFused(l, ivs, 0, 5*mlog.RecordBytes)
	if err != nil {
		t.Fatal(err)
	}
	if b.FirstIv != 0 || b.LastIv != 1 {
		t.Fatalf("fused [%d,%d], want [0,1]", b.FirstIv, b.LastIv)
	}
}

func TestActiveVertices(t *testing.T) {
	l, ivs := fixture(t)
	for _, dst := range []uint32{5, 3, 5, 3, 7, 5} {
		l.Append(0, dst, 0, 0)
	}
	l.FlushAll()
	b, _ := LoadFused(l, ivs, 0, 1<<20)
	got := b.ActiveVertices()
	want := []uint32{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("active = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("active = %v, want %v", got, want)
		}
	}
}

func TestGrouperGroupsByDst(t *testing.T) {
	l, ivs := fixture(t)
	l.Append(0, 2, 10, 100)
	l.Append(0, 2, 11, 200)
	l.Append(0, 4, 12, 300)
	l.FlushAll()
	b, _ := LoadFused(l, ivs, 0, 1<<20)
	g := NewGrouper(b, nil)

	dst, msgs, ok := g.Next()
	if !ok || dst != 2 || len(msgs) != 2 {
		t.Fatalf("first group dst=%d msgs=%v", dst, msgs)
	}
	total := msgs[0].Data + msgs[1].Data
	if total != 300 {
		t.Fatalf("group payloads = %v", msgs)
	}
	dst, msgs, ok = g.Next()
	if !ok || dst != 4 || len(msgs) != 1 || msgs[0].Data != 300 {
		t.Fatalf("second group dst=%d msgs=%v", dst, msgs)
	}
	if _, _, ok := g.Next(); ok {
		t.Fatal("grouper did not end")
	}
}

type sumCombiner struct{}

func (sumCombiner) Combine(a, b uint32) uint32 { return a + b }

func TestGrouperCombines(t *testing.T) {
	l, ivs := fixture(t)
	l.Append(0, 2, 10, 100)
	l.Append(0, 2, 11, 200)
	l.Append(0, 2, 12, 300)
	l.FlushAll()
	b, _ := LoadFused(l, ivs, 0, 1<<20)
	g := NewGrouper(b, sumCombiner{})
	_, msgs, ok := g.Next()
	if !ok || len(msgs) != 1 || msgs[0].Data != 600 {
		t.Fatalf("combined msgs = %v", msgs)
	}
}

func TestGrouperSkipTo(t *testing.T) {
	l, ivs := fixture(t)
	for _, dst := range []uint32{1, 3, 5, 7} {
		l.Append(0, dst, 0, uint32(dst))
	}
	l.FlushAll()
	b, _ := LoadFused(l, ivs, 0, 1<<20)
	g := NewGrouper(b, nil)
	g.SkipTo(4)
	dst, _, ok := g.Next()
	if !ok || dst != 5 {
		t.Fatalf("after SkipTo(4), Next = %d", dst)
	}
}

// Property: grouped output equals a map-based grouping of the input.
func TestGrouperMatchesMapGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l, ivs := fixture(t)
	ref := make(map[uint32][]vc.Msg)
	for i := 0; i < 500; i++ {
		dst := uint32(rng.Intn(30))
		src := uint32(rng.Intn(30))
		data := rng.Uint32()
		l.Append(int(dst/10), dst, src, data)
		ref[dst] = append(ref[dst], vc.Msg{Src: src, Data: data})
	}
	l.FlushAll()
	b, err := LoadFused(l, ivs, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrouper(b, nil)
	groups := 0
	for {
		dst, msgs, ok := g.Next()
		if !ok {
			break
		}
		groups++
		want := ref[dst]
		if len(msgs) != len(want) {
			t.Fatalf("dst %d: %d msgs, want %d", dst, len(msgs), len(want))
		}
		// Compare as multisets (order is unspecified).
		counts := make(map[vc.Msg]int)
		for _, m := range msgs {
			counts[m]++
		}
		for _, m := range want {
			counts[m]--
		}
		for m, c := range counts {
			if c != 0 {
				t.Fatalf("dst %d: message multiset mismatch at %v", dst, m)
			}
		}
	}
	if groups != len(ref) {
		t.Fatalf("%d groups, want %d", groups, len(ref))
	}
}

func TestLoadFusedLastInterval(t *testing.T) {
	l, ivs := fixture(t)
	l.Append(2, 25, 0, 0)
	l.FlushAll()
	b, err := LoadFused(l, ivs, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b.FirstIv != 2 || b.LastIv != 2 || len(b.Recs) != 1 {
		t.Fatalf("batch = %+v", b)
	}
}

func TestGrouperEmptyBatch(t *testing.T) {
	l, ivs := fixture(t)
	b, err := LoadFused(l, ivs, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if verts := b.ActiveVertices(); len(verts) != 0 {
		t.Fatalf("active = %v", verts)
	}
	g := NewGrouper(b, nil)
	if _, _, ok := g.Next(); ok {
		t.Fatal("Next on empty batch returned a group")
	}
	g.SkipTo(100) // must not panic
}
