package sortgroup

import (
	"math/rand"
	"testing"

	"multilogvc/internal/csr"
	"multilogvc/internal/mlog"
	"multilogvc/internal/ssd"
)

// wideFixture builds a single 1000-vertex interval so spill chunking has
// room to cut many destination-aligned chunks.
func wideFixture(t *testing.T) (*mlog.Log, []csr.Interval) {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: 120, Channels: 2})
	ivs := []csr.Interval{{Lo: 0, Hi: 1000}}
	l, err := mlog.New(dev, "log", len(ivs), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return l, ivs
}

// drainChunks iterates a batch's chunks, checking per-chunk invariants, and
// returns the concatenated records and the chunk count.
func drainChunks(t *testing.T, b *Batch, iv csr.Interval) ([]Rec, int) {
	t.Helper()
	var all []Rec
	chunks := 0
	prevHi := iv.Lo
	for {
		chunks++
		if b.Lo != prevHi {
			t.Fatalf("chunk %d starts at %d, want %d (ranges must tile the interval)", chunks, b.Lo, prevHi)
		}
		if b.Hi <= b.Lo {
			t.Fatalf("chunk %d has empty range [%d,%d)", chunks, b.Lo, b.Hi)
		}
		for i, r := range b.Recs {
			if r.Dst < b.Lo || r.Dst >= b.Hi {
				t.Fatalf("chunk %d rec dst %d outside [%d,%d)", chunks, r.Dst, b.Lo, b.Hi)
			}
			if i > 0 && b.Recs[i-1].Dst > r.Dst {
				t.Fatalf("chunk %d not sorted by dst", chunks)
			}
		}
		all = append(all, b.Recs...)
		prevHi = b.Hi
		more, err := b.NextChunk()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	if prevHi != iv.Hi {
		t.Fatalf("chunks end at %d, want %d", prevHi, iv.Hi)
	}
	return all, chunks
}

func TestSpillSingleOversizedInterval(t *testing.T) {
	l, ivs := wideFixture(t)
	rng := rand.New(rand.NewSource(7))
	ref := make(map[Rec]int)
	const n = 500
	for i := 0; i < n; i++ {
		r := Rec{Dst: uint32(rng.Intn(1000)), Src: uint32(i), Data: rng.Uint32()}
		l.Append(0, r.Dst, r.Src, r.Data)
		ref[r]++
	}
	l.FlushAll()

	budget := int64(50) * mlog.RecordBytes // 10% of the log
	b, err := Load(l, ivs, 0, Options{SortBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !b.Spilled {
		t.Fatalf("log of %d bytes under budget %d did not spill", n*mlog.RecordBytes, budget)
	}
	if b.FirstIv != 0 || b.LastIv != 0 {
		t.Fatalf("spilled batch spans [%d,%d], want [0,0]", b.FirstIv, b.LastIv)
	}
	if b.SpillBytes() != n*mlog.RecordBytes {
		t.Fatalf("SpillBytes = %d, want %d", b.SpillBytes(), n*mlog.RecordBytes)
	}

	all, chunks := drainChunks(t, b, ivs[0])
	if chunks < 2 {
		t.Fatalf("oversized log produced %d chunk(s), want several", chunks)
	}
	if len(all) != n {
		t.Fatalf("chunks delivered %d records, want %d (no truncation)", len(all), n)
	}
	for _, r := range all {
		ref[r]--
	}
	for r, c := range ref {
		if c != 0 {
			t.Fatalf("record multiset mismatch at %+v (count %d)", r, c)
		}
	}
}

// The spill path must produce the same per-vertex combined values as the
// in-memory path — the engine-level bit-identical guarantee in miniature.
func TestSpillMatchesInMemory(t *testing.T) {
	build := func() (*mlog.Log, []csr.Interval) {
		l, ivs := wideFixture(t)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 800; i++ {
			l.Append(0, uint32(rng.Intn(1000)), uint32(rng.Intn(1000)), rng.Uint32()%1000)
		}
		l.FlushAll()
		return l, ivs
	}

	fold := func(b *Batch) map[uint32]uint32 {
		out := make(map[uint32]uint32)
		for {
			g := NewGrouper(b, sumCombiner{})
			for {
				dst, msgs, ok := g.Next()
				if !ok {
					break
				}
				out[dst] = msgs[0].Data
			}
			more, err := b.NextChunk()
			if err != nil {
				t.Fatal(err)
			}
			if !more {
				return out
			}
		}
	}

	l1, ivs1 := build()
	mem, err := Load(l1, ivs1, 0, Options{SortBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if mem.Spilled {
		t.Fatal("reference load spilled")
	}
	want := fold(mem)

	l2, ivs2 := build()
	sp, err := Load(l2, ivs2, 0, Options{SortBudget: 30 * mlog.RecordBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if !sp.Spilled {
		t.Fatal("tight-budget load did not spill")
	}
	got := fold(sp)

	if len(got) != len(want) {
		t.Fatalf("%d active vertices, want %d", len(got), len(want))
	}
	for dst, v := range want {
		if got[dst] != v {
			t.Fatalf("dst %d: spilled value %d != in-memory %d", dst, got[dst], v)
		}
	}
}

// Exactly at the budget: load in memory. One record over: spill. The
// decision is a strict inequality on the counter estimate.
func TestSpillBoundaryExactBudget(t *testing.T) {
	for _, tc := range []struct {
		name  string
		recs  int
		spill bool
	}{
		{"at-budget", 20, false},
		{"one-over", 21, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, ivs := wideFixture(t)
			for i := 0; i < tc.recs; i++ {
				l.Append(0, uint32(i), 0, uint32(i))
			}
			l.FlushAll()
			b, err := Load(l, ivs, 0, Options{SortBudget: 20 * mlog.RecordBytes})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if b.Spilled != tc.spill {
				t.Fatalf("%d records, budget 20: Spilled = %v, want %v", tc.recs, b.Spilled, tc.spill)
			}
			all, _ := drainChunks(t, b, ivs[0])
			if len(all) != tc.recs {
				t.Fatalf("delivered %d records, want %d", len(all), tc.recs)
			}
		})
	}
}

// Fusing stops exactly at the budget edge: two logs that together fill the
// budget fuse; one more record and the second interval is left out.
func TestFuseAtBudgetEdge(t *testing.T) {
	for _, tc := range []struct {
		name     string
		iv1Recs  int
		wantLast int
	}{
		{"fits-exactly", 10, 1},
		{"one-over", 11, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, ivs := fixture(t)
			for i := 0; i < 10; i++ {
				l.Append(0, uint32(i), 0, 0)
			}
			for i := 0; i < tc.iv1Recs; i++ {
				l.Append(1, 10+uint32(i%10), 0, 0)
			}
			l.Append(2, 20, 0, 0) // non-empty so it can't fuse for free
			l.FlushAll()
			b, err := Load(l, ivs, 0, Options{SortBudget: 20 * mlog.RecordBytes})
			if err != nil {
				t.Fatal(err)
			}
			if b.Spilled {
				t.Fatal("fuse-edge load must stay in memory")
			}
			if b.FirstIv != 0 || b.LastIv != tc.wantLast {
				t.Fatalf("fused [%d,%d], want [0,%d]", b.FirstIv, b.LastIv, tc.wantLast)
			}
		})
	}
}

// NoFuse keeps batches to one interval without shrinking the budget: small
// logs stay unfused and in memory, oversized logs still spill.
func TestNoFuseStillSpills(t *testing.T) {
	l, ivs := fixture(t)
	l.Append(0, 1, 0, 0)
	for i := 0; i < 50; i++ {
		l.Append(1, 10+uint32(i%10), 0, uint32(i))
	}
	l.FlushAll()
	opts := Options{SortBudget: 20 * mlog.RecordBytes, NoFuse: true}

	b0, err := Load(l, ivs, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b0.Spilled || b0.FirstIv != 0 || b0.LastIv != 0 || len(b0.Recs) != 1 {
		t.Fatalf("NoFuse small batch = %+v", b0)
	}

	b1, err := Load(l, ivs, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	if !b1.Spilled {
		t.Fatal("NoFuse oversized interval did not spill")
	}
	all, _ := drainChunks(t, b1, ivs[1])
	if len(all) != 50 {
		t.Fatalf("delivered %d records, want 50", len(all))
	}
}

// Close deletes the run files: device usage returns to its pre-spill level,
// and a second Close is a no-op.
func TestSpillCloseReleasesRuns(t *testing.T) {
	l, ivs := wideFixture(t)
	for i := 0; i < 200; i++ {
		l.Append(0, uint32(i%1000), 0, uint32(i))
	}
	l.FlushAll()
	dev := l.Device()
	before := dev.UsedBytes()

	b, err := Load(l, ivs, 0, Options{SortBudget: 40 * mlog.RecordBytes})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Spilled {
		t.Fatal("load did not spill")
	}
	if dev.UsedBytes() <= before {
		t.Fatal("spill wrote no run pages")
	}
	b.Close()
	b.Close() // idempotent
	if got := dev.UsedBytes(); got != before {
		t.Fatalf("after Close UsedBytes = %d, want %d (runs not reclaimed)", got, before)
	}
	if _, err := b.NextChunk(); err != nil {
		t.Fatal(err)
	}
}
