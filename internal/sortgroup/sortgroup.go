// Package sortgroup implements the sort-and-group unit of §V-B: it loads
// the update log of a vertex interval from the device, fuses the logs of
// consecutive intervals while they fit the sort budget (§V-A2), sorts the
// records in memory by destination vertex, and serves per-vertex message
// groups to the engine.
package sortgroup

import (
	"sort"

	"multilogvc/internal/csr"
	"multilogvc/internal/mlog"
	"multilogvc/internal/vc"
)

// Rec is one update record read back from a log.
type Rec struct {
	Dst, Src, Data uint32
}

// Batch is the sorted, grouped update set of one or more fused intervals.
type Batch struct {
	// FirstIv and LastIv delimit the fused interval range [FirstIv, LastIv].
	FirstIv, LastIv int
	// Lo and Hi delimit the covered vertex range [Lo, Hi).
	Lo, Hi uint32
	// Recs are the updates sorted by destination.
	Recs []Rec
}

// LoadFused loads the log of interval startIv and keeps fusing the
// following intervals' logs while the estimated total record volume stays
// within sortBudget bytes (always at least one interval). Records are
// sorted by destination. The per-interval record counters provide the
// first-order size estimate, as in the paper.
func LoadFused(log *mlog.Log, ivs []csr.Interval, startIv int, sortBudget int64) (*Batch, error) {
	last := startIv
	total := int64(log.Count(startIv)) * mlog.RecordBytes
	for last+1 < len(ivs) {
		next := int64(log.Count(last+1)) * mlog.RecordBytes
		if total+next > sortBudget {
			break
		}
		total += next
		last++
	}

	b := &Batch{
		FirstIv: startIv,
		LastIv:  last,
		Lo:      ivs[startIv].Lo,
		Hi:      ivs[last].Hi,
		Recs:    make([]Rec, 0, total/mlog.RecordBytes),
	}
	for iv := startIv; iv <= last; iv++ {
		if err := log.Read(iv, func(dst, src, data uint32) {
			b.Recs = append(b.Recs, Rec{Dst: dst, Src: src, Data: data})
		}); err != nil {
			return nil, err
		}
	}
	sort.Slice(b.Recs, func(i, j int) bool { return b.Recs[i].Dst < b.Recs[j].Dst })
	return b, nil
}

// ActiveVertices returns the distinct destinations in the batch, ascending
// — the paper's ExtractActiveVert.
func (b *Batch) ActiveVertices() []uint32 {
	var verts []uint32
	for i := 0; i < len(b.Recs); {
		dst := b.Recs[i].Dst
		verts = append(verts, dst)
		for i < len(b.Recs) && b.Recs[i].Dst == dst {
			i++
		}
	}
	return verts
}

// MsgsFor returns the messages bound for vertex v, optionally reduced by a
// combiner (the paper's optional combine path: applied to all updates for
// a target before its processing function runs). The scratch slice is
// reused across calls; the result aliases it.
type Grouper struct {
	batch    *Batch
	pos      int
	combiner vc.Combiner
	scratch  []vc.Msg
}

// NewGrouper iterates the batch's messages grouped by destination.
// combiner may be nil.
func NewGrouper(b *Batch, combiner vc.Combiner) *Grouper {
	return &Grouper{batch: b, combiner: combiner}
}

// Next returns the next destination and its messages, or ok=false when the
// batch is exhausted. Destinations arrive in ascending order. The msgs
// slice is only valid until the following Next call.
func (g *Grouper) Next() (dst uint32, msgs []vc.Msg, ok bool) {
	recs := g.batch.Recs
	if g.pos >= len(recs) {
		return 0, nil, false
	}
	dst = recs[g.pos].Dst
	g.scratch = g.scratch[:0]
	for g.pos < len(recs) && recs[g.pos].Dst == dst {
		r := recs[g.pos]
		g.scratch = append(g.scratch, vc.Msg{Src: r.Src, Data: r.Data})
		g.pos++
	}
	msgs = g.scratch
	if g.combiner != nil && len(msgs) > 1 {
		acc := msgs[0].Data
		for _, m := range msgs[1:] {
			acc = g.combiner.Combine(acc, m.Data)
		}
		g.scratch[0] = vc.Msg{Src: msgs[0].Src, Data: acc}
		msgs = g.scratch[:1]
	}
	return dst, msgs, true
}

// SkipTo advances the grouper so the next Next call returns the first
// destination >= v.
func (g *Grouper) SkipTo(v uint32) {
	recs := g.batch.Recs
	g.pos += sort.Search(len(recs)-g.pos, func(i int) bool { return recs[g.pos+i].Dst >= v })
}
