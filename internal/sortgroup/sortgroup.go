// Package sortgroup implements the sort-and-group unit of §V-B: it loads
// the update log of a vertex interval from the device, fuses the logs of
// consecutive intervals while they fit the sort budget (§V-A2), sorts the
// records in memory by destination vertex, and serves per-vertex message
// groups to the engine.
//
// The paper sizes intervals so one interval's worst-case log fits the sort
// budget, but at runtime a log can exceed that build-time bound (random
// walk sends multiple walkers per edge; structural updates grow in-degrees
// after intervals are fixed). Rather than over-allocating, an oversized
// interval falls back to a chunked external sort-group built on
// internal/extsort's k-way merge: the log is cut into budget-sized sorted
// runs on the device and served back as destination-aligned chunks, each
// within the budget. Results are identical to the in-memory path — every
// record is delivered to its destination exactly once.
package sortgroup

import (
	"fmt"
	"sort"

	"multilogvc/internal/csr"
	"multilogvc/internal/extsort"
	"multilogvc/internal/mlog"
	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// Rec is one update record read back from a log.
type Rec struct {
	Dst, Src, Data uint32
}

// Batch is the sorted, grouped update set of one or more fused intervals.
// A spilled batch (Spilled true) serves one budget-sized chunk at a time:
// Recs holds the current chunk, NextChunk advances, and Close releases the
// on-device run files.
type Batch struct {
	// FirstIv and LastIv delimit the fused interval range [FirstIv, LastIv].
	FirstIv, LastIv int
	// Lo and Hi delimit the vertex range [Lo, Hi) covered by the current
	// chunk (the whole fused range for in-memory batches).
	Lo, Hi uint32
	// Recs are the updates sorted by destination — the current chunk of a
	// spilled batch, or everything for an in-memory one.
	Recs []Rec
	// Spilled reports that the interval's log exceeded the sort budget and
	// is being served through the external sort-group.
	Spilled bool

	spill *spillState
}

// spillState is the external-sort cursor of a spilled batch.
type spillState struct {
	runs       *extsort.Runs
	m          *extsort.Merger
	tag        ssd.Tagger // for tagging merge reads as StageSpill
	budgetRecs int
	next       extsort.Record // lookahead across the chunk boundary
	have       bool
	ivHi       uint32 // owning interval's Hi: the last chunk extends to it
	nextLo     uint32 // vertex range low bound of the next chunk
	bytes      int64  // run bytes written to the device
}

// Options tunes Load.
type Options struct {
	// SortBudget bounds the in-memory record volume in bytes: logs fuse
	// while they fit under it, and a single interval's log exceeding it is
	// spilled through the external sort-group. <= 0 means unbounded (fuse
	// everything, never spill).
	SortBudget int64
	// NoFuse disables fusing of non-empty logs (the §V-A2 ablation)
	// without shrinking the budget — an oversized interval still spills
	// rather than over-allocating. Consecutive empty logs still fuse:
	// they carry no sort work, and batch boundaries between them would
	// only change async forward-delivery cutoffs, not save memory.
	NoFuse bool
}

// LoadFused is Load with fusing on — the historical entry point.
func LoadFused(log *mlog.Log, ivs []csr.Interval, startIv int, sortBudget int64) (*Batch, error) {
	return Load(log, ivs, startIv, Options{SortBudget: sortBudget})
}

// Load loads the log of interval startIv and keeps fusing the following
// intervals' logs while the estimated total record volume stays within the
// sort budget (always at least one interval). Records are sorted by
// destination. The per-interval record counters provide the first-order
// size estimate, as in the paper. When startIv's log alone exceeds the
// budget, the batch is served through the spill path (see Batch).
func Load(log *mlog.Log, ivs []csr.Interval, startIv int, opts Options) (*Batch, error) {
	budget := opts.SortBudget
	total := int64(log.Count(startIv)) * mlog.RecordBytes
	if budget > 0 && total > budget {
		return loadSpilled(log, ivs[startIv], startIv, budget)
	}
	last := startIv
	for last+1 < len(ivs) {
		next := int64(log.Count(last+1)) * mlog.RecordBytes
		if opts.NoFuse {
			if total+next > 0 {
				break // only empty logs fuse under the ablation
			}
		} else if budget > 0 && total+next > budget {
			break
		}
		total += next
		last++
	}

	b := &Batch{
		FirstIv: startIv,
		LastIv:  last,
		Lo:      ivs[startIv].Lo,
		Hi:      ivs[last].Hi,
		Recs:    make([]Rec, 0, total/mlog.RecordBytes),
	}
	tag := log.Tagger()
	for iv := startIv; iv <= last; iv++ {
		// Tag per fused interval so interval-level IO skew attributes log
		// read-back to the interval that produced it.
		prevS, prevIv := tag.SetStage(obsv.StageSortGroup, iv)
		err := log.Read(iv, func(dst, src, data uint32) {
			b.Recs = append(b.Recs, Rec{Dst: dst, Src: src, Data: data})
		})
		tag.SetStage(prevS, prevIv)
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(b.Recs, func(i, j int) bool { return b.Recs[i].Dst < b.Recs[j].Dst })
	return b, nil
}

// loadSpilled externally sorts interval ivIdx's oversized log into
// budget-sized runs and primes the first chunk. No records are combined
// here — the Grouper applies the program's combiner exactly as on the
// in-memory path, so results are identical.
func loadSpilled(log *mlog.Log, iv csr.Interval, ivIdx int, budget int64) (*Batch, error) {
	budgetRecs := int(budget / mlog.RecordBytes)
	if budgetRecs < 1 {
		budgetRecs = 1
	}
	tag := log.Tagger()
	runs := extsort.NewRuns(log.Device(), fmt.Sprintf("%s.%d.spill", log.Prefix(), ivIdx), nil)
	runs.SetScope(log.Scope())
	buf := make([]extsort.Record, 0, budgetRecs)
	var flushErr error
	// Log read-back is sort+group work on this interval; the run-file
	// writes it triggers are spill traffic. The tag flips around each
	// flush so the two phases stay separable in the per-stage breakdown.
	prevS, prevIv := tag.SetStage(obsv.StageSortGroup, ivIdx)
	err := log.Read(ivIdx, func(dst, src, data uint32) {
		if flushErr != nil {
			return
		}
		buf = append(buf, extsort.Record{Dst: dst, Src: src, Data: data})
		if len(buf) >= budgetRecs {
			tag.SetStage(obsv.StageSpill, ivIdx)
			flushErr = runs.Flush(buf)
			tag.SetStage(obsv.StageSortGroup, ivIdx)
			buf = buf[:0]
		}
	})
	if err != nil {
		tag.SetStage(prevS, prevIv)
		runs.Remove()
		return nil, err
	}
	tag.SetStage(obsv.StageSpill, ivIdx)
	if flushErr == nil {
		flushErr = runs.Flush(buf)
	}
	tag.SetStage(prevS, prevIv)
	if flushErr != nil {
		runs.Remove()
		return nil, flushErr
	}

	b := &Batch{
		FirstIv: ivIdx, LastIv: ivIdx,
		Lo: iv.Lo, Hi: iv.Hi,
		Spilled: true,
		spill: &spillState{
			runs: runs, tag: tag, budgetRecs: budgetRecs,
			ivHi: iv.Hi, nextLo: iv.Lo,
			bytes: runs.BytesWritten(),
		},
	}
	prevS, prevIv = tag.SetStage(obsv.StageSpill, ivIdx)
	b.spill.m = runs.Merge()
	r, ok, err := b.spill.m.Next()
	tag.SetStage(prevS, prevIv)
	if err != nil {
		b.Close()
		return nil, err
	}
	b.spill.next, b.spill.have = r, ok
	if err := b.fillChunk(); err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// fillChunk replaces Recs with the next destination-aligned chunk. Chunks
// grow to the record budget and then extend to the current destination's
// last record, so no vertex's messages straddle two chunks (one very hot
// destination may exceed the budget — correctness over strictness). The
// chunk's [Lo, Hi) partitions the interval: the engine processes each
// carry-only vertex exactly once, in the chunk covering its ID.
func (b *Batch) fillChunk() error {
	s := b.spill
	// Merge reads pull run pages back from the device: spill traffic,
	// attributed to the owning interval.
	prevS, prevIv := s.tag.SetStage(obsv.StageSpill, b.FirstIv)
	defer s.tag.SetStage(prevS, prevIv)
	b.Recs = b.Recs[:0]
	b.Lo = s.nextLo
	b.Hi = s.ivHi
	if !s.have {
		return nil
	}
	for {
		b.Recs = append(b.Recs, Rec{Dst: s.next.Dst, Src: s.next.Src, Data: s.next.Data})
		r, ok, err := s.m.Next()
		if err != nil {
			return err
		}
		if !ok {
			s.have = false
			return nil
		}
		prev := s.next
		s.next = r
		if len(b.Recs) >= s.budgetRecs && r.Dst != prev.Dst {
			b.Hi = prev.Dst + 1
			s.nextLo = prev.Dst + 1
			return nil
		}
	}
}

// NextChunk advances a spilled batch to its next chunk, reporting whether
// one was produced. In-memory batches (and exhausted spills) return false.
func (b *Batch) NextChunk() (bool, error) {
	if b.spill == nil || !b.spill.have {
		return false, nil
	}
	if err := b.fillChunk(); err != nil {
		return false, err
	}
	return true, nil
}

// SpillBytes returns the record bytes externally sorted through the device
// for this batch (0 for in-memory batches).
func (b *Batch) SpillBytes() int64 {
	if b.spill == nil {
		return 0
	}
	return b.spill.bytes
}

// Close releases a spilled batch's merge cursor and deletes its on-device
// run files. A no-op for in-memory batches; safe to call more than once.
func (b *Batch) Close() {
	if b.spill != nil {
		b.spill.m.Close()
		b.spill = nil
	}
}

// ActiveVertices returns the distinct destinations in the batch, ascending
// — the paper's ExtractActiveVert.
func (b *Batch) ActiveVertices() []uint32 {
	var verts []uint32
	for i := 0; i < len(b.Recs); {
		dst := b.Recs[i].Dst
		verts = append(verts, dst)
		for i < len(b.Recs) && b.Recs[i].Dst == dst {
			i++
		}
	}
	return verts
}

// MsgsFor returns the messages bound for vertex v, optionally reduced by a
// combiner (the paper's optional combine path: applied to all updates for
// a target before its processing function runs). The scratch slice is
// reused across calls; the result aliases it.
type Grouper struct {
	batch    *Batch
	pos      int
	combiner vc.Combiner
	scratch  []vc.Msg
}

// NewGrouper iterates the batch's messages grouped by destination.
// combiner may be nil.
func NewGrouper(b *Batch, combiner vc.Combiner) *Grouper {
	return &Grouper{batch: b, combiner: combiner}
}

// Next returns the next destination and its messages, or ok=false when the
// batch is exhausted. Destinations arrive in ascending order. The msgs
// slice is only valid until the following Next call.
func (g *Grouper) Next() (dst uint32, msgs []vc.Msg, ok bool) {
	recs := g.batch.Recs
	if g.pos >= len(recs) {
		return 0, nil, false
	}
	dst = recs[g.pos].Dst
	g.scratch = g.scratch[:0]
	for g.pos < len(recs) && recs[g.pos].Dst == dst {
		r := recs[g.pos]
		g.scratch = append(g.scratch, vc.Msg{Src: r.Src, Data: r.Data})
		g.pos++
	}
	msgs = g.scratch
	if g.combiner != nil && len(msgs) > 1 {
		acc := msgs[0].Data
		for _, m := range msgs[1:] {
			acc = g.combiner.Combine(acc, m.Data)
		}
		g.scratch[0] = vc.Msg{Src: msgs[0].Src, Data: acc}
		msgs = g.scratch[:1]
	}
	return dst, msgs, true
}

// SkipTo advances the grouper so the next Next call returns the first
// destination >= v.
func (g *Grouper) SkipTo(v uint32) {
	recs := g.batch.Recs
	g.pos += sort.Search(len(recs)-g.pos, func(i int) bool { return recs[g.pos+i].Dst >= v })
}
