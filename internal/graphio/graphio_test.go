package graphio

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadText(t *testing.T) {
	input := `# comment
% also comment
0 1
1 2

2 0
`
	edges, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{0, 1}, {1, 2}, {2, 0}}
	if len(edges) != len(want) {
		t.Fatalf("got %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("got %v, want %v", edges, want)
		}
	}
}

func TestReadTextTabsAndExtraFields(t *testing.T) {
	edges, err := ReadText(strings.NewReader("3\t4\t1.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 || edges[0] != (Edge{3, 4}) {
		t.Fatalf("got %v", edges)
	}
}

func TestReadTextErrors(t *testing.T) {
	for _, bad := range []string{"5\n", "a b\n", "1 x\n", "-1 2\n"} {
		if _, err := ReadText(strings.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("input %q: err = %v, want ErrBadFormat", bad, err)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	in := []Edge{{0, 5}, {5, 0}, {100000, 3}}
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %v != %v", out, in)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip %v != %v", out, in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := []Edge{{1, 2}, {4294967295, 0}, {7, 7}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip len %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip %v != %v", out, in)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 16))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2})); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("short err = %v, want ErrBadFormat", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteBinary(&buf, []Edge{{1, 2}, {3, 4}})
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated err = %v, want ErrBadFormat", err)
	}
}

func TestNumVertices(t *testing.T) {
	if NumVertices(nil) != 0 {
		t.Fatal("empty should be 0")
	}
	if got := NumVertices([]Edge{{0, 0}}); got != 1 {
		t.Fatalf("single self loop = %d, want 1", got)
	}
	if got := NumVertices([]Edge{{3, 9}, {1, 2}}); got != 10 {
		t.Fatalf("got %d, want 10", got)
	}
}

func TestDegrees(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 0}}
	out := OutDegrees(edges, 3)
	in := InDegrees(edges, 3)
	wantOut := []uint32{2, 1, 1}
	wantIn := []uint32{1, 1, 2}
	for i := range wantOut {
		if out[i] != wantOut[i] {
			t.Fatalf("OutDegrees = %v, want %v", out, wantOut)
		}
		if in[i] != wantIn[i] {
			t.Fatalf("InDegrees = %v, want %v", in, wantIn)
		}
	}
}

func TestMakeUndirected(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 0}, {2, 2}, {0, 1}}
	und := MakeUndirected(edges)
	want := []Edge{{0, 1}, {1, 0}}
	if len(und) != len(want) {
		t.Fatalf("got %v, want %v", und, want)
	}
	for i := range want {
		if und[i] != want[i] {
			t.Fatalf("got %v, want %v", und, want)
		}
	}
}

func TestDedup(t *testing.T) {
	edges := []Edge{{5, 1}, {0, 1}, {5, 1}, {0, 1}, {0, 0}}
	d := Dedup(edges)
	want := []Edge{{0, 0}, {0, 1}, {5, 1}}
	if len(d) != len(want) {
		t.Fatalf("got %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("got %v, want %v", d, want)
		}
	}
	if got := Dedup(nil); len(got) != 0 {
		t.Fatal("Dedup(nil) should be empty")
	}
}

func TestSortEdgesByDst(t *testing.T) {
	edges := []Edge{{2, 1}, {0, 2}, {1, 1}}
	SortEdgesByDst(edges)
	want := []Edge{{1, 1}, {2, 1}, {0, 2}}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("got %v, want %v", edges, want)
		}
	}
}

// Property: MakeUndirected output is symmetric, loop-free, and deduplicated.
func TestQuickUndirectedSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		edges := make([]Edge, 0, 50)
		for i := 0; i < 50; i++ {
			edges = append(edges, Edge{uint32(rng.Intn(20)), uint32(rng.Intn(20))})
		}
		und := MakeUndirected(edges)
		set := make(map[Edge]bool, len(und))
		for _, e := range und {
			if e.Src == e.Dst || set[e] {
				return false
			}
			set[e] = true
		}
		for e := range set {
			if !set[Edge{e.Dst, e.Src}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: binary round trip is the identity for random edge lists.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(pairs []uint32) bool {
		edges := make([]Edge, 0, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			edges = append(edges, Edge{pairs[i], pairs[i+1]})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, edges); err != nil {
			return false
		}
		out, err := ReadBinary(&buf)
		if err != nil || len(out) != len(edges) {
			return false
		}
		for i := range edges {
			if out[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedHelpers(t *testing.T) {
	edges := []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	w := AttachWeights(edges, func(s, d uint32) uint32 { return s + d + 1 })
	if w[0].Weight != 2 || w[1].Weight != 2 {
		t.Fatalf("AttachWeights = %v", w)
	}
	stripped := Strip(w)
	for i := range edges {
		if stripped[i] != edges[i] {
			t.Fatalf("Strip = %v", stripped)
		}
	}
}

func TestSortWeighted(t *testing.T) {
	w := []WeightedEdge{{2, 0, 9}, {0, 5, 7}, {0, 2, 3}}
	SortWeighted(w)
	if w[0] != (WeightedEdge{0, 2, 3}) || w[2] != (WeightedEdge{2, 0, 9}) {
		t.Fatalf("SortWeighted = %v", w)
	}
	SortWeightedByDst(w)
	if w[0].Dst != 0 || w[2].Dst != 5 {
		t.Fatalf("SortWeightedByDst = %v", w)
	}
}

func TestDedupWeightedKeepsFirstWeight(t *testing.T) {
	w := []WeightedEdge{{0, 1, 5}, {0, 1, 9}, {1, 0, 3}}
	d := DedupWeighted(w)
	if len(d) != 2 {
		t.Fatalf("DedupWeighted = %v", d)
	}
	if d[0] != (WeightedEdge{0, 1, 5}) {
		t.Fatalf("first weight not kept: %v", d[0])
	}
	if got := DedupWeighted(nil); len(got) != 0 {
		t.Fatal("DedupWeighted(nil) should be empty")
	}
}

func TestMakeUndirectedWeighted(t *testing.T) {
	w := []WeightedEdge{{0, 1, 7}, {2, 2, 1}}
	und := MakeUndirectedWeighted(w)
	if len(und) != 2 {
		t.Fatalf("MakeUndirectedWeighted = %v", und)
	}
	for _, e := range und {
		if e.Weight != 7 {
			t.Fatalf("weight lost: %v", und)
		}
	}
	if und[0].Src == und[1].Src {
		t.Fatalf("reverse edge missing: %v", und)
	}
}
