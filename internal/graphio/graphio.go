// Package graphio reads and writes graphs as edge lists.
//
// Two interchange formats are supported:
//
//   - Text: one "src dst" pair per line, '#' comments, as used by the SNAP
//     dataset collection.
//   - Binary: a little-endian stream of (src uint32, dst uint32) pairs with
//     an 16-byte header, for fast reload of generated graphs.
//
// The package also provides degree counting and normalization helpers used
// by the CSR and shard builders.
package graphio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Edge is a directed edge.
type Edge struct {
	Src, Dst uint32
}

// binaryMagic identifies the binary edge-list format.
const binaryMagic = 0x4d4c5643 // "MLVC"

// ErrBadFormat is returned when parsing malformed input.
var ErrBadFormat = errors.New("graphio: malformed input")

// ReadText parses a whitespace-separated edge list. Lines starting with
// '#' or '%' are comments; blank lines are skipped.
func ReadText(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadFormat, lineNo, line)
		}
		s, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		d, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		edges = append(edges, Edge{Src: uint32(s), Dst: uint32(d)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return edges, nil
}

// WriteText writes edges one per line.
func WriteText(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinary writes the binary edge-list format: magic, count, then pairs.
func WriteBinary(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 1) // version
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(rec[0:], e.Src)
		binary.LittleEndian.PutUint32(rec[4:], e.Dst)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary edge-list format.
func ReadBinary(r io.Reader) ([]Edge, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	edges := make([]Edge, 0, n)
	var rec [8]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadFormat, i, err)
		}
		edges = append(edges, Edge{
			Src: binary.LittleEndian.Uint32(rec[0:]),
			Dst: binary.LittleEndian.Uint32(rec[4:]),
		})
	}
	return edges, nil
}

// NumVertices returns 1 + the maximum vertex id referenced, or 0 for an
// empty edge list.
func NumVertices(edges []Edge) uint32 {
	var maxID uint32
	seen := false
	for _, e := range edges {
		seen = true
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	if !seen {
		return 0
	}
	return maxID + 1
}

// OutDegrees counts out-degrees for n vertices.
func OutDegrees(edges []Edge, n uint32) []uint32 {
	deg := make([]uint32, n)
	for _, e := range edges {
		deg[e.Src]++
	}
	return deg
}

// InDegrees counts in-degrees for n vertices.
func InDegrees(edges []Edge, n uint32) []uint32 {
	deg := make([]uint32, n)
	for _, e := range edges {
		deg[e.Dst]++
	}
	return deg
}

// MakeUndirected returns the symmetric closure of edges with self-loops and
// duplicates removed: for every {u,v}, both (u,v) and (v,u) appear exactly
// once. The paper's datasets are undirected graphs stored this way.
func MakeUndirected(edges []Edge) []Edge {
	out := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		out = append(out, e, Edge{Src: e.Dst, Dst: e.Src})
	}
	return Dedup(out)
}

// Dedup sorts edges by (src, dst) and removes duplicates in place.
func Dedup(edges []Edge) []Edge {
	if len(edges) == 0 {
		return edges
	}
	SortEdges(edges)
	w := 1
	for i := 1; i < len(edges); i++ {
		if edges[i] != edges[i-1] {
			edges[w] = edges[i]
			w++
		}
	}
	return edges[:w]
}

// SortEdges sorts by (src, dst).
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
}

// SortEdgesByDst sorts by (dst, src); shard builders need this order.
func SortEdgesByDst(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Dst != edges[j].Dst {
			return edges[i].Dst < edges[j].Dst
		}
		return edges[i].Src < edges[j].Src
	})
}

// WeightedEdge is a directed edge with a uint32 weight (the paper's CSR
// val vector entries; Fig 1a). Algorithms interpret the weight — SSSP
// reads it as a distance.
type WeightedEdge struct {
	Src, Dst, Weight uint32
}

// Strip returns the unweighted edges.
func Strip(wedges []WeightedEdge) []Edge {
	out := make([]Edge, len(wedges))
	for i, e := range wedges {
		out[i] = Edge{Src: e.Src, Dst: e.Dst}
	}
	return out
}

// AttachWeights pairs edges with weights produced by w(src, dst).
func AttachWeights(edges []Edge, w func(src, dst uint32) uint32) []WeightedEdge {
	out := make([]WeightedEdge, len(edges))
	for i, e := range edges {
		out[i] = WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: w(e.Src, e.Dst)}
	}
	return out
}

// SortWeighted sorts by (src, dst), keeping weights attached.
func SortWeighted(wedges []WeightedEdge) {
	sort.Slice(wedges, func(i, j int) bool {
		if wedges[i].Src != wedges[j].Src {
			return wedges[i].Src < wedges[j].Src
		}
		return wedges[i].Dst < wedges[j].Dst
	})
}

// SortWeightedByDst sorts by (dst, src), keeping weights attached.
func SortWeightedByDst(wedges []WeightedEdge) {
	sort.Slice(wedges, func(i, j int) bool {
		if wedges[i].Dst != wedges[j].Dst {
			return wedges[i].Dst < wedges[j].Dst
		}
		return wedges[i].Src < wedges[j].Src
	})
}

// DedupWeighted sorts by (src, dst) and removes duplicate edges (keeping
// the first weight).
func DedupWeighted(wedges []WeightedEdge) []WeightedEdge {
	if len(wedges) == 0 {
		return wedges
	}
	SortWeighted(wedges)
	w := 1
	for i := 1; i < len(wedges); i++ {
		if wedges[i].Src != wedges[i-1].Src || wedges[i].Dst != wedges[i-1].Dst {
			wedges[w] = wedges[i]
			w++
		}
	}
	return wedges[:w]
}

// MakeUndirectedWeighted returns the symmetric closure with self-loops
// and duplicates removed; both directions carry the same weight.
func MakeUndirectedWeighted(wedges []WeightedEdge) []WeightedEdge {
	out := make([]WeightedEdge, 0, 2*len(wedges))
	for _, e := range wedges {
		if e.Src == e.Dst {
			continue
		}
		out = append(out, e, WeightedEdge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return DedupWeighted(out)
}
