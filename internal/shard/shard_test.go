package shard

import (
	"testing"

	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
)

func testStore(t *testing.T, edges []graphio.Edge, budget int64) *Store {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: 256, Channels: 4})
	n := graphio.NumVertices(edges)
	ivs := csr.Partition(graphio.InDegrees(edges, n), csr.MsgBytes, budget)
	s, err := Build(dev, "g", edges, ivs, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func paperEdges() []graphio.Edge {
	return []graphio.Edge{
		{Src: 2, Dst: 0}, {Src: 5, Dst: 0},
		{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 5, Dst: 1},
		{Src: 5, Dst: 2}, {Src: 5, Dst: 3}, {Src: 5, Dst: 4},
	}
}

func TestBuildShardContents(t *testing.T) {
	s := testStore(t, paperEdges(), 3*csr.MsgBytes)
	total := 0
	for k := 0; k < s.NumShards(); k++ {
		recs, err := s.LoadShard(k)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
		iv := s.Intervals()[k]
		for i, r := range recs {
			if !iv.Contains(r.Dst) {
				t.Fatalf("shard %d holds edge to %d outside %v", k, r.Dst, iv)
			}
			if r.Val[0] != 7 || r.Val[1] != 7 || r.Flags != 0 {
				t.Fatalf("initial record state wrong: %+v", r)
			}
			if i > 0 && recs[i-1].Src > r.Src {
				t.Fatalf("shard %d not sorted by src", k)
			}
		}
	}
	if total != len(paperEdges()) {
		t.Fatalf("shards hold %d records, want %d", total, len(paperEdges()))
	}
}

func TestShardRoundTrip(t *testing.T) {
	s := testStore(t, paperEdges(), 3*csr.MsgBytes)
	recs, err := s.LoadShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Skip("shard 0 empty")
	}
	recs[0].Val[1] = 99
	recs[0].Flags = FlagMsg1
	if err := s.StoreShard(0, recs); err != nil {
		t.Fatal(err)
	}
	again, err := s.LoadShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Val[1] != 99 || again[0].Flags != FlagMsg1 {
		t.Fatalf("round trip lost mutation: %+v", again[0])
	}
}

func TestStoreShardCountMismatch(t *testing.T) {
	s := testStore(t, paperEdges(), 3*csr.MsgBytes)
	recs, _ := s.LoadShard(0)
	if err := s.StoreShard(0, append(recs, Record{})); err == nil {
		t.Fatal("count mismatch should fail")
	}
}

func TestWindows(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(8, 8, 5))
	s := testStore(t, edges, 2048)
	if s.NumShards() < 2 {
		t.Skip("need multiple shards")
	}
	// Every record of shard j must appear in exactly one window block.
	for j := 0; j < s.NumShards(); j++ {
		seen := 0
		for k := 0; k < s.NumShards(); k++ {
			w, err := s.LoadWindow(j, k)
			if err != nil {
				t.Fatal(err)
			}
			iv := s.Intervals()[k]
			for _, r := range w.Records() {
				if !iv.Contains(r.Src) {
					t.Fatalf("window (%d,%d) holds src %d outside %v", j, k, r.Src, iv)
				}
				seen++
			}
		}
		if seen != s.Count(j) {
			t.Fatalf("windows of shard %d cover %d records, want %d", j, seen, s.Count(j))
		}
	}
}

func TestWindowFindAndWriteBack(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(8, 8, 6))
	s := testStore(t, edges, 2048)
	if s.NumShards() < 2 {
		t.Skip("need multiple shards")
	}
	// Pick a window with records; mutate via Find; write back; re-read.
	for j := 0; j < s.NumShards(); j++ {
		for k := 0; k < s.NumShards(); k++ {
			if j == k {
				continue
			}
			w, err := s.LoadWindow(j, k)
			if err != nil {
				t.Fatal(err)
			}
			recs := w.Records()
			if len(recs) == 0 {
				continue
			}
			target := recs[len(recs)/2]
			found := w.Find(target.Src, target.Dst)
			if found == nil {
				t.Fatalf("Find(%d,%d) missed existing record", target.Src, target.Dst)
			}
			found.Val[0] = 1234
			found.Flags |= FlagMsg0
			if err := w.WriteBack(); err != nil {
				t.Fatal(err)
			}
			w2, err := s.LoadWindow(j, k)
			if err != nil {
				t.Fatal(err)
			}
			got := w2.Find(target.Src, target.Dst)
			if got == nil || got.Val[0] != 1234 || got.Flags&FlagMsg0 == 0 {
				t.Fatalf("write back lost mutation: %+v", got)
			}
			if w.Find(0xFFFFFFF0, 0) != nil {
				t.Fatal("Find invented a record")
			}
			return
		}
	}
	t.Skip("no non-empty cross window found")
}

func TestWindowWriteBackPreservesNeighbors(t *testing.T) {
	edges, _ := gen.RMAT(gen.DefaultRMAT(8, 8, 7))
	s := testStore(t, edges, 1024)
	if s.NumShards() < 3 {
		t.Skip("need several shards")
	}
	j := s.NumShards() - 1
	before, _ := s.LoadShard(j)
	// Write back an unmodified middle window; the shard must be unchanged.
	w, err := s.LoadWindow(j, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBack(); err != nil {
		t.Fatal(err)
	}
	after, _ := s.LoadShard(j)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("record %d changed by unrelated window write", i)
		}
	}
}

func TestTotalPages(t *testing.T) {
	s := testStore(t, paperEdges(), 3*csr.MsgBytes)
	if s.TotalPages() == 0 {
		t.Fatal("TotalPages = 0")
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 256, Channels: 2})
	ivs := []csr.Interval{{Lo: 0, Hi: 2}}
	if _, err := Build(dev, "g", []graphio.Edge{{Src: 9, Dst: 0}}, ivs, 0); err == nil {
		t.Fatal("out-of-range edge should fail")
	}
	if _, err := Build(dev, "h", nil, nil, 0); err == nil {
		t.Fatal("no intervals should fail")
	}
}
