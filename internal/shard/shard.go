// Package shard implements GraphChi's on-device graph layout (§II-A of
// the paper): the vertex range is split into intervals (shared with the
// CSR layout so comparisons are fair), and shard k stores every edge whose
// destination lies in interval k, sorted by source vertex. The
// source-sorted order is what makes the parallel-sliding-windows access
// pattern sequential: the out-edges of interval k's vertices form one
// contiguous block inside every other shard.
//
// Each edge record carries two value slots and two message flags so the
// GraphChi engine can run synchronously (BSP): writes in superstep s go to
// slot (s+1)%2 while reads in superstep s come from slot s%2, with
// copy-forward of unwritten slots at shard load. Synchronous execution is
// what lets the suite assert bit-identical results across engines.
package shard

import (
	"encoding/binary"
	"fmt"
	"sort"

	"multilogvc/internal/csr"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
)

// RecBytes is the on-device size of one edge record:
// src, dst, val0, val1, flags, weight (4 bytes each).
const RecBytes = 24

// Flag bits within a record's flags word.
const (
	FlagMsg0 = 1 << 0 // message pending in val0
	FlagMsg1 = 1 << 1 // message pending in val1
)

// Record is one decoded edge record.
type Record struct {
	Src, Dst uint32
	Val      [2]uint32
	Flags    uint32
	Weight   uint32 // static edge weight (0 on unweighted graphs)
}

// Store is a built shard set on a device.
type Store struct {
	dev   *ssd.Device
	name  string
	ivs   []csr.Interval
	n     uint32
	files []*ssd.File
	// counts[k] is the number of records in shard k.
	counts []int
	// blockIdx[k][j] is the index of the first record in shard k whose
	// source is >= ivs[j].Lo; blockIdx[k][len(ivs)] == counts[k]. The
	// sliding-window block of interval j inside shard k is
	// [blockIdx[k][j], blockIdx[k][j+1]).
	blockIdx [][]int
}

func shardName(name string, k int) string { return fmt.Sprintf("%s.shard.%d", name, k) }

// Build writes the shard files for edges using the given intervals. Every
// record's value slots start at initVal with no flags.
func Build(dev *ssd.Device, name string, edges []graphio.Edge, ivs []csr.Interval, initVal uint32) (*Store, error) {
	wedges := make([]graphio.WeightedEdge, len(edges))
	for i, e := range edges {
		wedges[i] = graphio.WeightedEdge{Src: e.Src, Dst: e.Dst}
	}
	return BuildWeighted(dev, name, wedges, ivs, initVal)
}

// BuildWeighted is Build with static per-edge weights.
func BuildWeighted(dev *ssd.Device, name string, edges []graphio.WeightedEdge, ivs []csr.Interval, initVal uint32) (*Store, error) {
	if len(ivs) == 0 {
		return nil, fmt.Errorf("shard: no intervals")
	}
	n := ivs[len(ivs)-1].Hi
	s := &Store{dev: dev, name: name, ivs: ivs, n: n}

	// Bucket edges by destination interval, then sort each bucket by
	// (src, dst).
	idx := csr.NewIntervalIndex(ivs, n)
	buckets := make([][]graphio.WeightedEdge, len(ivs))
	for _, e := range edges {
		if e.Src >= n || e.Dst >= n {
			return nil, fmt.Errorf("shard: edge %v outside vertex range %d", e, n)
		}
		k := idx.Of(e.Dst)
		buckets[k] = append(buckets[k], e)
	}
	for k, bucket := range buckets {
		sort.Slice(bucket, func(i, j int) bool {
			if bucket[i].Src != bucket[j].Src {
				return bucket[i].Src < bucket[j].Src
			}
			return bucket[i].Dst < bucket[j].Dst
		})
		f, err := dev.Create(shardName(name, k))
		if err != nil {
			return nil, err
		}
		w := ssd.NewWriter(f)
		var rec [RecBytes]byte
		for _, e := range bucket {
			binary.LittleEndian.PutUint32(rec[0:], e.Src)
			binary.LittleEndian.PutUint32(rec[4:], e.Dst)
			binary.LittleEndian.PutUint32(rec[8:], initVal)
			binary.LittleEndian.PutUint32(rec[12:], initVal)
			binary.LittleEndian.PutUint32(rec[16:], 0)
			binary.LittleEndian.PutUint32(rec[20:], e.Weight)
			if _, err := w.Write(rec[:]); err != nil {
				return nil, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		s.files = append(s.files, f)
		s.counts = append(s.counts, len(bucket))

		// Window index.
		bi := make([]int, len(ivs)+1)
		for j := range ivs {
			lo := ivs[j].Lo
			bi[j] = sort.Search(len(bucket), func(i int) bool { return bucket[i].Src >= lo })
		}
		bi[len(ivs)] = len(bucket)
		s.blockIdx = append(s.blockIdx, bi)
	}
	return s, nil
}

// NumShards returns the shard count (== interval count).
func (s *Store) NumShards() int { return len(s.files) }

// Count returns the number of records in shard k.
func (s *Store) Count(k int) int { return s.counts[k] }

// Intervals returns the shared vertex intervals.
func (s *Store) Intervals() []csr.Interval { return s.ivs }

// NumVertices returns the vertex count.
func (s *Store) NumVertices() uint32 { return s.n }

// TotalPages returns the number of device pages across all shards — the
// volume GraphChi reads every superstep.
func (s *Store) TotalPages() int {
	total := 0
	for _, f := range s.files {
		total += f.DataPages()
	}
	return total
}

// LoadShard reads shard k in full and decodes its records.
func (s *Store) LoadShard(k int) ([]Record, error) {
	f := s.files[k]
	np := f.DataPages()
	if np == 0 {
		return nil, nil
	}
	buf := make([]byte, np*s.dev.PageSize())
	if err := f.ReadPageRange(0, np, buf); err != nil {
		return nil, err
	}
	recs := make([]Record, s.counts[k])
	for i := range recs {
		off := i * RecBytes
		recs[i] = decode(buf[off:])
	}
	return recs, nil
}

// StoreShard writes shard k back in full.
func (s *Store) StoreShard(k int, recs []Record) error {
	if len(recs) != s.counts[k] {
		return fmt.Errorf("shard: record count changed: %d != %d", len(recs), s.counts[k])
	}
	ps := s.dev.PageSize()
	np := (len(recs)*RecBytes + ps - 1) / ps
	buf := make([]byte, np*ps)
	for i, r := range recs {
		encode(buf[i*RecBytes:], r)
	}
	if np == 0 {
		return nil
	}
	return s.files[k].WritePageRange(0, buf)
}

// Window is a loaded sliding-window block: the records of shard `shard`
// whose sources lie in one interval, together with the covering page
// images so it can be written back without touching neighboring blocks'
// bytes beyond the shared boundary pages.
type Window struct {
	store     *Store
	shard     int
	firstRec  int
	recs      []Record
	firstPage int
	pages     []byte
}

// LoadWindow reads the block of shard j holding the out-edges of interval
// k's vertices. The block may be empty.
func (s *Store) LoadWindow(j, k int) (*Window, error) {
	lo, hi := s.blockIdx[j][k], s.blockIdx[j][k+1]
	w := &Window{store: s, shard: j, firstRec: lo}
	if lo == hi {
		return w, nil
	}
	ps := s.dev.PageSize()
	bLo := lo * RecBytes
	bHi := hi * RecBytes
	pLo, pHi := bLo/ps, (bHi-1)/ps
	w.firstPage = pLo
	w.pages = make([]byte, (pHi-pLo+1)*ps)
	if err := s.files[j].ReadPageRange(pLo, pHi-pLo+1, w.pages); err != nil {
		return nil, err
	}
	w.recs = make([]Record, hi-lo)
	for i := range w.recs {
		off := (lo+i)*RecBytes - pLo*ps
		w.recs[i] = decode(w.pages[off:])
	}
	return w, nil
}

// Records returns the window's decoded records (mutable; call WriteBack to
// persist).
func (w *Window) Records() []Record { return w.recs }

// Find locates the record (src, dst) within the window via binary search
// on the source-sorted order; returns nil if absent.
func (w *Window) Find(src, dst uint32) *Record {
	i := sort.Search(len(w.recs), func(i int) bool {
		r := &w.recs[i]
		return r.Src > src || (r.Src == src && r.Dst >= dst)
	})
	if i < len(w.recs) && w.recs[i].Src == src && w.recs[i].Dst == dst {
		return &w.recs[i]
	}
	return nil
}

// WriteBack encodes the window's records into its page images and writes
// those pages to the device.
func (w *Window) WriteBack() error {
	if len(w.recs) == 0 {
		return nil
	}
	ps := w.store.dev.PageSize()
	for i, r := range w.recs {
		off := (w.firstRec+i)*RecBytes - w.firstPage*ps
		encode(w.pages[off:], r)
	}
	return w.store.files[w.shard].WritePageRange(w.firstPage, w.pages)
}

func decode(b []byte) Record {
	return Record{
		Src:    binary.LittleEndian.Uint32(b[0:]),
		Dst:    binary.LittleEndian.Uint32(b[4:]),
		Val:    [2]uint32{binary.LittleEndian.Uint32(b[8:]), binary.LittleEndian.Uint32(b[12:])},
		Flags:  binary.LittleEndian.Uint32(b[16:]),
		Weight: binary.LittleEndian.Uint32(b[20:]),
	}
}

func encode(b []byte, r Record) {
	binary.LittleEndian.PutUint32(b[0:], r.Src)
	binary.LittleEndian.PutUint32(b[4:], r.Dst)
	binary.LittleEndian.PutUint32(b[8:], r.Val[0])
	binary.LittleEndian.PutUint32(b[12:], r.Val[1])
	binary.LittleEndian.PutUint32(b[16:], r.Flags)
	binary.LittleEndian.PutUint32(b[20:], r.Weight)
}

// Remove deletes the shard files.
func (s *Store) Remove() error {
	for k := range s.files {
		if err := s.dev.Remove(shardName(s.name, k)); err != nil {
			return err
		}
	}
	return nil
}
