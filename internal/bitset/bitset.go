// Package bitset provides dense bit vectors used throughout MultiLogVC for
// active-vertex sets, activity history, and page-utilization bookkeeping.
//
// A Set is a fixed-length vector of bits indexed from 0. The zero value is
// an empty, zero-length set; use New to create a set of a given length.
// Sets are not safe for concurrent mutation; guard them externally or use
// one set per worker and merge with Or.
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-length dense bit vector.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set capable of holding n bits, all initially zero.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits the set holds.
func (s *Set) Len() int { return s.n }

// Set sets bit i to 1.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is 1.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetTo sets bit i to the given value.
func (s *Set) SetTo(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.Clear(i)
	}
}

// Reset zeroes every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AnyInRange reports whether any bit in [lo, hi) is set.
func (s *Set) AnyInRange(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	if loW == hiW {
		mask := (^uint64(0) << (uint(lo) % wordBits)) &
			(^uint64(0) >> (wordBits - 1 - uint(hi-1)%wordBits))
		return s.words[loW]&mask != 0
	}
	if s.words[loW]&(^uint64(0)<<(uint(lo)%wordBits)) != 0 {
		return true
	}
	for w := loW + 1; w < hiW; w++ {
		if s.words[w] != 0 {
			return true
		}
	}
	return s.words[hiW]&(^uint64(0)>>(wordBits-1-uint(hi-1)%wordBits)) != 0
}

// CountInRange returns the number of set bits in [lo, hi).
func (s *Set) CountInRange(lo, hi int) int {
	c := 0
	s.RangeInRange(lo, hi, func(int) bool { c++; return true })
	return c
}

// Range calls fn for each set bit in ascending order. If fn returns false,
// iteration stops.
func (s *Set) Range(fn func(i int) bool) {
	s.RangeInRange(0, s.n, fn)
}

// RangeInRange calls fn for each set bit in [lo, hi) in ascending order.
// If fn returns false, iteration stops.
func (s *Set) RangeInRange(lo, hi int, fn func(i int) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return
	}
	for wi := lo / wordBits; wi <= (hi-1)/wordBits; wi++ {
		w := s.words[wi]
		if w == 0 {
			continue
		}
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			i := base + b
			if i >= hi {
				return
			}
			if i >= lo {
				if !fn(i) {
					return
				}
			}
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// Or sets s to the bitwise OR of s and t. Panics if lengths differ.
func (s *Set) Or(t *Set) {
	s.checkLen(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// And sets s to the bitwise AND of s and t. Panics if lengths differ.
func (s *Set) And(t *Set) {
	s.checkLen(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// AndNot clears in s every bit that is set in t. Panics if lengths differ.
func (s *Set) AndNot(t *Set) {
	s.checkLen(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// CopyFrom overwrites s with the contents of t. Panics if lengths differ.
func (s *Set) CopyFrom(t *Set) {
	s.checkLen(t)
	copy(s.words, t.words)
}

// Words returns a copy of the set's backing 64-bit words, for
// serialization (checkpointing). Bits past Len are zero.
func (s *Set) Words() []uint64 {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return w
}

// SetWords overwrites the set's contents from words previously returned by
// Words on a set of the same length. Panics on a word-count mismatch.
func (s *Set) SetWords(words []uint64) {
	if len(words) != len(s.words) {
		panic(fmt.Sprintf("bitset: word count mismatch %d != %d", len(words), len(s.words)))
	}
	copy(s.words, words)
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

func (s *Set) checkLen(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: length mismatch %d != %d", s.n, t.n))
	}
}
