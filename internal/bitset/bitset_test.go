package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetClearTest(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		if got := s.Test(i); got != want {
			t.Fatalf("Test(%d) = %v, want %v", i, got, want)
		}
	}
	for i := 0; i < 200; i += 6 {
		s.Clear(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0 && i%6 != 0
		if got := s.Test(i); got != want {
			t.Fatalf("after clear: Test(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestSetTo(t *testing.T) {
	s := New(10)
	s.SetTo(4, true)
	if !s.Test(4) {
		t.Fatal("SetTo true did not set")
	}
	s.SetTo(4, false)
	if s.Test(4) {
		t.Fatal("SetTo false did not clear")
	}
}

func TestCount(t *testing.T) {
	s := New(1000)
	if s.Count() != 0 {
		t.Fatalf("empty Count = %d", s.Count())
	}
	for i := 0; i < 1000; i += 7 {
		s.Set(i)
	}
	want := 0
	for i := 0; i < 1000; i += 7 {
		want++
	}
	if got := s.Count(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	s.Reset()
	if s.Count() != 0 || s.Any() {
		t.Fatal("Reset did not clear all bits")
	}
}

func TestAny(t *testing.T) {
	s := New(130)
	if s.Any() {
		t.Fatal("empty set reports Any")
	}
	s.Set(129)
	if !s.Any() {
		t.Fatal("Any missed last bit")
	}
}

func TestAnyInRange(t *testing.T) {
	s := New(300)
	s.Set(150)
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{0, 300, true},
		{0, 150, false},
		{150, 151, true},
		{151, 300, false},
		{140, 160, true},
		{150, 150, false}, // empty range
		{128, 192, true},  // spans word boundary
		{0, 64, false},
	}
	for _, c := range cases {
		if got := s.AnyInRange(c.lo, c.hi); got != c.want {
			t.Errorf("AnyInRange(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestAnyInRangeSameWord(t *testing.T) {
	s := New(64)
	s.Set(5)
	if s.AnyInRange(0, 5) {
		t.Fatal("AnyInRange(0,5) should be false")
	}
	if !s.AnyInRange(5, 6) {
		t.Fatal("AnyInRange(5,6) should be true")
	}
	if !s.AnyInRange(0, 64) {
		t.Fatal("AnyInRange(0,64) should be true")
	}
}

func TestRange(t *testing.T) {
	s := New(500)
	want := []int{0, 63, 64, 65, 127, 128, 300, 499}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.Range(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i++ {
		s.Set(i)
	}
	n := 0
	s.Range(func(i int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d bits, want 5", n)
	}
}

func TestRangeInRange(t *testing.T) {
	s := New(256)
	for i := 0; i < 256; i += 2 {
		s.Set(i)
	}
	var got []int
	s.RangeInRange(63, 70, func(i int) bool {
		got = append(got, i)
		return true
	})
	want := []int{64, 66, 68}
	if len(got) != len(want) {
		t.Fatalf("RangeInRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RangeInRange = %v, want %v", got, want)
		}
	}
}

func TestCountInRange(t *testing.T) {
	s := New(256)
	for i := 10; i < 250; i += 10 {
		s.Set(i)
	}
	if got := s.CountInRange(0, 256); got != s.Count() {
		t.Fatalf("CountInRange full = %d, want %d", got, s.Count())
	}
	if got := s.CountInRange(10, 31); got != 3 { // 10, 20, 30
		t.Fatalf("CountInRange(10,31) = %d, want 3", got)
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	s.Set(5)
	s.Set(64)
	s.Set(299)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 299}, {299, 299},
		{-3, 5},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	s.Clear(299)
	if got := s.NextSet(65); got != -1 {
		t.Errorf("NextSet past last = %d, want -1", got)
	}
	if got := s.NextSet(300); got != -1 {
		t.Errorf("NextSet(Len) = %d, want -1", got)
	}
}

func TestBooleanOps(t *testing.T) {
	a, b := New(130), New(130)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(129)

	or := a.Clone()
	or.Or(b)
	for _, i := range []int{1, 100, 129} {
		if !or.Test(i) {
			t.Fatalf("Or missing bit %d", i)
		}
	}
	if or.Count() != 3 {
		t.Fatalf("Or Count = %d, want 3", or.Count())
	}

	and := a.Clone()
	and.And(b)
	if and.Count() != 1 || !and.Test(100) {
		t.Fatalf("And produced wrong set, count=%d", and.Count())
	}

	andnot := a.Clone()
	andnot.AndNot(b)
	if andnot.Count() != 1 || !andnot.Test(1) {
		t.Fatalf("AndNot produced wrong set, count=%d", andnot.Count())
	}
}

func TestCopyFromClone(t *testing.T) {
	a := New(70)
	a.Set(69)
	b := New(70)
	b.CopyFrom(a)
	if !b.Test(69) {
		t.Fatal("CopyFrom missed bit")
	}
	c := a.Clone()
	a.Clear(69)
	if !c.Test(69) {
		t.Fatal("Clone is not independent")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths did not panic")
		}
	}()
	New(10).Or(New(11))
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesSetIndices(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(n)
		ref := make(map[int]bool)
		for k := 0; k < 300; k++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Set(i)
				ref[i] = true
			} else {
				s.Clear(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := range ref {
			if !s.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Range visits exactly the set bits in ascending order.
func TestQuickRangeOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(1000) + 1
		s := New(n)
		for k := 0; k < 100; k++ {
			s.Set(rng.Intn(n))
		}
		prev := -1
		ok := true
		s.Range(func(i int) bool {
			if i <= prev || !s.Test(i) {
				ok = false
				return false
			}
			prev = i
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AnyInRange agrees with a brute-force scan.
func TestQuickAnyInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 2
		s := New(n)
		for k := 0; k < 10; k++ {
			s.Set(rng.Intn(n))
		}
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		brute := false
		for i := lo; i < hi; i++ {
			if s.Test(i) {
				brute = true
				break
			}
		}
		return s.AnyInRange(lo, hi) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	s := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<20 - 1))
	}
}

func BenchmarkCount(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Count()
	}
}

func BenchmarkRangeSparse(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 1024 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Range(func(int) bool { n++; return true })
	}
}
