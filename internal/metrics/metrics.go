// Package metrics defines the per-run and per-superstep measurements all
// engines report, and formatting helpers for the experiment harness.
//
// Times are split the way the paper's Fig 5c splits them: StorageTime is
// the simulated device time (virtual clock, see internal/ssd) and
// ComputeTime is measured host time outside device calls. TotalTime — the
// quantity behind every speedup figure — is their sum.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"multilogvc/internal/obsv"
)

// SuperstepStats measures one superstep of one engine run.
type SuperstepStats struct {
	Superstep int `json:"superstep"`

	Active        uint64 `json:"active"` // vertices processed
	MsgsSent      uint64 `json:"msgs_sent"`
	MsgsDelivered uint64 `json:"msgs_delivered"`

	PagesRead    uint64        `json:"pages_read"`
	PagesWritten uint64        `json:"pages_written"`
	StorageTime  time.Duration `json:"storage_ns"`
	ComputeTime  time.Duration `json:"compute_ns"`

	// MultiLogVC-specific accounting (zero for other engines).
	ColIdxPagesRead   uint64 `json:"colidx_pages_read,omitempty"`  // graph adjacency pages fetched from CSR
	EdgeLogPagesRead  uint64 `json:"edgelog_pages_read,omitempty"` // adjacency served from the edge log instead
	EdgeLogPagesWrite uint64 `json:"edgelog_pages_write,omitempty"`
	InefficientPages  uint64 `json:"inefficient_pages,omitempty"`  // colidx pages with >0% and <10% utilization
	PredictedIneff    uint64 `json:"predicted_ineff,omitempty"`    // pages the edge-log optimizer predicted inefficient
	CorrectPredicted  uint64 `json:"correct_predicted,omitempty"`  // predictions that were inefficient again
	UtilPagesTouched  uint64 `json:"util_pages_touched,omitempty"` // distinct colidx pages whose utilization was measured

	// Page-cache accounting for the superstep: per-step deltas of the
	// buffer pool's counters (see internal/pagecache). All zero when the
	// run is uncached, which keeps omitempty exports byte-identical to
	// pre-cache baselines.
	CacheHits       uint64 `json:"cache_hits,omitempty"`
	CacheMisses     uint64 `json:"cache_misses,omitempty"`
	CacheEvictions  uint64 `json:"cache_evictions,omitempty"`
	PrefetchInserts uint64 `json:"prefetch_inserts,omitempty"` // pages warmed by the prefetcher
	PrefetchHits    uint64 `json:"prefetch_hits,omitempty"`    // warmed pages that saw a demand hit
	PrefetchDropped uint64 `json:"prefetch_dropped,omitempty"` // warm attempts refused by backpressure

	// Fault-tolerance accounting: transient device faults absorbed by the
	// retry layer this superstep, the retries spent doing so, and the
	// backoff charged to the virtual clock (see ssd.RetryPolicy). All zero
	// on fault-free runs, keeping exports byte-identical to old baselines.
	TransientFaults  uint64        `json:"transient_faults,omitempty"`
	Retries          uint64        `json:"retries,omitempty"`
	RetryBackoff     time.Duration `json:"retry_backoff_ns,omitempty"`
	RetriesExhausted uint64        `json:"retries_exhausted,omitempty"`

	// Integrity accounting: pages whose checksum failed verification this
	// superstep and edge-log heal events (a corrupt redundant page whose
	// generation was invalidated and rebuilt from CSR).
	CorruptPages uint64 `json:"corrupt_pages,omitempty"`
	ElogHealed   uint64 `json:"elog_healed,omitempty"`

	// Checkpoint accounting: checkpoints committed at this superstep's
	// boundary (0 or 1), the device pages they wrote, and the storage time
	// those writes cost.
	Checkpoints     uint64        `json:"checkpoints,omitempty"`
	CheckpointPages uint64        `json:"checkpoint_pages,omitempty"`
	CheckpointTime  time.Duration `json:"checkpoint_ns,omitempty"`

	// Resource-governance accounting: interval logs that overflowed the
	// sort budget into the external sort-group this superstep, the record
	// bytes they spilled through the device, and disk-quota events (no-space
	// faults hit, reclamation sweeps run, bytes those sweeps freed). All
	// zero on ungoverned runs.
	Spills         uint64 `json:"spills,omitempty"`
	SpillBytes     uint64 `json:"spill_bytes,omitempty"`
	NoSpaceFaults  uint64 `json:"no_space_faults,omitempty"`
	Reclaims       uint64 `json:"reclaims,omitempty"`
	ReclaimedBytes uint64 `json:"reclaimed_bytes,omitempty"`

	// MsgSkew is the per-interval message imbalance of the superstep:
	// max interval log volume over the mean across all intervals (1.0 =
	// perfectly balanced; 0 when no messages flowed). Engines that do not
	// partition by interval leave it 0.
	MsgSkew float64 `json:"msg_skew,omitempty"`

	// Stages attributes the superstep's device traffic to the pipeline
	// stage that issued it (see obsv.Stage). Rows are in canonical stage
	// order, all-zero stages omitted; their page counts sum exactly to
	// PagesRead/PagesWritten and their times to StorageTime. Empty for
	// runs predating stage tagging.
	Stages []StageIO `json:"stages,omitempty"`
	// IOSkew is the per-interval device-IO imbalance of the superstep:
	// the busiest interval's pages moved over the mean across intervals
	// that moved pages (1.0 = balanced; 0 when no interval-tagged IO
	// happened). This is the straggler signal parallel supersteps must
	// level out, complementing the message-volume view of MsgSkew.
	IOSkew float64 `json:"io_skew,omitempty"`
	// IntervalPages is the distribution of pages moved per interval.
	IntervalPages obsv.Hist `json:"interval_pages"`

	// Device-level distributions for the superstep (deltas of the
	// device's power-of-two histograms; see ssd.Stats).
	ReadBatchPages  obsv.Hist `json:"read_batch_pages"`
	WriteBatchPages obsv.Hist `json:"write_batch_pages"`
	ReadLatencyUS   obsv.Hist `json:"read_latency_us"`
	WriteLatencyUS  obsv.Hist `json:"write_latency_us"`
}

// Total returns storage + compute time for the superstep.
func (s SuperstepStats) Total() time.Duration { return s.StorageTime + s.ComputeTime }

// CacheHitRate returns the superstep's cache hit rate, or 0 when the run
// was uncached (no accesses recorded).
func (s SuperstepStats) CacheHitRate() float64 {
	if t := s.CacheHits + s.CacheMisses; t > 0 {
		return float64(s.CacheHits) / float64(t)
	}
	return 0
}

// PrefetchAccuracy returns the share of pages warmed this superstep that
// saw a demand hit, or 0 when nothing was prefetched.
func (s SuperstepStats) PrefetchAccuracy() float64 {
	if s.PrefetchInserts > 0 {
		return float64(s.PrefetchHits) / float64(s.PrefetchInserts)
	}
	return 0
}

// Report is the outcome of one engine run.
type Report struct {
	Engine string
	App    string
	Graph  string

	Supersteps []SuperstepStats
	Converged  bool

	PagesRead    uint64
	PagesWritten uint64
	StorageTime  time.Duration
	ComputeTime  time.Duration
	WallTime     time.Duration // measured end-to-end host time

	// Page-cache totals over the run (all zero for uncached runs).
	CacheHits       uint64
	CacheMisses     uint64
	CacheEvictions  uint64
	PrefetchInserts uint64
	PrefetchHits    uint64
	PrefetchDropped uint64

	// Fault-tolerance totals over the run (all zero on fault-free runs
	// with checkpointing off).
	TransientFaults  uint64
	Retries          uint64
	RetryBackoff     time.Duration
	RetriesExhausted uint64
	Checkpoints      uint64
	CheckpointPages  uint64
	CheckpointTime   time.Duration

	// Integrity totals over the run.
	CorruptPages uint64
	ElogHealed   uint64

	// Resource-governance totals over the run.
	Spills         uint64
	SpillBytes     uint64
	NoSpaceFaults  uint64
	Reclaims       uint64
	ReclaimedBytes uint64

	// Stages is the run-wide per-stage IO breakdown, accumulated from the
	// supersteps by Finish (canonical stage order; empty for runs without
	// stage tagging).
	Stages []StageIO

	// Resumed records that the run restarted from a checkpoint instead of
	// superstep 0; ResumeStep is the first superstep executed after
	// restore. Supersteps before it come from the checkpoint.
	Resumed    bool
	ResumeStep int
	// Rollbacks counts how many times corrupt vital data sent this run
	// back to its newest checkpoint before it completed. Like Resumed it
	// is run-level state, not accumulated from supersteps.
	Rollbacks int
}

// TotalTime is the modeled run time: storage (virtual) + compute (host).
func (r *Report) TotalTime() time.Duration { return r.StorageTime + r.ComputeTime }

// Finish accumulates per-superstep stats into the run totals. Supersteps
// are normalized to ascending order first, so totals and per-step exports
// stay meaningful even if an engine appended them out of order.
func (r *Report) Finish() {
	if !sort.SliceIsSorted(r.Supersteps, func(i, j int) bool {
		return r.Supersteps[i].Superstep < r.Supersteps[j].Superstep
	}) {
		sort.SliceStable(r.Supersteps, func(i, j int) bool {
			return r.Supersteps[i].Superstep < r.Supersteps[j].Superstep
		})
	}
	r.PagesRead, r.PagesWritten = 0, 0
	r.StorageTime, r.ComputeTime = 0, 0
	r.CacheHits, r.CacheMisses, r.CacheEvictions = 0, 0, 0
	r.PrefetchInserts, r.PrefetchHits, r.PrefetchDropped = 0, 0, 0
	r.TransientFaults, r.Retries, r.RetryBackoff = 0, 0, 0
	r.RetriesExhausted, r.CorruptPages, r.ElogHealed = 0, 0, 0
	r.Checkpoints, r.CheckpointPages, r.CheckpointTime = 0, 0, 0
	r.Spills, r.SpillBytes = 0, 0
	r.NoSpaceFaults, r.Reclaims, r.ReclaimedBytes = 0, 0, 0
	r.Stages = nil
	for _, s := range r.Supersteps {
		r.PagesRead += s.PagesRead
		r.PagesWritten += s.PagesWritten
		r.StorageTime += s.StorageTime
		r.ComputeTime += s.ComputeTime
		r.CacheHits += s.CacheHits
		r.CacheMisses += s.CacheMisses
		r.CacheEvictions += s.CacheEvictions
		r.PrefetchInserts += s.PrefetchInserts
		r.PrefetchHits += s.PrefetchHits
		r.PrefetchDropped += s.PrefetchDropped
		r.TransientFaults += s.TransientFaults
		r.Retries += s.Retries
		r.RetryBackoff += s.RetryBackoff
		r.RetriesExhausted += s.RetriesExhausted
		r.CorruptPages += s.CorruptPages
		r.ElogHealed += s.ElogHealed
		r.Checkpoints += s.Checkpoints
		r.CheckpointPages += s.CheckpointPages
		r.CheckpointTime += s.CheckpointTime
		r.Spills += s.Spills
		r.SpillBytes += s.SpillBytes
		r.NoSpaceFaults += s.NoSpaceFaults
		r.Reclaims += s.Reclaims
		r.ReclaimedBytes += s.ReclaimedBytes
		r.Stages = MergeStages(r.Stages, s.Stages)
	}
}

// CacheHitRate returns the run-wide cache hit rate (0 for uncached runs).
func (r *Report) CacheHitRate() float64 {
	if t := r.CacheHits + r.CacheMisses; t > 0 {
		return float64(r.CacheHits) / float64(t)
	}
	return 0
}

// PrefetchAccuracy returns the run-wide share of warmed pages that saw a
// demand hit (0 when nothing was prefetched).
func (r *Report) PrefetchAccuracy() float64 {
	if r.PrefetchInserts > 0 {
		return float64(r.PrefetchHits) / float64(r.PrefetchInserts)
	}
	return 0
}

// TotalPages returns pages read + written.
func (r *Report) TotalPages() uint64 { return r.PagesRead + r.PagesWritten }

// StorageFraction returns the share of total time spent on storage
// (the paper's Fig 5c series).
func (r *Report) StorageFraction() float64 {
	t := r.TotalTime()
	if t == 0 {
		return 0
	}
	return float64(r.StorageTime) / float64(t)
}

// Speedup returns base's total time divided by r's total time: how much
// faster r is than base.
func Speedup(base, r *Report) float64 {
	if r.TotalTime() == 0 {
		return 0
	}
	return float64(base.TotalTime()) / float64(r.TotalTime())
}

// PageRatio returns base's total page count divided by r's (Fig 5b).
func PageRatio(base, r *Report) float64 {
	if r.TotalPages() == 0 {
		return 0
	}
	return float64(base.TotalPages()) / float64(r.TotalPages())
}

// String summarizes the report in one line (two when a cache was active).
func (r *Report) String() string {
	s := fmt.Sprintf("%s/%s on %s: %d supersteps, total=%v (storage=%v compute=%v), wall=%v, pages r/w=%d/%d, converged=%v",
		r.Engine, r.App, r.Graph, len(r.Supersteps), r.TotalTime().Round(time.Microsecond),
		r.StorageTime.Round(time.Microsecond), r.ComputeTime.Round(time.Microsecond),
		r.WallTime.Round(time.Microsecond),
		r.PagesRead, r.PagesWritten, r.Converged)
	if r.CacheHits+r.CacheMisses > 0 {
		s += fmt.Sprintf("\n  cache: %.1f%% hit (%d hits, %d misses, %d evictions), prefetch: %d warmed, %.1f%% useful, %d dropped",
			100*r.CacheHitRate(), r.CacheHits, r.CacheMisses, r.CacheEvictions,
			r.PrefetchInserts, 100*r.PrefetchAccuracy(), r.PrefetchDropped)
	}
	if r.TransientFaults > 0 || r.Checkpoints > 0 || r.Resumed ||
		r.CorruptPages > 0 || r.ElogHealed > 0 || r.Rollbacks > 0 {
		s += fmt.Sprintf("\n  fault-tolerance: %d transient faults retried (%d retries, backoff=%v), %d checkpoints (%d pages, %v)",
			r.TransientFaults, r.Retries, r.RetryBackoff.Round(time.Microsecond),
			r.Checkpoints, r.CheckpointPages, r.CheckpointTime.Round(time.Microsecond))
		if r.Resumed {
			s += fmt.Sprintf(", resumed at superstep %d", r.ResumeStep)
		}
		if r.CorruptPages > 0 || r.ElogHealed > 0 || r.Rollbacks > 0 {
			s += fmt.Sprintf("\n  integrity: %d corrupt pages detected, %d edge-log heals, %d rollbacks",
				r.CorruptPages, r.ElogHealed, r.Rollbacks)
		}
	}
	if r.Spills > 0 || r.NoSpaceFaults > 0 || r.Reclaims > 0 {
		s += fmt.Sprintf("\n  governance: %d sort-budget spills (%d bytes), %d no-space faults, %d reclaims (%d bytes freed)",
			r.Spills, r.SpillBytes, r.NoSpaceFaults, r.Reclaims, r.ReclaimedBytes)
	}
	return s
}

// reportJSON is the machine-readable report schema: the raw fields plus
// the derived quantities every figure of the paper is built from, so
// downstream tooling never recomputes them from text tables.
type reportJSON struct {
	Engine string `json:"engine"`
	App    string `json:"app"`
	Graph  string `json:"graph"`

	Converged    bool          `json:"converged"`
	NumSteps     int           `json:"num_supersteps"`
	PagesRead    uint64        `json:"pages_read"`
	PagesWritten uint64        `json:"pages_written"`
	TotalPages   uint64        `json:"total_pages"`
	StorageTime  time.Duration `json:"storage_ns"`
	ComputeTime  time.Duration `json:"compute_ns"`
	TotalTime    time.Duration `json:"total_ns"`
	WallTime     time.Duration `json:"wall_ns"`
	Total        string        `json:"total"`
	Wall         string        `json:"wall"`
	StorageFrac  float64       `json:"storage_fraction"`

	CacheHits       uint64  `json:"cache_hits,omitempty"`
	CacheMisses     uint64  `json:"cache_misses,omitempty"`
	CacheEvictions  uint64  `json:"cache_evictions,omitempty"`
	CacheHitRate    float64 `json:"cache_hit_rate,omitempty"`
	PrefetchInserts uint64  `json:"prefetch_inserts,omitempty"`
	PrefetchHits    uint64  `json:"prefetch_hits,omitempty"`
	PrefetchDropped uint64  `json:"prefetch_dropped,omitempty"`
	PrefetchAcc     float64 `json:"prefetch_accuracy,omitempty"`

	TransientFaults  uint64        `json:"transient_faults,omitempty"`
	Retries          uint64        `json:"retries,omitempty"`
	RetryBackoff     time.Duration `json:"retry_backoff_ns,omitempty"`
	RetriesExhausted uint64        `json:"retries_exhausted,omitempty"`
	Checkpoints      uint64        `json:"checkpoints,omitempty"`
	CheckpointPages  uint64        `json:"checkpoint_pages,omitempty"`
	CheckpointTime   time.Duration `json:"checkpoint_ns,omitempty"`
	CorruptPages     uint64        `json:"corrupt_pages,omitempty"`
	ElogHealed       uint64        `json:"elog_healed,omitempty"`
	Resumed          bool          `json:"resumed,omitempty"`
	ResumeStep       int           `json:"resume_step,omitempty"`
	Rollbacks        int           `json:"rollbacks,omitempty"`

	Spills         uint64 `json:"spills,omitempty"`
	SpillBytes     uint64 `json:"spill_bytes,omitempty"`
	NoSpaceFaults  uint64 `json:"no_space_faults,omitempty"`
	Reclaims       uint64 `json:"reclaims,omitempty"`
	ReclaimedBytes uint64 `json:"reclaimed_bytes,omitempty"`

	Stages []StageIO `json:"stages,omitempty"`

	Supersteps []SuperstepStats `json:"supersteps"`
}

// MarshalJSON exports the report with derived totals included; durations
// marshal as integer nanoseconds (the *_ns fields) with human-readable
// companions for the headline times.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportJSON{
		Engine:       r.Engine,
		App:          r.App,
		Graph:        r.Graph,
		Converged:    r.Converged,
		NumSteps:     len(r.Supersteps),
		PagesRead:    r.PagesRead,
		PagesWritten: r.PagesWritten,
		TotalPages:   r.TotalPages(),
		StorageTime:  r.StorageTime,
		ComputeTime:  r.ComputeTime,
		TotalTime:    r.TotalTime(),
		WallTime:     r.WallTime,
		Total:        r.TotalTime().Round(time.Microsecond).String(),
		Wall:         r.WallTime.Round(time.Microsecond).String(),
		StorageFrac:  r.StorageFraction(),

		CacheHits:       r.CacheHits,
		CacheMisses:     r.CacheMisses,
		CacheEvictions:  r.CacheEvictions,
		CacheHitRate:    r.CacheHitRate(),
		PrefetchInserts: r.PrefetchInserts,
		PrefetchHits:    r.PrefetchHits,
		PrefetchDropped: r.PrefetchDropped,
		PrefetchAcc:     r.PrefetchAccuracy(),

		TransientFaults:  r.TransientFaults,
		Retries:          r.Retries,
		RetryBackoff:     r.RetryBackoff,
		RetriesExhausted: r.RetriesExhausted,
		Checkpoints:      r.Checkpoints,
		CheckpointPages:  r.CheckpointPages,
		CheckpointTime:   r.CheckpointTime,
		CorruptPages:     r.CorruptPages,
		ElogHealed:       r.ElogHealed,
		Resumed:          r.Resumed,
		ResumeStep:       r.ResumeStep,
		Rollbacks:        r.Rollbacks,

		Spills:         r.Spills,
		SpillBytes:     r.SpillBytes,
		NoSpaceFaults:  r.NoSpaceFaults,
		Reclaims:       r.Reclaims,
		ReclaimedBytes: r.ReclaimedBytes,

		Stages: r.Stages,

		Supersteps: r.Supersteps,
	})
}

// UnmarshalJSON restores a report from its JSON export; derived fields
// are ignored (recomputed on demand).
func (r *Report) UnmarshalJSON(data []byte) error {
	var in reportJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*r = Report{
		Engine:       in.Engine,
		App:          in.App,
		Graph:        in.Graph,
		Converged:    in.Converged,
		PagesRead:    in.PagesRead,
		PagesWritten: in.PagesWritten,
		StorageTime:  in.StorageTime,
		ComputeTime:  in.ComputeTime,
		WallTime:     in.WallTime,

		CacheHits:       in.CacheHits,
		CacheMisses:     in.CacheMisses,
		CacheEvictions:  in.CacheEvictions,
		PrefetchInserts: in.PrefetchInserts,
		PrefetchHits:    in.PrefetchHits,
		PrefetchDropped: in.PrefetchDropped,

		TransientFaults:  in.TransientFaults,
		Retries:          in.Retries,
		RetryBackoff:     in.RetryBackoff,
		RetriesExhausted: in.RetriesExhausted,
		Checkpoints:      in.Checkpoints,
		CheckpointPages:  in.CheckpointPages,
		CheckpointTime:   in.CheckpointTime,
		CorruptPages:     in.CorruptPages,
		ElogHealed:       in.ElogHealed,
		Resumed:          in.Resumed,
		ResumeStep:       in.ResumeStep,
		Rollbacks:        in.Rollbacks,

		Spills:         in.Spills,
		SpillBytes:     in.SpillBytes,
		NoSpaceFaults:  in.NoSpaceFaults,
		Reclaims:       in.Reclaims,
		ReclaimedBytes: in.ReclaimedBytes,

		Stages: in.Stages,

		Supersteps: in.Supersteps,
	}
	return nil
}

// JSON renders the report as indented JSON, for -json exports.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders rows as an aligned text table for harness output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table. Rows may be ragged: cells beyond the header
// count get their own columns (previously this panicked in writeRow).
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 2 decimals (table helper).
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// D formats a duration rounded to microseconds (table helper).
func D(d time.Duration) string { return d.Round(time.Microsecond).String() }

// CSV renders the table as comma-separated values (header + rows), for
// feeding the regenerated figure series into plotting tools. Cells
// containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRec(t.Headers)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return b.String()
}
