// Package metrics defines the per-run and per-superstep measurements all
// engines report, and formatting helpers for the experiment harness.
//
// Times are split the way the paper's Fig 5c splits them: StorageTime is
// the simulated device time (virtual clock, see internal/ssd) and
// ComputeTime is measured host time outside device calls. TotalTime — the
// quantity behind every speedup figure — is their sum.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// SuperstepStats measures one superstep of one engine run.
type SuperstepStats struct {
	Superstep int

	Active        uint64 // vertices processed
	MsgsSent      uint64
	MsgsDelivered uint64

	PagesRead    uint64
	PagesWritten uint64
	StorageTime  time.Duration
	ComputeTime  time.Duration

	// MultiLogVC-specific accounting (zero for other engines).
	ColIdxPagesRead   uint64 // graph adjacency pages fetched from CSR
	EdgeLogPagesRead  uint64 // adjacency served from the edge log instead
	EdgeLogPagesWrite uint64
	InefficientPages  uint64 // colidx pages with >0% and <10% utilization
	PredictedIneff    uint64 // pages the edge-log optimizer predicted inefficient
	CorrectPredicted  uint64 // predictions that were inefficient again
	UtilPagesTouched  uint64 // distinct colidx pages whose utilization was measured
}

// Total returns storage + compute time for the superstep.
func (s SuperstepStats) Total() time.Duration { return s.StorageTime + s.ComputeTime }

// Report is the outcome of one engine run.
type Report struct {
	Engine string
	App    string
	Graph  string

	Supersteps []SuperstepStats
	Converged  bool

	PagesRead    uint64
	PagesWritten uint64
	StorageTime  time.Duration
	ComputeTime  time.Duration
	WallTime     time.Duration // measured end-to-end host time
}

// TotalTime is the modeled run time: storage (virtual) + compute (host).
func (r *Report) TotalTime() time.Duration { return r.StorageTime + r.ComputeTime }

// Finish accumulates per-superstep stats into the run totals.
func (r *Report) Finish() {
	r.PagesRead, r.PagesWritten = 0, 0
	r.StorageTime, r.ComputeTime = 0, 0
	for _, s := range r.Supersteps {
		r.PagesRead += s.PagesRead
		r.PagesWritten += s.PagesWritten
		r.StorageTime += s.StorageTime
		r.ComputeTime += s.ComputeTime
	}
}

// TotalPages returns pages read + written.
func (r *Report) TotalPages() uint64 { return r.PagesRead + r.PagesWritten }

// StorageFraction returns the share of total time spent on storage
// (the paper's Fig 5c series).
func (r *Report) StorageFraction() float64 {
	t := r.TotalTime()
	if t == 0 {
		return 0
	}
	return float64(r.StorageTime) / float64(t)
}

// Speedup returns base's total time divided by r's total time: how much
// faster r is than base.
func Speedup(base, r *Report) float64 {
	if r.TotalTime() == 0 {
		return 0
	}
	return float64(base.TotalTime()) / float64(r.TotalTime())
}

// PageRatio returns base's total page count divided by r's (Fig 5b).
func PageRatio(base, r *Report) float64 {
	if r.TotalPages() == 0 {
		return 0
	}
	return float64(base.TotalPages()) / float64(r.TotalPages())
}

// String summarizes the report in one line.
func (r *Report) String() string {
	return fmt.Sprintf("%s/%s on %s: %d supersteps, total=%v (storage=%v compute=%v), pages r/w=%d/%d, converged=%v",
		r.Engine, r.App, r.Graph, len(r.Supersteps), r.TotalTime().Round(time.Microsecond),
		r.StorageTime.Round(time.Microsecond), r.ComputeTime.Round(time.Microsecond),
		r.PagesRead, r.PagesWritten, r.Converged)
}

// Table renders rows as an aligned text table for harness output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 2 decimals (table helper).
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// D formats a duration rounded to microseconds (table helper).
func D(d time.Duration) string { return d.Round(time.Microsecond).String() }

// CSV renders the table as comma-separated values (header + rows), for
// feeding the regenerated figure series into plotting tools. Cells
// containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRec(t.Headers)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return b.String()
}
