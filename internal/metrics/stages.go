package metrics

import (
	"sort"
	"time"

	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
)

// StageIO is one pipeline stage's share of the device traffic in a
// superstep or run: the pages it moved, the virtual time they cost
// (service latency plus any retry backoff charged while the stage ran),
// and how the page cache treated its reads (zero on uncached runs). The
// Stage field is the stable lowercase name from obsv.Stage.String.
type StageIO struct {
	Stage        string        `json:"stage"`
	PagesRead    uint64        `json:"pages_read"`
	PagesWritten uint64        `json:"pages_written"`
	Time         time.Duration `json:"time_ns"`
	CacheHits    uint64        `json:"cache_hits,omitempty"`
	CacheMisses  uint64        `json:"cache_misses,omitempty"`
}

// stageRank orders stage names canonically (obsv.Stage order); names from
// a newer schema sort after the known ones, alphabetically.
var stageRank = func() map[string]int {
	m := make(map[string]int, obsv.NumStages)
	for i, name := range obsv.StageNames() {
		m[name] = i
	}
	return m
}()

func sortStages(rows []StageIO) {
	sort.SliceStable(rows, func(i, j int) bool {
		ri, iok := stageRank[rows[i].Stage]
		rj, jok := stageRank[rows[j].Stage]
		switch {
		case iok && jok:
			return ri < rj
		case iok != jok:
			return iok // known stages first
		default:
			return rows[i].Stage < rows[j].Stage
		}
	})
}

// StagesFromDevice converts a device stats delta into per-stage rows in
// canonical stage order, dropping all-zero stages so uncached, fault-free
// exports stay compact. The rows partition the delta exactly: their page
// counts sum to delta.PagesRead/PagesWritten and their times to
// delta.StorageTime().
func StagesFromDevice(delta ssd.Stats) []StageIO {
	var out []StageIO
	for i := 0; i < obsv.NumStages; i++ {
		st := delta.Stages[i]
		if st == (ssd.StageStats{}) {
			continue
		}
		out = append(out, StageIO{
			Stage:        obsv.Stage(i).String(),
			PagesRead:    st.PagesRead,
			PagesWritten: st.PagesWritten,
			Time:         st.Time,
			CacheHits:    st.CacheHits,
			CacheMisses:  st.CacheMisses,
		})
	}
	return out
}

// MergeStages folds src into dst by stage name and returns the merged
// rows in canonical stage order. Used to accumulate superstep rows into
// run totals and to fold checkpoint-window deltas into a superstep.
func MergeStages(dst, src []StageIO) []StageIO {
	for _, s := range src {
		found := false
		for i := range dst {
			if dst[i].Stage == s.Stage {
				dst[i].PagesRead += s.PagesRead
				dst[i].PagesWritten += s.PagesWritten
				dst[i].Time += s.Time
				dst[i].CacheHits += s.CacheHits
				dst[i].CacheMisses += s.CacheMisses
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, s)
		}
	}
	sortStages(dst)
	return dst
}

// StageByName returns the row for the named stage, or a zero row when the
// stage moved no pages.
func StageByName(rows []StageIO, name string) StageIO {
	for _, r := range rows {
		if r.Stage == name {
			return r
		}
	}
	return StageIO{Stage: name}
}
