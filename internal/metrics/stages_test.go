package metrics

import (
	"encoding/json"
	"testing"
	"time"

	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
)

func TestStagesFromDevicePartitionsDelta(t *testing.T) {
	var delta ssd.Stats
	delta.PagesRead = 7
	delta.PagesWritten = 3
	delta.ReadTime = 40 * time.Microsecond
	delta.WriteTime = 20 * time.Microsecond
	delta.Stages[obsv.StageVertex] = ssd.StageStats{PagesRead: 5, Time: 30 * time.Microsecond, CacheHits: 2}
	delta.Stages[obsv.StageRelog] = ssd.StageStats{PagesRead: 2, PagesWritten: 3, Time: 30 * time.Microsecond}

	rows := StagesFromDevice(delta)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v, want 2 non-zero stages", rows)
	}
	// Canonical order: vertex before relog.
	if rows[0].Stage != "vertex" || rows[1].Stage != "relog" {
		t.Fatalf("order = %q, %q", rows[0].Stage, rows[1].Stage)
	}
	var pr, pw uint64
	var tm time.Duration
	for _, r := range rows {
		pr += r.PagesRead
		pw += r.PagesWritten
		tm += r.Time
	}
	if pr != delta.PagesRead || pw != delta.PagesWritten || tm != delta.StorageTime() {
		t.Fatalf("rows sum %d/%d/%v, want %d/%d/%v",
			pr, pw, tm, delta.PagesRead, delta.PagesWritten, delta.StorageTime())
	}
}

func TestMergeStagesFoldsByName(t *testing.T) {
	a := []StageIO{{Stage: "vertex", PagesRead: 4, CacheHits: 1}, {Stage: "spill", PagesWritten: 2}}
	b := []StageIO{{Stage: "sortgroup", PagesRead: 1}, {Stage: "vertex", PagesRead: 6, Time: time.Millisecond}}
	m := MergeStages(a, b)
	if len(m) != 3 {
		t.Fatalf("merged = %+v", m)
	}
	// Canonical order: vertex, sortgroup, spill.
	if m[0].Stage != "vertex" || m[1].Stage != "sortgroup" || m[2].Stage != "spill" {
		t.Fatalf("order = %q, %q, %q", m[0].Stage, m[1].Stage, m[2].Stage)
	}
	v := StageByName(m, "vertex")
	if v.PagesRead != 10 || v.CacheHits != 1 || v.Time != time.Millisecond {
		t.Fatalf("vertex row = %+v", v)
	}
	if z := StageByName(m, "checkpoint"); z.PagesRead != 0 || z.Stage != "checkpoint" {
		t.Fatalf("absent stage = %+v", z)
	}
}

func TestReportFinishAggregatesStages(t *testing.T) {
	r := &Report{Engine: "multilogvc", App: "pagerank", Graph: "g"}
	r.Supersteps = []SuperstepStats{
		{Superstep: 0, PagesRead: 6, Stages: []StageIO{
			{Stage: "vertex", PagesRead: 4},
			{Stage: "sortgroup", PagesRead: 2},
		}},
		{Superstep: 1, PagesRead: 5, PagesWritten: 1, Stages: []StageIO{
			{Stage: "vertex", PagesRead: 5, PagesWritten: 1, Time: 2 * time.Millisecond},
		}},
	}
	r.Finish()
	if len(r.Stages) != 2 {
		t.Fatalf("run stages = %+v", r.Stages)
	}
	v := StageByName(r.Stages, "vertex")
	if v.PagesRead != 9 || v.PagesWritten != 1 || v.Time != 2*time.Millisecond {
		t.Fatalf("vertex total = %+v", v)
	}
	// Finish is idempotent for stages: re-running must not double-count.
	r.Finish()
	if v := StageByName(r.Stages, "vertex"); v.PagesRead != 9 {
		t.Fatalf("Finish not idempotent: vertex = %+v", v)
	}
	// Run-level stage sums match the run-level page totals.
	var pr uint64
	for _, s := range r.Stages {
		pr += s.PagesRead
	}
	if pr != r.PagesRead {
		t.Fatalf("stage pages %d != report pages %d", pr, r.PagesRead)
	}
}

func TestStageJSONRoundTrip(t *testing.T) {
	r := sampleReport(10*time.Millisecond, 6*time.Millisecond)
	r.Supersteps[0].Stages = []StageIO{
		{Stage: "vertex", PagesRead: 80, PagesWritten: 20, Time: 4 * time.Millisecond, CacheMisses: 80},
		{Stage: "prefetch", PagesRead: 20, Time: time.Millisecond},
	}
	r.Supersteps[0].IOSkew = 1.75
	r.Supersteps[0].IntervalPages.Observe(32)
	r.Supersteps[1].Stages = []StageIO{{Stage: "vertex", PagesRead: 50, PagesWritten: 10}}
	r.Finish()

	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Stages) != len(r.Stages) {
		t.Fatalf("round trip lost run stages: %+v", back.Stages)
	}
	if v := StageByName(back.Stages, "vertex"); v.PagesRead != 130 || v.PagesWritten != 30 {
		t.Fatalf("run vertex = %+v", v)
	}
	if got := back.Supersteps[0]; len(got.Stages) != 2 || got.IOSkew != 1.75 {
		t.Fatalf("superstep 0 round trip = %+v", got)
	}
	if got := back.Supersteps[0].IntervalPages.Max(); got < 32 {
		t.Fatalf("interval hist lost its sample: max = %d", got)
	}

	// Superstep without stage rows stays compact: no "stages" key at all.
	raw, err := json.Marshal(SuperstepStats{Superstep: 3})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["stages"]; ok {
		t.Fatalf("empty stages serialized: %s", raw)
	}
	if _, ok := m["io_skew"]; ok {
		t.Fatalf("zero io_skew serialized: %s", raw)
	}
}
