package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleReport(storage, compute time.Duration) *Report {
	r := &Report{Engine: "multilogvc", App: "bfs", Graph: "g"}
	r.Supersteps = []SuperstepStats{
		{Superstep: 0, Active: 10, PagesRead: 100, PagesWritten: 20,
			StorageTime: storage / 2, ComputeTime: compute / 2},
		{Superstep: 1, Active: 5, PagesRead: 50, PagesWritten: 10,
			StorageTime: storage / 2, ComputeTime: compute / 2},
	}
	r.Finish()
	return r
}

func TestReportFinishAccumulates(t *testing.T) {
	r := sampleReport(10*time.Millisecond, 6*time.Millisecond)
	if r.PagesRead != 150 || r.PagesWritten != 30 {
		t.Fatalf("pages = %d/%d", r.PagesRead, r.PagesWritten)
	}
	if r.TotalPages() != 180 {
		t.Fatalf("TotalPages = %d", r.TotalPages())
	}
	if r.StorageTime != 10*time.Millisecond || r.ComputeTime != 6*time.Millisecond {
		t.Fatalf("times = %v/%v", r.StorageTime, r.ComputeTime)
	}
	if r.TotalTime() != 16*time.Millisecond {
		t.Fatalf("TotalTime = %v", r.TotalTime())
	}
}

func TestStorageFraction(t *testing.T) {
	r := sampleReport(12*time.Millisecond, 4*time.Millisecond)
	if f := r.StorageFraction(); f < 0.74 || f > 0.76 {
		t.Fatalf("StorageFraction = %f, want 0.75", f)
	}
	empty := &Report{}
	if empty.StorageFraction() != 0 {
		t.Fatal("empty report fraction should be 0")
	}
}

func TestSpeedupAndPageRatio(t *testing.T) {
	base := sampleReport(20*time.Millisecond, 0)
	fast := sampleReport(5*time.Millisecond, 0)
	if sp := Speedup(base, fast); sp < 3.9 || sp > 4.1 {
		t.Fatalf("Speedup = %f, want 4", sp)
	}
	if pr := PageRatio(base, fast); pr != 1 {
		t.Fatalf("PageRatio of equal page counts = %f", pr)
	}
	zero := &Report{}
	if Speedup(base, zero) != 0 || PageRatio(base, zero) != 0 {
		t.Fatal("zero-denominator guards failed")
	}
}

func TestSuperstepTotal(t *testing.T) {
	ss := SuperstepStats{StorageTime: time.Second, ComputeTime: 2 * time.Second}
	if ss.Total() != 3*time.Second {
		t.Fatalf("Total = %v", ss.Total())
	}
}

func TestReportString(t *testing.T) {
	s := sampleReport(time.Millisecond, time.Millisecond).String()
	for _, want := range []string{"multilogvc/bfs", "2 supersteps", "pages r/w=150/30"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("a-much-longer-name", "22.50")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Fatalf("title line = %q", lines[0])
	}
	// Columns align: every data line has "value" column at same offset.
	col := strings.Index(lines[1], "value")
	if col < 0 {
		t.Fatal("header missing value column")
	}
	if lines[3][col-2:col] != "  " {
		t.Fatalf("row 1 misaligned: %q", lines[3])
	}
	if !strings.Contains(lines[4], "22.50") {
		t.Fatalf("row 2 = %q", lines[4])
	}
}

func TestFormatHelpers(t *testing.T) {
	if F(1.23456) != "1.23" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if D(1500*time.Nanosecond) != "2µs" {
		t.Fatalf("D = %q", D(1500*time.Nanosecond))
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("plain", "with,comma")
	tab.AddRow(`with"quote`, "x")
	got := tab.CSV()
	want := "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Regression: a row with more cells than Headers used to panic in
	// writeRow (widths[i] with i >= len(widths)).
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("1", "2", "extra", "more")
	tab.AddRow("3")
	out := tab.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "more") {
		t.Fatalf("ragged cells dropped:\n%s", out)
	}
	if got := tab.CSV(); !strings.Contains(got, "extra,more") {
		t.Fatalf("CSV dropped ragged cells: %q", got)
	}
}

func TestReportStringIncludesWallTime(t *testing.T) {
	r := sampleReport(time.Millisecond, time.Millisecond)
	r.WallTime = 123 * time.Millisecond
	if s := r.String(); !strings.Contains(s, "wall=123ms") {
		t.Fatalf("String() = %q missing wall time", s)
	}
}

func TestFinishSortsSupersteps(t *testing.T) {
	r := &Report{}
	r.Supersteps = []SuperstepStats{
		{Superstep: 2, PagesRead: 1},
		{Superstep: 0, PagesRead: 2},
		{Superstep: 1, PagesRead: 3},
	}
	r.Finish()
	for i, ss := range r.Supersteps {
		if ss.Superstep != i {
			t.Fatalf("superstep %d at index %d after Finish", ss.Superstep, i)
		}
	}
	if r.PagesRead != 6 {
		t.Fatalf("PagesRead = %d", r.PagesRead)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := sampleReport(10*time.Millisecond, 6*time.Millisecond)
	r.WallTime = 20 * time.Millisecond
	r.Converged = true
	r.Supersteps[0].MsgSkew = 2.5
	r.Supersteps[0].ReadBatchPages.Observe(7)
	r.Supersteps[0].ReadBatchPages.Observe(64)

	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Totals in the JSON must match the text-table quantities.
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if got := m["total_pages"].(float64); uint64(got) != r.TotalPages() {
		t.Fatalf("total_pages = %v, want %d", got, r.TotalPages())
	}
	if got := m["total_ns"].(float64); time.Duration(got) != r.TotalTime() {
		t.Fatalf("total_ns = %v, want %d", got, r.TotalTime())
	}
	if got := m["wall_ns"].(float64); time.Duration(got) != r.WallTime {
		t.Fatalf("wall_ns = %v, want %d", got, r.WallTime)
	}
	if got := m["storage_fraction"].(float64); got != r.StorageFraction() {
		t.Fatalf("storage_fraction = %v", got)
	}

	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Engine != r.Engine || back.WallTime != r.WallTime || !back.Converged {
		t.Fatalf("round trip lost header fields: %+v", back)
	}
	if len(back.Supersteps) != len(r.Supersteps) {
		t.Fatalf("round trip lost supersteps: %d", len(back.Supersteps))
	}
	if back.Supersteps[0].MsgSkew != 2.5 {
		t.Fatalf("MsgSkew = %v", back.Supersteps[0].MsgSkew)
	}
	if got := back.Supersteps[0].ReadBatchPages; got.N != 2 || got.Sum != 71 {
		t.Fatalf("hist round trip = %+v", got)
	}
}
