package metrics

import (
	"strings"
	"testing"
	"time"
)

func sampleReport(storage, compute time.Duration) *Report {
	r := &Report{Engine: "multilogvc", App: "bfs", Graph: "g"}
	r.Supersteps = []SuperstepStats{
		{Superstep: 0, Active: 10, PagesRead: 100, PagesWritten: 20,
			StorageTime: storage / 2, ComputeTime: compute / 2},
		{Superstep: 1, Active: 5, PagesRead: 50, PagesWritten: 10,
			StorageTime: storage / 2, ComputeTime: compute / 2},
	}
	r.Finish()
	return r
}

func TestReportFinishAccumulates(t *testing.T) {
	r := sampleReport(10*time.Millisecond, 6*time.Millisecond)
	if r.PagesRead != 150 || r.PagesWritten != 30 {
		t.Fatalf("pages = %d/%d", r.PagesRead, r.PagesWritten)
	}
	if r.TotalPages() != 180 {
		t.Fatalf("TotalPages = %d", r.TotalPages())
	}
	if r.StorageTime != 10*time.Millisecond || r.ComputeTime != 6*time.Millisecond {
		t.Fatalf("times = %v/%v", r.StorageTime, r.ComputeTime)
	}
	if r.TotalTime() != 16*time.Millisecond {
		t.Fatalf("TotalTime = %v", r.TotalTime())
	}
}

func TestStorageFraction(t *testing.T) {
	r := sampleReport(12*time.Millisecond, 4*time.Millisecond)
	if f := r.StorageFraction(); f < 0.74 || f > 0.76 {
		t.Fatalf("StorageFraction = %f, want 0.75", f)
	}
	empty := &Report{}
	if empty.StorageFraction() != 0 {
		t.Fatal("empty report fraction should be 0")
	}
}

func TestSpeedupAndPageRatio(t *testing.T) {
	base := sampleReport(20*time.Millisecond, 0)
	fast := sampleReport(5*time.Millisecond, 0)
	if sp := Speedup(base, fast); sp < 3.9 || sp > 4.1 {
		t.Fatalf("Speedup = %f, want 4", sp)
	}
	if pr := PageRatio(base, fast); pr != 1 {
		t.Fatalf("PageRatio of equal page counts = %f", pr)
	}
	zero := &Report{}
	if Speedup(base, zero) != 0 || PageRatio(base, zero) != 0 {
		t.Fatal("zero-denominator guards failed")
	}
}

func TestSuperstepTotal(t *testing.T) {
	ss := SuperstepStats{StorageTime: time.Second, ComputeTime: 2 * time.Second}
	if ss.Total() != 3*time.Second {
		t.Fatalf("Total = %v", ss.Total())
	}
}

func TestReportString(t *testing.T) {
	s := sampleReport(time.Millisecond, time.Millisecond).String()
	for _, want := range []string{"multilogvc/bfs", "2 supersteps", "pages r/w=150/30"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("a-much-longer-name", "22.50")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Fatalf("title line = %q", lines[0])
	}
	// Columns align: every data line has "value" column at same offset.
	col := strings.Index(lines[1], "value")
	if col < 0 {
		t.Fatal("header missing value column")
	}
	if lines[3][col-2:col] != "  " {
		t.Fatalf("row 1 misaligned: %q", lines[3])
	}
	if !strings.Contains(lines[4], "22.50") {
		t.Fatalf("row 2 = %q", lines[4])
	}
}

func TestFormatHelpers(t *testing.T) {
	if F(1.23456) != "1.23" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if D(1500*time.Nanosecond) != "2µs" {
		t.Fatalf("D = %q", D(1500*time.Nanosecond))
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("plain", "with,comma")
	tab.AddRow(`with"quote`, "x")
	got := tab.CSV()
	want := "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
