// Package mlog implements the multi-log update unit of §V-A: one message
// log per destination vertex interval, with page-sized in-memory top
// buffers and batched eviction to the device.
//
// Every update sent between vertices is appended as a 12-byte
// <dst, src, data> record to the log of the destination's interval. Because
// each interval's worst-case incoming volume was bounded at partition time,
// the whole log of one interval fits the engine's sort budget in the next
// superstep — the property that lets MultiLogVC sort in memory and avoid
// GraFBoost's external sort.
//
// The engine owns two Logs (current and next generation) and swaps them at
// superstep boundaries, mirroring the double-buffered message flow of BSP.
package mlog

import (
	"encoding/binary"
	"fmt"
	"sync"

	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
)

// RecordBytes is the on-device size of one logged update.
const RecordBytes = 12

// pageHeader is the per-page record-count prefix. It lets a log be read
// back even when partially filled pages were flushed mid-superstep, which
// the asynchronous computation model (§V-F) needs.
const pageHeader = 4

// Log is one generation of the multi-log: one append-only log file per
// vertex interval. Appends are safe for concurrent use (per-interval
// locking); FlushAll, Read, and ResetAll are not concurrent with appends.
type Log struct {
	dev       *ssd.Device
	prefix    string
	pageSize  int
	recPerPag int
	budget    int64 // multi-log memory buffer size (paper's A%)

	mu    []sync.Mutex // one per interval
	files []*ssd.File  // created lazily
	top   [][]byte     // top (partial) page per interval
	fill  []int        // bytes used in top page
	full  [][][]byte   // completed pages awaiting eviction
	count []uint64     // records per interval

	evictMu  sync.Mutex
	buffered int64 // bytes held in completed (evictable) pages

	totalMu sync.Mutex
	total   uint64

	// consumed marks intervals whose records were fully processed this
	// superstep; ReclaimConsumed (the device's space-reclamation hook)
	// truncates their logs early instead of waiting for the generation
	// swap. Guarded by consumedMu, never by the per-interval locks.
	consumedMu sync.Mutex
	consumed   []bool

	scope *ssd.IOScope // nil = device-global attribution
	tr    *obsv.Trace  // nil = tracing disabled
}

// Device returns the device hosting the log files; Prefix the file-name
// prefix. The spill path (internal/sortgroup) externally sorts an
// oversized interval onto the same device under a derived prefix.
func (l *Log) Device() *ssd.Device { return l.dev }

// Prefix returns the log's device file-name prefix.
func (l *Log) Prefix() string { return l.prefix }

// SetTracer attaches a span tracer; evictions and flushes emit spans on
// it. A nil tracer (the default) disables tracing.
func (l *Log) SetTracer(tr *obsv.Trace) { l.tr = tr }

// SetScope attributes the log's device IO to a per-run ssd.IOScope.
// Must be set before the first Append or Read — interval files are
// created lazily and adopt the scope at creation.
func (l *Log) SetScope(sc *ssd.IOScope) { l.scope = sc }

// Scope returns the log's IO attribution scope (nil = device-global).
func (l *Log) Scope() *ssd.IOScope { return l.scope }

// Tagger returns where readers of this log should set the ambient IO
// stage: the log's scope when one is attached, else the device.
func (l *Log) Tagger() ssd.Tagger {
	if l.scope != nil {
		return l.scope
	}
	return l.dev
}

// New creates a Log with one interval log per interval. prefix names the
// device files ("<prefix>.<interval>"). budget is the in-memory buffer
// size in bytes before completed pages are evicted to the device; it is
// floored at one page per interval, matching the paper's requirement that
// at least one log buffer page exists per interval.
func New(dev *ssd.Device, prefix string, numIntervals int, budget int64) (*Log, error) {
	if numIntervals <= 0 {
		return nil, fmt.Errorf("mlog: numIntervals %d invalid", numIntervals)
	}
	ps := dev.PageSize()
	if min := int64(numIntervals) * int64(ps); budget < min {
		budget = min
	}
	l := &Log{
		dev:       dev,
		prefix:    prefix,
		pageSize:  ps,
		recPerPag: (ps - pageHeader) / RecordBytes,
		budget:    budget,
		mu:        make([]sync.Mutex, numIntervals),
		files:     make([]*ssd.File, numIntervals),
		top:       make([][]byte, numIntervals),
		fill:      make([]int, numIntervals),
		full:      make([][][]byte, numIntervals),
		count:     make([]uint64, numIntervals),
		consumed:  make([]bool, numIntervals),
	}
	if l.recPerPag == 0 {
		return nil, fmt.Errorf("mlog: page size %d smaller than record", ps)
	}
	return l, nil
}

// NumIntervals returns the number of interval logs.
func (l *Log) NumIntervals() int { return len(l.mu) }

// Append logs the update <dst, src, data> to interval's log.
func (l *Log) Append(interval int, dst, src, data uint32) error {
	l.mu[interval].Lock()
	if l.top[interval] == nil {
		l.top[interval] = make([]byte, l.pageSize)
		l.fill[interval] = pageHeader
	}
	page := l.top[interval]
	off := l.fill[interval]
	binary.LittleEndian.PutUint32(page[off:], dst)
	binary.LittleEndian.PutUint32(page[off+4:], src)
	binary.LittleEndian.PutUint32(page[off+8:], data)
	l.fill[interval] = off + RecordBytes
	l.count[interval]++
	var completed bool
	if l.fill[interval]+RecordBytes > l.pageSize {
		sealPage(page, l.fill[interval])
		l.full[interval] = append(l.full[interval], page)
		l.top[interval] = nil
		l.fill[interval] = 0
		completed = true
	}
	l.mu[interval].Unlock()

	l.totalMu.Lock()
	l.total++
	l.totalMu.Unlock()

	if completed {
		l.evictMu.Lock()
		l.buffered += int64(l.pageSize)
		over := l.buffered > l.budget
		l.evictMu.Unlock()
		if over {
			return l.evictFull()
		}
	}
	return nil
}

// evictFull writes every completed page to its interval's file, batching
// the pages of each interval into a single device write.
func (l *Log) evictFull() error {
	// Tid 2 keeps log-unit spans off the engine's stage timeline: evictions
	// triggered by concurrent Appends may overlap each other and would
	// break the engine track's strict nesting.
	sp := l.tr.BeginTid("mlog", "evict", 2)
	defer sp.End()
	for iv := range l.mu {
		l.mu[iv].Lock()
		pages := l.full[iv]
		l.full[iv] = nil
		l.mu[iv].Unlock()
		if len(pages) == 0 {
			continue
		}
		f, err := l.file(iv)
		if err != nil {
			return err
		}
		buf := make([]byte, 0, len(pages)*l.pageSize)
		for _, p := range pages {
			buf = append(buf, p...)
		}
		if err := f.AppendPages(buf); err != nil {
			return err
		}
		l.evictMu.Lock()
		l.buffered -= int64(len(pages) * l.pageSize)
		l.evictMu.Unlock()
	}
	return nil
}

func (l *Log) file(iv int) (*ssd.File, error) {
	l.mu[iv].Lock()
	defer l.mu[iv].Unlock()
	if l.files[iv] == nil {
		f, err := l.dev.OpenOrCreate(fmt.Sprintf("%s.%d", l.prefix, iv))
		if err != nil {
			return nil, err
		}
		f = f.Scoped(l.scope)
		// A fresh Log generation must start empty even when the device
		// file survives from an earlier run.
		if f.NumPages() > 0 {
			if err := f.Truncate(); err != nil {
				return nil, err
			}
		}
		l.files[iv] = f
	}
	return l.files[iv], nil
}

// FlushAll evicts every completed page and the partial top pages so the
// whole generation is readable from the device. Called at the end of a
// superstep, before the generation swap.
func (l *Log) FlushAll() error {
	sp := l.tr.BeginTid("mlog", "flush-all", 2)
	sp.Arg("records", int64(l.Total()))
	defer sp.End()
	if err := l.evictFull(); err != nil {
		return err
	}
	for iv := range l.mu {
		if err := l.FlushInterval(iv); err != nil {
			return err
		}
	}
	return nil
}

// FlushInterval evicts interval iv's completed pages and partial top page
// so that interval's log is readable. The asynchronous engine flushes
// single intervals mid-superstep.
func (l *Log) FlushInterval(iv int) error {
	l.mu[iv].Lock()
	fullPages := l.full[iv]
	l.full[iv] = nil
	page := l.top[iv]
	fill := l.fill[iv]
	l.top[iv] = nil
	l.fill[iv] = 0
	l.mu[iv].Unlock()
	if len(fullPages) > 0 {
		l.evictMu.Lock()
		l.buffered -= int64(len(fullPages) * l.pageSize)
		l.evictMu.Unlock()
	}
	if page != nil && fill > pageHeader {
		for i := fill; i < l.pageSize; i++ {
			page[i] = 0
		}
		sealPage(page, fill)
		fullPages = append(fullPages, page)
	}
	if len(fullPages) == 0 {
		return nil
	}
	buf := make([]byte, 0, len(fullPages)*l.pageSize)
	for _, p := range fullPages {
		buf = append(buf, p...)
	}
	f, err := l.file(iv)
	if err != nil {
		return err
	}
	return f.AppendPages(buf)
}

// sealPage records the page's byte fill in its header.
func sealPage(page []byte, fill int) {
	binary.LittleEndian.PutUint32(page, uint32((fill-pageHeader)/RecordBytes))
}

// Count returns the number of records logged to interval's log this
// generation — the counter the runtime uses to estimate log sizes for
// interval fusing (§V-A2).
func (l *Log) Count(interval int) uint64 {
	l.mu[interval].Lock()
	defer l.mu[interval].Unlock()
	return l.count[interval]
}

// Total returns the number of records logged across all intervals.
func (l *Log) Total() uint64 {
	l.totalMu.Lock()
	defer l.totalMu.Unlock()
	return l.total
}

// Read streams interval's log from the device in record order, flushing
// the interval's in-memory buffers first so mid-superstep reads (the
// asynchronous model) see every appended record. Pages are read with the
// device's batched reader, so a log dispersed over the channels loads at
// full bandwidth (§V-A3). Each page's record count comes from its header.
func (l *Log) Read(interval int, fn func(dst, src, data uint32)) error {
	if err := l.FlushInterval(interval); err != nil {
		return err
	}
	l.mu[interval].Lock()
	n := l.count[interval]
	f := l.files[interval]
	l.mu[interval].Unlock()
	if n == 0 || f == nil {
		return nil
	}
	r := ssd.NewReader(f, 64)
	remaining := n
	var buf []byte
	for remaining > 0 {
		need := l.pageSize
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		if err := r.ReadFull(buf[:need]); err != nil {
			return fmt.Errorf("mlog: read interval %d: %w", interval, err)
		}
		inPage, err := decodePage(buf[:need], remaining, fn)
		if err != nil {
			return fmt.Errorf("mlog: interval %d: %w", interval, err)
		}
		remaining -= inPage
	}
	return nil
}

// decodePage decodes one sealed log page, invoking fn per record, and
// returns the number of records consumed. The header's record count is
// validated against both the page's record capacity and the remaining
// record budget before any record is touched, so a corrupt or truncated
// page surfaces as an error — never an out-of-range panic.
func decodePage(page []byte, remaining uint64, fn func(dst, src, data uint32)) (uint64, error) {
	if len(page) < pageHeader+RecordBytes {
		return 0, fmt.Errorf("page of %d bytes is shorter than header plus one record", len(page))
	}
	capacity := uint64((len(page) - pageHeader) / RecordBytes)
	inPage := uint64(binary.LittleEndian.Uint32(page))
	if inPage > capacity {
		return 0, fmt.Errorf("page header claims %d records, page holds at most %d", inPage, capacity)
	}
	if inPage > remaining {
		return 0, fmt.Errorf("page holds %d records, %d expected", inPage, remaining)
	}
	for i := uint64(0); i < inPage; i++ {
		off := pageHeader + int(i)*RecordBytes
		fn(binary.LittleEndian.Uint32(page[off:]),
			binary.LittleEndian.Uint32(page[off+4:]),
			binary.LittleEndian.Uint32(page[off+8:]))
	}
	return inPage, nil
}

// FilePages returns interval iv's device-resident log file and its data
// page indices. The engine's prefetcher warms these while the previous
// batch computes; only pages already evicted to the device count, since
// in-memory buffers need no warming. Returns (nil, nil) when the interval
// has nothing on the device.
func (l *Log) FilePages(iv int) (*ssd.File, []int) {
	l.mu[iv].Lock()
	f := l.files[iv]
	l.mu[iv].Unlock()
	if f == nil {
		return nil, nil
	}
	n := f.DataPages()
	if n == 0 {
		return nil, nil
	}
	pages := make([]int, n)
	for i := range pages {
		pages[i] = i
	}
	return f, pages
}

// MarkConsumed records that intervals [first, last] have been fully
// processed this superstep: their records were delivered and will never be
// re-read from this generation (the next read happens after ResetAll).
// ReclaimConsumed may truncate their logs to free device space.
func (l *Log) MarkConsumed(first, last int) {
	l.consumedMu.Lock()
	for iv := first; iv <= last && iv < len(l.consumed); iv++ {
		if iv >= 0 {
			l.consumed[iv] = true
		}
	}
	l.consumedMu.Unlock()
}

// ReclaimConsumed truncates the log files of every consumed interval and
// drops their buffers and counters, freeing device pages. It is the
// multi-log's space-reclamation hook (ssd.Device.AddReclaimer): safe to
// call from any goroutine, including mid-write on another file, and
// idempotent — each consumed interval is reclaimed once. It must not run
// concurrently with Read or Flush of the same intervals; the engine only
// marks intervals consumed after it is done reading them.
func (l *Log) ReclaimConsumed() error {
	l.consumedMu.Lock()
	var ivs []int
	for iv, c := range l.consumed {
		if c {
			ivs = append(ivs, iv)
			l.consumed[iv] = false
		}
	}
	l.consumedMu.Unlock()
	for _, iv := range ivs {
		l.mu[iv].Lock()
		dropped := len(l.full[iv])
		n := l.count[iv]
		l.top[iv] = nil
		l.fill[iv] = 0
		l.full[iv] = nil
		l.count[iv] = 0
		f := l.files[iv]
		l.mu[iv].Unlock()
		if dropped > 0 {
			l.evictMu.Lock()
			l.buffered -= int64(dropped * l.pageSize)
			l.evictMu.Unlock()
		}
		if n > 0 {
			l.totalMu.Lock()
			l.total -= n
			l.totalMu.Unlock()
		}
		if f != nil && f.NumPages() > 0 {
			if err := f.Truncate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ResetAll truncates every interval log and zeroes the counters, readying
// the generation for reuse.
func (l *Log) ResetAll() error {
	l.consumedMu.Lock()
	for iv := range l.consumed {
		l.consumed[iv] = false
	}
	l.consumedMu.Unlock()
	for iv := range l.mu {
		l.mu[iv].Lock()
		l.top[iv] = nil
		l.fill[iv] = 0
		l.full[iv] = nil
		l.count[iv] = 0
		f := l.files[iv]
		l.mu[iv].Unlock()
		if f != nil {
			if err := f.Truncate(); err != nil {
				return err
			}
		}
	}
	l.evictMu.Lock()
	l.buffered = 0
	l.evictMu.Unlock()
	l.totalMu.Lock()
	l.total = 0
	l.totalMu.Unlock()
	return nil
}
