package mlog

import (
	"sync"
	"testing"

	"multilogvc/internal/ssd"
)

func testLog(t *testing.T, intervals int, budget int64) (*Log, *ssd.Device) {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: 120, Channels: 4}) // 10 records per page
	l, err := New(dev, "log", intervals, budget)
	if err != nil {
		t.Fatal(err)
	}
	return l, dev
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, _ := testLog(t, 3, 1<<20)
	for i := uint32(0); i < 100; i++ {
		if err := l.Append(int(i%3), i, i+1, i+2); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if l.Total() != 100 {
		t.Fatalf("Total = %d", l.Total())
	}
	seen := 0
	for iv := 0; iv < 3; iv++ {
		if err := l.Read(iv, func(dst, src, data uint32) {
			if src != dst+1 || data != dst+2 {
				t.Fatalf("record corrupted: %d %d %d", dst, src, data)
			}
			if int(dst%3) != iv {
				t.Fatalf("record %d in wrong log %d", dst, iv)
			}
			seen++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if seen != 100 {
		t.Fatalf("read %d records, want 100", seen)
	}
}

func TestCounts(t *testing.T) {
	l, _ := testLog(t, 2, 1<<20)
	for i := 0; i < 7; i++ {
		l.Append(0, 1, 2, 3)
	}
	for i := 0; i < 5; i++ {
		l.Append(1, 1, 2, 3)
	}
	if l.Count(0) != 7 || l.Count(1) != 5 {
		t.Fatalf("counts = %d, %d", l.Count(0), l.Count(1))
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	// Tiny budget: full pages must be evicted to the device mid-stream.
	l, dev := testLog(t, 2, 1)
	before := dev.Stats().PagesWritten
	for i := uint32(0); i < 200; i++ {
		if err := l.Append(int(i%2), i, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Stats().PagesWritten == before {
		t.Fatal("no eviction happened despite tiny budget")
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for iv := 0; iv < 2; iv++ {
		l.Read(iv, func(dst, src, data uint32) { seen++ })
	}
	if seen != 200 {
		t.Fatalf("read %d records after eviction, want 200", seen)
	}
}

func TestResetAll(t *testing.T) {
	l, _ := testLog(t, 2, 1<<20)
	for i := 0; i < 50; i++ {
		l.Append(i%2, uint32(i), 0, 0)
	}
	l.FlushAll()
	if err := l.ResetAll(); err != nil {
		t.Fatal(err)
	}
	if l.Total() != 0 || l.Count(0) != 0 {
		t.Fatal("counters not reset")
	}
	seen := 0
	l.Read(0, func(dst, src, data uint32) { seen++ })
	if seen != 0 {
		t.Fatalf("read %d records after reset", seen)
	}
	// Reusable after reset.
	l.Append(0, 9, 9, 9)
	l.FlushAll()
	got := uint32(0)
	l.Read(0, func(dst, src, data uint32) { got = dst })
	if got != 9 {
		t.Fatal("log not reusable after reset")
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, _ := testLog(t, 4, 2048)
	var wg sync.WaitGroup
	const goroutines = 8
	const per = 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append((g+i)%4, uint32(g), uint32(i), 7); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if l.Total() != goroutines*per {
		t.Fatalf("Total = %d, want %d", l.Total(), goroutines*per)
	}
	seen := uint64(0)
	for iv := 0; iv < 4; iv++ {
		l.Read(iv, func(dst, src, data uint32) {
			if data != 7 {
				t.Errorf("corrupted record data %d", data)
			}
			seen++
		})
	}
	if seen != goroutines*per {
		t.Fatalf("read %d records, want %d", seen, goroutines*per)
	}
}

func TestNewValidation(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 8, Channels: 1}) // < record size
	if _, err := New(dev, "l", 1, 100); err == nil {
		t.Fatal("page smaller than record should fail")
	}
	dev2 := ssd.MustOpen(ssd.Config{PageSize: 120, Channels: 1})
	if _, err := New(dev2, "l", 0, 100); err == nil {
		t.Fatal("zero intervals should fail")
	}
}

func TestReadEmptyInterval(t *testing.T) {
	l, _ := testLog(t, 2, 1<<20)
	called := false
	if err := l.Read(1, func(uint32, uint32, uint32) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("callback on empty log")
	}
}

func BenchmarkAppend(b *testing.B) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 16384, Channels: 8})
	l, _ := New(dev, "bench", 64, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(i&63, uint32(i), uint32(i), uint32(i))
	}
}
