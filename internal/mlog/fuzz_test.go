package mlog

import (
	"encoding/binary"
	"testing"
)

// TestDecodePageRejectsCorruptHeader pins the corrupt-header bounds: a
// header claiming more records than the page holds (the pre-fix panic),
// more than the log says remain, or a page too short for any record must
// all come back as errors, never touch a record, and never panic.
func TestDecodePageRejectsCorruptHeader(t *testing.T) {
	const ps = 4 * RecordBytes // capacity after the header: 3 records
	mk := func(count uint32) []byte {
		page := make([]byte, ps)
		binary.LittleEndian.PutUint32(page, count)
		return page
	}
	calls := 0
	fn := func(dst, src, data uint32) { calls++ }

	if _, err := decodePage(mk(4), 100, fn); err == nil || calls != 0 {
		t.Fatalf("over-capacity header: err=%v calls=%d", err, calls)
	}
	if _, err := decodePage(mk(1<<31), 100, fn); err == nil || calls != 0 {
		t.Fatalf("huge header: err=%v calls=%d", err, calls)
	}
	if _, err := decodePage(mk(3), 2, fn); err == nil || calls != 0 {
		t.Fatalf("over-remaining header: err=%v calls=%d", err, calls)
	}
	if _, err := decodePage(make([]byte, pageHeader), 1, fn); err == nil {
		t.Fatalf("short page accepted")
	}
	n, err := decodePage(mk(2), 2, fn)
	if err != nil || n != 2 || calls != 2 {
		t.Fatalf("valid page: n=%d err=%v calls=%d", n, err, calls)
	}
}

// FuzzPageDecode throws arbitrary bytes — and arbitrary remaining-record
// budgets — at the page decoder. The invariant under fuzz is simply that
// a corrupt page can never panic the reader, and that whatever record
// count decodePage reports was actually delivered through fn and fits
// both the page capacity and the budget.
func FuzzPageDecode(f *testing.F) {
	// Seeds: a well-formed sealed page, an empty page, a lying header,
	// and a short buffer.
	good := make([]byte, 256)
	sealPage(good, pageHeader+5*RecordBytes)
	f.Add(good, uint64(100))
	f.Add(make([]byte, 256), uint64(0))
	bad := make([]byte, 256)
	binary.LittleEndian.PutUint32(bad, 0xFFFFFFFF)
	f.Add(bad, uint64(1))
	f.Add([]byte{1, 0}, uint64(1))

	f.Fuzz(func(t *testing.T, page []byte, remaining uint64) {
		calls := uint64(0)
		n, err := decodePage(page, remaining, func(dst, src, data uint32) { calls++ })
		if err != nil {
			if calls != 0 {
				t.Fatalf("error after delivering %d records", calls)
			}
			return
		}
		if n != calls {
			t.Fatalf("reported %d records, delivered %d", n, calls)
		}
		if n > remaining {
			t.Fatalf("consumed %d records with only %d remaining", n, remaining)
		}
		if cap := uint64((len(page) - pageHeader) / RecordBytes); n > cap {
			t.Fatalf("consumed %d records from a page holding %d", n, cap)
		}
	})
}
