package grafboost

import (
	"errors"
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

func newEngine(t *testing.T, edges []graphio.Edge, n uint32, cfg Config) *Engine {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
	g, err := csr.Build(dev, "g", edges, csr.BuildOptions{NumVertices: n, IntervalBudget: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return New(g, cfg)
}

func runBoth(t *testing.T, edges []graphio.Edge, n uint32, prog vc.Program, maxSteps int, cfg Config) *Result {
	t.Helper()
	cfg.MaxSupersteps = maxSteps
	got, err := newEngine(t, edges, n, cfg).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := vc.NewRef(edges, n).Run(prog, maxSteps)
	diff := 0
	for v := range want.Values {
		if got.Values[v] != want.Values[v] {
			diff++
			if diff <= 5 {
				t.Errorf("value[%d] = %d, want %d", v, got.Values[v], want.Values[v])
			}
		}
	}
	if diff > 0 {
		t.Fatalf("%d/%d values differ from reference", diff, len(want.Values))
	}
	return got
}

func rmatEdges(t *testing.T, scale, ef int, seed int64) ([]graphio.Edge, uint32) {
	t.Helper()
	edges, err := gen.RMAT(gen.DefaultRMAT(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return edges, uint32(1 << scale)
}

func TestGraFBoostBFS(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 11)
	runBoth(t, edges, n, &apps.BFS{Source: 3}, 50, Config{})
}

func TestGraFBoostPageRank(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 7)
	runBoth(t, edges, n, &apps.PageRank{}, 15, Config{})
}

func TestGraFBoostRejectsNonCombinable(t *testing.T) {
	edges, n := rmatEdges(t, 6, 4, 1)
	_, err := newEngine(t, edges, n, Config{MaxSupersteps: 5}).Run(&apps.Coloring{})
	if !errors.Is(err, ErrNeedsCombiner) {
		t.Fatalf("err = %v, want ErrNeedsCombiner", err)
	}
}

func TestGraFBoostAdaptedColoring(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 19)
	res := runBoth(t, edges, n, &apps.Coloring{}, 40, Config{Adapted: true})
	for _, e := range edges {
		if e.Src != e.Dst && res.Values[e.Src] == res.Values[e.Dst] {
			t.Fatalf("improper coloring on edge %v", e)
		}
	}
	if res.Report.Engine != "grafboost-adapted" {
		t.Fatalf("engine name = %q", res.Report.Engine)
	}
}

func TestGraFBoostAdaptedMIS(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 23)
	res := runBoth(t, edges, n, &apps.MIS{Seed: 5}, 100, Config{Adapted: true})
	adj := make(map[uint32][]uint32)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	if msg := apps.IsIndependentSet(res.Values, func(v uint32) []uint32 { return adj[v] }); msg != "" {
		t.Fatal(msg)
	}
}

func TestGraFBoostExternalSortSmallBudget(t *testing.T) {
	// Force the log to outgrow memory so the external sort actually runs.
	edges, n := rmatEdges(t, 9, 8, 29)
	runBoth(t, edges, n, &apps.PageRank{}, 8, Config{MemoryBudget: 8 << 10})
}

func TestGraFBoostFullScanEverySuperstep(t *testing.T) {
	// GraFBoost reads the whole graph regardless of activity: page reads
	// in a late, tiny-frontier BFS superstep stay close to the peak.
	edges, n := rmatEdges(t, 10, 8, 3)
	res, err := newEngine(t, edges, n, Config{MaxSupersteps: 8}).Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	ss := res.Report.Supersteps
	if len(ss) < 3 {
		t.Skip("BFS finished too quickly")
	}
	peak := uint64(0)
	for _, s := range ss {
		if s.PagesRead > peak {
			peak = s.PagesRead
		}
	}
	if ss[1].PagesRead*3 < peak {
		t.Fatalf("superstep 1 read %d pages vs peak %d — engine unexpectedly selective", ss[1].PagesRead, peak)
	}
}

func TestGraFBoostStopAfter(t *testing.T) {
	edges, n := rmatEdges(t, 9, 8, 13)
	eng := newEngine(t, edges, n, Config{
		MaxSupersteps: 50,
		StopAfter:     func(step int, cum uint64) bool { return step >= 1 },
	})
	res, err := eng.Run(&apps.BFS{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Supersteps) != 2 {
		t.Fatalf("ran %d supersteps, want 2", len(res.Report.Supersteps))
	}
}
