package grafboost

import (
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

func TestGraFBoostSSSPWeighted(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 5)
	wedges := graphio.AttachWeights(edges, func(s, d uint32) uint32 {
		if s > d {
			s, d = d, s
		}
		return uint32(vc.Hash64(uint64(s), uint64(d))%16) + 1
	})
	dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
	g, err := csr.BuildWeighted(dev, "g", wedges, csr.BuildOptions{NumVertices: n, IntervalBudget: 2048})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(g, Config{MaxSupersteps: 300}).Run(&apps.SSSP{Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := vc.NewRefWeighted(wedges, n).Run(&apps.SSSP{Source: 1}, 300)
	for v := range ref.Values {
		if res.Values[v] != ref.Values[v] {
			t.Fatalf("dist[%d] = %d, ref %d", v, res.Values[v], ref.Values[v])
		}
	}
}

func TestGraFBoostWCC(t *testing.T) {
	edges, n := rmatEdges(t, 9, 4, 3)
	runBoth(t, edges, n, &apps.WCC{}, 100, Config{})
}

func TestGraFBoostKCore(t *testing.T) {
	edges, n := rmatEdges(t, 8, 6, 13)
	runBoth(t, edges, n, &apps.KCore{K: 3}, 200, Config{})
}
