// Package grafboost is the GraFBoost baseline engine (Jun et al., the
// paper's [11]) reimplemented in software on the shared device model: a
// single append-only message log per superstep, externally sorted by
// destination at the start of the next superstep with the program's
// combine operator applied during run generation and merge.
//
// Two properties from the paper are reproduced:
//
//   - GraFBoost requires associative/commutative updates; Run rejects
//     programs without a vc.Combiner unless Adapted is set, which keeps
//     every record through the external sort (the "adapted GraFBoost"
//     the paper builds for graph coloring, §VIII).
//   - GraFBoost does not load only active graph data: every superstep
//     streams the whole out-CSR (and, for aux programs, in-CSR and aux
//     state) from the device.
package grafboost

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"multilogvc/internal/bitset"
	"multilogvc/internal/csr"
	"multilogvc/internal/extsort"
	"multilogvc/internal/metrics"
	"multilogvc/internal/obsv"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// Config tunes the baseline.
type Config struct {
	// MemoryBudget bounds the external sort's in-memory run size;
	// defaults to 64 MiB.
	MemoryBudget int64
	// MaxSupersteps defaults to 15.
	MaxSupersteps int
	// Workers is the vertex-processing parallelism; defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// Adapted keeps all messages through the external sort instead of
	// combining, enabling non-combinable programs at high sort cost.
	Adapted bool
	// StopAfter ends the run after the superstep for which it returns
	// true.
	StopAfter func(superstep int, cumProcessed uint64) bool
	// Context, when non-nil, aborts the run at the next superstep boundary
	// once cancelled or past its deadline. The baseline has no checkpoint
	// machinery, so the run just stops with the context's error wrapped.
	Context context.Context
	// Cache is the page cache attached to the device, if any; the engine
	// only reads its counters for per-superstep reporting. The caller owns
	// attachment and lifecycle.
	Cache *pagecache.Cache
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 64 << 20
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = 15
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Engine is a single-log external-sort engine over a CSR graph.
type Engine struct {
	g   *csr.Graph
	cfg Config
}

// New creates the engine over an opened CSR graph (shared with the
// MultiLogVC engine, so graph IO costs are comparable).
func New(g *csr.Graph, cfg Config) *Engine {
	return &Engine{g: g, cfg: cfg.withDefaults()}
}

// Result carries the run report and final vertex values.
type Result struct {
	Report *metrics.Report
	Values []uint32
}

// ErrNeedsCombiner is returned for non-combinable programs without
// Adapted mode — GraFBoost's documented limitation.
var ErrNeedsCombiner = fmt.Errorf("grafboost: program has no combiner (set Adapted to force single-log operation)")

// Run executes prog to convergence or the superstep cap.
func (e *Engine) Run(prog vc.Program) (*Result, error) {
	cfg := e.cfg
	g := e.g
	dev := g.Device()
	n := g.NumVertices()
	name := g.Name()

	combiner, hasCombiner := prog.(vc.Combiner)
	if !hasCombiner && !cfg.Adapted {
		return nil, ErrNeedsCombiner
	}
	var combineFn func(a, b uint32) uint32
	if hasCombiner && !cfg.Adapted {
		combineFn = combiner.Combine
	}

	report := &metrics.Report{Engine: "grafboost", App: prog.Name(), Graph: name}
	if cfg.Adapted {
		report.Engine = "grafboost-adapted"
	}
	wallStart := time.Now()

	if cfg.Context != nil {
		// Let the device's retry backoff observe cancellation too.
		dev.SetRunContext(cfg.Context)
		defer dev.SetRunContext(nil)
	}

	buildS, buildIv := dev.SetStage(obsv.StageBuild, -1)
	values, err := csr.CreateValuesFunc(dev, name+".gb.values", n, func(v uint32) uint32 {
		return prog.InitValue(v, n)
	})
	if err != nil {
		dev.SetStage(buildS, buildIv)
		return nil, err
	}
	var aux *csr.Aux
	auxUser, isAux := prog.(vc.AuxUser)
	if isAux {
		aux, err = csr.CreateAux(g, prog.Name()+".gb", auxUser.AuxInit(n))
		if err != nil {
			dev.SetStage(buildS, buildIv)
			return nil, err
		}
	}
	dev.SetStage(buildS, buildIv)

	logF, err := dev.OpenOrCreate(name + ".gb.log")
	if err != nil {
		return nil, err
	}
	if err := logF.Truncate(); err != nil {
		return nil, err
	}
	logW := ssd.NewWriter(logF)
	var logCount uint64

	carry := bitset.New(int(n))
	is := prog.InitActive(n)
	if is.All {
		for v := uint32(0); v < n; v++ {
			carry.Set(int(v))
		}
	} else {
		for _, v := range is.Verts {
			carry.Set(int(v))
		}
	}

	var cumProcessed uint64
	converged := false
	for step := 0; step < cfg.MaxSupersteps; step++ {
		if !carry.Any() && logCount == 0 {
			converged = true
			break
		}
		if cfg.Context != nil {
			if err := cfg.Context.Err(); err != nil {
				return nil, fmt.Errorf("grafboost: run aborted at superstep %d: %w", step, err)
			}
		}
		stepStart := time.Now()
		devBefore := dev.Stats()
		var cacheBefore pagecache.Stats
		if cfg.Cache != nil {
			cacheBefore = cfg.Cache.Stats()
		}
		ss := metrics.SuperstepStats{Superstep: step}

		// Externally sort the single log into memory-bounded groups.
		// The sorted stream arrives in destination order; group it.
		// GraFBoost keeps one global log, so the sort phase carries no
		// interval attribution.
		prevS, prevIv := dev.SetStage(obsv.StageSortGroup, -1)
		if err := logW.Close(); err != nil {
			dev.SetStage(prevS, prevIv)
			return nil, err
		}
		var sorted []extsort.Record
		readLog := func(yield func(extsort.Record) error) error {
			r := ssd.NewReader(logF, 64)
			var rec [extsort.RecordBytes]byte
			for i := uint64(0); i < logCount; i++ {
				if err := r.ReadFull(rec[:]); err != nil {
					return err
				}
				if err := yield(extsort.Record{
					Dst:  le32(rec[0:]),
					Src:  le32(rec[4:]),
					Data: le32(rec[8:]),
				}); err != nil {
					return err
				}
			}
			return nil
		}
		_, err := extsort.Sort(dev, name+".gb.sort", readLog, cfg.MemoryBudget,
			combineFn, func(r extsort.Record) error {
				sorted = append(sorted, r)
				return nil
			})
		dev.SetStage(prevS, prevIv)
		if err != nil {
			return nil, err
		}
		ss.MsgsDelivered = uint64(len(sorted))

		// Fresh log for the next superstep.
		if err := logF.Truncate(); err != nil {
			return nil, err
		}
		logW = ssd.NewWriter(logF)
		logCount = 0
		var logMu sync.Mutex
		appendLog := func(dst, src, data uint32) error {
			logMu.Lock()
			defer logMu.Unlock()
			logCount++
			if err := logW.WriteU32(dst); err != nil {
				return err
			}
			if err := logW.WriteU32(src); err != nil {
				return err
			}
			return logW.WriteU32(data)
		}

		// Stream the whole graph interval by interval; GraFBoost cannot
		// restrict loads to the active set.
		pos := 0
		for iv := range g.Intervals() {
			if err := e.processInterval(&ivRun{
				prog: prog, values: values, aux: aux, isAux: isAux,
				iv: iv, step: step, carry: carry, sorted: sorted,
				pos: &pos, appendLog: appendLog, ss: &ss,
			}); err != nil {
				return nil, err
			}
		}

		devDelta := dev.Stats().Sub(devBefore)
		ss.Stages = metrics.StagesFromDevice(devDelta)
		ss.PagesRead = devDelta.PagesRead
		ss.PagesWritten = devDelta.PagesWritten
		ss.StorageTime = devDelta.StorageTime()
		ss.ReadBatchPages = devDelta.ReadBatchPages
		ss.WriteBatchPages = devDelta.WriteBatchPages
		ss.ReadLatencyUS = devDelta.ReadLatencyUS
		ss.WriteLatencyUS = devDelta.WriteLatencyUS
		ss.ComputeTime = time.Since(stepStart)
		ss.MsgsSent = logCount
		if cache := cfg.Cache; cache != nil {
			cd := cache.Stats().Sub(cacheBefore)
			ss.CacheHits = cd.Hits
			ss.CacheMisses = cd.Misses
			ss.CacheEvictions = cd.Evictions
			ss.PrefetchInserts = cd.PrefetchInserts
			ss.PrefetchHits = cd.PrefetchHits
			ss.PrefetchDropped = cd.PrefetchDropped
		}
		cumProcessed += ss.Active
		report.Supersteps = append(report.Supersteps, ss)

		if cfg.StopAfter != nil && cfg.StopAfter(step, cumProcessed) {
			break
		}
	}
	if !converged {
		converged = !carry.Any() && logCount == 0
	}
	report.Converged = converged
	report.WallTime = time.Since(wallStart)
	report.Finish()

	finalValues, err := values.LoadAll()
	if err != nil {
		return nil, err
	}
	return &Result{Report: report, Values: finalValues}, nil
}

type ivRun struct {
	prog      vc.Program
	values    *csr.Values
	aux       *csr.Aux
	isAux     bool
	iv        int
	step      int
	carry     *bitset.Set
	sorted    []extsort.Record
	pos       *int
	appendLog func(dst, src, data uint32) error
	ss        *metrics.SuperstepStats
}

func (e *Engine) processInterval(ir *ivRun) error {
	g := e.g
	interval := g.Intervals()[ir.iv]
	// The whole-graph streaming scan, value loads, and message-log appends
	// are vertex-processing IO on this interval.
	prevS, prevIv := g.Device().SetStage(obsv.StageVertex, ir.iv)
	defer g.Device().SetStage(prevS, prevIv)

	// Stream the interval's full adjacency (whole-graph scan).
	allVerts := make([]uint32, 0, interval.Len())
	for v := interval.Lo; v < interval.Hi; v++ {
		allVerts = append(allVerts, v)
	}
	adj := make(map[uint32][]uint32, len(allVerts))
	var adjW map[uint32][]uint32
	if g.HasWeights() {
		adjW = make(map[uint32][]uint32, len(allVerts))
	}
	if _, err := g.LoadOutEdgesFull(ir.iv, allVerts, func(v uint32, nbrs, weights []uint32, _, _ int32) {
		cp := make([]uint32, len(nbrs))
		copy(cp, nbrs)
		adj[v] = cp
		if adjW != nil {
			wcp := make([]uint32, len(weights))
			copy(wcp, weights)
			adjW[v] = wcp
		}
	}); err != nil {
		return err
	}

	// Message ranges for this interval from the sorted stream.
	msgStart := *ir.pos
	for *ir.pos < len(ir.sorted) && ir.sorted[*ir.pos].Dst < interval.Hi {
		*ir.pos++
	}
	msgs := ir.sorted[msgStart:*ir.pos]

	// Active set: message destinations plus carried vertices.
	var verts []uint32
	mi := 0
	ir.carry.RangeInRange(int(interval.Lo), int(interval.Hi), func(i int) bool {
		verts = append(verts, uint32(i))
		return true
	})
	for mi < len(msgs) {
		dst := msgs[mi].Dst
		verts = append(verts, dst)
		for mi < len(msgs) && msgs[mi].Dst == dst {
			mi++
		}
	}
	verts = dedupSorted(verts)
	if len(verts) == 0 {
		return nil
	}
	ir.ss.Active += uint64(len(verts))

	vb, _, err := ir.values.LoadForVerts(verts)
	if err != nil {
		return err
	}
	var auxBatch *csr.AuxBatch
	inSources := make(map[uint32][]uint32)
	if ir.isAux {
		auxBatch, _, err = ir.aux.LoadBatch(ir.iv, verts)
		if err != nil {
			return err
		}
		if _, err := g.LoadInEdges(ir.iv, verts, func(v uint32, srcs []uint32) {
			cp := make([]uint32, len(srcs))
			copy(cp, srcs)
			inSources[v] = cp
		}); err != nil {
			return err
		}
	}

	// Per-vertex message ranges.
	ranges := make([][2]int, len(verts))
	p := 0
	for i, v := range verts {
		for p < len(msgs) && msgs[p].Dst < v {
			p++
		}
		start := p
		for p < len(msgs) && msgs[p].Dst == v {
			p++
		}
		ranges[i] = [2]int{start, p}
	}

	workers := e.cfg.Workers
	if workers > len(verts) {
		workers = len(verts)
	}
	halted := make([]bool, len(verts))
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	chunk := (len(verts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(verts) {
			hi = len(verts)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ctx := &gbCtx{eng: e, ir: ir, vb: vb, adj: adj, adjW: adjW, auxBatch: auxBatch, inSources: inSources}
			var msgBuf []vc.Msg
			for i := lo; i < hi; i++ {
				v := verts[i]
				msgBuf = msgBuf[:0]
				for k := ranges[i][0]; k < ranges[i][1]; k++ {
					msgBuf = append(msgBuf, vc.Msg{Src: msgs[k].Src, Data: msgs[k].Data})
				}
				ctx.vertex = v
				ctx.haltedFlag = &halted[i]
				ir.prog.Process(ctx, msgBuf)
				if ctx.err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = ctx.err
					}
					errMu.Unlock()
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	for i, v := range verts {
		ir.carry.SetTo(int(v), !halted[i])
	}
	if _, err := vb.Flush(); err != nil {
		return err
	}
	if auxBatch != nil {
		if _, err := auxBatch.Flush(); err != nil {
			return err
		}
	}
	return nil
}

type gbCtx struct {
	eng       *Engine
	ir        *ivRun
	vb        *csr.ValueBatch
	adj       map[uint32][]uint32
	adjW      map[uint32][]uint32 // nil for unweighted graphs
	auxBatch  *csr.AuxBatch
	inSources map[uint32][]uint32

	vertex     uint32
	haltedFlag *bool
	err        error
}

func (c *gbCtx) Superstep() int      { return c.ir.step }
func (c *gbCtx) NumVertices() uint32 { return c.eng.g.NumVertices() }
func (c *gbCtx) Vertex() uint32      { return c.vertex }
func (c *gbCtx) Value() uint32       { return c.vb.Get(c.vertex) }
func (c *gbCtx) SetValue(v uint32)   { c.vb.Set(c.vertex, v) }
func (c *gbCtx) VoteToHalt()         { *c.haltedFlag = true }
func (c *gbCtx) OutEdges() []uint32  { return c.adj[c.vertex] }
func (c *gbCtx) OutWeights() []uint32 {
	if c.adjW == nil {
		return nil
	}
	return c.adjW[c.vertex]
}
func (c *gbCtx) Send(dst, data uint32) {
	if err := c.ir.appendLog(dst, c.vertex, data); err != nil && c.err == nil {
		c.err = err
	}
}
func (c *gbCtx) InEdgeSources() []uint32 { return c.inSources[c.vertex] }
func (c *gbCtx) Aux() []uint32 {
	if c.auxBatch == nil {
		return nil
	}
	return c.auxBatch.Get(c.vertex)
}

func dedupSorted(s []uint32) []uint32 {
	if len(s) == 0 {
		return s
	}
	sortU32(s)
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

func sortU32(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
