package obsv

import (
	"bytes"
	"expvar"
	"strings"
	"sync"
	"testing"
)

// kv builds an expvar.KeyValue without touching the process-global
// registry (expvar.NewInt et al. panic on duplicate names across tests).
func kvInt(name string, v int64) expvar.KeyValue {
	i := new(expvar.Int)
	i.Set(v)
	return expvar.KeyValue{Key: name, Value: i}
}

func kvFloat(name string, v float64) expvar.KeyValue {
	f := new(expvar.Float)
	f.Set(v)
	return expvar.KeyValue{Key: name, Value: f}
}

func kvMap(name string, entries map[string]int64) expvar.KeyValue {
	m := new(expvar.Map).Init()
	for k, v := range entries {
		m.Add(k, v)
	}
	return expvar.KeyValue{Key: name, Value: m}
}

func TestOpenMetricsGoldenFormat(t *testing.T) {
	vars := []expvar.KeyValue{
		// Deliberately out of order: output must sort by family name.
		kvMap("mlvc.stage_pages_read", map[string]int64{"vertex": 12, "prefetch": 3}),
		kvInt("mlvc.pages_read", 150),
		kvFloat("mlvc.cache_hit_rate", 0.75),
	}
	var buf bytes.Buffer
	if err := writeOpenMetricsVars(&buf, vars); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP mlvc_cache_hit_rate Page-cache hit rate of the latest superstep",
		"# TYPE mlvc_cache_hit_rate gauge",
		"mlvc_cache_hit_rate 0.75",
		"# HELP mlvc_pages_read Cumulative device pages read by engine runs",
		"# TYPE mlvc_pages_read counter",
		"mlvc_pages_read 150",
		"# HELP mlvc_stage_pages_read Cumulative device pages read, by pipeline stage",
		"# TYPE mlvc_stage_pages_read counter",
		`mlvc_stage_pages_read{stage="prefetch"} 3`,
		`mlvc_stage_pages_read{stage="vertex"} 12`,
		"# EOF",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestOpenMetricsReplicationFamilies pins the exposition of the
// replication metrics: gauges for the replica cursor and lag, counters
// for frames shipped and promotions, each with its registered HELP text.
func TestOpenMetricsReplicationFamilies(t *testing.T) {
	vars := []expvar.KeyValue{
		kvInt("mlvc.replica_applied_seq", 1042),
		kvInt("mlvc.replica_lag_frames", 7),
		kvInt("mlvc.frames_shipped", 5000),
		kvInt("mlvc.promotions", 1),
	}
	var buf bytes.Buffer
	if err := writeOpenMetricsVars(&buf, vars); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP mlvc_frames_shipped WAL frames served to followers via /replicate",
		"# TYPE mlvc_frames_shipped counter",
		"mlvc_frames_shipped 5000",
		"# HELP mlvc_promotions Follower promotions to writable primary",
		"# TYPE mlvc_promotions counter",
		"mlvc_promotions 1",
		"# HELP mlvc_replica_applied_seq Highest WAL sequence number applied by this replica",
		"# TYPE mlvc_replica_applied_seq gauge",
		"mlvc_replica_applied_seq 1042",
		"# HELP mlvc_replica_lag_frames WAL frames this replica trails its primary by",
		"# TYPE mlvc_replica_lag_frames gauge",
		"mlvc_replica_lag_frames 7",
		"# EOF",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("replication exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestOpenMetricsStableOrdering(t *testing.T) {
	vars := []expvar.KeyValue{
		kvInt("mlvc.runs", 1),
		kvInt("mlvc.pages_read", 2),
		kvInt("mlvc.checkpoints", 3),
	}
	var first string
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := writeOpenMetricsVars(&buf, vars); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			continue
		}
		if buf.String() != first {
			t.Fatalf("output differs between calls:\n%s\nvs\n%s", first, buf.String())
		}
	}
	// Families appear name-sorted regardless of input order.
	ci := strings.Index(first, "mlvc_checkpoints")
	pi := strings.Index(first, "mlvc_pages_read")
	ri := strings.Index(first, "mlvc_runs")
	if !(ci < pi && pi < ri) {
		t.Fatalf("families not sorted:\n%s", first)
	}
}

func TestOpenMetricsLabelEscaping(t *testing.T) {
	vars := []expvar.KeyValue{
		kvMap("mlvc.weird", map[string]int64{"a\\b\"c\nd": 1}),
	}
	var buf bytes.Buffer
	if err := writeOpenMetricsVars(&buf, vars); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `mlvc_weird{key="a\\b\"c\nd"} 1`
	// The escaped sample must appear as one complete line: backslash,
	// quote, and newline all escaped, no raw newline splitting the sample.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if line == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped sample missing or split:\ngot:\n%s\nwant line: %s", out, want)
	}
}

func TestOpenMetricsUnknownVarGetsUntyped(t *testing.T) {
	var buf bytes.Buffer
	if err := writeOpenMetricsVars(&buf, []expvar.KeyValue{kvInt("mlvc.novel", 9)}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE mlvc_novel untyped") || !strings.Contains(out, "mlvc_novel 9") {
		t.Fatalf("unknown var exposition:\n%s", out)
	}
}

// TestLiveConcurrentUpdates hammers the singleton gauges — including the
// per-stage maps — from many goroutines while the exposition renders,
// proving the expvar surface is race-free (run with -race).
func TestLiveConcurrentUpdates(t *testing.T) {
	live := Live()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				live.PagesRead.Add(1)
				live.PagesWritten.Add(1)
				live.CacheHitRate.Set(float64(i) / 500)
				live.StagePagesRead.Add(StageNames()[i%NumStages], 1)
				live.StagePagesWritten.Add("vertex", 1)
			}
		}()
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := WriteOpenMetrics(&buf); err != nil {
					t.Error(err)
					return
				}
				if !strings.HasSuffix(buf.String(), "# EOF\n") {
					t.Error("exposition missing EOF marker")
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()

	// Every stage the writers touched shows up with a positive counter.
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `mlvc_stage_pages_read{stage="vertex"}`) {
		t.Fatalf("vertex stage missing from exposition:\n%s", buf.String())
	}
}
