package obsv

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus/OpenMetrics text exposition over the process's "mlvc."
// expvar gauges. The same counters back both /debug/vars (raw expvar
// JSON) and /metrics (this exposition), so a scraper and a human poking
// the debug endpoint always agree.
//
// Family names translate by replacing dots with underscores
// (mlvc.pages_read -> mlvc_pages_read). expvar.Map vars become labeled
// samples: mlvc.stage_pages_read{vertex: 12} exports as
// mlvc_stage_pages_read{stage="vertex"} 12.

// metricsContentType is the Prometheus text exposition format version
// this package writes.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// metricMeta documents one exported family: HELP text, TYPE, and — for
// expvar.Map families — the label name its keys populate.
type metricMeta struct {
	help  string
	typ   string // "counter" or "gauge"
	label string // label name for map families; "" for scalars
}

var varMeta = map[string]metricMeta{
	"mlvc.superstep":            {"Current superstep of the latest engine run", "gauge", ""},
	"mlvc.active_vertices":      {"Vertices processed in the latest superstep", "gauge", ""},
	"mlvc.pages_read":           {"Cumulative device pages read by engine runs", "counter", ""},
	"mlvc.pages_written":        {"Cumulative device pages written by engine runs", "counter", ""},
	"mlvc.msgs_sent":            {"Cumulative messages sent", "counter", ""},
	"mlvc.edgelog_hit_rate":     {"Share of adjacency pages served from the edge log", "gauge", ""},
	"mlvc.msg_skew":             {"Per-interval message skew (max/mean) of the latest superstep", "gauge", ""},
	"mlvc.runs":                 {"Engine runs started in this process", "counter", ""},
	"mlvc.cache_hit_rate":       {"Page-cache hit rate of the latest superstep", "gauge", ""},
	"mlvc.cache_resident_pages": {"Pages currently resident in the page cache", "gauge", ""},
	"mlvc.prefetch_accuracy":    {"Prefetch accuracy of the latest superstep", "gauge", ""},
	"mlvc.transient_faults":     {"Transient device faults absorbed by retry", "counter", ""},
	"mlvc.retries":              {"Retry attempts spent absorbing transient faults", "counter", ""},
	"mlvc.checkpoints":          {"Checkpoints committed", "counter", ""},
	"mlvc.resumes":              {"Runs resumed from a checkpoint", "counter", ""},
	"mlvc.corrupt_pages":        {"Pages that failed checksum verification", "counter", ""},
	"mlvc.elog_heals":           {"Edge-log generations healed from the CSR", "counter", ""},
	"mlvc.rollbacks":            {"Runs rolled back to a checkpoint on corruption", "counter", ""},
	"mlvc.spills":               {"Interval logs spilled through the external sort-group", "counter", ""},
	"mlvc.spill_bytes":          {"Record bytes spilled to the device", "counter", ""},
	"mlvc.no_space_faults":      {"Writes that hit the disk quota", "counter", ""},
	"mlvc.reclaims":             {"Space-reclamation sweeps run", "counter", ""},
	"mlvc.reclaimed_bytes":      {"Bytes freed by reclamation sweeps", "counter", ""},
	"mlvc.queries_served":       {"Queries answered successfully by the serving daemon", "counter", ""},
	"mlvc.queries_shed":         {"Queries rejected at admission (queue full, shutdown, expired)", "counter", ""},
	"mlvc.query_deadlines":      {"Queries cut by their deadline mid-run", "counter", ""},
	"mlvc.query_errors":         {"Queries failed for any other reason", "counter", ""},
	"mlvc.batches_run":          {"Engine executions serving queries", "counter", ""},
	"mlvc.batched_queries":      {"Queries that shared an execution with at least one other", "counter", ""},
	"mlvc.query_pages_read":     {"Device pages read by query executions (per-query scoped)", "counter", ""},
	"mlvc.query_pages_written":  {"Device pages written by query executions (per-query scoped)", "counter", ""},
	"mlvc.stage_pages_read":     {"Cumulative device pages read, by pipeline stage", "counter", "stage"},
	"mlvc.stage_pages_written":  {"Cumulative device pages written, by pipeline stage", "counter", "stage"},
	"mlvc.ingest_mutations":     {"Edge mutations acknowledged (durable and applied)", "counter", ""},
	"mlvc.ingest_batches":       {"Mutation batches acknowledged", "counter", ""},
	"mlvc.ingest_backpressure":  {"Mutation batches shed at the pending-update cap", "counter", ""},
	"mlvc.ingest_errors":        {"Mutation batches failed for any other reason", "counter", ""},
	"mlvc.ingest_merges":        {"Crash-atomic delta merges (WAL checkpoints)", "counter", ""},
	"mlvc.wal_flushes":          {"WAL group-commit flushes", "counter", ""},
	"mlvc.wal_frames":           {"WAL frames made durable", "counter", ""},
	"mlvc.wal_replayed_frames":  {"WAL frames replayed into the delta overlay on open", "counter", ""},
	"mlvc.wal_torn_tails":       {"Torn WAL tails truncated during replay", "counter", ""},
	"mlvc.replica_applied_seq":  {"Highest WAL sequence number applied by this replica", "gauge", ""},
	"mlvc.replica_lag_frames":   {"WAL frames this replica trails its primary by", "gauge", ""},
	"mlvc.frames_shipped":       {"WAL frames served to followers via /replicate", "counter", ""},
	"mlvc.promotions":           {"Follower promotions to writable primary", "counter", ""},
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func promNum(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WriteOpenMetrics writes every "mlvc."-prefixed expvar in Prometheus
// text exposition format: families sorted by name, HELP/TYPE preceding
// samples, map keys sorted within a family, and a trailing # EOF marker.
func WriteOpenMetrics(w io.Writer) error {
	var vars []expvar.KeyValue
	expvar.Do(func(kv expvar.KeyValue) {
		if strings.HasPrefix(kv.Key, "mlvc.") {
			vars = append(vars, kv)
		}
	})
	return writeOpenMetricsVars(w, vars)
}

// writeOpenMetricsVars is WriteOpenMetrics over an explicit var list
// (unit-testable without touching the process-global expvar registry).
func writeOpenMetricsVars(w io.Writer, vars []expvar.KeyValue) error {
	sort.Slice(vars, func(i, j int) bool { return vars[i].Key < vars[j].Key })
	for _, kv := range vars {
		name := strings.ReplaceAll(kv.Key, ".", "_")
		meta, ok := varMeta[kv.Key]
		if !ok {
			meta = metricMeta{help: "mlvc expvar " + kv.Key, typ: "untyped"}
			if _, isMap := kv.Value.(*expvar.Map); isMap {
				meta.label = "key"
			}
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, helpEscaper.Replace(meta.help), name, meta.typ); err != nil {
			return err
		}
		var err error
		switch v := kv.Value.(type) {
		case *expvar.Int:
			_, err = fmt.Fprintf(w, "%s %d\n", name, v.Value())
		case *expvar.Float:
			_, err = fmt.Fprintf(w, "%s %s\n", name, promNum(v.Value()))
		case *expvar.Map:
			var keys []string
			v.Do(func(e expvar.KeyValue) { keys = append(keys, e.Key) })
			sort.Strings(keys)
			for _, k := range keys {
				ev := v.Get(k)
				if ev == nil {
					continue
				}
				var val string
				switch sv := ev.(type) {
				case *expvar.Int:
					val = strconv.FormatInt(sv.Value(), 10)
				case *expvar.Float:
					val = promNum(sv.Value())
				default:
					continue // nested maps etc. have no exposition
				}
				if _, err = fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n",
					name, meta.label, labelEscaper.Replace(k), val); err != nil {
					return err
				}
			}
		default:
			// Opaque expvar kinds (Func, String) have no numeric sample;
			// the HELP/TYPE stanza alone documents their presence.
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// MetricsHandler serves WriteOpenMetrics with the Prometheus text
// content type. Mounted at /metrics by Serve.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metricsContentType)
		_ = WriteOpenMetrics(w)
	})
}
