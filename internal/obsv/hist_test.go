package obsv

import (
	"encoding/json"
	"testing"
)

func TestHistBucketing(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1024} {
		h.Observe(v)
	}
	if h.N != 8 || h.Sum != 0+1+2+3+4+7+8+1024 {
		t.Fatalf("N=%d Sum=%d", h.N, h.Sum)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 11: 1}
	for i, c := range h.Buckets {
		if c != want[i] {
			t.Fatalf("bucket %d (%s) = %d, want %d", i, BucketLabel(i), c, want[i])
		}
	}
}

func TestHistQuantileMeanMax(t *testing.T) {
	var h Hist
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	h.Observe(1000)
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %d", got)
	}
	if got := h.Quantile(0.999); got != BucketUpper(10) {
		t.Fatalf("p99.9 = %d, want %d", got, BucketUpper(10))
	}
	if got := h.Max(); got != BucketUpper(10) {
		t.Fatalf("Max = %d", got)
	}
	if m := h.Mean(); m < 10.9 || m > 11.1 {
		t.Fatalf("Mean = %f", m)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty hist not all-zero")
	}
}

func TestHistSubAdd(t *testing.T) {
	var a Hist
	a.Observe(5)
	a.Observe(100)
	before := a
	a.Observe(7)
	delta := a.Sub(before)
	if delta.N != 1 || delta.Sum != 7 || delta.Buckets[bucketOf(7)] != 1 {
		t.Fatalf("delta = %+v", delta)
	}
	var b Hist
	b.Add(a)
	if b != a {
		t.Fatalf("Add: %+v != %+v", b, a)
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(3)
	h.Observe(300)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	bks := m["buckets"].(map[string]any)
	if len(bks) != 3 || bks["0"] != 1.0 || bks["2-3"] != 1.0 || bks["256-511"] != 1.0 {
		t.Fatalf("buckets = %v", bks)
	}
	var back Hist
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip: %+v != %+v", back, h)
	}
}

func TestHistString(t *testing.T) {
	var h Hist
	if h.String() != "n=0" {
		t.Fatalf("empty String = %q", h.String())
	}
	h.Observe(4)
	if s := h.String(); s == "" || s == "n=0" {
		t.Fatalf("String = %q", s)
	}
	if l := h.Labels(); l != "4-7:1" {
		t.Fatalf("Labels = %q", l)
	}
}
