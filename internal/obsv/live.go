package obsv

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// LiveVars are the process-wide engine gauges published over expvar under
// the "mlvc." prefix. Engines update them unconditionally — a handful of
// atomic stores per superstep — so attaching a debug listener mid-run
// (mlvc run -listen :6060) observes the run without any replumbing.
//
// Superstep, Active, EdgeLogHitRate, and MsgSkew are most-recent-superstep
// gauges; the page/message counters accumulate across every run in the
// process, which is what a long-lived server wants.
type LiveVars struct {
	Superstep      *expvar.Int   // current superstep of the latest run
	Active         *expvar.Int   // vertices processed in that superstep
	PagesRead      *expvar.Int   // cumulative device pages read by engines
	PagesWritten   *expvar.Int   // cumulative device pages written
	MsgsSent       *expvar.Int   // cumulative messages sent
	EdgeLogHitRate *expvar.Float // share of adjacency pages served from the edge log
	MsgSkew        *expvar.Float // per-interval message skew (max/mean) of that superstep
	Runs           *expvar.Int   // engine runs started in this process

	// Page-cache gauges: zero unless a run attached a cache (-cache-mb).
	CacheHitRate  *expvar.Float // hit rate of the latest superstep
	CacheResident *expvar.Int   // pages currently resident in the cache
	PrefetchAcc   *expvar.Float // prefetch accuracy of the latest superstep

	// Fault-tolerance counters: cumulative across runs in the process.
	TransientFaults *expvar.Int // transient device faults absorbed by retry
	Retries         *expvar.Int // retry attempts spent absorbing them
	Checkpoints     *expvar.Int // checkpoints committed
	Resumes         *expvar.Int // runs resumed from a checkpoint

	// Integrity counters: cumulative across runs in the process.
	CorruptPages *expvar.Int // pages that failed checksum verification
	ElogHeals    *expvar.Int // edge-log generations healed from CSR
	Rollbacks    *expvar.Int // runs rolled back to a checkpoint on corruption

	// Resource-governance counters: cumulative across runs in the process.
	Spills         *expvar.Int // interval logs spilled through the external sort-group
	SpillBytes     *expvar.Int // record bytes those spills wrote to the device
	NoSpaceFaults  *expvar.Int // writes that hit the disk quota (or injected no-space)
	Reclaims       *expvar.Int // space-reclamation sweeps run
	ReclaimedBytes *expvar.Int // bytes freed by those sweeps

	// Serving counters: cumulative across the daemon's lifetime. Zero in
	// one-shot CLI processes.
	QueriesServed   *expvar.Int // queries answered successfully
	QueriesShed     *expvar.Int // queries rejected at admission (queue full, shutdown, expired)
	QueryDeadlines  *expvar.Int // queries cut by their deadline mid-run
	QueryErrors     *expvar.Int // queries failed for any other reason
	BatchesRun      *expvar.Int // engine executions serving those queries
	BatchedQueries  *expvar.Int // queries that shared an execution with at least one other
	QueryPagesRead  *expvar.Int // device pages read by query executions (scoped)
	QueryPagesWrite *expvar.Int // device pages written by query executions (scoped)

	// Serving-resilience counters: cumulative across the daemon's
	// lifetime. Zero in one-shot CLI processes.
	QueriesIsolated *expvar.Int // queries whose failed batch was isolated into solo re-runs
	QueriesRetried  *expvar.Int // solo re-executions spent on that isolation
	PanicsRecovered *expvar.Int // panics contained at the serving boundaries
	BreakerOpens    *expvar.Int // fault circuit-breaker open transitions
	BreakerSheds    *expvar.Int // queries shed while the breaker was open or probing

	// Streaming-ingest counters: cumulative across the process. Zero
	// unless the graph was opened for durable ingest.
	IngestMutations    *expvar.Int // edge mutations acknowledged (durable + applied)
	IngestBatches      *expvar.Int // mutation batches acknowledged
	IngestBackpressure *expvar.Int // mutation batches shed at the pending-update cap
	IngestErrors       *expvar.Int // mutation batches failed for any other reason
	IngestMerges       *expvar.Int // crash-atomic delta merges (WAL checkpoints)
	WALFlushes         *expvar.Int // WAL group-commit flushes
	WALFrames          *expvar.Int // WAL frames made durable by those flushes
	WALReplayed        *expvar.Int // WAL frames replayed into the delta overlay on open
	WALTornTails       *expvar.Int // torn WAL tails truncated during replay
	ReplicaAppliedSeq  *expvar.Int // highest WAL seq applied by this replica (gauge)
	ReplicaLagFrames   *expvar.Int // frames the replica trails the primary by (gauge)
	FramesShipped      *expvar.Int // WAL frames served to followers via /replicate
	Promotions         *expvar.Int // follower promotions to writable primary

	// Per-stage IO maps, keyed by the stable obsv.Stage names: cumulative
	// device pages each pipeline stage read and wrote across runs in the
	// process. The OpenMetrics handler exports them as labeled samples
	// (mlvc_stage_pages_read{stage="vertex"}).
	StagePagesRead    *expvar.Map
	StagePagesWritten *expvar.Map
}

var (
	liveOnce sync.Once
	liveVars *LiveVars
)

// Live returns the singleton gauges, registering them with expvar on first
// use. expvar panics on duplicate registration, hence the Once.
func Live() *LiveVars {
	liveOnce.Do(func() {
		liveVars = &LiveVars{
			Superstep:      expvar.NewInt("mlvc.superstep"),
			Active:         expvar.NewInt("mlvc.active_vertices"),
			PagesRead:      expvar.NewInt("mlvc.pages_read"),
			PagesWritten:   expvar.NewInt("mlvc.pages_written"),
			MsgsSent:       expvar.NewInt("mlvc.msgs_sent"),
			EdgeLogHitRate: expvar.NewFloat("mlvc.edgelog_hit_rate"),
			MsgSkew:        expvar.NewFloat("mlvc.msg_skew"),
			Runs:           expvar.NewInt("mlvc.runs"),
			CacheHitRate:   expvar.NewFloat("mlvc.cache_hit_rate"),
			CacheResident:  expvar.NewInt("mlvc.cache_resident_pages"),
			PrefetchAcc:    expvar.NewFloat("mlvc.prefetch_accuracy"),

			TransientFaults: expvar.NewInt("mlvc.transient_faults"),
			Retries:         expvar.NewInt("mlvc.retries"),
			Checkpoints:     expvar.NewInt("mlvc.checkpoints"),
			Resumes:         expvar.NewInt("mlvc.resumes"),

			CorruptPages: expvar.NewInt("mlvc.corrupt_pages"),
			ElogHeals:    expvar.NewInt("mlvc.elog_heals"),
			Rollbacks:    expvar.NewInt("mlvc.rollbacks"),

			Spills:         expvar.NewInt("mlvc.spills"),
			SpillBytes:     expvar.NewInt("mlvc.spill_bytes"),
			NoSpaceFaults:  expvar.NewInt("mlvc.no_space_faults"),
			Reclaims:       expvar.NewInt("mlvc.reclaims"),
			ReclaimedBytes: expvar.NewInt("mlvc.reclaimed_bytes"),

			QueriesServed:   expvar.NewInt("mlvc.queries_served"),
			QueriesShed:     expvar.NewInt("mlvc.queries_shed"),
			QueryDeadlines:  expvar.NewInt("mlvc.query_deadlines"),
			QueryErrors:     expvar.NewInt("mlvc.query_errors"),
			BatchesRun:      expvar.NewInt("mlvc.batches_run"),
			BatchedQueries:  expvar.NewInt("mlvc.batched_queries"),
			QueryPagesRead:  expvar.NewInt("mlvc.query_pages_read"),
			QueryPagesWrite: expvar.NewInt("mlvc.query_pages_written"),

			QueriesIsolated: expvar.NewInt("mlvc.queries_isolated"),
			QueriesRetried:  expvar.NewInt("mlvc.queries_retried"),
			PanicsRecovered: expvar.NewInt("mlvc.panics_recovered"),
			BreakerOpens:    expvar.NewInt("mlvc.breaker_opens"),
			BreakerSheds:    expvar.NewInt("mlvc.breaker_sheds"),

			IngestMutations:    expvar.NewInt("mlvc.ingest_mutations"),
			IngestBatches:      expvar.NewInt("mlvc.ingest_batches"),
			IngestBackpressure: expvar.NewInt("mlvc.ingest_backpressure"),
			IngestErrors:       expvar.NewInt("mlvc.ingest_errors"),
			IngestMerges:       expvar.NewInt("mlvc.ingest_merges"),
			WALFlushes:         expvar.NewInt("mlvc.wal_flushes"),
			WALFrames:          expvar.NewInt("mlvc.wal_frames"),
			WALReplayed:        expvar.NewInt("mlvc.wal_replayed_frames"),
			WALTornTails:       expvar.NewInt("mlvc.wal_torn_tails"),
			ReplicaAppliedSeq:  expvar.NewInt("mlvc.replica_applied_seq"),
			ReplicaLagFrames:   expvar.NewInt("mlvc.replica_lag_frames"),
			FramesShipped:      expvar.NewInt("mlvc.frames_shipped"),
			Promotions:         expvar.NewInt("mlvc.promotions"),

			StagePagesRead:    expvar.NewMap("mlvc.stage_pages_read"),
			StagePagesWritten: expvar.NewMap("mlvc.stage_pages_written"),
		}
	})
	return liveVars
}

// Serve starts an HTTP listener exposing expvar counters at /debug/vars,
// a Prometheus text exposition of the same counters at /metrics, and the
// pprof profile family at /debug/pprof/. It returns the bound address
// (useful with ":0") and a shutdown func. The server runs until the
// process exits or the shutdown func is called.
func Serve(addr string) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "mlvc debug endpoint: /debug/vars (expvar), /debug/pprof/ (profiles)")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
