package obsv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	sp := tr.Begin("cat", "name")
	sp.Arg("k", 1)
	sp.End() // must not panic
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil trace accumulated state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil trace export: %v", err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil trace export is not valid JSON: %v", err)
	}
}

func TestSpanRecordsNameCatArgs(t *testing.T) {
	tr := NewTrace()
	sp := tr.BeginTid("engine", "superstep", 7)
	sp.Arg("step", 3)
	sp.Arg("active", 42)
	sp.End()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	ev := evs[0]
	if ev.Name != "superstep" || ev.Cat != "engine" || ev.Tid != 7 {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.Args) != 2 || ev.Args[0] != (Arg{"step", 3}) || ev.Args[1] != (Arg{"active", 42}) {
		t.Fatalf("args = %+v", ev.Args)
	}
	if ev.Dur < 0 || ev.Start < 0 {
		t.Fatalf("negative times: %+v", ev)
	}
}

// TestConcurrentEmitters exercises the sink from many goroutines; run
// with -race to verify the lock discipline.
func TestConcurrentEmitters(t *testing.T) {
	tr := NewTrace()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.BeginTid("test", fmt.Sprintf("w%d", w), w)
				sp.Arg("i", int64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != workers*per {
		t.Fatalf("recorded %d spans, want %d", got, workers*per)
	}
}

// traceShape is the time-independent projection of the Chrome export used
// for the golden comparison: everything except ts/dur, which vary run to
// run.
type traceShape struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TestChromeTraceGolden checks the export is valid Chrome trace JSON with
// the expected event shapes (golden file) and that nested spans stay
// contained in their parent's [ts, ts+dur] window.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTrace()
	outer := tr.Begin("engine", "superstep")
	outer.Arg("step", 0)
	inner := tr.Begin("engine", "load+sort")
	inner.Arg("records", 12)
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			traceShape
			Ts  float64  `json:"ts"`
			Dur *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}

	// Spans complete innermost-first, so the export order is load+sort
	// then superstep; verify containment.
	var ls, ss *struct {
		traceShape
		Ts  float64  `json:"ts"`
		Dur *float64 `json:"dur"`
	}
	for i := range out.TraceEvents {
		ev := &out.TraceEvents[i]
		switch ev.Name {
		case "load+sort":
			ls = ev
		case "superstep":
			ss = ev
		}
	}
	if ls == nil || ss == nil {
		t.Fatalf("missing spans in export: %s", buf.String())
	}
	if ls.Ph != "X" || ss.Ph != "X" || ls.Dur == nil || ss.Dur == nil {
		t.Fatal("spans are not complete events")
	}
	if ls.Ts < ss.Ts || ls.Ts+*ls.Dur > ss.Ts+*ss.Dur {
		t.Fatalf("child span [%f,+%f] escapes parent [%f,+%f]", ls.Ts, *ls.Dur, ss.Ts, *ss.Dur)
	}

	// Golden comparison of the time-independent shape.
	shapes := make([]traceShape, len(out.TraceEvents))
	for i, ev := range out.TraceEvents {
		shapes[i] = ev.traceShape
	}
	got, err := json.MarshalIndent(shapes, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace shape drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
