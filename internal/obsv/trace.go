// Package obsv is the framework's observability layer: structured span
// tracing (exportable as Chrome trace-event JSON, viewable in Perfetto),
// power-of-two histograms for device-level distributions, and live
// introspection counters served over expvar + net/http/pprof.
//
// The design goal is "always-on cheap": every entry point tolerates a nil
// *Trace receiver and compiles down to a pointer test, so instrumented
// code pays near-zero overhead when tracing is disabled. When enabled, a
// span costs one short critical section on End.
package obsv

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one completed span, recorded in trace-relative time.
type Event struct {
	Name  string
	Cat   string
	Tid   int
	Start time.Duration
	Dur   time.Duration
	Args  []Arg
}

// Arg is one numeric span annotation (step index, record count, ...).
type Arg struct {
	Key string
	Val int64
}

// Trace collects completed spans. A nil *Trace is a valid no-op sink: all
// methods short-circuit, which is the disabled fast path instrumented code
// relies on. The zero value is not usable; call NewTrace.
type Trace struct {
	start time.Time

	mu     sync.Mutex
	events []Event
}

// NewTrace creates an empty trace whose clock starts now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Span is an open interval on a Trace. The zero Span (from a nil Trace)
// is a no-op. Spans are single-goroutine values; the Trace they complete
// onto is what synchronizes concurrent emitters.
type Span struct {
	tr    *Trace
	name  string
	cat   string
	tid   int
	start time.Duration
	args  []Arg
}

// Begin opens a span on the default engine timeline (tid 1).
func (t *Trace) Begin(cat, name string) Span {
	return t.BeginTid(cat, name, 1)
}

// BeginTid opens a span on an explicit timeline. Spans on one tid must
// nest by time containment for trace viewers to stack them; concurrent
// emitters should use distinct tids.
func (t *Trace) BeginTid(cat, name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, cat: cat, tid: tid, start: time.Since(t.start)}
}

// Arg attaches a numeric annotation to the span. No-op on a zero Span.
func (s *Span) Arg(key string, val int64) {
	if s.tr == nil {
		return
	}
	s.args = append(s.args, Arg{Key: key, Val: val})
}

// End completes the span and records it on the trace.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	ev := Event{
		Name:  s.name,
		Cat:   s.cat,
		Tid:   s.tid,
		Start: s.start,
		Dur:   time.Since(s.tr.start) - s.start,
		Args:  s.args,
	}
	s.tr.mu.Lock()
	s.tr.events = append(s.tr.events, ev)
	s.tr.mu.Unlock()
}

// Events returns a snapshot of the completed spans, in completion order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of completed spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is one trace-event in the Chrome/Perfetto JSON schema:
// "X" (complete) events carry ts+dur in microseconds; "M" (metadata)
// events name the process and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes the trace in Chrome trace-event JSON format,
// loadable by Perfetto (ui.perfetto.dev) and chrome://tracing. A nil
// trace writes a valid empty trace.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "mlvc"},
	})
	for _, ev := range events {
		dur := float64(ev.Dur) / float64(time.Microsecond)
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			Pid:  1,
			Tid:  ev.Tid,
			Ts:   float64(ev.Start) / float64(time.Microsecond),
			Dur:  &dur,
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]any, len(ev.Args))
			for _, a := range ev.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
