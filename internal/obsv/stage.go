package obsv

// Stage identifies the pipeline stage on whose behalf a device IO was
// issued. The engine tags the device with the current stage (and vertex
// interval) as it moves through a superstep; the device attributes every
// page read/written, its virtual service time, and the cache consults to
// the stage active when the IO happened (see ssd.Stats.Stages).
//
// Stage values are stable across releases: they index fixed-size arrays in
// snapshots and appear by name in JSON exports and OpenMetrics labels, so
// new stages are appended, never reordered.
type Stage uint8

const (
	// StageOther covers untagged IO: run setup, graph opening, value-file
	// initialization, final value loads, and CLI traffic outside a run.
	StageOther Stage = iota
	// StageVertex is vertex processing: value/adjacency/aux loads, the
	// parallel Process calls (whose sends append to the message logs), and
	// the dirty-page writebacks of a batch.
	StageVertex
	// StageSortGroup is the sort-and-group unit reading interval logs.
	StageSortGroup
	// StageRelog is the edge-log optimizer writing predicted-active
	// adjacency and flushing the log at the superstep boundary.
	StageRelog
	// StagePrefetch is background cache warming (pagecache.Prefetcher).
	StagePrefetch
	// StageCheckpoint is checkpoint commit and restore traffic.
	StageCheckpoint
	// StageScrub is device scrubbing. Scrub reads stores directly and
	// charges nothing to the virtual clock, so this stage stays zero on
	// the device; it exists so exports enumerate the whole pipeline.
	StageScrub
	// StageSpill is the external sort-group: run files written and merged
	// back when an interval log overflows the sort budget.
	StageSpill
	// StageBuild is graph construction (CSR build, generators).
	StageBuild
	// StageIngest is the streaming-ingest plane: WAL appends and replay,
	// and the crash-atomic delta merges that fold buffered mutations back
	// into the CSR files.
	StageIngest

	numStageSentinel
)

// NumStages is the number of defined stages; per-stage arrays are indexed
// by Stage and sized by it.
const NumStages = int(numStageSentinel)

var stageNames = [NumStages]string{
	"other", "vertex", "sortgroup", "relog", "prefetch",
	"checkpoint", "scrub", "spill", "build", "ingest",
}

// String returns the stage's stable lowercase name, used as the JSON
// "stage" field and the OpenMetrics label value.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the stable names of all stages in Stage order.
func StageNames() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}
