package obsv

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
)

// HistBuckets is the number of power-of-two buckets a Hist holds. Bucket 0
// counts the value 0; bucket i (i >= 1) counts values in [2^(i-1), 2^i - 1].
// 32 buckets cover everything below 2^31, far beyond any page count or
// microsecond latency the simulator produces.
const HistBuckets = 32

// Hist is a fixed-size power-of-two histogram. It is a plain value type —
// no pointers, no locks — so it embeds directly in stats structs that are
// snapshotted and subtracted (see ssd.Stats), and copies are cheap enough
// for per-superstep deltas. Callers synchronize access themselves, which
// matches how the device stats it extends are already guarded.
type Hist struct {
	N       uint64 // number of observations
	Sum     uint64 // sum of observed values
	Buckets [HistBuckets]uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	b := bits.Len64(v) // 0 for 0, floor(log2(v))+1 otherwise
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.N++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// Add accumulates o into h bucket-wise.
func (h *Hist) Add(o Hist) {
	h.N += o.N
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Sub returns h - o bucket-wise; o must be an earlier snapshot of the same
// histogram (the same contract as ssd.Stats.Sub).
func (h Hist) Sub(o Hist) Hist {
	out := Hist{N: h.N - o.N, Sum: h.Sum - o.Sum}
	for i := range h.Buckets {
		out.Buckets[i] = h.Buckets[i] - o.Buckets[i]
	}
	return out
}

// Mean returns the average observed value, or 0 for an empty histogram.
func (h Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// BucketUpper returns the largest value bucket i can hold.
func BucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// BucketLabel renders bucket i's value range ("0", "1", "2-3", "4-7", ...).
func BucketLabel(i int) string {
	switch i {
	case 0:
		return "0"
	case 1:
		return "1"
	default:
		return fmt.Sprintf("%d-%d", uint64(1)<<uint(i-1), BucketUpper(i))
	}
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// upper edge of the bucket the quantile falls in. Returns 0 for an empty
// histogram.
func (h Hist) Quantile(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.N))
	if rank >= h.N {
		rank = h.N - 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// Max returns the upper edge of the highest non-empty bucket.
func (h Hist) Max() uint64 {
	for i := HistBuckets - 1; i >= 0; i-- {
		if h.Buckets[i] > 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// String summarizes the distribution in one line.
func (h Hist) String() string {
	if h.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p90<=%d p99<=%d max<=%d",
		h.N, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
}

// histJSON is the compact wire form: summary quantiles plus only the
// non-empty buckets, keyed by their value-range label.
type histJSON struct {
	N       uint64            `json:"n"`
	Sum     uint64            `json:"sum"`
	Mean    float64           `json:"mean"`
	P50     uint64            `json:"p50"`
	P90     uint64            `json:"p90"`
	P99     uint64            `json:"p99"`
	Max     uint64            `json:"max"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON emits the compact summary form. Empty histograms marshal as
// {"n":0,...} with no bucket map, keeping per-superstep reports small.
func (h Hist) MarshalJSON() ([]byte, error) {
	out := histJSON{N: h.N, Sum: h.Sum, Mean: h.Mean(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99), Max: h.Max()}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if out.Buckets == nil {
			out.Buckets = make(map[string]uint64)
		}
		out.Buckets[BucketLabel(i)] = c
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores the counts from the compact form, so reports
// round-trip through their JSON export.
func (h *Hist) UnmarshalJSON(data []byte) error {
	var in histJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = Hist{N: in.N, Sum: in.Sum}
	for label, c := range in.Buckets {
		for i := 0; i < HistBuckets; i++ {
			if BucketLabel(i) == label {
				h.Buckets[i] = c
				break
			}
		}
	}
	return nil
}

// Labels returns the labels of all non-empty buckets in ascending order,
// with counts, for text-table rendering.
func (h Hist) Labels() string {
	var parts []string
	for i, c := range h.Buckets {
		if c > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", BucketLabel(i), c))
		}
	}
	return strings.Join(parts, " ")
}
