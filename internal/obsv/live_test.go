package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestLiveSingleton(t *testing.T) {
	a, b := Live(), Live()
	if a != b {
		t.Fatal("Live() returned distinct instances")
	}
	a.Superstep.Set(7)
	if b.Superstep.Value() != 7 {
		t.Fatal("vars not shared")
	}
}

func TestServeExpvarAndPprof(t *testing.T) {
	addr, closeFn, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	Live().Superstep.Set(3)

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if v, ok := vars["mlvc.superstep"].(float64); !ok || v != 3 {
		t.Fatalf("mlvc.superstep = %v", vars["mlvc.superstep"])
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
}
