package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/core"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/metrics"
	"multilogvc/internal/ssd"
	"multilogvc/internal/wal"
)

// Replication failover chaos: a primary and a warm-standby follower,
// each on its own disk-backed device (geometry chosen independently —
// replication ships logical WAL frames, never pages), with the primary
// killed at the worst possible moments. The soak drives the same
// mutation-stream oracle as the ingest chaos, extended with a second
// node: sequence numbers are identity, so stream[s-1] IS the mutation
// every node knows as seq s, and every node's edge multiset must equal
// the base graph plus the stream prefix up to its own AppliedSeq.

// FailoverChaosOutcome summarizes one replication chaos case.
type FailoverChaosOutcome struct {
	Seed            int64
	Schedule        string
	Acked           int  // mutations acknowledged by the primary
	Shipped         int  // records the follower applied via replication
	PrimaryCrashes  int  // primary kill -9 reopens
	FollowerCrashes int  // follower kill -9 reopens
	Promoted        bool // the finale promoted the follower to writable
	// Faults are the classified sentinel families hit along the way
	// ("replica_gap" is the terminal one: the primary's merge checkpoint
	// truncated frames the follower still needed, so it must re-seed).
	Faults []string
}

// FailoverChaosCase runs one randomized replication failover case over
// two disk-backed devices. A WAL-backed primary ingests random mutation
// batches while frames ship to a follower through the real wire format
// (EncodeFrames → TailDecoder) in random chunk sizes, cut mid-stream at
// random; either node is killed (device abandoned, reopened cold) at
// random points — mid-batch, mid-merge, mid-ship. The invariant is the
// replication contract: every node's recovered edge multiset is exactly
// base + stream[:AppliedSeq] — never a gap, never a duplicate, never a
// rewound cursor — and at the end the follower is promoted, takes local
// writes that extend the same sequence stream, and answers BFS
// bit-identically to a clean single-node graph built from the oracle.
// Any failure must be a classified sentinel.
func FailoverChaosCase(seed int64, primaryDir, followerDir string) (FailoverChaosOutcome, error) {
	rng := rand.New(rand.NewSource(seed))
	out := FailoverChaosOutcome{Seed: seed}
	fail := func(format string, args ...interface{}) (FailoverChaosOutcome, error) {
		return out, fmt.Errorf("failover seed %d [%s]: %s", seed, out.Schedule, fmt.Sprintf(format, args...))
	}

	// Random base graph, shared by both nodes (a follower is seeded from
	// a copy of the primary's data).
	var edges []graphio.Edge
	var err error
	if rng.Intn(2) == 0 {
		edges, err = gen.Uniform(uint32(20+rng.Intn(80)), 60+rng.Intn(200), rng.Int63(), false)
	} else {
		edges, err = gen.Grid(3+rng.Intn(6), 3+rng.Intn(6))
	}
	if err != nil {
		return out, fmt.Errorf("gen: %w", err)
	}
	n := graphio.NumVertices(edges)
	if n < 2 {
		return out, nil
	}

	// Independent geometry per node: frames are logical, so a follower
	// need not share the primary's page size, channel count, or interval
	// layout.
	pCfg := ssd.Config{PageSize: 128 << rng.Intn(3), Channels: 1 + rng.Intn(4), Dir: primaryDir}
	fCfg := ssd.Config{PageSize: 128 << rng.Intn(3), Channels: 1 + rng.Intn(4), Dir: followerDir}
	flushEvery := time.Duration(0)
	if rng.Intn(3) == 0 {
		flushEvery = 200 * time.Microsecond
		out.Schedule = "window"
	} else {
		out.Schedule = "sync"
	}

	for _, b := range []struct {
		cfg    ssd.Config
		budget int64
	}{{pCfg, int64(192 + rng.Intn(1024))}, {fCfg, int64(192 + rng.Intn(1024))}} {
		dev, err := ssd.Open(b.cfg)
		if err != nil {
			return out, fmt.Errorf("device: %w", err)
		}
		if _, err := csr.Build(dev, "rep", edges, csr.BuildOptions{
			NumVertices: n, IntervalBudget: b.budget,
		}); err != nil {
			return out, fmt.Errorf("build: %w", err)
		}
	}

	reopen := func(cfg ssd.Config) (*ssd.Device, *csr.Graph, error) {
		dev, err := ssd.Open(cfg)
		if err != nil {
			return nil, nil, err
		}
		g, err := csr.OpenIngest(dev, "rep", csr.IngestOptions{
			WAL: true, FlushEvery: flushEvery, MergeThreshold: 1 << 30,
		})
		if err != nil {
			return nil, nil, err
		}
		return dev, g, nil
	}
	pDev, pg, err := reopen(pCfg)
	if err != nil {
		return fail("primary open: %v", err)
	}
	_, fg, err := reopen(fCfg)
	if err != nil {
		return fail("follower open: %v", err)
	}

	// The oracle: stream[s-1] is the mutation every node calls seq s.
	baseBag := make(edgeBag, len(edges))
	for _, e := range edges {
		baseBag[e]++
	}
	var stream []csr.Mutation
	prefixBag := func(seq uint64) edgeBag {
		b := baseBag.clone()
		for _, m := range stream[:seq] {
			b.apply(m)
		}
		return b
	}

	// checkNode asserts a node's durable truth: its edges are exactly
	// base + stream[:AppliedSeq].
	checkNode := func(g *csr.Graph, who string) error {
		a := g.AppliedSeq()
		if a > uint64(len(stream)) {
			return fmt.Errorf("%s applied seq %d beyond the %d-mutation oracle stream", who, a, len(stream))
		}
		got, err := g.CurrentEdges()
		if err != nil {
			return fmt.Errorf("%s CurrentEdges: %w", who, err)
		}
		if !edgeListEqual(got, prefixBag(a).edges()) {
			return fmt.Errorf("%s state at applied seq %d diverged from the oracle prefix (%d edges)", who, a, len(got))
		}
		return nil
	}

	crashPrimary := func(inflight []csr.Mutation) error {
		out.PrimaryCrashes++
		var err error
		pDev, pg, err = reopen(pCfg)
		if err != nil {
			return fmt.Errorf("primary reopen: %w", err)
		}
		got, err := pg.CurrentEdges()
		if err != nil {
			return fmt.Errorf("primary CurrentEdges after crash: %w", err)
		}
		k, ok := matchPrefix(got, prefixBag(uint64(len(stream))), inflight)
		if !ok {
			return fmt.Errorf("primary recovered state is not oracle+prefix of the in-flight batch")
		}
		stream = append(stream, inflight[:k]...)
		if pg.AppliedSeq() != uint64(len(stream)) {
			return fmt.Errorf("primary applied seq %d after crash, oracle stream has %d", pg.AppliedSeq(), len(stream))
		}
		return nil
	}

	crashFollower := func() error {
		out.FollowerCrashes++
		var err error
		_, fg, err = reopen(fCfg)
		if err != nil {
			return fmt.Errorf("follower reopen: %w", err)
		}
		return checkNode(fg, "follower")
	}

	// ship moves up to max frames primary→follower through the wire
	// format, in random chunks; cut drops a random suffix of the
	// encoding mid-stream (a connection dying mid-frame), which must
	// leave the follower holding a clean prefix.
	ship := func(max int, cut bool) error {
		from := fg.AppliedSeq() + 1
		recs, _, err := pg.ReplicationFrames(from, max)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return nil
		}
		buf := wal.EncodeFrames(recs)
		if cut {
			buf = buf[:rng.Intn(len(buf)+1)]
		}
		dec := wal.NewTailDecoder(from)
		var got []wal.Record
		for len(buf) > 0 {
			k := 1 + rng.Intn(len(buf))
			part, err := dec.Feed(buf[:k])
			if err != nil {
				return fmt.Errorf("tail decode: %w", err)
			}
			got = append(got, part...)
			buf = buf[k:]
		}
		threshold := 1 << 30
		if rng.Intn(8) == 0 {
			threshold = 1 // force a crash-atomic merge (and FoldedSeq persist) on the follower
		}
		applied, err := fg.ApplyReplicated(got, threshold)
		out.Shipped += applied
		return err
	}

	armed := false
	rounds := 25 + rng.Intn(35)
	for r := 0; r < rounds; r++ {
		// Arm a mid-IO crash on the primary at random: the next batch (or
		// its merge) dies partway and the primary is killed there.
		if !armed && rng.Intn(10) == 0 {
			pDev.FailAfter(3+rng.Int63n(80), nil)
			armed = true
		}

		// The primary never merges mid-case outside the gap probe below: a
		// merge truncates the WAL through its fold, which permanently gaps
		// any follower that is even one frame behind. (Follower-side
		// merges, which gap nobody, are forced at random inside ship.)
		batch := make([]csr.Mutation, 1+rng.Intn(6))
		for i := range batch {
			batch[i] = csr.Mutation{
				Del: rng.Intn(3) == 0,
				Src: uint32(rng.Intn(int(n))),
				Dst: uint32(rng.Intn(int(n))),
			}
		}
		if err := pg.ApplyMutations(batch, 1<<30); err != nil {
			family := classify(err)
			if family == "" {
				return fail("unclassified primary ingest failure: %v", err)
			}
			out.Faults = append(out.Faults, family)
			if err := crashPrimary(batch); err != nil {
				return fail("%v", err)
			}
			armed = false
			continue
		}
		stream = append(stream, batch...)
		out.Acked += len(batch)

		// Ship some of the backlog, sometimes cut mid-stream.
		if rng.Intn(3) != 0 {
			if err := ship(1+rng.Intn(64), rng.Intn(4) == 0); err != nil {
				if errors.Is(err, wal.ErrSeqGap) {
					return fail("unexpected replication gap: %v", err)
				}
				family := classify(err)
				if family == "" {
					return fail("unclassified ship failure: %v", err)
				}
				out.Faults = append(out.Faults, family)
				if err := crashFollower(); err != nil {
					return fail("%v", err)
				}
			}
		}

		// Clean kill -9 of either node at random.
		if !armed && rng.Intn(12) == 0 {
			if err := crashPrimary(nil); err != nil {
				return fail("%v", err)
			}
		}
		if rng.Intn(12) == 0 {
			if err := crashFollower(); err != nil {
				return fail("%v", err)
			}
		}

		// Deliberate gap probe: merge the primary while the follower is
		// behind — sometimes with a mid-merge kill armed, so the fold dies
		// partway and the reopen redoes (or abandons) it. A completed fold
		// truncates the frames the follower still needs, so the next ship
		// MUST report wal.ErrSeqGap — the terminal, classified "re-seed me"
		// outcome — and the follower must still hold a clean oracle prefix.
		if !armed && rng.Intn(30) == 0 && fg.AppliedSeq() < pg.AppliedSeq() {
			midMergeKill := rng.Intn(2) == 0
			if midMergeKill {
				pDev.FailAfter(2+rng.Int63n(20), nil)
			}
			mergeErr := pg.MergeInterval(0)
			if mergeErr != nil {
				if classify(mergeErr) == "" {
					return fail("unclassified primary fold failure: %v", mergeErr)
				}
				// Died mid-merge: kill the primary there and reopen, which
				// replays the WAL and redoes any committed merge manifest.
				if err := crashPrimary(nil); err != nil {
					return fail("%v", err)
				}
			} else if midMergeKill {
				pDev.FailAfter(-1, nil)
			}
			err := ship(64, false)
			switch {
			case errors.Is(err, wal.ErrSeqGap):
				// The fold completed (directly or via redo): terminal gap.
				out.Faults = append(out.Faults, "replica_gap")
				out.Schedule += "+gap"
				if err := checkNode(fg, "follower"); err != nil {
					return fail("%v", err)
				}
				return out, nil
			case err == nil:
				// The kill landed before the fold committed, so the WAL
				// survived untruncated and the ship went through: continue.
			default:
				return fail("ship after primary fold: %v", err)
			}
		}
	}

	// Finale: disarm, let the follower catch up fully, kill the primary
	// for good, promote the follower, and prove the promoted node is the
	// primary's bit-identical successor.
	pDev.FailAfter(-1, nil)
	if err := crashPrimary(nil); err != nil {
		return fail("%v", err)
	}
	for fg.AppliedSeq() < pg.AppliedSeq() {
		if err := ship(64, false); err != nil {
			return fail("final catch-up: %v", err)
		}
	}
	// The primary dies here (abandoned, never reopened). Promote: the
	// follower takes local writes that extend the same sequence stream.
	out.Promoted = true
	post := make([]csr.Mutation, 1+rng.Intn(6))
	for i := range post {
		post[i] = csr.Mutation{
			Del: rng.Intn(3) == 0,
			Src: uint32(rng.Intn(int(n))),
			Dst: uint32(rng.Intn(int(n))),
		}
	}
	if err := fg.ApplyMutations(post, 1<<30); err != nil {
		return fail("post-promotion write: %v", err)
	}
	stream = append(stream, post...)
	out.Acked += len(post)
	if fg.AppliedSeq() != uint64(len(stream)) {
		return fail("promoted node's seq %d does not extend the stream (%d)", fg.AppliedSeq(), len(stream))
	}
	if err := checkNode(fg, "promoted follower"); err != nil {
		return fail("%v", err)
	}

	// BFS on the promoted node (CSR + delta overlay + its whole crash
	// history) must be bit-identical to a clean single-node graph built
	// from the oracle in one shot.
	oracleDev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 2})
	og, err := csr.Build(oracleDev, "oracle", prefixBag(uint64(len(stream))).edges(), csr.BuildOptions{
		NumVertices: n, IntervalBudget: 4096,
	})
	if err != nil {
		return fail("oracle build: %v", err)
	}
	src := uint32(rng.Intn(int(n)))
	bfsRun := 0
	runBFS := func(g *csr.Graph) ([]uint32, error) {
		bfsRun++
		res, err := core.New(g, core.Config{
			MemoryBudget: 8 << 20, MaxSupersteps: 100, Ephemeral: true,
			RunTag: fmt.Sprintf("failover-%d-%d", seed, bfsRun),
		}).Run(&apps.BFS{Source: src})
		if err != nil {
			return nil, err
		}
		return res.Values, nil
	}
	gotVals, err := runBFS(fg)
	if err != nil {
		return fail("BFS on promoted node: %v", err)
	}
	wantVals, err := runBFS(og)
	if err != nil {
		return fail("BFS on oracle: %v", err)
	}
	if len(gotVals) != len(wantVals) {
		return fail("BFS value count %d vs oracle %d", len(gotVals), len(wantVals))
	}
	for v := range gotVals {
		if gotVals[v] != wantVals[v] {
			return fail("BFS diverged from single-node oracle at vertex %d: %d vs %d", v, gotVals[v], wantVals[v])
		}
	}
	return out, nil
}

// Replication measures the tentpole's two operational numbers: how fast
// a follower catches up through the wire format (frames/s over encode →
// chunked decode → ApplyReplicated), and the failover window — the time
// from "primary stops" to "promoted follower is caught up and has acked
// its first local write" — at several lag depths. Print-only: wall
// times vary with the host, so this experiment feeds no regression
// snapshot.
func Replication(size Size) (*metrics.Table, error) {
	ds, err := CFMini(size)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("replication: catch-up rate and failover window on %s", ds.Name),
		Headers: []string{"phase", "frames", "KiB shipped", "wall", "frames/s"},
	}

	rng := rand.New(rand.NewSource(7))
	mkNode := func() (*csr.Graph, error) {
		dev := ssd.MustOpen(ssd.Config{PageSize: 4096, Channels: 4})
		if _, err := csr.Build(dev, "rep", ds.Edges, csr.BuildOptions{
			NumVertices: ds.N, IntervalBudget: 64 << 10,
		}); err != nil {
			return nil, err
		}
		return csr.OpenIngest(dev, "rep", csr.IngestOptions{WAL: true, MergeThreshold: 1 << 30})
	}
	pg, err := mkNode()
	if err != nil {
		return nil, err
	}
	fg, err := mkNode()
	if err != nil {
		return nil, err
	}

	mutate := func(g *csr.Graph, k int) error {
		for k > 0 {
			b := 64
			if k < b {
				b = k
			}
			batch := make([]csr.Mutation, b)
			for i := range batch {
				batch[i] = csr.Mutation{
					Del: rng.Intn(4) == 0,
					Src: uint32(rng.Intn(int(ds.N))),
					Dst: uint32(rng.Intn(int(ds.N))),
				}
			}
			if err := g.ApplyMutations(batch, 1<<30); err != nil {
				return err
			}
			k -= b
		}
		return nil
	}

	// drain ships primary→follower through the wire format until the
	// follower is caught up, returning frames moved and bytes on the wire.
	drain := func() (int, int, error) {
		frames, bytes := 0, 0
		for fg.AppliedSeq() < pg.AppliedSeq() {
			recs, _, err := pg.ReplicationFrames(fg.AppliedSeq()+1, 1024)
			if err != nil {
				return frames, bytes, err
			}
			buf := wal.EncodeFrames(recs)
			bytes += len(buf)
			dec := wal.NewTailDecoder(fg.AppliedSeq() + 1)
			got, err := dec.Feed(buf)
			if err != nil {
				return frames, bytes, err
			}
			applied, err := fg.ApplyReplicated(got, 1<<30)
			frames += applied
			if err != nil {
				return frames, bytes, err
			}
		}
		return frames, bytes, nil
	}

	row := func(phase string, frames, bytes int, wall time.Duration) {
		fps := "-"
		if wall > 0 && frames > 0 {
			fps = fmt.Sprintf("%.0f", float64(frames)/wall.Seconds())
		}
		t.AddRow(phase, fmt.Sprint(frames), fmt.Sprintf("%.1f", float64(bytes)/1024), metrics.D(wall), fps)
	}

	// Catch-up: a deep backlog shipped in one sitting.
	backlog := 2000 << (2 * uint(size))
	if err := mutate(pg, backlog); err != nil {
		return nil, err
	}
	start := time.Now()
	frames, bytes, err := drain()
	if err != nil {
		return nil, err
	}
	row("catch-up", frames, bytes, time.Since(start))

	// Failover window at increasing lag: primary stops with L unshipped
	// frames; the window is drain + the promoted node's first local ack.
	for _, lag := range []int{0, 256, 2048} {
		if err := mutate(pg, lag); err != nil {
			return nil, err
		}
		start := time.Now()
		frames, bytes, err := drain()
		if err != nil {
			return nil, err
		}
		if err := fg.ApplyMutations([]csr.Mutation{{Src: 1, Dst: 2}}, 1<<30); err != nil {
			return nil, fmt.Errorf("post-promotion ack: %w", err)
		}
		window := time.Since(start)
		// Re-level the pair for the next lag depth: the promoted node's
		// local write is not in the primary's stream, so rebuild the
		// follower side fresh.
		row(fmt.Sprintf("failover lag=%d", lag), frames, bytes, window)
		if fg, err = mkNode(); err != nil {
			return nil, err
		}
		if _, _, err := drain(); err != nil {
			return nil, err
		}
	}
	return t, nil
}
