package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/graphio"
	"multilogvc/internal/metrics"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// MaxSupersteps is the paper's evaluation cap.
const MaxSupersteps = 15

// AppSet returns the six evaluated programs tuned for a dataset of n
// vertices: random-walk sampling is scaled so walker density matches the
// paper's every-1000th-vertex sampling on billion-vertex graphs.
func AppSet(n uint32) []vc.Program {
	sample := n / 64
	if sample == 0 {
		sample = 1
	}
	return []vc.Program{
		&apps.BFS{Source: 0},
		&apps.PageRank{},
		&apps.CDLP{},
		&apps.Coloring{},
		&apps.MIS{Seed: 42},
		&apps.RandomWalk{SampleEvery: sample, WalkLength: 10, Seed: 42},
	}
}

// NonMergeable returns the programs GraFBoost cannot run unmodified.
func NonMergeable(n uint32) []vc.Program {
	all := AppSet(n)
	return all[2:] // CDLP, GC, MIS, RW
}

// Table1 reproduces Table I: the dataset inventory.
func Table1(size Size) (*metrics.Table, error) {
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "Table I: graph datasets (scaled analogs)",
		Headers: []string{"dataset", "vertices", "edges", "avg degree", "paper analog"},
	}
	analog := map[string]string{
		"cf-mini":  "com-friendster (124.8M v, 3.6B e, deg 29)",
		"yws-mini": "YahooWebScope (1.4B v, 12.9B e, deg 9)",
	}
	for _, ds := range dss {
		t.AddRow(ds.Name, fmt.Sprint(ds.N), fmt.Sprint(len(ds.Edges)),
			metrics.F(ds.AvgDegree()), analog[ds.Name])
	}
	return t, nil
}

// Fig2 reproduces Fig 2: active vertices and active edges per superstep of
// graph coloring, as fractions of the totals.
func Fig2(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig 2: active vertices/edges over supersteps (graph coloring)",
		Headers: []string{"dataset", "superstep", "active/V", "updates/E"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		rep, _, err := RunMLVC(env, &apps.Coloring{}, RunOpts{MaxSupersteps: MaxSupersteps})
		if err != nil {
			return nil, err
		}
		for _, ss := range rep.Supersteps {
			t.AddRow(ds.Name, fmt.Sprint(ss.Superstep),
				metrics.F(float64(ss.Active)/float64(ds.N)),
				metrics.F(float64(ss.MsgsSent)/float64(len(ds.Edges))))
		}
	}
	return t, nil
}

// Fig3 reproduces Fig 3: the fraction of touched graph pages that are
// inefficiently used (>0%, <10% utilization), per application.
func Fig3(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig 3: fraction of touched graph pages with <10% utilization",
		Headers: []string{"dataset", "app", "inefficient/touched"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		for _, prog := range AppSet(ds.N) {
			rep, _, err := RunMLVC(env, prog, RunOpts{MaxSupersteps: MaxSupersteps})
			if err != nil {
				return nil, err
			}
			var ineff, touched uint64
			for _, ss := range rep.Supersteps {
				ineff += ss.InefficientPages
				touched += ss.UtilPagesTouched
			}
			frac := 0.0
			if touched > 0 {
				frac = float64(ineff) / float64(touched)
			}
			t.AddRow(ds.Name, prog.Name(), metrics.F(frac))
		}
	}
	return t, nil
}

// Fig5 reproduces Fig 5a/5b/5c: BFS runs that stop after traversing a
// given fraction of the graph, reporting speedup over GraphChi, the
// page-access ratio, and MultiLogVC's storage-time share.
func Fig5(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title: "Fig 5: BFS vs traversal fraction (a: speedup, b: page ratio, c: storage share)",
		Headers: []string{"dataset", "fraction", "speedup", "page ratio",
			"mlvc storage%", "graphchi storage%"},
	}
	wf, err := WebFrontier(size)
	if err != nil {
		return nil, err
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	// The web-frontier analog resolves traversal fractions into distinct
	// stopping supersteps; the power-law analogs are reported too, but
	// their tiny diameter clumps the fractions (a scale artifact).
	for _, ds := range append([]Dataset{wf}, dss...) {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			target := uint64(frac * float64(ds.N))
			stop := func(step int, cum uint64) bool { return cum >= target }
			opts := RunOpts{MaxSupersteps: 256, StopAfter: stop}
			ml, _, err := RunMLVC(env, &apps.BFS{Source: 0}, opts)
			if err != nil {
				return nil, err
			}
			gc, _, err := RunGraphChi(env, &apps.BFS{Source: 0}, opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(ds.Name, metrics.F(frac),
				metrics.F(metrics.Speedup(gc, ml)),
				metrics.F(metrics.PageRatio(gc, ml)),
				metrics.F(ml.StorageFraction()*100),
				metrics.F(gc.StorageFraction()*100))
		}
	}
	return t, nil
}

// Fig6Result carries one app's cross-engine reports for Fig 6/7.
type Fig6Result struct {
	Dataset  string
	App      string
	MLVC     *metrics.Report
	GraphChi *metrics.Report
}

// Fig6Runs executes every application on both engines.
func Fig6Runs(size Size) ([]Fig6Result, error) {
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	var out []Fig6Result
	for _, ds := range dss {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		for _, prog := range AppSet(ds.N) {
			opts := RunOpts{MaxSupersteps: MaxSupersteps}
			ml, _, err := RunMLVC(env, prog, opts)
			if err != nil {
				return nil, err
			}
			gc, _, err := RunGraphChi(env, prog, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig6Result{Dataset: ds.Name, App: prog.Name(), MLVC: ml, GraphChi: gc})
		}
	}
	return out, nil
}

// Fig6 reproduces Fig 6: per-application speedup over GraphChi.
func Fig6(runs []Fig6Result) *metrics.Table {
	t := &metrics.Table{
		Title:   "Fig 6: application speedup over GraphChi (total modeled time)",
		Headers: []string{"dataset", "app", "speedup", "page ratio", "supersteps"},
	}
	for _, r := range runs {
		t.AddRow(r.Dataset, r.App,
			metrics.F(metrics.Speedup(r.GraphChi, r.MLVC)),
			metrics.F(metrics.PageRatio(r.GraphChi, r.MLVC)),
			fmt.Sprint(len(r.MLVC.Supersteps)))
	}
	return t
}

// Fig7 reproduces Fig 7: per-superstep speedup series for the iterative
// applications.
func Fig7(runs []Fig6Result) *metrics.Table {
	t := &metrics.Table{
		Title:   "Fig 7: per-superstep speedup over GraphChi",
		Headers: []string{"dataset", "app", "superstep", "speedup"},
	}
	want := map[string]bool{"pagerank": true, "cdlp": true, "coloring": true, "mis": true}
	for _, r := range runs {
		if !want[r.App] {
			continue
		}
		n := len(r.MLVC.Supersteps)
		if m := len(r.GraphChi.Supersteps); m < n {
			n = m
		}
		for i := 0; i < n; i++ {
			mlT := r.MLVC.Supersteps[i].Total()
			gcT := r.GraphChi.Supersteps[i].Total()
			sp := 0.0
			if mlT > 0 {
				sp = float64(gcT) / float64(mlT)
			}
			t.AddRow(r.Dataset, r.App, fmt.Sprint(i), metrics.F(sp))
		}
	}
	return t
}

// Fig8 reproduces Fig 8: PageRank against GraFBoost. Following §VIII, the
// comparison covers the first iteration (GraFBoost cannot load only
// active graph data), here the first two supersteps so the log sort is
// exercised.
func Fig8(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig 8: MultiLogVC speedup over GraFBoost (pagerank, first iteration)",
		Headers: []string{"dataset", "speedup", "page ratio"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		opts := RunOpts{MaxSupersteps: 2}
		ml, _, err := RunMLVC(env, &apps.PageRank{}, opts)
		if err != nil {
			return nil, err
		}
		gb, _, err := RunGraFBoost(env, &apps.PageRank{}, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(ds.Name, metrics.F(metrics.Speedup(gb, ml)), metrics.F(metrics.PageRatio(gb, ml)))
	}
	return t, nil
}

// AdaptedGC reproduces the §VIII adapted-GraFBoost comparison: graph
// coloring against a single-log engine that must keep every message.
func AdaptedGC(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Adapted GraFBoost: graph coloring speedup (paper: 2.72x CF, 2.67x YWS)",
		Headers: []string{"dataset", "speedup"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		opts := RunOpts{MaxSupersteps: MaxSupersteps}
		ml, _, err := RunMLVC(env, &apps.Coloring{}, opts)
		if err != nil {
			return nil, err
		}
		gb, _, err := RunGraFBoost(env, &apps.Coloring{}, RunOpts{MaxSupersteps: MaxSupersteps, Adapted: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(ds.Name, metrics.F(metrics.Speedup(gb, ml)))
	}
	return t, nil
}

// Fig9 reproduces Fig 9: edge-log predictor accuracy — the share of each
// superstep's inefficient pages that had been predicted (paper avg: 34%).
func Fig9(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig 9: predicted inefficient pages / actual inefficient pages",
		Headers: []string{"dataset", "app", "accuracy%"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		for _, prog := range AppSet(ds.N) {
			rep, _, err := RunMLVC(env, prog, RunOpts{MaxSupersteps: MaxSupersteps})
			if err != nil {
				return nil, err
			}
			var correct, ineff uint64
			for _, ss := range rep.Supersteps[1:] { // superstep 0 has no history
				correct += ss.CorrectPredicted
				ineff += ss.InefficientPages
			}
			acc := 0.0
			if ineff > 0 {
				acc = 100 * float64(correct) / float64(ineff)
			}
			t.AddRow(ds.Name, prog.Name(), metrics.F(acc))
		}
	}
	return t, nil
}

// Fig10 reproduces Fig 10: MIS speedup over GraphChi as the memory budget
// scales 1x/4x/8x (the paper's 1/4/8 GB).
func Fig10(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig 10: MIS speedup vs memory budget",
		Headers: []string{"dataset", "budget x", "speedup"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		base := int64(0)
		for _, mult := range []int64{1, 4, 8} {
			// Smaller pages keep shard window blocks well above the page
			// size at every budget, as on the paper's real hardware where
			// shards are hundreds of MB; otherwise the ×1 budget would
			// punish GraphChi with page-rounding the paper never saw.
			env, err := Prepare(ds, EnvOptions{MemBudget: base * mult, PageSize: 1024})
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = env.MemBudget // resolved default
				env, err = Prepare(ds, EnvOptions{MemBudget: base, PageSize: 1024})
				if err != nil {
					return nil, err
				}
			}
			prog := &apps.MIS{Seed: 42}
			opts := RunOpts{MaxSupersteps: MaxSupersteps}
			ml, _, err := RunMLVC(env, prog, opts)
			if err != nil {
				return nil, err
			}
			gc, _, err := RunGraphChi(env, prog, opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(ds.Name, fmt.Sprint(mult), metrics.F(metrics.Speedup(gc, ml)))
		}
	}
	return t, nil
}

// Ablation measures the engine's own design choices: edge log, combiner
// fast path, and interval fusing.
func Ablation(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Ablation: MultiLogVC design choices (time with feature off / time with on)",
		Headers: []string{"dataset", "feature", "app", "off/on"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		type variant struct {
			feature string
			prog    vc.Program
			off     RunOpts
		}
		sample := ds.N / 64
		if sample == 0 {
			sample = 1
		}
		variants := []variant{
			{"edge-log", &apps.BFS{Source: 0}, RunOpts{DisableEdgeLog: true}},
			{"edge-log", &apps.RandomWalk{SampleEvery: sample, WalkLength: 10, Seed: 42}, RunOpts{DisableEdgeLog: true}},
			{"combiner", &apps.PageRank{}, RunOpts{DisableCombiner: true}},
			{"fusing", &apps.PageRank{}, RunOpts{DisableFusing: true}},
		}
		for _, v := range variants {
			on := RunOpts{MaxSupersteps: MaxSupersteps}
			off := v.off
			off.MaxSupersteps = MaxSupersteps
			onRep, _, err := RunMLVC(env, v.prog, on)
			if err != nil {
				return nil, err
			}
			offRep, _, err := RunMLVC(env, v.prog, off)
			if err != nil {
				return nil, err
			}
			ratio := 0.0
			if onRep.TotalTime() > 0 {
				ratio = float64(offRep.TotalTime()) / float64(onRep.TotalTime())
			}
			t.AddRow(ds.Name, v.feature, v.prog.Name(), metrics.F(ratio))
		}
	}
	return t, nil
}

// Extended measures the extension applications (SSSP over weighted
// graphs, WCC, k-core) across engines — not paper figures, but the same
// cross-engine protocol applied to the framework's added surface.
func Extended(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Extended apps: speedup over GraphChi (SSSP weighted, WCC, k-core)",
		Headers: []string{"dataset", "app", "speedup", "page ratio"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		// WCC and k-core on the unweighted graph.
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		for _, prog := range []vc.Program{&apps.WCC{}, &apps.KCore{K: 4}} {
			opts := RunOpts{MaxSupersteps: MaxSupersteps}
			ml, _, err := RunMLVC(env, prog, opts)
			if err != nil {
				return nil, err
			}
			gc, _, err := RunGraphChi(env, prog, opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(ds.Name, prog.Name(),
				metrics.F(metrics.Speedup(gc, ml)),
				metrics.F(metrics.PageRatio(gc, ml)))
		}

		// SSSP on the weighted variant (symmetric pseudo-random weights).
		wedges := graphio.AttachWeights(ds.Edges, func(s, d uint32) uint32 {
			if s > d {
				s, d = d, s
			}
			return uint32(vc.Hash64(uint64(s), uint64(d))%16) + 1
		})
		wenv, err := PrepareWeighted(Dataset{Name: ds.Name, Edges: ds.Edges, N: ds.N}, wedges, EnvOptions{})
		if err != nil {
			return nil, err
		}
		prog := &apps.SSSP{Source: 0}
		opts := RunOpts{MaxSupersteps: MaxSupersteps}
		ml, _, err := RunMLVC(wenv, prog, opts)
		if err != nil {
			return nil, err
		}
		gc, _, err := RunGraphChiWeighted(wenv, wedges, prog, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(ds.Name, prog.Name(),
			metrics.F(metrics.Speedup(gc, ml)),
			metrics.F(metrics.PageRatio(gc, ml)))
	}
	return t, nil
}

// IOBreakdown attributes MultiLogVC's device traffic to its storage
// structures (CSR graph data, update logs, edge log, vertex values, aux
// state) using the device's per-file counters — the kind of analysis the
// paper's Fig 4 memory-layout discussion implies.
func IOBreakdown(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "MultiLogVC IO by structure (pages read+written)",
		Headers: []string{"dataset", "app", "graph", "update logs", "edge log", "values", "aux"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	classify := func(name string) string {
		switch {
		case strings.Contains(name, ".mlog."):
			return "mlog"
		case strings.Contains(name, ".elog"):
			return "elog"
		case strings.Contains(name, ".values"):
			return "values"
		case strings.Contains(name, ".aux."):
			return "aux"
		case strings.Contains(name, ".rowptr.") || strings.Contains(name, ".colidx.") || strings.Contains(name, ".val."):
			return "graph"
		default:
			return "other"
		}
	}
	for _, ds := range dss {
		for _, prog := range []vc.Program{&apps.BFS{Source: 0}, &apps.CDLP{}} {
			env, err := Prepare(ds, EnvOptions{})
			if err != nil {
				return nil, err
			}
			if _, _, err := RunMLVC(env, prog, RunOpts{MaxSupersteps: MaxSupersteps}); err != nil {
				return nil, err
			}
			sums := map[string]uint64{}
			for name, st := range env.Dev.StatsByFile() {
				sums[classify(name)] += st.PagesRead + st.PagesWritten
			}
			t.AddRow(ds.Name, prog.Name(),
				fmt.Sprint(sums["graph"]), fmt.Sprint(sums["mlog"]),
				fmt.Sprint(sums["elog"]), fmt.Sprint(sums["values"]),
				fmt.Sprint(sums["aux"]))
		}
	}
	return t, nil
}

// CheckpointOverhead measures the cost of superstep checkpointing:
// PageRank with no checkpoints, checkpoints every superstep (K=1), and
// every fifth superstep (K=5). Overhead is the increase in total virtual
// device time relative to the K=0 baseline.
func CheckpointOverhead(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Checkpoint overhead (pagerank)",
		Headers: []string{"dataset", "K", "ckpts", "ckpt pages", "pages w", "ckpt time", "storage", "overhead"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		var base float64
		for _, every := range []int{0, 1, 5} {
			env, err := Prepare(ds, EnvOptions{})
			if err != nil {
				return nil, err
			}
			rep, _, err := RunMLVC(env, &apps.PageRank{},
				RunOpts{MaxSupersteps: MaxSupersteps, CheckpointEvery: every})
			if err != nil {
				return nil, err
			}
			storage := float64(rep.StorageTime)
			overhead := "-"
			if every == 0 {
				base = storage
			} else if base > 0 {
				overhead = fmt.Sprintf("+%.1f%%", 100*(storage-base)/base)
			}
			t.AddRow(ds.Name, fmt.Sprint(every), fmt.Sprint(rep.Checkpoints),
				fmt.Sprint(rep.CheckpointPages), fmt.Sprint(rep.PagesWritten),
				metrics.D(rep.CheckpointTime), metrics.D(rep.StorageTime), overhead)
		}
	}
	return t, nil
}

// Integrity measures the cost of page-checksum maintenance: PageRank with
// verification on (the default) against the same run with NoVerify. The
// checksum work is host-side CRC32C, so the overhead shows up in measured
// wall time, not in the virtual storage clock.
func Integrity(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Checksum overhead (pagerank)",
		Headers: []string{"dataset", "verify", "pages r", "pages w", "corrupt", "storage", "wall", "overhead"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		var base float64
		for _, noVerify := range []bool{true, false} {
			env, err := Prepare(ds, EnvOptions{NoVerify: noVerify})
			if err != nil {
				return nil, err
			}
			rep, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: MaxSupersteps})
			if err != nil {
				return nil, err
			}
			wall := float64(rep.WallTime)
			overhead := "-"
			if noVerify {
				base = wall
			} else if base > 0 {
				overhead = fmt.Sprintf("%+.1f%%", 100*(wall-base)/base)
			}
			t.AddRow(ds.Name, fmt.Sprint(!noVerify),
				fmt.Sprint(rep.PagesRead), fmt.Sprint(rep.PagesWritten),
				fmt.Sprint(rep.CorruptPages),
				metrics.D(rep.StorageTime), metrics.D(rep.WallTime), overhead)
		}
	}
	return t, nil
}

// SpillOverhead measures the sort-budget spill path: PageRank with an
// unconstrained sort budget against sort budgets that force a growing
// share of interval logs through the external sort-group. Values are
// asserted bit-identical, so the table reports pure overhead: extra pages
// written (sorted runs), extra storage time, and the spill volume.
func SpillOverhead(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Sort-budget spill overhead (pagerank)",
		Headers: []string{"dataset", "budget", "spills", "spill MB", "pages w", "storage", "overhead"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		var base float64
		var want []uint32
		for _, budget := range []int64{0, 64 << 10, 8 << 10, 1 << 10} {
			env, err := Prepare(ds, EnvOptions{})
			if err != nil {
				return nil, err
			}
			rep, got, err := RunMLVC(env, &apps.PageRank{},
				RunOpts{MaxSupersteps: MaxSupersteps, SortBudget: budget})
			if err != nil {
				return nil, err
			}
			if budget == 0 {
				want = got
			} else {
				for v := range want {
					if got[v] != want[v] {
						return nil, fmt.Errorf("spill run (budget %d) diverged at vertex %d on %s", budget, v, ds.Name)
					}
				}
			}
			storage := float64(rep.StorageTime)
			overhead := "-"
			label := "unbounded"
			if budget == 0 {
				base = storage
			} else {
				label = fmt.Sprintf("%dK", budget>>10)
				if base > 0 {
					overhead = fmt.Sprintf("%+.1f%%", 100*(storage-base)/base)
				}
			}
			t.AddRow(ds.Name, label, fmt.Sprint(rep.Spills),
				fmt.Sprintf("%.2f", float64(rep.SpillBytes)/(1<<20)),
				fmt.Sprint(rep.PagesWritten), metrics.D(rep.StorageTime), overhead)
		}
	}
	return t, nil
}

// ingestApp names the durable-ingest benchmark shape in snapshots: the
// fixed mutation stream through the sync-flushed WAL plus one merge.
const ingestApp = "ingest-wal"

// ingestBenchRun is one measured ingest stream: a deterministic mutation
// sequence applied in fixed batches, then folded into the CSR with one
// crash-atomic merge.
type ingestBenchRun struct {
	Mutations int
	Batches   int
	IO        ssd.Stats     // device delta: stream + merge
	Stream    time.Duration // virtual storage time of the mutation stream
	Merge     time.Duration // virtual storage time of the final merge
	Wall      time.Duration
	WAL       csr.IngestStats
}

// ingestStreamSpec fixes the benchmark's mutation stream so every mode
// (and every run of the same binary) applies the identical sequence:
// 96 batches of 32 mutations, one in four a delete.
func ingestStream(n uint32) [][]csr.Mutation {
	rng := rand.New(rand.NewSource(7))
	batches := make([][]csr.Mutation, 96)
	for b := range batches {
		batch := make([]csr.Mutation, 32)
		for i := range batch {
			batch[i] = csr.Mutation{
				Del: rng.Intn(4) == 0,
				Src: uint32(rng.Intn(int(n))),
				Dst: uint32(rng.Intn(int(n))),
			}
		}
		batches[b] = batch
	}
	return batches
}

// runIngestBench streams the fixed mutation sequence into a freshly
// built, uncached copy of ds — volatile (withWAL false) or WAL-backed
// with the given flush window — and folds it down with one merge.
func runIngestBench(ds Dataset, withWAL bool, flush time.Duration) (*ingestBenchRun, error) {
	env, err := Prepare(ds, EnvOptions{CacheMB: -1})
	if err != nil {
		return nil, err
	}
	g := env.Graph
	if withWAL {
		g, err = csr.OpenIngest(env.Dev, ds.Name, csr.IngestOptions{
			WAL: true, FlushEvery: flush, MergeThreshold: 1 << 30,
		})
		if err != nil {
			return nil, err
		}
	}
	r := &ingestBenchRun{}
	st0 := env.Dev.Stats()
	start := time.Now()
	for _, batch := range ingestStream(ds.N) {
		// Explicit huge threshold: no mid-stream merges, so every mode
		// pays for the same single fold at the end.
		if err := g.ApplyMutations(batch, 1<<30); err != nil {
			return nil, err
		}
		r.Batches++
		r.Mutations += len(batch)
	}
	st1 := env.Dev.Stats()
	// WAL stats snapshot before the merge truncates the log: DurableBytes
	// is the peak stream length the durability path actually wrote.
	r.WAL = g.IngestStats()
	if err := g.MergeInterval(0); err != nil {
		return nil, err
	}
	st2 := env.Dev.Stats()
	r.Wall = time.Since(start)
	r.IO = st2.Sub(st0)
	r.Stream = st1.Sub(st0).StorageTime()
	r.Merge = st2.Sub(st1).StorageTime()
	if withWAL {
		if err := g.CloseIngest(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Ingest measures streaming-ingest throughput and the WAL's durability
// tax: the same deterministic mutation stream applied with the WAL off
// (volatile deltas — the pre-durability baseline), on with synchronous
// per-batch flushing, and on with a group-commit window. The stream
// column is pure ingest-path virtual storage time (the WAL rows' delta
// over "off" is the durability overhead); the merge fold costs the same
// in every mode.
func Ingest(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Streaming ingest: WAL durability overhead",
		Headers: []string{"dataset", "wal", "muts", "flushes", "wal KiB", "pages w", "stream", "merge", "overhead"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	modes := []struct {
		name  string
		wal   bool
		flush time.Duration
	}{
		{"off", false, 0},
		{"sync", true, 0},
		{"group", true, 500 * time.Microsecond},
	}
	for _, ds := range dss {
		var base float64
		for _, m := range modes {
			r, err := runIngestBench(ds, m.wal, m.flush)
			if err != nil {
				return nil, fmt.Errorf("ingest %s/%s: %w", ds.Name, m.name, err)
			}
			// Volatile ingest does no IO until the merge, so the overhead
			// compares end-to-end virtual storage time (stream + fold).
			total := float64(r.Stream + r.Merge)
			overhead := "-"
			if !m.wal {
				base = total
			} else if base > 0 {
				overhead = fmt.Sprintf("%+.1f%%", 100*(total-base)/base)
			}
			t.AddRow(ds.Name, m.name, fmt.Sprint(r.Mutations),
				fmt.Sprint(r.WAL.WAL.Flushes),
				fmt.Sprintf("%.1f", float64(r.WAL.WAL.DurableBytes)/1024),
				fmt.Sprint(r.IO.PagesWritten),
				metrics.D(r.Stream), metrics.D(r.Merge), overhead)
		}
	}
	return t, nil
}
