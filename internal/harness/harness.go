// Package harness prepares datasets and drives the engines for the
// experiment suite: it regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index) on scaled-down R-MAT
// analogs of com-friendster and the Yahoo Webscope graph.
package harness

import (
	"context"
	"fmt"

	"multilogvc/internal/core"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/grafboost"
	"multilogvc/internal/graphchi"
	"multilogvc/internal/graphio"
	"multilogvc/internal/metrics"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// ReportSink, when non-nil, receives every engine run report the harness
// produces, in completion order. mlvc-bench wires it to a per-run JSON
// writer (-json DIR) so benchmark trajectories are machine-readable
// instead of being parsed back out of text tables.
var ReportSink func(*metrics.Report)

// DefaultCacheMB, when > 0, attaches a page cache of that size (MiB) to
// every environment Prepare builds, unless the EnvOptions override it.
// mlvc-bench wires it to -cache-mb so the whole experiment suite runs
// cached without threading a knob through every experiment.
var DefaultCacheMB int

func emitReport(r *metrics.Report) {
	if ReportSink != nil {
		ReportSink(r)
	}
}

// Dataset is a named edge list.
type Dataset struct {
	Name  string
	Edges []graphio.Edge
	N     uint32
}

// AvgDegree returns directed edges per vertex.
func (d Dataset) AvgDegree() float64 {
	if d.N == 0 {
		return 0
	}
	return float64(len(d.Edges)) / float64(d.N)
}

// Size selects dataset scale. The paper's graphs have 3.6B/12.9B edges;
// these analogs keep the degree shape at laptop scale.
type Size int

const (
	// Tiny is for unit tests and CI (≈2^10 vertices).
	Tiny Size = iota
	// Small is the default benchmark scale (≈2^13 vertices).
	Small
	// Medium stresses the out-of-core paths (≈2^15 vertices).
	Medium
)

func (s Size) scale() int {
	switch s {
	case Tiny:
		return 10
	case Medium:
		return 15
	default:
		return 13
	}
}

// CFMini generates the com-friendster analog: dense power-law, average
// degree ≈ 24 after symmetrization (paper: 29).
func CFMini(size Size) (Dataset, error) {
	scale := size.scale()
	edges, err := gen.RMAT(gen.DefaultRMAT(scale, 12, 0xCF))
	if err != nil {
		return Dataset{}, err
	}
	return Dataset{Name: "cf-mini", Edges: edges, N: 1 << scale}, nil
}

// YWSMini generates the Yahoo-Webscope analog: sparser web-like power
// law, average degree ≈ 8 (paper: 9), more vertices than CFMini.
func YWSMini(size Size) (Dataset, error) {
	scale := size.scale() + 1
	edges, err := gen.RMAT(gen.DefaultRMAT(scale, 4, 0x135))
	if err != nil {
		return Dataset{}, err
	}
	return Dataset{Name: "yws-mini", Edges: edges, N: 1 << scale}, nil
}

// WebFrontier generates the BFS-depth analog used by the Fig 5 traversal
// experiments: a small-world graph whose frontier expands gradually over
// tens of supersteps, like the multi-billion-vertex web graph's long-tail
// diameter. (The power-law analogs' diameter collapses to single digits
// at laptop scale, which would make every traversal fraction stop at the
// same superstep.)
func WebFrontier(size Size) (Dataset, error) {
	side := 1 << ((size.scale() + 1) / 2) // ≈ sqrt of the vertex count
	shortcuts := side * side / 128
	edges, err := gen.SmallWorld(side, side, shortcuts, 0x3E)
	if err != nil {
		return Dataset{}, err
	}
	return Dataset{Name: "webfrontier-mini", Edges: edges, N: uint32(side * side)}, nil
}

// Datasets returns both analogs.
func Datasets(size Size) ([]Dataset, error) {
	cf, err := CFMini(size)
	if err != nil {
		return nil, err
	}
	yws, err := YWSMini(size)
	if err != nil {
		return nil, err
	}
	return []Dataset{cf, yws}, nil
}

// Env is a prepared experiment environment: one dataset on one device
// with a built CSR graph and a memory budget scaled the way the paper
// scales its 1 GB budget against ~100 GB graphs.
type Env struct {
	Dev       *ssd.Device
	Graph     *csr.Graph
	DS        Dataset
	MemBudget int64
	PageSize  int
	// Cache is the page cache attached to Dev, nil when uncached.
	Cache *pagecache.Cache
}

// EnvOptions tunes Prepare.
type EnvOptions struct {
	// PageSize defaults to 4096 for benchmark scale (16384 matches the
	// paper but needs larger graphs to be interesting).
	PageSize int
	// Channels defaults to 8.
	Channels int
	// MemBudget defaults to ~2% of the graph's edge bytes (the paper's
	// 1GB : 50-100GB ratio), floored at 64 KiB.
	MemBudget int64
	// Dir backs the device with real files when non-empty.
	Dir string
	// CacheMB attaches a page cache of that size (MiB): > 0 sets the
	// size, 0 falls back to DefaultCacheMB, < 0 forces uncached.
	CacheMB int
	// NoVerify disables page-checksum maintenance and verification on
	// the device — only for measuring integrity overhead.
	NoVerify bool
	// Capacity caps the device byte footprint (ssd.Config.Capacity);
	// 0 leaves it unbounded.
	Capacity int64
}

// attachCache resolves opts.CacheMB against DefaultCacheMB and attaches
// the cache to dev. Must run before any IO on the device.
func (o EnvOptions) attachCache(dev *ssd.Device) *pagecache.Cache {
	mb := o.CacheMB
	if mb == 0 {
		mb = DefaultCacheMB
	}
	if mb <= 0 {
		return nil
	}
	c := pagecache.FromMB(mb, dev.PageSize())
	if c != nil {
		dev.AttachCache(c)
	}
	return c
}

// Prepare builds the CSR graph for ds on a fresh device.
func Prepare(ds Dataset, opts EnvOptions) (*Env, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = 4096
	}
	if opts.Channels <= 0 {
		opts.Channels = 8
	}
	if opts.MemBudget <= 0 {
		graphBytes := int64(len(ds.Edges)) * 4
		opts.MemBudget = graphBytes * 2 / 100
		if opts.MemBudget < 64<<10 {
			opts.MemBudget = 64 << 10
		}
	}
	dev, err := ssd.Open(ssd.Config{PageSize: opts.PageSize, Channels: opts.Channels, Dir: opts.Dir, NoVerify: opts.NoVerify, Capacity: opts.Capacity})
	if err != nil {
		return nil, err
	}
	cache := opts.attachCache(dev)
	// Interval budget = the sort share of the memory budget (§V-A1).
	ivBudget := opts.MemBudget * 75 / 100
	g, err := csr.Build(dev, ds.Name, ds.Edges, csr.BuildOptions{
		NumVertices:    ds.N,
		IntervalBudget: ivBudget,
	})
	if err != nil {
		return nil, err
	}
	return &Env{Dev: dev, Graph: g, DS: ds, MemBudget: opts.MemBudget, PageSize: opts.PageSize, Cache: cache}, nil
}

// RunOpts carries the per-run knobs shared by all engines.
type RunOpts struct {
	MaxSupersteps int
	StopAfter     func(step int, cumProcessed uint64) bool
	// MultiLogVC ablations.
	DisableEdgeLog  bool
	DisableCombiner bool
	DisableFusing   bool
	// GraFBoost adapted mode.
	Adapted bool
	// MemBudget overrides the environment's budget when > 0.
	MemBudget int64
	Workers   int
	// UtilThreshold overrides the edge-log utilization threshold when
	// > 0 (MultiLogVC engine only); > 1 logs every fetched adjacency.
	UtilThreshold float64
	// CheckpointEvery commits a checkpoint every K superstep boundaries
	// (MultiLogVC engine only); 0 disables checkpointing.
	CheckpointEvery int
	// Resume restarts from the latest valid checkpoint on the device
	// (MultiLogVC engine only).
	Resume bool
	// Interrupt requests a graceful stop: when it closes, the engine
	// checkpoints at the next superstep boundary and returns
	// core.ErrInterrupted (MultiLogVC engine only).
	Interrupt <-chan struct{}
	// Context bounds the run (deadline or cancellation); nil means
	// context.Background(). All three engines honor it.
	Context context.Context
	// SortBudget overrides the in-memory sort bound (MultiLogVC engine
	// only); interval logs above it spill through the external
	// sort-group. 0 derives it from the memory budget.
	SortBudget int64
}

func (o RunOpts) budget(env *Env) int64 {
	if o.MemBudget > 0 {
		return o.MemBudget
	}
	return env.MemBudget
}

// RunMLVC runs prog on the MultiLogVC engine.
func RunMLVC(env *Env, prog vc.Program, o RunOpts) (*metrics.Report, []uint32, error) {
	var pf *pagecache.Prefetcher
	if env.Cache != nil {
		pf = pagecache.NewPrefetcher(8)
		defer pf.Close()
	}
	eng := core.New(env.Graph, core.Config{
		MemoryBudget:    o.budget(env),
		SortBudget:      o.SortBudget,
		MaxSupersteps:   o.MaxSupersteps,
		StopAfter:       o.StopAfter,
		DisableEdgeLog:  o.DisableEdgeLog,
		DisableCombiner: o.DisableCombiner,
		DisableFusing:   o.DisableFusing,
		Workers:         o.Workers,
		UtilThreshold:   o.UtilThreshold,
		Cache:           env.Cache,
		Prefetcher:      pf,
		CheckpointEvery: o.CheckpointEvery,
		Resume:          o.Resume,
		Interrupt:       o.Interrupt,
	})
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := eng.RunCtx(ctx, prog)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: multilogvc/%s on %s: %w", prog.Name(), env.DS.Name, err)
	}
	emitReport(res.Report)
	return res.Report, res.Values, nil
}

// RunGraphChi runs prog on the GraphChi baseline.
func RunGraphChi(env *Env, prog vc.Program, o RunOpts) (*metrics.Report, []uint32, error) {
	eng := graphchi.New(env.Dev, env.DS.Name, env.DS.Edges, env.Graph.Intervals(), graphchi.Config{
		MaxSupersteps: o.MaxSupersteps,
		StopAfter:     o.StopAfter,
		Workers:       o.Workers,
		Cache:         env.Cache,
		Context:       o.Context,
	})
	res, err := eng.Run(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: graphchi/%s on %s: %w", prog.Name(), env.DS.Name, err)
	}
	emitReport(res.Report)
	return res.Report, res.Values, nil
}

// RunGraFBoost runs prog on the GraFBoost baseline.
func RunGraFBoost(env *Env, prog vc.Program, o RunOpts) (*metrics.Report, []uint32, error) {
	eng := grafboost.New(env.Graph, grafboost.Config{
		MemoryBudget:  o.budget(env),
		MaxSupersteps: o.MaxSupersteps,
		StopAfter:     o.StopAfter,
		Adapted:       o.Adapted,
		Workers:       o.Workers,
		Cache:         env.Cache,
		Context:       o.Context,
	})
	res, err := eng.Run(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: grafboost/%s on %s: %w", prog.Name(), env.DS.Name, err)
	}
	emitReport(res.Report)
	return res.Report, res.Values, nil
}

// PrepareWeighted builds a weighted CSR graph for ds (wedges must strip to
// ds.Edges).
func PrepareWeighted(ds Dataset, wedges []graphio.WeightedEdge, opts EnvOptions) (*Env, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = 4096
	}
	if opts.Channels <= 0 {
		opts.Channels = 8
	}
	if opts.MemBudget <= 0 {
		graphBytes := int64(len(ds.Edges)) * 4
		opts.MemBudget = graphBytes * 2 / 100
		if opts.MemBudget < 64<<10 {
			opts.MemBudget = 64 << 10
		}
	}
	dev, err := ssd.Open(ssd.Config{PageSize: opts.PageSize, Channels: opts.Channels, Dir: opts.Dir, NoVerify: opts.NoVerify, Capacity: opts.Capacity})
	if err != nil {
		return nil, err
	}
	cache := opts.attachCache(dev)
	g, err := csr.BuildWeighted(dev, ds.Name, wedges, csr.BuildOptions{
		NumVertices:    ds.N,
		IntervalBudget: opts.MemBudget * 75 / 100,
	})
	if err != nil {
		return nil, err
	}
	return &Env{Dev: dev, Graph: g, DS: ds, MemBudget: opts.MemBudget, PageSize: opts.PageSize, Cache: cache}, nil
}

// RunGraphChiWeighted runs prog on the weighted shard baseline.
func RunGraphChiWeighted(env *Env, wedges []graphio.WeightedEdge, prog vc.Program, o RunOpts) (*metrics.Report, []uint32, error) {
	eng := graphchi.NewWeighted(env.Dev, env.DS.Name, wedges, env.Graph.Intervals(), graphchi.Config{
		MaxSupersteps: o.MaxSupersteps,
		StopAfter:     o.StopAfter,
		Workers:       o.Workers,
		Cache:         env.Cache,
		Context:       o.Context,
	})
	res, err := eng.Run(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: graphchi-w/%s on %s: %w", prog.Name(), env.DS.Name, err)
	}
	emitReport(res.Report)
	return res.Report, res.Values, nil
}
