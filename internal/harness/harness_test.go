package harness

import (
	"strconv"
	"strings"
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/metrics"
	"multilogvc/internal/vc"
)

func TestDatasets(t *testing.T) {
	dss, err := Datasets(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 2 {
		t.Fatalf("datasets = %d", len(dss))
	}
	cf, yws := dss[0], dss[1]
	if cf.Name != "cf-mini" || yws.Name != "yws-mini" {
		t.Fatalf("names = %s, %s", cf.Name, yws.Name)
	}
	// CF is denser; YWS has more vertices — the paper's dataset shape.
	if cf.AvgDegree() <= yws.AvgDegree() {
		t.Fatalf("cf degree %f <= yws degree %f", cf.AvgDegree(), yws.AvgDegree())
	}
	if yws.N <= cf.N {
		t.Fatalf("yws vertices %d <= cf vertices %d", yws.N, cf.N)
	}
}

func TestPrepareDefaults(t *testing.T) {
	ds, _ := CFMini(Tiny)
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if env.MemBudget <= 0 {
		t.Fatal("no memory budget resolved")
	}
	if env.Graph.NumVertices() != ds.N {
		t.Fatalf("graph vertices %d != %d", env.Graph.NumVertices(), ds.N)
	}
	if len(env.Graph.Intervals()) < 2 {
		t.Fatalf("expected multiple intervals, got %d", len(env.Graph.Intervals()))
	}
}

// TestCrossEngineAgreement is the suite's end-to-end consistency check:
// all three out-of-core engines and the reference engine produce
// identical values on the same dataset for every applicable program.
func TestCrossEngineAgreement(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range AppSet(ds.N) {
		opts := RunOpts{MaxSupersteps: MaxSupersteps}
		ref := vc.NewRef(ds.Edges, ds.N).Run(prog, MaxSupersteps)

		_, mlVals, err := RunMLVC(env, prog, opts)
		if err != nil {
			t.Fatalf("%s: %v", prog.Name(), err)
		}
		_, gcVals, err := RunGraphChi(env, prog, opts)
		if err != nil {
			t.Fatalf("%s: %v", prog.Name(), err)
		}
		compare := func(engine string, vals []uint32) {
			for v := range ref.Values {
				if vals[v] != ref.Values[v] {
					t.Fatalf("%s/%s: value[%d] = %d, ref %d", engine, prog.Name(), v, vals[v], ref.Values[v])
				}
			}
		}
		compare("multilogvc", mlVals)
		compare("graphchi", gcVals)

		if _, ok := prog.(vc.Combiner); ok {
			_, gbVals, err := RunGraFBoost(env, prog, opts)
			if err != nil {
				t.Fatalf("grafboost/%s: %v", prog.Name(), err)
			}
			compare("grafboost", gbVals)
		} else {
			_, gbVals, err := RunGraFBoost(env, prog, RunOpts{MaxSupersteps: MaxSupersteps, Adapted: true})
			if err != nil {
				t.Fatalf("grafboost-adapted/%s: %v", prog.Name(), err)
			}
			compare("grafboost-adapted", gbVals)
		}
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "cf-mini") {
		t.Fatal("table missing dataset")
	}
}

func TestFig2ActivityShrinks(t *testing.T) {
	tab, err := Fig2(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// For each dataset, the first superstep's active fraction must
	// exceed the last's (Fig 2's shrink).
	perDS := map[string][]float64{}
	for _, row := range tab.Rows {
		f, _ := strconv.ParseFloat(row[2], 64)
		perDS[row[0]] = append(perDS[row[0]], f)
	}
	for ds, series := range perDS {
		if len(series) < 2 {
			t.Fatalf("%s: too few supersteps", ds)
		}
		if series[0] != 1.0 {
			t.Fatalf("%s: first superstep active fraction %f != 1", ds, series[0])
		}
		if series[len(series)-1] >= series[0] {
			t.Fatalf("%s: activity did not shrink: %v", ds, series)
		}
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	tab, err := Fig5(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Speedups must exceed 1 and shrink (or at least not grow much) as
	// the traversal fraction grows — Fig 5a's shape.
	perDS := map[string][]float64{}
	for _, row := range tab.Rows {
		f, _ := strconv.ParseFloat(row[2], 64)
		perDS[row[0]] = append(perDS[row[0]], f)
	}
	for ds, sp := range perDS {
		if sp[0] <= 1 {
			t.Errorf("%s: speedup at fraction 0.1 = %f, want > 1", ds, sp[0])
		}
		// At Tiny scale the power-law analogs are noisy; only catch gross
		// inversions there.
		if sp[len(sp)-1] > sp[0]*1.5 {
			t.Errorf("%s: speedup grew sharply with traversal fraction: %v", ds, sp)
		}
	}
	// The web-frontier analog must not invert Fig 5a's shape: the deep
	// traversal never wins decisively over the shallow one. (At Tiny
	// scale the two are near-equal; the Small-scale run recorded in
	// EXPERIMENTS.md shows the decreasing trend.)
	wf := perDS["webfrontier-mini"]
	if len(wf) == 0 {
		t.Fatal("webfrontier-mini missing from Fig 5")
	}
	if wf[len(wf)-1] > wf[0]*1.2 {
		t.Errorf("webfrontier: speedup at 0.9 (%f) decisively exceeds 0.1 (%f)", wf[len(wf)-1], wf[0])
	}
}

func TestFig6SpeedupsPositive(t *testing.T) {
	runs, err := Fig6Runs(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 12 { // 6 apps × 2 datasets
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		sp := metrics.Speedup(r.GraphChi, r.MLVC)
		if sp <= 0 {
			t.Errorf("%s/%s: speedup %f", r.Dataset, r.App, sp)
		}
	}
	tab := Fig6(runs)
	if len(tab.Rows) != 12 {
		t.Fatalf("fig6 rows = %d", len(tab.Rows))
	}
	f7 := Fig7(runs)
	if len(f7.Rows) == 0 {
		t.Fatal("fig7 empty")
	}
}

func TestFig8(t *testing.T) {
	tab, err := Fig8(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		sp, _ := strconv.ParseFloat(row[1], 64)
		if sp <= 0 {
			t.Errorf("%s: grafboost speedup %f", row[0], sp)
		}
	}
}

func TestAdaptedGC(t *testing.T) {
	tab, err := AdaptedGC(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		sp, _ := strconv.ParseFloat(row[1], 64)
		if sp <= 1 {
			t.Errorf("%s: adapted speedup %f, want > 1 (sorting overhead)", row[0], sp)
		}
	}
}

func TestFig9AccuracyRange(t *testing.T) {
	tab, err := Fig9(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		acc, _ := strconv.ParseFloat(row[2], 64)
		if acc < 0 || acc > 100 {
			t.Errorf("%s/%s: accuracy %f out of range", row[0], row[1], acc)
		}
	}
}

func TestFig10(t *testing.T) {
	tab, err := Fig10(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		sp, _ := strconv.ParseFloat(row[2], 64)
		if sp <= 0 {
			t.Errorf("%v: bad speedup", row)
		}
	}
}

func TestAblation(t *testing.T) {
	tab, err := Ablation(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRunOptsBudgetOverride(t *testing.T) {
	ds, _ := CFMini(Tiny)
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 3, MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Supersteps) == 0 {
		t.Fatal("no supersteps ran")
	}
}

func TestExtendedApps(t *testing.T) {
	tab, err := Extended(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 3 apps × 2 datasets
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		sp, _ := strconv.ParseFloat(row[2], 64)
		if sp <= 0 {
			t.Errorf("%v: bad speedup", row)
		}
	}
}

func TestIOBreakdown(t *testing.T) {
	tab, err := IOBreakdown(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		aux, _ := strconv.ParseUint(row[6], 10, 64)
		graph, _ := strconv.ParseUint(row[2], 10, 64)
		if graph == 0 {
			t.Errorf("%v: no graph traffic", row)
		}
		switch row[1] {
		case "cdlp":
			// CDLP pays aux-state IO — the paper's explanation for its
			// smaller speedup (§VIII).
			if aux == 0 {
				t.Errorf("cdlp should have aux traffic: %v", row)
			}
		case "bfs":
			if aux != 0 {
				t.Errorf("bfs should have no aux traffic: %v", row)
			}
		}
	}
}
