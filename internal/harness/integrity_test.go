package harness

// End-to-end data-plane integrity: edge-log corruption heals from the
// CSR, message-log corruption rolls back to a checkpoint (or fails
// classified without one), and a graceful interrupt checkpoints a
// resumable run. Every recovery must be bit-identical to an undamaged
// run — a wrong answer is worse than a crash.

import (
	"errors"
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/core"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

const integritySteps = 6

// TestElogCorruptionHealsBitIdentical corrupts every physical edge-log
// read (probability 1) for each app, cached and uncached. The edge log
// is a redundant adjacency cache, so the engine must invalidate the
// damaged generation, re-fetch from the CSR, count the heal, and still
// produce bit-identical values.
func TestElogCorruptionHealsBitIdentical(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	var totalHealed uint64
	for _, cacheMB := range []int{-1, 4} {
		mode := "uncached"
		if cacheMB > 0 {
			mode = "cached"
		}
		for _, app := range crashApps {
			name := app.name + "/" + mode
			opts := EnvOptions{CacheMB: cacheMB}
			// Log every fetched adjacency so the edge log is genuinely in
			// the read path at test scale.
			ro := RunOpts{MaxSupersteps: integritySteps, UtilThreshold: 1.5}

			env, err := Prepare(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			ref, want, err := RunMLVC(env, app.make(), ro)
			if err != nil {
				t.Fatalf("%s: reference: %v", name, err)
			}

			env, err = Prepare(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			env.Dev.CorruptOnly(".elog")
			env.Dev.FailCorruptProb(1, 0xE106)
			rep, got, err := RunMLVC(env, app.make(), ro)
			if err != nil {
				t.Fatalf("%s: run under elog corruption: %v", name, err)
			}
			valuesEqual(t, name, got, want)
			var elogReads uint64
			for _, ss := range ref.Supersteps {
				elogReads += ss.EdgeLogPagesRead
			}
			if elogReads > 0 && rep.ElogHealed == 0 {
				t.Errorf("%s: reference read %d elog pages but corrupted run healed nothing",
					name, elogReads)
			}
			if rep.ElogHealed > 0 && rep.CorruptPages == 0 {
				t.Errorf("%s: healed %d without counting corrupt pages", name, rep.ElogHealed)
			}
			totalHealed += rep.ElogHealed
		}
	}
	if totalHealed == 0 {
		t.Fatal("no app/mode combination exercised the edge-log heal path")
	}
}

// TestMlogCorruptionRollsBackBitIdentical scripts a single corrupt
// message-log page read mid-run. The message log is vital state, so a
// checkpointing run must roll back to the newest checkpoint, re-execute,
// and land on bit-identical values, reporting the rollback.
func TestMlogCorruptionRollsBackBitIdentical(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	const every = 2
	for _, app := range crashApps {
		opts := EnvOptions{CacheMB: -1} // uncached: physical reads are deterministic

		// Reference run counts physical mlog reads so the fault run can
		// script an exact one.
		env, err := Prepare(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		env.Dev.CorruptOnly(".mlog.")
		_, want, err := RunMLVC(env, app.make(), RunOpts{MaxSupersteps: integritySteps, CheckpointEvery: every})
		if err != nil {
			t.Fatalf("%s: reference: %v", app.name, err)
		}
		ops := env.Dev.CorruptOps()
		if ops == 0 {
			t.Fatalf("%s: reference run read no mlog pages; nothing to corrupt", app.name)
		}

		for _, target := range []int64{ops / 2, 3 * ops / 4} {
			env, err := Prepare(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			env.Dev.CorruptOnly(".mlog.")
			env.Dev.FailCorruptAt(target)
			rep, got, err := RunMLVC(env, app.make(),
				RunOpts{MaxSupersteps: integritySteps, CheckpointEvery: every})
			if err != nil {
				t.Fatalf("%s: corrupt mlog read %d/%d not recovered: %v", app.name, target, ops, err)
			}
			valuesEqual(t, app.name, got, want)
			if rep.Rollbacks == 0 {
				t.Errorf("%s: recovered from mlog corruption at read %d without reporting a rollback",
					app.name, target)
			}
		}
	}
}

// TestMlogCorruptionWithoutCheckpointsFailsClassified is the other half
// of the contract: with no checkpoint to roll back to, vital-state
// corruption must surface as ErrCorruptData — a classified failure, never
// a silent wrong answer.
func TestMlogCorruptionWithoutCheckpointsFailsClassified(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	opts := EnvOptions{CacheMB: -1}

	env, err := Prepare(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	env.Dev.CorruptOnly(".mlog.")
	if _, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: integritySteps}); err != nil {
		t.Fatalf("reference: %v", err)
	}
	ops := env.Dev.CorruptOps()
	if ops == 0 {
		t.Fatal("reference run read no mlog pages")
	}

	env, err = Prepare(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	env.Dev.CorruptOnly(".mlog.")
	env.Dev.FailCorruptAt(ops / 2)
	_, _, err = RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: integritySteps})
	if !errors.Is(err, core.ErrCorruptData) {
		t.Fatalf("err = %v, want ErrCorruptData in chain", err)
	}
	if !errors.Is(err, ssd.ErrCorruptPage) {
		t.Fatalf("err = %v, want the ErrCorruptPage cause preserved", err)
	}
}

// TestInterruptCheckpointsAndResumes closes the interrupt channel two
// supersteps in: the run must commit a checkpoint — even with periodic
// checkpointing disabled — return ErrInterrupted, and a resumed run must
// finish bit-identical to an uninterrupted one.
func TestInterruptCheckpointsAndResumes(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range crashApps {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := RunMLVC(env, app.make(), RunOpts{MaxSupersteps: integritySteps})
		if err != nil {
			t.Fatalf("%s: reference: %v", app.name, err)
		}

		env, err = Prepare(ds, EnvOptions{})
		if err != nil {
			t.Fatal(err)
		}
		interrupt := make(chan struct{})
		var fired bool
		stop := func(step int, cum uint64) bool {
			if step >= 1 && !fired {
				fired = true
				close(interrupt)
			}
			return false
		}
		_, _, err = RunMLVC(env, app.make(),
			RunOpts{MaxSupersteps: integritySteps, StopAfter: stop, Interrupt: interrupt})
		if !errors.Is(err, core.ErrInterrupted) {
			t.Fatalf("%s: interrupted run err = %v, want ErrInterrupted", app.name, err)
		}

		rep, got, err := RunMLVC(env, app.make(),
			RunOpts{MaxSupersteps: integritySteps, Resume: true})
		if err != nil {
			t.Fatalf("%s: resume after interrupt: %v", app.name, err)
		}
		valuesEqual(t, app.name, got, want)
		if !rep.Resumed {
			t.Errorf("%s: resumed run does not report Resumed", app.name)
		}
	}
}

// TestScrubAfterRun runs an app and scrubs the device clean, then plants
// damage and confirms the scrub flags exactly the damaged file.
func TestScrubAfterRun(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: integritySteps}); err != nil {
		t.Fatal(err)
	}
	res, err := env.Dev.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, r := range res {
		if !r.OK() {
			t.Fatalf("clean run left corrupt pages: %+v", r)
		}
		if victim == "" && r.Pages > 0 {
			victim = r.File
		}
	}
	if victim == "" {
		t.Fatal("no file with pages to damage")
	}
	if err := env.Dev.CorruptStoredPage(victim, 0); err != nil {
		t.Fatal(err)
	}
	res, err = env.Dev.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	flagged := 0
	for _, r := range res {
		if !r.OK() {
			flagged++
			if r.File != victim {
				t.Fatalf("scrub flagged %q, damaged %q", r.File, victim)
			}
		}
	}
	if flagged != 1 {
		t.Fatalf("scrub flagged %d files, want 1", flagged)
	}
}

var _ vc.Program = (*apps.PageRank)(nil)
