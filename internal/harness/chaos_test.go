package harness

import "testing"

// TestChaosSoak drives the randomized resource-governance soak: every
// case mixes transient faults, corruption, crashes, no-space, forced
// spilling, and deadlines/cancellation over random graphs and engines,
// and must end bit-identical to the reference or cleanly classified.
// CI runs this under -race as the short-soak job; crank the count for a
// longer local soak.
func TestChaosSoak(t *testing.T) {
	cases := 40
	if testing.Short() {
		cases = 8
	}
	var classified, resumed, clean int
	for i := 0; i < cases; i++ {
		seed := 0xC4A05<<16 | int64(i)
		out, err := ChaosCase(seed)
		if err != nil {
			t.Fatalf("chaos case %d: %v", i, err)
		}
		switch {
		case out.Resumed:
			resumed++
		case out.Classified != "":
			classified++
		default:
			clean++
		}
		t.Logf("seed %#x %s/%s [%s] -> classified=%q resumed=%v",
			seed, out.Engine, out.App, out.Schedule, out.Classified, out.Resumed)
	}
	t.Logf("soak: %d clean, %d classified, %d resumed of %d", clean, classified, resumed, cases)
	if clean == 0 {
		t.Error("soak never completed a clean run — schedules are too hot to exercise the success path")
	}
}
