package harness

import "testing"

// TestFailoverChaosSoak drives the replication failover chaos leg: a
// WAL-shipping primary/follower pair under random kill -9 schedules —
// mid-batch, mid-merge, mid-ship — must keep every node's state exactly
// base + stream[:AppliedSeq], survive a final promotion with local
// writes extending the same sequence stream, and answer BFS
// bit-identically to a clean single-node oracle, or fail classified
// (above all the terminal replica gap after a primary fold). CI runs
// this under -race alongside the ingest soak.
func TestFailoverChaosSoak(t *testing.T) {
	cases := 20
	if testing.Short() {
		cases = 5
	}
	var promoted, gapped, pCrashes, fCrashes, shipped int
	for i := 0; i < cases; i++ {
		seed := 0xFA110<<16 | int64(i)
		out, err := FailoverChaosCase(seed, t.TempDir(), t.TempDir())
		if err != nil {
			t.Fatalf("failover chaos case %d: %v", i, err)
		}
		if out.Promoted {
			promoted++
		}
		for _, f := range out.Faults {
			if f == "replica_gap" {
				gapped++
			}
		}
		pCrashes += out.PrimaryCrashes
		fCrashes += out.FollowerCrashes
		shipped += out.Shipped
		t.Logf("seed %#x [%s] -> acked=%d shipped=%d pcrash=%d fcrash=%d promoted=%v faults=%v",
			seed, out.Schedule, out.Acked, out.Shipped, out.PrimaryCrashes,
			out.FollowerCrashes, out.Promoted, out.Faults)
	}
	t.Logf("failover soak: %d promotions, %d gap terminations, %d primary crashes, %d follower crashes, %d frames shipped over %d cases",
		promoted, gapped, pCrashes, fCrashes, shipped, cases)
	if promoted == 0 {
		t.Error("failover soak never reached a promotion — every case gap-terminated early")
	}
	if pCrashes+fCrashes == 0 {
		t.Error("failover soak never exercised a crash-reopen — schedules are too cold")
	}
	if shipped == 0 {
		t.Error("failover soak never shipped a frame")
	}
}
