package harness

import "testing"

// TestIngestChaosSoak drives the durable-ingest chaos leg: WAL-backed
// mutation streams under random fault schedules and kill -9 style
// reopens must recover to exactly the acknowledged oracle (plus at most
// a prefix of one in-flight batch) or fail classified. CI runs this
// under -race alongside the main chaos soak.
func TestIngestChaosSoak(t *testing.T) {
	cases := 24
	if testing.Short() {
		cases = 6
	}
	var faulted, crashes, batches int
	for i := 0; i < cases; i++ {
		seed := 0x16E57<<16 | int64(i)
		out, err := IngestChaosCase(seed, t.TempDir())
		if err != nil {
			t.Fatalf("ingest chaos case %d: %v", i, err)
		}
		faulted += len(out.Faults)
		crashes += out.Crashes
		batches += out.Batches
		t.Logf("seed %#x [%s] -> batches=%d acked=%d crashes=%d faults=%v",
			seed, out.Schedule, out.Batches, out.Acked, out.Crashes, out.Faults)
	}
	t.Logf("ingest soak: %d batches, %d crashes, %d classified faults over %d cases",
		batches, crashes, faulted, cases)
	if crashes == 0 {
		t.Error("ingest soak never exercised a crash-reopen — schedules are too cold")
	}
}
