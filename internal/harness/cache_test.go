package harness

import (
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/vc"
)

// TestCacheParity verifies the page cache is purely a performance layer:
// running with a cache produces bit-identical vertex values while reading
// measurably fewer device pages (repeat reads across supersteps are
// served from memory).
func TestCacheParity(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	progs := []vc.Program{&apps.PageRank{}, &apps.BFS{Source: 0}, &apps.CDLP{}}
	for _, prog := range progs {
		opts := RunOpts{MaxSupersteps: 5}

		cold, err := Prepare(ds, EnvOptions{CacheMB: -1})
		if err != nil {
			t.Fatal(err)
		}
		coldRep, coldVals, err := RunMLVC(cold, prog, opts)
		if err != nil {
			t.Fatalf("%s uncached: %v", prog.Name(), err)
		}

		warm, err := Prepare(ds, EnvOptions{CacheMB: 8})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Cache == nil {
			t.Fatal("CacheMB: 8 attached no cache")
		}
		warmRep, warmVals, err := RunMLVC(warm, prog, opts)
		if err != nil {
			t.Fatalf("%s cached: %v", prog.Name(), err)
		}

		if len(coldVals) != len(warmVals) {
			t.Fatalf("%s: value count %d != %d", prog.Name(), len(warmVals), len(coldVals))
		}
		for v := range coldVals {
			if coldVals[v] != warmVals[v] {
				t.Fatalf("%s: value[%d] = %d cached, %d uncached", prog.Name(), v, warmVals[v], coldVals[v])
			}
		}
		if warmRep.CacheHits == 0 {
			t.Errorf("%s: cached run recorded no hits", prog.Name())
		}
		if warmRep.PagesRead >= coldRep.PagesRead {
			t.Errorf("%s: cached run read %d device pages, uncached %d — cache saved nothing",
				prog.Name(), warmRep.PagesRead, coldRep.PagesRead)
		}
	}
}

// TestCacheParityBaselines runs the baseline engines cached and uncached:
// they use the cache passively (no prefetch) but must see the same
// results-and-fewer-reads contract.
func TestCacheParityBaselines(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	prog := &apps.PageRank{}
	opts := RunOpts{MaxSupersteps: 5}

	type runner func(env *Env) (rep interface {
		CacheHitRate() float64
	}, pagesRead uint64, vals []uint32, err error)
	runners := map[string]runner{
		"graphchi": func(env *Env) (interface{ CacheHitRate() float64 }, uint64, []uint32, error) {
			rep, vals, err := RunGraphChi(env, prog, opts)
			if err != nil {
				return nil, 0, nil, err
			}
			return rep, rep.PagesRead, vals, nil
		},
		"grafboost": func(env *Env) (interface{ CacheHitRate() float64 }, uint64, []uint32, error) {
			rep, vals, err := RunGraFBoost(env, prog, opts)
			if err != nil {
				return nil, 0, nil, err
			}
			return rep, rep.PagesRead, vals, nil
		},
	}
	for name, run := range runners {
		cold, err := Prepare(ds, EnvOptions{CacheMB: -1})
		if err != nil {
			t.Fatal(err)
		}
		_, coldPages, coldVals, err := run(cold)
		if err != nil {
			t.Fatalf("%s uncached: %v", name, err)
		}
		warm, err := Prepare(ds, EnvOptions{CacheMB: 8})
		if err != nil {
			t.Fatal(err)
		}
		_, warmPages, warmVals, err := run(warm)
		if err != nil {
			t.Fatalf("%s cached: %v", name, err)
		}
		for v := range coldVals {
			if coldVals[v] != warmVals[v] {
				t.Fatalf("%s: value[%d] = %d cached, %d uncached", name, v, warmVals[v], coldVals[v])
			}
		}
		if warmPages >= coldPages {
			t.Errorf("%s: cached run read %d device pages, uncached %d", name, warmPages, coldPages)
		}
	}
}

// TestCachePrefetchAccuracy checks the async prefetcher warms pages the
// next interval actually consumes: a meaningful share of warmed pages
// must see a demand hit on a PageRank run, where every vertex stays
// active and the predictor has full history.
func TestCachePrefetchAccuracy(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{CacheMB: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrefetchInserts == 0 {
		t.Skip("no pages warmed (single-batch supersteps leave nothing to prefetch)")
	}
	if acc := rep.PrefetchAccuracy(); acc < 0.25 {
		t.Errorf("prefetch accuracy %.2f: fewer than a quarter of warmed pages were used", acc)
	}
}
