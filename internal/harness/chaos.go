package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/ckpt"
	"multilogvc/internal/core"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// ChaosOutcome summarizes one chaos case for logging: which schedule ran
// and how it ended.
type ChaosOutcome struct {
	Seed     int64
	Engine   string
	App      string
	Schedule string // human-readable fault mix, e.g. "transient+nospace+spill"
	// Classified is the sentinel family the run ended in, "" for a clean
	// bit-identical finish.
	Classified string
	// Resumed reports that the case crashed (or hit a deadline) and then
	// finished bit-identically from its checkpoint.
	Resumed bool
}

// chaosClassified are the error families a governed run may legitimately
// end in. Anything else — above all a silently wrong answer — fails the
// soak.
var chaosClassified = []struct {
	name string
	err  error
}{
	{"nospace", ssd.ErrNoSpace},
	{"deadline", core.ErrDeadline},
	{"deadline", context.DeadlineExceeded},
	{"interrupted", core.ErrInterrupted},
	{"canceled", context.Canceled},
	{"crash", ssd.ErrInjected},
	{"retries-exhausted", ssd.ErrRetriesExhausted},
	{"corrupt-data", core.ErrCorruptData},
	{"corrupt-page", ssd.ErrCorruptPage},
	{"corrupt-checkpoint", ckpt.ErrCorrupt},
}

func classify(err error) string {
	for _, c := range chaosClassified {
		if errors.Is(err, c.err) {
			return c.name
		}
	}
	return ""
}

// ChaosCase runs one randomized resource-governance case: a random graph
// and program on a random engine under a random mix of transient faults,
// checksum corruption, a mid-run crash, no-space injection, a forced sort
// spill, and a deadline or cancellation. The invariant it enforces is the
// robustness contract of the whole stack: the run either finishes with
// values bit-identical to the in-memory reference engine (resuming from a
// checkpoint if it crashed or timed out), or fails with a classified
// sentinel — never a silently wrong answer.
func ChaosCase(seed int64) (ChaosOutcome, error) {
	rng := rand.New(rand.NewSource(seed))
	out := ChaosOutcome{Seed: seed}

	// Random graph.
	var edges []graphio.Edge
	var err error
	switch rng.Intn(3) {
	case 0:
		edges, err = gen.RMAT(gen.DefaultRMAT(6+rng.Intn(3), 2+rng.Intn(4), rng.Int63()))
	case 1:
		edges, err = gen.Uniform(uint32(50+rng.Intn(250)), 200+rng.Intn(700), rng.Int63(), true)
	default:
		edges, err = gen.Grid(3+rng.Intn(10), 3+rng.Intn(10))
	}
	if err != nil {
		return out, fmt.Errorf("gen: %w", err)
	}
	if len(edges) == 0 {
		return out, nil
	}
	n := graphio.NumVertices(edges)

	// Random program; the in-memory reference engine supplies ground truth.
	src := uint32(rng.Intn(int(n)))
	progs := []func() vc.Program{
		func() vc.Program { return &apps.PageRank{} },
		func() vc.Program { return &apps.BFS{Source: src} },
		func() vc.Program { return &apps.WCC{} },
		func() vc.Program { return &apps.CDLP{} },
	}
	mkProg := progs[rng.Intn(len(progs))]
	steps := 4 + rng.Intn(8)
	out.App = mkProg().Name()
	want := vc.NewRef(edges, n).Run(mkProg(), steps).Values

	// One device geometry per case so a crashed run and its resume see the
	// same layout.
	devCfg := ssd.Config{
		PageSize: 128 << rng.Intn(4),
		Channels: 1 + rng.Intn(8),
		Retry:    ssd.RetryPolicy{MaxRetries: 4},
	}
	ivBudget := int64(256 + rng.Intn(4096))
	mem := int64(4096 + rng.Intn(1<<16))
	mkEnv := func() (*Env, error) {
		dev, err := ssd.Open(devCfg)
		if err != nil {
			return nil, err
		}
		g, err := csr.Build(dev, "chaos", edges, csr.BuildOptions{
			NumVertices: n, IntervalBudget: ivBudget,
		})
		if err != nil {
			return nil, err
		}
		return &Env{Dev: dev, Graph: g, DS: Dataset{Name: "chaos", Edges: edges, N: n},
			MemBudget: mem, PageSize: dev.PageSize()}, nil
	}
	env, err := mkEnv()
	if err != nil {
		return out, fmt.Errorf("build: %w", err)
	}

	// Engine: mostly MultiLogVC (the governed engine), baselines for the
	// shared device-level governance (retry-ctx, no-space, corruption).
	engine := []string{"multilogvc", "multilogvc", "multilogvc", "graphchi", "grafboost"}[rng.Intn(5)]
	out.Engine = engine

	opts := RunOpts{MaxSupersteps: steps, Workers: 1 + rng.Intn(4)}
	schedule := ""
	add := func(s string) { schedule += "+" + s }

	// Fault mix: each hazard independently armed.
	if rng.Intn(2) == 0 {
		env.Dev.FailTransientProb(0.005+rng.Float64()*0.02, uint64(seed)|1)
		add("transient")
	}
	if rng.Intn(3) == 0 {
		env.Dev.FailNoSpaceProb(0.01+rng.Float64()*0.05, uint64(seed)|3)
		add("nospace")
	}
	if engine == "multilogvc" && rng.Intn(3) == 0 {
		filters := []string{".elog", ".mlog.", ".values"}
		env.Dev.CorruptOnly(filters[rng.Intn(len(filters))])
		env.Dev.FailCorruptProb(0.002+rng.Float64()*0.02, uint64(seed)|5)
		add("corrupt")
	}
	if engine == "multilogvc" && rng.Intn(3) == 0 {
		opts.SortBudget = int64(64 + rng.Intn(512)) // tiny: forces spilling
		add("spill")
	}
	crashing := false
	if rng.Intn(3) == 0 {
		// Crash depth is calibrated against a rough op estimate; if the
		// credit outlives the run the case degrades to fault-free, which
		// the invariant still covers.
		env.Dev.FailAfter(20+rng.Int63n(600), nil)
		crashing = true
		add("crash")
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	switch rng.Intn(4) {
	case 0:
		ctx, cancel = context.WithTimeout(ctx, time.Duration(50+rng.Intn(5000))*time.Microsecond)
		add("deadline")
	case 1:
		ctx, cancel = context.WithCancel(ctx)
		go func(d time.Duration) { time.Sleep(d); cancel() }(time.Duration(rng.Intn(2000)) * time.Microsecond)
		add("cancel")
	}
	if cancel != nil {
		defer cancel()
	}
	opts.Context = ctx
	if schedule == "" {
		schedule = "+none"
	}
	out.Schedule = schedule[1:]

	// Checkpoint when the schedule can kill the run mid-flight, so a
	// second leg can finish the computation.
	every := 0
	if engine == "multilogvc" {
		every = 1 + rng.Intn(3)
		opts.CheckpointEvery = every
	}

	run := func(o RunOpts) (*Env, []uint32, error) {
		switch engine {
		case "graphchi":
			_, vals, err := RunGraphChi(env, mkProg(), o)
			return env, vals, err
		case "grafboost":
			if _, ok := mkProg().(vc.Combiner); !ok {
				o.Adapted = true
			}
			_, vals, err := RunGraFBoost(env, mkProg(), o)
			return env, vals, err
		default:
			_, vals, err := RunMLVC(env, mkProg(), o)
			return env, vals, err
		}
	}

	_, got, err := run(opts)
	if err == nil {
		if !sliceEqual(got, want) {
			return out, fmt.Errorf("seed %d [%s/%s %s]: silent divergence from reference",
				seed, engine, out.App, out.Schedule)
		}
		return out, nil
	}
	family := classify(err)
	if family == "" {
		return out, fmt.Errorf("seed %d [%s/%s %s]: unclassified failure: %w",
			seed, engine, out.App, out.Schedule, err)
	}
	out.Classified = family

	// Second leg: a MultiLogVC run that crashed or ran out of time holds a
	// committed checkpoint; disarm the hazards and finish from it. Stored
	// corruption can persist past disarming, so a classified corruption
	// exit remains acceptable — but a wrong answer never is.
	resumable := engine == "multilogvc" && every > 0 &&
		(family == "crash" || family == "deadline" || family == "interrupted" || family == "canceled")
	if !crashing && (family == "crash") {
		return out, fmt.Errorf("seed %d [%s/%s %s]: ErrInjected without a crash armed: %w",
			seed, engine, out.App, out.Schedule, err)
	}
	if !resumable {
		return out, nil
	}
	env.Dev.FailAfter(-1, nil)
	env.Dev.FailTransientProb(0, 0)
	env.Dev.FailNoSpaceProb(0, 0)
	env.Dev.FailCorruptProb(0, 0)
	resumeOpts := opts
	resumeOpts.Context = context.Background()
	resumeOpts.Resume = true
	_, got, err = run(resumeOpts)
	if err != nil {
		if f := classify(err); f != "" {
			out.Classified = f
			return out, nil
		}
		return out, fmt.Errorf("seed %d [%s/%s %s]: unclassified resume failure: %w",
			seed, engine, out.App, out.Schedule, err)
	}
	if !sliceEqual(got, want) {
		return out, fmt.Errorf("seed %d [%s/%s %s]: resumed run diverged from reference",
			seed, engine, out.App, out.Schedule)
	}
	out.Resumed = true
	return out, nil
}

func sliceEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
