package harness

import (
	"fmt"

	"multilogvc/internal/apps"
	"multilogvc/internal/metrics"
)

// StageBreakdown attributes PageRank's device traffic to the pipeline
// stages the engine tagged it with (vertex processing, sort+group, relog,
// prefetch, checkpoint, spill) — the serial-time decomposition that tells
// you which stage an optimization must target. A final "(compute)" row
// reports the host-side time not spent on the virtual device, so the
// stage shares sum to a complete picture of where a superstep goes.
func StageBreakdown(size Size) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Per-stage IO breakdown (pagerank, MultiLogVC)",
		Headers: []string{"dataset", "stage", "pages r", "pages w", "device time", "share"},
	}
	dss, err := Datasets(size)
	if err != nil {
		return nil, err
	}
	for _, ds := range dss {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			return nil, err
		}
		rep, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: MaxSupersteps})
		if err != nil {
			return nil, err
		}
		total := float64(rep.StorageTime)
		for _, st := range rep.Stages {
			share := "-"
			if total > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(st.Time)/total)
			}
			t.AddRow(ds.Name, st.Stage,
				fmt.Sprint(st.PagesRead), fmt.Sprint(st.PagesWritten),
				metrics.D(st.Time), share)
		}
		// Host-side compute time (wall), reported beside the virtual device
		// time the same way Report.TotalTime composes them.
		t.AddRow(ds.Name, "(compute)", "-", "-", metrics.D(rep.ComputeTime), "-")
	}
	return t, nil
}
