package harness

import (
	"errors"
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/ssd"
)

// TestFaultInjectionPropagates arms device failures at increasing depths
// and verifies every engine surfaces the error cleanly — no panics, no
// silent truncation of results.
func TestFaultInjectionPropagates(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}

	type runner struct {
		name string
		opts EnvOptions
		run  func(env *Env) error
	}
	runners := []runner{
		{"multilogvc", EnvOptions{}, func(env *Env) error {
			_, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
		{"graphchi", EnvOptions{}, func(env *Env) error {
			_, _, err := RunGraphChi(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
		{"grafboost", EnvOptions{}, func(env *Env) error {
			_, _, err := RunGraFBoost(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
		// Cached variants: the error must reach the engine through cache
		// misses, and the background prefetcher (multilogvc) must either
		// surface it or drop the warm cleanly — never panic or deadlock.
		{"multilogvc-cached", EnvOptions{CacheMB: 4}, func(env *Env) error {
			_, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
		{"graphchi-cached", EnvOptions{CacheMB: 4}, func(env *Env) error {
			_, _, err := RunGraphChi(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
	}

	for _, r := range runners {
		// Find how many device ops a clean run needs, then fail at a few
		// depths inside that window.
		env, err := Prepare(ds, r.opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.run(env); err != nil {
			t.Fatalf("%s: clean run failed: %v", r.name, err)
		}
		st := env.Dev.Stats()
		total := int64(st.BatchReads + st.BatchWrites)
		if total < 10 {
			t.Fatalf("%s: too few ops (%d) to inject into", r.name, total)
		}
		for _, depth := range []int64{0, 1, total / 4, total / 2} {
			env, err := Prepare(ds, r.opts)
			if err != nil {
				t.Fatal(err)
			}
			env.Dev.FailAfter(depth, nil)
			err = r.run(env)
			if err == nil {
				t.Errorf("%s: injected failure at depth %d was swallowed", r.name, depth)
				continue
			}
			if !errors.Is(err, ssd.ErrInjected) {
				t.Errorf("%s: depth %d returned %v, want ErrInjected in chain", r.name, depth, err)
			}
		}
	}
}

// TestFaultDisarm verifies a disarmed device works again.
func TestFaultDisarm(t *testing.T) {
	ds, _ := CFMini(Tiny)
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env.Dev.FailAfter(0, nil)
	if _, _, err := RunMLVC(env, &apps.BFS{Source: 0}, RunOpts{MaxSupersteps: 3}); err == nil {
		t.Fatal("armed device did not fail")
	}
	env.Dev.FailAfter(-1, nil)
	if _, _, err := RunMLVC(env, &apps.BFS{Source: 0}, RunOpts{MaxSupersteps: 3}); err != nil {
		t.Fatalf("disarmed device still failing: %v", err)
	}
}
