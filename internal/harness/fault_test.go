package harness

import (
	"errors"
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/ssd"
)

// TestFaultInjectionPropagates arms device failures at increasing depths
// and verifies every engine surfaces the error cleanly — no panics, no
// silent truncation of results.
func TestFaultInjectionPropagates(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}

	type runner struct {
		name string
		opts EnvOptions
		run  func(env *Env) error
	}
	runners := []runner{
		{"multilogvc", EnvOptions{}, func(env *Env) error {
			_, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
		{"graphchi", EnvOptions{}, func(env *Env) error {
			_, _, err := RunGraphChi(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
		{"grafboost", EnvOptions{}, func(env *Env) error {
			_, _, err := RunGraFBoost(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
		// Cached variants: the error must reach the engine through cache
		// misses, and the background prefetcher (multilogvc) must either
		// surface it or drop the warm cleanly — never panic or deadlock.
		{"multilogvc-cached", EnvOptions{CacheMB: 4}, func(env *Env) error {
			_, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
		{"graphchi-cached", EnvOptions{CacheMB: 4}, func(env *Env) error {
			_, _, err := RunGraphChi(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
		{"grafboost-cached", EnvOptions{CacheMB: 4}, func(env *Env) error {
			_, _, err := RunGraFBoost(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
			return err
		}},
	}

	for _, r := range runners {
		// Find how many device ops a clean run needs, then fail at a few
		// depths inside that window.
		env, err := Prepare(ds, r.opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.run(env); err != nil {
			t.Fatalf("%s: clean run failed: %v", r.name, err)
		}
		st := env.Dev.Stats()
		total := int64(st.BatchReads + st.BatchWrites)
		if total < 10 {
			t.Fatalf("%s: too few ops (%d) to inject into", r.name, total)
		}
		for _, depth := range []int64{0, 1, total / 4, total / 2} {
			env, err := Prepare(ds, r.opts)
			if err != nil {
				t.Fatal(err)
			}
			env.Dev.FailAfter(depth, nil)
			err = r.run(env)
			if err == nil {
				t.Errorf("%s: injected failure at depth %d was swallowed", r.name, depth)
				continue
			}
			if !errors.Is(err, ssd.ErrInjected) {
				t.Errorf("%s: depth %d returned %v, want ErrInjected in chain", r.name, depth, err)
			}
		}
	}
}

// TestTransientFaultsInvisible: transient faults within the retry budget
// must never surface — the run succeeds with values identical to a
// fault-free run, and the absorbed faults appear in the per-superstep
// stats and report totals.
func TestTransientFaultsInvisible(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, cacheMB := range []int{-1, 4} {
		mode := "uncached"
		if cacheMB > 0 {
			mode = "cached"
		}
		env, err := Prepare(ds, EnvOptions{CacheMB: cacheMB})
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
		if err != nil {
			t.Fatal(err)
		}
		st := env.Dev.Stats()
		total := int64(st.BatchReads + st.BatchWrites)

		env, err = Prepare(ds, EnvOptions{CacheMB: cacheMB})
		if err != nil {
			t.Fatal(err)
		}
		// One scripted transient fault in each quarter of the op window.
		env.Dev.FailTransientAt(1, total/4, total/2, 3*total/4)
		rep, got, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
		if err != nil {
			t.Fatalf("%s: transient faults within budget surfaced: %v", mode, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: value count %d != %d", mode, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: values diverge at vertex %d after retried faults", mode, i)
			}
		}
		if rep.TransientFaults == 0 || rep.Retries == 0 {
			t.Fatalf("%s: report shows %d transient faults, %d retries; want both > 0",
				mode, rep.TransientFaults, rep.Retries)
		}
		var ssFaults uint64
		for _, ss := range rep.Supersteps {
			ssFaults += ss.TransientFaults
		}
		if ssFaults != rep.TransientFaults {
			t.Errorf("%s: per-superstep faults sum to %d, report total is %d",
				mode, ssFaults, rep.TransientFaults)
		}
		if rep.RetryBackoff == 0 {
			t.Errorf("%s: retries charged no backoff to the virtual clock", mode)
		}
	}
}

// TestTransientExhaustionPropagates: with every attempt faulting, the
// retry budget runs out and the error must surface through every engine —
// cached and uncached — with both ErrTransient and ErrRetriesExhausted in
// the chain.
func TestTransientExhaustionPropagates(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	type runner struct {
		name string
		opts EnvOptions
		run  func(env *Env) error
	}
	runners := []runner{
		{"multilogvc", EnvOptions{}, func(env *Env) error {
			_, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 3})
			return err
		}},
		{"multilogvc-cached", EnvOptions{CacheMB: 4}, func(env *Env) error {
			_, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 3})
			return err
		}},
		{"graphchi", EnvOptions{}, func(env *Env) error {
			_, _, err := RunGraphChi(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 3})
			return err
		}},
		{"grafboost", EnvOptions{}, func(env *Env) error {
			_, _, err := RunGraFBoost(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 3})
			return err
		}},
		{"grafboost-cached", EnvOptions{CacheMB: 4}, func(env *Env) error {
			_, _, err := RunGraFBoost(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 3})
			return err
		}},
	}
	for _, r := range runners {
		env, err := Prepare(ds, r.opts)
		if err != nil {
			t.Fatal(err)
		}
		// Probability 1: every attempt faults, so every retry fails too
		// and the budget always exhausts.
		env.Dev.FailTransientProb(1.0, 42)
		err = r.run(env)
		if err == nil {
			t.Errorf("%s: exhausted retries did not surface", r.name)
			continue
		}
		if !errors.Is(err, ssd.ErrTransient) {
			t.Errorf("%s: %v does not wrap ErrTransient", r.name, err)
		}
		if !errors.Is(err, ssd.ErrRetriesExhausted) {
			t.Errorf("%s: %v does not wrap ErrRetriesExhausted", r.name, err)
		}
	}
}

// TestFaultDisarm verifies a disarmed device works again.
func TestFaultDisarm(t *testing.T) {
	ds, _ := CFMini(Tiny)
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env.Dev.FailAfter(0, nil)
	if _, _, err := RunMLVC(env, &apps.BFS{Source: 0}, RunOpts{MaxSupersteps: 3}); err == nil {
		t.Fatal("armed device did not fail")
	}
	env.Dev.FailAfter(-1, nil)
	if _, _, err := RunMLVC(env, &apps.BFS{Source: 0}, RunOpts{MaxSupersteps: 3}); err != nil {
		t.Fatalf("disarmed device still failing: %v", err)
	}
}
