package harness

import (
	"context"
	"errors"
	"testing"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/core"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// TestSpillForcedBitIdentical is the sort-budget acceptance check: a sort
// budget far below every interval's log forces the external sort-group on
// PageRank (combinable), BFS (traversal), and RandomWalk (non-combinable,
// multi-message), and the final values must be bit-identical to the
// unconstrained in-memory path.
func TestSpillForcedBitIdentical(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	progs := []struct {
		name string
		make func() vc.Program
	}{
		{"pagerank", func() vc.Program { return &apps.PageRank{} }},
		{"bfs", func() vc.Program { return &apps.BFS{Source: 0} }},
		{"randomwalk", func() vc.Program {
			return &apps.RandomWalk{SampleEvery: 8, WalkLength: 6, Seed: 99}
		}},
	}
	const steps = 6
	for _, p := range progs {
		env, err := Prepare(ds, EnvOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := RunMLVC(env, p.make(), RunOpts{MaxSupersteps: steps})
		if err != nil {
			t.Fatalf("%s reference: %v", p.name, err)
		}

		env, err = Prepare(ds, EnvOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rep, got, err := RunMLVC(env, p.make(), RunOpts{MaxSupersteps: steps, SortBudget: 256})
		if err != nil {
			t.Fatalf("%s spill-forced: %v", p.name, err)
		}
		valuesEqual(t, p.name+"/spilled", got, want)
		if rep.Spills == 0 || rep.SpillBytes == 0 {
			t.Fatalf("%s: 256-byte sort budget spilled %d batches (%d bytes) — spill path not exercised",
				p.name, rep.Spills, rep.SpillBytes)
		}
	}
}

// TestNoSpaceAbsorbedByReclaim: a single injected no-space fault on the
// message-log write path is absorbed by the reclaim-then-retry cycle — the
// run completes bit-identically and reports the fault and the sweep.
func TestNoSpaceAbsorbedByReclaim(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
	if err != nil {
		t.Fatal(err)
	}

	env, err = Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env.Dev.FailNoSpaceAt(25) // one credit: mid-run, absorbed by the retry
	rep, got, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
	if err != nil {
		t.Fatalf("single no-space fault not absorbed: %v", err)
	}
	valuesEqual(t, "nospace-absorbed", got, want)
	if rep.NoSpaceFaults == 0 || rep.Reclaims == 0 {
		t.Fatalf("report: %d no-space faults, %d reclaims — governance counters not threaded",
			rep.NoSpaceFaults, rep.Reclaims)
	}
}

// TestNoSpaceClassified: a no-space fault that persists through the
// post-reclaim retry must end the run classified as ssd.ErrNoSpace, never
// silently truncated.
func TestNoSpaceClassified(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env.Dev.FailNoSpaceAt(25, 26) // both attempts of one logical write
	_, _, err = RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
	if !errors.Is(err, ssd.ErrNoSpace) {
		t.Fatalf("persistent no-space surfaced %v, want ssd.ErrNoSpace", err)
	}
}

// TestQuotaRunReclaimsOrClassifies: under a hard byte quota between the
// final footprint and the unbounded peak, the run either completes
// bit-identically (reclaiming consumed log intervals along the way) or
// exits classified. Probing a range of quotas must exhibit the reclaim
// path at least once.
func TestQuotaRunReclaimsOrClassifies(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	floor := env.Dev.UsedBytes()

	reclaimedOnce := false
	for _, slack := range []int64{64 << 10, 16 << 10, 4 << 10, 1 << 10, 0} {
		env, err := Prepare(ds, EnvOptions{Capacity: floor + slack})
		if err != nil {
			t.Fatal(err)
		}
		rep, got, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5, CheckpointEvery: 2})
		if err != nil {
			if !errors.Is(err, ssd.ErrNoSpace) {
				t.Fatalf("quota %d: unclassified failure %v", floor+slack, err)
			}
			continue
		}
		valuesEqual(t, "quota-run", got, want)
		if rep.Reclaims > 0 {
			reclaimedOnce = true
		}
	}
	if !reclaimedOnce {
		t.Fatal("no probed quota exercised the reclaim path; tighten the slack schedule")
	}
}

// TestDeadlineCheckpointAndResume: an expired deadline stops the run at a
// superstep boundary with core.ErrDeadline after committing a checkpoint;
// resuming without the deadline finishes bit-identically.
func TestDeadlineCheckpointAndResume(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
	if err != nil {
		t.Fatal(err)
	}

	env, err = Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // deadline has certainly passed
	_, _, err = RunMLVC(env, &apps.PageRank{}, RunOpts{
		MaxSupersteps: 5, CheckpointEvery: 1, Context: ctx,
	})
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("expired deadline surfaced %v, want core.ErrDeadline", err)
	}
	rep, got, err := RunMLVC(env, &apps.PageRank{}, RunOpts{
		MaxSupersteps: 5, CheckpointEvery: 1, Resume: true,
	})
	if err != nil {
		t.Fatalf("resume after deadline: %v", err)
	}
	valuesEqual(t, "deadline-resume", got, want)
	_ = rep
}

// TestCancelAbortsBaselines: both baselines honor a cancelled context at
// the next superstep boundary with the context error in the chain.
func TestCancelAbortsBaselines(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunGraphChi(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("graphchi with cancelled ctx: %v, want context.Canceled", err)
	}
	if _, _, err := RunGraFBoost(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("grafboost with cancelled ctx: %v, want context.Canceled", err)
	}
}
