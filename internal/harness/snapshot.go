package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/metrics"
	"multilogvc/internal/obsv"
	"multilogvc/internal/vc"
)

// Continuous-benchmarking snapshots: a fixed suite of engine runs distilled
// into a schema-versioned JSON file (BENCH_<size>.json). CI regenerates a
// fresh snapshot on every push and diffs it against the committed baseline:
// deterministic counter increases (page counts, supersteps, spills) fail the
// build, wall-clock drift only warns — the virtual storage clock makes page
// and device-time accounting reproducible in a way host timing never is.

// SnapshotSchemaVersion identifies the snapshot layout. Bump it when a
// field changes meaning; Compare refuses to diff across versions.
const SnapshotSchemaVersion = 1

// StageSnap is one stage's row in a snapshot entry, mirrored from
// metrics.StageIO with a plain int64 time for stable JSON.
type StageSnap struct {
	Stage        string `json:"stage"`
	PagesRead    uint64 `json:"pages_read"`
	PagesWritten uint64 `json:"pages_written"`
	TimeNS       int64  `json:"time_ns"`
}

// SnapEntry is one benchmark run's distilled result. Entries are keyed by
// (Engine, App, Graph, CacheMB). Deterministic marks entries whose page
// and superstep counters must be bit-identical between runs of the same
// binary — uncached runs qualify (fixed-size log records make page counts
// a pure function of the message flow); cached runs do not (prefetch
// timing shifts hit/miss splits).
type SnapEntry struct {
	Engine        string      `json:"engine"`
	App           string      `json:"app"`
	Graph         string      `json:"graph"`
	CacheMB       int         `json:"cache_mb"`
	Deterministic bool        `json:"deterministic"`
	Supersteps    int         `json:"supersteps"`
	PagesRead     uint64      `json:"pages_read"`
	PagesWritten  uint64      `json:"pages_written"`
	StorageNS     int64       `json:"storage_ns"`
	ComputeNS     int64       `json:"compute_ns"`
	WallNS        int64       `json:"wall_ns"`
	CacheHitRate  float64     `json:"cache_hit_rate"`
	Spills        uint64      `json:"spills"`
	Retries       uint64      `json:"retries"`
	Stages        []StageSnap `json:"stages,omitempty"`
}

// Key identifies the entry across snapshots.
func (e SnapEntry) Key() string {
	return fmt.Sprintf("%s/%s/%s/cache%d", e.Engine, e.App, e.Graph, e.CacheMB)
}

// Snapshot is the whole benchmark state of one commit at one size.
type Snapshot struct {
	SchemaVersion int         `json:"schema_version"`
	Size          string      `json:"size"`
	Entries       []SnapEntry `json:"entries"`
}

// WriteFile writes the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSnapshot reads a snapshot file.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("harness: parse snapshot %s: %w", path, err)
	}
	return &s, nil
}

func entryFromReport(r *metrics.Report, cacheMB int, deterministic bool) SnapEntry {
	e := SnapEntry{
		Engine:        r.Engine,
		App:           r.App,
		Graph:         r.Graph,
		CacheMB:       cacheMB,
		Deterministic: deterministic,
		Supersteps:    len(r.Supersteps),
		PagesRead:     r.PagesRead,
		PagesWritten:  r.PagesWritten,
		StorageNS:     int64(r.StorageTime),
		ComputeNS:     int64(r.ComputeTime),
		WallNS:        int64(r.WallTime),
		CacheHitRate:  r.CacheHitRate(),
		Spills:        r.Spills,
		Retries:       r.Retries,
	}
	for _, st := range r.Stages {
		e.Stages = append(e.Stages, StageSnap{
			Stage:        st.Stage,
			PagesRead:    st.PagesRead,
			PagesWritten: st.PagesWritten,
			TimeNS:       int64(st.Time),
		})
	}
	return e
}

func sizeName(size Size) string {
	switch size {
	case Tiny:
		return "tiny"
	case Medium:
		return "medium"
	default:
		return "small"
	}
}

// TakeSnapshot runs the benchmark suite at the given size and distills it
// into a Snapshot. The suite covers all three engines on the paper's two
// workhorse apps, a sparser-graph run, and one cached MultiLogVC run
// (nondeterministic, tracked warn-only).
func TakeSnapshot(size Size) (*Snapshot, error) {
	cf, err := CFMini(size)
	if err != nil {
		return nil, err
	}
	yws, err := YWSMini(size)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{SchemaVersion: SnapshotSchemaVersion, Size: sizeName(size)}
	opts := RunOpts{MaxSupersteps: MaxSupersteps}

	type runSpec struct {
		ds      Dataset
		prog    func() vc.Program
		run     func(*Env, vc.Program, RunOpts) (*metrics.Report, []uint32, error)
		cacheMB int
	}
	specs := []runSpec{
		{cf, func() vc.Program { return &apps.PageRank{} }, RunMLVC, 0},
		{cf, func() vc.Program { return &apps.BFS{Source: 0} }, RunMLVC, 0},
		{yws, func() vc.Program { return &apps.CDLP{} }, RunMLVC, 0},
		{cf, func() vc.Program { return &apps.PageRank{} }, RunGraphChi, 0},
		{cf, func() vc.Program { return &apps.PageRank{} }, RunGraFBoost, 0},
		{cf, func() vc.Program { return &apps.PageRank{} }, RunMLVC, 8},
		// The serving daemon's batch-16 shape: uncached lane-batched
		// MultiBFS, so pages-per-query of the batching fast path is gated
		// deterministically like any other engine counter.
		{cf, func() vc.Program { return servingProg(ServingSources(cf.N, servingQueries)) }, RunMLVC, 0},
	}
	for _, sp := range specs {
		env, err := Prepare(sp.ds, EnvOptions{CacheMB: cacheOpt(sp.cacheMB)})
		if err != nil {
			return nil, err
		}
		rep, _, err := sp.run(env, sp.prog(), opts)
		if err != nil {
			return nil, err
		}
		snap.Entries = append(snap.Entries, entryFromReport(rep, sp.cacheMB, sp.cacheMB == 0))
	}
	// The durable-ingest shape: the fixed mutation stream through the
	// sync-flushed WAL plus one crash-atomic merge. Uncached and
	// fixed-seed, so page counts and WAL bytes gate deterministically.
	ir, err := runIngestBench(cf, true, 0)
	if err != nil {
		return nil, err
	}
	ie := SnapEntry{
		Engine:        "multilogvc",
		App:           ingestApp,
		Graph:         cf.Name,
		Deterministic: true,
		PagesRead:     ir.IO.PagesRead,
		PagesWritten:  ir.IO.PagesWritten,
		StorageNS:     int64(ir.IO.StorageTime()),
		WallNS:        int64(ir.Wall),
		Retries:       ir.IO.Retries,
	}
	for i, st := range ir.IO.Stages {
		if st.PagesRead == 0 && st.PagesWritten == 0 {
			continue
		}
		ie.Stages = append(ie.Stages, StageSnap{
			Stage:        obsv.Stage(i).String(),
			PagesRead:    st.PagesRead,
			PagesWritten: st.PagesWritten,
			TimeNS:       int64(st.Time),
		})
	}
	snap.Entries = append(snap.Entries, ie)
	sort.Slice(snap.Entries, func(i, j int) bool {
		return snap.Entries[i].Key() < snap.Entries[j].Key()
	})
	return snap, nil
}

// cacheOpt maps a snapshot cache size to EnvOptions.CacheMB semantics,
// where 0 falls through to the process default and < 0 forces uncached.
func cacheOpt(mb int) int {
	if mb == 0 {
		return -1
	}
	return mb
}

// DiffOptions tunes Compare.
type DiffOptions struct {
	// WallTolPct is the warn threshold on wall-time drift in percent
	// (either direction). <= 0 defaults to 50.
	WallTolPct float64
	// PageTolPct is the warn threshold on page-count drift of
	// nondeterministic (cached) entries. <= 0 defaults to 10.
	PageTolPct float64
	// MinPages is the absolute floor below which nondeterministic
	// page-count drift is ignored: a prefetcher warming 12 pages one run
	// and 0 the next is scheduling noise, not a trend, and percent
	// thresholds explode on small denominators. <= 0 defaults to 64.
	MinPages uint64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.WallTolPct <= 0 {
		o.WallTolPct = 50
	}
	if o.PageTolPct <= 0 {
		o.PageTolPct = 10
	}
	if o.MinPages <= 0 {
		o.MinPages = 64
	}
	return o
}

// DiffResult is the outcome of a baseline comparison. Regressions fail
// the CI gate; warnings are informational (wall drift, stale-baseline
// improvements, nondeterministic page drift).
type DiffResult struct {
	Regressions []string
	Warnings    []string
}

// OK reports whether the gate passes.
func (d *DiffResult) OK() bool { return len(d.Regressions) == 0 }

func pctDrift(base, fresh int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(fresh-base) / float64(base)
}

// Compare diffs a fresh snapshot against the committed baseline. On
// deterministic entries any page-count, superstep, spill, or retry
// increase — total or per-stage — is a regression; decreases warn that
// the baseline is stale. Virtual device time on deterministic entries
// warns on drift (it folds in batch shapes that worker scheduling can
// perturb). Wall time always warns only.
func Compare(base, fresh *Snapshot, opts DiffOptions) *DiffResult {
	opts = opts.withDefaults()
	d := &DiffResult{}
	if base.SchemaVersion != fresh.SchemaVersion {
		d.Regressions = append(d.Regressions, fmt.Sprintf(
			"schema version mismatch: baseline v%d vs fresh v%d — regenerate the baseline",
			base.SchemaVersion, fresh.SchemaVersion))
		return d
	}
	if base.Size != fresh.Size {
		d.Regressions = append(d.Regressions, fmt.Sprintf(
			"size mismatch: baseline %q vs fresh %q", base.Size, fresh.Size))
		return d
	}
	freshByKey := make(map[string]SnapEntry, len(fresh.Entries))
	for _, e := range fresh.Entries {
		freshByKey[e.Key()] = e
	}
	baseKeys := make(map[string]bool, len(base.Entries))
	for _, b := range base.Entries {
		baseKeys[b.Key()] = true
		f, ok := freshByKey[b.Key()]
		if !ok {
			d.Regressions = append(d.Regressions, fmt.Sprintf("%s: missing from fresh snapshot", b.Key()))
			continue
		}
		compareEntry(d, b, f, opts)
	}
	for _, f := range fresh.Entries {
		if !baseKeys[f.Key()] {
			d.Warnings = append(d.Warnings, fmt.Sprintf(
				"%s: new entry not in baseline — commit a regenerated baseline to track it", f.Key()))
		}
	}
	return d
}

func compareEntry(d *DiffResult, b, f SnapEntry, opts DiffOptions) {
	key := b.Key()
	regress := func(format string, args ...any) {
		d.Regressions = append(d.Regressions, key+": "+fmt.Sprintf(format, args...))
	}
	warn := func(format string, args ...any) {
		d.Warnings = append(d.Warnings, key+": "+fmt.Sprintf(format, args...))
	}
	counter := func(name string, base, fresh uint64) {
		switch {
		case fresh == base:
		case !b.Deterministic:
			if base < opts.MinPages && fresh < opts.MinPages {
				return
			}
			if drift := pctDrift(int64(base), int64(fresh)); drift > opts.PageTolPct || drift < -opts.PageTolPct {
				warn("%s drifted %+.1f%% (%d -> %d, nondeterministic entry)", name, drift, base, fresh)
			}
		case fresh > base:
			regress("%s increased %d -> %d (+%.1f%%)", name, base, fresh, pctDrift(int64(base), int64(fresh)))
		default:
			warn("%s decreased %d -> %d — baseline is stale, consider regenerating", name, base, fresh)
		}
	}
	counter("pages_read", b.PagesRead, f.PagesRead)
	counter("pages_written", b.PagesWritten, f.PagesWritten)
	counter("spills", b.Spills, f.Spills)
	counter("retries", b.Retries, f.Retries)
	if b.Deterministic && f.Supersteps != b.Supersteps {
		regress("superstep count changed %d -> %d", b.Supersteps, f.Supersteps)
	}

	// Per-stage page counts: an increase in any stage is a regression even
	// when the totals balance out — attribution moving between stages is a
	// behavior change the baseline should record deliberately.
	baseStages := make(map[string]StageSnap, len(b.Stages))
	for _, st := range b.Stages {
		baseStages[st.Stage] = st
	}
	for _, fs := range f.Stages {
		bs := baseStages[fs.Stage]
		counter("stage["+fs.Stage+"].pages_read", bs.PagesRead, fs.PagesRead)
		counter("stage["+fs.Stage+"].pages_written", bs.PagesWritten, fs.PagesWritten)
	}
	for _, bs := range b.Stages {
		found := false
		for _, fs := range f.Stages {
			if fs.Stage == bs.Stage {
				found = true
				break
			}
		}
		if !found && (bs.PagesRead > 0 || bs.PagesWritten > 0) {
			counter("stage["+bs.Stage+"].pages_read", bs.PagesRead, 0)
			counter("stage["+bs.Stage+"].pages_written", bs.PagesWritten, 0)
		}
	}

	// Virtual device time: reproducible in principle, but batch shapes can
	// shift with worker scheduling — warn-level until proven stable.
	if drift := pctDrift(b.StorageNS, f.StorageNS); drift > opts.PageTolPct || drift < -opts.PageTolPct {
		warn("storage time drifted %+.1f%% (%s -> %s)", drift,
			time.Duration(b.StorageNS), time.Duration(f.StorageNS))
	}
	if drift := pctDrift(b.WallNS, f.WallNS); drift > opts.WallTolPct || drift < -opts.WallTolPct {
		warn("wall time drifted %+.1f%% (%s -> %s)", drift,
			time.Duration(b.WallNS), time.Duration(f.WallNS))
	}
}
