package harness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// TestQuickCrossEngineEquality is the suite's strongest property test:
// for random graphs, random device geometries, and every program class,
// all three out-of-core engines must reproduce the in-memory reference
// engine's vertex values exactly.
func TestQuickCrossEngineEquality(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Random graph from a random generator family.
		var edges []graphio.Edge
		var err error
		switch rng.Intn(3) {
		case 0:
			edges, err = gen.RMAT(gen.DefaultRMAT(6+rng.Intn(3), 2+rng.Intn(5), rng.Int63()))
		case 1:
			edges, err = gen.Uniform(uint32(50+rng.Intn(300)), 200+rng.Intn(800), rng.Int63(), true)
		default:
			edges, err = gen.Grid(3+rng.Intn(12), 3+rng.Intn(12))
		}
		if err != nil || len(edges) == 0 {
			return err == nil
		}
		n := graphio.NumVertices(edges)

		// Random device geometry and memory budget.
		dev := ssd.MustOpen(ssd.Config{
			PageSize: 128 << rng.Intn(4), // 128..1024
			Channels: 1 + rng.Intn(8),
		})
		g, err := csr.Build(dev, "q", edges, csr.BuildOptions{
			NumVertices:    n,
			IntervalBudget: int64(256 + rng.Intn(4096)),
		})
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		env := &Env{Dev: dev, Graph: g, DS: Dataset{Name: "q", Edges: edges, N: n},
			MemBudget: int64(4096 + rng.Intn(1<<16)), PageSize: dev.PageSize()}

		// A random program.
		progs := []vc.Program{
			&apps.BFS{Source: uint32(rng.Intn(int(n)))},
			&apps.PageRank{},
			&apps.CDLP{},
			&apps.Coloring{},
			&apps.MIS{Seed: rng.Uint64()},
			&apps.RandomWalk{SampleEvery: uint32(1 + rng.Intn(64)), WalkLength: uint32(1 + rng.Intn(12)), Seed: rng.Uint64()},
			&apps.WCC{},
			&apps.KCore{K: uint32(1 + rng.Intn(5))},
		}
		prog := progs[rng.Intn(len(progs))]
		steps := 5 + rng.Intn(25)

		ref := vc.NewRef(edges, n).Run(prog, steps)
		opts := RunOpts{MaxSupersteps: steps, Workers: 1 + rng.Intn(4)}

		_, mlVals, err := RunMLVC(env, prog, opts)
		if err != nil {
			t.Logf("mlvc/%s: %v", prog.Name(), err)
			return false
		}
		_, gcVals, err := RunGraphChi(env, prog, opts)
		if err != nil {
			t.Logf("graphchi/%s: %v", prog.Name(), err)
			return false
		}
		var gbVals []uint32
		if _, ok := prog.(vc.Combiner); ok {
			_, gbVals, err = RunGraFBoost(env, prog, opts)
		} else {
			adapted := opts
			adapted.Adapted = true
			_, gbVals, err = RunGraFBoost(env, prog, adapted)
		}
		if err != nil {
			t.Logf("grafboost/%s: %v", prog.Name(), err)
			return false
		}
		for v := range ref.Values {
			if mlVals[v] != ref.Values[v] || gcVals[v] != ref.Values[v] || gbVals[v] != ref.Values[v] {
				t.Logf("%s seed %d: value[%d] ref=%d mlvc=%d graphchi=%d grafboost=%d",
					prog.Name(), seed, v, ref.Values[v], mlVals[v], gcVals[v], gbVals[v])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
