package harness

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"multilogvc/internal/apps"
	"multilogvc/internal/core"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// TestQuickCrossEngineEquality is the suite's strongest property test:
// for random graphs, random device geometries, and every program class,
// all three out-of-core engines must reproduce the in-memory reference
// engine's vertex values exactly.
func TestQuickCrossEngineEquality(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Random graph from a random generator family.
		var edges []graphio.Edge
		var err error
		switch rng.Intn(3) {
		case 0:
			edges, err = gen.RMAT(gen.DefaultRMAT(6+rng.Intn(3), 2+rng.Intn(5), rng.Int63()))
		case 1:
			edges, err = gen.Uniform(uint32(50+rng.Intn(300)), 200+rng.Intn(800), rng.Int63(), true)
		default:
			edges, err = gen.Grid(3+rng.Intn(12), 3+rng.Intn(12))
		}
		if err != nil || len(edges) == 0 {
			return err == nil
		}
		n := graphio.NumVertices(edges)

		// Random device geometry and memory budget.
		dev := ssd.MustOpen(ssd.Config{
			PageSize: 128 << rng.Intn(4), // 128..1024
			Channels: 1 + rng.Intn(8),
		})
		g, err := csr.Build(dev, "q", edges, csr.BuildOptions{
			NumVertices:    n,
			IntervalBudget: int64(256 + rng.Intn(4096)),
		})
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		env := &Env{Dev: dev, Graph: g, DS: Dataset{Name: "q", Edges: edges, N: n},
			MemBudget: int64(4096 + rng.Intn(1<<16)), PageSize: dev.PageSize()}

		// A random program.
		progs := []vc.Program{
			&apps.BFS{Source: uint32(rng.Intn(int(n)))},
			&apps.PageRank{},
			&apps.CDLP{},
			&apps.Coloring{},
			&apps.MIS{Seed: rng.Uint64()},
			&apps.RandomWalk{SampleEvery: uint32(1 + rng.Intn(64)), WalkLength: uint32(1 + rng.Intn(12)), Seed: rng.Uint64()},
			&apps.WCC{},
			&apps.KCore{K: uint32(1 + rng.Intn(5))},
		}
		prog := progs[rng.Intn(len(progs))]
		steps := 5 + rng.Intn(25)

		ref := vc.NewRef(edges, n).Run(prog, steps)
		opts := RunOpts{MaxSupersteps: steps, Workers: 1 + rng.Intn(4)}

		_, mlVals, err := RunMLVC(env, prog, opts)
		if err != nil {
			t.Logf("mlvc/%s: %v", prog.Name(), err)
			return false
		}
		_, gcVals, err := RunGraphChi(env, prog, opts)
		if err != nil {
			t.Logf("graphchi/%s: %v", prog.Name(), err)
			return false
		}
		var gbVals []uint32
		if _, ok := prog.(vc.Combiner); ok {
			_, gbVals, err = RunGraFBoost(env, prog, opts)
		} else {
			adapted := opts
			adapted.Adapted = true
			_, gbVals, err = RunGraFBoost(env, prog, adapted)
		}
		if err != nil {
			t.Logf("grafboost/%s: %v", prog.Name(), err)
			return false
		}
		for v := range ref.Values {
			if mlVals[v] != ref.Values[v] || gcVals[v] != ref.Values[v] || gbVals[v] != ref.Values[v] {
				t.Logf("%s seed %d: value[%d] ref=%d mlvc=%d graphchi=%d grafboost=%d",
					prog.Name(), seed, v, ref.Values[v], mlVals[v], gcVals[v], gbVals[v])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashRecovery is the crash-recovery property: for random
// graphs, random checkpoint intervals, and random crash depths, a run
// killed mid-flight and resumed from its latest checkpoint must produce
// values bit-identical to an uninterrupted run. Half the cases also
// interleave probabilistic corruption of a random log or the value file
// with the crash: the combined outcome must be either bit-identical
// values (healed or rolled back) or a classified ErrCorruptData — a
// silently wrong answer fails the property.
func TestQuickCrashRecovery(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		var edges []graphio.Edge
		var err error
		if rng.Intn(2) == 0 {
			edges, err = gen.Uniform(uint32(40+rng.Intn(200)), 150+rng.Intn(600), rng.Int63(), true)
		} else {
			edges, err = gen.Grid(3+rng.Intn(10), 3+rng.Intn(10))
		}
		if err != nil || len(edges) == 0 {
			return err == nil
		}
		n := graphio.NumVertices(edges)

		// One geometry for both devices, so the reference and the crashed
		// run see identical layouts.
		devCfg := ssd.Config{
			PageSize: 128 << rng.Intn(4),
			Channels: 1 + rng.Intn(8),
		}
		budget := int64(256 + rng.Intn(4096))
		mem := int64(4096 + rng.Intn(1<<16))
		mkEnv := func() (*Env, error) {
			dev := ssd.MustOpen(devCfg)
			g, err := csr.Build(dev, "q", edges, csr.BuildOptions{
				NumVertices:    n,
				IntervalBudget: budget,
			})
			if err != nil {
				return nil, err
			}
			return &Env{Dev: dev, Graph: g, DS: Dataset{Name: "q", Edges: edges, N: n},
				MemBudget: mem, PageSize: dev.PageSize()}, nil
		}

		src := uint32(rng.Intn(int(n)))
		progs := []func() vc.Program{
			func() vc.Program { return &apps.PageRank{} },
			func() vc.Program { return &apps.BFS{Source: src} },
			func() vc.Program { return &apps.CDLP{} },
			func() vc.Program { return &apps.WCC{} },
		}
		mkProg := progs[rng.Intn(len(progs))]
		steps := 4 + rng.Intn(8)
		every := 1 + rng.Intn(3) // random checkpoint interval
		opts := RunOpts{MaxSupersteps: steps, Workers: 1 + rng.Intn(4)}

		env, err := mkEnv()
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		_, want, err := RunMLVC(env, mkProg(), opts)
		if err != nil {
			t.Logf("reference: %v", err)
			return false
		}
		st := env.Dev.Stats()
		total := int64(st.BatchReads + st.BatchWrites)
		if total < 2 {
			return true
		}

		env, err = mkEnv()
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		depth := 1 + rng.Int63n(total-1) // random crash depth
		env.Dev.FailAfter(depth, nil)
		corrupting := rng.Intn(2) == 0
		if corrupting {
			// Sticky bit flips land in a redundant log (heals), the message
			// log, or the value file (both roll back). Checkpoint files are
			// left alone: their loss is classified separately.
			filters := []string{".elog", ".mlog.", ".values"}
			env.Dev.CorruptOnly(filters[rng.Intn(len(filters))])
			env.Dev.FailCorruptProb(0.002+rng.Float64()*0.01, uint64(seed)|1)
		}
		ckOpts := opts
		ckOpts.CheckpointEvery = every
		_, got, err := RunMLVC(env, mkProg(), ckOpts)
		switch {
		case err == nil:
			// The fault credit outlived the checkpointing run; nothing
			// crashed, so the values must already match.
			return equalValues(t, seed, got, want)
		case corrupting && errors.Is(err, core.ErrCorruptData):
			// Corruption outran the rollback budget before the crash hit:
			// a classified failure, which the property accepts.
			return true
		case !errors.Is(err, ssd.ErrInjected):
			t.Logf("seed %d: crash at depth %d surfaced %v, want ErrInjected", seed, depth, err)
			return false
		}
		env.Dev.FailAfter(-1, nil)
		ckOpts.Resume = true
		_, got, err = RunMLVC(env, mkProg(), ckOpts)
		if err != nil {
			if corrupting && errors.Is(err, core.ErrCorruptData) {
				return true
			}
			t.Logf("seed %d: resume after crash at depth %d (every %d): %v", seed, depth, every, err)
			return false
		}
		return equalValues(t, seed, got, want)
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func equalValues(t *testing.T, seed int64, got, want []uint32) bool {
	if len(got) != len(want) {
		t.Logf("seed %d: value count %d != %d", seed, len(got), len(want))
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			t.Logf("seed %d: value[%d] %d != %d", seed, i, got[i], want[i])
			return false
		}
	}
	return true
}
