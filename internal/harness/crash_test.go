package harness

import (
	"errors"
	"math/rand"
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/ckpt"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// crashApps are the programs the crash harness exercises: a combinable
// fixpoint app, a traversal, and an aux-state program (CDLP checkpoints
// per-in-edge label state too).
var crashApps = []struct {
	name string
	make func() vc.Program
}{
	{"pagerank", func() vc.Program { return &apps.PageRank{} }},
	{"bfs", func() vc.Program { return &apps.BFS{Source: 0} }},
	{"cdlp", func() vc.Program { return &apps.CDLP{} }},
}

func valuesEqual(t *testing.T, name string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: value count %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: values diverge at vertex %d: %d != %d", name, i, got[i], want[i])
		}
	}
}

// TestCrashRecoveryBitIdentical is the crash-injection harness: for each
// app, cached and uncached, it (1) runs uninterrupted for the reference
// values, (2) kills a checkpointing run at randomized device-op depths by
// arming a permanent fault, (3) restarts from the latest checkpoint on the
// same device, and (4) verifies the final values are bit-identical to the
// uninterrupted run.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 6
	const every = 2

	for _, cacheMB := range []int{-1, 4} {
		mode := "uncached"
		if cacheMB > 0 {
			mode = "cached"
		}
		for _, app := range crashApps {
			name := app.name + "/" + mode
			opts := EnvOptions{CacheMB: cacheMB}

			// Reference: uninterrupted, no checkpointing.
			env, err := Prepare(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			_, want, err := RunMLVC(env, app.make(), RunOpts{MaxSupersteps: steps})
			if err != nil {
				t.Fatalf("%s: reference run: %v", name, err)
			}
			st := env.Dev.Stats()
			total := int64(st.BatchReads + st.BatchWrites)
			if total < 10 {
				t.Fatalf("%s: too few ops (%d) to crash into", name, total)
			}

			// Checkpointing alone must not perturb the computation, and its
			// overhead must be visible in the report.
			env, err = Prepare(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			rep, got, err := RunMLVC(env, app.make(), RunOpts{MaxSupersteps: steps, CheckpointEvery: every})
			if err != nil {
				t.Fatalf("%s: checkpointing run: %v", name, err)
			}
			valuesEqual(t, name+"/no-crash", got, want)
			if rep.Checkpoints == 0 || rep.CheckpointPages == 0 {
				t.Fatalf("%s: checkpointing run reported %d checkpoints, %d pages",
					name, rep.Checkpoints, rep.CheckpointPages)
			}

			// Crash at randomized op depths and resume on the same device.
			rng := rand.New(rand.NewSource(0x5EED ^ int64(len(app.name)) ^ int64(cacheMB)))
			depths := []int64{1 + rng.Int63n(total/4), total/4 + rng.Int63n(total/4), total/2 + rng.Int63n(total/2)}
			for _, depth := range depths {
				env, err := Prepare(ds, opts)
				if err != nil {
					t.Fatal(err)
				}
				env.Dev.FailAfter(depth, nil)
				_, got, err := RunMLVC(env, app.make(), RunOpts{MaxSupersteps: steps, CheckpointEvery: every})
				if err == nil {
					// The fault credit outlived the run: nothing crashed.
					valuesEqual(t, name+"/uncrashed", got, want)
					continue
				}
				if !errors.Is(err, ssd.ErrInjected) {
					t.Fatalf("%s: crash at depth %d surfaced %v, want ErrInjected in chain", name, depth, err)
				}
				env.Dev.FailAfter(-1, nil)
				rep, got, err := RunMLVC(env, app.make(),
					RunOpts{MaxSupersteps: steps, CheckpointEvery: every, Resume: true})
				if err != nil {
					t.Fatalf("%s: resume after crash at depth %d: %v", name, depth, err)
				}
				valuesEqual(t, name, got, want)
				if rep.Resumed && rep.ResumeStep == 0 {
					t.Errorf("%s: resumed run reports ResumeStep 0", name)
				}
			}
		}
	}
}

// TestResumeWithoutCheckpointStartsFresh: Resume on a device with no
// checkpoint degrades to a normal run from superstep 0.
func TestResumeWithoutCheckpointStartsFresh(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	env2, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, got, err := RunMLVC(env2, &apps.PageRank{}, RunOpts{MaxSupersteps: 4, Resume: true})
	if err != nil {
		t.Fatalf("resume with no checkpoint: %v", err)
	}
	if rep.Resumed {
		t.Error("run with no checkpoint on device claims it resumed")
	}
	valuesEqual(t, "fresh-resume", got, want)
}

// TestResumeCorruptCheckpointFails: when every committed slot's payload
// is bit-rotted, Resume must fail with ckpt.ErrCorrupt rather than
// silently recompute.
func TestResumeCorruptCheckpointFails(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 4, CheckpointEvery: 1}); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in both slots, leaving the manifests committed.
	for _, slot := range []string{"0", "1"} {
		data, err := env.Dev.OpenFile(ds.Name + ".pagerank.ckpt." + slot)
		if err != nil {
			continue
		}
		buf := make([]byte, env.Dev.PageSize())
		if err := data.ReadPage(0, buf); err != nil {
			t.Fatal(err)
		}
		buf[0] ^= 0xff
		if err := data.WritePage(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 4, Resume: true})
	if !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("resume over torn checkpoints returned %v, want ckpt.ErrCorrupt", err)
	}
}

// TestResumeFallsBackToOlderCheckpoint tears only the newest slot; resume
// must restart from the older committed checkpoint and still converge to
// the reference values.
func TestResumeFallsBackToOlderCheckpoint(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 6})
	if err != nil {
		t.Fatal(err)
	}

	env2, err := Prepare(ds, EnvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunMLVC(env2, &apps.PageRank{}, RunOpts{MaxSupersteps: 6, CheckpointEvery: 1}); err != nil {
		t.Fatal(err)
	}
	// Find the newest slot and tear it.
	best, err := ckpt.Load(env2.Dev, ds.Name+".pagerank")
	if err != nil {
		t.Fatal(err)
	}
	meta, err := env2.Dev.OpenFile(ds.Name + ".pagerank.ckpt." +
		string(rune('0'+best.Seq%2)) + ".meta")
	if err != nil {
		t.Fatal(err)
	}
	if err := meta.Truncate(); err != nil {
		t.Fatal(err)
	}
	rep, got, err := RunMLVC(env2, &apps.PageRank{}, RunOpts{MaxSupersteps: 6, Resume: true})
	if err != nil {
		t.Fatalf("resume after tearing newest slot: %v", err)
	}
	if !rep.Resumed {
		t.Error("run did not resume from the surviving older checkpoint")
	}
	valuesEqual(t, "fallback", got, want)
}
