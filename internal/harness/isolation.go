package harness

import (
	"fmt"

	"multilogvc/internal/core"
	"multilogvc/internal/metrics"
	"multilogvc/internal/ssd"
)

// Isolation-cost experiment: what a batch fault isolation event costs.
// When a lane-batched serving execution dies of a retryable device fault,
// mlvcd re-runs every surviving member as an individual execution instead
// of failing all K companions (internal/serve batch fault isolation).
// The worst case therefore pays the failed batch's IO up to the fault
// PLUS K solo runs. This experiment measures that against the two clean
// baselines — one batch-K execution and K sequential solos — so the
// price of "no companion sees its neighbor's fault" is a number, not a
// hope. Uncached, like the serving experiment, so pages/query is a pure
// function of the message flow.

// IsolationCost answers the same 16 BFS queries three ways: one clean
// lane-batched execution, 16 sequential solo executions, and a full
// isolation event (the batch dies of corrupt scratch on its first
// read-back, then every member re-runs solo).
func IsolationCost(size Size) (*metrics.Table, error) {
	cf, err := CFMini(size)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title: fmt.Sprintf("isolation: %d BFS queries on %s, uncached — clean batch vs solos vs isolation event",
			servingQueries, cf.Name),
		Headers: []string{"path", "executions", "pages read/query", "pages written/query", "vs clean batch"},
	}
	sources := ServingSources(cf.N, servingQueries)

	type row struct {
		name       string
		executions int
		pagesRead  uint64
		pagesWrite uint64
	}
	var rows []row

	// Clean batch-16: the serving fast path.
	env, err := Prepare(cf, EnvOptions{CacheMB: -1})
	if err != nil {
		return nil, err
	}
	rep, _, err := RunMLVC(env, servingProg(sources), RunOpts{MaxSupersteps: 50})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"batch16 clean", 1, rep.PagesRead, rep.PagesWritten})

	// 16 sequential solos: serving with batching off.
	env, err = Prepare(cf, EnvOptions{CacheMB: -1})
	if err != nil {
		return nil, err
	}
	var soloRead, soloWrite uint64
	for _, src := range sources {
		rep, _, err := RunMLVC(env, servingProg([]uint32{src}), RunOpts{MaxSupersteps: 50})
		if err != nil {
			return nil, err
		}
		soloRead += rep.PagesRead
		soloWrite += rep.PagesWritten
	}
	rows = append(rows, row{"16 solos", servingQueries, soloRead, soloWrite})

	// Isolation event: the batch run's scratch namespace (".iso.")
	// corrupts on first read-back, the run dies classified, and all 16
	// members re-run solo — the exact sequence internal/serve executes.
	env, err = Prepare(cf, EnvOptions{CacheMB: -1})
	if err != nil {
		return nil, err
	}
	env.Dev.CorruptOnly(".iso.")
	env.Dev.FailCorruptProb(1, 99)
	sc := ssd.NewScope()
	_, ferr := core.New(env.Graph, core.Config{
		MemoryBudget:  env.MemBudget,
		MaxSupersteps: 50,
		RunTag:        "iso",
		Ephemeral:     true,
		Scope:         sc,
	}).Run(servingProg(sources))
	if ferr == nil {
		return nil, fmt.Errorf("isolation: corrupt-scratch batch unexpectedly succeeded")
	}
	env.Dev.FailCorruptProb(0, 0)
	failedSt := sc.Stats()
	isoRead, isoWrite := failedSt.PagesRead, failedSt.PagesWritten
	for _, src := range sources {
		rep, _, err := RunMLVC(env, servingProg([]uint32{src}), RunOpts{MaxSupersteps: 50})
		if err != nil {
			return nil, err
		}
		isoRead += rep.PagesRead
		isoWrite += rep.PagesWritten
	}
	rows = append(rows, row{"isolation event", 1 + servingQueries, isoRead, isoWrite})

	base := float64(rows[0].pagesRead + rows[0].pagesWrite)
	for _, r := range rows {
		t.AddRow(
			r.name,
			fmt.Sprint(r.executions),
			fmt.Sprintf("%.1f", float64(r.pagesRead)/servingQueries),
			fmt.Sprintf("%.1f", float64(r.pagesWrite)/servingQueries),
			fmt.Sprintf("%.2fx", float64(r.pagesRead+r.pagesWrite)/base),
		)
	}
	return t, nil
}
