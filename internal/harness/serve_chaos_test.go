package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/serve"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// TestServingChaosSoak is the serving-plane resilience soak: concurrent
// clients hammer a live daemon while the device injects transient,
// corrupt, and no-space faults, and every response must be either
// bit-identical to the in-memory reference or classified — never a
// mangled result, never an unclassified internal error, never a dead
// daemon. Then a hard fault storm must flip readiness (breaker open),
// and a healed device must bring it back. CI runs this under -race.
//
// Corruption is scoped to query scratch (".q" namespaces): injected
// flips are sticky on the stored pages, and poisoning the resident
// adjacency would turn the recovery phases into a corruption test.
func TestServingChaosSoak(t *testing.T) {
	edges, err := gen.RMAT(gen.DefaultRMAT(9, 8, 4242))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 9
	dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
	g, err := csr.Build(dev, "g", edges, csr.BuildOptions{NumVertices: n, IntervalBudget: 2048})
	if err != nil {
		t.Fatal(err)
	}
	cache := pagecache.NewSharded(256, dev.PageSize(), 4)
	dev.AttachCache(cache)

	// In-memory references for every source the storm will query.
	sources := ServingSources(n, 8)
	refBFS := make(map[uint32][]uint32, len(sources))
	refSSSP := make(map[uint32][]uint32, len(sources))
	for _, src := range sources {
		refBFS[src] = vc.NewRef(edges, n).Run(&apps.BFS{Source: src}, 100).Values
		refSSSP[src] = vc.NewRef(edges, n).Run(&apps.SSSP{Source: src}, 100).Values
	}

	s, err := serve.New(serve.Options{
		Graph:             g,
		Cache:             cache,
		BatchWindow:       3 * time.Millisecond,
		MaxBatch:          8,
		MaxConcurrent:     2,
		BreakerWindow:     16,
		BreakerThreshold:  0.6,
		BreakerMinSamples: 6,
		BreakerCooldown:   200 * time.Millisecond,
		BreakerProbes:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(path string, body interface{}) (int, []byte) {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}
	getStatus := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	errCode := func(data []byte) string {
		var e struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if json.Unmarshal(data, &e) != nil {
			return ""
		}
		return e.Error.Code
	}
	// The bit-identical-or-classified invariant, shared by all phases.
	classifiedOK := map[string]bool{
		"device_fault": true, "corrupt": true, "no_space": true,
		"deadline": true, "breaker_open": true, "overloaded": true,
	}

	// Phase 1: mixed-fault storm under concurrent clients. Probabilities
	// are per page operation, and a run touches hundreds of 512-byte
	// pages, so per-run fault rates are far higher than these look.
	dev.CorruptOnly(".q")
	dev.FailTransientProb(0.02, 101)
	dev.FailCorruptProb(0.001, 102)
	dev.FailNoSpaceProb(0.01, 103)

	clients, perClient := 4, 24
	if testing.Short() {
		clients, perClient = 2, 8
	}
	var mu sync.Mutex
	codeCounts := map[string]int{}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				src := sources[(c*perClient+i)%len(sources)]
				kind, want := "bfs", refBFS[src]
				if (c+i)%3 == 1 {
					kind, want = "sssp", refSSSP[src]
				}
				if (c+i)%7 == 6 {
					// Walks read only the adjacency: success or classified.
					status, data := post("/walk", map[string]interface{}{
						"source": src, "walks": 3, "length": 6, "seed": c*100 + i,
					})
					if status != http.StatusOK && !classifiedOK[errCode(data)] {
						t.Errorf("client %d walk %d: status %d unclassified: %s", c, i, status, data)
					}
					continue
				}
				status, data := post("/query/"+kind, map[string]interface{}{
					"source": src, "values": true, "deadline_ms": 30_000,
				})
				var label string
				if status == http.StatusOK {
					var pr struct {
						Isolated  bool     `json:"isolated"`
						AllValues []uint32 `json:"all_values"`
					}
					if err := json.Unmarshal(data, &pr); err != nil {
						t.Errorf("client %d query %d: bad body: %v", c, i, err)
						continue
					}
					for v := range want {
						if pr.AllValues[v] != want[v] {
							t.Errorf("client %d %s from %d vertex %d: served %d != reference %d (isolated=%v)",
								c, kind, src, v, pr.AllValues[v], want[v], pr.Isolated)
							break
						}
					}
					label = "ok"
					if pr.Isolated {
						label = "ok_isolated"
					}
				} else {
					code := errCode(data)
					if !classifiedOK[code] {
						t.Errorf("client %d %s query %d: status %d unclassified %q: %s",
							c, kind, i, status, code, data)
						continue
					}
					label = code
				}
				mu.Lock()
				codeCounts[label]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	t.Logf("storm outcomes: %v", codeCounts)
	if codeCounts["ok"]+codeCounts["ok_isolated"] == 0 {
		t.Error("storm never completed a successful query — fault rates too hot to exercise the success path")
	}

	// Phase 2: hard fault storm must open the breaker and flip readiness.
	dev.FailTransientProb(1, 104)
	flipDeadline := time.Now().Add(10 * time.Second)
	flipped := false
	for time.Now().Before(flipDeadline) {
		status, data := post("/query/bfs", map[string]interface{}{
			"source": sources[0], "deadline_ms": 10_000,
		})
		if status == http.StatusOK {
			t.Fatalf("query succeeded with transient probability 1: %s", data)
		}
		if !classifiedOK[errCode(data)] {
			t.Fatalf("hard storm: status %d unclassified: %s", status, data)
		}
		if getStatus("/readyz") == http.StatusServiceUnavailable {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("readiness never flipped under a sustained hard fault storm")
	}
	if getStatus("/healthz") != http.StatusOK {
		t.Fatal("liveness flipped with readiness — healthz must stay 200 while the process serves")
	}

	// Phase 3: the device heals; half-open probes must close the breaker
	// and restore readiness.
	dev.FailTransientProb(0, 0)
	dev.FailCorruptProb(0, 0)
	dev.FailNoSpaceProb(0, 0)
	healDeadline := time.Now().Add(15 * time.Second)
	healed := false
	for time.Now().Before(healDeadline) {
		status, _ := post("/query/bfs", map[string]interface{}{
			"source": sources[0], "deadline_ms": 10_000,
		})
		if status == http.StatusOK && getStatus("/readyz") == http.StatusOK {
			healed = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !healed {
		t.Fatal("daemon never recovered readiness after the device healed")
	}

	// Phase 4: final parity on a healed daemon, then drain and audit the
	// shared state for leaks.
	for _, src := range sources[:2] {
		status, data := post("/query/bfs", map[string]interface{}{
			"source": src, "values": true, "deadline_ms": 30_000,
		})
		if status != http.StatusOK {
			t.Fatalf("final parity query: status %d: %s", status, data)
		}
		var pr struct {
			AllValues []uint32 `json:"all_values"`
		}
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		for v := range refBFS[src] {
			if pr.AllValues[v] != refBFS[src][v] {
				t.Fatalf("final parity from %d vertex %d: %d != %d",
					src, v, pr.AllValues[v], refBFS[src][v])
			}
		}
	}
	s.Close()
	if p := cache.PinnedPages(); p != 0 {
		t.Fatalf("%d pages left pinned after the soak", p)
	}
	var leaked []string
	for _, name := range dev.ListFiles() {
		if strings.HasPrefix(name, "g.q") {
			leaked = append(leaked, name)
		}
	}
	if len(leaked) > 0 {
		t.Fatalf("query scratch leaked: %s", fmt.Sprint(leaked))
	}
}
