package harness

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSnapshotRoundTrip: emit -> parse -> compare must be lossless, and a
// freshly taken snapshot must diff clean against itself.
func TestSnapshotRoundTrip(t *testing.T) {
	snap, err := TakeSnapshot(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != SnapshotSchemaVersion || snap.Size != "tiny" {
		t.Fatalf("snapshot header = v%d %q", snap.SchemaVersion, snap.Size)
	}
	if len(snap.Entries) < 5 {
		t.Fatalf("suite too small: %d entries", len(snap.Entries))
	}
	for _, e := range snap.Entries {
		// The ingest entry is a mutation stream, not a superstep run.
		if e.PagesRead == 0 || (e.Supersteps == 0 && e.App != ingestApp) {
			t.Fatalf("empty entry %s: %+v", e.Key(), e)
		}
		if e.Deterministic != (e.CacheMB == 0) {
			t.Fatalf("determinism flag wrong for %s", e.Key())
		}
		// Per-stage pages must partition the entry's totals exactly.
		var pr, pw uint64
		for _, st := range e.Stages {
			pr += st.PagesRead
			pw += st.PagesWritten
		}
		if pr != e.PagesRead || pw != e.PagesWritten {
			t.Fatalf("%s: stage sums %d/%d != totals %d/%d",
				e.Key(), pr, pw, e.PagesRead, e.PagesWritten)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_tiny.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip lost data:\nout:  %+v\nback: %+v", snap, back)
	}

	d := Compare(snap, back, DiffOptions{})
	if !d.OK() || len(d.Warnings) != 0 {
		t.Fatalf("self-compare not clean: regressions=%v warnings=%v", d.Regressions, d.Warnings)
	}
}

// TestSnapshotDeterministicEntriesRepeat verifies the claim the CI gate
// rests on: deterministic (uncached) entries produce bit-identical page,
// superstep, and per-stage counters on a second run of the same suite.
func TestSnapshotDeterministicEntriesRepeat(t *testing.T) {
	a, err := TakeSnapshot(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TakeSnapshot(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i, ea := range a.Entries {
		eb := b.Entries[i]
		if ea.Key() != eb.Key() {
			t.Fatalf("entry order differs at %d: %s vs %s", i, ea.Key(), eb.Key())
		}
		if !ea.Deterministic {
			continue
		}
		if ea.PagesRead != eb.PagesRead || ea.PagesWritten != eb.PagesWritten ||
			ea.Supersteps != eb.Supersteps || ea.Spills != eb.Spills || ea.Retries != eb.Retries {
			t.Fatalf("%s: counters differ between runs:\n%+v\n%+v", ea.Key(), ea, eb)
		}
		if !reflect.DeepEqual(ea.Stages, eb.Stages) {
			t.Fatalf("%s: stage rows differ between runs:\n%+v\n%+v", ea.Key(), ea.Stages, eb.Stages)
		}
	}
	// The deterministic entries must diff clean through the gate too.
	d := Compare(a, b, DiffOptions{})
	if !d.OK() {
		t.Fatalf("repeat-run compare regressed: %v", d.Regressions)
	}
}

// TestCompareGateFires asserts the regression gate on synthetic data: a
// seeded page-count increase on a deterministic entry fails, tolerated
// nondeterministic drift stays quiet, and improvements only warn.
func TestCompareGateFires(t *testing.T) {
	base := &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Size:          "small",
		Entries: []SnapEntry{
			{Engine: "multilogvc", App: "pagerank", Graph: "cf-mini", Deterministic: true,
				Supersteps: 15, PagesRead: 1000, PagesWritten: 400,
				Stages: []StageSnap{
					{Stage: "vertex", PagesRead: 700, PagesWritten: 300},
					{Stage: "sortgroup", PagesRead: 300, PagesWritten: 100},
				}},
			{Engine: "multilogvc", App: "pagerank", Graph: "cf-mini", CacheMB: 8,
				Supersteps: 15, PagesRead: 800, PagesWritten: 400, WallNS: 1e9,
				Stages: []StageSnap{{Stage: "prefetch", PagesRead: 12}}},
		},
	}
	clone := func() *Snapshot {
		cp := *base
		cp.Entries = append([]SnapEntry(nil), base.Entries...)
		for i := range cp.Entries {
			cp.Entries[i].Stages = append([]StageSnap(nil), base.Entries[i].Stages...)
		}
		return &cp
	}

	// Identical snapshots: gate quiet.
	if d := Compare(base, clone(), DiffOptions{}); !d.OK() || len(d.Warnings) != 0 {
		t.Fatalf("identical compare not clean: %+v", d)
	}

	// Seeded regression: deterministic total page count up.
	worse := clone()
	worse.Entries[0].PagesRead += 50
	d := Compare(base, worse, DiffOptions{})
	if d.OK() {
		t.Fatal("gate did not fire on deterministic page-count increase")
	}
	if !strings.Contains(strings.Join(d.Regressions, "\n"), "pages_read increased") {
		t.Fatalf("unexpected regression text: %v", d.Regressions)
	}

	// Seeded regression: a single stage's pages up, totals untouched.
	shifted := clone()
	shifted.Entries[0].Stages[1].PagesRead += 25
	if d := Compare(base, shifted, DiffOptions{}); d.OK() {
		t.Fatal("gate did not fire on per-stage page increase")
	}

	// Superstep count change is a regression in either direction.
	steps := clone()
	steps.Entries[0].Supersteps--
	if d := Compare(base, steps, DiffOptions{}); d.OK() {
		t.Fatal("gate did not fire on superstep-count change")
	}

	// Nondeterministic drift within tolerance: silent.
	cachedOK := clone()
	cachedOK.Entries[1].PagesRead += 40 // +5% < 10% tolerance
	if d := Compare(base, cachedOK, DiffOptions{}); !d.OK() || len(d.Warnings) != 0 {
		t.Fatalf("tolerated nondet drift not silent: %+v", d)
	}

	// Tiny absolute counts on nondeterministic entries stay quiet even at
	// huge percent drift (prefetcher warming 12 pages one run, 0 the next).
	cachedNoise := clone()
	cachedNoise.Entries[1].Stages[0].PagesRead = 0 // -100%, but below MinPages
	if d := Compare(base, cachedNoise, DiffOptions{}); !d.OK() || len(d.Warnings) != 0 {
		t.Fatalf("sub-floor nondet drift not silent: %+v", d)
	}

	// Nondeterministic drift beyond tolerance: warns, does not fail.
	cachedWarn := clone()
	cachedWarn.Entries[1].PagesRead += 200 // +25%
	if d := Compare(base, cachedWarn, DiffOptions{}); !d.OK() || len(d.Warnings) == 0 {
		t.Fatalf("large nondet drift should warn only: %+v", d)
	}

	// Improvement on a deterministic entry: warning (stale baseline).
	better := clone()
	better.Entries[0].PagesRead -= 100
	better.Entries[0].Stages[0].PagesRead -= 100
	if d := Compare(base, better, DiffOptions{}); !d.OK() || len(d.Warnings) == 0 {
		t.Fatalf("improvement should warn, not fail: %+v", d)
	}

	// Missing entry: regression. Extra entry: warning.
	missing := clone()
	missing.Entries = missing.Entries[:1]
	if d := Compare(base, missing, DiffOptions{}); d.OK() {
		t.Fatal("gate did not fire on missing entry")
	}
	extra := clone()
	extra.Entries = append(extra.Entries, SnapEntry{Engine: "x", App: "y", Graph: "z"})
	if d := Compare(base, extra, DiffOptions{}); !d.OK() || len(d.Warnings) == 0 {
		t.Fatalf("extra entry should warn: %+v", d)
	}

	// Schema version mismatch refuses the diff.
	vbump := clone()
	vbump.SchemaVersion++
	if d := Compare(base, vbump, DiffOptions{}); d.OK() {
		t.Fatal("gate did not fire on schema version mismatch")
	}
}
