package harness

import (
	"fmt"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/metrics"
	"multilogvc/internal/vc"
)

// Serving-throughput experiment: how much device IO multi-source query
// batching saves. The daemon (cmd/mlvcd) coalesces K compatible point
// queries into one lane-batched MultiBFS execution; here we replay that
// shape deterministically — the same 16 queries answered in executions
// of batch 1 (sequential singles), 4, and 16 — on an uncached device, so
// pages-per-query is a pure function of the message flow and CI can gate
// on it via the benchmark snapshot.

// servingQueries is the fixed query count every batch size must answer.
const servingQueries = 16

// ServingSources spreads k deterministic query sources across [0, n):
// the daemon's steady-state mix of near and far sources, reproducible
// across processes (no RNG).
func ServingSources(n uint32, k int) []uint32 {
	out := make([]uint32, k)
	for i := range out {
		// Golden-ratio stride scatters sources across intervals without
		// clustering at the power-law head.
		out[i] = uint32((uint64(i)*11400714819323198485 + 7) % uint64(n))
	}
	return out
}

// servingProg builds the lane-batched program for a query group; group
// size 1 uses the plain single-source BFS the daemon's parity contract
// is defined against.
func servingProg(group []uint32) vc.Program {
	if len(group) == 1 {
		return &apps.BFS{Source: group[0]}
	}
	p, err := apps.NewMultiBFS(group)
	if err != nil {
		// group sizes are 1..16, well inside MaxLanes; unreachable.
		panic(err)
	}
	return p
}

// Serving measures pages per query and host-side throughput for the same
// 16 BFS point queries answered at batch sizes 1, 4, and 16 — the
// mlvc-bench face of the daemon's batching contract.
func Serving(size Size) (*metrics.Table, error) {
	cf, err := CFMini(size)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("serving: %d BFS queries on %s, uncached, by batch size", servingQueries, cf.Name),
		Headers: []string{"batch", "executions", "pages read/query", "pages written/query", "storage time/query", "qps (host)"},
	}
	sources := ServingSources(cf.N, servingQueries)
	for _, batch := range []int{1, 4, 16} {
		env, err := Prepare(cf, EnvOptions{CacheMB: -1})
		if err != nil {
			return nil, err
		}
		var pagesRead, pagesWritten uint64
		var storage time.Duration
		start := time.Now()
		for off := 0; off < servingQueries; off += batch {
			rep, _, err := RunMLVC(env, servingProg(sources[off:off+batch]), RunOpts{MaxSupersteps: 50})
			if err != nil {
				return nil, err
			}
			pagesRead += rep.PagesRead
			pagesWritten += rep.PagesWritten
			storage += rep.StorageTime
		}
		wall := time.Since(start)
		t.AddRow(
			fmt.Sprint(batch),
			fmt.Sprint(servingQueries/batch),
			fmt.Sprintf("%.1f", float64(pagesRead)/servingQueries),
			fmt.Sprintf("%.1f", float64(pagesWritten)/servingQueries),
			metrics.D(storage/servingQueries),
			fmt.Sprintf("%.1f", float64(servingQueries)/wall.Seconds()),
		)
	}
	return t, nil
}
