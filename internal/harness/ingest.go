package harness

import (
	"fmt"
	"math/rand"
	"time"

	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/graphio"
	"multilogvc/internal/ssd"
)

// IngestChaosOutcome summarizes one streaming-ingest chaos case for
// logging: what the schedule did and how often durability was exercised.
type IngestChaosOutcome struct {
	Seed     int64
	Schedule string
	Batches  int // mutation batches submitted
	Acked    int // batches acknowledged (durable by contract)
	Crashes  int // kill -9 style reopens: fresh device over the same dir
	// Faults are the classified sentinel families hit along the way.
	// An unclassified failure — above all a lost acknowledged mutation —
	// fails the case.
	Faults []string
}

// edgeBag is a brute-force multiset adjacency oracle, mirroring the
// delta overlay's semantics: an add appends an instance, a del removes
// one matching instance if present.
type edgeBag map[graphio.Edge]int

func (b edgeBag) apply(m csr.Mutation) {
	e := graphio.Edge{Src: m.Src, Dst: m.Dst}
	if !m.Del {
		b[e]++
		return
	}
	if b[e] > 0 {
		b[e]--
		if b[e] == 0 {
			delete(b, e)
		}
	}
}

func (b edgeBag) clone() edgeBag {
	c := make(edgeBag, len(b))
	for e, n := range b {
		c[e] = n
	}
	return c
}

func (b edgeBag) edges() []graphio.Edge {
	var out []graphio.Edge
	for e, n := range b {
		for i := 0; i < n; i++ {
			out = append(out, e)
		}
	}
	graphio.SortEdges(out)
	return out
}

func edgeListEqual(a, b []graphio.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// matchPrefix reports whether got equals base plus some prefix of batch.
// That is exactly the set of states a crashed ingest may legally recover
// to: WAL frames land in submission order, so the durable suffix of a
// failed batch is always a prefix of it. Returns the matching prefix
// length.
func matchPrefix(got []graphio.Edge, base edgeBag, batch []csr.Mutation) (int, bool) {
	cand := base.clone()
	for k := 0; k <= len(batch); k++ {
		if k > 0 {
			cand.apply(batch[k-1])
		}
		if edgeListEqual(got, cand.edges()) {
			return k, true
		}
	}
	return 0, false
}

// IngestChaosCase runs one randomized durable-ingest case over a
// disk-backed device in dir: random mutation batches stream into a
// WAL-backed graph while transient faults, no-space, and mid-IO crashes
// are armed at random; at random points (and after every fault) the
// process "dies" — the device is abandoned without Close and a fresh one
// opens over the same directory, replaying the WAL and redoing any
// interrupted merge. The invariant is the ingest durability contract:
// the recovered edge multiset is bit-identical to the acknowledged
// oracle plus at most a prefix of the one in-flight batch, or the
// failure is a classified sentinel — never a lost ack, never a silently
// wrong adjacency.
func IngestChaosCase(seed int64, dir string) (IngestChaosOutcome, error) {
	rng := rand.New(rand.NewSource(seed))
	out := IngestChaosOutcome{Seed: seed}
	fail := func(format string, args ...interface{}) (IngestChaosOutcome, error) {
		return out, fmt.Errorf("ingest seed %d [%s]: %s", seed, out.Schedule, fmt.Sprintf(format, args...))
	}

	// Random base graph.
	var edges []graphio.Edge
	var err error
	if rng.Intn(2) == 0 {
		edges, err = gen.Uniform(uint32(20+rng.Intn(80)), 60+rng.Intn(200), rng.Int63(), false)
	} else {
		edges, err = gen.Grid(3+rng.Intn(6), 3+rng.Intn(6))
	}
	if err != nil {
		return out, fmt.Errorf("gen: %w", err)
	}
	n := graphio.NumVertices(edges)
	if n < 2 {
		return out, nil
	}

	// One device geometry per case so every reopen sees the same layout.
	devCfg := ssd.Config{
		PageSize: 128 << rng.Intn(3),
		Channels: 1 + rng.Intn(4),
		Dir:      dir,
		Retry:    ssd.RetryPolicy{MaxRetries: 4},
	}
	flushEvery := time.Duration(0) // sync per batch
	if rng.Intn(3) == 0 {
		flushEvery = 200 * time.Microsecond // group commit window
		out.Schedule = "window"
	} else {
		out.Schedule = "sync"
	}
	add := func(s string) { out.Schedule += "+" + s }

	build, err := ssd.Open(devCfg)
	if err != nil {
		return out, fmt.Errorf("device: %w", err)
	}
	if _, err := csr.Build(build, "ingest", edges, csr.BuildOptions{
		NumVertices: n, IntervalBudget: int64(192 + rng.Intn(1024)),
	}); err != nil {
		return out, fmt.Errorf("build: %w", err)
	}

	// reopen simulates kill -9 + restart: the previous device is simply
	// abandoned (disk-backed stores write through, so its state is what a
	// crashed process would leave) and a fresh, injector-free device opens
	// over the same directory, replaying the WAL and redoing any
	// interrupted merge.
	reopen := func() (*ssd.Device, *csr.Graph, error) {
		dev, err := ssd.Open(devCfg)
		if err != nil {
			return nil, nil, err
		}
		g, err := csr.OpenIngest(dev, "ingest", csr.IngestOptions{
			WAL: true, FlushEvery: flushEvery, MergeThreshold: 1 << 30,
		})
		if err != nil {
			return nil, nil, err
		}
		return dev, g, nil
	}
	dev, g, err := reopen()
	if err != nil {
		return fail("initial open: %v", err)
	}

	oracle := make(edgeBag, len(edges))
	for _, e := range edges {
		oracle[e]++
	}

	// crash abandons the current device, reopens clean, and checks the
	// recovered state against the oracle plus a prefix of the (possibly
	// empty) in-flight batch; the recovered state becomes the new oracle.
	crash := func(inflight []csr.Mutation) error {
		out.Crashes++
		var err error
		dev, g, err = reopen()
		if err != nil {
			return fmt.Errorf("reopen after crash: %w", err)
		}
		got, err := g.CurrentEdges()
		if err != nil {
			return fmt.Errorf("CurrentEdges after crash: %w", err)
		}
		k, ok := matchPrefix(got, oracle, inflight)
		if !ok {
			return fmt.Errorf("recovered state is not oracle+prefix of the in-flight batch (%d edges recovered, %d acked, %d in flight)",
				len(got), len(oracle.edges()), len(inflight))
		}
		for _, m := range inflight[:k] {
			oracle.apply(m)
		}
		return nil
	}

	armed := false
	scheduled := map[string]bool{}
	rounds := 25 + rng.Intn(35)
	for r := 0; r < rounds; r++ {
		// Hazards arm and heal at random; every classified failure also
		// disarms via the crash path (the fresh device carries no injectors).
		if !armed && rng.Intn(8) == 0 {
			switch rng.Intn(3) {
			case 0:
				dev.FailAfter(3+rng.Int63n(80), nil)
				scheduled["crash"] = true
			case 1:
				// Hot enough that 4 retries sometimes exhaust.
				dev.FailTransientProb(0.05+rng.Float64()*0.25, uint64(seed)|1)
				scheduled["transient"] = true
			default:
				dev.FailNoSpaceProb(0.05+rng.Float64()*0.20, uint64(seed)|3)
				scheduled["nospace"] = true
			}
			armed = true
		} else if armed && rng.Intn(6) == 0 {
			dev.FailAfter(-1, nil)
			dev.FailTransientProb(0, 0)
			dev.FailNoSpaceProb(0, 0)
			armed = false
		}

		// Snapshot probe (quiet rounds only): a pinned epoch must not see
		// mutations applied after the pin.
		var snap *csr.Snapshot
		var snapBefore []graphio.Edge
		if !armed && rng.Intn(8) == 0 {
			snap = g.Snapshot()
			if snapBefore, err = snap.Graph().CurrentEdges(); err != nil {
				snap.Release()
				return fail("snapshot probe read: %v", err)
			}
		}

		batch := make([]csr.Mutation, 1+rng.Intn(6))
		for i := range batch {
			batch[i] = csr.Mutation{
				Del: rng.Intn(3) == 0,
				Src: uint32(rng.Intn(int(n))),
				Dst: uint32(rng.Intn(int(n))),
			}
		}
		threshold := 0
		if rng.Intn(6) == 0 {
			threshold = 1 // force a crash-atomic merge on this batch
		}
		out.Batches++
		err := g.ApplyMutations(batch, threshold)

		if snap != nil {
			snapAfter, serr := snap.Graph().CurrentEdges()
			snap.Release()
			if serr != nil && classify(serr) == "" {
				return fail("snapshot probe reread: %v", serr)
			}
			if serr == nil && !edgeListEqual(snapBefore, snapAfter) {
				return fail("pinned snapshot observed later mutations")
			}
		}

		if err != nil {
			family := classify(err)
			if family == "" {
				return fail("unclassified ingest failure: %v", err)
			}
			out.Faults = append(out.Faults, family)
			// A failed batch may be partially durable; after a merge error
			// the batch itself is fully applied. Both are prefixes the
			// crash check accepts.
			if err := crash(batch); err != nil {
				return fail("%v", err)
			}
			armed = false
			continue
		}
		out.Acked++
		for _, m := range batch {
			oracle.apply(m)
		}

		// Clean kill -9: everything acknowledged must be recovered exactly.
		if !armed && rng.Intn(12) == 0 {
			if err := crash(nil); err != nil {
				return fail("%v", err)
			}
		}
	}

	// Final leg: disarm, crash once more, then fold everything down with a
	// merge and re-check — the compacted CSR must still equal the oracle.
	dev.FailAfter(-1, nil)
	dev.FailTransientProb(0, 0)
	dev.FailNoSpaceProb(0, 0)
	if err := crash(nil); err != nil {
		return fail("%v", err)
	}
	if err := g.MergeInterval(0); err != nil {
		return fail("final merge: %v", err)
	}
	if g.PendingUpdates() != 0 {
		return fail("final merge left %d pending updates", g.PendingUpdates())
	}
	got, err := g.CurrentEdges()
	if err != nil {
		return fail("final CurrentEdges: %v", err)
	}
	if !edgeListEqual(got, oracle.edges()) {
		return fail("merged state diverged from oracle (%d vs %d edges)", len(got), len(oracle.edges()))
	}
	for f := range scheduled {
		add(f)
	}
	return out, nil
}
