package harness

import (
	"testing"

	"multilogvc/internal/apps"
	"multilogvc/internal/metrics"
	"multilogvc/internal/vc"
)

// checkStageParity asserts the invariant the attribution layer guarantees
// by construction: per-stage rows partition the global counters exactly,
// per superstep and for the whole run.
func checkStageParity(t *testing.T, rep *metrics.Report, label string) {
	t.Helper()
	for _, ss := range rep.Supersteps {
		var pr, pw uint64
		var hits, misses uint64
		for _, st := range ss.Stages {
			pr += st.PagesRead
			pw += st.PagesWritten
			hits += st.CacheHits
			misses += st.CacheMisses
		}
		if pr != ss.PagesRead || pw != ss.PagesWritten {
			t.Fatalf("%s superstep %d: stage sums %d/%d != totals %d/%d",
				label, ss.Superstep, pr, pw, ss.PagesRead, ss.PagesWritten)
		}
		if hits != ss.CacheHits || misses != ss.CacheMisses {
			t.Fatalf("%s superstep %d: stage cache sums %d/%d != totals %d/%d",
				label, ss.Superstep, hits, misses, ss.CacheHits, ss.CacheMisses)
		}
	}
	var pr, pw uint64
	for _, st := range rep.Stages {
		pr += st.PagesRead
		pw += st.PagesWritten
	}
	if pr != rep.PagesRead || pw != rep.PagesWritten {
		t.Fatalf("%s report: stage sums %d/%d != totals %d/%d",
			label, pr, pw, rep.PagesRead, rep.PagesWritten)
	}
	if pr == 0 {
		t.Fatalf("%s report: no stage-attributed IO at all", label)
	}
}

// TestStageParityAllEngines runs every engine uncached and asserts the
// per-stage rows sum bit-identically to the pre-existing global counters
// — the acceptance bar for the attribution layer riding along without
// perturbing any measured quantity.
func TestStageParityAllEngines(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		name string
		run  func(*Env, vc.Program, RunOpts) (*metrics.Report, []uint32, error)
	}{
		{"multilogvc", RunMLVC},
		{"graphchi", RunGraphChi},
		{"grafboost", RunGraFBoost},
	}
	for _, r := range runs {
		env, err := Prepare(ds, EnvOptions{CacheMB: -1})
		if err != nil {
			t.Fatal(err)
		}
		rep, _, err := r.run(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 5})
		if err != nil {
			t.Fatal(err)
		}
		checkStageParity(t, rep, r.name)
	}
}

// TestStageParityCachedWithCheckpoints exercises the attribution layer's
// hard cases at once: a page cache (hit/miss attribution, prefetcher
// goroutine), checkpoints (IO folded into the superstep after the delta
// was taken), and a sort budget small enough to spill.
func TestStageParityCachedWithCheckpoints(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{CacheMB: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{
		MaxSupersteps:   6,
		CheckpointEvery: 2,
		SortBudget:      1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkStageParity(t, rep, "multilogvc-cached-ckpt")
	if rep.Checkpoints == 0 {
		t.Fatal("run committed no checkpoints — scenario not exercised")
	}
	if rep.Spills == 0 {
		t.Fatal("run spilled nothing — scenario not exercised")
	}
	if metrics.StageByName(rep.Stages, "checkpoint").PagesWritten == 0 {
		t.Fatal("checkpoint stage has no writes despite committed checkpoints")
	}
	if metrics.StageByName(rep.Stages, "spill").PagesWritten == 0 {
		t.Fatal("spill stage has no writes despite spilled batches")
	}
	if metrics.StageByName(rep.Stages, "vertex").PagesRead == 0 {
		t.Fatal("vertex stage read nothing")
	}
	st := metrics.StageByName(rep.Stages, "sortgroup")
	if st.PagesRead == 0 {
		t.Fatal("sortgroup stage read nothing")
	}
	// The prefetcher ran (cache attached), so some IO must carry its tag.
	pf := metrics.StageByName(rep.Stages, "prefetch")
	if pf.PagesRead == 0 {
		t.Log("note: prefetch stage issued no reads this run (prediction may have warmed nothing)")
	}
}

// TestSuperstepIOSkewPopulated checks the straggler signal: a run with
// real traffic records a per-interval page histogram and a skew >= 1.
func TestSuperstepIOSkewPopulated(t *testing.T) {
	ds, err := CFMini(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Prepare(ds, EnvOptions{CacheMB: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := RunMLVC(env, &apps.PageRank{}, RunOpts{MaxSupersteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ss := range rep.Supersteps {
		if ss.IOSkew > 0 {
			found = true
			if ss.IOSkew < 1 {
				t.Fatalf("superstep %d: IOSkew %.3f < 1 (max/mean cannot be)", ss.Superstep, ss.IOSkew)
			}
			if ss.IntervalPages.Max() == 0 {
				t.Fatalf("superstep %d: skew set but interval histogram empty", ss.Superstep)
			}
		}
	}
	if !found {
		t.Fatal("no superstep recorded interval IO skew")
	}
}
