package ssd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"multilogvc/internal/obsv"
)

// File is a named extent of pages on a Device.
//
// A File has two size notions: NumPages, the number of allocated pages, and
// Size, the logical byte length written through Append/Writer. Page-level
// methods (ReadPage, WritePage) address whole pages; byte-level helpers
// (ReadAt, Append) translate to covering page operations and charge the
// device accordingly.
//
// Files are safe for concurrent use.
//
// A *File is a cheap handle: the mutable state (pages, size, counters)
// lives in a shared fileState, so Scoped can mint per-run views that
// differ only in IO attribution while every handle sees the same data.
type File struct {
	dev      *Device
	id       uint32 // device-assigned, identifies this file's pages in the cache
	name     string
	chanBase uint32
	scope    *IOScope // attribution scope; nil = device-global tag

	s *fileState
}

// fileState is the shared mutable state behind every handle of one file.
type fileState struct {
	mu    sync.Mutex
	store store
	size  int64 // logical bytes (append stream length)

	pagesRead    atomic.Uint64
	pagesWritten atomic.Uint64
	corrupt      atomic.Uint64 // checksum failures detected on this file
}

// ErrShortBuffer is returned when a destination buffer is not page-sized.
var ErrShortBuffer = errors.New("ssd: buffer is not a whole page")

// ErrOutOfRange is returned for page indices outside the file.
var ErrOutOfRange = errors.New("ssd: page index out of range")

// Name returns the file's name on the device.
func (f *File) Name() string { return f.name }

// ID returns the device-assigned file ID used as the cache namespace.
func (f *File) ID() uint32 { return f.id }

// NumPages returns the number of allocated pages.
func (f *File) NumPages() int {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	return f.s.store.numPages()
}

// Size returns the logical byte length of the append stream.
func (f *File) Size() int64 {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	return f.s.size
}

// SetSize overrides the logical byte length. It is used when re-opening
// files whose length is recorded in external metadata.
func (f *File) SetSize(n int64) {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.s.size = n
}

// ReadPage reads page idx into buf, which must be exactly one page long.
// It charges one page read to the device.
func (f *File) ReadPage(idx int, buf []byte) error {
	if len(buf) != f.dev.cfg.PageSize {
		return ErrShortBuffer
	}
	c := f.dev.cache
	if c != nil {
		if c.Get(f.id, idx, buf) {
			f.dev.noteCache(1, 0, stageAmbient, f.scope)
			return nil
		}
		f.dev.noteCache(0, 1, stageAmbient, f.scope)
	}
	if err := f.dev.opCheck(f.scope); err != nil {
		return err
	}
	f.s.mu.Lock()
	if idx < 0 || idx >= f.s.store.numPages() {
		f.s.mu.Unlock()
		return fmt.Errorf("%w: page %d of %q (%d pages)", ErrOutOfRange, idx, f.name, f.s.store.numPages())
	}
	err := f.readPageLocked(idx, buf)
	f.s.mu.Unlock()
	if err != nil {
		return err
	}
	f.s.pagesRead.Add(1)
	f.dev.chargeRead(1, 1, f.scope)
	if c != nil {
		c.Put(f.id, idx, buf, false)
	}
	return nil
}

// ReadPages reads the listed pages into dst, which must be
// len(pages)×PageSize bytes. The pages are submitted as one batch: the
// virtual clock advances by the busiest channel's queue depth, modelling
// asynchronous kernel IO over multiple flash channels.
func (f *File) ReadPages(pages []int, dst []byte) error {
	return f.readPagesStage(pages, dst, stageAmbient)
}

// ReadPagesTagged is ReadPages with the charge attributed to an explicit
// stage instead of the device's current stage tag. Background issuers (the
// prefetcher's expand step) use it so concurrent engine IO keeps its own
// attribution.
func (f *File) ReadPagesTagged(pages []int, dst []byte, st obsv.Stage) error {
	return f.readPagesStage(pages, dst, st)
}

func (f *File) readPagesStage(pages []int, dst []byte, st obsv.Stage) error {
	ps := f.dev.cfg.PageSize
	if len(dst) != len(pages)*ps {
		return ErrShortBuffer
	}
	if len(pages) == 0 {
		return nil
	}
	if f.dev.cache != nil {
		return f.readPagesCached(pages, dst, st)
	}
	if err := f.dev.opCheck(f.scope); err != nil {
		return err
	}
	f.s.mu.Lock()
	np := f.s.store.numPages()
	for i, p := range pages {
		if p < 0 || p >= np {
			f.s.mu.Unlock()
			return fmt.Errorf("%w: page %d of %q (%d pages)", ErrOutOfRange, p, f.name, np)
		}
		if err := f.readPageLocked(p, dst[i*ps:(i+1)*ps]); err != nil {
			f.s.mu.Unlock()
			return err
		}
	}
	f.s.mu.Unlock()
	f.s.pagesRead.Add(uint64(len(pages)))
	f.dev.chargeReadStage(len(pages), maxPerChannel(f.chanBase, f.dev.cfg.Channels, pages), st, f.scope)
	return nil
}

// ReadPageRange reads the contiguous pages [start, start+n) into dst as a
// single batch.
func (f *File) ReadPageRange(start, n int, dst []byte) error {
	ps := f.dev.cfg.PageSize
	if len(dst) != n*ps {
		return ErrShortBuffer
	}
	if n == 0 {
		return nil
	}
	if f.dev.cache != nil {
		pages := make([]int, n)
		for i := range pages {
			pages[i] = start + i
		}
		return f.readPagesCached(pages, dst, stageAmbient)
	}
	if err := f.dev.opCheck(f.scope); err != nil {
		return err
	}
	f.s.mu.Lock()
	np := f.s.store.numPages()
	if start < 0 || start+n > np {
		f.s.mu.Unlock()
		return fmt.Errorf("%w: pages [%d,%d) of %q (%d pages)", ErrOutOfRange, start, start+n, f.name, np)
	}
	for i := 0; i < n; i++ {
		if err := f.readPageLocked(start+i, dst[i*ps:(i+1)*ps]); err != nil {
			f.s.mu.Unlock()
			return err
		}
	}
	f.s.mu.Unlock()
	f.s.pagesRead.Add(uint64(n))
	f.dev.chargeRead(n, maxPerChannelRange(n, f.dev.cfg.Channels), f.scope)
	return nil
}

// WritePage writes one page at idx. idx may be at most NumPages, in which
// case the file grows by one page. data must be exactly one page.
func (f *File) WritePage(idx int, data []byte) error {
	if len(data) != f.dev.cfg.PageSize {
		return ErrShortBuffer
	}
	if err := f.dev.opCheck(f.scope); err != nil {
		return err
	}
	f.s.mu.Lock()
	np := f.s.store.numPages()
	if idx < 0 || idx > np {
		f.s.mu.Unlock()
		return fmt.Errorf("%w: write page %d of %q (%d pages)", ErrOutOfRange, idx, f.name, np)
	}
	grow := 0
	if idx == np {
		grow = 1
	}
	if err := f.dev.reserveGrow(grow); err != nil {
		f.s.mu.Unlock()
		return err
	}
	err := f.writePageLocked(idx, data)
	if err != nil {
		unused := grow - (f.s.store.numPages() - np)
		f.s.mu.Unlock()
		f.dev.freePages(unused)
		return err
	}
	f.s.mu.Unlock()
	f.s.pagesWritten.Add(1)
	f.dev.chargeWrite(1, 1, f.scope)
	if c := f.dev.cache; c != nil {
		c.Write(f.id, idx, data)
	}
	return nil
}

// WritePageRange writes contiguous pages starting at start as one batch.
// The range may extend the file.
func (f *File) WritePageRange(start int, data []byte) error {
	ps := f.dev.cfg.PageSize
	if len(data)%ps != 0 {
		return ErrShortBuffer
	}
	n := len(data) / ps
	if n == 0 {
		return nil
	}
	if err := f.dev.opCheck(f.scope); err != nil {
		return err
	}
	f.s.mu.Lock()
	np := f.s.store.numPages()
	if start < 0 || start > np {
		f.s.mu.Unlock()
		return fmt.Errorf("%w: write pages at %d of %q (%d pages)", ErrOutOfRange, start, f.name, np)
	}
	grow := start + n - np
	if err := f.dev.reserveGrow(grow); err != nil {
		f.s.mu.Unlock()
		return err
	}
	for i := 0; i < n; i++ {
		if err := f.writePageLocked(start+i, data[i*ps:(i+1)*ps]); err != nil {
			unused := grow - (f.s.store.numPages() - np)
			f.s.mu.Unlock()
			f.dev.freePages(unused)
			return err
		}
	}
	f.s.mu.Unlock()
	f.s.pagesWritten.Add(uint64(n))
	f.dev.chargeWrite(n, maxPerChannelRange(n, f.dev.cfg.Channels), f.scope)
	if c := f.dev.cache; c != nil {
		for i := 0; i < n; i++ {
			c.Write(f.id, start+i, data[i*ps:(i+1)*ps])
		}
	}
	return nil
}

// AppendPage appends one page to the file and returns its index.
func (f *File) AppendPage(data []byte) (int, error) {
	if len(data) != f.dev.cfg.PageSize {
		return 0, ErrShortBuffer
	}
	if err := f.dev.opCheck(f.scope); err != nil {
		return 0, err
	}
	f.s.mu.Lock()
	idx := f.s.store.numPages()
	if err := f.dev.reserveGrow(1); err != nil {
		f.s.mu.Unlock()
		return 0, err
	}
	err := f.writePageLocked(idx, data)
	if err == nil {
		f.s.size = int64(idx+1) * int64(f.dev.cfg.PageSize)
	}
	if err != nil {
		unused := 1 - (f.s.store.numPages() - idx)
		f.s.mu.Unlock()
		f.dev.freePages(unused)
		return 0, err
	}
	f.s.mu.Unlock()
	f.s.pagesWritten.Add(1)
	f.dev.chargeWrite(1, 1, f.scope)
	if c := f.dev.cache; c != nil {
		c.Write(f.id, idx, data)
	}
	return idx, nil
}

// AppendPages appends len(data)/PageSize pages as one batch and updates
// the logical size. data must be a whole number of pages.
func (f *File) AppendPages(data []byte) error {
	ps := f.dev.cfg.PageSize
	if len(data)%ps != 0 {
		return ErrShortBuffer
	}
	n := len(data) / ps
	if n == 0 {
		return nil
	}
	if err := f.dev.opCheck(f.scope); err != nil {
		return err
	}
	f.s.mu.Lock()
	start := f.s.store.numPages()
	if err := f.dev.reserveGrow(n); err != nil {
		f.s.mu.Unlock()
		return err
	}
	for i := 0; i < n; i++ {
		if err := f.writePageLocked(start+i, data[i*ps:(i+1)*ps]); err != nil {
			unused := n - (f.s.store.numPages() - start)
			f.s.mu.Unlock()
			f.dev.freePages(unused)
			return err
		}
	}
	f.s.size = int64(start+n) * int64(ps)
	f.s.mu.Unlock()
	f.s.pagesWritten.Add(uint64(n))
	f.dev.chargeWrite(n, maxPerChannelRange(n, f.dev.cfg.Channels), f.scope)
	if c := f.dev.cache; c != nil {
		for i := 0; i < n; i++ {
			c.Write(f.id, start+i, data[i*ps:(i+1)*ps])
		}
	}
	return nil
}

// Truncate discards all pages and resets the logical size to zero. Used to
// recycle log files between supersteps.
func (f *File) Truncate() error {
	f.s.mu.Lock()
	np := f.s.store.numPages()
	err := f.s.store.truncate(0)
	f.s.size = 0
	f.s.mu.Unlock()
	if err == nil {
		f.dev.freePages(np)
	}
	if c := f.dev.cache; c != nil {
		c.InvalidateFile(f.id)
	}
	if err != nil {
		return err
	}
	f.dev.mu.Lock()
	f.dev.stats.FileTruncates++
	f.dev.mu.Unlock()
	return nil
}

// ReadAt reads len(buf) bytes starting at byte offset off, reading the
// covering pages as one batch. Bytes past the last allocated page are an
// error; bytes past Size but within allocated pages read as written.
func (f *File) ReadAt(buf []byte, off int64) error {
	if len(buf) == 0 {
		return nil
	}
	ps := int64(f.dev.cfg.PageSize)
	start := int(off / ps)
	end := int((off + int64(len(buf)) - 1) / ps)
	n := end - start + 1
	tmp := make([]byte, n*int(ps))
	if err := f.ReadPageRange(start, n, tmp); err != nil {
		return err
	}
	copy(buf, tmp[off-int64(start)*ps:])
	return nil
}

// pageCount returns the number of pages covering n logical bytes.
func pageCount(n int64, pageSize int) int {
	return int((n + int64(pageSize) - 1) / int64(pageSize))
}

// DataPages returns the number of pages covering the logical size.
func (f *File) DataPages() int {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	return pageCount(f.s.size, f.dev.cfg.PageSize)
}
