package ssd

import (
	"encoding/binary"
	"io"
)

// Writer buffers byte writes into whole pages and appends them to a File.
// Close flushes any partial final page (zero-padded) and fixes the file's
// logical Size to the number of bytes written.
type Writer struct {
	f    *File
	page []byte
	fill int
	off  int64 // bytes flushed + buffered
	err  error
}

// NewWriter creates a Writer for f. It is typically used on empty or
// truncated files; bytes already present are not re-read.
func NewWriter(f *File) *Writer {
	return &Writer{f: f, page: make([]byte, f.dev.cfg.PageSize)}
}

// Write appends p to the stream.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n := len(p)
	for len(p) > 0 {
		c := copy(w.page[w.fill:], p)
		w.fill += c
		p = p[c:]
		if w.fill == len(w.page) {
			if _, err := w.f.AppendPage(w.page); err != nil {
				w.err = err
				return n - len(p), err
			}
			w.fill = 0
		}
	}
	w.off += int64(n)
	return n, nil
}

// WriteU32 appends a little-endian uint32.
func (w *Writer) WriteU32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// WriteU64 appends a little-endian uint64.
func (w *Writer) WriteU64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// Offset returns the number of bytes written so far.
func (w *Writer) Offset() int64 { return w.off }

// Close flushes the final partial page and records the logical size.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.fill > 0 {
		for i := w.fill; i < len(w.page); i++ {
			w.page[i] = 0
		}
		if _, err := w.f.AppendPage(w.page); err != nil {
			w.err = err
			return err
		}
		w.fill = 0
	}
	w.f.SetSize(w.off)
	return nil
}

// Reader streams a File's logical contents with page-batched readahead.
// It implements io.Reader over [0, Size).
type Reader struct {
	f         *File
	buf       []byte
	bufStart  int64 // byte offset of buf[0]
	bufLen    int
	pos       int64
	size      int64
	readahead int // pages per batch
	err       error
}

// NewReader creates a Reader over f's logical contents with the given
// readahead (pages per batch; <=0 means 64).
func NewReader(f *File, readahead int) *Reader {
	if readahead <= 0 {
		readahead = 64
	}
	return &Reader{f: f, size: f.Size(), readahead: readahead}
}

// NewReaderN is NewReader limited to the first n logical bytes.
func NewReaderN(f *File, n int64, readahead int) *Reader {
	r := NewReader(f, readahead)
	if n < r.size {
		r.size = n
	}
	return r
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.pos >= r.size {
		return 0, io.EOF
	}
	if r.pos < r.bufStart || r.pos >= r.bufStart+int64(r.bufLen) {
		if err := r.fill(); err != nil {
			r.err = err
			return 0, err
		}
	}
	off := int(r.pos - r.bufStart)
	n := copy(p, r.buf[off:r.bufLen])
	if rem := r.size - r.pos; int64(n) > rem {
		n = int(rem)
	}
	r.pos += int64(n)
	return n, nil
}

func (r *Reader) fill() error {
	ps := int64(r.f.dev.cfg.PageSize)
	startPage := int(r.pos / ps)
	total := pageCount(r.size, int(ps))
	n := r.readahead
	if startPage+n > total {
		n = total - startPage
	}
	need := n * int(ps)
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	r.buf = r.buf[:need]
	if err := r.f.ReadPageRange(startPage, n, r.buf); err != nil {
		return err
	}
	r.bufStart = int64(startPage) * ps
	r.bufLen = need
	return nil
}

// ReadFull reads exactly len(p) bytes or returns an error.
func (r *Reader) ReadFull(p []byte) error {
	_, err := io.ReadFull(r, p)
	return err
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() (uint32, error) {
	var b [4]byte
	if err := r.ReadFull(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() (uint64, error) {
	var b [8]byte
	if err := r.ReadFull(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Pos returns the current byte offset.
func (r *Reader) Pos() int64 { return r.pos }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int64 { return r.size - r.pos }
