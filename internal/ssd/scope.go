package ssd

import (
	"context"
	"sync"
	"sync/atomic"

	"multilogvc/internal/obsv"
)

// IOScope is a per-run attribution handle. The device's own stage tag and
// run context are process-global — correct for the one-shot CLI, where a
// single engine run owns the device — but a serving process runs several
// engines over one device concurrently, and a global tag lets run A's IO
// land in whatever stage run B last set (cross-run attribution races).
//
// A scope carries its own packed stage/interval tag, its own run context,
// and a private mirror of the device counters. File handles bound to a
// scope (File.Scoped) resolve ambient charges against the scope instead of
// the device: the scope's Stats see exactly the IO issued through its
// handles, while the device's global Stats still aggregate every scope, so
// the sum-to-global invariant of Stats.Stages is preserved.
//
// Scopes are cheap (no registration, no device lock) and safe for
// concurrent use. A nil *IOScope everywhere means "the device's global
// tag", which is the pre-scope behavior.
type IOScope struct {
	tag    atomic.Uint64
	runCtx atomic.Pointer[runCtxBox]

	mu      sync.Mutex
	stats   Stats
	ivPages map[int]uint64
}

// NewScope creates an independent IO scope. Scopes are not tied to a
// device: the association happens per file handle via File.Scoped.
func NewScope() *IOScope {
	return &IOScope{}
}

// Tagger is where a pipeline unit sets the ambient IO stage: the device
// itself (single-run processes) or a per-run IOScope. Both implement the
// same swap-and-restore contract.
type Tagger interface {
	SetStage(s obsv.Stage, iv int) (obsv.Stage, int)
}

// SetStage tags subsequent IO issued through this scope's file handles
// with the given pipeline stage and vertex interval (-1 = none),
// returning the previous tag so a scoped section can restore it. Same
// contract as Device.SetStage, but private to the run.
func (sc *IOScope) SetStage(s obsv.Stage, iv int) (obsv.Stage, int) {
	return unpackStage(sc.tag.Swap(packStage(s, iv)))
}

// StageTag returns the scope's current stage tag, clamped like
// Device.StageTag.
func (sc *IOScope) StageTag() (obsv.Stage, int) {
	st, iv := unpackStage(sc.tag.Load())
	if int(st) >= obsv.NumStages {
		st = obsv.StageOther
	}
	return st, iv
}

// SetRunContext installs the context consulted between retry attempts for
// IO issued through this scope's file handles (see Device.SetRunContext).
// Each concurrent run gets its own deadline behavior instead of sharing
// the device-global slot.
func (sc *IOScope) SetRunContext(ctx context.Context) {
	if ctx == nil {
		sc.runCtx.Store(&runCtxBox{})
		return
	}
	sc.runCtx.Store(&runCtxBox{ctx: ctx})
}

func (sc *IOScope) runContextErr() error {
	box := sc.runCtx.Load()
	if box == nil || box.ctx == nil {
		return nil
	}
	return box.ctx.Err()
}

// Stats returns a snapshot of the counters accumulated by IO issued
// through this scope's file handles. The same Stats shape as the device's,
// so per-run deltas and stage breakdowns work unchanged.
func (sc *IOScope) Stats() Stats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.stats
}

// IntervalIO returns a copy of the pages moved per tagged vertex interval
// by IO issued through this scope (see Device.IntervalIO).
func (sc *IOScope) IntervalIO() map[int]uint64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make(map[int]uint64, len(sc.ivPages))
	for iv, n := range sc.ivPages {
		out[iv] = n
	}
	return out
}

// noteIv accumulates interval-tagged page traffic. Callers hold sc.mu.
func (sc *IOScope) noteIvLocked(iv int, npages int) {
	if iv < 0 {
		return
	}
	if sc.ivPages == nil {
		sc.ivPages = make(map[int]uint64)
	}
	sc.ivPages[iv] += uint64(npages)
}

// Scoped returns a view of the file whose ambient charges (stage tag, run
// context, per-run counters) resolve against sc instead of the device's
// global tag. The view shares the underlying pages, size, and per-file
// counters with every other handle of the same file; only attribution
// differs. A nil scope returns f itself.
func (f *File) Scoped(sc *IOScope) *File {
	if sc == nil || f == nil {
		return f
	}
	g := *f
	g.scope = sc
	return &g
}

// Scope returns the scope this handle is bound to, or nil for the
// device-global default.
func (f *File) Scope() *IOScope { return f.scope }

// stageOf resolves the ambient stage/interval for a charge issued through
// scope sc (nil = the device-global tag).
func (d *Device) stageOf(sc *IOScope) (obsv.Stage, int) {
	if sc != nil {
		return sc.StageTag()
	}
	return d.StageTag()
}
