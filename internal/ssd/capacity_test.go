package ssd

import (
	"context"
	"errors"
	"testing"
)

func capDev(t *testing.T, capacity int64) *Device {
	t.Helper()
	dev, err := Open(Config{PageSize: 512, Channels: 2, Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestQuotaEnforced: writes up to the quota succeed and are accounted;
// the first write past it fails classified as ErrNoSpace without
// corrupting accounting.
func TestQuotaEnforced(t *testing.T) {
	dev := capDev(t, 4*512)
	f, err := dev.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, dev.PageSize())
	for i := 0; i < 4; i++ {
		if _, err := f.AppendPage(buf); err != nil {
			t.Fatalf("append %d within quota: %v", i, err)
		}
	}
	if got := dev.UsedBytes(); got != 4*512 {
		t.Fatalf("UsedBytes = %d, want %d", got, 4*512)
	}
	if _, err := f.AppendPage(buf); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append past quota = %v, want ErrNoSpace", err)
	}
	if got := dev.UsedBytes(); got != 4*512 {
		t.Fatalf("UsedBytes after failed append = %d, want %d", got, 4*512)
	}
	if st := dev.Stats(); st.NoSpaceFaults == 0 {
		t.Fatal("NoSpaceFaults not counted")
	}
	// Overwriting in place needs no new pages and must still work.
	if err := f.WritePage(0, buf); err != nil {
		t.Fatalf("in-place overwrite at full quota: %v", err)
	}
}

// TestQuotaFreedByTruncate: truncating a file returns its pages to the
// pool, letting a previously failing write proceed.
func TestQuotaFreedByTruncate(t *testing.T) {
	dev := capDev(t, 4*512)
	buf := make([]byte, dev.PageSize())
	a, _ := dev.Create("a")
	b, _ := dev.Create("b")
	for i := 0; i < 3; i++ {
		if _, err := a.AppendPage(buf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.AppendPage(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AppendPage(buf); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append at full quota = %v, want ErrNoSpace", err)
	}
	if err := a.Truncate(); err != nil {
		t.Fatal(err)
	}
	if got := dev.UsedBytes(); got != 512 {
		t.Fatalf("UsedBytes after truncate = %d, want 512", got)
	}
	if _, err := b.AppendPage(buf); err != nil {
		t.Fatalf("append after truncate freed space: %v", err)
	}
}

// TestReclaimerAbsorbsQuotaHit: a reclaimer that frees space makes the
// triggering write succeed on its single retry — the caller never sees an
// error, and the sweep is accounted.
func TestReclaimerAbsorbsQuotaHit(t *testing.T) {
	dev := capDev(t, 4*512)
	buf := make([]byte, dev.PageSize())
	old, _ := dev.Create("old")
	for i := 0; i < 3; i++ {
		if _, err := old.AppendPage(buf); err != nil {
			t.Fatal(err)
		}
	}
	remove := dev.AddReclaimer(func() { _ = old.Truncate() })
	defer remove()

	f, _ := dev.Create("new")
	for i := 0; i < 4; i++ {
		if _, err := f.AppendPage(buf); err != nil {
			t.Fatalf("append %d with reclaimer armed: %v", i, err)
		}
	}
	st := dev.Stats()
	if st.Reclaims == 0 {
		t.Fatal("reclaim sweep not counted")
	}
	if st.ReclaimedBytes != 3*512 {
		t.Fatalf("ReclaimedBytes = %d, want %d", st.ReclaimedBytes, 3*512)
	}
	// The quota hit itself is still recorded even though it was absorbed.
	if st.NoSpaceFaults == 0 {
		t.Fatal("absorbed quota hit not counted")
	}
}

// TestReclaimerUnregister: a removed hook no longer runs, so the quota hit
// surfaces.
func TestReclaimerUnregister(t *testing.T) {
	dev := capDev(t, 2*512)
	buf := make([]byte, dev.PageSize())
	old, _ := dev.Create("old")
	if _, err := old.AppendPage(buf); err != nil {
		t.Fatal(err)
	}
	remove := dev.AddReclaimer(func() { _ = old.Truncate() })
	remove()
	f, _ := dev.Create("new")
	if _, err := f.AppendPage(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AppendPage(buf); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append with unregistered reclaimer = %v, want ErrNoSpace", err)
	}
}

// TestNoSpaceScripted: one scripted fault is absorbed by the post-reclaim
// retry; two consecutive faults surface classified.
func TestNoSpaceScripted(t *testing.T) {
	dev := capDev(t, 0) // unlimited quota: injection only
	buf := make([]byte, dev.PageSize())
	f, _ := dev.Create("a")

	dev.FailNoSpaceAt(0)
	if _, err := f.AppendPage(buf); err != nil {
		t.Fatalf("single scripted no-space not absorbed by retry: %v", err)
	}

	dev.FailNoSpaceAt(0, 1)
	if _, err := f.AppendPage(buf); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("double scripted no-space = %v, want ErrNoSpace", err)
	}

	dev.FailNoSpaceAt() // disarm
	if _, err := f.AppendPage(buf); err != nil {
		t.Fatalf("append after disarm: %v", err)
	}
}

// TestNoSpaceProbabilistic: with p = 1 every attempt fails (classified);
// with p <= 0 the injection is disarmed.
func TestNoSpaceProbabilistic(t *testing.T) {
	dev := capDev(t, 0)
	buf := make([]byte, dev.PageSize())
	f, _ := dev.Create("a")

	dev.FailNoSpaceProb(1, 7)
	if _, err := f.AppendPage(buf); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("p=1 no-space = %v, want ErrNoSpace", err)
	}
	dev.FailNoSpaceProb(0, 0)
	if _, err := f.AppendPage(buf); err != nil {
		t.Fatalf("append after disarm: %v", err)
	}
}

// TestRemoveReturnsPages: removing a file frees its quota share.
func TestRemoveReturnsPages(t *testing.T) {
	dev := capDev(t, 2*512)
	buf := make([]byte, dev.PageSize())
	a, _ := dev.Create("a")
	if _, err := a.AppendPage(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AppendPage(buf); err != nil {
		t.Fatal(err)
	}
	if err := dev.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if got := dev.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes after Remove = %d, want 0", got)
	}
	b, _ := dev.Create("b")
	if _, err := b.AppendPage(buf); err != nil {
		t.Fatalf("append after Remove freed space: %v", err)
	}
}

// TestRetryAbandonedOnCancel: a cancelled run context stops the transient
// retry loop immediately instead of burning the whole backoff budget, and
// the surfaced error carries the context error.
func TestRetryAbandonedOnCancel(t *testing.T) {
	dev := retryDev(t, RetryPolicy{MaxRetries: 10})
	f := fillPages(t, dev, "a", 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dev.SetRunContext(ctx)
	defer dev.SetRunContext(nil)

	dev.FailTransientAt(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	err := f.ReadPage(0, make([]byte, dev.PageSize()))
	if err == nil {
		t.Fatal("cancelled retry loop surfaced no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%v does not wrap context.Canceled", err)
	}
	if st := dev.Stats(); st.Retries >= 10 {
		t.Fatalf("retry loop ran %d retries despite cancelled context", st.Retries)
	}
}
