package ssd_test

// IOScope tests: per-run stage tags, mirrored counters, and run contexts.
// The concurrency test is the contract the serving daemon depends on — two
// engine runs over one device must each see exactly their own IO in their
// scope, with their own stage attribution, regardless of interleaving.
// Run with -race.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
)

func TestScopedStageAttributionConcurrent(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: ps, Channels: 4})
	f := fillFile(t, dev, "shared", 64)
	dev.ResetStats()

	const runs = 4
	const reads = 200
	// Each run tags a distinct stage and reads through its own scoped view
	// of the same file, concurrently.
	stages := []obsv.Stage{obsv.StageVertex, obsv.StageSortGroup, obsv.StageRelog, obsv.StageCheckpoint}
	scopes := make([]*ssd.IOScope, runs)
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		sc := ssd.NewScope()
		scopes[r] = sc
		fr := f.Scoped(sc)
		wg.Add(1)
		go func(r int, sc *ssd.IOScope, fr *ssd.File) {
			defer wg.Done()
			buf := make([]byte, ps)
			sc.SetStage(stages[r], r)
			for i := 0; i < reads; i++ {
				if err := fr.ReadPage((r*17+i)%64, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(r, sc, fr)
	}
	wg.Wait()

	for r, sc := range scopes {
		st := sc.Stats()
		if st.PagesRead != reads {
			t.Fatalf("run %d scope read %d pages, want %d", r, st.PagesRead, reads)
		}
		// All of the run's IO landed in its own stage — none leaked into a
		// stage another concurrent run was tagging.
		if got := st.Stages[stages[r]].PagesRead; got != reads {
			t.Fatalf("run %d attributed %d/%d pages to its stage", r, got, reads)
		}
		for i := range st.Stages {
			if obsv.Stage(i) != stages[r] && st.Stages[i].PagesRead != 0 {
				t.Fatalf("run %d leaked %d pages into stage %d", r, st.Stages[i].PagesRead, i)
			}
		}
		// Interval attribution is per-scope too.
		if io := sc.IntervalIO(); io[r] != reads {
			t.Fatalf("run %d IntervalIO = %v, want %d pages on interval %d", r, io, reads, r)
		}
	}

	// The device-global stats still aggregate every scope exactly.
	st := dev.Stats()
	if st.PagesRead != runs*reads {
		t.Fatalf("device read %d pages, want %d", st.PagesRead, runs*reads)
	}
	sum := sumStages(st)
	if sum.PagesRead != st.PagesRead || sum.Time != st.StorageTime() {
		t.Fatalf("stage sums %d/%v != global %d/%v", sum.PagesRead, sum.Time, st.PagesRead, st.StorageTime())
	}
}

func TestScopedTagIndependentOfDevice(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: ps, Channels: 4})
	f := fillFile(t, dev, "data", 8)
	dev.ResetStats()

	sc := ssd.NewScope()
	fs := f.Scoped(sc)
	sc.SetStage(obsv.StageVertex, 1)
	dev.SetStage(obsv.StageSpill, 7) // a concurrent "other run" on the global tag

	buf := make([]byte, ps)
	if err := fs.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}

	st := dev.Stats()
	if st.Stages[obsv.StageVertex].PagesRead != 1 || st.Stages[obsv.StageSpill].PagesRead != 1 {
		t.Fatalf("stage split = vertex:%d spill:%d, want 1/1",
			st.Stages[obsv.StageVertex].PagesRead, st.Stages[obsv.StageSpill].PagesRead)
	}
	// The scope mirror saw only the scoped handle's read.
	if ss := sc.Stats(); ss.PagesRead != 1 || ss.Stages[obsv.StageVertex].PagesRead != 1 {
		t.Fatalf("scope stats = %d pages (vertex %d), want 1/1", ss.PagesRead, ss.Stages[obsv.StageVertex].PagesRead)
	}
	// Writes resolve the scope tag too.
	if err := fs.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	if got := sc.Stats().Stages[obsv.StageVertex].PagesWritten; got != 1 {
		t.Fatalf("scoped write attributed %d pages to vertex stage, want 1", got)
	}
}

func TestScopedRunContextIsolation(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: ps, Channels: 4, Retry: ssd.RetryPolicy{MaxRetries: 3}})
	f := fillFile(t, dev, "data", 4)
	dev.ResetStats()

	scA := ssd.NewScope()
	scB := ssd.NewScope()
	ctxA, cancelA := context.WithCancel(context.Background())
	scA.SetRunContext(ctxA)
	scB.SetRunContext(context.Background())
	cancelA() // run A's deadline fires

	fa, fb := f.Scoped(scA), f.Scoped(scB)
	buf := make([]byte, ps)

	// Run A's transient retry is abandoned on its canceled context...
	dev.FailTransientAt(0)
	if err := fa.ReadPage(0, buf); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled scope read error = %v, want context.Canceled", err)
	}
	// ...while run B, on the same device at the same time, retries through
	// its transient fault and succeeds.
	dev.FailTransientAt(0)
	if err := fb.ReadPage(0, buf); err != nil {
		t.Fatalf("live scope read failed: %v", err)
	}
	if got := scB.Stats().Retries; got == 0 {
		t.Fatal("live scope recorded no retries — fault injection did not fire")
	}
}
