package ssd

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testDev(t *testing.T) *Device {
	t.Helper()
	d, err := Open(Config{PageSize: 256, Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDefaults(t *testing.T) {
	d := MustOpen(Config{})
	if d.PageSize() != DefaultPageSize {
		t.Fatalf("PageSize = %d, want %d", d.PageSize(), DefaultPageSize)
	}
	if d.Channels() != 8 {
		t.Fatalf("Channels = %d, want 8", d.Channels())
	}
}

func TestCreateOpenRemove(t *testing.T) {
	d := testDev(t)
	f, err := d.Create("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "a/b" {
		t.Fatalf("Name = %q", f.Name())
	}
	if _, err := d.Create("a/b"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate Create err = %v, want ErrExist", err)
	}
	if _, err := d.OpenFile("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("OpenFile missing err = %v, want ErrNotExist", err)
	}
	g, err := d.OpenFile("a/b")
	if err != nil || g != f {
		t.Fatalf("OpenFile returned %v, %v", g, err)
	}
	if !d.Exists("a/b") || d.Exists("zzz") {
		t.Fatal("Exists gave wrong answers")
	}
	if err := d.Remove("a/b"); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("a/b"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double Remove err = %v, want ErrNotExist", err)
	}
}

func TestOpenOrCreate(t *testing.T) {
	d := testDev(t)
	f1, err := d.OpenOrCreate("x")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d.OpenOrCreate("x")
	if err != nil || f1 != f2 {
		t.Fatalf("OpenOrCreate returned different files: %v %v err=%v", f1, f2, err)
	}
}

func TestListFiles(t *testing.T) {
	d := testDev(t)
	for _, n := range []string{"c", "a", "b"} {
		if _, err := d.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	got := d.ListFiles()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ListFiles = %v, want %v", got, want)
		}
	}
}

func TestPageReadWrite(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	ps := d.PageSize()
	p0 := bytes.Repeat([]byte{1}, ps)
	p1 := bytes.Repeat([]byte{2}, ps)
	if err := f.WritePage(0, p0); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(1, p1); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", f.NumPages())
	}
	buf := make([]byte, ps)
	if err := f.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, p1) {
		t.Fatal("page 1 contents wrong")
	}
	// Overwrite in place.
	if err := f.WritePage(0, p1); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, p1) {
		t.Fatal("overwritten page 0 contents wrong")
	}
}

func TestPageErrors(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	ps := d.PageSize()
	page := make([]byte, ps)
	if err := f.ReadPage(0, page); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read empty file err = %v", err)
	}
	if err := f.WritePage(5, page); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("sparse write err = %v", err)
	}
	if err := f.ReadPage(0, page[:1]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short buffer err = %v", err)
	}
	if err := f.WritePage(0, page[:1]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short write err = %v", err)
	}
	if _, err := f.AppendPage(page[:1]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short append err = %v", err)
	}
}

func TestAppendPage(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	ps := d.PageSize()
	for i := 0; i < 5; i++ {
		idx, err := f.AppendPage(bytes.Repeat([]byte{byte(i)}, ps))
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("AppendPage idx = %d, want %d", idx, i)
		}
	}
	if f.Size() != int64(5*ps) {
		t.Fatalf("Size = %d, want %d", f.Size(), 5*ps)
	}
}

func TestBatchReads(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	ps := d.PageSize()
	for i := 0; i < 10; i++ {
		f.AppendPage(bytes.Repeat([]byte{byte(i)}, ps))
	}
	d.ResetStats()

	dst := make([]byte, 3*ps)
	if err := f.ReadPages([]int{2, 5, 9}, dst); err != nil {
		t.Fatal(err)
	}
	for i, want := range []byte{2, 5, 9} {
		if dst[i*ps] != want {
			t.Fatalf("batch read page %d got byte %d", want, dst[i*ps])
		}
	}
	st := d.Stats()
	if st.PagesRead != 3 || st.BatchReads != 1 {
		t.Fatalf("stats = %+v, want 3 pages in 1 batch", st)
	}

	if err := f.ReadPageRange(4, 4, make([]byte, 4*ps)); err != nil {
		t.Fatal(err)
	}
	st = d.Stats()
	if st.PagesRead != 7 || st.BatchReads != 2 {
		t.Fatalf("stats after range = %+v", st)
	}
	if err := f.ReadPageRange(8, 3, make([]byte, 3*ps)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range range read err = %v", err)
	}
	if err := f.ReadPages([]int{0, 99}, make([]byte, 2*ps)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range batch read err = %v", err)
	}
}

func TestVirtualClockChannelParallelism(t *testing.T) {
	lat := 100 * time.Microsecond
	d := MustOpen(Config{PageSize: 64, Channels: 4, PageReadLatency: lat, PageWriteLatency: lat})
	f, _ := d.Create("f")
	page := make([]byte, 64)
	for i := 0; i < 8; i++ {
		f.AppendPage(page)
	}
	d.ResetStats()

	// 8 contiguous pages over 4 channels: busiest channel has 2 pages.
	if err := f.ReadPageRange(0, 8, make([]byte, 8*64)); err != nil {
		t.Fatal(err)
	}
	if got, want := d.Stats().ReadTime, 2*lat; got != want {
		t.Fatalf("batched ReadTime = %v, want %v", got, want)
	}

	// The same 8 pages read one at a time cost 8 serial latencies.
	d.ResetStats()
	buf := make([]byte, 64)
	for i := 0; i < 8; i++ {
		f.ReadPage(i, buf)
	}
	if got, want := d.Stats().ReadTime, 8*lat; got != want {
		t.Fatalf("serial ReadTime = %v, want %v", got, want)
	}
}

func TestVirtualClockWrites(t *testing.T) {
	lat := 10 * time.Microsecond
	d := MustOpen(Config{PageSize: 64, Channels: 2, PageReadLatency: lat, PageWriteLatency: lat})
	f, _ := d.Create("f")
	d.ResetStats()
	if err := f.WritePageRange(0, make([]byte, 6*64)); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.PagesWritten != 6 || st.WriteTime != 3*lat {
		t.Fatalf("stats = %+v, want 6 pages over 2 channels = 3 lat", st)
	}
}

func TestStatsSub(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	page := make([]byte, d.PageSize())
	f.AppendPage(page)
	before := d.Stats()
	f.AppendPage(page)
	f.ReadPage(0, page)
	delta := d.Stats().Sub(before)
	if delta.PagesWritten != 1 || delta.PagesRead != 1 {
		t.Fatalf("delta = %+v", delta)
	}
	if delta.StorageTime() <= 0 {
		t.Fatal("delta storage time should be positive")
	}
}

func TestTruncate(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	page := make([]byte, d.PageSize())
	f.AppendPage(page)
	f.AppendPage(page)
	if err := f.Truncate(); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 0 || f.Size() != 0 {
		t.Fatalf("after truncate: pages=%d size=%d", f.NumPages(), f.Size())
	}
	// File is reusable after truncate.
	if _, err := f.AppendPage(page); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 1 {
		t.Fatalf("pages after reuse = %d", f.NumPages())
	}
}

func TestReadAt(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	ps := d.PageSize()
	data := make([]byte, 3*ps)
	for i := range data {
		data[i] = byte(i % 251)
	}
	w := NewWriter(f)
	w.Write(data)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Cross-page unaligned read.
	buf := make([]byte, ps+10)
	if err := f.ReadAt(buf, int64(ps)-5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[ps-5:ps-5+len(buf)]) {
		t.Fatal("ReadAt contents wrong")
	}
	if err := f.ReadAt(nil, 0); err != nil {
		t.Fatal("empty ReadAt should succeed")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	w := NewWriter(f)
	var want []byte
	for i := 0; i < 1000; i++ {
		w.WriteU32(uint32(i * 7))
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(i*7), byte(i*7>>8), byte(i*7>>16), byte(i*7>>24)
		want = append(want, b[:]...)
	}
	w.WriteU64(0xdeadbeefcafef00d)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(want)+8) {
		t.Fatalf("Size = %d, want %d", f.Size(), len(want)+8)
	}

	r := NewReader(f, 2)
	for i := 0; i < 1000; i++ {
		v, err := r.U32()
		if err != nil {
			t.Fatal(err)
		}
		if v != uint32(i*7) {
			t.Fatalf("U32 #%d = %d, want %d", i, v, i*7)
		}
	}
	v64, err := r.U64()
	if err != nil || v64 != 0xdeadbeefcafef00d {
		t.Fatalf("U64 = %x, err %v", v64, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	var b [1]byte
	if _, err := r.Read(b[:]); err != io.EOF {
		t.Fatalf("read past end err = %v, want EOF", err)
	}
}

func TestReaderN(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	w := NewWriter(f)
	w.Write(bytes.Repeat([]byte{7}, 100))
	w.Close()
	r := NewReaderN(f, 10, 1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("ReadAll got %d bytes, want 10", len(got))
	}
}

func TestWriterPartialPageZeroPadded(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	w := NewWriter(f)
	w.Write([]byte{1, 2, 3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 1 {
		t.Fatalf("NumPages = %d, want 1", f.NumPages())
	}
	page := make([]byte, d.PageSize())
	f.ReadPage(0, page)
	if page[0] != 1 || page[3] != 0 || page[d.PageSize()-1] != 0 {
		t.Fatal("partial page not zero padded")
	}
	if f.Size() != 3 {
		t.Fatalf("Size = %d, want 3", f.Size())
	}
}

func TestDiskBacking(t *testing.T) {
	dir := t.TempDir()
	d := MustOpen(Config{PageSize: 128, Channels: 2, Dir: dir})
	f, err := d.Create("sub/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	payload := bytes.Repeat([]byte{0xAB}, 300)
	w.Write(payload)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(f, 4)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("disk round trip mismatch")
	}
	if err := f.Truncate(); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 0 {
		t.Fatal("disk truncate failed")
	}
	if err := d.Remove("sub/data.bin"); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPerChannel(t *testing.T) {
	if got := maxPerChannel(0, 4, nil); got != 0 {
		t.Fatalf("empty = %d", got)
	}
	if got := maxPerChannel(0, 4, []int{7}); got != 1 {
		t.Fatalf("single = %d", got)
	}
	// Pages 0,4,8 all land on channel 0 (base 0, 4 channels).
	if got := maxPerChannel(0, 4, []int{0, 4, 8}); got != 3 {
		t.Fatalf("conflicting pages = %d, want 3", got)
	}
	// Pages 0,1,2,3 spread across all channels.
	if got := maxPerChannel(0, 4, []int{0, 1, 2, 3}); got != 1 {
		t.Fatalf("spread pages = %d, want 1", got)
	}
	if got := maxPerChannelRange(0, 4); got != 0 {
		t.Fatalf("range 0 = %d", got)
	}
	if got := maxPerChannelRange(9, 4); got != 3 {
		t.Fatalf("range 9/4 = %d, want 3", got)
	}
}

// Property: Writer then Reader round-trips arbitrary byte strings.
func TestQuickStreamRoundTrip(t *testing.T) {
	cnt := 0
	f := func(data []byte) bool {
		cnt++
		d := MustOpen(Config{PageSize: 64, Channels: 2})
		file, _ := d.Create("f")
		w := NewWriter(file)
		w.Write(data)
		if err := w.Close(); err != nil {
			return false
		}
		got, err := io.ReadAll(NewReader(file, 3))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadAt agrees with the written stream at random offsets.
func TestQuickReadAt(t *testing.T) {
	d := MustOpen(Config{PageSize: 128, Channels: 4})
	file, _ := d.Create("f")
	data := make([]byte, 4096)
	rng := rand.New(rand.NewSource(42))
	rng.Read(data)
	w := NewWriter(file)
	w.Write(data)
	w.Close()

	f := func(offRaw, lenRaw uint16) bool {
		off := int(offRaw) % len(data)
		l := int(lenRaw) % (len(data) - off)
		buf := make([]byte, l)
		if err := file.ReadAt(buf, int64(off)); err != nil {
			return false
		}
		return bytes.Equal(buf, data[off:off+l])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendPage(b *testing.B) {
	d := MustOpen(Config{PageSize: 16384, Channels: 8})
	f, _ := d.Create("bench")
	page := make([]byte, 16384)
	b.SetBytes(16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AppendPage(page)
	}
}

func BenchmarkReadPageRange(b *testing.B) {
	d := MustOpen(Config{PageSize: 16384, Channels: 8})
	f, _ := d.Create("bench")
	page := make([]byte, 16384)
	for i := 0; i < 256; i++ {
		f.AppendPage(page)
	}
	dst := make([]byte, 64*16384)
	b.SetBytes(64 * 16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ReadPageRange((i%4)*64, 64, dst)
	}
}

func TestStatsByFile(t *testing.T) {
	d := testDev(t)
	a, _ := d.Create("graph.colidx")
	b, _ := d.Create("log.0")
	page := make([]byte, d.PageSize())
	a.AppendPage(page)
	a.ReadPage(0, page)
	a.ReadPage(0, page)
	b.AppendPage(page)
	st := d.StatsByFile()
	if st["graph.colidx"].PagesRead != 2 || st["graph.colidx"].PagesWritten != 1 {
		t.Fatalf("graph stats = %+v", st["graph.colidx"])
	}
	if st["log.0"].PagesWritten != 1 || st["log.0"].PagesRead != 0 {
		t.Fatalf("log stats = %+v", st["log.0"])
	}
}

func TestFaultInjectionBasics(t *testing.T) {
	d := testDev(t)
	f, _ := d.Create("f")
	page := make([]byte, d.PageSize())
	d.FailAfter(2, nil)
	if _, err := f.AppendPage(page); err != nil {
		t.Fatalf("op 1 failed early: %v", err)
	}
	if _, err := f.AppendPage(page); err != nil {
		t.Fatalf("op 2 failed early: %v", err)
	}
	if _, err := f.AppendPage(page); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 err = %v, want ErrInjected", err)
	}
	if err := f.ReadPage(0, page); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
	d.FailAfter(-1, nil)
	if err := f.ReadPage(0, page); err != nil {
		t.Fatalf("disarmed read failed: %v", err)
	}
}

func TestStatsHistograms(t *testing.T) {
	lat := 100 * time.Microsecond
	d := MustOpen(Config{PageSize: 64, Channels: 4, PageReadLatency: lat, PageWriteLatency: lat})
	f, _ := d.Create("f")
	for i := 0; i < 8; i++ {
		f.AppendPage(make([]byte, 64))
	}
	d.ResetStats()

	// One batch of 8 pages over 4 channels: perfectly balanced, 2 serial
	// latencies on the busiest channel.
	if err := f.ReadPageRange(0, 8, make([]byte, 8*64)); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.ReadBatchPages.N != 1 || st.ReadBatchPages.Sum != 8 {
		t.Fatalf("ReadBatchPages = %s", st.ReadBatchPages)
	}
	if st.ReadImbalance.N != 1 || st.ReadImbalance.Sum != 0 {
		t.Fatalf("balanced batch should observe imbalance 0, got %s", st.ReadImbalance)
	}
	if st.ReadLatencyUS.N != 1 || st.ReadLatencyUS.Sum != 200 {
		t.Fatalf("ReadLatencyUS = %s, want one 200us observation", st.ReadLatencyUS)
	}

	// Single-page reads: each batch is 1 page, 1 latency, imbalance 0.
	before := st
	buf := make([]byte, 64)
	for i := 0; i < 3; i++ {
		f.ReadPage(i, buf)
	}
	delta := d.Stats().Sub(before)
	if delta.ReadBatchPages.N != 3 || delta.ReadBatchPages.Sum != 3 {
		t.Fatalf("delta ReadBatchPages = %s", delta.ReadBatchPages)
	}
	if delta.ReadLatencyUS.Sum != 300 {
		t.Fatalf("delta ReadLatencyUS = %s", delta.ReadLatencyUS)
	}

	// Writes populate the write-side histograms.
	if err := f.WritePageRange(0, make([]byte, 6*64)); err != nil {
		t.Fatal(err)
	}
	st = d.Stats()
	if st.WriteBatchPages.N != 1 || st.WriteBatchPages.Sum != 6 {
		t.Fatalf("WriteBatchPages = %s", st.WriteBatchPages)
	}
	// 6 pages over 4 channels: busiest has 2, ideal is ceil(6/4)=2 -> 0 skew.
	if st.WriteImbalance.Sum != 0 {
		t.Fatalf("WriteImbalance = %s", st.WriteImbalance)
	}
	if st.WriteLatencyUS.Sum != 200 {
		t.Fatalf("WriteLatencyUS = %s", st.WriteLatencyUS)
	}
}
