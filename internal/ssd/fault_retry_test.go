package ssd

import (
	"errors"
	"testing"
	"time"
)

func retryDev(t *testing.T, pol RetryPolicy) *Device {
	t.Helper()
	dev, err := Open(Config{PageSize: 512, Channels: 2, Retry: pol})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func fillPages(t *testing.T, dev *Device, name string, n int) *File {
	t.Helper()
	f, err := dev.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, dev.PageSize())
	for i := 0; i < n; i++ {
		buf[0] = byte(i)
		if _, err := f.AppendPage(buf); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestTransientScriptedInvisible: one scripted transient fault is absorbed
// by a single retry; the caller never sees an error, and the stats record
// the fault, the retry, and a nonzero virtual backoff.
func TestTransientScriptedInvisible(t *testing.T) {
	dev := retryDev(t, RetryPolicy{})
	f := fillPages(t, dev, "a", 8)
	dev.FailTransientAt(2)
	buf := make([]byte, dev.PageSize())
	for i := 0; i < 8; i++ {
		if err := f.ReadPage(i, buf); err != nil {
			t.Fatalf("read %d: transient fault within budget surfaced: %v", i, err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("read %d: wrong data after retry", i)
		}
	}
	st := dev.Stats()
	if st.TransientFaults != 1 || st.Retries != 1 || st.RetriesExhausted != 0 {
		t.Fatalf("stats = faults:%d retries:%d exhausted:%d, want 1/1/0",
			st.TransientFaults, st.Retries, st.RetriesExhausted)
	}
	if st.RetryBackoff <= 0 {
		t.Fatal("retry charged no backoff to the virtual clock")
	}
	if st.StorageTime() != st.ReadTime+st.WriteTime+st.RetryBackoff {
		t.Fatal("StorageTime does not include RetryBackoff")
	}
}

// TestTransientConsecutiveExhausts: scripting 1+MaxRetries consecutive
// attempt indices makes one logical operation fail every attempt; the
// budget runs dry and the error wraps both sentinels.
func TestTransientConsecutiveExhausts(t *testing.T) {
	dev := retryDev(t, RetryPolicy{MaxRetries: 3})
	f := fillPages(t, dev, "a", 4)
	// Arming resets the attempt counter; the next read is attempt 0 and
	// its three retries are attempts 1-3.
	dev.FailTransientAt(0, 1, 2, 3)
	err := f.ReadPage(0, make([]byte, dev.PageSize()))
	if err == nil {
		t.Fatal("exhausted retry budget did not surface")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("%v does not wrap ErrTransient", err)
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("%v does not wrap ErrRetriesExhausted", err)
	}
	if errors.Is(err, ErrInjected) {
		t.Fatalf("%v wraps ErrInjected; transient exhaustion is not a permanent fault", err)
	}
	st := dev.Stats()
	if st.TransientFaults != 4 || st.Retries != 3 || st.RetriesExhausted != 1 {
		t.Fatalf("stats = faults:%d retries:%d exhausted:%d, want 4/3/1",
			st.TransientFaults, st.Retries, st.RetriesExhausted)
	}
}

// TestRetryDisabled: MaxRetries < 0 surfaces the first transient fault
// with no retry attempts charged.
func TestRetryDisabled(t *testing.T) {
	dev := retryDev(t, RetryPolicy{MaxRetries: -1})
	f := fillPages(t, dev, "a", 2)
	dev.FailTransientAt(0)
	err := f.ReadPage(0, make([]byte, dev.PageSize()))
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient with retries disabled, got %v", err)
	}
	st := dev.Stats()
	if st.Retries != 0 || st.RetryBackoff != 0 {
		t.Fatalf("disabled retry still charged %d retries, %v backoff", st.Retries, st.RetryBackoff)
	}
}

// TestBackoffGrowsAndCaps: consecutive retries double the backoff window
// up to MaxBackoff; total charged backoff stays within the sum of the
// per-attempt windows.
func TestBackoffGrowsAndCaps(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 4, BaseBackoff: 100 * time.Microsecond, MaxBackoff: 300 * time.Microsecond}
	dev := retryDev(t, pol)
	f := fillPages(t, dev, "a", 2)
	dev.FailTransientAt(0, 1, 2, 3, 4) // exhaust: 1 attempt + 4 retries
	if err := f.ReadPage(0, make([]byte, dev.PageSize())); err == nil {
		t.Fatal("want exhaustion")
	}
	st := dev.Stats()
	// Windows: 100, 200, 300 (capped), 300 µs; jitter keeps each delay in
	// [w/2, w), so the total lies in [450µs, 900µs).
	lo, hi := 450*time.Microsecond, 900*time.Microsecond
	if st.RetryBackoff < lo || st.RetryBackoff >= hi {
		t.Fatalf("total backoff %v outside jitter envelope [%v, %v)", st.RetryBackoff, lo, hi)
	}
}

// TestTransientProbDeterministic: the probabilistic injector draws from a
// seeded PRNG, so two devices running the same op sequence observe the
// same faults.
func TestTransientProbDeterministic(t *testing.T) {
	counts := make([]uint64, 2)
	for trial := 0; trial < 2; trial++ {
		dev := retryDev(t, RetryPolicy{})
		f := fillPages(t, dev, "a", 16)
		dev.FailTransientProb(0.3, 99)
		buf := make([]byte, dev.PageSize())
		for i := 0; i < 16; i++ {
			// p=0.3 with 3 retries exhausts with probability 0.3^4 ≈ 0.8%;
			// tolerate it by ignoring errors — the draw sequence is what
			// must repeat.
			_ = f.ReadPage(i, buf)
		}
		counts[trial] = dev.Stats().TransientFaults
	}
	if counts[0] != counts[1] {
		t.Fatalf("same seed produced different fault counts: %d vs %d", counts[0], counts[1])
	}
	if counts[0] == 0 {
		t.Fatal("p=0.3 over 16 reads produced no transient faults")
	}
}

// TestPermanentBeatsTransient: a permanently failed device reports the
// permanent error immediately; the retry layer must not spin on it.
func TestPermanentBeatsTransient(t *testing.T) {
	dev := retryDev(t, RetryPolicy{})
	f := fillPages(t, dev, "a", 2)
	dev.FailTransientProb(1.0, 7)
	dev.FailAfter(0, nil)
	err := f.ReadPage(0, make([]byte, dev.PageSize()))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected from a dead device, got %v", err)
	}
	if st := dev.Stats(); st.Retries != 0 {
		t.Fatalf("retry layer spent %d retries on a permanent fault", st.Retries)
	}
}

// TestTransientDisarm: arming with no arguments (scripted) and p<=0
// (probabilistic) disarms cleanly.
func TestTransientDisarm(t *testing.T) {
	dev := retryDev(t, RetryPolicy{MaxRetries: -1})
	f := fillPages(t, dev, "a", 2)
	dev.FailTransientProb(1.0, 7)
	if err := f.ReadPage(0, make([]byte, dev.PageSize())); err == nil {
		t.Fatal("armed probabilistic injector did not fire")
	}
	dev.FailTransientProb(0, 0)
	dev.FailTransientAt(0)
	dev.FailTransientAt()
	if err := f.ReadPage(0, make([]byte, dev.PageSize())); err != nil {
		t.Fatalf("disarmed device still failing: %v", err)
	}
}
