package ssd_test

// End-to-end tests of the device with a real page cache attached. These
// live in an external test package so they can use internal/pagecache
// without an import cycle (ssd only knows the PageCache interface).

import (
	"errors"
	"testing"

	"multilogvc/internal/pagecache"
	"multilogvc/internal/ssd"
)

const ps = 128

func newCachedDev(t *testing.T, capacityPages int) (*ssd.Device, *pagecache.Cache) {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: ps, Channels: 4})
	c := pagecache.New(capacityPages, ps)
	dev.AttachCache(c)
	return dev, c
}

func fillFile(t *testing.T, dev *ssd.Device, name string, pages int) *ssd.File {
	t.Helper()
	f, err := dev.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pages*ps)
	for pg := 0; pg < pages; pg++ {
		for i := 0; i < ps; i++ {
			buf[pg*ps+i] = byte(pg)
		}
	}
	if err := f.AppendPages(buf); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCachedReadChargesOnlyMisses checks the core accounting contract:
// the first read pays the device, the repeat read is free, and a batch
// with a partial hit charges only the missing subset.
func TestCachedReadChargesOnlyMisses(t *testing.T) {
	dev, c := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 8)
	dev.ResetStats()

	buf := make([]byte, ps)
	if err := f.ReadPage(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 {
		t.Fatalf("read page 3: got byte %d", buf[0])
	}
	if got := dev.Stats().PagesRead; got != 1 {
		t.Fatalf("first read charged %d pages, want 1", got)
	}

	if err := f.ReadPage(3, buf); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.PagesRead != 1 || st.BatchReads != 1 {
		t.Fatalf("repeat read charged the device: %d pages, %d batches", st.PagesRead, st.BatchReads)
	}

	// Batch of 4 with one page already resident: charge exactly 3.
	dst := make([]byte, 4*ps)
	if err := f.ReadPages([]int{2, 3, 4, 5}, dst); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().PagesRead; got != 4 {
		t.Fatalf("partial-hit batch charged %d total pages, want 4 (1 + 3 misses)", got)
	}
	for i, want := range []byte{2, 3, 4, 5} {
		if dst[i*ps] != want {
			t.Fatalf("batch slot %d: got %d, want %d", i, dst[i*ps], want)
		}
	}

	// Fully resident range read: zero device traffic.
	before := dev.Stats()
	if err := f.ReadPageRange(2, 4, dst); err != nil {
		t.Fatal(err)
	}
	if d := dev.Stats().Sub(before); d.PagesRead != 0 || d.BatchReads != 0 {
		t.Fatalf("fully cached range read charged %d pages", d.PagesRead)
	}
	if hits := c.Stats().Hits; hits == 0 {
		t.Fatal("cache recorded no hits")
	}
}

// TestWriteThroughCoherence checks that every write path refreshes the
// cached copy so cached readers never see stale data.
func TestWriteThroughCoherence(t *testing.T) {
	dev, _ := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 4)

	buf := make([]byte, ps)
	if err := f.ReadPage(1, buf); err != nil { // page 1 now cached
		t.Fatal(err)
	}
	upd := make([]byte, ps)
	for i := range upd {
		upd[i] = 0xAB
	}
	if err := f.WritePage(1, upd); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats()
	if err := f.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatalf("cached read returned stale data after WritePage: %x", buf[0])
	}
	if d := dev.Stats().Sub(before); d.PagesRead != 0 {
		t.Fatal("read after write-through went to the device")
	}

	// Range write over cached pages.
	if err := f.ReadPageRange(2, 2, make([]byte, 2*ps)); err != nil {
		t.Fatal(err)
	}
	upd2 := make([]byte, 2*ps)
	for i := range upd2 {
		upd2[i] = 0xCD
	}
	if err := f.WritePageRange(2, upd2); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xCD {
		t.Fatalf("cached read returned stale data after WritePageRange: %x", buf[0])
	}
}

// TestTruncateInvalidates checks that recycling a file (the mlog pattern:
// truncate between supersteps) never serves stale cached pages.
func TestTruncateInvalidates(t *testing.T) {
	dev, c := newCachedDev(t, 16)
	f := fillFile(t, dev, "log", 4)
	buf := make([]byte, ps)
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(); err != nil {
		t.Fatal(err)
	}
	if c.Resident() != 0 {
		t.Fatalf("%d pages survived truncate", c.Resident())
	}
	// Rewrite with different content and read through a fresh path.
	upd := make([]byte, ps)
	for i := range upd {
		upd[i] = 0xEE
	}
	if _, err := f.AppendPage(upd); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xEE {
		t.Fatalf("read stale page after truncate+rewrite: %x", buf[0])
	}
}

// TestRemoveInvalidatesAndNoAliasing checks that removing a file drops its
// pages and that a new file reusing the name gets a fresh cache namespace.
func TestRemoveInvalidatesAndNoAliasing(t *testing.T) {
	dev, c := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 2)
	if err := f.ReadPage(0, make([]byte, ps)); err != nil {
		t.Fatal(err)
	}
	oldID := f.ID()
	if err := dev.Remove("data"); err != nil {
		t.Fatal(err)
	}
	if c.Resident() != 0 {
		t.Fatal("removed file's pages still resident")
	}
	g := fillFile(t, dev, "data", 2)
	if g.ID() == oldID {
		t.Fatal("recreated file reused the old cache namespace")
	}
}

// TestFaultPropagatesThroughCacheMiss checks that an injected device
// failure surfaces on the miss path, while pure cache hits — which touch
// no device — keep succeeding.
func TestFaultPropagatesThroughCacheMiss(t *testing.T) {
	dev, _ := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 8)
	buf := make([]byte, ps)
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}

	dev.FailAfter(0, nil)
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatalf("cache hit failed under fault injection: %v", err)
	}
	if err := f.ReadPage(1, buf); !errors.Is(err, ssd.ErrInjected) {
		t.Fatalf("cache miss error = %v, want ErrInjected", err)
	}
	if err := f.ReadPages([]int{0, 2}, make([]byte, 2*ps)); !errors.Is(err, ssd.ErrInjected) {
		t.Fatalf("partial-hit batch error = %v, want ErrInjected", err)
	}
	if _, _, err := f.WarmPages([]int{3, 4}, false); !errors.Is(err, ssd.ErrInjected) {
		t.Fatalf("WarmPages error = %v, want ErrInjected", err)
	}
}

// TestWarmPagesChargesAndPins covers the prefetch entry point directly:
// warmed pages are charged once, served for free afterwards, and skipped
// when already resident or out of range.
func TestWarmPagesChargesAndPins(t *testing.T) {
	dev, c := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 8)
	dev.ResetStats()

	warmed, pinnedPages, err := f.WarmPages([]int{1, 2, 99, -1, 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(warmed) != 3 {
		t.Fatalf("warmed %v, want the 3 valid pages", warmed)
	}
	if got := dev.Stats().PagesRead; got != 3 {
		t.Fatalf("warm charged %d pages, want 3", got)
	}

	// Re-warming resident pages is free and returns nothing.
	again, _, err := f.WarmPages([]int{1, 2, 3}, false)
	if err != nil || len(again) != 0 {
		t.Fatalf("re-warm = %v, %v; want empty, nil", again, err)
	}
	if got := dev.Stats().PagesRead; got != 3 {
		t.Fatalf("re-warm charged the device (total %d pages)", got)
	}

	before := dev.Stats()
	if err := f.ReadPages([]int{1, 2, 3}, make([]byte, 3*ps)); err != nil {
		t.Fatal(err)
	}
	if d := dev.Stats().Sub(before); d.PagesRead != 0 {
		t.Fatal("reading warmed pages hit the device")
	}
	if st := c.Stats(); st.PrefetchHits != 3 {
		t.Fatalf("PrefetchHits = %d, want 3", st.PrefetchHits)
	}
	f.UnpinPages(pinnedPages)
}

// TestUncachedPathsUnchanged guards the baseline: with no cache attached
// the device charges every page on every read, as the paper's model does.
func TestUncachedPathsUnchanged(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: ps, Channels: 4})
	f := fillFile(t, dev, "data", 4)
	dev.ResetStats()
	buf := make([]byte, ps)
	for i := 0; i < 3; i++ {
		if err := f.ReadPage(2, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.Stats().PagesRead; got != 3 {
		t.Fatalf("uncached repeat reads charged %d pages, want 3", got)
	}
	if warmed, _, err := f.WarmPages([]int{0, 1}, true); err != nil || warmed != nil {
		t.Fatalf("WarmPages without cache = %v, %v; want nil, nil", warmed, err)
	}
}
