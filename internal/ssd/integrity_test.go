package ssd

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// intDev returns an uncached in-memory device with a small page size.
func intDev(t *testing.T) *Device {
	t.Helper()
	return MustOpen(Config{PageSize: 128, Channels: 4})
}

// writeFile creates name and fills it with n pages whose bytes encode the
// page index, returning the file.
func writeFile(t *testing.T, d *Device, name string, n int) *File {
	t.Helper()
	f, err := d.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, n*d.PageSize())
	for pg := 0; pg < n; pg++ {
		for i := 0; i < d.PageSize(); i++ {
			buf[pg*d.PageSize()+i] = byte(pg + 1)
		}
	}
	if err := f.AppendPages(buf); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestChecksumRoundTrip(t *testing.T) {
	d := intDev(t)
	f := writeFile(t, d, "data", 8)
	buf := make([]byte, d.PageSize())
	for pg := 0; pg < 8; pg++ {
		if err := f.ReadPage(pg, buf); err != nil {
			t.Fatalf("page %d: %v", pg, err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(pg + 1)}, d.PageSize())) {
			t.Fatalf("page %d content mismatch", pg)
		}
	}
	if st := d.Stats(); st.CorruptPages != 0 || st.CorruptionsInjected != 0 {
		t.Fatalf("clean round trip charged corruption: %+v", st)
	}
}

func TestCorruptScriptedSticky(t *testing.T) {
	d := intDev(t)
	f := writeFile(t, d, "data", 4)
	buf := make([]byte, d.PageSize())

	d.FailCorruptAt(1) // second physical page read
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatalf("op 0 should be clean: %v", err)
	}
	if err := f.ReadPage(2, buf); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("op 1 err = %v, want ErrCorruptPage", err)
	}

	// Sticky: disarm injection; the stored bits stay flipped and the CRC
	// stays stale, so the same page keeps failing until rewritten.
	d.FailCorruptAt()
	if err := f.ReadPage(2, buf); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("disarmed re-read err = %v, want ErrCorruptPage (sticky)", err)
	}
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatalf("undamaged page errored after disarm: %v", err)
	}

	// Rewriting the page refreshes the checksum and clears the damage.
	if err := f.WritePage(2, bytes.Repeat([]byte{9}, d.PageSize())); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(2, buf); err != nil {
		t.Fatalf("rewritten page still failing: %v", err)
	}

	st := d.Stats()
	if st.CorruptionsInjected != 1 {
		t.Fatalf("CorruptionsInjected = %d, want 1", st.CorruptionsInjected)
	}
	if st.CorruptPages != 2 {
		t.Fatalf("CorruptPages = %d, want 2 (injected read + sticky re-read)", st.CorruptPages)
	}
	if fs := d.StatsByFile()["data"]; fs.CorruptPages != 2 {
		t.Fatalf("per-file CorruptPages = %d, want 2", fs.CorruptPages)
	}
}

func TestCorruptProbDeterministic(t *testing.T) {
	count := func(seed uint64) (uint64, int) {
		d := intDev(t)
		f := writeFile(t, d, "data", 16)
		d.FailCorruptProb(0.3, seed)
		buf := make([]byte, d.PageSize())
		fails := 0
		for pg := 0; pg < 16; pg++ {
			if err := f.ReadPage(pg, buf); errors.Is(err, ErrCorruptPage) {
				fails++
			} else if err != nil {
				t.Fatal(err)
			}
		}
		return d.Stats().CorruptionsInjected, fails
	}
	inj1, f1 := count(7)
	inj2, f2 := count(7)
	if inj1 != inj2 || f1 != f2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", inj1, f1, inj2, f2)
	}
	if inj1 == 0 || inj1 == 16 {
		t.Fatalf("p=0.3 over 16 reads injected %d corruptions — injection not probabilistic", inj1)
	}
}

func TestCorruptOnlyFilterAndOps(t *testing.T) {
	d := intDev(t)
	fa := writeFile(t, d, "clean.dat", 4)
	fb := writeFile(t, d, "target.dat", 4)
	buf := make([]byte, d.PageSize())

	// A filter alone counts matching reads without corrupting anything.
	d.CorruptOnly("target")
	for pg := 0; pg < 4; pg++ {
		if err := fa.ReadPage(pg, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.CorruptOps(); got != 0 {
		t.Fatalf("non-matching reads counted: CorruptOps = %d", got)
	}
	for pg := 0; pg < 3; pg++ {
		if err := fb.ReadPage(pg, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.CorruptOps(); got != 3 {
		t.Fatalf("CorruptOps = %d, want 3", got)
	}

	// Script an exact matching read; the filter keeps other files safe.
	d.FailCorruptAt(2)
	if err := fa.ReadPage(0, buf); err != nil {
		t.Fatalf("filtered-out file corrupted: %v", err)
	}
	if err := fb.ReadPage(0, buf); err != nil { // op 0
		t.Fatal(err)
	}
	if err := fb.ReadPage(1, buf); err != nil { // op 1
		t.Fatal(err)
	}
	if err := fb.ReadPage(3, buf); !errors.Is(err, ErrCorruptPage) { // op 2
		t.Fatalf("scripted op err = %v, want ErrCorruptPage", err)
	}
}

func TestCorruptDiskSidecarPersists(t *testing.T) {
	dir := t.TempDir()
	d1 := MustOpen(Config{PageSize: 128, Channels: 2, Dir: dir})
	writeFile(t, d1, "data", 4)
	if err := d1.CorruptStoredPage("data", 2); err != nil {
		t.Fatal(err)
	}

	// A second device adopting the directory sees the checksums — and the
	// damage — planted by the first.
	d2 := MustOpen(Config{PageSize: 128, Channels: 2, Dir: dir})
	for _, name := range d2.ListFiles() {
		if isSidecar(name) {
			t.Fatalf("sidecar %q adopted as a data file", name)
		}
	}
	f, err := d2.OpenFile("data")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d2.PageSize())
	if err := f.ReadPage(1, buf); err != nil {
		t.Fatalf("clean page failed across re-open: %v", err)
	}
	if err := f.ReadPage(2, buf); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("corrupt page err across re-open = %v, want ErrCorruptPage", err)
	}
}

func TestScrubFindsPlantedCorruption(t *testing.T) {
	d := intDev(t)
	writeFile(t, d, "bad", 4)
	writeFile(t, d, "good", 4)
	if err := d.CorruptStoredPage("bad", 1); err != nil {
		t.Fatal(err)
	}

	before := d.Stats()
	res, err := d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].File != "bad" || res[1].File != "good" {
		t.Fatalf("scrub results = %+v", res)
	}
	if res[0].OK() || !reflect.DeepEqual(res[0].Corrupt, []int{1}) {
		t.Fatalf("bad file result = %+v, want Corrupt=[1]", res[0])
	}
	if !res[1].OK() || res[1].Pages != 4 {
		t.Fatalf("good file result = %+v", res[1])
	}
	after := d.Stats()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("scrub charged the device: before %+v after %+v", before, after)
	}

	// Rewriting the damaged page heals it.
	f, _ := d.OpenFile("bad")
	if err := f.WritePage(1, make([]byte, d.PageSize())); err != nil {
		t.Fatal(err)
	}
	res, err = d.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK() {
		t.Fatalf("rewritten page still flagged: %+v", res[0])
	}
}

func TestNoVerifySkipsChecksums(t *testing.T) {
	d := MustOpen(Config{PageSize: 128, Channels: 2, NoVerify: true})
	f := writeFile(t, d, "data", 2)
	if err := d.CorruptStoredPage("data", 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.PageSize())
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatalf("NoVerify read errored: %v", err)
	}
	if st := d.Stats(); st.CorruptPages != 0 {
		t.Fatalf("NoVerify charged CorruptPages = %d", st.CorruptPages)
	}
}

func TestCorruptStoredPageErrors(t *testing.T) {
	d := intDev(t)
	writeFile(t, d, "data", 2)
	if err := d.CorruptStoredPage("missing", 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing file err = %v", err)
	}
	if err := d.CorruptStoredPage("data", 2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
	if err := d.CorruptStoredPage("data", -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative page err = %v", err)
	}
}

// fillDistinct sets every numeric leaf of v (recursing through structs
// and arrays) to a distinct nonzero value.
func fillDistinct(v reflect.Value, next *uint64) {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*next += 3
		v.SetUint(*next)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*next += 3
		v.SetInt(int64(*next))
	case reflect.Float32, reflect.Float64:
		*next += 3
		v.SetFloat(float64(*next))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillDistinct(v.Field(i), next)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillDistinct(v.Index(i), next)
		}
	default:
		panic("Stats grew a field kind Sub cannot be audited for: " + v.Kind().String())
	}
}

// TestStatsSubComplete locks in the audit that Stats.Sub subtracts every
// field: fill the struct with distinct values, then s-0 must equal s and
// s-s must be zero. A field forgotten in Sub fails one of the two.
func TestStatsSubComplete(t *testing.T) {
	var s Stats
	next := uint64(10)
	fillDistinct(reflect.ValueOf(&s).Elem(), &next)

	var zero Stats
	if got := s.Sub(zero); !reflect.DeepEqual(got, s) {
		t.Fatalf("s.Sub(zero) != s:\n got %+v\nwant %+v", got, s)
	}
	if got := s.Sub(s); !reflect.DeepEqual(got, zero) {
		t.Fatalf("s.Sub(s) != zero: %+v", got)
	}
}
