package ssd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrNoSpace is returned when a write would grow the device past its
// configured Capacity (or when no-space injection fires) and running the
// registered reclaimers did not free enough pages. It models the ENOSPC a
// real flash device returns when over-provisioning runs out: retrying the
// same write without freeing space cannot succeed.
var ErrNoSpace = errors.New("ssd: device capacity exhausted")

// Capacity returns the device byte quota (0 = unlimited).
func (d *Device) Capacity() int64 { return d.cfg.Capacity }

// UsedBytes returns the bytes currently allocated across all live files
// (allocated pages × page size; checksum sidecars are store metadata and
// are not counted).
func (d *Device) UsedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.usedPages * int64(d.cfg.PageSize)
}

// AddReclaimer registers a space-reclamation hook, called (in registration
// order) when a write hits the capacity quota or injected no-space before
// the write is retried once. Hooks free space by truncating or removing
// files whose contents are no longer needed — consumed message-log
// intervals, stale checkpoint slots. A hook MUST NOT touch the file whose
// write triggered reclamation (the writer holds its lock) and must be safe
// to call from any goroutine performing device IO. The returned function
// unregisters the hook.
func (d *Device) AddReclaimer(fn func()) (remove func()) {
	d.reclaimMu.Lock()
	if d.reclaimers == nil {
		d.reclaimers = make(map[int]func())
	}
	id := d.nextReclaimID
	d.nextReclaimID++
	d.reclaimers[id] = fn
	d.reclaimMu.Unlock()
	return func() {
		d.reclaimMu.Lock()
		delete(d.reclaimers, id)
		d.reclaimMu.Unlock()
	}
}

// FailNoSpaceAt arms scripted no-space faults: growth attempt number op
// (0-based, counted across every page write that requests new pages from
// this call on, including the post-reclaim retry attempt) fails as if the
// device were full. Scripting two consecutive indices makes one logical
// write fail both before and after reclamation, which is how tests drive
// the classified ErrNoSpace exit. Calling with no arguments disarms.
func (d *Device) FailNoSpaceAt(ops ...int64) {
	d.mu.Lock()
	d.spaceOps = 0
	if len(ops) == 0 {
		d.noSpaceAt = nil
	} else {
		d.noSpaceAt = make(map[int64]bool, len(ops))
		for _, op := range ops {
			d.noSpaceAt[op] = true
		}
	}
	d.updateNoSpaceArmedLocked()
	d.mu.Unlock()
}

// FailNoSpaceProb arms probabilistic no-space faults: every growth attempt
// independently fails with probability p, drawn from a deterministic PRNG
// seeded by seed. The post-reclaim retry redraws, so a fault rate p
// surfaces as a classified ErrNoSpace with probability p². p <= 0 disarms.
func (d *Device) FailNoSpaceProb(p float64, seed uint64) {
	d.mu.Lock()
	if p <= 0 {
		d.noSpaceProb = 0
	} else {
		d.noSpaceProb = p
		if seed == 0 {
			seed = 1
		}
		d.noSpaceRNG = seed
	}
	d.updateNoSpaceArmedLocked()
	d.mu.Unlock()
}

// updateNoSpaceArmedLocked caches whether any growth-path governance is on
// (quota or injection) so ungoverned devices pay one atomic load per write.
func (d *Device) updateNoSpaceArmedLocked() {
	d.noSpaceArmed.Store(d.cfg.Capacity > 0 || d.noSpaceAt != nil || d.noSpaceProb > 0)
}

// reserveGrow accounts grow new pages against the device quota. On a quota
// hit or an injected no-space fault it runs the registered reclaimers and
// retries the reservation exactly once; a second failure surfaces as a
// classified ErrNoSpace. Called with the growing file's lock held; see
// AddReclaimer for the resulting constraint on hooks.
func (d *Device) reserveGrow(grow int) error {
	if grow <= 0 {
		return nil
	}
	if !d.noSpaceArmed.Load() {
		d.mu.Lock()
		d.usedPages += int64(grow)
		d.mu.Unlock()
		return nil
	}
	if err := d.tryReserve(grow); err == nil {
		return nil
	}
	d.runReclaimers()
	return d.tryReserve(grow)
}

// tryReserve is one reservation attempt: it consumes a no-space injection
// credit, then checks the quota. On success the pages are accounted used.
func (d *Device) tryReserve(grow int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.noSpaceAt != nil || d.noSpaceProb > 0 {
		op := d.spaceOps
		d.spaceOps++
		hit := d.noSpaceAt != nil && d.noSpaceAt[op]
		if !hit && d.noSpaceProb > 0 {
			draw := float64(splitmix64(&d.noSpaceRNG)>>11) / float64(1 << 53)
			hit = draw < d.noSpaceProb
		}
		if hit {
			d.stats.NoSpaceFaults++
			return fmt.Errorf("%w (injected)", ErrNoSpace)
		}
	}
	if quota := d.cfg.Capacity; quota > 0 {
		capPages := quota / int64(d.cfg.PageSize)
		if d.usedPages+int64(grow) > capPages {
			d.stats.NoSpaceFaults++
			return fmt.Errorf("%w: need %d pages, %d of %d used",
				ErrNoSpace, grow, d.usedPages, capPages)
		}
	}
	d.usedPages += int64(grow)
	return nil
}

// freePages returns pages to the quota pool (file truncate or removal).
func (d *Device) freePages(n int) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	d.usedPages -= int64(n)
	if d.usedPages < 0 {
		d.usedPages = 0
	}
	d.mu.Unlock()
}

// runReclaimers executes every registered reclamation hook once, in
// registration order, and accounts the sweep plus whatever it freed.
func (d *Device) runReclaimers() {
	d.reclaimMu.Lock()
	ids := make([]int, 0, len(d.reclaimers))
	for id := range d.reclaimers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, d.reclaimers[id])
	}
	d.reclaimMu.Unlock()

	d.mu.Lock()
	before := d.usedPages
	d.stats.Reclaims++
	d.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
	d.mu.Lock()
	if freed := before - d.usedPages; freed > 0 {
		d.stats.ReclaimedBytes += uint64(freed) * uint64(d.cfg.PageSize)
	}
	d.mu.Unlock()
}

// SetRunContext installs the context consulted between retry attempts (and
// cleared with SetRunContext(nil)). A device whose run context is canceled
// stops burning its retry budget: the next retry attempt returns the
// context's error instead of backing off, so a run deadline cannot be
// overshot by the exponential backoff schedule. The engine installs the
// run context for the duration of a governed run.
func (d *Device) SetRunContext(ctx context.Context) {
	if ctx == nil {
		d.runCtx.Store(&runCtxBox{})
		return
	}
	d.runCtx.Store(&runCtxBox{ctx: ctx})
}

// runCtxBox wraps a context for atomic.Pointer storage (interfaces cannot
// be stored in atomic.Value across differing dynamic types).
type runCtxBox struct{ ctx context.Context }

// runContextErr reports the installed run context's cancellation error, or
// nil when no context is installed or it is still live.
func (d *Device) runContextErr() error {
	box := d.runCtx.Load()
	if box == nil || box.ctx == nil {
		return nil
	}
	return box.ctx.Err()
}

// runCtxErrFor resolves the run context governing a scoped operation: a
// scoped run consults only its own context (its deadline, its
// cancellation), never the device-global slot, so concurrent runs cannot
// abort each other's retries.
func (d *Device) runCtxErrFor(sc *IOScope) error {
	if sc != nil {
		return sc.runContextErr()
	}
	return d.runContextErr()
}

// sleepRetry charges one jittered backoff delay to the virtual clock,
// attributed to the stage whose operation is being retried so per-stage
// times still sum to StorageTime(). A non-nil scope resolves the stage
// from its own tag and mirrors the charge.
func (d *Device) sleepRetry(backoff time.Duration, sc *IOScope) {
	st, _ := d.stageOf(sc)
	d.mu.Lock()
	half := backoff / 2
	delay := half + time.Duration(splitmix64(&d.retryRNG)%uint64(half+1))
	d.stats.Retries++
	d.stats.RetryBackoff += delay
	d.stats.Stages[st].Time += delay
	d.mu.Unlock()
	if sc != nil {
		sc.mu.Lock()
		sc.stats.Retries++
		sc.stats.RetryBackoff += delay
		sc.stats.Stages[st].Time += delay
		sc.mu.Unlock()
	}
}
