// Package ssd simulates a page-granular flash storage device.
//
// The simulator models the two properties of SSDs that MultiLogVC's design
// reasons about: page-granular access (the minimum read/write unit is one
// page, typically 16KB) and multi-channel parallelism (pages are striped
// across independent channels; a batch of page requests completes when the
// busiest channel drains its queue).
//
// A Device hosts named Files. All engines in this repository perform their
// storage IO through a shared Device, which counts pages and bytes moved
// and accumulates a virtual storage clock. Because every engine pays the
// same per-page cost on the same device model, relative performance between
// engines depends only on how many pages they touch and how well they batch
// — exactly the quantities the paper's evaluation varies.
//
// Files may be backed by RAM (fast, for tests and benchmarks) or by real
// files in a directory (for the CLI tools). The accounting is identical for
// both backings.
package ssd

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"multilogvc/internal/obsv"
)

// DefaultPageSize is the SSD page size used throughout the paper (16KB).
const DefaultPageSize = 16 * 1024

// Config describes a simulated device.
type Config struct {
	// PageSize is the read/write granularity in bytes. Defaults to 16KB.
	PageSize int
	// Channels is the number of independent flash channels pages are
	// striped across. Defaults to 8.
	Channels int
	// PageReadLatency is the service time for one page read on one
	// channel. Defaults to 50µs (≈ 16KB at ~320MB/s per channel).
	PageReadLatency time.Duration
	// PageWriteLatency is the service time for one page program on one
	// channel. Defaults to 70µs.
	PageWriteLatency time.Duration
	// Dir, if non-empty, backs files with real files in this directory.
	// Otherwise files live in RAM.
	Dir string
	// Capacity, when positive, is the device byte quota: a write that
	// would grow total allocated pages past Capacity runs the registered
	// space reclaimers (see AddReclaimer), retries once, and then fails
	// with ErrNoSpace. 0 models an infinite device (the pre-governance
	// default).
	Capacity int64
	// Retry is the transient-fault retry policy applied on every page
	// operation. The zero value selects the defaults (3 retries, 100µs
	// base backoff); set Retry.MaxRetries to -1 to disable retrying.
	Retry RetryPolicy
	// NoVerify disables page checksum maintenance and verification —
	// the pre-integrity device model, kept for measuring the checksum
	// overhead (mlvc-bench -exp integrity). Corrupt pages then flow to
	// consumers undetected, exactly like hardware without end-to-end
	// data protection.
	NoVerify bool
}

// RetryPolicy bounds how the device retries operations that fail with a
// transient error (ErrTransient). Backoff is exponential with jitter and
// is charged to the *virtual* storage clock (Stats.RetryBackoff), never to
// host time, so retried runs stay fast and deterministic in tests.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failed
	// attempt. 0 selects the default (3); negative disables retrying.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it up to MaxBackoff. Defaults to 100µs.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Defaults to 10ms.
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter PRNG. Defaults to 1.
	JitterSeed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0 // normalized: no re-attempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 10 * time.Millisecond
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	return p
}

func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = DefaultPageSize
	}
	if c.Channels <= 0 {
		c.Channels = 8
	}
	if c.PageReadLatency <= 0 {
		c.PageReadLatency = 50 * time.Microsecond
	}
	if c.PageWriteLatency <= 0 {
		c.PageWriteLatency = 70 * time.Microsecond
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// Stats is a snapshot of the device counters.
//
// Beyond the flat totals, the device keeps power-of-two distributions of
// how well callers batch: pages per request (the quantity FlashGraph and
// BigSparse attribute their wins to), the busiest channel's excess queue
// depth over a perfectly striped batch (0 = no imbalance), and the virtual
// service latency per batch. Engines surface per-superstep deltas of these
// in metrics.SuperstepStats.
type Stats struct {
	PagesRead     uint64
	PagesWritten  uint64
	BytesRead     uint64
	BytesWritten  uint64
	BatchReads    uint64 // number of read batch submissions
	BatchWrites   uint64
	ReadTime      time.Duration // virtual time spent reading
	WriteTime     time.Duration // virtual time spent writing
	FilesCreated  uint64
	FilesRemoved  uint64
	FileTruncates uint64

	// Transient-fault accounting: attempts that failed with ErrTransient,
	// the retries issued against them, retry budgets that ran dry, and the
	// virtual backoff time charged while waiting to retry.
	TransientFaults  uint64
	Retries          uint64
	RetriesExhausted uint64
	RetryBackoff     time.Duration

	// Integrity accounting: pages whose checksum verification failed on a
	// read path, and stored pages the injection machinery damaged.
	CorruptPages        uint64
	CorruptionsInjected uint64

	// Capacity accounting: growth attempts denied for lack of space (real
	// quota or injected), reclamation sweeps run in response, and the bytes
	// those sweeps freed.
	NoSpaceFaults  uint64
	Reclaims       uint64
	ReclaimedBytes uint64

	ReadBatchPages  obsv.Hist // pages per read batch
	WriteBatchPages obsv.Hist // pages per write batch
	ReadImbalance   obsv.Hist // busiest-channel depth minus ceil(pages/channels), per read batch
	WriteImbalance  obsv.Hist // same for write batches
	ReadLatencyUS   obsv.Hist // virtual service time per read batch, µs
	WriteLatencyUS  obsv.Hist // virtual service time per write batch, µs

	// Stages attributes the same traffic to the pipeline stage that issued
	// it (see SetStage). Every charge lands in exactly one stage, so for
	// any snapshot delta the per-stage counters sum to the global ones:
	// Σ Stages[i].PagesRead == PagesRead, Σ Stages[i].Time == StorageTime().
	Stages [obsv.NumStages]StageStats
}

// StageStats is the per-stage slice of the device counters: pages moved,
// the virtual time they cost (service latency plus retry backoff charged
// while the stage was active), and how the attached page cache treated the
// stage's reads (both zero on uncached devices).
type StageStats struct {
	PagesRead    uint64
	PagesWritten uint64
	Time         time.Duration
	CacheHits    uint64 // cached pages the stage's reads found resident
	CacheMisses  uint64 // pages the stage's reads had to fetch
}

// Sub returns s - t, counter-wise (same contract as Stats.Sub).
func (s StageStats) Sub(t StageStats) StageStats {
	return StageStats{
		PagesRead:    s.PagesRead - t.PagesRead,
		PagesWritten: s.PagesWritten - t.PagesWritten,
		Time:         s.Time - t.Time,
		CacheHits:    s.CacheHits - t.CacheHits,
		CacheMisses:  s.CacheMisses - t.CacheMisses,
	}
}

// StorageTime returns the total virtual time charged to the device,
// including backoff stalls spent waiting out transient faults.
func (s Stats) StorageTime() time.Duration { return s.ReadTime + s.WriteTime + s.RetryBackoff }

// Sub returns s - t, counter-wise. Useful for measuring a phase:
// take a snapshot before and after, then Sub.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		PagesRead:     s.PagesRead - t.PagesRead,
		PagesWritten:  s.PagesWritten - t.PagesWritten,
		BytesRead:     s.BytesRead - t.BytesRead,
		BytesWritten:  s.BytesWritten - t.BytesWritten,
		BatchReads:    s.BatchReads - t.BatchReads,
		BatchWrites:   s.BatchWrites - t.BatchWrites,
		ReadTime:      s.ReadTime - t.ReadTime,
		WriteTime:     s.WriteTime - t.WriteTime,
		FilesCreated:  s.FilesCreated - t.FilesCreated,
		FilesRemoved:  s.FilesRemoved - t.FilesRemoved,
		FileTruncates: s.FileTruncates - t.FileTruncates,

		TransientFaults:  s.TransientFaults - t.TransientFaults,
		Retries:          s.Retries - t.Retries,
		RetriesExhausted: s.RetriesExhausted - t.RetriesExhausted,
		RetryBackoff:     s.RetryBackoff - t.RetryBackoff,

		CorruptPages:        s.CorruptPages - t.CorruptPages,
		CorruptionsInjected: s.CorruptionsInjected - t.CorruptionsInjected,

		NoSpaceFaults:  s.NoSpaceFaults - t.NoSpaceFaults,
		Reclaims:       s.Reclaims - t.Reclaims,
		ReclaimedBytes: s.ReclaimedBytes - t.ReclaimedBytes,

		ReadBatchPages:  s.ReadBatchPages.Sub(t.ReadBatchPages),
		WriteBatchPages: s.WriteBatchPages.Sub(t.WriteBatchPages),
		ReadImbalance:   s.ReadImbalance.Sub(t.ReadImbalance),
		WriteImbalance:  s.WriteImbalance.Sub(t.WriteImbalance),
		ReadLatencyUS:   s.ReadLatencyUS.Sub(t.ReadLatencyUS),
		WriteLatencyUS:  s.WriteLatencyUS.Sub(t.WriteLatencyUS),

		Stages: s.subStages(t),
	}
}

func (s Stats) subStages(t Stats) [obsv.NumStages]StageStats {
	var out [obsv.NumStages]StageStats
	for i := range out {
		out[i] = s.Stages[i].Sub(t.Stages[i])
	}
	return out
}

// Device is a simulated multi-channel SSD hosting named files.
type Device struct {
	cfg   Config
	cache PageCache // optional buffer pool; see AttachCache

	mu         sync.Mutex
	files      map[string]*File
	nextFileID uint32
	stats      Stats
	failAfter  int64 // remaining ops before injected failures; -1 = off
	failErr    error

	// Transient fault injection: opCount numbers every attempt since
	// arming; transientAt scripts exact attempt indices that fail, and
	// transientProb fails each attempt independently with probability p.
	opCount       int64
	transientAt   map[int64]bool
	transientProb float64
	transientRNG  uint64

	retryRNG uint64 // jitter PRNG state, distinct from fault injection

	// Corruption injection (see integrity.go): corruptOps numbers every
	// physical page read of files matching corruptOnly since arming;
	// corruptAt scripts exact reads, corruptProb damages each matching
	// read independently. corruptArmed caches "any of this is on" so the
	// disarmed hot path costs one atomic load.
	corruptOps   int64
	corruptAt    map[int64]bool
	corruptProb  float64
	corruptRNG   uint64
	corruptOnly  string
	corruptTrack bool
	corruptArmed atomic.Bool

	// Capacity governance (see capacity.go): usedPages counts allocated
	// pages across live files; spaceOps numbers every growth attempt since
	// no-space injection was armed; noSpaceArmed caches "quota or
	// injection on" so ungoverned writes pay one atomic load.
	usedPages    int64
	spaceOps     int64
	noSpaceAt    map[int64]bool
	noSpaceProb  float64
	noSpaceRNG   uint64
	noSpaceArmed atomic.Bool

	reclaimMu     sync.Mutex
	reclaimers    map[int]func()
	nextReclaimID int

	// runCtx, when set, aborts retry backoff on cancellation (see
	// SetRunContext) so a deadline is not overshot by the retry budget.
	runCtx atomic.Pointer[runCtxBox]

	// stageTag packs the current pipeline stage and vertex interval (see
	// SetStage). It is device-global: the engine's superstep loop is
	// phase-scoped on one goroutine, so engine IO — including worker sends
	// during vertex processing — inherits the right stage; the only
	// background issuer, the prefetcher, charges StagePrefetch explicitly
	// (WarmPages) instead of touching the tag.
	stageTag atomic.Uint64

	// ivPages accumulates pages moved (read+written) per tagged interval,
	// for straggler-skew attribution. Guarded by mu; nil until the first
	// interval-tagged charge.
	ivPages map[int]uint64
}

// stageAmbient is the internal sentinel for "resolve the stage from the
// device's current tag" on charge paths; explicit stages bypass the tag.
const stageAmbient = obsv.Stage(0xFF)

// packStage packs a stage and interval into one atomic word. Intervals are
// stored +1 so the zero word reads back as (StageOther, -1).
func packStage(s obsv.Stage, iv int) uint64 {
	return uint64(s) | uint64(uint32(iv+1))<<8
}

func unpackStage(w uint64) (obsv.Stage, int) {
	return obsv.Stage(w & 0xFF), int(uint32(w>>8)) - 1
}

// SetStage tags subsequent device IO with the issuing pipeline stage and
// vertex interval (-1 = no interval), returning the previous tag so a
// scoped section can restore it:
//
//	prevS, prevIv := dev.SetStage(obsv.StageCheckpoint, -1)
//	defer dev.SetStage(prevS, prevIv)
//
// The tag is advisory attribution state: it never changes what IO costs,
// only which Stats.Stages row it lands in.
func (d *Device) SetStage(s obsv.Stage, iv int) (obsv.Stage, int) {
	return unpackStage(d.stageTag.Swap(packStage(s, iv)))
}

// StageTag returns the device's current stage tag. Out-of-range stages
// (never produced by SetStage with a defined constant) read back as
// StageOther so attribution arrays cannot be indexed out of bounds.
func (d *Device) StageTag() (obsv.Stage, int) {
	st, iv := unpackStage(d.stageTag.Load())
	if int(st) >= obsv.NumStages {
		st = obsv.StageOther
	}
	return st, iv
}

// IntervalIO returns a copy of the cumulative pages moved (read+written)
// per tagged vertex interval. Engines snapshot it around a superstep and
// subtract to find stragglers.
func (d *Device) IntervalIO() map[int]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]uint64, len(d.ivPages))
	for iv, n := range d.ivPages {
		out[iv] = n
	}
	return out
}

// PageCache is the buffer-pool interface the device consults on reads and
// keeps coherent on writes. Pages are identified by the owning file's
// device-assigned ID plus the page index, so recycled file names cannot
// alias stale cached data. internal/pagecache provides the implementation;
// the interface lives here so ssd does not import it.
type PageCache interface {
	// Get copies the cached page into dst (when non-nil) and reports
	// whether it was resident.
	Get(fid uint32, page int, dst []byte) bool
	// Put inserts a page copy. Prefetch inserts are subject to
	// backpressure and may be refused; the return reports residency.
	Put(fid uint32, page int, data []byte, prefetch bool) bool
	// Contains reports residency without counting a hit or miss.
	Contains(fid uint32, page int) bool
	// Write updates the cached copy of a page if resident (write-through
	// coherence); it never populates the cache.
	Write(fid uint32, page int, data []byte)
	// Pin marks a resident page non-evictable; Unpin releases one pin.
	Pin(fid uint32, page int) bool
	Unpin(fid uint32, page int)
	// InvalidateFile drops every cached page of a file.
	InvalidateFile(fid uint32)
}

// AttachCache installs a page cache in front of the device. Cached reads
// are served from memory and charge nothing to the virtual storage clock —
// that is the point. Must be called before any IO is issued; a nil cache
// leaves the device uncached (the default, matching the paper's model).
func (d *Device) AttachCache(c PageCache) { d.cache = c }

// Cache returns the attached page cache, or nil.
func (d *Device) Cache() PageCache { return d.cache }

// ErrInjected is the default error produced by FailAfter. It models a
// permanent fault: once armed, every subsequent operation fails and no
// amount of retrying helps.
var ErrInjected = errors.New("ssd: injected device failure")

// ErrTransient is the error produced by transient fault injection
// (FailTransientAt, FailTransientProb). It models the recoverable
// read/write errors real flash arrays return under load: a retry of the
// same operation is a fresh attempt and may succeed. The device's retry
// policy absorbs transient faults invisibly unless the budget runs out.
var ErrTransient = errors.New("ssd: transient device error")

// ErrRetriesExhausted wraps ErrTransient when an operation kept failing
// transiently past the retry budget. errors.Is reports true for both
// ErrRetriesExhausted and ErrTransient on such errors.
var ErrRetriesExhausted = errors.New("ssd: transient-retry budget exhausted")

// FailAfter arms fault injection: the next n page operations (reads,
// writes, appends) succeed, then every subsequent operation fails with
// err (ErrInjected when nil). Pass a negative n to disarm. Used by the
// failure-injection tests to verify engines propagate device errors
// instead of panicking or corrupting results.
func (d *Device) FailAfter(n int64, err error) {
	if err == nil {
		err = ErrInjected
	}
	d.mu.Lock()
	if n < 0 {
		d.failAfter = -1
		d.failErr = nil
	} else {
		d.failAfter = n
		d.failErr = err
	}
	d.mu.Unlock()
}

// FailTransientAt arms scripted transient faults: attempt number op
// (0-based, counted across all page operations from this call on,
// including retry attempts) fails with ErrTransient; all other attempts
// succeed. Scripting k consecutive indices makes one logical operation
// fail k times in a row, which is how tests drive the retry budget dry.
// Calling with no arguments disarms scripted transients.
func (d *Device) FailTransientAt(ops ...int64) {
	d.mu.Lock()
	d.opCount = 0
	if len(ops) == 0 {
		d.transientAt = nil
	} else {
		d.transientAt = make(map[int64]bool, len(ops))
		for _, op := range ops {
			d.transientAt[op] = true
		}
	}
	d.mu.Unlock()
}

// FailTransientProb arms probabilistic transient faults: every attempt
// independently fails with probability p, drawn from a deterministic PRNG
// seeded by seed. p <= 0 disarms. Retried attempts redraw, so with the
// default retry policy a fault rate p surfaces to callers only with
// probability p^(1+MaxRetries).
func (d *Device) FailTransientProb(p float64, seed uint64) {
	d.mu.Lock()
	if p <= 0 {
		d.transientProb = 0
	} else {
		d.transientProb = p
		if seed == 0 {
			seed = 1
		}
		d.transientRNG = seed
	}
	d.mu.Unlock()
}

// splitmix64 advances the PRNG state and returns the next draw.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// faultCheck consumes one attempt credit; it returns the armed transient
// or permanent error for this attempt, transient faults first (a device
// that is dying permanently reports the permanent error).
func (d *Device) faultCheck() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failErr != nil {
		if d.failAfter > 0 {
			d.failAfter--
		} else {
			return d.failErr
		}
	}
	op := d.opCount
	d.opCount++
	if d.transientAt != nil && d.transientAt[op] {
		d.stats.TransientFaults++
		return ErrTransient
	}
	if d.transientProb > 0 {
		draw := float64(splitmix64(&d.transientRNG)>>11) / float64(1<<53)
		if draw < d.transientProb {
			d.stats.TransientFaults++
			return ErrTransient
		}
	}
	return nil
}

// faultCheckScoped is faultCheck with the transient-fault count mirrored
// into the issuing scope.
func (d *Device) faultCheckScoped(sc *IOScope) error {
	err := d.faultCheck()
	if err != nil && sc != nil && errors.Is(err, ErrTransient) {
		sc.mu.Lock()
		sc.stats.TransientFaults++
		sc.mu.Unlock()
	}
	return err
}

// opCheck is the fault gate on every page operation: it consumes attempt
// credits and absorbs transient faults by retrying with exponential
// backoff and jitter, charging the waits to the virtual storage clock.
// Permanent faults and exhausted budgets surface to the caller. The scope
// (nil = device-global) selects whose run context aborts the retry
// schedule and whose counters mirror the retry costs.
func (d *Device) opCheck(sc *IOScope) error {
	err := d.faultCheckScoped(sc)
	if err == nil || !errors.Is(err, ErrTransient) {
		return err
	}
	pol := d.cfg.Retry
	backoff := pol.BaseBackoff
	for attempt := 1; attempt <= pol.MaxRetries; attempt++ {
		// A canceled run context aborts the schedule instead of burning the
		// remaining budget, so deadlines are not overshot by retries.
		if cerr := d.runCtxErrFor(sc); cerr != nil {
			return fmt.Errorf("ssd: retry abandoned after %d attempts: %w", attempt, cerr)
		}
		// Jittered delay in [backoff/2, backoff), deterministic per device.
		d.sleepRetry(backoff, sc)

		err = d.faultCheckScoped(sc)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrTransient) {
			return err
		}
		if backoff < pol.MaxBackoff {
			backoff *= 2
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
	}
	d.mu.Lock()
	d.stats.RetriesExhausted++
	d.mu.Unlock()
	if sc != nil {
		sc.mu.Lock()
		sc.stats.RetriesExhausted++
		sc.mu.Unlock()
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, 1+pol.MaxRetries, err)
}

// ErrNotExist is returned when opening or removing a file that does not
// exist on the device.
var ErrNotExist = errors.New("ssd: file does not exist")

// ErrExist is returned when creating a file that already exists.
var ErrExist = errors.New("ssd: file already exists")

// Open creates a Device with the given configuration. A disk-backed
// device (Dir set) adopts the files already present in the directory, so
// graphs built by an earlier process can be reopened (see csr.Open).
func Open(cfg Config) (*Device, error) {
	cfg = cfg.withDefaults()
	d := &Device{cfg: cfg, files: make(map[string]*File), retryRNG: cfg.Retry.JitterSeed}
	d.noSpaceArmed.Store(cfg.Capacity > 0)
	if cfg.Dir != "" {
		if err := d.adoptDir(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// adoptDir registers every regular file under the backing directory.
func (d *Device) adoptDir() error {
	root := d.cfg.Dir
	if _, err := os.Stat(root); os.IsNotExist(err) {
		return nil
	}
	return filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if isSidecar(name) {
			return nil // checksum sidecars are store metadata, not device files
		}
		st, err := newDiskStore(root, name, d.cfg.PageSize)
		if err != nil {
			return err
		}
		d.nextFileID++
		f := &File{dev: d, id: d.nextFileID, name: name, chanBase: nameHash(name), s: &fileState{store: st}}
		// Without external metadata the best logical-size guess is the
		// allocated extent; csr.Open overrides it from its meta file.
		f.s.size = int64(st.numPages()) * int64(d.cfg.PageSize)
		d.usedPages += int64(st.numPages())
		d.files[name] = f
		return nil
	})
}

// MustOpen is Open that panics on error; convenient in tests and examples.
func MustOpen(cfg Config) *Device {
	d, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// PageSize returns the device page size in bytes.
func (d *Device) PageSize() int { return d.cfg.PageSize }

// Channels returns the number of flash channels.
func (d *Device) Channels() int { return d.cfg.Channels }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes all device counters, including the per-stage and
// per-interval attribution.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.ivPages = nil
}

// Create creates a new empty file. It fails if the name is taken.
func (d *Device) Create(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExist, name)
	}
	st, err := d.newStore(name)
	if err != nil {
		return nil, err
	}
	d.nextFileID++
	f := &File{dev: d, id: d.nextFileID, name: name, chanBase: nameHash(name), s: &fileState{store: st}}
	d.files[name] = f
	d.stats.FilesCreated++
	return f, nil
}

// OpenFile returns an existing file by name.
func (d *Device) OpenFile(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return f, nil
}

// OpenOrCreate returns the named file, creating it if necessary.
func (d *Device) OpenOrCreate(name string) (*File, error) {
	d.mu.Lock()
	if f, ok := d.files[name]; ok {
		d.mu.Unlock()
		return f, nil
	}
	d.mu.Unlock()
	return d.Create(name)
}

// Remove deletes a file and releases its pages. The store is closed
// outside the device lock (file locks are never acquired under it), so a
// reclaimer invoked mid-write can remove stale files without deadlocking.
func (d *Device) Remove(name string) error {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	delete(d.files, name)
	d.stats.FilesRemoved++
	d.mu.Unlock()
	if d.cache != nil {
		d.cache.InvalidateFile(f.id)
	}
	f.s.mu.Lock()
	np := f.s.store.numPages()
	err := f.s.store.close()
	f.s.mu.Unlock()
	d.freePages(np)
	return err
}

// RemovePrefix removes every file whose name starts with prefix and
// returns the number removed. Serving runs namespace their scratch files
// under a per-query prefix and sweep them with one call when the query
// finishes or is shed; removal errors after the first are dropped in
// favor of removing as much as possible.
func (d *Device) RemovePrefix(prefix string) (int, error) {
	var firstErr error
	n := 0
	for _, name := range d.ListFiles() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if err := d.Remove(name); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n++
	}
	return n, firstErr
}

// Exists reports whether a file with the given name exists.
func (d *Device) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

// ListFiles returns the names of all files on the device, sorted.
func (d *Device) ListFiles() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (d *Device) newStore(name string) (store, error) {
	if d.cfg.Dir != "" {
		return newDiskStore(d.cfg.Dir, name, d.cfg.PageSize)
	}
	return newMemStore(d.cfg.PageSize), nil
}

// FileStats is the per-file IO counter set.
type FileStats struct {
	PagesRead    uint64
	PagesWritten uint64
	CorruptPages uint64 // checksum failures attributed to this file
}

// StatsByFile returns per-file page counters, keyed by file name. Useful
// for attributing traffic to graph data versus logs versus values, and
// corruption to the file it struck.
func (d *Device) StatsByFile() map[string]FileStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]FileStats, len(d.files))
	for name, f := range d.files {
		out[name] = FileStats{
			PagesRead:    f.s.pagesRead.Load(),
			PagesWritten: f.s.pagesWritten.Load(),
			CorruptPages: f.s.corrupt.Load(),
		}
	}
	return out
}

// addReadBatch accumulates one read-batch charge into a counter set; the
// device's global stats and the issuing scope's mirror share this code so
// they cannot drift.
func (s *Stats) addReadBatch(npages, maxOnChan, pageSize, channels int, lat time.Duration, st obsv.Stage) {
	s.PagesRead += uint64(npages)
	s.BytesRead += uint64(npages) * uint64(pageSize)
	s.BatchReads++
	s.ReadTime += lat
	s.ReadBatchPages.Observe(uint64(npages))
	s.ReadImbalance.Observe(uint64(maxOnChan - idealDepth(npages, channels)))
	s.ReadLatencyUS.Observe(uint64(lat / time.Microsecond))
	sst := &s.Stages[st]
	sst.PagesRead += uint64(npages)
	sst.Time += lat
}

func (s *Stats) addWriteBatch(npages, maxOnChan, pageSize, channels int, lat time.Duration, st obsv.Stage) {
	s.PagesWritten += uint64(npages)
	s.BytesWritten += uint64(npages) * uint64(pageSize)
	s.BatchWrites++
	s.WriteTime += lat
	s.WriteBatchPages.Observe(uint64(npages))
	s.WriteImbalance.Observe(uint64(maxOnChan - idealDepth(npages, channels)))
	s.WriteLatencyUS.Observe(uint64(lat / time.Microsecond))
	sst := &s.Stages[st]
	sst.PagesWritten += uint64(npages)
	sst.Time += lat
}

// chargeRead charges a batch of page reads to the virtual clock,
// attributed to the issuing scope's current stage tag (nil scope = the
// device-global tag). The batch completes when the busiest channel drains
// its queue of maxOnChan pages.
func (d *Device) chargeRead(npages int, maxOnChan int, sc *IOScope) {
	d.chargeReadStage(npages, maxOnChan, stageAmbient, sc)
}

// chargeReadStage is chargeRead with an explicit stage; stageAmbient
// resolves the stage (and interval) from the issuing scope's tag. Charges
// always land in the device-global stats; a non-nil scope additionally
// mirrors them into its private counters for per-run accounting.
func (d *Device) chargeReadStage(npages int, maxOnChan int, st obsv.Stage, sc *IOScope) {
	iv := -1
	if st == stageAmbient {
		st, iv = d.stageOf(sc)
	}
	lat := time.Duration(maxOnChan) * d.cfg.PageReadLatency
	d.mu.Lock()
	d.stats.addReadBatch(npages, maxOnChan, d.cfg.PageSize, d.cfg.Channels, lat, st)
	if iv >= 0 {
		if d.ivPages == nil {
			d.ivPages = make(map[int]uint64)
		}
		d.ivPages[iv] += uint64(npages)
	}
	d.mu.Unlock()
	if sc != nil {
		sc.mu.Lock()
		sc.stats.addReadBatch(npages, maxOnChan, d.cfg.PageSize, d.cfg.Channels, lat, st)
		sc.noteIvLocked(iv, npages)
		sc.mu.Unlock()
	}
}

func (d *Device) chargeWrite(npages int, maxOnChan int, sc *IOScope) {
	st, iv := d.stageOf(sc)
	lat := time.Duration(maxOnChan) * d.cfg.PageWriteLatency
	d.mu.Lock()
	d.stats.addWriteBatch(npages, maxOnChan, d.cfg.PageSize, d.cfg.Channels, lat, st)
	if iv >= 0 {
		if d.ivPages == nil {
			d.ivPages = make(map[int]uint64)
		}
		d.ivPages[iv] += uint64(npages)
	}
	d.mu.Unlock()
	if sc != nil {
		sc.mu.Lock()
		sc.stats.addWriteBatch(npages, maxOnChan, d.cfg.PageSize, d.cfg.Channels, lat, st)
		sc.noteIvLocked(iv, npages)
		sc.mu.Unlock()
	}
}

// noteCache attributes page-cache consult outcomes to a stage;
// stageAmbient resolves from the issuing scope's tag. Called at the
// device's cache consult points so per-stage hit/miss counts line up with
// the cache's own counters (see pagecache.Stats).
func (d *Device) noteCache(hits, misses int, st obsv.Stage, sc *IOScope) {
	if hits == 0 && misses == 0 {
		return
	}
	if st == stageAmbient {
		st, _ = d.stageOf(sc)
	}
	d.mu.Lock()
	d.stats.Stages[st].CacheHits += uint64(hits)
	d.stats.Stages[st].CacheMisses += uint64(misses)
	d.mu.Unlock()
	if sc != nil {
		sc.mu.Lock()
		sc.stats.Stages[st].CacheHits += uint64(hits)
		sc.stats.Stages[st].CacheMisses += uint64(misses)
		sc.mu.Unlock()
	}
}

// idealDepth is the busiest-channel depth of a perfectly striped batch:
// ceil(npages/channels). The imbalance histograms record how far the
// actual placement falls short of that bound.
func idealDepth(npages, channels int) int {
	return (npages + channels - 1) / channels
}

// maxPerChannel computes the depth of the busiest channel for a set of
// page indices belonging to a file whose stripe base is chanBase.
func maxPerChannel(chanBase uint32, channels int, pages []int) int {
	if len(pages) == 0 {
		return 0
	}
	if len(pages) == 1 {
		return 1
	}
	counts := make([]int, channels)
	maxc := 0
	for _, p := range pages {
		c := int((chanBase + uint32(p)) % uint32(channels))
		counts[c]++
		if counts[c] > maxc {
			maxc = counts[c]
		}
	}
	return maxc
}

// maxPerChannelRange is maxPerChannel for the contiguous range
// [start, start+n). Contiguous pages stripe round-robin, so the busiest
// channel holds ceil(n/channels) pages.
func maxPerChannelRange(n, channels int) int {
	if n <= 0 {
		return 0
	}
	return (n + channels - 1) / channels
}

func nameHash(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}
