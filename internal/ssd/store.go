package ssd

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// store is the backing for a file's pages. Implementations are not
// concurrency-safe; File serializes access.
//
// Alongside page data every store keeps a per-page CRC32C sidecar region,
// written by setCRC on each page program and consulted by getCRC on each
// read. The sidecar is separate from the page payload so page geometry and
// existing offsets are unchanged; pages adopted from files written before
// checksumming existed simply have no recorded CRC and read unverified.
type store interface {
	readPage(idx int, buf []byte) error
	writePage(idx int, data []byte) error // idx == numPages() extends
	setCRC(idx int, crc uint32) error
	getCRC(idx int) (uint32, bool)
	numPages() int
	truncate(pages int) error
	close() error
}

// crcSidecarSuffix names the on-disk checksum region of a disk-backed
// file. Sidecar files are store metadata, not device files: adoptDir
// skips them and they are invisible to ListFiles.
const crcSidecarSuffix = ".mlvc-crc"

// crcEntrySize is the sidecar record: little-endian uint32 CRC32C plus a
// uint32 valid marker (1 = recorded), so a zero CRC is distinguishable
// from a never-written slot in a sparse or pre-extended sidecar.
const crcEntrySize = 8

// memStore keeps pages in RAM.
type memStore struct {
	pageSize int
	pages    [][]byte
	crcs     []uint32
	known    []bool
}

func newMemStore(pageSize int) *memStore {
	return &memStore{pageSize: pageSize}
}

func (m *memStore) readPage(idx int, buf []byte) error {
	copy(buf, m.pages[idx])
	return nil
}

func (m *memStore) writePage(idx int, data []byte) error {
	if idx == len(m.pages) {
		p := make([]byte, m.pageSize)
		copy(p, data)
		m.pages = append(m.pages, p)
		return nil
	}
	copy(m.pages[idx], data)
	return nil
}

func (m *memStore) setCRC(idx int, crc uint32) error {
	for len(m.crcs) <= idx {
		m.crcs = append(m.crcs, 0)
		m.known = append(m.known, false)
	}
	m.crcs[idx] = crc
	m.known[idx] = true
	return nil
}

func (m *memStore) getCRC(idx int) (uint32, bool) {
	if idx < 0 || idx >= len(m.crcs) || !m.known[idx] {
		return 0, false
	}
	return m.crcs[idx], true
}

func (m *memStore) numPages() int { return len(m.pages) }

func (m *memStore) truncate(pages int) error {
	if pages < len(m.pages) {
		m.pages = m.pages[:pages]
	}
	if pages < len(m.crcs) {
		m.crcs = m.crcs[:pages]
		m.known = m.known[:pages]
	}
	return nil
}

func (m *memStore) close() error {
	m.pages = nil
	m.crcs = nil
	m.known = nil
	return nil
}

// diskStore keeps pages in a real file, for the CLI tools. Checksums
// persist in a sidecar file next to the backing file so a later process
// (resume, scrub) can verify pages it did not write.
type diskStore struct {
	pageSize int
	f        *os.File
	sc       *os.File // checksum sidecar
	npages   int
	crcs     []uint32
	known    []bool
}

func newDiskStore(dir, name string, pageSize int) (*diskStore, error) {
	path := filepath.Join(dir, sanitize(name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("ssd: mkdir for %q: %w", name, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ssd: open backing for %q: %w", name, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	sc, err := os.OpenFile(path+crcSidecarSuffix, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ssd: open checksum sidecar for %q: %w", name, err)
	}
	d := &diskStore{pageSize: pageSize, f: f, sc: sc, npages: int(st.Size()) / pageSize}
	if err := d.loadSidecar(); err != nil {
		f.Close()
		sc.Close()
		return nil, fmt.Errorf("ssd: load checksum sidecar for %q: %w", name, err)
	}
	return d, nil
}

// loadSidecar reads the whole sidecar into memory. A short or missing
// sidecar (older process, partial write) leaves the tail unverified
// rather than failing the open.
func (d *diskStore) loadSidecar() error {
	st, err := d.sc.Stat()
	if err != nil {
		return err
	}
	n := int(st.Size()) / crcEntrySize
	if n == 0 {
		return nil
	}
	raw := make([]byte, n*crcEntrySize)
	if _, err := d.sc.ReadAt(raw, 0); err != nil {
		return err
	}
	d.crcs = make([]uint32, n)
	d.known = make([]bool, n)
	for i := 0; i < n; i++ {
		d.crcs[i] = binary.LittleEndian.Uint32(raw[i*crcEntrySize:])
		d.known[i] = binary.LittleEndian.Uint32(raw[i*crcEntrySize+4:]) == 1
	}
	return nil
}

func (d *diskStore) readPage(idx int, buf []byte) error {
	_, err := d.f.ReadAt(buf, int64(idx)*int64(d.pageSize))
	return err
}

func (d *diskStore) writePage(idx int, data []byte) error {
	if _, err := d.f.WriteAt(data, int64(idx)*int64(d.pageSize)); err != nil {
		return err
	}
	if idx >= d.npages {
		d.npages = idx + 1
	}
	return nil
}

func (d *diskStore) setCRC(idx int, crc uint32) error {
	for len(d.crcs) <= idx {
		d.crcs = append(d.crcs, 0)
		d.known = append(d.known, false)
	}
	d.crcs[idx] = crc
	d.known[idx] = true
	var rec [crcEntrySize]byte
	binary.LittleEndian.PutUint32(rec[:], crc)
	binary.LittleEndian.PutUint32(rec[4:], 1)
	_, err := d.sc.WriteAt(rec[:], int64(idx)*crcEntrySize)
	return err
}

func (d *diskStore) getCRC(idx int) (uint32, bool) {
	if idx < 0 || idx >= len(d.crcs) || !d.known[idx] {
		return 0, false
	}
	return d.crcs[idx], true
}

func (d *diskStore) numPages() int { return d.npages }

func (d *diskStore) truncate(pages int) error {
	if err := d.f.Truncate(int64(pages) * int64(d.pageSize)); err != nil {
		return err
	}
	if pages < d.npages {
		d.npages = pages
	}
	if pages < len(d.crcs) {
		d.crcs = d.crcs[:pages]
		d.known = d.known[:pages]
		if err := d.sc.Truncate(int64(pages) * crcEntrySize); err != nil {
			return err
		}
	}
	return nil
}

func (d *diskStore) close() error {
	err := d.f.Close()
	if cerr := d.sc.Close(); err == nil {
		err = cerr
	}
	return err
}

// sanitize maps a device file name to a filesystem-safe relative path.
func sanitize(name string) string {
	r := strings.NewReplacer("..", "_", ":", "_", "\\", "_")
	return r.Replace(name)
}

// isSidecar reports whether a directory entry is store metadata rather
// than a device file.
func isSidecar(name string) bool {
	return strings.HasSuffix(name, crcSidecarSuffix)
}
