package ssd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// store is the backing for a file's pages. Implementations are not
// concurrency-safe; File serializes access.
type store interface {
	readPage(idx int, buf []byte) error
	writePage(idx int, data []byte) error // idx == numPages() extends
	numPages() int
	truncate(pages int) error
	close() error
}

// memStore keeps pages in RAM.
type memStore struct {
	pageSize int
	pages    [][]byte
}

func newMemStore(pageSize int) *memStore {
	return &memStore{pageSize: pageSize}
}

func (m *memStore) readPage(idx int, buf []byte) error {
	copy(buf, m.pages[idx])
	return nil
}

func (m *memStore) writePage(idx int, data []byte) error {
	if idx == len(m.pages) {
		p := make([]byte, m.pageSize)
		copy(p, data)
		m.pages = append(m.pages, p)
		return nil
	}
	copy(m.pages[idx], data)
	return nil
}

func (m *memStore) numPages() int { return len(m.pages) }

func (m *memStore) truncate(pages int) error {
	if pages < len(m.pages) {
		m.pages = m.pages[:pages]
	}
	return nil
}

func (m *memStore) close() error {
	m.pages = nil
	return nil
}

// diskStore keeps pages in a real file, for the CLI tools.
type diskStore struct {
	pageSize int
	f        *os.File
	npages   int
}

func newDiskStore(dir, name string, pageSize int) (*diskStore, error) {
	path := filepath.Join(dir, sanitize(name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("ssd: mkdir for %q: %w", name, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ssd: open backing for %q: %w", name, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &diskStore{pageSize: pageSize, f: f, npages: int(st.Size()) / pageSize}, nil
}

func (d *diskStore) readPage(idx int, buf []byte) error {
	_, err := d.f.ReadAt(buf, int64(idx)*int64(d.pageSize))
	return err
}

func (d *diskStore) writePage(idx int, data []byte) error {
	if _, err := d.f.WriteAt(data, int64(idx)*int64(d.pageSize)); err != nil {
		return err
	}
	if idx >= d.npages {
		d.npages = idx + 1
	}
	return nil
}

func (d *diskStore) numPages() int { return d.npages }

func (d *diskStore) truncate(pages int) error {
	if err := d.f.Truncate(int64(pages) * int64(d.pageSize)); err != nil {
		return err
	}
	if pages < d.npages {
		d.npages = pages
	}
	return nil
}

func (d *diskStore) close() error { return d.f.Close() }

// sanitize maps a device file name to a filesystem-safe relative path.
func sanitize(name string) string {
	r := strings.NewReplacer("..", "_", ":", "_", "\\", "_")
	return r.Replace(name)
}
