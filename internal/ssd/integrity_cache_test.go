package ssd_test

// Integrity × page-cache interaction: a corrupt page must never be
// laundered into a clean cache hit, and prefetch must not hide damage
// from the demand path where recovery policy lives.

import (
	"bytes"
	"errors"
	"testing"

	"multilogvc/internal/ssd"
)

func TestCorruptPageNeverCached(t *testing.T) {
	dev, c := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 4)
	if err := dev.CorruptStoredPage("data", 1); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, ps)
	if err := f.ReadPage(1, buf); !errors.Is(err, ssd.ErrCorruptPage) {
		t.Fatalf("miss-fill of corrupt page err = %v, want ErrCorruptPage", err)
	}
	if c.Contains(f.ID(), 1) {
		t.Fatal("corrupt page entered the cache")
	}
	// The second read must re-detect, not serve a laundered hit.
	if err := f.ReadPage(1, buf); !errors.Is(err, ssd.ErrCorruptPage) {
		t.Fatalf("repeat read err = %v, want ErrCorruptPage", err)
	}
}

func TestWarmPagesSkipsCorrupt(t *testing.T) {
	dev, c := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 4)
	if err := dev.CorruptStoredPage("data", 2); err != nil {
		t.Fatal(err)
	}

	warmed, _, err := f.WarmPages([]int{0, 1, 2, 3}, false)
	if err != nil {
		t.Fatalf("warm with one corrupt page errored: %v", err)
	}
	for _, p := range warmed {
		if p == 2 {
			t.Fatal("corrupt page reported as warmed")
		}
	}
	if c.Contains(f.ID(), 2) {
		t.Fatal("corrupt page cached by prefetch")
	}
	if !c.Contains(f.ID(), 0) || !c.Contains(f.ID(), 3) {
		t.Fatal("healthy pages not warmed past the corrupt one")
	}
	// Demand read still detects the damage.
	buf := make([]byte, ps)
	if err := f.ReadPage(2, buf); !errors.Is(err, ssd.ErrCorruptPage) {
		t.Fatalf("demand read err = %v, want ErrCorruptPage", err)
	}
}

// TestCachedCopyOutlivesFlashDamage documents the DRAM-outlives-flash
// semantics: a page cached before its stored copy is damaged keeps
// serving clean data from the cache, while an offline scrub — which reads
// the store directly — still finds the damage.
func TestCachedCopyOutlivesFlashDamage(t *testing.T) {
	dev, c := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 4)

	buf := make([]byte, ps)
	if err := f.ReadPage(1, buf); err != nil { // cache it clean
		t.Fatal(err)
	}
	if err := dev.CorruptStoredPage("data", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(1, buf); err != nil {
		t.Fatalf("cached read after flash damage errored: %v", err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{1}, ps)) {
		t.Fatal("cached read returned damaged bytes")
	}

	res, err := dev.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].OK() {
		t.Fatalf("scrub missed cached-over damage: %+v", res)
	}
	_ = c
}
