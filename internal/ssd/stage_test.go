package ssd_test

// Stage-attribution tests: every device charge lands in exactly one
// Stats.Stages row, per-stage counters sum to the global totals, and the
// cache consult points attribute hits/misses to the issuing stage.

import (
	"testing"

	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
)

// sumStages folds the per-stage rows back into one, for comparing against
// the global counters.
func sumStages(st ssd.Stats) ssd.StageStats {
	var out ssd.StageStats
	for _, s := range st.Stages {
		out.PagesRead += s.PagesRead
		out.PagesWritten += s.PagesWritten
		out.Time += s.Time
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
	}
	return out
}

func TestStageAttributionUncached(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: ps, Channels: 4})
	f := fillFile(t, dev, "data", 8)
	dev.ResetStats()

	buf := make([]byte, ps)
	// Untagged IO lands in StageOther.
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}

	// A tagged section attributes to its stage and interval.
	prevS, prevIv := dev.SetStage(obsv.StageSortGroup, 2)
	if prevS != obsv.StageOther || prevIv != -1 {
		t.Fatalf("initial tag = (%v, %d), want (other, -1)", prevS, prevIv)
	}
	if err := f.ReadPages([]int{1, 2, 3}, make([]byte, 3*ps)); err != nil {
		t.Fatal(err)
	}
	dev.SetStage(obsv.StageVertex, 2)
	if err := f.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	dev.SetStage(prevS, prevIv)

	st := dev.Stats()
	if got := st.Stages[obsv.StageOther]; got.PagesRead != 1 {
		t.Fatalf("other stage = %+v, want 1 page read", got)
	}
	if got := st.Stages[obsv.StageSortGroup]; got.PagesRead != 3 || got.Time == 0 {
		t.Fatalf("sortgroup stage = %+v, want 3 pages read with time", got)
	}
	if got := st.Stages[obsv.StageVertex]; got.PagesWritten != 1 {
		t.Fatalf("vertex stage = %+v, want 1 page written", got)
	}

	// The invariant the report layer depends on: stage rows sum to the
	// global counters exactly.
	sum := sumStages(st)
	if sum.PagesRead != st.PagesRead || sum.PagesWritten != st.PagesWritten {
		t.Fatalf("stage sums %d/%d != global %d/%d",
			sum.PagesRead, sum.PagesWritten, st.PagesRead, st.PagesWritten)
	}
	if sum.Time != st.StorageTime() {
		t.Fatalf("stage time sum %v != storage time %v", sum.Time, st.StorageTime())
	}

	// Interval attribution: both tagged sections named interval 2.
	if io := dev.IntervalIO(); io[2] != 4 {
		t.Fatalf("IntervalIO = %v, want 4 pages on interval 2", io)
	}

	// After restore the tag reads back as the default.
	if s, iv := dev.StageTag(); s != obsv.StageOther || iv != -1 {
		t.Fatalf("restored tag = (%v, %d)", s, iv)
	}
}

func TestStageTimeSumsWithRetryBackoff(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: ps, Channels: 4})
	f := fillFile(t, dev, "data", 4)
	dev.ResetStats()

	dev.SetStage(obsv.StageRelog, -1)
	dev.FailTransientAt(0) // first attempt fails, retry succeeds
	if err := f.ReadPage(0, make([]byte, ps)); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.RetryBackoff == 0 {
		t.Fatal("no backoff charged — injection did not fire")
	}
	if got := st.Stages[obsv.StageRelog].Time; got != st.StorageTime() {
		t.Fatalf("relog stage time %v != storage time %v (backoff not attributed)", got, st.StorageTime())
	}
}

func TestStageCacheAttribution(t *testing.T) {
	dev, c := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 8)
	dev.ResetStats()

	dev.SetStage(obsv.StageVertex, 0)
	if err := f.ReadPages([]int{0, 1, 2}, make([]byte, 3*ps)); err != nil {
		t.Fatal(err) // 3 misses
	}
	if err := f.ReadPages([]int{1, 2, 3}, make([]byte, 3*ps)); err != nil {
		t.Fatal(err) // 2 hits, 1 miss
	}
	dev.SetStage(obsv.StageSortGroup, -1)
	buf := make([]byte, ps)
	if err := f.ReadPage(3, buf); err != nil {
		t.Fatal(err) // hit
	}
	if err := f.ReadPage(4, buf); err != nil {
		t.Fatal(err) // miss
	}
	dev.SetStage(obsv.StageOther, -1)

	st := dev.Stats()
	if v := st.Stages[obsv.StageVertex]; v.CacheHits != 2 || v.CacheMisses != 4 {
		t.Fatalf("vertex cache = %d hits / %d misses, want 2/4", v.CacheHits, v.CacheMisses)
	}
	if s := st.Stages[obsv.StageSortGroup]; s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("sortgroup cache = %d hits / %d misses, want 1/1", s.CacheHits, s.CacheMisses)
	}

	// Device-side stage counts agree with the cache's own counters.
	sum := sumStages(st)
	cs := c.Stats()
	if sum.CacheHits != cs.Hits || sum.CacheMisses != cs.Misses {
		t.Fatalf("stage cache sums %d/%d != cache stats %d/%d",
			sum.CacheHits, sum.CacheMisses, cs.Hits, cs.Misses)
	}
}

func TestStagePrefetchExplicit(t *testing.T) {
	dev, _ := newCachedDev(t, 16)
	f := fillFile(t, dev, "data", 8)
	dev.ResetStats()

	// Even with the engine mid-vertex-processing, warming attributes to
	// the prefetch stage — WarmPages runs on the prefetcher's goroutine.
	dev.SetStage(obsv.StageVertex, 3)
	if _, _, err := f.WarmPages([]int{5, 6}, false); err != nil {
		t.Fatal(err)
	}
	// A tagged read of the warmed pages: hits for the vertex stage.
	if err := f.ReadPages([]int{5, 6}, make([]byte, 2*ps)); err != nil {
		t.Fatal(err)
	}
	dev.SetStage(obsv.StageOther, -1)

	st := dev.Stats()
	if got := st.Stages[obsv.StagePrefetch]; got.PagesRead != 2 {
		t.Fatalf("prefetch stage = %+v, want 2 pages read", got)
	}
	if got := st.Stages[obsv.StageVertex]; got.PagesRead != 0 || got.CacheHits != 2 {
		t.Fatalf("vertex stage = %+v, want 0 pages read, 2 cache hits", got)
	}
	// Warm batches carry no interval tag.
	if io := dev.IntervalIO(); io[3] != 0 {
		t.Fatalf("IntervalIO = %v, want no interval-3 traffic", io)
	}
}
