package ssd

import (
	"hash/crc32"
	"sort"
)

// ScrubResult reports the integrity of one file's allocated pages.
type ScrubResult struct {
	File       string
	Pages      int   // allocated pages scanned
	Corrupt    []int // page indices whose checksum did not match
	Unverified int   // pages with no recorded checksum (pre-integrity data)
}

// OK reports whether the file scanned clean (unverified pages are not
// failures — they simply predate checksumming).
func (r ScrubResult) OK() bool { return len(r.Corrupt) == 0 }

// Scrub verifies every allocated page of every file against its recorded
// checksum and returns one result per file, sorted by name. It reads the
// stores directly: nothing is charged to the virtual clock, the page
// cache is bypassed (a cached copy can mask damaged flash — scrub's job
// is to find exactly that), and corruption injection is not consulted.
func (d *Device) Scrub() ([]ScrubResult, error) {
	d.mu.Lock()
	files := make([]*File, 0, len(d.files))
	for _, f := range d.files {
		files = append(files, f)
	}
	d.mu.Unlock()
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })

	out := make([]ScrubResult, 0, len(files))
	buf := make([]byte, d.cfg.PageSize)
	for _, f := range files {
		r := ScrubResult{File: f.name}
		f.s.mu.Lock()
		r.Pages = f.s.store.numPages()
		for p := 0; p < r.Pages; p++ {
			want, ok := f.s.store.getCRC(p)
			if !ok {
				r.Unverified++
				continue
			}
			if err := f.s.store.readPage(p, buf); err != nil {
				f.s.mu.Unlock()
				return out, err
			}
			if crc32.Checksum(buf, castagnoli) != want {
				r.Corrupt = append(r.Corrupt, p)
			}
		}
		f.s.mu.Unlock()
		out = append(out, r)
	}
	return out, nil
}
