package ssd

import (
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
)

// This file is the data-plane integrity layer: every page programmed
// through File records a CRC32C in the store's sidecar region, and every
// page that comes back from the store — demand reads, cache miss fills,
// prefetch fills — is verified against it before any caller sees the
// bytes. A mismatch surfaces as ErrCorruptPage and the page never enters
// the page cache, so a corrupt page cannot be laundered into a clean hit.
//
// Corruption injection models silent flash corruption: a hit flips a bit
// in the *stored* page (sticky, like a failed cell) while leaving the
// recorded checksum stale, so the damage is detected on this read and on
// every later read until the page is rewritten.

// ErrCorruptPage is returned when a page's content does not match its
// recorded CRC32C. It models silent data corruption: retrying does not
// help (the stored bytes are wrong), so it is classified separately from
// ErrTransient/ErrRetriesExhausted — consumers decide whether the page is
// redundant (rebuild it) or vital (roll back or fail).
var ErrCorruptPage = errors.New("ssd: page checksum mismatch")

// castagnoli is the CRC32C polynomial table, the same checksum real
// storage stacks (iSCSI, ext4 metadata, Btrfs) use for data integrity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FailCorruptAt arms scripted corruption: the op-th physical page read
// (0-based, counted from the most recent arming call across reads of
// files matching the CorruptOnly filter) returns a page with a flipped
// bit and a stale checksum. The flip is written back to the store, so
// the corruption is sticky. Calling with no arguments disarms scripting
// but keeps counting reads (see CorruptOps).
func (d *Device) FailCorruptAt(ops ...int64) {
	d.mu.Lock()
	d.corruptOps = 0
	if len(ops) == 0 {
		d.corruptAt = nil
	} else {
		d.corruptAt = make(map[int64]bool, len(ops))
		for _, op := range ops {
			d.corruptAt[op] = true
		}
	}
	d.updateCorruptArmed()
	d.mu.Unlock()
}

// FailCorruptProb arms probabilistic corruption: every physical page read
// of a matching file independently corrupts the page with probability p,
// drawn from a deterministic PRNG seeded by seed. p <= 0 disarms.
func (d *Device) FailCorruptProb(p float64, seed uint64) {
	d.mu.Lock()
	if p <= 0 {
		d.corruptProb = 0
	} else {
		d.corruptProb = p
		if seed == 0 {
			seed = 1
		}
		d.corruptRNG = seed
	}
	d.updateCorruptArmed()
	d.mu.Unlock()
}

// CorruptOnly restricts corruption injection — and the CorruptOps read
// counter — to files whose name contains substr ("" matches every file).
// Arming a filter alone (no FailCorruptAt/FailCorruptProb) makes the
// device count matching physical reads without corrupting anything, which
// lets a test measure a reference run and then script an exact read with
// FailCorruptAt.
func (d *Device) CorruptOnly(substr string) {
	d.mu.Lock()
	d.corruptOnly = substr
	d.corruptTrack = true
	d.corruptOps = 0
	d.updateCorruptArmed()
	d.mu.Unlock()
}

// CorruptOps returns the number of physical page reads of files matching
// the CorruptOnly filter since the last arming call.
func (d *Device) CorruptOps() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.corruptOps
}

// updateCorruptArmed caches whether corruptHit has any work to do, so the
// common disarmed case costs one atomic load per page read. Caller holds
// d.mu.
func (d *Device) updateCorruptArmed() {
	d.corruptArmed.Store(d.corruptAt != nil || d.corruptProb > 0 || d.corruptTrack)
}

// corruptHit consumes one read credit for a physical page read of the
// named file and reports whether this read should come back corrupted.
func (d *Device) corruptHit(name string) bool {
	if !d.corruptArmed.Load() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.corruptOnly != "" && !strings.Contains(name, d.corruptOnly) {
		return false
	}
	op := d.corruptOps
	d.corruptOps++
	if d.corruptAt != nil && d.corruptAt[op] {
		return true
	}
	if d.corruptProb > 0 {
		draw := float64(splitmix64(&d.corruptRNG)>>11) / float64(1<<53)
		return draw < d.corruptProb
	}
	return false
}

// readPageLocked is the integrity-checked physical read: store read,
// corruption injection, then CRC verification. Every physical page read
// in file.go and cache.go funnels through here. Caller holds f.s.mu.
func (f *File) readPageLocked(idx int, buf []byte) error {
	if err := f.s.store.readPage(idx, buf); err != nil {
		return err
	}
	d := f.dev
	if d.corruptHit(f.name) {
		// Sticky: flip a stored bit, leave the recorded CRC stale. The
		// damage survives cache invalidation and process restarts (on
		// disk-backed devices) until the page is rewritten.
		buf[len(buf)/2] ^= 0x40
		if err := f.s.store.writePage(idx, buf); err != nil {
			return err
		}
		d.mu.Lock()
		d.stats.CorruptionsInjected++
		d.mu.Unlock()
	}
	if d.cfg.NoVerify {
		return nil
	}
	want, ok := f.s.store.getCRC(idx)
	if !ok {
		return nil // adopted page with no recorded checksum: pass unverified
	}
	if crc32.Checksum(buf, castagnoli) != want {
		f.s.corrupt.Add(1)
		d.mu.Lock()
		d.stats.CorruptPages++
		d.mu.Unlock()
		return fmt.Errorf("%w: page %d of %q", ErrCorruptPage, idx, f.name)
	}
	return nil
}

// writePageLocked is the integrity-maintaining physical write: store
// write plus sidecar CRC update. Caller holds f.s.mu.
func (f *File) writePageLocked(idx int, data []byte) error {
	if err := f.s.store.writePage(idx, data); err != nil {
		return err
	}
	if f.dev.cfg.NoVerify {
		return nil
	}
	return f.s.store.setCRC(idx, crc32.Checksum(data, castagnoli))
}

// CorruptStoredPage flips one bit in the stored copy of the named file's
// page, leaving the recorded checksum stale — a direct way for tests and
// the cross-process CI smoke to plant corruption without arming the
// injection machinery. No stats are charged and the page cache is not
// touched (a cached copy still serves clean data until evicted, exactly
// like a DRAM-resident page outliving its flash cell).
func (d *Device) CorruptStoredPage(name string, page int) error {
	d.mu.Lock()
	f, ok := d.files[name]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	if page < 0 || page >= f.s.store.numPages() {
		return fmt.Errorf("%w: page %d of %q (%d pages)", ErrOutOfRange, page, name, f.s.store.numPages())
	}
	buf := make([]byte, d.cfg.PageSize)
	if err := f.s.store.readPage(page, buf); err != nil {
		return err
	}
	buf[len(buf)/2] ^= 0x40
	return f.s.store.writePage(page, buf)
}
