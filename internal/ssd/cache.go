package ssd

import (
	"errors"
	"fmt"

	"multilogvc/internal/obsv"
)

// This file holds the cache-aware read path and the prefetch entry points.
// With no cache attached none of this code runs; the uncached paths in
// file.go are byte-for-byte the original device model, which keeps the
// paper-faithful baselines comparable.

// readPagesCached serves a batch read through the attached cache: hits
// copy out of memory for free, and only the missing subset is read from
// the store and charged to the virtual clock — a batch that hits entirely
// costs zero device time, which is precisely the win a buffer pool buys.
// Missed pages enter the cache as demand (hot) pages. Hits and misses are
// attributed to the stage issuing the read (st; stageAmbient resolves the
// device's current tag), so per-stage cache counters identify which stage
// a miss stalled.
func (f *File) readPagesCached(pages []int, dst []byte, st obsv.Stage) error {
	ps := f.dev.cfg.PageSize
	c := f.dev.cache
	var miss []int   // page indices still needed from the store
	var missAt []int // their slot in dst
	for i, p := range pages {
		if !c.Get(f.id, p, dst[i*ps:(i+1)*ps]) {
			miss = append(miss, p)
			missAt = append(missAt, i)
		}
	}
	f.dev.noteCache(len(pages)-len(miss), len(miss), st, f.scope)
	if len(miss) == 0 {
		return nil
	}
	if err := f.dev.opCheck(f.scope); err != nil {
		return err
	}
	f.s.mu.Lock()
	np := f.s.store.numPages()
	for k, p := range miss {
		if p < 0 || p >= np {
			f.s.mu.Unlock()
			return fmt.Errorf("%w: page %d of %q (%d pages)", ErrOutOfRange, p, f.name, np)
		}
		i := missAt[k]
		if err := f.readPageLocked(p, dst[i*ps:(i+1)*ps]); err != nil {
			f.s.mu.Unlock()
			return err
		}
	}
	f.s.mu.Unlock()
	f.s.pagesRead.Add(uint64(len(miss)))
	f.dev.chargeReadStage(len(miss), maxPerChannel(f.chanBase, f.dev.cfg.Channels, miss), st, f.scope)
	for k, p := range miss {
		i := missAt[k]
		c.Put(f.id, p, dst[i*ps:(i+1)*ps], false)
	}
	return nil
}

// WarmPages fetches the listed pages into the cache as prefetched (cold)
// pages, optionally pinning them. It returns the pages it actually fetched
// and inserted, and — when pin is set — the subset it successfully pinned.
// The two can differ under concurrency: on a shared cache another run's
// demand traffic can evict a just-inserted page before the pin lands, and
// treating such a page as pinned would later release a pin belonging to
// whoever re-pinned the frame in between. Epoch bookkeeping must therefore
// track the pinned list, never the warmed list. Already-resident and
// out-of-range pages are skipped; an insert refused by backpressure stops
// the job, since a shard too hot for one page is too hot for the rest.
// Only fetched pages are charged to the virtual clock. It is a no-op
// without an attached cache.
func (f *File) WarmPages(pages []int, pin bool) (warmed, pinned []int, err error) {
	c := f.dev.cache
	if c == nil || len(pages) == 0 {
		return nil, nil, nil
	}
	buf := make([]byte, f.dev.cfg.PageSize)
	checked := false
	for _, p := range pages {
		if c.Contains(f.id, p) {
			continue
		}
		if !checked {
			// One fault credit per warm batch, matching the demand paths'
			// one credit per batch submission.
			if err := f.dev.opCheck(f.scope); err != nil {
				return warmed, pinned, err
			}
			checked = true
		}
		f.s.mu.Lock()
		if p < 0 || p >= f.s.store.numPages() {
			f.s.mu.Unlock()
			continue
		}
		err := f.readPageLocked(p, buf)
		f.s.mu.Unlock()
		if errors.Is(err, ErrCorruptPage) {
			// Never cache a corrupt page. Skip it and keep warming: the
			// demand read will re-detect it where the consumer's recovery
			// policy (heal, rollback) can act.
			continue
		}
		if err != nil {
			f.chargeWarm(warmed)
			return warmed, pinned, err
		}
		if !c.Put(f.id, p, buf, true) {
			break // backpressure: cache is hot or pinned solid
		}
		if pin && c.Pin(f.id, p) {
			pinned = append(pinned, p)
		}
		warmed = append(warmed, p)
	}
	f.chargeWarm(warmed)
	return warmed, pinned, nil
}

// chargeWarm accounts the fetched prefetch pages as one read batch,
// attributed to StagePrefetch explicitly: warming runs on the prefetcher's
// goroutine, concurrent with whatever stage the engine tagged, so the
// ambient tag would misattribute it.
func (f *File) chargeWarm(warmed []int) {
	if len(warmed) == 0 {
		return
	}
	f.s.pagesRead.Add(uint64(len(warmed)))
	f.dev.chargeReadStage(len(warmed), maxPerChannel(f.chanBase, f.dev.cfg.Channels, warmed), obsv.StagePrefetch, f.scope)
}

// UnpinPages releases one pin on each listed page. Pages evicted or
// invalidated in the meantime are skipped safely.
func (f *File) UnpinPages(pages []int) {
	c := f.dev.cache
	if c == nil {
		return
	}
	for _, p := range pages {
		c.Unpin(f.id, p)
	}
}
