package ckpt

import (
	"errors"
	"testing"

	"multilogvc/internal/csr"
	"multilogvc/internal/metrics"
	"multilogvc/internal/ssd"
)

func testDev(t *testing.T) *ssd.Device {
	t.Helper()
	dev, err := ssd.Open(ssd.Config{PageSize: 512, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func sampleState(seq uint64, step int) *State {
	return &State{
		App:          "pagerank",
		Graph:        "g",
		Seq:          seq,
		Step:         step,
		NumVertices:  100,
		CumProcessed: 4242,
		Carry:        []uint64{0xdeadbeef, 0, 0xffffffffffffffff},
		Values:       []uint32{1, 2, 3, 0xffffffff},
		Msgs: [][]MsgRec{
			{{Dst: 1, Src: 2, Data: 3}, {Dst: 4, Src: 5, Data: 6}},
			{},
			{{Dst: 7, Src: 8, Data: 9}},
		},
		Elog: []ElogEntry{
			{V: 10, Nbrs: []uint32{11, 12}},
			{V: 13, Nbrs: []uint32{14}, Weights: []uint32{7}},
		},
		PredActive: []uint64{5, 6},
		PredIneff: []csr.PageKey{
			{Side: 0, Interval: 1, Page: 2},
			{Side: 1, Interval: 0, Page: 9},
		},
		Aux: [][]uint32{{1, 2, 3}, {}},
		Supersteps: []metrics.SuperstepStats{
			{Superstep: 0, Active: 100},
			{Superstep: 1, Active: 42},
		},
	}
}

func statesEqual(t *testing.T, got, want *State) {
	t.Helper()
	if got.App != want.App || got.Graph != want.Graph || got.Seq != want.Seq ||
		got.Step != want.Step || got.NumVertices != want.NumVertices ||
		got.CumProcessed != want.CumProcessed {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if len(got.Carry) != len(want.Carry) {
		t.Fatalf("carry len %d != %d", len(got.Carry), len(want.Carry))
	}
	for i := range want.Carry {
		if got.Carry[i] != want.Carry[i] {
			t.Fatalf("carry[%d] %x != %x", i, got.Carry[i], want.Carry[i])
		}
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("values len %d != %d", len(got.Values), len(want.Values))
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("values[%d] %d != %d", i, got.Values[i], want.Values[i])
		}
	}
	if len(got.Msgs) != len(want.Msgs) {
		t.Fatalf("msgs intervals %d != %d", len(got.Msgs), len(want.Msgs))
	}
	for i := range want.Msgs {
		if len(got.Msgs[i]) != len(want.Msgs[i]) {
			t.Fatalf("msgs[%d] len %d != %d", i, len(got.Msgs[i]), len(want.Msgs[i]))
		}
		for j := range want.Msgs[i] {
			if got.Msgs[i][j] != want.Msgs[i][j] {
				t.Fatalf("msgs[%d][%d] %+v != %+v", i, j, got.Msgs[i][j], want.Msgs[i][j])
			}
		}
	}
	if len(got.Elog) != len(want.Elog) {
		t.Fatalf("elog len %d != %d", len(got.Elog), len(want.Elog))
	}
	for i := range want.Elog {
		g, w := got.Elog[i], want.Elog[i]
		if g.V != w.V || len(g.Nbrs) != len(w.Nbrs) || (g.Weights == nil) != (w.Weights == nil) {
			t.Fatalf("elog[%d] %+v != %+v", i, g, w)
		}
		for j := range w.Nbrs {
			if g.Nbrs[j] != w.Nbrs[j] {
				t.Fatalf("elog[%d].Nbrs[%d] %d != %d", i, j, g.Nbrs[j], w.Nbrs[j])
			}
		}
		for j := range w.Weights {
			if g.Weights[j] != w.Weights[j] {
				t.Fatalf("elog[%d].Weights[%d] %d != %d", i, j, g.Weights[j], w.Weights[j])
			}
		}
	}
	if len(got.PredActive) != len(want.PredActive) || len(got.PredIneff) != len(want.PredIneff) {
		t.Fatalf("predictor sizes differ: %d/%d vs %d/%d",
			len(got.PredActive), len(got.PredIneff), len(want.PredActive), len(want.PredIneff))
	}
	for i := range want.PredActive {
		if got.PredActive[i] != want.PredActive[i] {
			t.Fatalf("predActive[%d] %x != %x", i, got.PredActive[i], want.PredActive[i])
		}
	}
	for i := range want.PredIneff {
		if got.PredIneff[i] != want.PredIneff[i] {
			t.Fatalf("predIneff[%d] %+v != %+v", i, got.PredIneff[i], want.PredIneff[i])
		}
	}
	if len(got.Aux) != len(want.Aux) {
		t.Fatalf("aux intervals %d != %d", len(got.Aux), len(want.Aux))
	}
	for i := range want.Aux {
		if len(got.Aux[i]) != len(want.Aux[i]) {
			t.Fatalf("aux[%d] len %d != %d", i, len(got.Aux[i]), len(want.Aux[i]))
		}
		for j := range want.Aux[i] {
			if got.Aux[i][j] != want.Aux[i][j] {
				t.Fatalf("aux[%d][%d] %d != %d", i, j, got.Aux[i][j], want.Aux[i][j])
			}
		}
	}
	if len(got.Supersteps) != len(want.Supersteps) {
		t.Fatalf("supersteps %d != %d", len(got.Supersteps), len(want.Supersteps))
	}
	for i := range want.Supersteps {
		if got.Supersteps[i].Superstep != want.Supersteps[i].Superstep ||
			got.Supersteps[i].Active != want.Supersteps[i].Active {
			t.Fatalf("supersteps[%d] %+v != %+v", i, got.Supersteps[i], want.Supersteps[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dev := testDev(t)
	want := sampleState(0, 3)
	if err := Save(dev, "g.pagerank", want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dev, "g.pagerank")
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, got, want)
}

func TestNoCheckpoint(t *testing.T) {
	dev := testDev(t)
	_, err := Load(dev, "g.pagerank")
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

func TestNewestSlotWins(t *testing.T) {
	dev := testDev(t)
	for seq := uint64(0); seq < 3; seq++ {
		st := sampleState(seq, int(seq)*2)
		st.Values[0] = uint32(seq + 100)
		if err := Save(dev, "p", st); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load(dev, "p")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 2 || got.Step != 4 || got.Values[0] != 102 {
		t.Fatalf("got seq=%d step=%d v0=%d, want 2/4/102", got.Seq, got.Step, got.Values[0])
	}
}

// TestTornManifestFallsBack simulates a crash between the manifest
// truncation and the manifest rewrite of the newer slot: Load must fall
// back to the older committed checkpoint.
func TestTornManifestFallsBack(t *testing.T) {
	dev := testDev(t)
	if err := Save(dev, "p", sampleState(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := Save(dev, "p", sampleState(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Tear slot 1 (seq 1) the way Save's step 1 does.
	meta, err := dev.OpenFile("p.ckpt.1.meta")
	if err != nil {
		t.Fatal(err)
	}
	if err := meta.Truncate(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dev, "p")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 || got.Step != 1 {
		t.Fatalf("want fallback to seq 0 step 1, got seq=%d step=%d", got.Seq, got.Step)
	}
}

// TestCorruptPayloadFallsBack flips a payload bit in the newer slot; the
// CRC must reject it and Load must return the older slot.
func TestCorruptPayloadFallsBack(t *testing.T) {
	dev := testDev(t)
	if err := Save(dev, "p", sampleState(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := Save(dev, "p", sampleState(1, 2)); err != nil {
		t.Fatal(err)
	}
	data, err := dev.OpenFile("p.ckpt.1")
	if err != nil {
		t.Fatal(err)
	}
	ps := dev.PageSize()
	buf := make([]byte, ps)
	if err := data.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	buf[10] ^= 0xff
	if err := data.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dev, "p")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 {
		t.Fatalf("want fallback to seq 0, got seq=%d", got.Seq)
	}
}

// TestAllSlotsCorruptIsErrCorrupt: a committed manifest whose payload
// fails the CRC is corruption evidence; with no other valid slot, Load
// must return ErrCorrupt.
func TestAllSlotsCorruptIsErrCorrupt(t *testing.T) {
	dev := testDev(t)
	if err := Save(dev, "p", sampleState(0, 1)); err != nil {
		t.Fatal(err)
	}
	data, err := dev.OpenFile("p.ckpt.0")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, dev.PageSize())
	if err := data.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if err := data.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	_, err = Load(dev, "p")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestTornOnlySlotIsNoCheckpoint: a crash during the very first commit
// leaves payload data but a truncated manifest — that is an interrupted
// commit, not corruption, and must read as "no checkpoint".
func TestTornOnlySlotIsNoCheckpoint(t *testing.T) {
	dev := testDev(t)
	if err := Save(dev, "p", sampleState(0, 1)); err != nil {
		t.Fatal(err)
	}
	meta, err := dev.OpenFile("p.ckpt.0.meta")
	if err != nil {
		t.Fatal(err)
	}
	if err := meta.Truncate(); err != nil {
		t.Fatal(err)
	}
	_, err = Load(dev, "p")
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

func TestEmptyOptionalSections(t *testing.T) {
	dev := testDev(t)
	want := &State{
		App: "bfs", Graph: "g", Seq: 0, Step: 1,
		NumVertices: 4,
		Carry:       []uint64{0},
		Values:      []uint32{0, 1, 2, 3},
		Msgs:        [][]MsgRec{{}},
	}
	if err := Save(dev, "g.bfs", want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dev, "g.bfs")
	if err != nil {
		t.Fatal(err)
	}
	if got.Elog != nil && len(got.Elog) != 0 {
		t.Fatalf("want empty elog, got %d", len(got.Elog))
	}
	if got.PredActive != nil {
		t.Fatalf("want nil predictor history, got %v", got.PredActive)
	}
	if got.Aux != nil {
		t.Fatalf("want nil aux, got %v", got.Aux)
	}
	statesEqual(t, got, want)
}
