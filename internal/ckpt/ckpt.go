// Package ckpt implements superstep-boundary checkpointing for the
// MultiLogVC engine: atomically committed, CRC-checksummed snapshots of
// everything a superstep needs to restart — vertex values, the carry
// (active) bitset, the multi-log's pending messages, the edge log's
// current generation, the edge-log predictor's history, and per-in-edge
// aux state — plus resume from the latest valid checkpoint.
//
// # Commit protocol
//
// A checkpoint occupies one of two slots on the device, alternating by
// sequence number, so the previous checkpoint is never overwritten while
// the new one is in flight. Each slot holds a data file (the serialized
// payload) and a manifest file committed strictly afterwards:
//
//	1. truncate the slot's manifest   — the slot is now invalid
//	2. write the payload data file
//	3. write the manifest: magic, version, seq, step, payload length, CRC
//
// A crash at any point leaves at most one slot torn, and a torn slot is
// detectable: either its manifest is missing/short, or the payload CRC
// does not match. Load validates both slots and returns the one with the
// highest committed sequence, falling back to the older slot when the
// newer one is corrupt.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"multilogvc/internal/csr"
	"multilogvc/internal/metrics"
	"multilogvc/internal/ssd"
)

const (
	magic   = 0x4D4C5643 // "MLVC"
	version = 1
	// manifestBytes is the fixed manifest payload: magic, version, seq,
	// step, payload length, payload CRC, then a CRC of those fields.
	manifestBytes = 4 + 4 + 8 + 8 + 8 + 4 + 4
)

// ErrNoCheckpoint is returned by Load when neither slot holds a committed
// checkpoint — the expected state of a fresh device.
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")

// ErrCorrupt is returned when a committed checkpoint exists but no slot
// validates: some slot's manifest is intact while its payload fails the
// CRC or does not decode. A crash cannot produce this state — Save
// truncates the manifest before touching payload data — so it indicates
// data corruption, not an interrupted commit. Slots with torn or missing
// manifests are interrupted commits and read as "no checkpoint" instead.
var ErrCorrupt = errors.New("ckpt: checkpoint corrupt")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MsgRec is one pending multi-log message.
type MsgRec struct {
	Dst, Src, Data uint32
}

// ElogEntry is one vertex's re-logged adjacency.
type ElogEntry struct {
	V       uint32
	Nbrs    []uint32
	Weights []uint32 // nil for unweighted graphs
}

// State is the complete restartable engine state at a superstep boundary:
// everything Run holds between the end of superstep Step-1 and the start
// of superstep Step.
type State struct {
	App   string
	Graph string
	Seq   uint64 // commit sequence, monotonically increasing per run chain
	Step  int    // next superstep to execute

	NumVertices  uint32
	CumProcessed uint64

	Carry  []uint64 // carry bitset words
	Values []uint32 // vertex values, one per vertex

	// Multi-log: the current generation's pending messages, per interval.
	Msgs [][]MsgRec

	// Edge log: current generation, nil when the optimizer is disabled.
	Elog []ElogEntry
	// Predictor history (parallel to the edge log): previous-superstep
	// active bits and inefficient pages. PredActive nil = no predictor.
	PredActive []uint64
	PredIneff  []csr.PageKey

	// Aux: per-in-edge state per interval, nil for programs without it.
	Aux [][]uint32

	// Supersteps carries the completed supersteps' stats so a resumed
	// run's report covers the whole logical run.
	Supersteps []metrics.SuperstepStats
}

func dataName(prefix string, slot uint64) string {
	return fmt.Sprintf("%s.ckpt.%d", prefix, slot)
}

func metaName(prefix string, slot uint64) string {
	return fmt.Sprintf("%s.ckpt.%d.meta", prefix, slot)
}

// Save serializes st and commits it to slot st.Seq%2 on the device under
// the given file prefix. The write is charged to the device like any other
// IO — checkpoint overhead is measurable in the run's stats.
func Save(dev *ssd.Device, prefix string, st *State) error {
	payload, err := encode(st)
	if err != nil {
		return err
	}
	slot := st.Seq % 2

	// 1. Invalidate the slot before touching its data file: a crash
	// between here and the manifest write must not leave a stale manifest
	// pointing at new (partial) payload bytes.
	meta, err := dev.OpenOrCreate(metaName(prefix, slot))
	if err != nil {
		return err
	}
	if err := meta.Truncate(); err != nil {
		return err
	}

	// 2. Payload.
	data, err := dev.OpenOrCreate(dataName(prefix, slot))
	if err != nil {
		return err
	}
	if err := data.Truncate(); err != nil {
		return err
	}
	w := ssd.NewWriter(data)
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}

	// 3. Manifest — the commit point.
	var m [manifestBytes]byte
	binary.LittleEndian.PutUint32(m[0:], magic)
	binary.LittleEndian.PutUint32(m[4:], version)
	binary.LittleEndian.PutUint64(m[8:], st.Seq)
	binary.LittleEndian.PutUint64(m[16:], uint64(st.Step))
	binary.LittleEndian.PutUint64(m[24:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(m[32:], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(m[36:], crc32.Checksum(m[:36], crcTable))
	mw := ssd.NewWriter(meta)
	if _, err := mw.Write(m[:]); err != nil {
		return err
	}
	return mw.Close()
}

// GCStale removes the checkpoint slot NOT holding sequence newestSeq —
// the older of the two alternating slots — freeing its device pages. It is
// the checkpoint unit's space-reclamation hook (ssd.Device.AddReclaimer):
// under disk pressure the stale slot's redundancy is traded for space. The
// newest committed slot is never touched, so recovery always has a valid
// checkpoint. Missing files (slot never written, or already collected) are
// not an error.
func GCStale(dev *ssd.Device, prefix string, newestSeq uint64) error {
	stale := (newestSeq + 1) % 2
	for _, name := range []string{dataName(prefix, stale), metaName(prefix, stale)} {
		if err := dev.Remove(name); err != nil && !errors.Is(err, ssd.ErrNotExist) {
			return err
		}
	}
	return nil
}

// Load returns the newest committed checkpoint under prefix. A slot with
// a torn or missing manifest (an interrupted commit) is skipped; a slot
// with a committed manifest but failing payload is corruption evidence.
// ErrNoCheckpoint means no committed checkpoint exists; ErrCorrupt means
// a committed one exists but nothing validates.
func Load(dev *ssd.Device, prefix string) (*State, error) {
	var best *State
	sawCorrupt := false
	for slot := uint64(0); slot < 2; slot++ {
		st, corrupt, err := loadSlot(dev, prefix, slot)
		sawCorrupt = sawCorrupt || corrupt
		if err != nil || st == nil {
			continue
		}
		if best == nil || st.Seq > best.Seq {
			best = st
		}
	}
	if best != nil {
		return best, nil
	}
	if sawCorrupt {
		return nil, fmt.Errorf("%w: no slot of %q validates", ErrCorrupt, prefix)
	}
	return nil, fmt.Errorf("%w under %q", ErrNoCheckpoint, prefix)
}

// loadSlot validates one slot. corrupt reports a committed manifest whose
// payload fails validation — evidence of data corruption rather than an
// interrupted commit.
func loadSlot(dev *ssd.Device, prefix string, slot uint64) (st *State, corrupt bool, err error) {
	meta, merr := dev.OpenFile(metaName(prefix, slot))
	data, derr := dev.OpenFile(dataName(prefix, slot))
	if merr != nil || derr != nil || meta.NumPages() == 0 {
		return nil, false, nil // interrupted or never-written commit
	}
	var m [manifestBytes]byte
	if err := meta.ReadAt(m[:], 0); err != nil {
		if errors.Is(err, ssd.ErrCorruptPage) {
			// A manifest page failing its device checksum is corruption
			// evidence, not an interrupted commit — keep scanning slots.
			return nil, true, nil
		}
		return nil, false, err
	}
	if binary.LittleEndian.Uint32(m[0:]) != magic ||
		binary.LittleEndian.Uint32(m[4:]) != version ||
		binary.LittleEndian.Uint32(m[36:]) != crc32.Checksum(m[:36], crcTable) {
		return nil, false, nil // torn manifest: commit never completed
	}
	seq := binary.LittleEndian.Uint64(m[8:])
	step := int(binary.LittleEndian.Uint64(m[16:]))
	plen := binary.LittleEndian.Uint64(m[24:])
	wantCRC := binary.LittleEndian.Uint32(m[32:])
	ps := uint64(dev.PageSize())
	if plen == 0 || uint64(data.NumPages())*ps < plen {
		return nil, true, nil // committed manifest, missing payload
	}
	payload := make([]byte, plen)
	if err := data.ReadAt(payload, 0); err != nil {
		if errors.Is(err, ssd.ErrCorruptPage) {
			return nil, true, nil // corrupt payload page: try the other slot
		}
		return nil, true, err
	}
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, true, nil
	}
	st, err = decode(payload)
	if err != nil {
		return nil, true, nil // undecodable despite CRC
	}
	st.Seq = seq
	st.Step = step
	return st, false, nil
}

// encode serializes the state as a little-endian binary stream. The
// superstep stats ride along as a JSON blob — they are report metadata,
// not hot-path data, and JSON keeps them schema-stable.
func encode(st *State) ([]byte, error) {
	var b bytes.Buffer
	putStr := func(s string) {
		putU32(&b, uint32(len(s)))
		b.WriteString(s)
	}
	putStr(st.App)
	putStr(st.Graph)
	putU32(&b, st.NumVertices)
	putU64(&b, st.CumProcessed)

	putU32(&b, uint32(len(st.Carry)))
	for _, w := range st.Carry {
		putU64(&b, w)
	}
	putU32(&b, uint32(len(st.Values)))
	for _, v := range st.Values {
		putU32(&b, v)
	}

	putU32(&b, uint32(len(st.Msgs)))
	for _, recs := range st.Msgs {
		putU32(&b, uint32(len(recs)))
		for _, r := range recs {
			putU32(&b, r.Dst)
			putU32(&b, r.Src)
			putU32(&b, r.Data)
		}
	}

	putU32(&b, uint32(len(st.Elog)))
	for _, e := range st.Elog {
		putU32(&b, e.V)
		putU32(&b, uint32(len(e.Nbrs)))
		for _, nb := range e.Nbrs {
			putU32(&b, nb)
		}
		if e.Weights != nil {
			putU32(&b, 1)
			for _, w := range e.Weights {
				putU32(&b, w)
			}
		} else {
			putU32(&b, 0)
		}
	}

	if st.PredActive == nil {
		putU32(&b, 0)
	} else {
		putU32(&b, 1)
		putU32(&b, uint32(len(st.PredActive)))
		for _, w := range st.PredActive {
			putU64(&b, w)
		}
		putU32(&b, uint32(len(st.PredIneff)))
		for _, k := range st.PredIneff {
			b.WriteByte(k.Side)
			putU32(&b, uint32(k.Interval))
			putU32(&b, uint32(k.Page))
		}
	}

	putU32(&b, uint32(len(st.Aux)))
	for _, vals := range st.Aux {
		putU32(&b, uint32(len(vals)))
		for _, v := range vals {
			putU32(&b, v)
		}
	}

	stats, err := json.Marshal(st.Supersteps)
	if err != nil {
		return nil, err
	}
	putU32(&b, uint32(len(stats)))
	b.Write(stats)
	return b.Bytes(), nil
}

func decode(payload []byte) (*State, error) {
	r := &reader{buf: payload}
	st := &State{}
	st.App = r.str()
	st.Graph = r.str()
	st.NumVertices = r.u32()
	st.CumProcessed = r.u64()

	st.Carry = make([]uint64, r.u32())
	for i := range st.Carry {
		st.Carry[i] = r.u64()
	}
	st.Values = make([]uint32, r.u32())
	for i := range st.Values {
		st.Values[i] = r.u32()
	}

	st.Msgs = make([][]MsgRec, r.u32())
	for i := range st.Msgs {
		recs := make([]MsgRec, r.u32())
		for j := range recs {
			recs[j] = MsgRec{Dst: r.u32(), Src: r.u32(), Data: r.u32()}
		}
		st.Msgs[i] = recs
	}

	st.Elog = make([]ElogEntry, r.u32())
	for i := range st.Elog {
		e := ElogEntry{V: r.u32()}
		e.Nbrs = make([]uint32, r.u32())
		for j := range e.Nbrs {
			e.Nbrs[j] = r.u32()
		}
		if r.u32() == 1 {
			e.Weights = make([]uint32, len(e.Nbrs))
			for j := range e.Weights {
				e.Weights[j] = r.u32()
			}
		}
		st.Elog[i] = e
	}

	if r.u32() == 1 {
		st.PredActive = make([]uint64, r.u32())
		for i := range st.PredActive {
			st.PredActive[i] = r.u64()
		}
		st.PredIneff = make([]csr.PageKey, r.u32())
		for i := range st.PredIneff {
			st.PredIneff[i] = csr.PageKey{
				Side:     r.byte(),
				Interval: int32(r.u32()),
				Page:     int32(r.u32()),
			}
		}
	}

	st.Aux = make([][]uint32, r.u32())
	if len(st.Aux) == 0 {
		st.Aux = nil
	}
	for i := range st.Aux {
		vals := make([]uint32, r.u32())
		for j := range vals {
			vals[j] = r.u32()
		}
		st.Aux[i] = vals
	}

	stats := r.bytes(int(r.u32()))
	if r.err != nil {
		return nil, r.err
	}
	if len(stats) > 0 {
		if err := json.Unmarshal(stats, &st.Supersteps); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func putU32(b *bytes.Buffer, v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	b.Write(t[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	b.Write(t[:])
}

// reader decodes the payload with sticky error handling: after the first
// short read every accessor returns zero values and err stays set.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("ckpt: truncated payload at %d(+%d)/%d", r.pos, n, len(r.buf))
		}
		return nil
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) byte() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string {
	return string(r.bytes(int(r.u32())))
}
