package pagecache

import (
	"context"
	"sync"

	"multilogvc/internal/ssd"
)

// Job describes one prefetch request: warm the listed pages of a file,
// optionally pinning them so they survive until the consuming batch
// releases its epoch. Expand, when set, runs after the pages are warm and
// returns follow-up jobs — this is how two-stage CSR prefetch works: the
// first job warms rowptr pages, its Expand reads the (now cached) row
// entries and emits a second job for the colidx pages they point at.
type Job struct {
	File   *ssd.File
	Pages  []int
	Pin    bool
	Expand func() ([]Job, error)
}

// PrefetchStats counts prefetcher activity. Page-level outcomes (inserts,
// drops by backpressure, demand hits) live in the cache's Stats; these
// counters cover the job pipeline itself.
type PrefetchStats struct {
	Submitted   uint64 `json:"submitted"`    // jobs accepted into the queue
	Dropped     uint64 `json:"dropped"`      // jobs refused because the queue was full
	Skipped     uint64 `json:"skipped"`      // jobs cancelled by a generation bump
	Jobs        uint64 `json:"jobs"`         // jobs processed (including expansions)
	PagesWarmed uint64 `json:"pages_warmed"` // pages fetched into the cache
	Errors      uint64 `json:"errors"`       // jobs that hit a device or expand error
}

// Sub returns s - t, counter-wise.
func (s PrefetchStats) Sub(t PrefetchStats) PrefetchStats {
	return PrefetchStats{
		Submitted:   s.Submitted - t.Submitted,
		Dropped:     s.Dropped - t.Dropped,
		Skipped:     s.Skipped - t.Skipped,
		Jobs:        s.Jobs - t.Jobs,
		PagesWarmed: s.PagesWarmed - t.PagesWarmed,
		Errors:      s.Errors - t.Errors,
	}
}

// pinned records pins taken by the worker so an epoch release can undo them.
type pinned struct {
	f     *ssd.File
	pages []int
}

// item is a queued job tagged with the generation and epoch it belongs to.
type item struct {
	gen   uint64
	epoch uint64
	job   Job
}

// Prefetcher warms cache pages on a single background goroutine while the
// engine computes. It is built around three rules:
//
//   - Cancellation: CancelPending bumps a generation counter; queued jobs
//     from older generations are skipped, so a superstep boundary cuts off
//     stale predictions instantly without waiting for the queue to drain.
//   - Pin epochs: pins taken for interval i+1's pages are grouped under an
//     epoch and released once the batch that consumed them finishes, so a
//     prefetched page cannot be evicted between warm and use.
//   - Error isolation: device errors during prefetch are recorded (first
//     error wins, Err) and counted, never propagated as panics — a failed
//     prefetch degrades to a demand miss, where the same error will
//     surface on the synchronous path if it persists.
type Prefetcher struct {
	mu       sync.Mutex
	cond     *sync.Cond
	gen      uint64
	nextEp   uint64
	epochs   map[uint64][]pinned // live epochs -> pins to release
	pending  int
	firstErr error
	stats    PrefetchStats

	queue chan item
	stop  chan struct{}
	done  chan struct{}
}

// NewPrefetcher starts a prefetcher with the given queue depth (minimum 1).
// Callers must Close it to stop the worker and release outstanding pins.
func NewPrefetcher(queueDepth int) *Prefetcher {
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Prefetcher{
		epochs: make(map[uint64][]pinned),
		queue:  make(chan item, queueDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	go p.worker()
	return p
}

// BeginEpoch opens a pin epoch and returns its handle. Jobs submitted
// against it record their pins there until ReleaseEpoch.
func (p *Prefetcher) BeginEpoch() uint64 {
	p.mu.Lock()
	p.nextEp++
	e := p.nextEp
	p.epochs[e] = nil
	p.mu.Unlock()
	return e
}

// Submit enqueues jobs under the given epoch. It never blocks: when the
// queue is full the job is dropped and counted — prefetch is a hint, the
// demand path remains correct without it.
func (p *Prefetcher) Submit(epoch uint64, jobs ...Job) {
	for _, j := range jobs {
		if j.File == nil && j.Expand == nil {
			continue
		}
		p.mu.Lock()
		it := item{gen: p.gen, epoch: epoch, job: j}
		p.pending++
		p.stats.Submitted++
		p.mu.Unlock()
		select {
		case p.queue <- it:
		default:
			p.mu.Lock()
			p.stats.Submitted--
			p.stats.Dropped++
			p.finishLocked()
			p.mu.Unlock()
		}
	}
}

// CancelPending invalidates all queued but unprocessed jobs. Jobs already
// being processed finish; their pins still land in their epoch and are
// released normally.
func (p *Prefetcher) CancelPending() {
	p.mu.Lock()
	p.gen++
	p.mu.Unlock()
}

// ReleaseEpoch unpins everything recorded under the epoch. Safe to call
// while the epoch's jobs are still in flight: late pins for a released
// epoch are undone immediately by the worker.
func (p *Prefetcher) ReleaseEpoch(epoch uint64) {
	p.mu.Lock()
	pins := p.epochs[epoch]
	delete(p.epochs, epoch)
	p.mu.Unlock()
	unpinAll(pins)
}

// ReleaseAll unpins every live epoch. Engines call it at superstep end as
// a backstop against epochs orphaned by early termination.
func (p *Prefetcher) ReleaseAll() {
	p.mu.Lock()
	all := make([][]pinned, 0, len(p.epochs))
	for e, pins := range p.epochs {
		all = append(all, pins)
		delete(p.epochs, e)
	}
	p.mu.Unlock()
	for _, pins := range all {
		unpinAll(pins)
	}
}

func unpinAll(pins []pinned) {
	for _, pn := range pins {
		pn.f.UnpinPages(pn.pages)
	}
}

// Err returns the first error any prefetch job hit, or nil.
func (p *Prefetcher) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.firstErr
}

// Stats returns a snapshot of the job counters.
func (p *Prefetcher) Stats() PrefetchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// WaitIdle blocks until every submitted job has been processed, skipped,
// or dropped. Intended for tests and deterministic measurements.
func (p *Prefetcher) WaitIdle() {
	p.mu.Lock()
	for p.pending > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// WaitIdleCtx is WaitIdle bounded by a context: it returns the context's
// error as soon as ctx is done, leaving any still-pending jobs to finish
// (or be cancelled) in the background. Engines use it so a run deadline is
// not overshot waiting for an unlucky prefetch queue.
func (p *Prefetcher) WaitIdleCtx(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pending > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.cond.Wait()
	}
	return ctx.Err()
}

// Close cancels pending work, stops the worker, and releases all pins.
func (p *Prefetcher) Close() {
	p.CancelPending()
	close(p.stop)
	<-p.done
	// The worker is gone; drain jobs it never dequeued so WaitIdle callers
	// (and the pending counter) settle.
	for {
		select {
		case <-p.queue:
			p.mu.Lock()
			p.stats.Skipped++
			p.finishLocked()
			p.mu.Unlock()
		default:
			p.ReleaseAll()
			return
		}
	}
}

func (p *Prefetcher) worker() {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			return
		case it := <-p.queue:
			p.process(it)
		}
	}
}

// process runs one job and its expansions, then marks it finished.
func (p *Prefetcher) process(it item) {
	defer func() {
		p.mu.Lock()
		p.finishLocked()
		p.mu.Unlock()
	}()

	p.mu.Lock()
	stale := it.gen != p.gen
	if stale {
		p.stats.Skipped++
	}
	p.mu.Unlock()
	if stale {
		return
	}
	p.runJob(it.gen, it.epoch, it.job)
}

// runJob warms one job's pages and recurses into its expansions. Expansion
// jobs run inline on the worker (same generation and epoch) so the parent
// stays "pending" until the whole tree is done.
func (p *Prefetcher) runJob(gen, epoch uint64, j Job) {
	p.mu.Lock()
	p.stats.Jobs++
	cancelled := gen != p.gen
	p.mu.Unlock()
	if cancelled {
		return
	}

	if j.File != nil && len(j.Pages) > 0 {
		warmed, pinnedPages, err := j.File.WarmPages(j.Pages, j.Pin)
		p.mu.Lock()
		p.stats.PagesWarmed += uint64(len(warmed))
		if err != nil {
			p.stats.Errors++
			if p.firstErr == nil {
				p.firstErr = err
			}
		}
		p.mu.Unlock()
		// Record only the pins that actually landed: a warmed page whose
		// pin lost the race to an eviction must not be unpinned at epoch
		// release, or the release would strip a pin a concurrent run took
		// on the re-inserted frame.
		if j.Pin && len(pinnedPages) > 0 {
			p.recordPins(epoch, j.File, pinnedPages)
		}
		if err != nil {
			return
		}
	}

	if j.Expand != nil {
		children, err := j.Expand()
		if err != nil {
			p.mu.Lock()
			p.stats.Errors++
			if p.firstErr == nil {
				p.firstErr = err
			}
			p.mu.Unlock()
			return
		}
		for _, child := range children {
			p.runJob(gen, epoch, child)
		}
	}
}

// recordPins attaches pins to their epoch, or undoes them right away if
// the epoch was already released (the batch finished before the prefetch).
func (p *Prefetcher) recordPins(epoch uint64, f *ssd.File, pages []int) {
	p.mu.Lock()
	if _, live := p.epochs[epoch]; live {
		p.epochs[epoch] = append(p.epochs[epoch], pinned{f: f, pages: pages})
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	f.UnpinPages(pages)
}

// finishLocked decrements the pending count and wakes WaitIdle waiters.
// Callers must hold p.mu.
func (p *Prefetcher) finishLocked() {
	p.pending--
	if p.pending <= 0 {
		p.cond.Broadcast()
	}
}
