// Package pagecache implements a sharded buffer-pool page cache that sits
// between the engines and the simulated flash device (internal/ssd).
//
// MultiLogVC's CSR layout already narrows each superstep's reads to the
// pages holding active vertices, but the engines re-fetch those pages from
// the device on every superstep even when the active set barely changes.
// FlashGraph showed that a compact page cache in front of an SSD is the
// single biggest lever for semi-external graph engines; this package adds
// that lever without touching correctness: reads are served from cached
// page copies when possible, writes go through to the device and update
// resident copies in place, and truncation invalidates a file's pages.
//
// Eviction is CLOCK (second chance): a hit sets a frame's reference bit;
// the eviction hand clears reference bits until it finds a cold, unpinned
// frame. Pinned frames are never evicted. Pages inserted by the
// prefetcher (see Prefetcher) start cold and may only claim frames that
// are already cold and unpinned — prefetch never evicts hotter pages,
// which is the backpressure rule that keeps a mispredicting prefetcher
// from thrashing the demand working set.
//
// The cache identifies pages by the owning file's device-assigned ID plus
// the page index, so reopened or recreated files can never alias stale
// cached contents.
package pagecache

import (
	"sync"
)

// DefaultShards is the number of independently locked cache shards.
const DefaultShards = 8

// Stats is a snapshot of the cache counters. Like ssd.Stats it is a plain
// value with a Sub method, so engines can compute per-superstep deltas by
// snapshotting before and after.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`

	Inserts   uint64 `json:"inserts"`
	Evictions uint64 `json:"evictions"`
	Writes    uint64 `json:"writes"` // write-through updates of resident pages

	PrefetchInserts uint64 `json:"prefetch_inserts"` // pages inserted by the prefetcher
	PrefetchHits    uint64 `json:"prefetch_hits"`    // first demand hit on a prefetched page
	PrefetchDropped uint64 `json:"prefetch_dropped"` // prefetch inserts refused by backpressure

	PinSkips      uint64 `json:"pin_skips"` // eviction scans that stepped over a pinned frame
	Invalidations uint64 `json:"invalidations"`
}

// Sub returns s - t, counter-wise; t must be an earlier snapshot.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Hits:            s.Hits - t.Hits,
		Misses:          s.Misses - t.Misses,
		Inserts:         s.Inserts - t.Inserts,
		Evictions:       s.Evictions - t.Evictions,
		Writes:          s.Writes - t.Writes,
		PrefetchInserts: s.PrefetchInserts - t.PrefetchInserts,
		PrefetchHits:    s.PrefetchHits - t.PrefetchHits,
		PrefetchDropped: s.PrefetchDropped - t.PrefetchDropped,
		PinSkips:        s.PinSkips - t.PinSkips,
		Invalidations:   s.Invalidations - t.Invalidations,
	}
}

// HitRate returns hits / (hits + misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// PrefetchAccuracy returns the share of prefetched pages that saw a
// demand hit, or 0 when nothing was prefetched.
func (s Stats) PrefetchAccuracy() float64 {
	if s.PrefetchInserts > 0 {
		return float64(s.PrefetchHits) / float64(s.PrefetchInserts)
	}
	return 0
}

// frame is one cached page.
type frame struct {
	key        uint64
	data       []byte
	ref        bool  // CLOCK reference bit
	prefetched bool  // inserted by prefetch, no demand hit yet
	pins       int32 // pinned frames are never evicted
}

// shard is an independently locked CLOCK ring.
type shard struct {
	mu       sync.Mutex
	capacity int
	frames   []frame
	hand     int
	index    map[uint64]int // key -> frame slot
	stats    Stats
}

// Cache is a sharded buffer pool for device pages. All methods are safe
// for concurrent use. Page data is copied in and out; callers never hold
// references into cache memory.
type Cache struct {
	pageSize int
	shards   []shard
}

// New creates a cache holding up to capacityPages pages of pageSize bytes
// each, spread over DefaultShards shards. A capacity below one page per
// shard shrinks the shard count so every shard holds at least one page.
func New(capacityPages, pageSize int) *Cache {
	return NewSharded(capacityPages, pageSize, DefaultShards)
}

// FromMB creates a cache sized in whole mebibytes, the unit the -cache-mb
// CLI knob uses. mb <= 0 returns nil (caching disabled).
func FromMB(mb, pageSize int) *Cache {
	if mb <= 0 {
		return nil
	}
	pages := mb << 20 / pageSize
	if pages < 1 {
		pages = 1
	}
	return New(pages, pageSize)
}

// NewSharded is New with an explicit shard count (tests use one shard for
// deterministic eviction order).
func NewSharded(capacityPages, pageSize, shards int) *Cache {
	if capacityPages < 1 {
		capacityPages = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacityPages {
		shards = capacityPages
	}
	c := &Cache{pageSize: pageSize, shards: make([]shard, shards)}
	per := capacityPages / shards
	extra := capacityPages % shards
	for i := range c.shards {
		cap := per
		if i < extra {
			cap++
		}
		c.shards[i] = shard{capacity: cap, index: make(map[uint64]int, cap)}
	}
	return c
}

// PageSize returns the page size the cache was built for.
func (c *Cache) PageSize() int { return c.pageSize }

// CapacityPages returns the total frame capacity.
func (c *Cache) CapacityPages() int {
	total := 0
	for i := range c.shards {
		total += c.shards[i].capacity
	}
	return total
}

// pageKey packs a file ID and page index into the cache key.
func pageKey(fid uint32, page int) uint64 {
	return uint64(fid)<<32 | uint64(uint32(page))
}

// shardOf picks the shard for a key (fibonacci hashing of the packed key).
func (c *Cache) shardOf(key uint64) *shard {
	h := key * 0x9E3779B97F4A7C15
	return &c.shards[h>>33%uint64(len(c.shards))]
}

// Get copies the cached page into dst (when dst is non-nil) and reports
// whether the page was resident. A hit sets the frame's reference bit; the
// first demand hit on a prefetched page counts toward prefetch accuracy.
func (c *Cache) Get(fid uint32, page int, dst []byte) bool {
	key := pageKey(fid, page)
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return false
	}
	f := &s.frames[i]
	if dst != nil {
		copy(dst, f.data)
	}
	f.ref = true
	if f.prefetched {
		f.prefetched = false
		s.stats.PrefetchHits++
	}
	s.stats.Hits++
	return true
}

// Contains reports residency without touching reference bits or counters.
func (c *Cache) Contains(fid uint32, page int) bool {
	key := pageKey(fid, page)
	s := c.shardOf(key)
	s.mu.Lock()
	_, ok := s.index[key]
	s.mu.Unlock()
	return ok
}

// Put inserts (or refreshes) a page copy. Demand inserts (prefetch ==
// false) evict with CLOCK second chance and enter hot (reference bit
// set). Prefetch inserts enter cold and may only claim a frame that is
// already cold and unpinned; when the whole shard is hot or pinned the
// insert is refused and counted as dropped — prefetch never evicts
// pinned or hotter pages. Returns whether the page is now resident.
func (c *Cache) Put(fid uint32, page int, data []byte, prefetch bool) bool {
	key := pageKey(fid, page)
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()

	if i, ok := s.index[key]; ok {
		f := &s.frames[i]
		copy(f.data, data)
		if !prefetch {
			f.ref = true
		}
		return true
	}

	if len(s.frames) < s.capacity {
		s.frames = append(s.frames, frame{
			key:        key,
			data:       append(make([]byte, 0, len(data)), data...),
			ref:        !prefetch,
			prefetched: prefetch,
		})
		s.index[key] = len(s.frames) - 1
		s.noteInsert(prefetch)
		return true
	}

	victim := s.findVictim(prefetch)
	if victim < 0 {
		if prefetch {
			s.stats.PrefetchDropped++
		}
		return false
	}
	f := &s.frames[victim]
	delete(s.index, f.key)
	s.stats.Evictions++
	f.key = key
	f.data = f.data[:0]
	f.data = append(f.data, data...)
	f.ref = !prefetch
	f.prefetched = prefetch
	f.pins = 0
	s.index[key] = victim
	s.noteInsert(prefetch)
	return true
}

func (s *shard) noteInsert(prefetch bool) {
	s.stats.Inserts++
	if prefetch {
		s.stats.PrefetchInserts++
	}
}

// findVictim advances the CLOCK hand to an evictable frame and returns
// its slot, or -1 when none qualifies. Demand eviction gives referenced
// frames a second chance (clearing the bit); prefetch eviction may not
// demote hot frames, so it only takes frames that are already cold.
func (s *shard) findVictim(prefetch bool) int {
	limit := 2 * len(s.frames)
	if prefetch {
		limit = len(s.frames)
	}
	for step := 0; step < limit; step++ {
		i := s.hand
		s.hand = (s.hand + 1) % len(s.frames)
		f := &s.frames[i]
		if f.pins > 0 {
			s.stats.PinSkips++
			continue
		}
		if f.ref {
			if !prefetch {
				f.ref = false // second chance
			}
			continue
		}
		return i
	}
	return -1
}

// Write updates a resident page copy in place (write-through from the
// device layer). A page that is not resident is left alone: writes do not
// populate the cache, they only keep it coherent.
func (c *Cache) Write(fid uint32, page int, data []byte) {
	key := pageKey(fid, page)
	s := c.shardOf(key)
	s.mu.Lock()
	if i, ok := s.index[key]; ok {
		copy(s.frames[i].data, data)
		s.stats.Writes++
	}
	s.mu.Unlock()
}

// Pin marks a resident page non-evictable and reports whether it was
// resident. Pins nest; each successful Pin needs one Unpin.
func (c *Cache) Pin(fid uint32, page int) bool {
	key := pageKey(fid, page)
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[key]
	if !ok {
		return false
	}
	s.frames[i].pins++
	return true
}

// Unpin releases one pin. Unpinning a non-resident or unpinned page is a
// no-op, so releases stay safe across evictions and invalidations.
func (c *Cache) Unpin(fid uint32, page int) {
	key := pageKey(fid, page)
	s := c.shardOf(key)
	s.mu.Lock()
	if i, ok := s.index[key]; ok && s.frames[i].pins > 0 {
		s.frames[i].pins--
	}
	s.mu.Unlock()
}

// Invalidate drops one page if resident.
func (c *Cache) Invalidate(fid uint32, page int) {
	key := pageKey(fid, page)
	s := c.shardOf(key)
	s.mu.Lock()
	if i, ok := s.index[key]; ok {
		s.dropFrame(i)
	}
	s.mu.Unlock()
}

// InvalidateFile drops every cached page of the file — called on truncate
// and remove so recycled files never serve stale pages.
func (c *Cache) InvalidateFile(fid uint32) {
	for si := range c.shards {
		s := &c.shards[si]
		s.mu.Lock()
		for key, i := range s.index {
			if uint32(key>>32) == fid {
				s.dropFrame(i)
			}
		}
		s.mu.Unlock()
	}
}

// dropFrame invalidates slot i in place: the frame stays in the ring as
// an empty cold slot keyed to an impossible key, immediately reusable.
func (s *shard) dropFrame(i int) {
	f := &s.frames[i]
	delete(s.index, f.key)
	f.key = ^uint64(0)
	f.ref = false
	f.prefetched = false
	f.pins = 0
	s.stats.Invalidations++
}

// PinnedPages returns the total outstanding pin count across all frames.
// A finished engine run must leave this at zero — every pin taken by the
// prefetcher's epochs or the demand path has to be released on every exit
// path, including cancellation. Tests assert on it to catch pin leaks.
func (c *Cache) PinnedPages() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for j := range s.frames {
			n += int(s.frames[j].pins)
		}
		s.mu.Unlock()
	}
	return n
}

// Resident returns the number of pages currently cached.
func (c *Cache) Resident() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.index)
		s.mu.Unlock()
	}
	return n
}

// Stats returns the summed counters of all shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st := s.stats
		s.mu.Unlock()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Inserts += st.Inserts
		out.Evictions += st.Evictions
		out.Writes += st.Writes
		out.PrefetchInserts += st.PrefetchInserts
		out.PrefetchHits += st.PrefetchHits
		out.PrefetchDropped += st.PrefetchDropped
		out.PinSkips += st.PinSkips
		out.Invalidations += st.Invalidations
	}
	return out
}
