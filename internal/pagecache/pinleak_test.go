package pagecache

import (
	"context"
	"testing"
	"time"
)

// RequireNoPins is the pin-leak assertion: after an engine run (or any
// prefetch epoch cycle) finishes, no frame may hold an outstanding pin —
// a leaked pin silently shrinks the evictable pool for the rest of the
// process. Engine-level tests call this on the run's cache.
func RequireNoPins(t *testing.T, c *Cache) {
	t.Helper()
	if n := c.PinnedPages(); n != 0 {
		t.Fatalf("pin leak: %d outstanding pins after release", n)
	}
}

func TestPinnedPagesAccounting(t *testing.T) {
	c := newTest(4)
	c.Put(1, 0, page(1), false)
	c.Put(1, 1, page(2), false)
	RequireNoPins(t, c)

	c.Pin(1, 0)
	c.Pin(1, 0) // pins nest
	c.Pin(1, 1)
	if got := c.PinnedPages(); got != 3 {
		t.Fatalf("PinnedPages = %d, want 3", got)
	}
	c.Unpin(1, 0)
	c.Unpin(1, 1)
	if got := c.PinnedPages(); got != 1 {
		t.Fatalf("PinnedPages = %d, want 1", got)
	}
	c.Unpin(1, 0)
	RequireNoPins(t, c)
	c.Unpin(1, 0) // over-release is a no-op
	RequireNoPins(t, c)
}

// Every epoch lifecycle exit — explicit release, ReleaseAll backstop, and
// Close — must drop the pins it took.
func TestEpochLifecycleLeavesNoPins(t *testing.T) {
	_, c, f := newDevCache(t, 8)
	p := NewPrefetcher(8)

	ep := p.BeginEpoch()
	p.Submit(ep, Job{File: f, Pages: []int{0, 1}, Pin: true})
	p.WaitIdle()
	if c.PinnedPages() == 0 {
		t.Fatal("prefetch with Pin took no pins")
	}
	p.ReleaseEpoch(ep)
	RequireNoPins(t, c)

	ep2 := p.BeginEpoch()
	p.Submit(ep2, Job{File: f, Pages: []int{2, 3}, Pin: true})
	p.WaitIdle()
	p.ReleaseAll() // superstep-boundary backstop, epoch never released
	RequireNoPins(t, c)

	ep3 := p.BeginEpoch()
	p.Submit(ep3, Job{File: f, Pages: []int{4}, Pin: true})
	p.Close() // engine teardown with an epoch still live
	RequireNoPins(t, c)
}

func TestWaitIdleCtx(t *testing.T) {
	_, _, f := newDevCache(t, 8)
	p := NewPrefetcher(8)
	defer p.Close()

	// Live context, idle queue: returns nil immediately.
	if err := p.WaitIdleCtx(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Worker blocked on a job: a cancelled context unblocks the wait with
	// the context's error instead of hanging.
	release := make(chan struct{})
	started := make(chan struct{})
	ep := p.BeginEpoch()
	p.Submit(ep, Job{Expand: func() ([]Job, error) {
		close(started)
		<-release
		return nil, nil
	}})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.WaitIdleCtx(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("WaitIdleCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitIdleCtx did not observe cancellation")
	}
	close(release)
	p.WaitIdle()

	// After the queue drains a fresh wait succeeds again.
	p.Submit(ep, Job{File: f, Pages: []int{1}})
	if err := p.WaitIdleCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
}
