package pagecache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"multilogvc/internal/ssd"
)

const testPage = 64

func page(b byte) []byte {
	p := make([]byte, testPage)
	for i := range p {
		p[i] = b
	}
	return p
}

// single-shard cache for deterministic eviction order.
func newTest(capacity int) *Cache { return NewSharded(capacity, testPage, 1) }

func mustGet(t *testing.T, c *Cache, fid uint32, pg int, want byte) {
	t.Helper()
	dst := make([]byte, testPage)
	if !c.Get(fid, pg, dst) {
		t.Fatalf("page (%d,%d) not resident", fid, pg)
	}
	if !bytes.Equal(dst, page(want)) {
		t.Fatalf("page (%d,%d): got %d, want %d", fid, pg, dst[0], want)
	}
}

// TestClockEvictionOrder drives CLOCK second-chance through scripted
// access sequences and checks exactly which pages survive.
func TestClockEvictionOrder(t *testing.T) {
	type op struct {
		kind string // put, get, pin, unpin
		page int
	}
	cases := []struct {
		name     string
		capacity int
		ops      []op
		resident []int
		gone     []int
	}{
		{
			name:     "fifo when nothing is touched",
			capacity: 3,
			// All frames enter hot; the hand clears ref bits in insertion
			// order, so with no touches the oldest page goes first.
			ops:      []op{{"put", 0}, {"put", 1}, {"put", 2}, {"put", 3}},
			resident: []int{1, 2, 3},
			gone:     []int{0},
		},
		{
			name:     "second chance protects a touched page",
			capacity: 3,
			// put 3 sweeps all reference bits clear (evicting page 0).
			// Touching page 1 re-arms its bit, so the next eviction skips
			// it and takes page 2 — the younger but colder page.
			ops: []op{{"put", 0}, {"put", 1}, {"put", 2}, {"put", 3},
				{"get", 1}, {"put", 4}},
			resident: []int{1, 3, 4},
			gone:     []int{0, 2},
		},
		{
			name:     "reference bit grants one lap, not immunity",
			capacity: 2,
			// get 0 sets a bit that was already set; the sweep for put 2
			// clears both bits and still evicts page 0 on the wrap.
			ops:      []op{{"put", 0}, {"put", 1}, {"get", 0}, {"put", 2}, {"put", 3}},
			resident: []int{2, 3},
			gone:     []int{0, 1},
		},
		{
			name:     "pin prevents eviction",
			capacity: 2,
			// Page 0 is pinned; every eviction must take the other frame.
			ops:      []op{{"put", 0}, {"pin", 0}, {"put", 1}, {"put", 2}, {"put", 3}},
			resident: []int{0, 3},
			gone:     []int{1, 2},
		},
		{
			name:     "unpin makes the page evictable again",
			capacity: 2,
			ops: []op{{"put", 0}, {"pin", 0}, {"put", 1}, {"put", 2},
				{"unpin", 0}, {"put", 3}, {"put", 4}},
			resident: []int{3, 4},
			gone:     []int{0, 1, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTest(tc.capacity)
			for _, o := range tc.ops {
				switch o.kind {
				case "put":
					if !c.Put(1, o.page, page(byte(o.page)), false) {
						t.Fatalf("demand put of page %d refused", o.page)
					}
				case "get":
					mustGet(t, c, 1, o.page, byte(o.page))
				case "pin":
					if !c.Pin(1, o.page) {
						t.Fatalf("pin of page %d failed", o.page)
					}
				case "unpin":
					c.Unpin(1, o.page)
				}
			}
			for _, pg := range tc.resident {
				if !c.Contains(1, pg) {
					t.Errorf("page %d should be resident", pg)
				}
			}
			for _, pg := range tc.gone {
				if c.Contains(1, pg) {
					t.Errorf("page %d should have been evicted", pg)
				}
			}
		})
	}
}

// TestAllPinnedDemandPutFails checks the sweep guard: when every frame is
// pinned even a demand insert is refused rather than looping forever.
func TestAllPinnedDemandPutFails(t *testing.T) {
	c := newTest(2)
	c.Put(1, 0, page(0), false)
	c.Put(1, 1, page(1), false)
	c.Pin(1, 0)
	c.Pin(1, 1)
	if c.Put(1, 2, page(2), false) {
		t.Fatal("demand put succeeded with every frame pinned")
	}
	if got := c.Stats().PinSkips; got == 0 {
		t.Fatal("expected pin skips to be counted")
	}
	c.Unpin(1, 0)
	if !c.Put(1, 2, page(2), false) {
		t.Fatal("demand put still refused after unpin")
	}
}

// TestPrefetchBackpressure checks that prefetch inserts never evict hot or
// pinned pages: they only claim cold unpinned frames, else are dropped.
func TestPrefetchBackpressure(t *testing.T) {
	c := newTest(2)
	c.Put(1, 0, page(0), false) // hot (demand inserts enter referenced)
	c.Put(1, 1, page(1), false) // hot
	if c.Put(1, 2, page(2), true) {
		t.Fatal("prefetch evicted a hot page")
	}
	if got := c.Stats().PrefetchDropped; got != 1 {
		t.Fatalf("PrefetchDropped = %d, want 1", got)
	}
	if !c.Contains(1, 0) || !c.Contains(1, 1) {
		t.Fatal("hot pages were disturbed by refused prefetch")
	}

	// A demand eviction pass cools the survivors; now prefetch can land.
	c.Put(1, 3, page(3), false) // evicts page 0, cools page 1
	if !c.Put(1, 4, page(4), true) {
		t.Fatal("prefetch refused a cold unpinned frame")
	}
	if c.Contains(1, 3) == c.Contains(1, 1) {
		t.Fatal("exactly one of the two cold pages should have been replaced")
	}

	// Prefetched pages themselves are cold: a second prefetch may replace
	// the first, but never a pinned one.
	c.Pin(1, 4)
	if c.Put(1, 5, page(5), true) && !c.Contains(1, 4) {
		t.Fatal("prefetch evicted a pinned page")
	}
}

// TestPrefetchAccuracy checks the prefetched→demand-hit accounting.
func TestPrefetchAccuracy(t *testing.T) {
	c := newTest(8)
	for pg := 0; pg < 4; pg++ {
		if !c.Put(1, pg, page(byte(pg)), true) {
			t.Fatalf("prefetch put %d refused on empty cache", pg)
		}
	}
	mustGet(t, c, 1, 0, 0)
	mustGet(t, c, 1, 0, 0) // second hit must not double-count
	mustGet(t, c, 1, 2, 2)
	st := c.Stats()
	if st.PrefetchInserts != 4 || st.PrefetchHits != 2 {
		t.Fatalf("inserts/hits = %d/%d, want 4/2", st.PrefetchInserts, st.PrefetchHits)
	}
	if acc := st.PrefetchAccuracy(); acc != 0.5 {
		t.Fatalf("PrefetchAccuracy = %v, want 0.5", acc)
	}
}

// TestWriteCoherence checks that Write updates resident copies in place
// and leaves non-resident pages alone.
func TestWriteCoherence(t *testing.T) {
	c := newTest(4)
	c.Put(1, 0, page(1), false)
	c.Write(1, 0, page(9))
	mustGet(t, c, 1, 0, 9)
	c.Write(1, 7, page(5)) // not resident: must not populate
	if c.Contains(1, 7) {
		t.Fatal("Write populated a non-resident page")
	}
	st := c.Stats()
	if st.Writes != 1 {
		t.Fatalf("Writes = %d, want 1", st.Writes)
	}
}

// TestInvalidateFile checks per-file invalidation across files and pins.
func TestInvalidateFile(t *testing.T) {
	c := newTest(8)
	for pg := 0; pg < 3; pg++ {
		c.Put(1, pg, page(byte(pg)), false)
		c.Put(2, pg, page(byte(pg+10)), false)
	}
	c.Pin(1, 0) // invalidation must clear pins too
	c.InvalidateFile(1)
	for pg := 0; pg < 3; pg++ {
		if c.Contains(1, pg) {
			t.Fatalf("file 1 page %d survived invalidation", pg)
		}
		mustGet(t, c, 2, pg, byte(pg+10))
	}
	if got := c.Stats().Invalidations; got != 3 {
		t.Fatalf("Invalidations = %d, want 3", got)
	}
	// Freed frames are reusable without eviction.
	if !c.Put(1, 5, page(5), true) {
		t.Fatal("prefetch put refused after invalidation freed frames")
	}
}

// TestStatsSub checks delta arithmetic used for per-superstep reporting.
func TestStatsSub(t *testing.T) {
	c := newTest(4)
	c.Put(1, 0, page(0), false)
	before := c.Stats()
	c.Get(1, 0, nil)
	c.Get(1, 1, nil)
	d := c.Stats().Sub(before)
	if d.Hits != 1 || d.Misses != 1 {
		t.Fatalf("delta hits/misses = %d/%d, want 1/1", d.Hits, d.Misses)
	}
	if hr := d.HitRate(); hr != 0.5 {
		t.Fatalf("delta HitRate = %v, want 0.5", hr)
	}
}

// TestFromMB checks the CLI knob sizing and the disabled case.
func TestFromMB(t *testing.T) {
	if FromMB(0, testPage) != nil || FromMB(-3, testPage) != nil {
		t.Fatal("FromMB must return nil for mb <= 0")
	}
	c := FromMB(1, 16384)
	if got := c.CapacityPages(); got != 64 {
		t.Fatalf("1MB of 16K pages = %d frames, want 64", got)
	}
}

// TestConcurrentAccess hammers one cache from many goroutines; run with
// -race. Correctness bar: no races, no lost frames, data read back intact.
func TestConcurrentAccess(t *testing.T) {
	c := New(64, testPage)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]byte, testPage)
			for i := 0; i < 2000; i++ {
				pg := (w*7 + i) % 128
				fid := uint32(1 + i%3)
				switch i % 5 {
				case 0:
					c.Put(fid, pg, page(byte(pg)), i%2 == 0)
				case 1:
					if c.Get(fid, pg, dst) && dst[0] != byte(pg) {
						t.Errorf("torn read: page %d got %d", pg, dst[0])
						return
					}
				case 2:
					if c.Pin(fid, pg) {
						c.Unpin(fid, pg)
					}
				case 3:
					c.Write(fid, pg, page(byte(pg)))
				case 4:
					c.Invalidate(fid, pg)
				}
			}
		}(w)
	}
	wg.Wait()
	if r := c.Resident(); r > c.CapacityPages() {
		t.Fatalf("resident %d exceeds capacity %d", r, c.CapacityPages())
	}
}

// --- Prefetcher tests (need a real device behind the cache) ---

func newDevCache(t *testing.T, capacityPages int) (*ssd.Device, *Cache, *ssd.File) {
	t.Helper()
	dev := ssd.MustOpen(ssd.Config{PageSize: testPage, Channels: 4})
	c := NewSharded(capacityPages, testPage, 1)
	dev.AttachCache(c)
	f, err := dev.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32*testPage)
	for pg := 0; pg < 32; pg++ {
		copy(buf[pg*testPage:], page(byte(pg)))
	}
	if err := f.AppendPages(buf); err != nil {
		t.Fatal(err)
	}
	return dev, c, f
}

// TestPrefetcherWarmsAndPins checks the full warm→hit→release cycle: a
// prefetched page is served without device traffic and stays pinned until
// its epoch is released.
func TestPrefetcherWarmsAndPins(t *testing.T) {
	dev, c, f := newDevCache(t, 4)
	p := NewPrefetcher(8)
	defer p.Close()

	ep := p.BeginEpoch()
	p.Submit(ep, Job{File: f, Pages: []int{3, 4, 5}, Pin: true})
	p.WaitIdle()
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().PagesWarmed; got != 3 {
		t.Fatalf("PagesWarmed = %d, want 3", got)
	}

	before := dev.Stats()
	dst := make([]byte, 3*testPage)
	if err := f.ReadPages([]int{3, 4, 5}, dst); err != nil {
		t.Fatal(err)
	}
	if d := dev.Stats().Sub(before); d.PagesRead != 0 {
		t.Fatalf("prefetched read still hit the device: %d pages", d.PagesRead)
	}
	if dst[0] != 3 || dst[testPage] != 4 || dst[2*testPage] != 5 {
		t.Fatal("prefetched pages returned wrong data")
	}
	st := c.Stats()
	if st.PrefetchHits != 3 {
		t.Fatalf("PrefetchHits = %d, want 3", st.PrefetchHits)
	}

	// While the epoch is live the pinned pages must survive cache pressure.
	for pg := 10; pg < 20; pg++ {
		c.Put(f.ID(), pg, page(byte(pg)), false)
	}
	for _, pg := range []int{3, 4, 5} {
		if !c.Contains(f.ID(), pg) {
			t.Fatalf("pinned page %d evicted while epoch live", pg)
		}
	}
	p.ReleaseEpoch(ep)
	for pg := 20; pg < 30; pg++ {
		c.Put(f.ID(), pg, page(byte(pg)), false)
	}
	if c.Contains(f.ID(), 3) && c.Contains(f.ID(), 4) && c.Contains(f.ID(), 5) {
		t.Fatal("released pages survived heavy pressure — pins leaked")
	}
}

// TestPrefetcherExpand checks two-stage jobs: the follow-up pages computed
// by Expand are warmed under the same epoch.
func TestPrefetcherExpand(t *testing.T) {
	_, c, f := newDevCache(t, 8)
	p := NewPrefetcher(8)
	defer p.Close()

	ep := p.BeginEpoch()
	p.Submit(ep, Job{
		File:  f,
		Pages: []int{0},
		Expand: func() ([]Job, error) {
			return []Job{{File: f, Pages: []int{6, 7}}}, nil
		},
	})
	p.WaitIdle()
	for _, pg := range []int{0, 6, 7} {
		if !c.Contains(f.ID(), pg) {
			t.Fatalf("page %d not warmed", pg)
		}
	}
	if got := p.Stats().Jobs; got != 2 {
		t.Fatalf("Jobs = %d, want 2 (parent + expansion)", got)
	}
}

// TestPrefetcherCancel checks that a generation bump skips queued jobs.
func TestPrefetcherCancel(t *testing.T) {
	_, c, f := newDevCache(t, 8)
	p := NewPrefetcher(8)
	defer p.Close()

	// Block the worker with a job whose Expand waits, then queue work and
	// cancel it before the worker can get there.
	started := make(chan struct{})
	release := make(chan struct{})
	ep := p.BeginEpoch()
	p.Submit(ep, Job{Expand: func() ([]Job, error) {
		close(started)
		<-release
		return nil, nil
	}})
	<-started // ensure the blocking job is being processed, not queued
	p.Submit(ep, Job{File: f, Pages: []int{1, 2}})
	p.CancelPending()
	close(release)
	p.WaitIdle()
	if c.Contains(f.ID(), 1) || c.Contains(f.ID(), 2) {
		t.Fatal("cancelled job still warmed pages")
	}
	if got := p.Stats().Skipped; got != 1 {
		t.Fatalf("Skipped = %d, want 1", got)
	}
}

// TestPrefetcherQueueFull checks that Submit never blocks: overflow jobs
// are dropped and counted.
func TestPrefetcherQueueFull(t *testing.T) {
	_, _, f := newDevCache(t, 8)
	p := NewPrefetcher(1)
	defer p.Close()

	release := make(chan struct{})
	ep := p.BeginEpoch()
	p.Submit(ep, Job{Expand: func() ([]Job, error) { <-release; return nil, nil }})
	for i := 0; i < 10; i++ {
		p.Submit(ep, Job{File: f, Pages: []int{i % 8}})
	}
	close(release)
	p.WaitIdle()
	st := p.Stats()
	if st.Dropped == 0 {
		t.Fatal("expected overflow jobs to be dropped")
	}
	if st.Submitted+st.Dropped != 11 {
		t.Fatalf("submitted %d + dropped %d != 11", st.Submitted, st.Dropped)
	}
}

// TestPrefetcherDeviceError checks that injected device failures during
// background prefetch are recorded, not panicked, and the prefetcher keeps
// serving later jobs.
func TestPrefetcherDeviceError(t *testing.T) {
	dev, _, f := newDevCache(t, 8)
	p := NewPrefetcher(8)
	defer p.Close()

	dev.FailAfter(0, nil)
	ep := p.BeginEpoch()
	p.Submit(ep, Job{File: f, Pages: []int{1, 2, 3}, Pin: true})
	p.WaitIdle()
	if err := p.Err(); !errors.Is(err, ssd.ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", err)
	}
	if got := p.Stats().Errors; got != 1 {
		t.Fatalf("Errors = %d, want 1", got)
	}

	dev.FailAfter(-1, nil)
	p.Submit(ep, Job{File: f, Pages: []int{4}})
	p.WaitIdle()
	if got := p.Stats().PagesWarmed; got != 1 {
		t.Fatalf("prefetcher did not recover after fault cleared: warmed %d", got)
	}
	p.ReleaseEpoch(ep)
}

// TestPrefetcherLateEpochRelease checks the race where the consuming batch
// releases its epoch before the prefetch lands: late pins must be undone
// immediately so nothing stays pinned forever.
func TestPrefetcherLateEpochRelease(t *testing.T) {
	_, c, f := newDevCache(t, 2)
	p := NewPrefetcher(8)
	defer p.Close()

	gate := make(chan struct{})
	ep := p.BeginEpoch()
	p.Submit(ep, Job{
		Expand: func() ([]Job, error) {
			<-gate // hold the worker until after the release
			return []Job{{File: f, Pages: []int{1}, Pin: true}}, nil
		},
	})
	p.ReleaseEpoch(ep)
	close(gate)
	p.WaitIdle()

	// The page may be resident, but it must not be pinned: two demand
	// inserts must be able to claim both frames.
	c.Put(f.ID(), 10, page(10), false)
	c.Put(f.ID(), 11, page(11), false)
	if !c.Contains(f.ID(), 10) || !c.Contains(f.ID(), 11) {
		t.Fatal("late pin was never released")
	}
}

// TestShardDistribution sanity-checks that multi-shard capacity is fully
// usable: N distinct pages fit into an N-frame sharded cache within a
// small slack (hash skew can overflow individual shards).
func TestShardDistribution(t *testing.T) {
	const frames = 64
	c := NewSharded(frames, testPage, DefaultShards)
	for pg := 0; pg < frames; pg++ {
		c.Put(7, pg, page(byte(pg)), false)
	}
	if r := c.Resident(); r < frames*3/4 {
		t.Fatalf("only %d of %d frames used — shard hash badly skewed", r, frames)
	}
}

func BenchmarkPageCache(b *testing.B) {
	for _, hitPct := range []int{50, 90, 100} {
		b.Run(fmt.Sprintf("hit%d", hitPct), func(b *testing.B) {
			const pages = 256
			c := New(pages, 4096)
			data := make([]byte, 4096)
			for pg := 0; pg < pages; pg++ {
				c.Put(1, pg, data, false)
			}
			dst := make([]byte, 4096)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				span := pages * 100 / hitPct
				pg := i % span
				if !c.Get(1, pg, dst) {
					c.Put(1, pg, data, false)
				}
			}
		})
	}
}
