// Package extsort externally sorts 12-byte <dst, src, data> update records
// within a memory budget: it cuts the input into sorted runs on the
// device, then streams a k-way merge. An optional combine function merges
// records with equal destinations during both phases — GraFBoost's central
// trick for shortening its single log (the paper's [11]).
//
// The IO this package performs (run writes + run reads) is exactly the
// sorting overhead the paper's Fig 8 attributes GraFBoost's slowdown to
// when logs outgrow memory.
package extsort

import (
	"container/heap"
	"fmt"
	"sort"

	"multilogvc/internal/ssd"
)

// RecordBytes is the on-device record size.
const RecordBytes = 12

// Record is one update record.
type Record struct {
	Dst, Src, Data uint32
}

// Stats reports what the sort did.
type Stats struct {
	Input    uint64 // records in
	Output   uint64 // records out (smaller when combining)
	Runs     int    // sorted runs spilled to the device (0 = in-memory)
	Combined uint64 // records eliminated by combining
}

// Emit receives sorted output records.
type Emit func(r Record) error

// Source streams input records.
type Source func(yield func(r Record) error) error

// Sort sorts the records produced by src by destination within memBudget
// bytes of record memory, spilling runs to device files "<prefix>.run.N".
// When combine is non-nil, records with equal destinations are merged.
// Run files are deleted afterwards.
func Sort(dev *ssd.Device, prefix string, src Source, memBudget int64, combine func(a, b uint32) uint32, emit Emit) (Stats, error) {
	var st Stats
	capRecs := int(memBudget / RecordBytes)
	if capRecs < 2 {
		capRecs = 2
	}

	var runFiles []*ssd.File
	var runCounts []uint64
	buf := make([]Record, 0, capRecs)

	flushRun := func() error {
		if len(buf) == 0 {
			return nil
		}
		sortRecs(buf)
		if combine != nil {
			buf = combineSorted(buf, combine, &st)
		}
		name := fmt.Sprintf("%s.run.%d", prefix, len(runFiles))
		f, err := dev.OpenOrCreate(name)
		if err != nil {
			return err
		}
		if err := f.Truncate(); err != nil {
			return err
		}
		w := ssd.NewWriter(f)
		for _, r := range buf {
			if err := writeRec(w, r); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		runFiles = append(runFiles, f)
		runCounts = append(runCounts, uint64(len(buf)))
		buf = buf[:0]
		return nil
	}

	err := src(func(r Record) error {
		st.Input++
		buf = append(buf, r)
		if len(buf) >= capRecs {
			return flushRun()
		}
		return nil
	})
	if err != nil {
		return st, err
	}

	if len(runFiles) == 0 {
		// Everything fit in memory: no external phase.
		sortRecs(buf)
		if combine != nil {
			buf = combineSorted(buf, combine, &st)
		}
		for _, r := range buf {
			if err := emit(r); err != nil {
				return st, err
			}
			st.Output++
		}
		return st, nil
	}
	if err := flushRun(); err != nil {
		return st, err
	}
	st.Runs = len(runFiles)

	defer func() {
		for i := range runFiles {
			dev.Remove(fmt.Sprintf("%s.run.%d", prefix, i))
		}
	}()

	// K-way merge.
	h := &runHeap{}
	for i, f := range runFiles {
		rr := &runReader{r: ssd.NewReader(f, 16), remaining: runCounts[i]}
		if rr.advance() {
			heap.Push(h, rr)
		}
	}
	var pending Record
	havePending := false
	for h.Len() > 0 {
		rr := (*h)[0]
		cur := rr.cur
		if rr.advance() {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
		if combine != nil && havePending && pending.Dst == cur.Dst {
			pending.Data = combine(pending.Data, cur.Data)
			st.Combined++
			continue
		}
		if havePending {
			if err := emit(pending); err != nil {
				return st, err
			}
			st.Output++
		}
		pending = cur
		havePending = true
	}
	if havePending {
		if err := emit(pending); err != nil {
			return st, err
		}
		st.Output++
	}
	return st, nil
}

func sortRecs(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Dst < recs[j].Dst })
}

// combineSorted merges equal-destination neighbors in a dst-sorted slice.
func combineSorted(recs []Record, combine func(a, b uint32) uint32, st *Stats) []Record {
	if len(recs) == 0 {
		return recs
	}
	w := 0
	for i := 1; i < len(recs); i++ {
		if recs[i].Dst == recs[w].Dst {
			recs[w].Data = combine(recs[w].Data, recs[i].Data)
			st.Combined++
		} else {
			w++
			recs[w] = recs[i]
		}
	}
	return recs[:w+1]
}

func writeRec(w *ssd.Writer, r Record) error {
	if err := w.WriteU32(r.Dst); err != nil {
		return err
	}
	if err := w.WriteU32(r.Src); err != nil {
		return err
	}
	return w.WriteU32(r.Data)
}

// runReader streams one run during the merge.
type runReader struct {
	r         *ssd.Reader
	remaining uint64
	cur       Record
}

// advance loads the next record into cur; false at end of run.
func (rr *runReader) advance() bool {
	if rr.remaining == 0 {
		return false
	}
	var rec [RecordBytes]byte
	if err := rr.r.ReadFull(rec[:]); err != nil {
		return false
	}
	rr.cur = Record{
		Dst:  le32(rec[0:]),
		Src:  le32(rec[4:]),
		Data: le32(rec[8:]),
	}
	rr.remaining--
	return true
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

type runHeap []*runReader

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].cur.Dst < h[j].cur.Dst }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
