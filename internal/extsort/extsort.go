// Package extsort externally sorts 12-byte <dst, src, data> update records
// within a memory budget: it cuts the input into sorted runs on the
// device, then streams a k-way merge. An optional combine function merges
// records with equal destinations during both phases — GraFBoost's central
// trick for shortening its single log (the paper's [11]).
//
// The IO this package performs (run writes + run reads) is exactly the
// sorting overhead the paper's Fig 8 attributes GraFBoost's slowdown to
// when logs outgrow memory.
package extsort

import (
	"container/heap"
	"fmt"
	"sort"

	"multilogvc/internal/ssd"
)

// RecordBytes is the on-device record size.
const RecordBytes = 12

// Record is one update record.
type Record struct {
	Dst, Src, Data uint32
}

// Stats reports what the sort did.
type Stats struct {
	Input    uint64 // records in
	Output   uint64 // records out (smaller when combining)
	Runs     int    // sorted runs spilled to the device (0 = in-memory)
	Combined uint64 // records eliminated by combining
}

// Emit receives sorted output records.
type Emit func(r Record) error

// Source streams input records.
type Source func(yield func(r Record) error) error

// Sort sorts the records produced by src by destination within memBudget
// bytes of record memory, spilling runs to device files "<prefix>.run.N".
// When combine is non-nil, records with equal destinations are merged.
// Run files are deleted afterwards.
func Sort(dev *ssd.Device, prefix string, src Source, memBudget int64, combine func(a, b uint32) uint32, emit Emit) (Stats, error) {
	capRecs := int(memBudget / RecordBytes)
	if capRecs < 2 {
		capRecs = 2
	}

	rs := NewRuns(dev, prefix, combine)
	defer rs.Remove()
	buf := make([]Record, 0, capRecs)

	err := src(func(r Record) error {
		rs.st.Input++
		buf = append(buf, r)
		if len(buf) >= capRecs {
			err := rs.Flush(buf)
			buf = buf[:0]
			return err
		}
		return nil
	})
	if err != nil {
		return rs.st, err
	}

	if rs.NumRuns() == 0 {
		// Everything fit in memory: no external phase.
		sortRecs(buf)
		if combine != nil {
			buf = combineSorted(buf, combine, &rs.st)
		}
		for _, r := range buf {
			if err := emit(r); err != nil {
				return rs.st, err
			}
			rs.st.Output++
		}
		return rs.st, nil
	}
	if err := rs.Flush(buf); err != nil {
		return rs.st, err
	}

	m := rs.Merge()
	for {
		r, ok, err := m.Next()
		if err != nil {
			return rs.st, err
		}
		if !ok {
			break
		}
		if err := emit(r); err != nil {
			return rs.st, err
		}
		rs.st.Output++
	}
	return rs.st, nil
}

// Runs accumulates sorted runs on the device for a later streaming merge —
// the building block Sort (and sortgroup's spill path) is made of. Each
// Flush sorts one memory-budget-sized chunk and writes it as run file
// "<prefix>.run.N"; Merge streams the k-way merged record sequence. The
// caller owns the run files' lifetime and must call Remove when done.
type Runs struct {
	dev     *ssd.Device
	prefix  string
	combine func(a, b uint32) uint32
	scope   *ssd.IOScope
	files   []*ssd.File
	counts  []uint64
	st      Stats
}

// NewRuns prepares a run accumulator. combine, when non-nil, merges
// equal-destination records within each run and across runs during Merge.
func NewRuns(dev *ssd.Device, prefix string, combine func(a, b uint32) uint32) *Runs {
	return &Runs{dev: dev, prefix: prefix, combine: combine}
}

// SetScope attributes run-file IO to a per-run ssd.IOScope. Must be set
// before the first Flush; run files adopt the scope at creation.
func (rs *Runs) SetScope(sc *ssd.IOScope) { rs.scope = sc }

// Flush sorts recs and writes them as one run. The slice is sorted in
// place and may be reused by the caller afterwards. Empty input is a no-op.
func (rs *Runs) Flush(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	sortRecs(recs)
	if rs.combine != nil {
		recs = combineSorted(recs, rs.combine, &rs.st)
	}
	name := fmt.Sprintf("%s.run.%d", rs.prefix, len(rs.files))
	f, err := rs.dev.OpenOrCreate(name)
	if err != nil {
		return err
	}
	f = f.Scoped(rs.scope)
	if err := f.Truncate(); err != nil {
		return err
	}
	w := ssd.NewWriter(f)
	for _, r := range recs {
		if err := writeRec(w, r); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	rs.files = append(rs.files, f)
	rs.counts = append(rs.counts, uint64(len(recs)))
	rs.st.Runs = len(rs.files)
	return nil
}

// NumRuns returns how many runs have been flushed.
func (rs *Runs) NumRuns() int { return len(rs.files) }

// BytesWritten returns the record bytes written across all runs.
func (rs *Runs) BytesWritten() int64 {
	var n uint64
	for _, c := range rs.counts {
		n += c
	}
	return int64(n) * RecordBytes
}

// Stats returns the accumulated sort statistics.
func (rs *Runs) Stats() Stats { return rs.st }

// Remove deletes every run file. Safe to call more than once.
func (rs *Runs) Remove() {
	for i := range rs.files {
		rs.dev.Remove(fmt.Sprintf("%s.run.%d", rs.prefix, i))
	}
	rs.files = nil
	rs.counts = nil
}

// Merge starts the k-way merge over every flushed run and returns the
// streaming iterator. No further Flush calls are allowed afterwards.
func (rs *Runs) Merge() *Merger {
	m := &Merger{rs: rs, h: &runHeap{}}
	for i, f := range rs.files {
		rr := &runReader{r: ssd.NewReader(f, 16), remaining: rs.counts[i]}
		if rr.advance() {
			heap.Push(m.h, rr)
		} else if rr.err != nil {
			m.err = rr.err
		}
	}
	return m
}

// Merger streams the merged, destination-ordered record sequence of a run
// set. Unlike Sort's internal merge it is pull-based, so a consumer can
// process the output in memory-bounded chunks (sortgroup's spill mode).
type Merger struct {
	rs          *Runs
	h           *runHeap
	pending     Record
	havePending bool
	err         error
}

// Next returns the next merged record. The second result is false when the
// sequence is exhausted. Read errors on run files surface here — a Merger
// never silently truncates its output.
func (m *Merger) Next() (Record, bool, error) {
	if m.err != nil {
		return Record{}, false, m.err
	}
	for m.h.Len() > 0 {
		rr := (*m.h)[0]
		cur := rr.cur
		if rr.advance() {
			heap.Fix(m.h, 0)
		} else {
			if rr.err != nil {
				m.err = rr.err
				return Record{}, false, m.err
			}
			heap.Pop(m.h)
		}
		if m.rs.combine != nil && m.havePending && m.pending.Dst == cur.Dst {
			m.pending.Data = m.rs.combine(m.pending.Data, cur.Data)
			m.rs.st.Combined++
			continue
		}
		if m.havePending {
			m.pending, cur = cur, m.pending
			m.rs.st.Output++
			return cur, true, nil
		}
		m.pending = cur
		m.havePending = true
	}
	if m.havePending {
		m.havePending = false
		m.rs.st.Output++
		return m.pending, true, nil
	}
	return Record{}, false, nil
}

// Close releases the merger and deletes the underlying run files.
func (m *Merger) Close() {
	*m.h = (*m.h)[:0]
	m.havePending = false
	m.rs.Remove()
}

func sortRecs(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Dst < recs[j].Dst })
}

// combineSorted merges equal-destination neighbors in a dst-sorted slice.
func combineSorted(recs []Record, combine func(a, b uint32) uint32, st *Stats) []Record {
	if len(recs) == 0 {
		return recs
	}
	w := 0
	for i := 1; i < len(recs); i++ {
		if recs[i].Dst == recs[w].Dst {
			recs[w].Data = combine(recs[w].Data, recs[i].Data)
			st.Combined++
		} else {
			w++
			recs[w] = recs[i]
		}
	}
	return recs[:w+1]
}

func writeRec(w *ssd.Writer, r Record) error {
	if err := w.WriteU32(r.Dst); err != nil {
		return err
	}
	if err := w.WriteU32(r.Src); err != nil {
		return err
	}
	return w.WriteU32(r.Data)
}

// runReader streams one run during the merge.
type runReader struct {
	r         *ssd.Reader
	remaining uint64
	cur       Record
	err       error // sticky read failure; checked by Merger
}

// advance loads the next record into cur; false at end of run or on a read
// error (recorded in err so the merge can surface it).
func (rr *runReader) advance() bool {
	if rr.remaining == 0 {
		return false
	}
	var rec [RecordBytes]byte
	if err := rr.r.ReadFull(rec[:]); err != nil {
		rr.err = err
		return false
	}
	rr.cur = Record{
		Dst:  le32(rec[0:]),
		Src:  le32(rec[4:]),
		Data: le32(rec[8:]),
	}
	rr.remaining--
	return true
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

type runHeap []*runReader

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].cur.Dst < h[j].cur.Dst }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
