package extsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"multilogvc/internal/ssd"
)

func dev() *ssd.Device {
	return ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2})
}

func sliceSource(recs []Record) Source {
	return func(yield func(Record) error) error {
		for _, r := range recs {
			if err := yield(r); err != nil {
				return err
			}
		}
		return nil
	}
}

func randomRecs(rng *rand.Rand, n, dstRange int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Dst:  uint32(rng.Intn(dstRange)),
			Src:  rng.Uint32(),
			Data: uint32(rng.Intn(100)),
		}
	}
	return recs
}

func TestInMemorySort(t *testing.T) {
	d := dev()
	recs := []Record{{Dst: 5}, {Dst: 1}, {Dst: 3}}
	var out []Record
	st, err := Sort(d, "s", sliceSource(recs), 1<<20, nil, func(r Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 0 {
		t.Fatalf("in-memory sort spilled %d runs", st.Runs)
	}
	if len(out) != 3 || out[0].Dst != 1 || out[1].Dst != 3 || out[2].Dst != 5 {
		t.Fatalf("out = %v", out)
	}
	if st.Input != 3 || st.Output != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExternalSortSpillsRuns(t *testing.T) {
	d := dev()
	rng := rand.New(rand.NewSource(1))
	recs := randomRecs(rng, 1000, 500)
	// Budget for ~50 records per run.
	var out []Record
	st, err := Sort(d, "s", sliceSource(recs), 50*RecordBytes, nil, func(r Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs < 2 {
		t.Fatalf("expected multiple runs, got %d", st.Runs)
	}
	if len(out) != 1000 {
		t.Fatalf("output %d records, want 1000", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Dst > out[i].Dst {
			t.Fatal("output not sorted")
		}
	}
	// Run files cleaned up.
	for _, name := range d.ListFiles() {
		t.Fatalf("leftover file %q", name)
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	d := dev()
	rng := rand.New(rand.NewSource(2))
	recs := randomRecs(rng, 700, 60)
	counts := make(map[Record]int)
	for _, r := range recs {
		counts[r]++
	}
	_, err := Sort(d, "s", sliceSource(recs), 64*RecordBytes, nil, func(r Record) error {
		counts[r]--
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, c := range counts {
		if c != 0 {
			t.Fatalf("record %v count mismatch %d", r, c)
		}
	}
}

func TestCombineInMemory(t *testing.T) {
	d := dev()
	recs := []Record{{Dst: 1, Data: 10}, {Dst: 1, Data: 20}, {Dst: 2, Data: 5}}
	var out []Record
	st, err := Sort(d, "s", sliceSource(recs), 1<<20,
		func(a, b uint32) uint32 { return a + b },
		func(r Record) error { out = append(out, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Data != 30 || out[1].Data != 5 {
		t.Fatalf("out = %v", out)
	}
	if st.Combined != 1 || st.Output != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCombineExternalMatchesSum(t *testing.T) {
	d := dev()
	rng := rand.New(rand.NewSource(3))
	recs := randomRecs(rng, 2000, 30)
	want := make(map[uint32]uint32)
	for _, r := range recs {
		want[r.Dst] += r.Data
	}
	got := make(map[uint32]uint32)
	st, err := Sort(d, "s", sliceSource(recs), 64*RecordBytes,
		func(a, b uint32) uint32 { return a + b },
		func(r Record) error {
			if _, dup := got[r.Dst]; dup {
				t.Fatalf("dst %d emitted twice", r.Dst)
			}
			got[r.Dst] = r.Data
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs < 2 {
		t.Fatalf("expected external sort, runs = %d", st.Runs)
	}
	for dst, sum := range want {
		if got[dst] != sum {
			t.Fatalf("dst %d sum = %d, want %d", dst, got[dst], sum)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	d := dev()
	st, err := Sort(d, "s", sliceSource(nil), 1<<20, nil, func(Record) error {
		t.Fatal("emit on empty input")
		return nil
	})
	if err != nil || st.Input != 0 || st.Output != 0 {
		t.Fatalf("st = %+v err = %v", st, err)
	}
}

// Property: external sort output equals sort.Slice of the input.
func TestQuickSortMatchesStdlib(t *testing.T) {
	f := func(seed int64, budgetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		recs := randomRecs(rng, n, 50)
		budget := int64(budgetRaw%40+2) * RecordBytes
		var out []Record
		_, err := Sort(dev(), "s", sliceSource(recs), budget, nil, func(r Record) error {
			out = append(out, r)
			return nil
		})
		if err != nil || len(out) != n {
			return false
		}
		want := make([]Record, n)
		copy(want, recs)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Dst < want[j].Dst })
		// Compare dst sequence (full record order within a dst is
		// unspecified) and multiset equality.
		for i := range out {
			if out[i].Dst != want[i].Dst {
				return false
			}
		}
		counts := make(map[Record]int)
		for _, r := range out {
			counts[r]++
		}
		for _, r := range recs {
			counts[r]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
