// WAL shipping: the primitives replication is built from. The log's
// durable frame window (everything appended but not yet truncated by a
// merge checkpoint) is the shippable unit of truth — a primary serves
// verbatim CRC-framed batches out of it with Frames/EncodeFrames, and a
// follower decodes the stream with a TailDecoder and re-logs it at the
// original sequence numbers with AppendAt, so its own replay, torn-tail
// truncation, and merge checkpoints work unchanged.
package wal

import (
	"errors"
	"fmt"
	"time"
)

// ErrSeqGap reports a sequence discontinuity in a shipped stream: the
// requested frames were already truncated by a merge checkpoint on the
// primary, or a batch arrived that does not extend the follower's log
// contiguously. A follower hitting this cannot catch up incrementally
// and must be re-seeded from a fresh copy of the primary's state.
var ErrSeqGap = errors.New("wal: sequence gap")

// ErrBadShipFrame reports an undecodable frame in the middle of a
// shipped stream. Unlike a torn tail on disk (expected after a crash,
// silently truncated), mid-stream corruption on the wire is never
// acceptable: the transport mangled acknowledged data.
var ErrBadShipFrame = errors.New("wal: corrupt shipped frame")

// Frames returns up to max durable records starting at sequence number
// from, plus the log's highest durable sequence number (so the caller
// can compute its lag even when the batch is empty). Requesting frames
// below the durable window — they were folded into the CSR and
// truncated — fails with ErrSeqGap naming the lowest shippable seq.
// max <= 0 means no limit.
func (l *Log) Frames(from uint64, max int) (recs []Record, lastSeq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return nil, 0, l.failed
	}
	lastSeq = l.st.LastSeq
	if from == 0 {
		from = 1
	}
	lowest := lastSeq + 1 // empty window: only the next future seq is shippable
	if len(l.live) > 0 {
		lowest = l.live[0].Seq
	}
	if from < lowest {
		return nil, lastSeq, fmt.Errorf("%w: frames from %d requested but log begins at %d (truncated by merge checkpoint)", ErrSeqGap, from, lowest)
	}
	if len(l.live) == 0 || from > l.live[len(l.live)-1].Seq {
		return nil, lastSeq, nil
	}
	// live is seq-contiguous (append order, truncation keeps a suffix).
	i := int(from - l.live[0].Seq)
	n := len(l.live) - i
	if max > 0 && n > max {
		n = max
	}
	recs = append(recs, l.live[i:i+n]...)
	return recs, lastSeq, nil
}

// EncodeFrames encodes records into the verbatim on-device frame format
// (magic, payload, CRC32C) — the wire format of a shipped batch.
func EncodeFrames(recs []Record) []byte {
	b := make([]byte, 0, len(recs)*FrameSize)
	for _, r := range recs {
		b = appendFrame(b, r)
	}
	return b
}

// AppendAt writes records that already carry sequence numbers — shipped
// from a primary — and blocks until they are durable, under the same
// group-commit and sticky-failure rules as Append. The batch must extend
// the log contiguously: recs[0].Seq == last assigned seq + 1 and each
// subsequent record increments by one, else ErrSeqGap and nothing is
// logged.
func (l *Log) AppendAt(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if recs[0].Seq != l.nextSeq+1 {
		err := fmt.Errorf("%w: batch starts at seq %d, log expects %d", ErrSeqGap, recs[0].Seq, l.nextSeq+1)
		l.mu.Unlock()
		return err
	}
	for i, r := range recs {
		if r.Seq != recs[0].Seq+uint64(i) {
			err := fmt.Errorf("%w: batch not contiguous at index %d (seq %d)", ErrSeqGap, i, r.Seq)
			l.mu.Unlock()
			return err
		}
	}
	for _, r := range recs {
		l.pendB = appendFrame(l.pendB, r)
	}
	l.nextSeq = recs[len(recs)-1].Seq
	l.pend = append(l.pend, recs...)

	if l.opts.FlushEvery <= 0 {
		err := l.flushLocked()
		l.mu.Unlock()
		return err
	}
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, ch)
	if l.timer == nil {
		l.timer = time.AfterFunc(l.opts.FlushEvery, l.flushTimer)
	}
	l.mu.Unlock()
	return <-ch
}

// SetNextSeq raises the next sequence number the log will assign (or
// accept via AppendAt) to seq+1, if it is not already past it. Callers
// use it after replay to floor the stream at a merge checkpoint: frames
// 1..FoldedSeq were truncated, so a restarted log must not re-issue
// their numbers — fatal for replication, where seqs are identity.
func (l *Log) SetNextSeq(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.nextSeq {
		l.nextSeq = seq
	}
	if seq > l.st.LastSeq {
		// The folded prefix is durable (it lives in the CSR files now);
		// LastSeq keeps meaning "highest durable seq" across the floor.
		l.st.LastSeq = seq
	}
}

// TailDecoder incrementally decodes a shipped WAL frame stream that
// arrives in arbitrary chunks (network reads, test-injected disconnect
// points). Complete frames are validated (magic, CRC32C, opcode) and
// checked for sequence continuity; a trailing partial frame stays
// buffered until the next Feed. A disconnect mid-frame therefore always
// yields a clean prefix: every record handed out is valid and
// contiguous, and the cut-off bytes are discarded by Reset.
type TailDecoder struct {
	buf  []byte
	next uint64 // expected seq of the next frame; 0 accepts any start
}

// NewTailDecoder returns a decoder expecting the stream to start at
// sequence number next (0 accepts any starting seq).
func NewTailDecoder(next uint64) *TailDecoder {
	return &TailDecoder{next: next}
}

// Feed appends chunk to the internal buffer and returns every complete,
// valid, contiguous frame now available. An undecodable frame fails with
// ErrBadShipFrame, a sequence discontinuity with ErrSeqGap; in both
// cases the records already returned by earlier Feeds remain the valid
// prefix and the decoder refuses further input until Reset.
func (d *TailDecoder) Feed(chunk []byte) ([]Record, error) {
	d.buf = append(d.buf, chunk...)
	var recs []Record
	off := 0
	for off+FrameSize <= len(d.buf) {
		r, ok := decodeFrame(d.buf[off : off+FrameSize])
		if !ok {
			d.buf = d.buf[:0]
			return recs, fmt.Errorf("%w at stream offset %d", ErrBadShipFrame, off)
		}
		if d.next != 0 && r.Seq != d.next {
			d.buf = d.buf[:0]
			return recs, fmt.Errorf("%w: shipped frame has seq %d, expected %d", ErrSeqGap, r.Seq, d.next)
		}
		recs = append(recs, r)
		d.next = r.Seq + 1
		off += FrameSize
	}
	d.buf = append(d.buf[:0], d.buf[off:]...)
	return recs, nil
}

// Pending reports buffered bytes of an incomplete trailing frame.
func (d *TailDecoder) Pending() int { return len(d.buf) }

// Next returns the sequence number the decoder expects next.
func (d *TailDecoder) Next() uint64 { return d.next }

// Reset discards any buffered partial frame and re-arms the decoder to
// expect sequence number next — the reconnect path: a follower restarts
// the stream at its applied seq + 1 and must not splice a stale partial
// frame from the dead connection onto the new one.
func (d *TailDecoder) Reset(next uint64) {
	d.buf = d.buf[:0]
	d.next = next
}
