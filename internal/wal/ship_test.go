package wal

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"multilogvc/internal/ssd"
)

func shipDev(t *testing.T) *ssd.Device {
	t.Helper()
	return ssd.MustOpen(ssd.Config{PageSize: 256, Channels: 2})
}

func mkRecs(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		op := OpAdd
		if rng.Intn(4) == 0 {
			op = OpDel
		}
		recs[i] = Record{Op: op, Src: rng.Uint32() % 1000, Dst: rng.Uint32() % 1000, W: rng.Uint32() % 100}
	}
	return recs
}

func TestFramesWindowAndGap(t *testing.T) {
	dev := shipDev(t)
	l, _, err := Open(dev, "g", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(mkRecs(10, 1)); err != nil {
		t.Fatal(err)
	}

	recs, last, err := l.Frames(1, 0)
	if err != nil || len(recs) != 10 || last != 10 {
		t.Fatalf("Frames(1,0) = %d recs, last %d, err %v; want 10, 10, nil", len(recs), last, err)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("rec %d has seq %d", i, r.Seq)
		}
	}

	// Partial windows and the max cap.
	recs, _, err = l.Frames(7, 2)
	if err != nil || len(recs) != 2 || recs[0].Seq != 7 {
		t.Fatalf("Frames(7,2) = %+v, %v", recs, err)
	}
	// Beyond the end: empty batch, lastSeq still reported.
	recs, last, err = l.Frames(11, 0)
	if err != nil || len(recs) != 0 || last != 10 {
		t.Fatalf("Frames(11,0) = %d recs, last %d, err %v", len(recs), last, err)
	}

	// Truncate through 6 (a merge checkpoint): 1..6 are gone, asking for
	// them is a classified gap that names the window start.
	if err := l.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Frames(3, 0); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("Frames below window: err = %v, want ErrSeqGap", err)
	}
	recs, last, err = l.Frames(7, 0)
	if err != nil || len(recs) != 4 || last != 10 {
		t.Fatalf("Frames(7,0) after truncate = %d recs, last %d, err %v", len(recs), last, err)
	}
}

func TestAppendAtContiguityAndReplay(t *testing.T) {
	devP := shipDev(t)
	lp, _, err := Open(devP, "p", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lp.Append(mkRecs(20, 2)); err != nil {
		t.Fatal(err)
	}
	shipped, _, err := lp.Frames(1, 0)
	if err != nil {
		t.Fatal(err)
	}

	devF := shipDev(t)
	lf, _, err := Open(devF, "f", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A batch that skips ahead must be refused.
	if err := lf.AppendAt(shipped[5:]); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("AppendAt(skip) err = %v, want ErrSeqGap", err)
	}
	// A non-contiguous batch must be refused.
	bad := append(append([]Record(nil), shipped[:3]...), shipped[5])
	if err := lf.AppendAt(bad); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("AppendAt(non-contiguous) err = %v, want ErrSeqGap", err)
	}
	// Ship in two contiguous halves; the follower log replays identically.
	if err := lf.AppendAt(shipped[:12]); err != nil {
		t.Fatal(err)
	}
	if err := lf.AppendAt(shipped[12:]); err != nil {
		t.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	lf2, recs, err := Open(devF, "f", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lf2.Close()
	if len(recs) != len(shipped) {
		t.Fatalf("follower replay: %d recs, want %d", len(recs), len(shipped))
	}
	for i := range recs {
		if recs[i] != shipped[i] {
			t.Fatalf("follower rec %d = %+v, want %+v", i, recs[i], shipped[i])
		}
	}
}

func TestSetNextSeqFloorsAssignment(t *testing.T) {
	dev := shipDev(t)
	l, _, err := Open(dev, "g", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetNextSeq(40)
	first, last, err := l.Append(mkRecs(3, 3))
	if err != nil || first != 41 || last != 43 {
		t.Fatalf("Append after SetNextSeq(40): first %d last %d err %v", first, last, err)
	}
	// Lowering is a no-op.
	l.SetNextSeq(10)
	if _, last, _ = l.Append(mkRecs(1, 4)); last != 44 {
		t.Fatalf("seq regressed to %d after SetNextSeq(10)", last)
	}
}

// TestTailDecoderCleanPrefix is the shipped-stream property test: a WAL
// frame stream cut at ANY byte offset (a disconnect or kill mid-ship)
// and delivered in arbitrary chunk sizes must always decode to a clean
// prefix — every frame valid, seqs contiguous from the starting point,
// no duplicates, no frame past the cut — and a corrupted byte inside the
// delivered prefix must be detected, never applied.
func TestTailDecoderCleanPrefix(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		recs := mkRecs(n, seed)
		for i := range recs {
			recs[i].Seq = uint64(i + 1)
		}
		stream := EncodeFrames(recs)

		cut := rng.Intn(len(stream) + 1) // disconnect point, in bytes
		corrupt := -1
		if rng.Intn(3) == 0 && cut > 0 {
			corrupt = rng.Intn(cut)
			stream[corrupt] ^= 0xFF
		}

		d := NewTailDecoder(1)
		var got []Record
		var feedErr error
		for off := 0; off < cut && feedErr == nil; {
			sz := 1 + rng.Intn(2*FrameSize)
			if off+sz > cut {
				sz = cut - off
			}
			var batch []Record
			batch, feedErr = d.Feed(stream[off : off+sz])
			got = append(got, batch...)
			off += sz
		}

		wantFull := cut / FrameSize // complete frames before the cut
		if corrupt >= 0 {
			// Nothing at or past the corrupted frame may be emitted, and
			// the corruption must have been reported if it sat inside a
			// fully delivered frame.
			corruptFrame := corrupt / FrameSize
			if len(got) > corruptFrame {
				t.Fatalf("seed %d: %d recs emitted past corrupt frame %d", seed, len(got), corruptFrame)
			}
			if wantFull > corruptFrame && feedErr == nil {
				t.Fatalf("seed %d: corrupt byte %d inside delivered frame, no error", seed, corrupt)
			}
		} else {
			if feedErr != nil {
				t.Fatalf("seed %d: clean stream errored: %v", seed, feedErr)
			}
			if len(got) != wantFull {
				t.Fatalf("seed %d: cut at %d gave %d recs, want %d", seed, cut, len(got), wantFull)
			}
		}
		// The clean-prefix property: whatever was emitted is exactly
		// recs[:len(got)] — valid, contiguous, no duplicates.
		for i, r := range got {
			if r != recs[i] {
				t.Fatalf("seed %d: rec %d = %+v, want %+v", seed, i, r, recs[i])
			}
		}

		// Reconnect: Reset at applied+1 and replay the rest in one chunk
		// (only meaningful when no corruption truncated the stream).
		if corrupt < 0 {
			d.Reset(uint64(len(got)) + 1)
			rest, err := d.Feed(stream[len(got)*FrameSize:])
			if err != nil {
				t.Fatalf("seed %d: reconnect feed: %v", seed, err)
			}
			got = append(got, rest...)
			if len(got) != n {
				t.Fatalf("seed %d: after reconnect %d recs, want %d", seed, len(got), n)
			}
			for i, r := range got {
				if r != recs[i] {
					t.Fatalf("seed %d: after reconnect rec %d mismatch", seed, i)
				}
			}
		}
	}
}

func TestTailDecoderSeqGap(t *testing.T) {
	recs := mkRecs(5, 9)
	for i := range recs {
		recs[i].Seq = uint64(i + 10) // stream starts at 10
	}
	d := NewTailDecoder(4) // follower expects 4: shipped stream skipped ahead
	if _, err := d.Feed(EncodeFrames(recs)); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("err = %v, want ErrSeqGap", err)
	}
	// Zero accepts any start, then enforces continuity.
	d = NewTailDecoder(0)
	out, err := d.Feed(EncodeFrames(recs))
	if err != nil || len(out) != 5 || out[0].Seq != 10 {
		t.Fatalf("open start: %d recs err %v", len(out), err)
	}
	if d.Next() != 15 {
		t.Fatalf("Next = %d, want 15", d.Next())
	}
}

// TestShipConcurrentWithAppends races Frames against live Appends — the
// primary serves /replicate while ingesting — and checks every shipped
// batch is internally contiguous. Run under -race in CI.
func TestShipConcurrentWithAppends(t *testing.T) {
	dev := shipDev(t)
	l, _, err := Open(dev, "g", Options{FlushEvery: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			if _, _, err := l.Append(mkRecs(3, int64(i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var from uint64 = 1
	for {
		recs, last, err := l.Frames(from, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range recs {
			if r.Seq != from+uint64(i) {
				t.Fatalf("shipped batch not contiguous: rec %d seq %d, from %d", i, r.Seq, from)
			}
		}
		from += uint64(len(recs))
		if last >= 120 && from > 120 {
			break
		}
		select {
		case <-done:
			if recs == nil && from > 120 {
				break
			}
		default:
		}
	}
	<-done
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
