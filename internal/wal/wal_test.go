package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"multilogvc/internal/ssd"
)

func testDev(t *testing.T) *ssd.Device {
	t.Helper()
	return ssd.MustOpen(ssd.Config{PageSize: 128, Channels: 2})
}

func mustOpen(t *testing.T, dev *ssd.Device, name string, opts Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dev, name, opts)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l, recs
}

func addRec(src, dst uint32) Record { return Record{Op: OpAdd, Src: src, Dst: dst, W: 1} }

// TestAppendReplayRoundtrip pins the core durability loop: appended
// records come back from replay in order, with the sequence numbers
// Append reported, across several append batches and a reopen.
func TestAppendReplayRoundtrip(t *testing.T) {
	dev := testDev(t)
	l, recs := mustOpen(t, dev, "g.wal", Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	var want []Record
	for b := 0; b < 5; b++ {
		batch := make([]Record, b+1)
		for i := range batch {
			batch[i] = addRec(uint32(b), uint32(i))
		}
		first, last, err := l.Append(batch)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if int(last-first)+1 != len(batch) {
			t.Fatalf("batch %d: seq span [%d,%d] for %d records", b, first, last, len(batch))
		}
		want = append(want, batch...)
	}
	// Abandon without Close — a kill -9 analogue; everything Append
	// acknowledged must already be durable.
	l2, got := mustOpen(t, dev, "g.wal", Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d of %d records", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
		if got[i].Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, got[i].Seq)
		}
	}
	// New appends continue the sequence.
	first, _, err := l2.Append([]Record{addRec(9, 9)})
	if err != nil || first != uint64(len(want))+1 {
		t.Fatalf("post-replay append: first=%d err=%v", first, err)
	}
}

// TestGroupCommitCoalesces drives concurrent appends through one flush
// window and checks they share device writes: far fewer flushes than
// appends, and every record durable afterwards.
func TestGroupCommitCoalesces(t *testing.T) {
	dev := testDev(t)
	l, _ := mustOpen(t, dev, "g.wal", Options{FlushEvery: 2 * time.Millisecond})
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = l.Append([]Record{addRec(uint32(i), 1)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("appends=%d want %d", st.Appends, n)
	}
	if st.Flushes >= n {
		t.Fatalf("group commit did not coalesce: %d flushes for %d appends", st.Flushes, n)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, recs := mustOpen(t, dev, "g.wal", Options{})
	if len(recs) != n {
		t.Fatalf("replayed %d of %d", len(recs), n)
	}
}

// TestTornTailTruncated simulates a crash mid group-commit: garbage
// bytes after the valid prefix. Replay must accept exactly the prefix,
// report the tear, and physically truncate it so a second replay is
// clean.
func TestTornTailTruncated(t *testing.T) {
	dev := testDev(t)
	l, _ := mustOpen(t, dev, "g.wal", Options{})
	for i := 0; i < 3; i++ {
		if _, _, err := l.Append([]Record{addRec(uint32(i), 2)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Scribble a half-written frame past the durable end.
	f, err := dev.OpenFile("g.wal")
	if err != nil {
		t.Fatal(err)
	}
	sz := f.Size()
	ps := dev.PageSize()
	page := make([]byte, ps)
	if f.NumPages() > 0 {
		if err := f.ReadPageRange(f.NumPages()-1, 1, page); err != nil {
			t.Fatal(err)
		}
	}
	off := int(sz) % ps
	copy(page[off:], []byte{0xE7, OpAdd, 0xDE, 0xAD}) // torn frame start
	if err := f.WritePageRange(f.NumPages()-1, page); err != nil {
		t.Fatal(err)
	}
	f.SetSize(sz + 4)

	l2, recs := mustOpen(t, dev, "g.wal", Options{})
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if st := l2.Stats(); st.TornTails != 1 {
		t.Fatalf("torn tails=%d want 1", st.TornTails)
	}
	// The tear is gone from the device: a third open sees a clean log.
	l3, recs := mustOpen(t, dev, "g.wal", Options{})
	if len(recs) != 3 {
		t.Fatalf("second replay: %d records", len(recs))
	}
	if st := l3.Stats(); st.TornTails != 0 {
		t.Fatalf("tear persisted: torn tails=%d", st.TornTails)
	}
}

// TestReplayCorruptPage pins that a frame sitting on a page the device
// reports corrupt surfaces as an open error (classified, never silently
// skipped mid-stream).
func TestReplayCorruptPage(t *testing.T) {
	dev := testDev(t)
	l, _ := mustOpen(t, dev, "g.wal", Options{})
	recs := make([]Record, 40) // spans several 128-byte pages
	for i := range recs {
		recs[i] = addRec(uint32(i), 3)
	}
	if _, _, err := l.Append(recs); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := dev.CorruptStoredPage("g.wal", 0); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dev, "g.wal", Options{})
	if !errors.Is(err, ssd.ErrCorruptPage) {
		t.Fatalf("open over corrupt page: %v", err)
	}
}

// TestTruncateThrough checkpoints a prefix and verifies the survivors
// are compacted in place and replay intact.
func TestTruncateThrough(t *testing.T) {
	dev := testDev(t)
	l, _ := mustOpen(t, dev, "g.wal", Options{})
	for i := 0; i < 10; i++ {
		if _, _, err := l.Append([]Record{addRec(uint32(i), 4)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.TruncateThrough(7); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if st := l.Stats(); st.Truncates != 1 {
		t.Fatalf("truncates=%d", st.Truncates)
	}
	// Idempotent: nothing at or below 7 remains.
	if err := l.TruncateThrough(7); err != nil {
		t.Fatalf("re-truncate: %v", err)
	}
	_, recs := mustOpen(t, dev, "g.wal", Options{})
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(8+i) {
			t.Fatalf("survivor %d: seq %d", i, r.Seq)
		}
	}
}

// TestFlushFailureIsSticky pins the no-gaps rule: once a group commit
// fails, the log acknowledges nothing further until reopened — a later
// flush succeeding would otherwise make an unacknowledged hole durable.
func TestFlushFailureIsSticky(t *testing.T) {
	dev := testDev(t)
	l, _ := mustOpen(t, dev, "g.wal", Options{})
	if _, _, err := l.Append([]Record{addRec(1, 1)}); err != nil {
		t.Fatalf("append: %v", err)
	}
	dev.FailAfter(0, ssd.ErrInjected)
	if _, _, err := l.Append([]Record{addRec(2, 2)}); !errors.Is(err, ssd.ErrInjected) {
		t.Fatalf("append over failing device: %v", err)
	}
	dev.FailAfter(-1, nil) // heal the device; the log must stay down
	if _, _, err := l.Append([]Record{addRec(3, 3)}); !errors.Is(err, ssd.ErrInjected) {
		t.Fatalf("sticky failure not sticky: %v", err)
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after failed flush")
	}
	// Reopen recovers: the acknowledged prefix is there, appends resume.
	l2, recs := mustOpen(t, dev, "g.wal", Options{})
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	if _, _, err := l2.Append([]Record{addRec(4, 4)}); err != nil {
		t.Fatalf("post-reopen append: %v", err)
	}
}

// TestAppendAfterClose pins ErrClosed.
func TestAppendAfterClose(t *testing.T) {
	dev := testDev(t)
	l, _ := mustOpen(t, dev, "g.wal", Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]Record{addRec(1, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

// TestDecodeFramesSeqDiscontinuity pins that replay stops at a sequence
// gap even when the frames themselves checksum clean (a stale frame
// surviving from a previous log generation).
func TestDecodeFramesSeqDiscontinuity(t *testing.T) {
	var b []byte
	b = appendFrame(b, Record{Op: OpAdd, Src: 1, Dst: 2, Seq: 5})
	b = appendFrame(b, Record{Op: OpAdd, Src: 3, Dst: 4, Seq: 6})
	b = appendFrame(b, Record{Op: OpAdd, Src: 5, Dst: 6, Seq: 9}) // gap
	recs, consumed, torn := DecodeFrames(b)
	if len(recs) != 2 || consumed != 2*FrameSize || !torn {
		t.Fatalf("recs=%d consumed=%d torn=%v", len(recs), consumed, torn)
	}
}

// FuzzWALDecode throws arbitrary byte streams at the frame decoder. The
// invariants: never panic, consumed <= len(buf) and a multiple of the
// frame size, every accepted record re-encodes to exactly the consumed
// prefix (so replay-then-rewrite is lossless), and sequence numbers are
// contiguous.
func FuzzWALDecode(f *testing.F) {
	var good []byte
	for i := uint64(1); i <= 3; i++ {
		good = appendFrame(good, Record{Op: OpAdd, Src: uint32(i), Dst: uint32(i + 1), W: 7, Seq: i})
	}
	f.Add(good)
	f.Add(append(append([]byte{}, good...), 0xE7, 0x01, 0xFF)) // torn tail
	f.Add(make([]byte, 256))                                   // zero padding only
	f.Add([]byte{frameMagic})
	f.Fuzz(func(t *testing.T, buf []byte) {
		recs, consumed, torn := DecodeFrames(buf)
		if consumed > len(buf) || consumed%FrameSize != 0 {
			t.Fatalf("consumed=%d len=%d", consumed, len(buf))
		}
		if len(recs)*FrameSize != consumed {
			t.Fatalf("%d records but %d bytes consumed", len(recs), consumed)
		}
		var re []byte
		for i, r := range recs {
			if r.Op != OpAdd && r.Op != OpDel {
				t.Fatalf("record %d: invalid op %d", i, r.Op)
			}
			if i > 0 && r.Seq != recs[i-1].Seq+1 {
				t.Fatalf("record %d: seq %d after %d", i, r.Seq, recs[i-1].Seq)
			}
			re = appendFrame(re, r)
		}
		if string(re) != string(buf[:consumed]) {
			t.Fatal("accepted prefix does not re-encode identically")
		}
		if !torn {
			for _, b := range buf[consumed:] {
				if b != 0 {
					t.Fatal("nonzero tail not reported torn")
				}
			}
		}
		_ = fmt.Sprintf("%v", recs) // records must be printable garbage-free
	})
}
