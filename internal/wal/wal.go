// Package wal is the edge-mutation write-ahead log behind durable
// streaming ingest (csr.OpenIngest): an append-only stream of fixed-size
// CRC32C-framed mutation records on the ssd device model.
//
// Durability contract: Append returns only after its records are on the
// device, so a mutation acknowledged to a client survives kill -9. Group
// commit keeps that affordable — appends arriving within FlushEvery
// coalesce into one page-batch write (the fsync analogue on the device
// model); FlushEvery <= 0 degenerates to a synchronous flush per append.
//
// Replay contract: Open scans the stream and accepts the longest prefix
// of frames whose magic byte, CRC32C, and sequence continuity all hold.
// The first bad frame marks a torn tail (a crash mid group-commit); the
// prefix property plus in-order flushing guarantee the accepted frames
// are exactly "everything acknowledged, plus possibly a durable-but-
// unacknowledged suffix" — never a gap.
//
// Bounded size: the delta merge is the WAL's checkpoint. After a merge
// folds mutations through sequence S into the CSR files, TruncateThrough(S)
// drops their frames, so the WAL only ever holds the unmerged window.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
)

// Record is one edge mutation in the log.
type Record struct {
	Op  uint8 // OpAdd or OpDel
	Src uint32
	Dst uint32
	W   uint32 // weight (OpAdd on weighted graphs; 0 otherwise)
	Seq uint64 // assigned by the log at append
}

// Mutation opcodes.
const (
	OpAdd uint8 = 1
	OpDel uint8 = 2
)

// FrameSize is the on-device size of one framed record:
// magic(1) op(1) src(4) dst(4) w(4) seq(8) crc32c(4).
const FrameSize = 26

const frameMagic = 0xE7

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// Options configures a Log.
type Options struct {
	// FlushEvery is the group-commit window: the first append after a
	// flush arms a timer, and every append arriving before it fires
	// shares one page-batch write. <= 0 flushes synchronously per append.
	FlushEvery time.Duration
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Appends       uint64 // records made durable (acknowledged)
	Flushes       uint64 // group-commit writes
	FlushedFrames uint64 // frames those flushes carried
	Replayed      uint64 // frames accepted by replay at Open
	TornTails     uint64 // torn tails truncated (at Open)
	Truncates     uint64 // checkpoint truncations
	DurableBytes  int64  // current logical stream length
	LastSeq       uint64 // highest durable sequence number
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; Append blocks until its records are durable.
type Log struct {
	f    *ssd.File
	sc   *ssd.IOScope
	ps   int
	opts Options

	mu      sync.Mutex
	nextSeq uint64   // last sequence number handed out
	durable int64    // logical byte length of the durable stream
	tail    []byte   // content of the partial tail page (len = durable % ps)
	live    []Record // durable, untruncated frames (in-memory mirror)
	pend    []Record // appended, not yet flushed
	pendB   []byte   // encoded pend frames, in seq order
	waiters []chan error
	timer   *time.Timer
	failed  error // sticky after a flush or truncate write failure
	closed  bool
	st      Stats
}

// Open opens (or creates) the named log on dev and replays it: the
// returned records are every frame in the accepted prefix, in sequence
// order, for the caller to fold into its in-memory state. A torn tail is
// truncated in place so the durable stream is exactly what was returned.
//
// Log IO runs under its own IOScope tagged obsv.StageIngest, so WAL
// traffic is attributed to the ingest stage, never smeared over queries.
func Open(dev *ssd.Device, name string, opts Options) (*Log, []Record, error) {
	sc := ssd.NewScope()
	sc.SetStage(obsv.StageIngest, -1)
	f, err := dev.OpenOrCreate(name)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %q: %w", name, err)
	}
	f = f.Scoped(sc)
	l := &Log{f: f, sc: sc, ps: dev.PageSize(), opts: opts}

	np := f.NumPages()
	buf := make([]byte, np*l.ps)
	if np > 0 {
		if err := f.ReadPageRange(0, np, buf); err != nil {
			return nil, nil, fmt.Errorf("wal: replay %q: %w", name, err)
		}
	}
	recs, consumed, torn := DecodeFrames(buf)
	l.live = recs
	l.durable = int64(consumed)
	tailLen := consumed % l.ps
	l.tail = append([]byte(nil), buf[consumed-tailLen:consumed]...)
	if len(recs) > 0 {
		l.nextSeq = recs[len(recs)-1].Seq
		l.st.LastSeq = l.nextSeq
	}
	l.st.Replayed = uint64(len(recs))
	live := obsv.Live()
	live.WALReplayed.Add(int64(len(recs)))
	if torn {
		// Rewrite the accepted prefix so no stale bytes linger past the
		// logical end: the next crash's replay must only ever see frames
		// this incarnation wrote.
		l.st.TornTails++
		live.WALTornTails.Add(1)
		if err := l.rewriteLocked(recs); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %q: %w", name, err)
		}
	}
	return l, recs, nil
}

// Append assigns the records their sequence numbers, writes them to the
// log, and blocks until they are durable. It returns the first and last
// assigned sequence numbers. On error nothing was acknowledged: the
// records may or may not be on the device, and the log refuses further
// appends until reopened (so acknowledged state never develops gaps).
func (l *Log) Append(recs []Record) (first, last uint64, err error) {
	if len(recs) == 0 {
		return 0, 0, nil
	}
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return 0, 0, err
	}
	if l.closed {
		l.mu.Unlock()
		return 0, 0, ErrClosed
	}
	first = l.nextSeq + 1
	for i := range recs {
		l.nextSeq++
		recs[i].Seq = l.nextSeq
		l.pendB = appendFrame(l.pendB, recs[i])
	}
	last = l.nextSeq
	l.pend = append(l.pend, recs...)

	if l.opts.FlushEvery <= 0 {
		err := l.flushLocked()
		l.mu.Unlock()
		return first, last, err
	}
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, ch)
	if l.timer == nil {
		l.timer = time.AfterFunc(l.opts.FlushEvery, l.flushTimer)
	}
	l.mu.Unlock()
	return first, last, <-ch
}

func (l *Log) flushTimer() {
	l.mu.Lock()
	l.timer = nil
	_ = l.flushLocked() // waiters hear the error; Append returns it
	l.mu.Unlock()
}

// flushLocked writes every pending frame as one page-batch (the group
// commit) and wakes the waiters. The partial tail page is rewritten with
// its old content preserved and the remainder zero-padded, so a torn
// write of this very batch can only damage the new frames, never the
// already-durable ones.
func (l *Log) flushLocked() error {
	if len(l.pendB) == 0 {
		l.notifyLocked(nil)
		return nil
	}
	startPage := int(l.durable) / l.ps
	head := len(l.tail)
	total := head + len(l.pendB)
	padded := (total + l.ps - 1) / l.ps * l.ps
	buf := make([]byte, padded)
	copy(buf, l.tail)
	copy(buf[head:], l.pendB)
	if err := l.f.WritePageRange(startPage, buf); err != nil {
		// The device refused the group commit; some of its pages may have
		// landed. Fail the log sticky: no caller acks, no later append may
		// extend a stream whose true durable length is now unknown. Reopen
		// replays the valid prefix and resumes cleanly.
		l.failed = fmt.Errorf("wal: group commit: %w", err)
		l.notifyLocked(l.failed)
		return l.failed
	}
	nd := l.durable + int64(len(l.pendB))
	l.f.SetSize(nd)
	l.live = append(l.live, l.pend...)
	l.durable = nd
	tailLen := int(nd % int64(l.ps))
	tailOff := int(nd-int64(tailLen)) - startPage*l.ps
	l.tail = append(l.tail[:0], buf[tailOff:tailOff+tailLen]...)
	l.st.Flushes++
	l.st.FlushedFrames += uint64(len(l.pend))
	l.st.Appends += uint64(len(l.pend))
	l.st.LastSeq = l.pend[len(l.pend)-1].Seq
	live := obsv.Live()
	live.WALFlushes.Add(1)
	live.WALFrames.Add(int64(len(l.pend)))
	l.pend = l.pend[:0]
	l.pendB = l.pendB[:0]
	l.notifyLocked(nil)
	return nil
}

func (l *Log) notifyLocked(err error) {
	for _, ch := range l.waiters {
		ch <- err
	}
	l.waiters = nil
}

// rewriteLocked replaces the durable stream with exactly keep.
func (l *Log) rewriteLocked(keep []Record) error {
	if err := l.f.Truncate(); err != nil {
		return err
	}
	var b []byte
	for _, r := range keep {
		b = appendFrame(b, r)
	}
	if len(b) > 0 {
		padded := (len(b) + l.ps - 1) / l.ps * l.ps
		buf := make([]byte, padded)
		copy(buf, b)
		if err := l.f.WritePageRange(0, buf); err != nil {
			return err
		}
	}
	l.f.SetSize(int64(len(b)))
	l.durable = int64(len(b))
	tailLen := len(b) % l.ps
	l.tail = append(l.tail[:0], b[len(b)-tailLen:]...)
	l.live = append(l.live[:0], keep...)
	return nil
}

// TruncateThrough drops every frame with sequence number <= seq — the
// checkpoint truncation a delta merge performs once those mutations are
// folded into the CSR files. Frames beyond seq are compacted in place.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	cut := 0
	for cut < len(l.live) && l.live[cut].Seq <= seq {
		cut++
	}
	if cut == 0 {
		return nil
	}
	keep := append([]Record(nil), l.live[cut:]...)
	if err := l.rewriteLocked(keep); err != nil {
		l.failed = fmt.Errorf("wal: checkpoint truncate: %w", err)
		return l.failed
	}
	l.st.Truncates++
	return nil
}

// Close flushes any pending appends and closes the log. Further appends
// fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	err := l.flushLocked()
	l.closed = true
	return err
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.st
	st.DurableBytes = l.durable
	return st
}

// Err returns the sticky write-failure error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// appendFrame encodes r onto b.
func appendFrame(b []byte, r Record) []byte {
	off := len(b)
	b = append(b,
		frameMagic, r.Op,
		byte(r.Src), byte(r.Src>>8), byte(r.Src>>16), byte(r.Src>>24),
		byte(r.Dst), byte(r.Dst>>8), byte(r.Dst>>16), byte(r.Dst>>24),
		byte(r.W), byte(r.W>>8), byte(r.W>>16), byte(r.W>>24),
		byte(r.Seq), byte(r.Seq>>8), byte(r.Seq>>16), byte(r.Seq>>24),
		byte(r.Seq>>32), byte(r.Seq>>40), byte(r.Seq>>48), byte(r.Seq>>56),
	)
	crc := crc32.Checksum(b[off:off+FrameSize-4], castagnoli)
	return append(b, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// decodeFrame decodes one frame at the start of b (len(b) >= FrameSize).
func decodeFrame(b []byte) (Record, bool) {
	if b[0] != frameMagic {
		return Record{}, false
	}
	if crc32.Checksum(b[:FrameSize-4], castagnoli) != u32(b[FrameSize-4:]) {
		return Record{}, false
	}
	r := Record{
		Op:  b[1],
		Src: u32(b[2:]),
		Dst: u32(b[6:]),
		W:   u32(b[10:]),
		Seq: uint64(u32(b[14:])) | uint64(u32(b[18:]))<<32,
	}
	if r.Op != OpAdd && r.Op != OpDel {
		return Record{}, false
	}
	return r, true
}

// DecodeFrames scans buf as a WAL byte stream and returns the longest
// valid frame prefix: frames are accepted while the magic byte, the
// CRC32C, the opcode, and sequence continuity (each frame's Seq is the
// previous plus one) all hold. consumed is the byte length of the
// accepted prefix. torn reports whether any nonzero byte follows it — a
// torn or corrupt tail, as opposed to page-alignment zero padding.
func DecodeFrames(buf []byte) (recs []Record, consumed int, torn bool) {
	off := 0
	var prev uint64
	for off+FrameSize <= len(buf) {
		r, ok := decodeFrame(buf[off : off+FrameSize])
		if !ok {
			break
		}
		if len(recs) > 0 && r.Seq != prev+1 {
			break
		}
		recs = append(recs, r)
		prev = r.Seq
		off += FrameSize
	}
	for _, b := range buf[off:] {
		if b != 0 {
			return recs, off, true
		}
	}
	return recs, off, false
}
