// Package gen generates synthetic graphs.
//
// The paper evaluates on com-friendster (power-law social graph, avg degree
// ≈29) and the Yahoo Webscope web graph (sparser, avg degree ≈9). Neither
// is available offline, so the experiment harness uses R-MAT analogs with
// matching degree shape, as documented in DESIGN.md. All generators are
// deterministic given a seed.
package gen

import (
	"fmt"
	"math/rand"

	"multilogvc/internal/graphio"
)

// RMATConfig configures the recursive-matrix (R-MAT) generator of
// Chakrabarti et al., the standard power-law graph model (Graph500 uses
// a=0.57, b=c=0.19, d=0.05).
type RMATConfig struct {
	Scale      int     // number of vertices = 2^Scale
	EdgeFactor int     // directed edges generated = EdgeFactor × 2^Scale
	A, B, C    float64 // quadrant probabilities; D = 1-A-B-C
	Seed       int64
	Undirected bool // if set, output is the deduplicated symmetric closure
}

// DefaultRMAT returns the Graph500 parameterization at the given scale.
func DefaultRMAT(scale, edgeFactor int, seed int64) RMATConfig {
	return RMATConfig{
		Scale: scale, EdgeFactor: edgeFactor,
		A: 0.57, B: 0.19, C: 0.19,
		Seed: seed, Undirected: true,
	}
}

// RMAT generates an R-MAT graph.
func RMAT(cfg RMATConfig) ([]graphio.Edge, error) {
	if cfg.Scale < 1 || cfg.Scale > 30 {
		return nil, fmt.Errorf("gen: rmat scale %d out of range [1,30]", cfg.Scale)
	}
	if cfg.EdgeFactor < 1 {
		return nil, fmt.Errorf("gen: rmat edge factor %d < 1", cfg.EdgeFactor)
	}
	d := 1 - cfg.A - cfg.B - cfg.C
	if cfg.A < 0 || cfg.B < 0 || cfg.C < 0 || d < 0 {
		return nil, fmt.Errorf("gen: rmat probabilities (%v,%v,%v) invalid", cfg.A, cfg.B, cfg.C)
	}
	n := 1 << cfg.Scale
	m := cfg.EdgeFactor * n
	rng := rand.New(rand.NewSource(cfg.Seed))
	edges := make([]graphio.Edge, 0, m)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: no bits set
			case r < cfg.A+cfg.B:
				dst |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges = append(edges, graphio.Edge{Src: uint32(src), Dst: uint32(dst)})
	}
	if cfg.Undirected {
		edges = graphio.MakeUndirected(edges)
	} else {
		edges = graphio.Dedup(edges)
	}
	return edges, nil
}

// Uniform generates an Erdős–Rényi-style G(n, m) graph: m directed edges
// drawn uniformly (before dedup/symmetrization).
func Uniform(n uint32, m int, seed int64, undirected bool) ([]graphio.Edge, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: uniform needs n >= 2, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graphio.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graphio.Edge{
			Src: uint32(rng.Int63n(int64(n))),
			Dst: uint32(rng.Int63n(int64(n))),
		})
	}
	if undirected {
		return graphio.MakeUndirected(edges), nil
	}
	return graphio.Dedup(edges), nil
}

// Grid generates an undirected 2-D grid graph of rows×cols vertices with
// 4-neighborhood connectivity. Grids have uniform low degree, the opposite
// extreme from power-law graphs; useful for edge cases in tests.
func Grid(rows, cols int) ([]graphio.Edge, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: grid %dx%d invalid", rows, cols)
	}
	if rows*cols > 1<<28 {
		return nil, fmt.Errorf("gen: grid %dx%d too large", rows, cols)
	}
	var edges []graphio.Edge
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graphio.Edge{Src: id(r, c), Dst: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graphio.Edge{Src: id(r, c), Dst: id(r+1, c)})
			}
		}
	}
	return graphio.MakeUndirected(edges), nil
}

// PreferentialAttachment generates a Barabási–Albert graph: each new vertex
// attaches k edges to existing vertices with probability proportional to
// their degree. Produces a power-law tail with a connected topology.
func PreferentialAttachment(n uint32, k int, seed int64) ([]graphio.Edge, error) {
	if n < uint32(k)+1 || k < 1 {
		return nil, fmt.Errorf("gen: preferential attachment needs n > k >= 1 (n=%d k=%d)", n, k)
	}
	rng := rand.New(rand.NewSource(seed))
	// targets holds one entry per half-edge endpoint; sampling uniformly
	// from it is degree-proportional sampling.
	targets := make([]uint32, 0, 2*int(n)*k)
	var edges []graphio.Edge
	// Seed clique over the first k+1 vertices.
	for i := uint32(0); i <= uint32(k); i++ {
		for j := i + 1; j <= uint32(k); j++ {
			edges = append(edges, graphio.Edge{Src: i, Dst: j})
			targets = append(targets, i, j)
		}
	}
	for v := uint32(k) + 1; v < n; v++ {
		chosen := make(map[uint32]bool, k)
		for len(chosen) < k {
			t := targets[rng.Intn(len(targets))]
			if t != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			edges = append(edges, graphio.Edge{Src: v, Dst: t})
			targets = append(targets, v, t)
		}
	}
	return graphio.MakeUndirected(edges), nil
}

// SmallWorld generates a rows×cols grid with `shortcuts` extra random
// long-range edges (Watts–Strogatz-flavored). BFS frontiers on it expand
// gradually over tens of supersteps — the long-tail depth structure of
// large web graphs — which the traversal-fraction experiments (Fig 5)
// need; power-law analogs at laptop scale have single-digit diameters.
func SmallWorld(rows, cols, shortcuts int, seed int64) ([]graphio.Edge, error) {
	edges, err := Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	n := uint32(rows * cols)
	extra, err := Uniform(n, shortcuts, seed, true)
	if err != nil {
		return nil, err
	}
	return graphio.Dedup(append(edges, extra...)), nil
}

// PlantedPartition generates a graph with `groups` communities of `size`
// vertices each; vertices connect within their community with expected
// degree degIn and across communities with expected degree degOut. Used by
// the community-detection example to verify CDLP finds the planted
// structure.
func PlantedPartition(groups, size int, degIn, degOut float64, seed int64) ([]graphio.Edge, error) {
	if groups < 1 || size < 2 {
		return nil, fmt.Errorf("gen: planted partition groups=%d size=%d invalid", groups, size)
	}
	n := groups * size
	rng := rand.New(rand.NewSource(seed))
	var edges []graphio.Edge
	// Expected within-community edges per community: size*degIn/2.
	inEdges := int(float64(size) * degIn / 2)
	for g := 0; g < groups; g++ {
		base := uint32(g * size)
		// Ring to guarantee connectivity within the community.
		for i := 0; i < size; i++ {
			edges = append(edges, graphio.Edge{
				Src: base + uint32(i),
				Dst: base + uint32((i+1)%size),
			})
		}
		for i := 0; i < inEdges; i++ {
			u := base + uint32(rng.Intn(size))
			v := base + uint32(rng.Intn(size))
			edges = append(edges, graphio.Edge{Src: u, Dst: v})
		}
	}
	outEdges := int(float64(n) * degOut / 2)
	for i := 0; i < outEdges; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		edges = append(edges, graphio.Edge{Src: u, Dst: v})
	}
	return graphio.MakeUndirected(edges), nil
}
