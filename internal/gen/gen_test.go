package gen

import (
	"sort"
	"testing"

	"multilogvc/internal/graphio"
)

func checkUndirected(t *testing.T, edges []graphio.Edge) {
	t.Helper()
	set := make(map[graphio.Edge]bool, len(edges))
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatalf("self loop %v", e)
		}
		if set[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		set[e] = true
	}
	for e := range set {
		if !set[graphio.Edge{Src: e.Dst, Dst: e.Src}] {
			t.Fatalf("missing reverse of %v", e)
		}
	}
}

func TestRMATBasic(t *testing.T) {
	cfg := DefaultRMAT(10, 8, 1)
	edges, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("no edges generated")
	}
	n := graphio.NumVertices(edges)
	if n > 1024 {
		t.Fatalf("vertex id out of range: %d", n)
	}
	checkUndirected(t, edges)
}

func TestRMATDeterministic(t *testing.T) {
	a, _ := RMAT(DefaultRMAT(8, 4, 99))
	b, _ := RMAT(DefaultRMAT(8, 4, 99))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c, _ := RMAT(DefaultRMAT(8, 4, 100))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATPowerLawSkew(t *testing.T) {
	edges, err := RMAT(DefaultRMAT(12, 16, 7))
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(1 << 12)
	deg := graphio.OutDegrees(edges, n)
	sorted := make([]int, 0, n)
	for _, d := range deg {
		sorted = append(sorted, int(d))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, d := range sorted {
		total += d
	}
	top := 0
	for _, d := range sorted[:len(sorted)/10] {
		top += d
	}
	// Power-law: top 10% of vertices should own well over 10% of edges.
	if float64(top) < 0.3*float64(total) {
		t.Fatalf("degree distribution not skewed: top 10%% owns %d/%d edges", top, total)
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 0, EdgeFactor: 1, A: 0.5, B: 0.2, C: 0.2}); err == nil {
		t.Fatal("scale 0 should fail")
	}
	if _, err := RMAT(RMATConfig{Scale: 5, EdgeFactor: 0, A: 0.5, B: 0.2, C: 0.2}); err == nil {
		t.Fatal("edge factor 0 should fail")
	}
	if _, err := RMAT(RMATConfig{Scale: 5, EdgeFactor: 1, A: 0.9, B: 0.2, C: 0.2}); err == nil {
		t.Fatal("probabilities > 1 should fail")
	}
}

func TestUniform(t *testing.T) {
	edges, err := Uniform(100, 500, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	checkUndirected(t, edges)
	if graphio.NumVertices(edges) > 100 {
		t.Fatal("vertex out of range")
	}
	if _, err := Uniform(1, 5, 3, true); err == nil {
		t.Fatal("n=1 should fail")
	}
	directed, err := Uniform(50, 100, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(directed); i++ {
		if directed[i] == directed[i-1] {
			t.Fatal("directed output not deduplicated")
		}
	}
}

func TestGrid(t *testing.T) {
	edges, err := Grid(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkUndirected(t, edges)
	// 4x5 grid: 4*(5-1) horizontal + (4-1)*5 vertical = 31 undirected
	// pairs = 62 directed edges.
	if len(edges) != 62 {
		t.Fatalf("grid edges = %d, want 62", len(edges))
	}
	if _, err := Grid(0, 5); err == nil {
		t.Fatal("0 rows should fail")
	}
}

func TestGridDegrees(t *testing.T) {
	edges, _ := Grid(3, 3)
	deg := graphio.OutDegrees(edges, 9)
	// Corner vertex 0 has degree 2; center vertex 4 has degree 4.
	if deg[0] != 2 || deg[4] != 4 {
		t.Fatalf("grid degrees wrong: %v", deg)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	edges, err := PreferentialAttachment(200, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	checkUndirected(t, edges)
	deg := graphio.OutDegrees(edges, 200)
	for v, d := range deg {
		if d == 0 {
			t.Fatalf("vertex %d isolated; PA graphs are connected", v)
		}
	}
	if _, err := PreferentialAttachment(3, 3, 1); err == nil {
		t.Fatal("n <= k should fail")
	}
}

func TestSmallWorld(t *testing.T) {
	edges, err := SmallWorld(16, 16, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkUndirected(t, edges)
	grid, _ := Grid(16, 16)
	if len(edges) <= len(grid) {
		t.Fatalf("no shortcuts added: %d <= %d", len(edges), len(grid))
	}
	if _, err := SmallWorld(0, 16, 5, 3); err == nil {
		t.Fatal("bad dimensions should fail")
	}
}

func TestPlantedPartition(t *testing.T) {
	edges, err := PlantedPartition(4, 50, 8, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkUndirected(t, edges)
	if graphio.NumVertices(edges) > 200 {
		t.Fatal("vertex out of range")
	}
	// Count within- vs cross-community edges; within should dominate.
	within, cross := 0, 0
	for _, e := range edges {
		if e.Src/50 == e.Dst/50 {
			within++
		} else {
			cross++
		}
	}
	if within < 5*cross {
		t.Fatalf("community structure too weak: within=%d cross=%d", within, cross)
	}
	if _, err := PlantedPartition(0, 50, 8, 1, 5); err == nil {
		t.Fatal("0 groups should fail")
	}
}

func BenchmarkRMATScale14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RMAT(DefaultRMAT(14, 16, 42)); err != nil {
			b.Fatal(err)
		}
	}
}
