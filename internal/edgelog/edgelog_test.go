package edgelog

import (
	"testing"

	"multilogvc/internal/csr"
	"multilogvc/internal/ssd"
)

func TestPredictorActiveHistory(t *testing.T) {
	p := NewPredictor(10, 1024, 0.1)
	p.NoteActive(3)
	if !p.PredictActive(3) {
		t.Fatal("currently active vertex should be predicted active")
	}
	if p.PredictActive(4) {
		t.Fatal("inactive vertex predicted active")
	}
	p.EndSuperstep()
	// 3 was active last superstep: still predicted (N=1 history).
	if !p.PredictActive(3) {
		t.Fatal("history prediction failed")
	}
	p.EndSuperstep()
	// Two supersteps later the history has aged out.
	if p.PredictActive(3) {
		t.Fatal("history should only look back one superstep")
	}
}

func TestPredictorPageInefficiency(t *testing.T) {
	p := NewPredictor(10, 1000, 0.1)
	keyA := csr.PageKey{Side: 0, Interval: 0, Page: 1}
	keyB := csr.PageKey{Side: 0, Interval: 0, Page: 2}
	p.NotePageUtils([]csr.PageUtil{
		{Key: keyA, UsedBytes: 50},  // 5% — inefficient
		{Key: keyB, UsedBytes: 500}, // 50% — fine
	})
	if !p.PageIneffNow(keyA) || p.PageIneffNow(keyB) {
		t.Fatal("current inefficiency misclassified")
	}
	st := p.EndSuperstep()
	if st.InefficientPages != 1 || st.PagesTouched != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// keyA is now the prediction for the next superstep.
	if !p.PageIneff(keyA) || p.PageIneff(keyB) {
		t.Fatal("prediction set wrong")
	}
	// Touch keyA inefficiently again: correct prediction.
	p.NotePageUtils([]csr.PageUtil{{Key: keyA, UsedBytes: 10}})
	st = p.EndSuperstep()
	if st.Correct != 1 || st.PredictedIneff != 1 {
		t.Fatalf("accuracy stats = %+v", st)
	}
}

func TestPredictorZeroUtilizationNotInefficient(t *testing.T) {
	// The paper counts pages with >0% and <10% utilization.
	p := NewPredictor(10, 1000, 0.1)
	key := csr.PageKey{Side: 0, Interval: 0, Page: 5}
	p.NotePageUtils([]csr.PageUtil{{Key: key, UsedBytes: 0}})
	if p.PageIneffNow(key) {
		t.Fatal("0%% utilization should not count as inefficient")
	}
}

func TestPredictorDuplicateTouchesCountOnce(t *testing.T) {
	p := NewPredictor(10, 1000, 0.1)
	key := csr.PageKey{Side: 0, Interval: 0, Page: 5}
	p.NotePageUtils([]csr.PageUtil{{Key: key, UsedBytes: 10}})
	p.NotePageUtils([]csr.PageUtil{{Key: key, UsedBytes: 10}})
	st := p.EndSuperstep()
	if st.PagesTouched != 1 || st.InefficientPages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEdgeLogRoundTrip(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 64, Channels: 2})
	e, err := New(dev, "elog", false)
	if err != nil {
		t.Fatal(err)
	}
	// Log into the next generation; invisible until the swap.
	if err := e.LogEdges(5, []uint32{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.LogEdges(9, []uint32{4}, nil); err != nil {
		t.Fatal(err)
	}
	if e.Has(5) {
		t.Fatal("next-generation entry visible before swap")
	}
	if err := e.EndSuperstep(); err != nil {
		t.Fatal(err)
	}
	if !e.Has(5) || !e.Has(9) || e.Has(7) {
		t.Fatal("generation swap index wrong")
	}

	got := make(map[uint32][]uint32)
	pages, err := e.Load([]uint32{5, 9}, func(v uint32, nbrs, _ []uint32) {
		cp := make([]uint32, len(nbrs))
		copy(cp, nbrs)
		got[v] = cp
	})
	if err != nil {
		t.Fatal(err)
	}
	if pages == 0 {
		t.Fatal("no pages read")
	}
	if len(got[5]) != 3 || got[5][0] != 1 || got[5][2] != 3 {
		t.Fatalf("edges of 5 = %v", got[5])
	}
	if len(got[9]) != 1 || got[9][0] != 4 {
		t.Fatalf("edges of 9 = %v", got[9])
	}
}

func TestEdgeLogGenerationExpiry(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 64, Channels: 2})
	e, _ := New(dev, "elog", false)
	e.LogEdges(5, []uint32{1}, nil)
	e.EndSuperstep()
	if !e.Has(5) {
		t.Fatal("entry missing after first swap")
	}
	e.EndSuperstep()
	if e.Has(5) {
		t.Fatal("entry survived two swaps")
	}
}

func TestEdgeLogDuplicateIgnored(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 64, Channels: 2})
	e, _ := New(dev, "elog", false)
	e.LogEdges(5, []uint32{1, 2}, nil)
	before := e.LoggedBytes()
	e.LogEdges(5, []uint32{9, 9, 9}, nil)
	if e.LoggedBytes() != before {
		t.Fatal("duplicate LogEdges extended the log")
	}
	e.EndSuperstep()
	var got []uint32
	e.Load([]uint32{5}, func(v uint32, nbrs, _ []uint32) {
		got = append(got, nbrs...)
	})
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("edges = %v, want first logging to win", got)
	}
}

func TestEdgeLogLoadUnknownVertex(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 64, Channels: 2})
	e, _ := New(dev, "elog", false)
	e.EndSuperstep()
	if _, err := e.Load([]uint32{1}, func(uint32, []uint32, []uint32) {}); err == nil {
		t.Fatal("loading unlogged vertex should fail")
	}
}

func TestEdgeLogZeroDegree(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 64, Channels: 2})
	e, _ := New(dev, "elog", false)
	e.LogEdges(3, nil, nil)
	e.EndSuperstep()
	called := false
	if _, err := e.Load([]uint32{3}, func(v uint32, nbrs, _ []uint32) {
		called = len(nbrs) == 0
	}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("zero-degree vertex not served")
	}
}

func TestEdgeLogSpansPages(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 64, Channels: 2}) // 16 edges per page
	e, _ := New(dev, "elog", false)
	big := make([]uint32, 100)
	for i := range big {
		big[i] = uint32(i * 3)
	}
	e.LogEdges(1, big, nil)
	e.EndSuperstep()
	var got []uint32
	pages, err := e.Load([]uint32{1}, func(v uint32, nbrs, _ []uint32) {
		got = append(got, nbrs...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if pages < 7 {
		t.Fatalf("expected multi-page read, got %d pages", pages)
	}
	for i, nb := range got {
		if nb != uint32(i*3) {
			t.Fatalf("edge %d = %d", i, nb)
		}
	}
}

func TestEdgeLogWeighted(t *testing.T) {
	dev := ssd.MustOpen(ssd.Config{PageSize: 64, Channels: 2})
	e, _ := New(dev, "elog", true)
	nbrs := []uint32{10, 20, 30}
	ws := []uint32{7, 8, 9}
	if err := e.LogEdges(1, nbrs, ws); err != nil {
		t.Fatal(err)
	}
	e.EndSuperstep()
	var gotN, gotW []uint32
	if _, err := e.Load([]uint32{1}, func(v uint32, n, w []uint32) {
		gotN = append(gotN, n...)
		gotW = append(gotW, w...)
	}); err != nil {
		t.Fatal(err)
	}
	for i := range nbrs {
		if gotN[i] != nbrs[i] || gotW[i] != ws[i] {
			t.Fatalf("weighted round trip: %v %v", gotN, gotW)
		}
	}
}
