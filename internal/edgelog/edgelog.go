// Package edgelog implements the edge-log optimizer of §V-C.
//
// When the graph loader fetches a column-index page to serve one active
// vertex's out-edges, inactive vertices' edges co-resident on that page
// waste read bandwidth. The optimizer re-logs the out-edges of vertices
// that are (a) predicted active in the next superstep — history-based
// prediction over the last N supersteps, N = 1 — and (b) currently served
// from pages measured under the utilization threshold (default 10%). The
// next superstep reads those edge lists densely from the log instead of
// sparsely from the CSR pages.
package edgelog

import (
	"encoding/binary"
	"fmt"
	"sort"

	"multilogvc/internal/bitset"
	"multilogvc/internal/csr"
	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
)

// DefaultThreshold is the page-utilization fraction below which a touched
// page counts as inefficiently used (>0% and <10% in the paper).
const DefaultThreshold = 0.10

// Predictor tracks vertex-activity history and page utilization, and
// decides which vertices' edges are worth logging.
type Predictor struct {
	threshold float64
	pageSize  int

	prevActive *bitset.Set // active in superstep s-1
	currActive *bitset.Set // active in superstep s (being filled)

	prevIneff map[csr.PageKey]bool // pages inefficient in s-1 (the prediction for s)
	currIneff map[csr.PageKey]bool // pages inefficient in s (being measured)
	currSeen  map[csr.PageKey]bool // pages touched in s

	// Accuracy accounting for the superstep being measured (Fig 9).
	correct int // touched pages inefficient in s that were predicted (inefficient in s-1)
}

// NewPredictor creates a predictor for n vertices. threshold <= 0 selects
// DefaultThreshold.
func NewPredictor(n uint32, pageSize int, threshold float64) *Predictor {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Predictor{
		threshold:  threshold,
		pageSize:   pageSize,
		prevActive: bitset.New(int(n)),
		currActive: bitset.New(int(n)),
		prevIneff:  make(map[csr.PageKey]bool),
		currIneff:  make(map[csr.PageKey]bool),
		currSeen:   make(map[csr.PageKey]bool),
	}
}

// NoteActive records that v is active in the current superstep.
func (p *Predictor) NoteActive(v uint32) { p.currActive.Set(int(v)) }

// NotePageUtils records measured page utilization from one adjacency load.
func (p *Predictor) NotePageUtils(utils []csr.PageUtil) {
	for _, u := range utils {
		if p.currSeen[u.Key] {
			continue
		}
		p.currSeen[u.Key] = true
		frac := float64(u.UsedBytes) / float64(p.pageSize)
		if u.UsedBytes > 0 && frac < p.threshold {
			p.currIneff[u.Key] = true
			if p.prevIneff[u.Key] {
				p.correct++
			}
		}
	}
}

// PredictActive reports whether v is predicted active next superstep:
// active at least once in the past N supersteps (N = 1, i.e. the previous
// superstep) or already active now.
func (p *Predictor) PredictActive(v uint32) bool {
	return p.prevActive.Test(int(v)) || p.currActive.Test(int(v))
}

// PageIneff reports whether the page was predicted inefficient for the
// current superstep (measured inefficient in the previous one).
func (p *Predictor) PageIneff(key csr.PageKey) bool { return p.prevIneff[key] }

// PageIneffNow reports whether the page has been measured inefficient in
// the current superstep; the engine uses the current measurement when
// deciding what to log for the next superstep.
func (p *Predictor) PageIneffNow(key csr.PageKey) bool { return p.currIneff[key] }

// StepStats summarizes a finished superstep's prediction quality.
type StepStats struct {
	InefficientPages uint64 // pages measured inefficient this superstep
	PredictedIneff   uint64 // pages that had been predicted inefficient
	Correct          uint64 // predictions confirmed this superstep
	PagesTouched     uint64
}

// EndSuperstep rolls the history forward and returns this superstep's
// prediction stats.
func (p *Predictor) EndSuperstep() StepStats {
	st := StepStats{
		InefficientPages: uint64(len(p.currIneff)),
		PredictedIneff:   uint64(len(p.prevIneff)),
		Correct:          uint64(p.correct),
		PagesTouched:     uint64(len(p.currSeen)),
	}
	p.prevActive, p.currActive = p.currActive, p.prevActive
	p.currActive.Reset()
	p.prevIneff = p.currIneff
	p.currIneff = make(map[csr.PageKey]bool)
	p.currSeen = make(map[csr.PageKey]bool)
	p.correct = 0
	return st
}

// History returns the predictor's rolled-over state at a superstep
// boundary: the previous superstep's active set (as bitset words) and the
// pages it measured inefficient, sorted for deterministic serialization.
// Together with RestoreHistory it lets checkpoints carry the prediction
// signal across a crash, so a resumed run re-logs the same vertices an
// uninterrupted run would.
func (p *Predictor) History() (prevActive []uint64, prevIneff []csr.PageKey) {
	prevActive = p.prevActive.Words()
	prevIneff = make([]csr.PageKey, 0, len(p.prevIneff))
	for k := range p.prevIneff {
		prevIneff = append(prevIneff, k)
	}
	sort.Slice(prevIneff, func(i, j int) bool {
		a, b := prevIneff[i], prevIneff[j]
		if a.Side != b.Side {
			return a.Side < b.Side
		}
		if a.Interval != b.Interval {
			return a.Interval < b.Interval
		}
		return a.Page < b.Page
	})
	return prevActive, prevIneff
}

// RestoreHistory overwrites the predictor's previous-superstep state from
// a checkpoint. The current-superstep accumulators are reset, matching the
// state right after EndSuperstep.
func (p *Predictor) RestoreHistory(prevActive []uint64, prevIneff []csr.PageKey) {
	p.prevActive.SetWords(prevActive)
	p.currActive.Reset()
	p.prevIneff = make(map[csr.PageKey]bool, len(prevIneff))
	for _, k := range prevIneff {
		p.prevIneff[k] = true
	}
	p.currIneff = make(map[csr.PageKey]bool)
	p.currSeen = make(map[csr.PageKey]bool)
	p.correct = 0
}

// EdgeLog stores re-logged out-edge lists. Two generations alternate: the
// engine logs into the next generation while serving reads from the
// current one. For weighted graphs each vertex's weights are logged after
// its neighbor ids, so one log read serves both.
type EdgeLog struct {
	dev      *ssd.Device
	prefix   string
	pageSize int
	weighted bool

	gen   int
	files [2]*ssd.File
	// index maps vertex -> (byte offset, degree) within each generation.
	index   [2]map[uint32]entry
	writer  *ssd.Writer
	written int64

	tr *obsv.Trace // nil = tracing disabled
}

// SetTracer attaches a span tracer; generation swaps emit spans on it.
// A nil tracer (the default) disables tracing.
func (e *EdgeLog) SetTracer(tr *obsv.Trace) { e.tr = tr }

// SetScope attributes the log's device IO to a per-run ssd.IOScope. Must
// be called right after New, before any logging: both generation handles
// are rescoped and the next-generation writer is rebound to its scoped
// handle while still at offset zero.
func (e *EdgeLog) SetScope(sc *ssd.IOScope) {
	if sc == nil {
		return
	}
	for i := range e.files {
		e.files[i] = e.files[i].Scoped(sc)
	}
	e.writer = ssd.NewWriter(e.files[1])
}

type entry struct {
	off int64
	deg uint32
}

// New creates an EdgeLog using two device files "<prefix>.0/1". Set
// weighted for graphs whose edge lists carry weights.
func New(dev *ssd.Device, prefix string, weighted bool) (*EdgeLog, error) {
	e := &EdgeLog{dev: dev, prefix: prefix, pageSize: dev.PageSize(), weighted: weighted}
	for i := 0; i < 2; i++ {
		f, err := dev.OpenOrCreate(fmt.Sprintf("%s.%d", prefix, i))
		if err != nil {
			return nil, err
		}
		// Drop any pages surviving from an earlier run: offsets in the
		// index are relative to an empty file.
		if err := f.Truncate(); err != nil {
			return nil, err
		}
		e.files[i] = f
		e.index[i] = make(map[uint32]entry)
	}
	e.writer = ssd.NewWriter(e.files[1])
	return e, nil
}

// LogEdges appends v's out-edges (and weights, for weighted logs) to the
// next generation. weights must be parallel to nbrs when the log is
// weighted and is ignored otherwise.
func (e *EdgeLog) LogEdges(v uint32, nbrs, weights []uint32) error {
	next := 1 - e.gen
	if _, dup := e.index[next][v]; dup {
		return nil
	}
	e.index[next][v] = entry{off: e.writer.Offset(), deg: uint32(len(nbrs))}
	var b [4]byte
	for _, nb := range nbrs {
		binary.LittleEndian.PutUint32(b[:], nb)
		if _, err := e.writer.Write(b[:]); err != nil {
			return err
		}
	}
	e.written += int64(len(nbrs)) * 4
	if e.weighted {
		for _, w := range weights {
			binary.LittleEndian.PutUint32(b[:], w)
			if _, err := e.writer.Write(b[:]); err != nil {
				return err
			}
		}
		e.written += int64(len(weights)) * 4
	}
	return nil
}

// LoggedBytes returns the bytes logged into the next generation so far.
func (e *EdgeLog) LoggedBytes() int64 { return e.written }

// Has reports whether the current generation holds v's edges.
func (e *EdgeLog) Has(v uint32) bool {
	_, ok := e.index[e.gen][v]
	return ok
}

// Load fetches the out-edge lists (and weights, for weighted logs) of the
// given vertices from the current generation, reading only covering pages
// in one batch. All vertices must satisfy Has. Returns the number of pages
// read. weights is nil for unweighted logs.
func (e *EdgeLog) Load(verts []uint32, visit func(v uint32, nbrs, weights []uint32)) (int, error) {
	if len(verts) == 0 {
		return 0, nil
	}
	stride := int64(4)
	if e.weighted {
		stride = 8 // ids then weights, both deg×4 bytes
	}
	idx := e.index[e.gen]
	ps := e.pageSize
	pageSet := make(map[int]bool)
	for _, v := range verts {
		ent, ok := idx[v]
		if !ok {
			return 0, fmt.Errorf("edgelog: vertex %d not logged", v)
		}
		if ent.deg == 0 {
			continue
		}
		end := ent.off + int64(ent.deg)*stride
		for p := ent.off / int64(ps); p <= (end-1)/int64(ps); p++ {
			pageSet[int(p)] = true
		}
	}
	pages := make([]int, 0, len(pageSet))
	for p := range pageSet {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	buf := make([]byte, len(pages)*ps)
	if err := e.files[e.gen].ReadPages(pages, buf); err != nil {
		return 0, err
	}
	pageAt := make(map[int][]byte, len(pages))
	for i, p := range pages {
		pageAt[p] = buf[i*ps : (i+1)*ps]
	}
	u32At := func(off int64) uint32 {
		return binary.LittleEndian.Uint32(pageAt[int(off/int64(ps))][off%int64(ps):])
	}
	var nbrBuf, wBuf []uint32
	for _, v := range verts {
		ent := idx[v]
		if cap(nbrBuf) < int(ent.deg) {
			nbrBuf = make([]uint32, ent.deg)
			wBuf = make([]uint32, ent.deg)
		}
		nbrs := nbrBuf[:ent.deg]
		var weights []uint32
		if e.weighted {
			weights = wBuf[:ent.deg]
		}
		for j := uint32(0); j < ent.deg; j++ {
			nbrs[j] = u32At(ent.off + int64(j)*4)
			if e.weighted {
				weights[j] = u32At(ent.off + int64(ent.deg)*4 + int64(j)*4)
			}
		}
		visit(v, nbrs, weights)
	}
	return len(pages), nil
}

// InvalidateCurrent discards the current generation: the index empties
// and the backing file truncates (which also drops any cached pages), so
// every vertex falls back to canonical CSR loading. This is the heal path
// for a corrupt edge-log page — the log is a redundant adjacency cache,
// so dropping a generation costs extra CSR reads but never correctness.
// Logging into the *next* generation is unaffected.
func (e *EdgeLog) InvalidateCurrent() error {
	e.index[e.gen] = make(map[uint32]entry)
	return e.files[e.gen].Truncate()
}

// Dump visits every vertex in the current generation in ascending vertex
// order with its logged neighbors (and weights, for weighted logs),
// reading the covering pages in one batch. Checkpointing uses it to
// serialize the generation that will serve the next superstep. Returns
// the number of pages read.
func (e *EdgeLog) Dump(visit func(v uint32, nbrs, weights []uint32)) (int, error) {
	idx := e.index[e.gen]
	if len(idx) == 0 {
		return 0, nil
	}
	verts := make([]uint32, 0, len(idx))
	for v := range idx {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	return e.Load(verts, visit)
}

// EndSuperstep flushes the next generation to the device and swaps
// generations; the old current generation is truncated for reuse.
func (e *EdgeLog) EndSuperstep() error {
	// Tid 3 is the edge-log unit's trace timeline (engine stages own tid 1,
	// the multi-log unit tid 2).
	sp := e.tr.BeginTid("elog", "end-superstep", 3)
	sp.Arg("logged_bytes", e.written)
	sp.Arg("logged_verts", int64(len(e.index[1-e.gen])))
	defer sp.End()
	if err := e.writer.Close(); err != nil {
		return err
	}
	old := e.gen
	e.gen = 1 - e.gen
	e.index[old] = make(map[uint32]entry)
	if err := e.files[old].Truncate(); err != nil {
		return err
	}
	e.writer = ssd.NewWriter(e.files[old])
	e.written = 0
	return nil
}
