package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"multilogvc/internal/obsv"
	"multilogvc/internal/vc"
)

// Walk limits: enough for neighborhood sampling, small enough that one
// request cannot monopolize the device.
const (
	maxWalksPerRequest = 64
	maxWalkLength      = 255
)

// walkRequest is the JSON body of POST /walk: a batch of random walks
// from one source, deterministic in (seed, vertex, step, walk index) via
// vc.Hash64 — the same draw apps.RandomWalk uses, so trajectories are
// reproducible across engines and requests.
type walkRequest struct {
	Source     uint32 `json:"source"`
	Walks      int    `json:"walks"`  // defaults to 1
	Length     int    `json:"length"` // defaults to 10
	Seed       uint64 `json:"seed"`
	DeadlineMS int64  `json:"deadline_ms"`
}

type walkResponse struct {
	Source uint32     `json:"source"`
	Walks  int        `json:"walks"`
	Length int        `json:"length"`
	Paths  [][]uint32 `json:"paths"`
	// Visits counts arrivals per vertex across all walks (the
	// DrunkardMob aggregate), keyed by vertex id.
	Visits map[string]uint32 `json:"visits"`
}

// handleWalk serves a random-walk batch directly over the CSR adjacency —
// walks touch a handful of vertices, so spinning a full engine run per
// request would cost more in scratch setup than the walk itself. It still
// passes admission (an execution slot, the queue cap, a deadline) so walk
// traffic cannot starve point queries.
func (s *Server) handleWalk(w http.ResponseWriter, r *http.Request) {
	live := obsv.Live()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	var req walkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	if req.Walks <= 0 {
		req.Walks = 1
	}
	if req.Length <= 0 {
		req.Length = 10
	}
	switch {
	case req.Source >= s.g.NumVertices():
		writeError(w, http.StatusBadRequest, "bad_request", "source out of range")
		return
	case req.Walks > maxWalksPerRequest:
		writeError(w, http.StatusBadRequest, "bad_request", "too many walks per request")
		return
	case req.Length > maxWalkLength:
		writeError(w, http.StatusBadRequest, "bad_request", "walk length too large")
		return
	}
	if s.closed.Load() {
		live.QueriesShed.Add(1)
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining")
		return
	}
	deadline := time.Now().Add(s.opts.DefaultDeadline)
	if req.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}

	// Walks pass the same breaker gate as point queries — their CSR
	// reads hit the same device — and record exactly one outcome.
	if ok, retryAfter := s.brk.admit(); !ok {
		live.QueriesShed.Add(1)
		live.BreakerSheds.Add(1)
		writeErrorRetry(w, http.StatusServiceUnavailable, "breaker_open",
			"fault circuit breaker is open; device faults are being shed", retryAfter)
		return
	}
	recorded := false
	record := func(o outcome) {
		if !recorded {
			recorded = true
			s.brk.record(o)
		}
	}
	defer record(outcomeNeutral) // any early return not otherwise classified

	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	resp := walkResponse{
		Source: req.Source, Walks: req.Walks, Length: req.Length,
		Paths:  make([][]uint32, req.Walks),
		Visits: make(map[string]uint32),
	}
	// Pin the delta epoch for the whole walk so every step — and the memo
	// below — reads one consistent graph even while ingest mutates it.
	snap := s.g.Snapshot()
	defer snap.Release()
	wg := snap.Graph()
	// Per-request adjacency memo: concurrent walks of one request revisit
	// hub vertices constantly, and each LoadOutEdges costs device pages.
	memo := make(map[uint32][]uint32)
	outEdges := func(v uint32) ([]uint32, error) {
		if nbrs, ok := memo[v]; ok {
			return nbrs, nil
		}
		var nbrs []uint32
		_, err := wg.LoadOutEdges(wg.IntervalOf(v), []uint32{v}, func(_ uint32, out []uint32) {
			nbrs = append([]uint32(nil), out...)
		})
		if err != nil {
			return nil, err
		}
		memo[v] = nbrs
		return nbrs, nil
	}

	for wi := 0; wi < req.Walks; wi++ {
		cur := req.Source
		path := make([]uint32, 1, req.Length+1)
		path[0] = cur
		for step := 0; step < req.Length; step++ {
			if time.Now().After(deadline) {
				live.QueryDeadlines.Add(1)
				writeError(w, http.StatusGatewayTimeout, "deadline", "walk deadline expired")
				return
			}
			nbrs, err := outEdges(cur)
			if err != nil {
				if retryable(err) {
					record(outcomeFault)
				}
				live.QueryErrors.Add(1)
				code, status := classify(err)
				writeError(w, status, code, err.Error())
				return
			}
			if len(nbrs) == 0 {
				break
			}
			h := vc.Hash64(req.Seed, uint64(cur), uint64(step), uint64(wi))
			cur = nbrs[h%uint64(len(nbrs))]
			path = append(path, cur)
			resp.Visits[itoa(cur)]++
		}
		resp.Paths[wi] = path
	}
	record(outcomeSuccess)
	live.QueriesServed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func itoa(v uint32) string {
	// strconv-free tiny helper keeps the hot loop allocation-light.
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
