package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/core"
	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/ssd"
)

// fixture builds a small resident rmat graph on a fresh in-memory device.
func fixture(t *testing.T, seed int64) *csr.Graph {
	t.Helper()
	edges, err := gen.RMAT(gen.DefaultRMAT(9, 8, seed))
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
	g, err := csr.Build(dev, "g", edges, csr.BuildOptions{NumVertices: 1 << 9, IntervalBudget: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// single runs the reference single-source program sequentially.
func single(t *testing.T, g *csr.Graph, kind string, src uint32) []uint32 {
	t.Helper()
	var res *core.Result
	var err error
	if kind == "bfs" {
		res, err = core.New(g, core.Config{MaxSupersteps: 100}).Run(&apps.BFS{Source: src})
	} else {
		res, err = core.New(g, core.Config{MaxSupersteps: 100}).Run(&apps.SSSP{Source: src})
	}
	if err != nil {
		t.Fatal(err)
	}
	return res.Values
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func errCode(t *testing.T, data []byte) string {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("not an error body: %s", data)
	}
	return e.Error.Code
}

// TestServeBatchingParity drives K concurrent BFS queries through the
// HTTP API inside one batching window and asserts each client's full
// value array is bit-identical to its own sequential single-source run —
// the daemon's batching contract, verified end to end.
func TestServeBatchingParity(t *testing.T) {
	g := fixture(t, 21)
	sources := []uint32{3, 7, 100, 400}
	want := make([][]uint32, len(sources))
	for i, src := range sources {
		want[i] = single(t, g, "bfs", src)
	}

	s, err := New(Options{Graph: g, BatchWindow: 100 * time.Millisecond, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	type reply struct {
		resp pointResponse
		code int
	}
	replies := make([]reply, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src uint32) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/query/bfs",
				pointRequest{Source: src, Values: true, DeadlineMS: 30_000})
			replies[i].code = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(data, &replies[i].resp); err != nil {
					t.Error(err)
				}
			}
		}(i, src)
	}
	wg.Wait()

	for i := range sources {
		r := replies[i]
		if r.code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, r.code)
		}
		if len(r.resp.AllValues) != len(want[i]) {
			t.Fatalf("query %d: %d values, want %d", i, len(r.resp.AllValues), len(want[i]))
		}
		for v := range want[i] {
			if r.resp.AllValues[v] != want[i][v] {
				t.Fatalf("query %d vertex %d: served %d != sequential %d",
					i, v, r.resp.AllValues[v], want[i][v])
			}
		}
	}
	// All four arrived inside one window: they must have shared a batch.
	for i := range sources {
		if replies[i].resp.BatchSize != len(sources) {
			t.Fatalf("query %d ran in a batch of %d, want %d", i, replies[i].resp.BatchSize, len(sources))
		}
	}
}

// TestServeSSSPTargets checks the targets projection against a
// sequential SSSP run.
func TestServeSSSPTargets(t *testing.T) {
	g := fixture(t, 5)
	want := single(t, g, "sssp", 9)

	s, err := New(Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	targets := []uint32{0, 9, 77, 500}
	resp, data := postJSON(t, ts.URL+"/query/sssp",
		pointRequest{Source: 9, Targets: targets, DeadlineMS: 30_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr pointResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	for _, tv := range targets {
		if got := pr.Dist[fmt.Sprint(tv)]; got != want[tv] {
			t.Fatalf("target %d: served %d != sequential %d", tv, got, want[tv])
		}
	}
	if pr.AllValues != nil {
		t.Fatal("full values returned without being requested")
	}
}

// TestServeDeadlineShedClean is the governance contract: a query whose
// deadline expires mid-batch gets a classified 504, leaves zero pinned
// cache pages and zero scratch files, and the very next query computes
// correctly — a shed query must not poison the shared state.
func TestServeDeadlineShedClean(t *testing.T) {
	g := fixture(t, 33)
	dev := g.Device()
	cache := pagecache.NewSharded(128, dev.PageSize(), 4)
	dev.AttachCache(cache)
	want := single(t, g, "bfs", 12)

	// The batching window (50ms) alone outlives the 1ms deadline, so by
	// flush time the batch context is already expired: the engine sheds
	// at its first boundary check, classified as a deadline.
	s, err := New(Options{Graph: g, Cache: cache, BatchWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 12, DeadlineMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
	if code := errCode(t, data); code != "deadline" {
		t.Fatalf("error code %q, want deadline", code)
	}

	if p := cache.PinnedPages(); p != 0 {
		t.Fatalf("%d pages left pinned by the shed query", p)
	}
	for _, name := range dev.ListFiles() {
		if strings.HasPrefix(name, "g.q") {
			t.Fatalf("shed query left scratch file %q", name)
		}
	}

	// The daemon must still serve correct results afterwards.
	resp, data = postJSON(t, ts.URL+"/query/bfs",
		pointRequest{Source: 12, Values: true, DeadlineMS: 30_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", resp.StatusCode, data)
	}
	var pr pointResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if pr.AllValues[v] != want[v] {
			t.Fatalf("follow-up vertex %d: %d != %d", v, pr.AllValues[v], want[v])
		}
	}
	if p := cache.PinnedPages(); p != 0 {
		t.Fatalf("%d pages left pinned after follow-up", p)
	}
}

// TestServeAdmission covers the structured-rejection paths: malformed
// queries, out-of-range sources, queue overflow, and draining.
func TestServeAdmission(t *testing.T) {
	g := fixture(t, 44)
	s, err := New(Options{Graph: g, BatchWindow: 200 * time.Millisecond, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 1 << 20})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != "bad_request" {
		t.Fatalf("out-of-range source: status %d code %s", resp.StatusCode, data)
	}
	resp, _ = http.Post(ts.URL+"/query/bfs", "application/json", strings.NewReader("{nope"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Expired before admission: shed as a deadline without costing IO.
	resp, data = postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 1, DeadlineMS: -1})
	if resp.StatusCode != http.StatusOK { // -1 means "use default", not expired
		t.Fatalf("negative deadline should fall back to default: %d %s", resp.StatusCode, data)
	}

	// Queue overflow: with MaxQueue=1 and a long batching window, a
	// first query parks in the window and the second is shed.
	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 2, DeadlineMS: 30_000})
	}()
	time.Sleep(30 * time.Millisecond) // let the first query enter the window
	resp, data = postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 3})
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, data) != "overloaded" {
		t.Fatalf("overflow: status %d body %s", resp.StatusCode, data)
	}
	<-done

	// Draining: queries after Close are shed with shutting_down.
	s.Close()
	resp, data = postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 1})
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, data) != "shutting_down" {
		t.Fatalf("draining: status %d body %s", resp.StatusCode, data)
	}
}

// TestServeConcurrentMixed hammers the daemon with concurrent BFS and
// SSSP queries across several batches — under -race this is the shared
// cache/device/scope interference audit at the HTTP layer.
func TestServeConcurrentMixed(t *testing.T) {
	g := fixture(t, 55)
	dev := g.Device()
	cache := pagecache.NewSharded(128, dev.PageSize(), 4)
	dev.AttachCache(cache)

	kinds := []string{"bfs", "sssp", "bfs", "sssp", "bfs", "bfs", "sssp", "bfs"}
	sources := []uint32{1, 1, 42, 42, 300, 77, 300, 5}
	want := make([][]uint32, len(kinds))
	for i := range kinds {
		want[i] = single(t, g, kinds[i], sources[i])
	}

	s, err := New(Options{
		Graph: g, Cache: cache,
		BatchWindow: 20 * time.Millisecond, MaxBatch: 4, MaxConcurrent: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	for i := range kinds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/query/"+kinds[i],
				pointRequest{Source: sources[i], Values: true, DeadlineMS: 60_000})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			var pr pointResponse
			if err := json.Unmarshal(data, &pr); err != nil {
				t.Error(err)
				return
			}
			for v := range want[i] {
				if pr.AllValues[v] != want[i][v] {
					t.Errorf("query %d (%s from %d) vertex %d: %d != %d",
						i, kinds[i], sources[i], v, pr.AllValues[v], want[i][v])
					return
				}
			}
		}(i)
	}
	wg.Wait()

	if p := cache.PinnedPages(); p != 0 {
		t.Fatalf("%d pages left pinned after the storm", p)
	}
	for _, name := range dev.ListFiles() {
		if strings.HasPrefix(name, "g.q") {
			t.Fatalf("scratch file %q survived", name)
		}
	}
}

// TestServeWalkDeterministic checks that walk batches are reproducible
// and structurally valid.
func TestServeWalkDeterministic(t *testing.T) {
	g := fixture(t, 66)
	s, err := New(Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := walkRequest{Source: 3, Walks: 4, Length: 8, Seed: 99}
	var got [2]walkResponse
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/walk", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &got[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(got[0].Paths) != 4 {
		t.Fatalf("%d paths, want 4", len(got[0].Paths))
	}
	for wi, p := range got[0].Paths {
		if p[0] != 3 {
			t.Fatalf("walk %d starts at %d, want 3", wi, p[0])
		}
		if len(p) > 9 {
			t.Fatalf("walk %d has %d hops, cap is 8", wi, len(p)-1)
		}
		other := got[1].Paths[wi]
		if len(p) != len(other) {
			t.Fatalf("walk %d not deterministic: lengths %d vs %d", wi, len(p), len(other))
		}
		for j := range p {
			if p[j] != other[j] {
				t.Fatalf("walk %d hop %d: %d vs %d", wi, j, p[j], other[j])
			}
		}
	}

	resp, data := postJSON(t, ts.URL+"/walk", walkRequest{Source: 3, Walks: 1000})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != "bad_request" {
		t.Fatalf("oversized walk batch: status %d body %s", resp.StatusCode, data)
	}
}

// TestServeIntrospection covers /graph and /stats.
func TestServeIntrospection(t *testing.T) {
	g := fixture(t, 77)
	s, err := New(Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/graph")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Name     string `json:"name"`
		Vertices uint32 `json:"vertices"`
		Edges    uint64 `json:"edges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Name != "g" || info.Vertices != g.NumVertices() || info.Edges != g.NumEdges() {
		t.Fatalf("graph info mismatch: %+v", info)
	}

	// One served query, then /stats must reflect scoped query IO.
	if resp, data := postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, data)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Serving map[string]int64 `json:"serving"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Serving["batches_run"] < 1 {
		t.Fatalf("batches_run = %d, want >= 1", stats.Serving["batches_run"])
	}
	if stats.Serving["query_pages_read"] < 1 {
		t.Fatalf("query_pages_read = %d, want >= 1", stats.Serving["query_pages_read"])
	}
}
