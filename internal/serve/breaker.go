package serve

import (
	"sync"
	"time"
)

// The fault circuit breaker is the daemon's health model: a sliding
// window of per-query execution outcomes that trips open under sustained
// device faults (retries exhausted, unrecoverable corruption, quota held
// after reclamation), sheds load with 503 + Retry-After while open, and
// probes its way closed again once the device recovers. The serving plane
// inherits the engine's fault classification (internal/serve errors.go);
// the breaker turns that per-query signal into an operator-facing
// liveness/readiness state and into brownout pressure on the batching
// parameters.
//
// State machine:
//
//	closed     outcomes feed the window; fault rate >= Threshold over
//	           >= MinSamples outcomes trips open.
//	open       every query is shed with breaker_open + Retry-After until
//	           Cooldown elapses, then the next arrival flips half-open.
//	half-open  up to Probes queries are admitted concurrently; Probes
//	           consecutive successes close the breaker (window reset),
//	           any fault re-opens it for another Cooldown.
//
// Outcomes are ternary: fault (device evidence), success, and neutral
// (deadlines, cancellations, panics, shutdown — real failures, but not
// evidence the device is sick). Neutral outcomes keep the half-open
// probe accounting balanced without polluting the window.

// Breaker outcome classes, recorded once per admitted query at its final
// resolution.
type outcome int

const (
	outcomeSuccess outcome = iota
	outcomeFault
	outcomeNeutral
)

// Breaker states, exposed verbatim in /stats and /readyz.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half_open"
)

type breakerConfig struct {
	window     int           // sliding-window size in outcomes
	threshold  float64       // fault rate that trips the breaker
	minSamples int           // outcomes required before tripping
	cooldown   time.Duration // open -> half-open delay
	probes     int           // concurrent half-open probes; also successes to close
}

func (c breakerConfig) withDefaults() breakerConfig {
	if c.window <= 0 {
		c.window = 32
	}
	if c.threshold <= 0 || c.threshold > 1 {
		c.threshold = 0.5
	}
	if c.minSamples <= 0 {
		c.minSamples = 8
	}
	if c.minSamples > c.window {
		c.minSamples = c.window
	}
	if c.cooldown <= 0 {
		c.cooldown = 5 * time.Second
	}
	if c.probes <= 0 {
		c.probes = 2
	}
	return c
}

// breaker is safe for concurrent use by every handler and batch
// goroutine. The clock is injectable so unit tests drive the cooldown
// deterministically.
type breaker struct {
	cfg    breakerConfig
	now    func() time.Time
	onOpen func() // fires on every closed/half-open -> open transition

	mu       sync.Mutex
	state    string
	ring     []bool // true = fault
	idx      int
	filled   int
	faults   int
	openedAt time.Time
	inFlight int // half-open probes admitted but unresolved
	closeRun int // consecutive half-open probe successes
}

func newBreaker(cfg breakerConfig, onOpen func()) *breaker {
	return &breaker{cfg: cfg.withDefaults(), now: time.Now, state: breakerClosed, onOpen: onOpen}
}

// admit decides whether a query may enter the serving plane. A false
// return carries the Retry-After hint in seconds. Every true return MUST
// be balanced by exactly one record call once the query resolves —
// half-open probe accounting depends on it.
func (b *breaker) admit() (ok bool, retryAfter int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		remaining := b.cfg.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return false, retrySeconds(remaining)
		}
		// Cooldown served: this arrival is the first probe.
		b.state = breakerHalfOpen
		b.inFlight = 0
		b.closeRun = 0
		fallthrough
	default: // half-open
		if b.inFlight >= b.cfg.probes {
			return false, 1
		}
		b.inFlight++
		return true, 0
	}
}

// record resolves one admitted query. Faults push the window toward open
// (closed) or trip it immediately (half-open); successes close a
// half-open breaker after cfg.probes in a row; neutral outcomes only
// release probe slots.
func (b *breaker) record(o outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if o == outcomeNeutral {
			return
		}
		if len(b.ring) == 0 {
			b.ring = make([]bool, b.cfg.window)
		}
		if b.filled == len(b.ring) && b.ring[b.idx] {
			b.faults--
		}
		b.ring[b.idx] = o == outcomeFault
		if o == outcomeFault {
			b.faults++
		}
		b.idx = (b.idx + 1) % len(b.ring)
		if b.filled < len(b.ring) {
			b.filled++
		}
		if b.filled >= b.cfg.minSamples &&
			float64(b.faults)/float64(b.filled) >= b.cfg.threshold {
			b.tripLocked()
		}
	case breakerHalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		switch o {
		case outcomeFault:
			b.tripLocked()
		case outcomeSuccess:
			b.closeRun++
			if b.closeRun >= b.cfg.probes {
				b.state = breakerClosed
				b.filled, b.faults, b.idx = 0, 0, 0
				b.inFlight, b.closeRun = 0, 0
			}
		}
	case breakerOpen:
		// A straggler from before the trip; its evidence is stale.
	}
}

// recordN resolves n queries with the same outcome (a batch fanning out).
func (b *breaker) recordN(o outcome, n int) {
	for i := 0; i < n; i++ {
		b.record(o)
	}
}

// tripLocked transitions to open; the caller holds b.mu.
func (b *breaker) tripLocked() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.filled, b.faults, b.idx = 0, 0, 0
	b.inFlight, b.closeRun = 0, 0
	if b.onOpen != nil {
		b.onOpen()
	}
}

// breakerSnapshot is the operator view, embedded in /stats and /readyz.
type breakerSnapshot struct {
	State string `json:"state"`
	// FaultRate is the windowed fault rate feeding the trip decision
	// (meaningful while closed; the window resets on every transition).
	FaultRate float64 `json:"fault_rate"`
	Samples   int     `json:"samples"`
	// RetryAfterS is the shed hint while open, 0 otherwise.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

func (b *breaker) snapshot() breakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := breakerSnapshot{State: b.state, Samples: b.filled}
	if b.filled > 0 {
		s.FaultRate = float64(b.faults) / float64(b.filled)
	}
	if b.state == breakerOpen {
		if remaining := b.cfg.cooldown - b.now().Sub(b.openedAt); remaining > 0 {
			s.RetryAfterS = retrySeconds(remaining)
		} else {
			s.RetryAfterS = 1
		}
	}
	return s
}

// brownout reports whether the serving plane should shrink its batching
// parameters: any non-closed state, or a closed window already at half
// the trip threshold. Smaller batches bound the blast radius of the next
// faulty execution (fewer co-batched victims to isolate) while the
// device is suspect.
func (b *breaker) brownout() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		return true
	}
	return b.filled >= (b.cfg.minSamples+1)/2 &&
		float64(b.faults)/float64(b.filled) >= b.cfg.threshold/2
}

// retrySeconds rounds a duration up to whole seconds, floor 1.
func retrySeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
