package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/ssd"
	"multilogvc/internal/wal"
)

// replicaFixture builds the same base graph on two independent devices
// and opens both WAL-backed — the "seeded from a copy of the primary"
// starting state of a follower.
func replicaFixture(t *testing.T, seed int64) (pg, fg *csr.Graph) {
	t.Helper()
	edges, err := gen.RMAT(gen.DefaultRMAT(9, 8, seed))
	if err != nil {
		t.Fatal(err)
	}
	gs := make([]*csr.Graph, 2)
	for i := range gs {
		dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
		if _, err := csr.Build(dev, "g", edges, csr.BuildOptions{NumVertices: 1 << 9, IntervalBudget: 2048}); err != nil {
			t.Fatal(err)
		}
		g, err := csr.OpenIngest(dev, "g", csr.IngestOptions{WAL: true, MergeThreshold: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		gs[i] = g
	}
	return gs[0], gs[1]
}

func mutateN(t *testing.T, url string, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	muts := make([]mutationSpec, n)
	for i := range muts {
		op := "add"
		if rng.Intn(4) == 0 {
			op = "del"
		}
		muts[i] = mutationSpec{Op: op, Src: uint32(rng.Intn(1 << 9)), Dst: uint32(rng.Intn(1 << 9))}
	}
	resp, data := postJSON(t, url+"/mutate", mutateRequest{Mutations: muts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, data)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func getJSON(t *testing.T, url string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, m
}

// TestFollowerCatchUpAndPromote is the end-to-end replication path over
// real HTTP: a follower tails the primary, converges to the identical
// graph (BFS values bit-identical), rejects /mutate with read_only,
// reports follower role and zero lag, then promotes via /admin/promote
// and becomes writable.
func TestFollowerCatchUpAndPromote(t *testing.T) {
	pg, fg := replicaFixture(t, 33)
	ps, err := New(Options{Graph: pg, EnableIngest: true, EnableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	tsP := httptest.NewServer(ps)
	defer tsP.Close()

	fs, err := New(Options{Graph: fg, EnableIngest: true, EnableReplication: true, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	tsF := httptest.NewServer(fs)
	defer tsF.Close()

	fol, err := fs.StartFollower(FollowerOptions{Primary: tsP.URL, Poll: 3 * time.Millisecond, LagThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}

	mutateN(t, tsP.URL, 40, 1)
	mutateN(t, tsP.URL, 25, 2)

	waitFor(t, "follower catch-up", func() bool {
		return fg.AppliedSeq() == pg.AppliedSeq() && pg.AppliedSeq() == 65
	})

	// read_only: mutations are refused with the structured 403.
	resp, data := postJSON(t, tsF.URL+"/mutate",
		mutateRequest{Mutations: []mutationSpec{{Op: "add", Src: 1, Dst: 2}}})
	if resp.StatusCode != http.StatusForbidden || errCode(t, data) != "read_only" {
		t.Fatalf("follower mutate: %d %s", resp.StatusCode, data)
	}

	// Query parity: full BFS value arrays identical on both nodes.
	var got [2]pointResponse
	for i, url := range []string{tsP.URL, tsF.URL} {
		resp, data := postJSON(t, url+"/query/bfs", pointRequest{Source: 3, Values: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bfs on node %d: %d %s", i, resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &got[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(got[0].AllValues) == 0 || len(got[0].AllValues) != len(got[1].AllValues) {
		t.Fatalf("value lengths: %d vs %d", len(got[0].AllValues), len(got[1].AllValues))
	}
	for v := range got[0].AllValues {
		if got[0].AllValues[v] != got[1].AllValues[v] {
			t.Fatalf("vertex %d: primary %d, follower %d", v, got[0].AllValues[v], got[1].AllValues[v])
		}
	}

	// Stats surface: follower role, synced cursor, zero lag.
	code, st := getJSON(t, tsF.URL+"/stats")
	if code != http.StatusOK || st["role"] != "follower" || st["read_only"] != true {
		t.Fatalf("follower stats: %d role=%v read_only=%v", code, st["role"], st["read_only"])
	}
	rep := st["replica"].(map[string]interface{})
	if rep["applied_seq"].(float64) != 65 || rep["lag_frames"].(float64) != 0 {
		t.Fatalf("replica stats: %v", rep)
	}
	if code, _ := getJSON(t, tsF.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("synced follower readyz = %d", code)
	}

	// Promote on a non-follower is a client error.
	resp, data = postJSON(t, tsP.URL+"/admin/promote", struct{}{})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != "bad_request" {
		t.Fatalf("promote on primary: %d %s", resp.StatusCode, data)
	}

	// Promote the follower: it becomes writable, keeps its applied seq,
	// and continues the sequence numbering.
	resp, _ = postJSON(t, tsF.URL+"/admin/promote", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d", resp.StatusCode)
	}
	if !fol.Promoted() {
		t.Fatal("follower not promoted")
	}
	resp, data = postJSON(t, tsF.URL+"/mutate",
		mutateRequest{Mutations: []mutationSpec{{Op: "add", Src: 1, Dst: 2}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-promote mutate: %d %s", resp.StatusCode, data)
	}
	var mr mutateResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != 66 {
		t.Fatalf("post-promote epoch = %d, want 66 (sequence continues)", mr.Epoch)
	}
	code, st = getJSON(t, tsF.URL+"/stats")
	if code != http.StatusOK || st["role"] != "promoted" || st["read_only"] != false {
		t.Fatalf("promoted stats: role=%v read_only=%v", st["role"], st["read_only"])
	}
	// The promoted node serves /replicate itself (chained followers).
	hr, err := http.Get(tsF.URL + "/replicate?from=60")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("promoted /replicate: %d", hr.StatusCode)
	}
}

// TestFollowerLagReadiness drives the poll loop by hand (no goroutine)
// to pin the readiness transitions deterministically: connecting ->
// lagging past the threshold (503) -> caught up (200).
func TestFollowerLagReadiness(t *testing.T) {
	pg, fg := replicaFixture(t, 34)
	ps, err := New(Options{Graph: pg, EnableIngest: true, EnableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	tsP := httptest.NewServer(ps)
	defer tsP.Close()

	fs, err := New(Options{Graph: fg, EnableIngest: true, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	tsF := httptest.NewServer(fs)
	defer tsF.Close()
	fol, err := fs.newFollower(FollowerOptions{Primary: tsP.URL, BatchMax: 4, LagThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}

	code, body := getJSON(t, tsF.URL+"/readyz")
	if code != http.StatusServiceUnavailable || body["reason"] != "replica_connecting" {
		t.Fatalf("pre-sync readyz: %d %v", code, body["reason"])
	}

	mutateN(t, tsP.URL, 20, 3)

	// One poll applies BatchMax=4 of 20: lag 16 > threshold 3 -> unready.
	if _, err := fol.pollOnce(); err != nil {
		t.Fatal(err)
	}
	code, body = getJSON(t, tsF.URL+"/readyz")
	if code != http.StatusServiceUnavailable || body["reason"] != "replica_lag" {
		t.Fatalf("lagging readyz: %d %v", code, body["reason"])
	}
	rep := body["replica"].(map[string]interface{})
	if rep["lag_frames"].(float64) != 16 {
		t.Fatalf("lag_frames = %v, want 16", rep["lag_frames"])
	}

	// Catch up; readiness recovers.
	for i := 0; i < 6; i++ {
		if _, err := fol.pollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if fg.AppliedSeq() != 20 {
		t.Fatalf("applied %d, want 20", fg.AppliedSeq())
	}
	code, _ = getJSON(t, tsF.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("caught-up readyz = %d", code)
	}
}

// TestFollowerGapIsSticky merges the primary past the follower's cursor
// and checks the poll surfaces the classified gap, readiness flips to
// replica_gap, and it does not clear on retry.
func TestFollowerGapIsSticky(t *testing.T) {
	pg, fg := replicaFixture(t, 35)
	ps, err := New(Options{Graph: pg, EnableIngest: true, EnableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	tsP := httptest.NewServer(ps)
	defer tsP.Close()

	fs, err := New(Options{Graph: fg, EnableIngest: true, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	tsF := httptest.NewServer(fs)
	defer tsF.Close()
	fol, err := fs.newFollower(FollowerOptions{Primary: tsP.URL})
	if err != nil {
		t.Fatal(err)
	}

	mutateN(t, tsP.URL, 10, 4)
	if err := pg.MergeInterval(0); err != nil {
		t.Fatal(err)
	}
	if _, err := fol.pollOnce(); !errors.Is(err, wal.ErrSeqGap) {
		t.Fatalf("poll past merge: err = %v, want wal.ErrSeqGap", err)
	}
	code, body := getJSON(t, tsF.URL+"/readyz")
	if code != http.StatusServiceUnavailable || body["reason"] != "replica_gap" {
		t.Fatalf("gap readyz: %d %v", code, body["reason"])
	}
	if _, err := fol.pollOnce(); !errors.Is(err, wal.ErrSeqGap) {
		t.Fatal("gap did not stick")
	}
}

// TestPromoteOnDisconnect kills the primary and checks the follower
// promotes itself after the grace window.
func TestPromoteOnDisconnect(t *testing.T) {
	pg, fg := replicaFixture(t, 36)
	ps, err := New(Options{Graph: pg, EnableIngest: true, EnableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	tsP := httptest.NewServer(ps)

	fs, err := New(Options{Graph: fg, EnableIngest: true, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	tsF := httptest.NewServer(fs)
	defer tsF.Close()
	fol, err := fs.StartFollower(FollowerOptions{
		Primary:             tsP.URL,
		Poll:                2 * time.Millisecond,
		PromoteOnDisconnect: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	mutateN(t, tsP.URL, 12, 5)
	waitFor(t, "sync before kill", func() bool { return fg.AppliedSeq() == 12 })

	tsP.Close() // primary dies
	waitFor(t, "auto-promotion", fol.Promoted)

	resp, data := postJSON(t, tsF.URL+"/mutate",
		mutateRequest{Mutations: []mutationSpec{{Op: "add", Src: 5, Dst: 6}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-auto-promote mutate: %d %s", resp.StatusCode, data)
	}
	st := fol.status()
	if st.Role != "promoted" || !strings.Contains(st.PromoteReason, "unreachable") {
		t.Fatalf("status after auto-promote: %+v", st)
	}
}

// TestMutateOutOfRangeNamesBound pins the satellite contract: a mutation
// on a vertex at or past NumVertices is a structured bad_request whose
// message names the bound, both via handler validation and via the
// csr sentinel classification.
func TestMutateOutOfRangeNamesBound(t *testing.T) {
	g := fixture(t, 37)
	s, err := New(Options{Graph: g, EnableIngest: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/mutate",
		mutateRequest{Mutations: []mutationSpec{{Op: "add", Src: 1 << 9, Dst: 0}}})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != "bad_request" {
		t.Fatalf("out-of-range mutate: %d %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), fmt.Sprint(1<<9)) {
		t.Fatalf("error does not name the bound: %s", data)
	}
	// The csr sentinel classifies the same way (the path replication and
	// future vertex-growth work will take).
	if code, status := classify(fmt.Errorf("wrap: %w", csr.ErrVertexOutOfRange)); code != "bad_request" || status != http.StatusBadRequest {
		t.Fatalf("classify(ErrVertexOutOfRange) = %s, %d", code, status)
	}
}

// TestReplicateEndpointValidation covers the handler's client-error and
// not-durable paths.
func TestReplicateEndpointValidation(t *testing.T) {
	// A volatile graph (no WAL) cannot ship frames.
	g := fixture(t, 38)
	s, err := New(Options{Graph: g, EnableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/replicate?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("volatile /replicate: %d, want 503 not_ready", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/replicate?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: %d", resp.StatusCode)
	}
}
