package serve

// GET /replicate is the primary's half of WAL-shipping replication: it
// serves verbatim CRC-framed WAL records out of the durable window so a
// follower can tail the mutation stream. The frames on the wire are
// byte-identical to the frames on the primary's device — the follower
// re-validates every CRC, so a mangled transport can never inject a
// mutation. POST /admin/promote is the operator's failover lever on a
// follower.

import (
	"errors"
	"net/http"
	"strconv"

	"multilogvc/internal/obsv"
	"multilogvc/internal/wal"
)

// maxReplicateBatch bounds one /replicate response; a follower further
// behind simply polls again (each fetch advances its cursor).
const maxReplicateBatch = 65536

// handleReplicate streams a batch of WAL frames starting at ?from=<seq>
// (capped by ?max=<n>). Headers carry the window bookkeeping:
// X-Mlvc-Last-Seq is the primary's highest durable seq (the follower's
// lag reference), X-Mlvc-Frames the batch size. A from below the durable
// window — those frames were folded by a merge and truncated — is 410
// Gone with code "gap": the follower must re-seed, not skip.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "GET required")
		return
	}
	q := r.URL.Query()
	from := uint64(1)
	if v := q.Get("from"); v != "" {
		p, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "invalid from: "+err.Error())
			return
		}
		from = p
	}
	max := 4096
	if v := q.Get("max"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			writeError(w, http.StatusBadRequest, "bad_request", "invalid max")
			return
		}
		max = p
	}
	if max > maxReplicateBatch {
		max = maxReplicateBatch
	}

	recs, last, err := s.g.ReplicationFrames(from, max)
	if err != nil {
		if errors.Is(err, wal.ErrSeqGap) {
			writeError(w, http.StatusGone, "gap", err.Error())
			return
		}
		code, status := classify(err)
		writeError(w, status, code, err.Error())
		return
	}
	body := wal.EncodeFrames(recs)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Mlvc-From", strconv.FormatUint(from, 10))
	w.Header().Set("X-Mlvc-Frames", strconv.Itoa(len(recs)))
	w.Header().Set("X-Mlvc-Last-Seq", strconv.FormatUint(last, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	if len(recs) > 0 {
		obsv.Live().FramesShipped.Add(int64(len(recs)))
	}
}

// handlePromote flips a follower writable: replication stops, /mutate
// opens, and the node is the new primary (its own /replicate keeps
// serving, so chained followers can re-point here). Idempotent; 400 on a
// node that is not a follower.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	f := s.fol.Load()
	if f == nil {
		writeError(w, http.StatusBadRequest, "bad_request", "not a follower: this node is already writable")
		return
	}
	first := f.Promote("operator request via /admin/promote")
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"promoted":    true,
		"first":       first, // false: it was already promoted
		"applied_seq": s.g.AppliedSeq(),
	})
}
