package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/core"
	"multilogvc/internal/obsv"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// pointQuery is one admitted point query waiting for (a share of) an
// engine execution.
type pointQuery struct {
	source   uint32
	deadline time.Time
	done     chan pointResult // buffered(1); runBatch never blocks on it
}

// pointResult is what one query gets back from its batch.
type pointResult struct {
	values       []uint32 // this lane's per-vertex distances (Inf = unreached)
	batchSize    int
	supersteps   int
	pagesRead    uint64 // the whole batch's scoped device reads
	pagesWritten uint64
	err          error
}

// batcher coalesces compatible point queries of one app kind. The first
// query to arrive opens a window (Options.BatchWindow); companions
// arriving inside it join the same lane-batched execution. A full batch
// (Options.MaxBatch) flushes early.
type batcher struct {
	s    *Server
	kind string // "bfs" or "sssp"

	mu      sync.Mutex
	pending []*pointQuery
	timer   *time.Timer
}

func newBatcher(s *Server, kind string) *batcher {
	return &batcher{s: s, kind: kind}
}

// enqueue admits q into the current window, flushing when the batch
// fills. Returns an error only when the server is draining.
func (b *batcher) enqueue(q *pointQuery) error {
	b.mu.Lock()
	if b.s.closed.Load() {
		b.mu.Unlock()
		return fmt.Errorf("serve: shutting down")
	}
	b.pending = append(b.pending, q)
	if len(b.pending) >= b.s.opts.MaxBatch {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.launch(batch)
		return nil
	}
	if len(b.pending) == 1 {
		b.timer = time.AfterFunc(b.s.opts.BatchWindow, b.flushNow)
	}
	b.mu.Unlock()
	return nil
}

// flushNow closes the current window and launches whatever is pending.
// Also called on server Close to drain without waiting for the timer.
func (b *batcher) flushNow() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.launch(batch)
}

// takeLocked detaches the pending batch; the caller holds b.mu.
func (b *batcher) takeLocked() []*pointQuery {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

func (b *batcher) launch(batch []*pointQuery) {
	if len(batch) == 0 {
		return
	}
	b.s.wg.Add(1)
	go b.runBatch(batch)
}

// runBatch executes one lane-batched engine run for batch and fans the
// per-lane results back out. The batch's context deadline is the LATEST
// member deadline: a member whose own deadline passes while a
// longer-deadline companion keeps the run alive still gets its result
// ("late but computed" beats recomputing), while a batch whose every
// member expired is cut and everyone gets a classified deadline error.
func (b *batcher) runBatch(batch []*pointQuery) {
	defer b.s.wg.Done()

	// One execution slot from the admission semaphore.
	b.s.sem <- struct{}{}
	defer func() { <-b.s.sem }()

	sources := make([]uint32, len(batch))
	latest := batch[0].deadline
	for i, q := range batch {
		sources[i] = q.source
		if q.deadline.After(latest) {
			latest = q.deadline
		}
	}

	var prog vc.Program
	var err error
	switch b.kind {
	case "bfs":
		prog, err = apps.NewMultiBFS(sources)
	case "sssp":
		prog, err = apps.NewMultiSSSP(sources)
	default:
		err = fmt.Errorf("serve: unknown batch kind %q", b.kind)
	}
	if err != nil {
		b.fail(batch, err)
		return
	}

	sc := ssd.NewScope()
	cfg := core.Config{
		MemoryBudget:  b.s.opts.MemoryBudget,
		MaxSupersteps: b.s.opts.MaxSupersteps,
		Cache:         b.s.opts.Cache,
		RunTag:        fmt.Sprintf("q%d", b.s.runSeq.Add(1)),
		Ephemeral:     true,
		Scope:         sc,
	}
	if cfg.Cache != nil {
		pf := pagecache.NewPrefetcher(8)
		defer pf.Close()
		cfg.Prefetcher = pf
	}

	ctx, cancel := context.WithDeadline(context.Background(), latest)
	defer cancel()
	res, err := core.New(b.s.g, cfg).RunCtx(ctx, prog)

	live := obsv.Live()
	live.BatchesRun.Add(1)
	if len(batch) > 1 {
		live.BatchedQueries.Add(int64(len(batch)))
	}
	st := sc.Stats()
	live.QueryPagesRead.Add(int64(st.PagesRead))
	live.QueryPagesWrite.Add(int64(st.PagesWritten))

	if err != nil {
		b.fail(batch, err)
		return
	}
	for i, q := range batch {
		q.done <- pointResult{
			values:       apps.LaneResult(res.Values, len(batch), i),
			batchSize:    len(batch),
			supersteps:   len(res.Report.Supersteps),
			pagesRead:    st.PagesRead,
			pagesWritten: st.PagesWritten,
		}
	}
}

func (b *batcher) fail(batch []*pointQuery, err error) {
	for _, q := range batch {
		q.done <- pointResult{err: err, batchSize: len(batch)}
	}
}
