package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/core"
	"multilogvc/internal/obsv"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/ssd"
	"multilogvc/internal/vc"
)

// pointQuery is one admitted point query waiting for (a share of) an
// engine execution.
type pointQuery struct {
	source    uint32
	deadline  time.Time
	done      chan pointResult // buffered(1)
	delivered atomic.Bool      // deliver() wins exactly once
}

// deliver hands the query its result exactly once. The panic-recovery
// path re-fails a batch without knowing which members already heard
// back; the CAS makes double delivery a no-op instead of a blocked send.
func (q *pointQuery) deliver(res pointResult) {
	if q.delivered.CompareAndSwap(false, true) {
		q.done <- res
	}
}

// pointResult is what one query gets back from its batch (or from its
// solo re-run, when batch fault isolation kicked in).
type pointResult struct {
	values       []uint32 // this lane's per-vertex distances (Inf = unreached)
	batchSize    int
	supersteps   int
	pagesRead    uint64 // the whole execution's scoped device reads
	pagesWritten uint64
	isolated     bool // answered by a solo re-run after its batch faulted
	err          error
}

// batcher coalesces compatible point queries of one app kind. The first
// query to arrive opens a window (Options.BatchWindow); companions
// arriving inside it join the same lane-batched execution. A full batch
// (Options.MaxBatch) flushes early. Under brownout (breaker pressure)
// both limits shrink so a faulty execution has fewer co-batched victims.
type batcher struct {
	s    *Server
	kind string // "bfs" or "sssp"

	mu      sync.Mutex
	pending []*pointQuery
	timer   *time.Timer
}

func newBatcher(s *Server, kind string) *batcher {
	return &batcher{s: s, kind: kind}
}

// enqueue admits q into the current window, flushing when the batch
// fills. Returns an error only when the server is draining.
func (b *batcher) enqueue(q *pointQuery) error {
	maxBatch, window := b.s.batchParams()
	b.mu.Lock()
	if b.s.closed.Load() {
		b.mu.Unlock()
		return fmt.Errorf("serve: shutting down")
	}
	b.pending = append(b.pending, q)
	if len(b.pending) >= maxBatch {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.launch(batch)
		return nil
	}
	if len(b.pending) == 1 {
		b.timer = time.AfterFunc(window, b.flushNow)
	}
	b.mu.Unlock()
	return nil
}

// flushNow closes the current window and launches whatever is pending.
// Also called on server Close to drain without waiting for the timer.
func (b *batcher) flushNow() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.launch(batch)
}

// takeLocked detaches the pending batch; the caller holds b.mu.
func (b *batcher) takeLocked() []*pointQuery {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

func (b *batcher) launch(batch []*pointQuery) {
	if len(batch) == 0 {
		return
	}
	b.s.wg.Add(1)
	go b.runBatch(batch)
}

// retryable reports whether a failed batch execution is worth isolating:
// the fault families where re-running members individually can plausibly
// succeed (a transient storm that exhausted retries, corruption that a
// fresh run's fresh scratch won't re-read, quota pressure that smaller
// solo runs fit under). Deadlines and cancellations are not — the
// members' own deadlines are as dead solo as batched.
func retryable(err error) bool {
	return errors.Is(err, ssd.ErrRetriesExhausted) ||
		errors.Is(err, core.ErrCorruptData) ||
		errors.Is(err, ssd.ErrCorruptPage) ||
		errors.Is(err, ssd.ErrNoSpace)
}

// runBatch executes one lane-batched engine run for batch and fans the
// per-lane results back out. The batch's context deadline is the LATEST
// member deadline: a member whose own deadline passes while a
// longer-deadline companion keeps the run alive still gets its result
// ("late but computed" beats recomputing), while a batch whose every
// member expired is cut before it costs an execution slot. A retryable
// device fault does not fail the companions: surviving members re-run
// solo within their remaining deadlines (batch fault isolation).
func (b *batcher) runBatch(batch []*pointQuery) {
	defer b.s.wg.Done()
	live := obsv.Live()

	// Panic containment at the batch-goroutine boundary: a panic here
	// (engine internals beyond core's own recovery, or serving code)
	// must not kill the daemon. Members that have not heard back get a
	// classified internal error; the run's scratch namespace is swept
	// (the engine's own ephemeral sweep already ran during unwinding if
	// the panic rose through it — this one covers panics around it).
	var tag string
	defer func() {
		if rec := recover(); rec != nil {
			live.PanicsRecovered.Add(1)
			if tag != "" {
				_, _ = b.s.dev.RemovePrefix(b.s.g.Name() + "." + tag + ".")
			}
			err := fmt.Errorf("serve: panic in batch execution: %v", rec)
			for _, q := range batch {
				q.deliver(pointResult{err: err, batchSize: len(batch)})
			}
			b.s.brk.recordN(outcomeNeutral, len(batch))
		}
	}()

	sources := make([]uint32, len(batch))
	latest := batch[0].deadline
	for i, q := range batch {
		sources[i] = q.source
		if q.deadline.After(latest) {
			latest = q.deadline
		}
	}

	// Fast-fail a fully-expired batch before it costs anything: no
	// semaphore slot, no program build, no engine. (Queries park in the
	// batching window and the admission queue; a short-deadline batch
	// can be dead on flush.)
	if !latest.After(time.Now()) {
		err := fmt.Errorf("serve: every batch member's deadline expired before execution: %w", core.ErrDeadline)
		for _, q := range batch {
			q.deliver(pointResult{err: err, batchSize: len(batch)})
		}
		b.s.brk.recordN(outcomeNeutral, len(batch))
		return
	}

	// One execution slot from the admission semaphore.
	b.s.sem <- struct{}{}
	defer func() { <-b.s.sem }()

	if b.s.testBatchHook != nil {
		b.s.testBatchHook(b.kind, len(batch))
	}

	var prog vc.Program
	var err error
	switch b.kind {
	case "bfs":
		prog, err = apps.NewMultiBFS(sources)
	case "sssp":
		prog, err = apps.NewMultiSSSP(sources)
	default:
		err = fmt.Errorf("serve: unknown batch kind %q", b.kind)
	}
	if err != nil {
		for _, q := range batch {
			q.deliver(pointResult{err: err, batchSize: len(batch)})
		}
		b.s.brk.recordN(outcomeNeutral, len(batch))
		return
	}

	tag = fmt.Sprintf("q%d", b.s.runSeq.Add(1))
	ctx, cancel := context.WithDeadline(context.Background(), latest)
	defer cancel()
	res, st, err := b.s.runEngine(ctx, tag, prog)

	live.BatchesRun.Add(1)
	if len(batch) > 1 {
		live.BatchedQueries.Add(int64(len(batch)))
	}
	live.QueryPagesRead.Add(int64(st.PagesRead))
	live.QueryPagesWrite.Add(int64(st.PagesWritten))

	if err != nil {
		if len(batch) > 1 && retryable(err) {
			b.isolate(batch, err)
			return
		}
		o := outcomeNeutral
		if retryable(err) {
			o = outcomeFault
		}
		for _, q := range batch {
			q.deliver(pointResult{err: err, batchSize: len(batch)})
		}
		b.s.brk.recordN(o, len(batch))
		return
	}
	for i, q := range batch {
		q.deliver(pointResult{
			values:       apps.LaneResult(res.Values, len(batch), i),
			batchSize:    len(batch),
			supersteps:   len(res.Report.Supersteps),
			pagesRead:    st.PagesRead,
			pagesWritten: st.PagesWritten,
		})
	}
	b.s.brk.recordN(outcomeSuccess, len(batch))
}

// isolate is batch fault isolation: the lane-batched execution died of a
// retryable device fault, so each member with deadline remaining re-runs
// as an individual single-source execution instead of inheriting its
// companions' failure. Solo runs execute sequentially under the batch's
// admission slot — isolation is bounded to one extra run per member and
// never multiplies the daemon's engine concurrency.
func (b *batcher) isolate(batch []*pointQuery, batchErr error) {
	live := obsv.Live()
	live.QueriesIsolated.Add(int64(len(batch)))
	for _, q := range batch {
		if !q.deadline.After(time.Now()) {
			// No time left for a solo run: the batch's classified fault
			// is this member's honest outcome.
			q.deliver(pointResult{err: batchErr, batchSize: len(batch)})
			b.s.brk.record(outcomeFault)
			continue
		}
		live.QueriesRetried.Add(1)
		res := b.runSolo(q, batchErr)
		o := outcomeSuccess
		if res.err != nil {
			o = outcomeNeutral
			if retryable(res.err) {
				o = outcomeFault
			}
		}
		q.deliver(res)
		b.s.brk.record(o)
	}
}

// runSolo executes one member's single-source program under its own
// deadline, scratch namespace, and IO scope.
func (b *batcher) runSolo(q *pointQuery, batchErr error) pointResult {
	prog, err := apps.NewPoint(b.kind, q.source)
	if err != nil {
		return pointResult{err: err, batchSize: 1}
	}
	tag := fmt.Sprintf("q%d", b.s.runSeq.Add(1))
	ctx, cancel := context.WithDeadline(context.Background(), q.deadline)
	defer cancel()
	res, st, err := b.s.runEngine(ctx, tag, prog)

	live := obsv.Live()
	live.BatchesRun.Add(1)
	live.QueryPagesRead.Add(int64(st.PagesRead))
	live.QueryPagesWrite.Add(int64(st.PagesWritten))
	if err != nil {
		return pointResult{
			err:       fmt.Errorf("batch failed (%v); solo retry failed: %w", batchErr, err),
			batchSize: 1, isolated: true,
		}
	}
	return pointResult{
		values:       res.Values,
		batchSize:    1,
		supersteps:   len(res.Report.Supersteps),
		pagesRead:    st.PagesRead,
		pagesWritten: st.PagesWritten,
		isolated:     true,
	}
}

// runEngine is the one place a serving execution is configured: private
// scratch namespace, ephemeral cleanup on any exit, per-run IO scope,
// shared cache with a private prefetcher.
func (s *Server) runEngine(ctx context.Context, tag string, prog vc.Program) (*core.Result, ssd.Stats, error) {
	// Pin the delta epoch for the whole execution: queries read a frozen
	// graph while streaming ingest acknowledges mutations around them,
	// and every lane of the batch sees the same structure.
	snap := s.g.Snapshot()
	defer snap.Release()
	sc := ssd.NewScope()
	cfg := core.Config{
		MemoryBudget:  s.opts.MemoryBudget,
		MaxSupersteps: s.opts.MaxSupersteps,
		Cache:         s.opts.Cache,
		RunTag:        tag,
		Ephemeral:     true,
		Scope:         sc,
	}
	if cfg.Cache != nil {
		pf := pagecache.NewPrefetcher(8)
		defer pf.Close()
		cfg.Prefetcher = pf
	}
	res, err := core.New(snap.Graph(), cfg).RunCtx(ctx, prog)
	return res, sc.Stats(), err
}
