package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multilogvc/internal/obsv"
	"multilogvc/internal/pagecache"
)

// TestServeBatchFaultIsolation is the tentpole contract: a retryable
// device fault in a lane-batched execution must not fail the healthy
// companions. Corruption is armed only for the batch's scratch namespace
// (".q1." — the first RunTag this server issues), so the 2-lane batch
// dies of corrupt scratch while the solo re-runs (tags q2, q3) execute
// clean. Both clients still get 200s, solo-sized, marked isolated, and
// bit-identical to sequential single-source runs.
func TestServeBatchFaultIsolation(t *testing.T) {
	g := fixture(t, 91)
	dev := g.Device()
	sources := []uint32{3, 7}
	want := make([][]uint32, len(sources))
	for i, src := range sources {
		want[i] = single(t, g, "bfs", src)
	}
	dev.CorruptOnly(".q1.")
	dev.FailCorruptProb(1, 42)

	s, err := New(Options{Graph: g, BatchWindow: 200 * time.Millisecond, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	live := obsv.Live()
	isolated0 := live.QueriesIsolated.Value()
	retried0 := live.QueriesRetried.Value()

	type reply struct {
		resp pointResponse
		code int
		body []byte
	}
	replies := make([]reply, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src uint32) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/query/bfs",
				pointRequest{Source: src, Values: true, DeadlineMS: 30_000})
			replies[i] = reply{code: resp.StatusCode, body: data}
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(data, &replies[i].resp); err != nil {
					t.Error(err)
				}
			}
		}(i, src)
	}
	wg.Wait()

	for i := range sources {
		r := replies[i]
		if r.code != http.StatusOK {
			t.Fatalf("query %d: status %d (companion not isolated from the batch fault): %s",
				i, r.code, r.body)
		}
		if !r.resp.Isolated {
			t.Fatalf("query %d not marked isolated; batch_size %d", i, r.resp.BatchSize)
		}
		if r.resp.BatchSize != 1 {
			t.Fatalf("query %d: solo re-run reports batch_size %d, want 1", i, r.resp.BatchSize)
		}
		for v := range want[i] {
			if r.resp.AllValues[v] != want[i][v] {
				t.Fatalf("query %d vertex %d: isolated result %d != sequential %d",
					i, v, r.resp.AllValues[v], want[i][v])
			}
		}
	}
	if d := live.QueriesIsolated.Value() - isolated0; d != 2 {
		t.Fatalf("queries_isolated advanced by %d, want 2", d)
	}
	if d := live.QueriesRetried.Value() - retried0; d != 2 {
		t.Fatalf("queries_retried advanced by %d, want 2", d)
	}
	// The faulted batch's scratch and the solo runs' scratch are all gone.
	for _, name := range dev.ListFiles() {
		if strings.HasPrefix(name, "g.q") {
			t.Fatalf("scratch file %q survived isolation", name)
		}
	}
}

// TestServeWalkFaultPaths drives /walk (and the no-space path via
// /query/bfs, since walks never write) through every injected device
// fault family and asserts the classified code, status, Retry-After, and
// recovery after disarming. Corruption runs last: injected flips are
// sticky on the stored adjacency, so nothing is asserted after it.
func TestServeWalkFaultPaths(t *testing.T) {
	g := fixture(t, 92)
	dev := g.Device()
	s, err := New(Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	walkReq := walkRequest{Source: 3, Walks: 4, Length: 8, Seed: 7}
	if resp, data := postJSON(t, ts.URL+"/walk", walkReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline walk: %d %s", resp.StatusCode, data)
	}

	// Transient storm past the retry budget: classified device_fault.
	dev.FailTransientProb(1, 11)
	resp, data := postJSON(t, ts.URL+"/walk", walkReq)
	if resp.StatusCode != http.StatusInternalServerError || errCode(t, data) != "device_fault" {
		t.Fatalf("transient storm: status %d body %s", resp.StatusCode, data)
	}
	dev.FailTransientProb(0, 0)
	if resp, data := postJSON(t, ts.URL+"/walk", walkReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("walk after transient disarm: %d %s", resp.StatusCode, data)
	}

	// No-space hits query scratch growth (walks are read-only): 507 with
	// the slower reclamation Retry-After.
	dev.FailNoSpaceProb(1, 13)
	resp, data = postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 3, DeadlineMS: 30_000})
	if resp.StatusCode != http.StatusInsufficientStorage || errCode(t, data) != "no_space" {
		t.Fatalf("no-space: status %d body %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("no-space Retry-After %q, want 5", ra)
	}
	dev.FailNoSpaceProb(0, 0)
	if resp, data := postJSON(t, ts.URL+"/query/bfs",
		pointRequest{Source: 3, DeadlineMS: 30_000}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after no-space disarm: %d %s", resp.StatusCode, data)
	}

	// Corruption on the adjacency itself (sticky; keep last).
	dev.FailCorruptProb(1, 17)
	resp, data = postJSON(t, ts.URL+"/walk", walkRequest{Source: 200, Walks: 2, Length: 4})
	if resp.StatusCode != http.StatusInternalServerError || errCode(t, data) != "corrupt" {
		t.Fatalf("corrupt: status %d body %s", resp.StatusCode, data)
	}
}

// TestServeFastFailExpiredBatch: a batch whose every member deadline
// expired while parked in the batching window is cut before the admission
// semaphore and the engine — a classified 504 with zero executions run.
func TestServeFastFailExpiredBatch(t *testing.T) {
	g := fixture(t, 93)
	s, err := New(Options{Graph: g, BatchWindow: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	live := obsv.Live()
	batches0 := live.BatchesRun.Value()

	// Deadline (30ms) is alive at admission but dead by flush (150ms).
	resp, data := postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 5, DeadlineMS: 30})
	if resp.StatusCode != http.StatusGatewayTimeout || errCode(t, data) != "deadline" {
		t.Fatalf("fast-fail: status %d body %s", resp.StatusCode, data)
	}
	if d := live.BatchesRun.Value() - batches0; d != 0 {
		t.Fatalf("expired batch still ran %d executions, want 0", d)
	}
}

// TestServePanicContainmentBatch: a panic inside a batch execution is
// contained at the goroutine boundary — the client gets a structured 500
// internal, the panic is counted, and the daemon keeps serving correct
// results afterwards with no scratch or pin leaks.
func TestServePanicContainmentBatch(t *testing.T) {
	g := fixture(t, 94)
	dev := g.Device()
	cache := pagecache.NewSharded(128, dev.PageSize(), 4)
	dev.AttachCache(cache)
	want := single(t, g, "bfs", 12)

	s, err := New(Options{Graph: g, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var arm atomic.Bool
	arm.Store(true)
	s.testBatchHook = func(kind string, n int) {
		if arm.Load() {
			panic("injected batch panic")
		}
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	live := obsv.Live()
	panics0 := live.PanicsRecovered.Value()

	resp, data := postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 12, DeadlineMS: 30_000})
	if resp.StatusCode != http.StatusInternalServerError || errCode(t, data) != "internal" {
		t.Fatalf("panicked batch: status %d body %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "panic in batch execution") {
		t.Fatalf("panic not surfaced in the error message: %s", data)
	}
	if d := live.PanicsRecovered.Value() - panics0; d != 1 {
		t.Fatalf("panics_recovered advanced by %d, want 1", d)
	}

	// Disarm and prove the daemon survived with clean shared state.
	arm.Store(false)
	resp, data = postJSON(t, ts.URL+"/query/bfs",
		pointRequest{Source: 12, Values: true, DeadlineMS: 30_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after contained panic: %d %s", resp.StatusCode, data)
	}
	var pr pointResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if pr.AllValues[v] != want[v] {
			t.Fatalf("post-panic vertex %d: %d != %d", v, pr.AllValues[v], want[v])
		}
	}
	if p := cache.PinnedPages(); p != 0 {
		t.Fatalf("%d pages left pinned after the contained panic", p)
	}
	for _, name := range dev.ListFiles() {
		if strings.HasPrefix(name, "g.q") {
			t.Fatalf("scratch file %q survived the contained panic", name)
		}
	}
}

// TestServePanicContainmentHandler: a panic in an HTTP handler is caught
// by the ServeHTTP middleware and mapped to the same structured internal
// error — the daemon answers the next request normally.
func TestServePanicContainmentHandler(t *testing.T) {
	g := fixture(t, 95)
	s, err := New(Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.mux.HandleFunc("/__panic", func(w http.ResponseWriter, r *http.Request) {
		panic("injected handler panic")
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	live := obsv.Live()
	panics0 := live.PanicsRecovered.Value()

	resp, err := http.Get(ts.URL + "/__panic")
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || body.Error.Code != "internal" {
		t.Fatalf("panicked handler: status %d code %q", resp.StatusCode, body.Error.Code)
	}
	if d := live.PanicsRecovered.Value() - panics0; d != 1 {
		t.Fatalf("panics_recovered advanced by %d, want 1", d)
	}
	if resp, data := postJSON(t, ts.URL+"/query/bfs",
		pointRequest{Source: 1, DeadlineMS: 30_000}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after handler panic: %d %s", resp.StatusCode, data)
	}
}

// TestServeBreakerTripsAndRecovers is the health-model end-to-end: under
// a sustained transient storm the breaker opens (readiness flips, new
// queries shed with 503 + Retry-After), and once the device heals the
// half-open probes close it again and readiness returns.
func TestServeBreakerTripsAndRecovers(t *testing.T) {
	g := fixture(t, 96)
	dev := g.Device()
	s, err := New(Options{
		Graph:             g,
		BreakerWindow:     8,
		BreakerThreshold:  0.5,
		BreakerMinSamples: 2,
		BreakerCooldown:   300 * time.Millisecond,
		BreakerProbes:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	live := obsv.Live()
	opens0 := live.BreakerOpens.Value()
	sheds0 := live.BreakerSheds.Value()

	readyz := func() (int, string) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Reason string `json:"reason"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body.Reason
	}
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("fresh server readyz %d, want 200", code)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Sustained device faults: two classified failures trip the breaker.
	dev.FailTransientProb(1, 23)
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 2, DeadlineMS: 30_000})
		if resp.StatusCode != http.StatusInternalServerError || errCode(t, data) != "device_fault" {
			t.Fatalf("storm query %d: status %d body %s", i, resp.StatusCode, data)
		}
	}
	if d := live.BreakerOpens.Value() - opens0; d != 1 {
		t.Fatalf("breaker_opens advanced by %d, want 1", d)
	}
	if code, reason := readyz(); code != http.StatusServiceUnavailable || reason != "breaker_open" {
		t.Fatalf("readyz while open: %d %q", code, reason)
	}

	// Open breaker sheds with breaker_open and a Retry-After bound.
	resp, data := postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 2, DeadlineMS: 30_000})
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, data) != "breaker_open" {
		t.Fatalf("shed query: status %d body %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("breaker shed without a Retry-After header")
	}
	if d := live.BreakerSheds.Value() - sheds0; d < 1 {
		t.Fatalf("breaker_sheds advanced by %d, want >= 1", d)
	}

	// /stats reflects the health model while shedding.
	{
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var stats struct {
			Breaker  breakerSnapshot `json:"breaker"`
			Brownout bool            `json:"brownout"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if stats.Breaker.State != breakerOpen || !stats.Brownout {
			t.Fatalf("stats while open: breaker=%+v brownout=%v", stats.Breaker, stats.Brownout)
		}
	}

	// Device heals; after the cooldown the half-open probe succeeds and
	// closes the breaker.
	dev.FailTransientProb(0, 0)
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		resp, _ := postJSON(t, ts.URL+"/query/bfs", pointRequest{Source: 2, DeadlineMS: 30_000})
		if resp.StatusCode == http.StatusOK {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("no query succeeded within 10s of the device healing")
	}
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("readyz after recovery %d, want 200", code)
	}
}
