package serve

import (
	"encoding/json"
	"net/http"
)

// Fault-injection control, registered only when Options.FaultControl is
// set (mlvcd -fault-inject): POST /debug/fault re-arms or disarms the
// device's probabilistic fault injection while the daemon runs, so a
// cross-process harness (the CI fault smoke) can drive a
// fault-storm -> breaker-open -> disarm -> recovery cycle against a real
// daemon without restarting it. Strictly a testing surface — production
// deployments leave FaultControl off and the endpoint absent.

// faultRequest arms the fields it names and leaves the rest untouched;
// a zero probability disarms that injector.
type faultRequest struct {
	TransientProb *float64 `json:"transient_prob,omitempty"`
	CorruptProb   *float64 `json:"corrupt_prob,omitempty"`
	NoSpaceProb   *float64 `json:"nospace_prob,omitempty"`
	// CorruptOnly restricts corruption injection to files whose name
	// contains the substring (empty = all files).
	CorruptOnly *string `json:"corrupt_only,omitempty"`
	// Seed makes the probabilistic draws reproducible; defaults to 1.
	Seed uint64 `json:"seed,omitempty"`
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	var req faultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	armed := map[string]float64{}
	if req.TransientProb != nil {
		s.dev.FailTransientProb(*req.TransientProb, seed)
		armed["transient_prob"] = *req.TransientProb
	}
	if req.CorruptOnly != nil {
		s.dev.CorruptOnly(*req.CorruptOnly)
	}
	if req.CorruptProb != nil {
		s.dev.FailCorruptProb(*req.CorruptProb, seed|1)
		armed["corrupt_prob"] = *req.CorruptProb
	}
	if req.NoSpaceProb != nil {
		s.dev.FailNoSpaceProb(*req.NoSpaceProb, seed|3)
		armed["nospace_prob"] = *req.NoSpaceProb
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "armed": armed})
}
