package serve

import (
	"net/http"
	"strconv"
	"time"
)

// Health model: /healthz is liveness (the process answers HTTP — true
// even while the breaker is open, because an open breaker is the daemon
// doing its job, not the daemon being dead), /readyz is readiness (safe
// to route query traffic here). A load balancer keeps an unready daemon
// in the pool for /healthz but steers queries away until the breaker
// closes again.

// handleHealthz is the liveness probe: 200 for as long as the handler
// goroutine can run, with uptime for operators eyeballing restarts.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":   "ok",
		"uptime_s": int64(time.Since(s.started).Seconds()),
	})
}

// handleReadyz is the readiness probe: 503 while draining, while the
// fault breaker is anything but closed, or — on a replication follower —
// while catch-up has not happened yet, the lag exceeds the configured
// threshold, or a sequence gap has made incremental catch-up impossible.
// Half-open is still unready — the daemon is probing its own device with
// a trickle of real queries and should not yet receive full traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	bs := s.brk.snapshot()
	body := map[string]interface{}{
		"ready":   true,
		"breaker": bs,
	}
	fol := s.fol.Load()
	folReady, folReason := true, ""
	if fol != nil {
		body["replica"] = fol.status()
		folReady, folReason = fol.ready()
	}
	switch {
	case s.closed.Load():
		body["ready"] = false
		body["reason"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case !folReady:
		body["ready"] = false
		body["reason"] = folReason
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, body)
	case bs.State != breakerClosed:
		body["ready"] = false
		body["reason"] = "breaker_" + bs.State
		ra := bs.RetryAfterS
		if ra <= 0 {
			ra = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(ra))
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		writeJSON(w, http.StatusOK, body)
	}
}
