package serve

// The follower half of WAL-shipping replication: a warm standby that
// tails its primary's /replicate endpoint, applies the shipped frames
// through csr.ApplyReplicated at their original sequence numbers (so its
// own WAL, torn-tail truncation, and crash-atomic merges work
// unchanged), and serves read queries from epoch-pinned snapshots the
// whole time. /mutate is rejected with a structured read_only error
// until promotion — POST /admin/promote, or automatically after
// PromoteOnDisconnect without primary contact.
//
// Failure model, matching the rest of the stack:
//
//   - Lost primary: exponential backoff from Poll up to ~2s, forever (or
//     until the promote grace expires). Catch-up after a reconnect is
//     just more polling — the cursor never moved.
//   - Sequence gap (the primary merged past our cursor, or the stream is
//     inconsistent): sticky and terminal. The follower keeps serving its
//     frozen state but reports replica_gap unready; the operator must
//     re-seed it from a fresh copy of the primary.
//   - Follower crash: nothing to do here — its own WAL replays the
//     cursor on reopen, and duplicate frames from the overlap are
//     skipped by sequence identity.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"multilogvc/internal/obsv"
	"multilogvc/internal/wal"
)

// FollowerOptions configures a replication follower.
type FollowerOptions struct {
	// Primary is the base URL of the primary mlvcd, e.g. "http://host:8080".
	Primary string
	// Poll is the idle poll interval once caught up (and the initial
	// reconnect backoff). Defaults to 50ms.
	Poll time.Duration
	// BatchMax caps frames per fetch. Defaults to 4096.
	BatchMax int
	// LagThreshold is the replication lag (frames) past which /readyz
	// reports unready. Defaults to 256; negative means "any lag".
	LagThreshold int64
	// PromoteOnDisconnect auto-promotes after this long without primary
	// contact. 0 disables auto-promotion (operator-only failover).
	PromoteOnDisconnect time.Duration
	// Client overrides the HTTP client (tests, custom timeouts).
	Client *http.Client
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.Poll <= 0 {
		o.Poll = 50 * time.Millisecond
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 4096
	}
	if o.BatchMax > maxReplicateBatch {
		o.BatchMax = maxReplicateBatch
	}
	if o.LagThreshold == 0 {
		o.LagThreshold = 256
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

// followerStatus is the /stats "replica" section and the readiness
// probe's diagnostic payload.
type followerStatus struct {
	Role           string `json:"role"` // "follower" or "promoted"
	Primary        string `json:"primary"`
	AppliedSeq     uint64 `json:"applied_seq"`
	PrimaryLastSeq uint64 `json:"primary_last_seq"`
	LagFrames      uint64 `json:"lag_frames"`
	Connected      bool   `json:"connected"`
	FramesApplied  int64  `json:"frames_applied"`
	Fetches        int64  `json:"fetches"`
	Reconnects     int64  `json:"reconnects"`
	GapError       string `json:"gap_error,omitempty"`
	PromoteReason  string `json:"promote_reason,omitempty"`
	LastError      string `json:"last_error,omitempty"`
}

// Follower tails a primary and applies its WAL stream. Create with
// Server.StartFollower (which also flips the server read-only); Promote
// or Stop ends the tailing.
type Follower struct {
	s    *Server
	opts FollowerOptions

	applied     atomic.Uint64 // cursor: highest seq applied locally
	primaryLast atomic.Uint64 // highest durable seq seen on the primary
	connected   atomic.Bool   // last fetch reached the primary
	everSynced  atomic.Bool   // at least one successful fetch
	promoted    atomic.Bool
	lastContact atomic.Int64 // UnixNano of the last successful fetch

	framesApplied atomic.Int64
	fetches       atomic.Int64
	reconnects    atomic.Int64

	mu            sync.Mutex
	gapErr        error
	lastErr       string
	promoteReason string

	stop     chan struct{}
	done     chan struct{}
	started  atomic.Bool
	stopOnce sync.Once
}

// StartFollower puts the server in follower mode — read-only, tailing
// primary — and starts the apply loop. One follower per server.
func (s *Server) StartFollower(opts FollowerOptions) (*Follower, error) {
	f, err := s.newFollower(opts)
	if err != nil {
		return nil, err
	}
	f.start()
	return f, nil
}

func (s *Server) newFollower(opts FollowerOptions) (*Follower, error) {
	if opts.Primary == "" {
		return nil, fmt.Errorf("serve: FollowerOptions.Primary is required")
	}
	f := &Follower{
		s:    s,
		opts: opts.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	cur := s.g.AppliedSeq()
	f.applied.Store(cur)
	obsv.Live().ReplicaAppliedSeq.Set(int64(cur))
	if !s.fol.CompareAndSwap(nil, f) {
		return nil, fmt.Errorf("serve: server already has a follower")
	}
	s.readOnly.Store(true)
	return f, nil
}

func (f *Follower) start() {
	if f.started.Swap(true) {
		return
	}
	go f.run()
}

// Stop ends the apply loop without promoting (drain path). Idempotent.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	if f.started.Load() {
		<-f.done
	} else {
		close(f.done)
	}
}

// Promote flips this node writable: the apply loop stops, /mutate opens,
// sequence numbering continues from the applied cursor. Returns whether
// this call performed the promotion (false: already promoted).
func (f *Follower) Promote(reason string) bool {
	if f.promoted.Swap(true) {
		return false
	}
	f.mu.Lock()
	f.promoteReason = reason
	f.mu.Unlock()
	f.s.readOnly.Store(false)
	obsv.Live().Promotions.Add(1)
	f.stopOnce.Do(func() { close(f.stop) })
	return true
}

// Promoted reports whether this node has been promoted to primary.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// lag returns the current replication lag in frames.
func (f *Follower) lag() uint64 {
	a, p := f.applied.Load(), f.primaryLast.Load()
	if p <= a {
		return 0
	}
	return p - a
}

// ready implements the lag-thresholded readiness contract: a promoted
// node is ready (breaker rules take over); an unpromoted follower is
// ready once it has synced at least once, has no sticky gap, and trails
// by at most LagThreshold frames.
func (f *Follower) ready() (ok bool, reason string) {
	if f.promoted.Load() {
		return true, ""
	}
	f.mu.Lock()
	gap := f.gapErr
	f.mu.Unlock()
	if gap != nil {
		return false, "replica_gap"
	}
	if !f.everSynced.Load() {
		return false, "replica_connecting"
	}
	thr := f.opts.LagThreshold
	if thr < 0 {
		thr = 0
	}
	if f.lag() > uint64(thr) {
		return false, "replica_lag"
	}
	return true, ""
}

func (f *Follower) status() followerStatus {
	st := followerStatus{
		Role:           "follower",
		Primary:        f.opts.Primary,
		AppliedSeq:     f.applied.Load(),
		PrimaryLastSeq: f.primaryLast.Load(),
		LagFrames:      f.lag(),
		Connected:      f.connected.Load(),
		FramesApplied:  f.framesApplied.Load(),
		Fetches:        f.fetches.Load(),
		Reconnects:     f.reconnects.Load(),
	}
	if f.promoted.Load() {
		st.Role = "promoted"
	}
	f.mu.Lock()
	if f.gapErr != nil {
		st.GapError = f.gapErr.Error()
	}
	st.PromoteReason = f.promoteReason
	st.LastError = f.lastErr
	f.mu.Unlock()
	return st
}

func (f *Follower) setGap(err error) {
	f.mu.Lock()
	if f.gapErr == nil {
		f.gapErr = err
	}
	f.mu.Unlock()
}

func (f *Follower) noteErr(err error) {
	f.mu.Lock()
	f.lastErr = err.Error()
	f.mu.Unlock()
}

// run is the apply loop: fetch, apply, repeat — tight while behind, Poll
// apart when caught up, backing off exponentially while the primary is
// unreachable. A sticky gap ends the loop (the node needs re-seeding); a
// promotion ends it writable.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.opts.Poll
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		n, err := f.pollOnce()
		if f.promoted.Load() {
			return
		}
		var wait time.Duration
		switch {
		case err != nil && errors.Is(err, wal.ErrSeqGap):
			return // sticky; readiness reports replica_gap
		case err != nil:
			wait = backoff
			backoff *= 2
			if max := 2 * time.Second; backoff > max {
				backoff = max
			}
			if g := f.opts.PromoteOnDisconnect; g > 0 && !f.connected.Load() {
				lc := f.lastContact.Load()
				if lc == 0 {
					// Never reached the primary; start the grace clock at
					// the first failure rather than promoting a node that
					// may be pointed at a typo.
					f.lastContact.Store(time.Now().UnixNano())
				} else if time.Since(time.Unix(0, lc)) > g {
					f.Promote(fmt.Sprintf("primary unreachable for %s (promote-on-disconnect %s)", time.Since(time.Unix(0, lc)).Round(time.Millisecond), g))
					return
				}
			}
		case n > 0:
			backoff = f.opts.Poll
			continue // still catching up: fetch again immediately
		default:
			backoff = f.opts.Poll
			wait = f.opts.Poll
		}
		select {
		case <-f.stop:
			return
		case <-time.After(wait):
		}
	}
}

// pollOnce fetches one batch from the primary and applies it. Returns
// how many frames were newly applied.
func (f *Follower) pollOnce() (int, error) {
	f.fetches.Add(1)
	from := f.applied.Load() + 1
	url := fmt.Sprintf("%s/replicate?from=%d&max=%d", strings.TrimRight(f.opts.Primary, "/"), from, f.opts.BatchMax)
	resp, err := f.opts.Client.Get(url)
	if err != nil {
		f.noteDisconnect(err)
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		gerr := fmt.Errorf("%w: primary: %s", wal.ErrSeqGap, strings.TrimSpace(string(msg)))
		f.setGap(gerr)
		f.noteErr(gerr)
		return 0, gerr
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("replicate: primary returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		f.noteDisconnect(err)
		return 0, err
	}

	// Stream-decode the body: a connection cut mid-frame still yields the
	// clean decoded prefix, which is safe to apply — the next poll simply
	// re-requests from the new cursor.
	dec := wal.NewTailDecoder(from)
	var recs []wal.Record
	buf := make([]byte, 32*1024)
	var readErr error
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			batch, derr := dec.Feed(buf[:n])
			recs = append(recs, batch...)
			if derr != nil {
				if errors.Is(derr, wal.ErrSeqGap) {
					f.setGap(derr)
					f.noteErr(derr)
					return 0, derr
				}
				// Mid-stream corruption: drop the suffix, keep the valid
				// prefix, and treat the connection as torn.
				readErr = derr
				break
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			readErr = rerr
			break
		}
	}

	applied := 0
	if len(recs) > 0 {
		applied, err = f.s.g.ApplyReplicated(recs, f.s.opts.MergeThreshold)
		if err != nil {
			if errors.Is(err, wal.ErrSeqGap) {
				f.setGap(err)
			}
			f.noteErr(err)
			return applied, err
		}
	}

	// Bookkeeping: the fetch reached the primary even if the body was cut.
	f.connected.Store(true)
	f.everSynced.Store(true)
	f.lastContact.Store(time.Now().UnixNano())
	cur := f.s.g.AppliedSeq()
	f.applied.Store(cur)
	if last, perr := strconv.ParseUint(resp.Header.Get("X-Mlvc-Last-Seq"), 10, 64); perr == nil {
		for {
			old := f.primaryLast.Load()
			if last <= old || f.primaryLast.CompareAndSwap(old, last) {
				break
			}
		}
	}
	f.framesApplied.Add(int64(applied))
	live := obsv.Live()
	live.ReplicaAppliedSeq.Set(int64(cur))
	live.ReplicaLagFrames.Set(int64(f.lag()))
	if readErr != nil {
		f.noteErr(readErr)
		return applied, readErr
	}
	f.mu.Lock()
	f.lastErr = ""
	f.mu.Unlock()
	return applied, nil
}

func (f *Follower) noteDisconnect(err error) {
	if f.connected.Swap(false) {
		f.reconnects.Add(1)
	}
	f.noteErr(err)
}
