package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"multilogvc/internal/csr"
	"multilogvc/internal/obsv"
)

// POST /mutate is the serving face of durable streaming ingest: a batch
// of edge mutations, acknowledged only once the whole batch is durable
// (WAL group commit) and applied to the delta overlay under one epoch.
// In-flight queries are unaffected — they read their pinned snapshot
// epoch — and subsequent queries see the new edges.
//
// Ingest is deliberately breaker-NEUTRAL: the fault circuit breaker
// models query-path device health, and an ingest failure (backpressure,
// WAL write fault) must not shed unrelated read traffic — nor may a
// flood of healthy ingest acks close a breaker queries opened.

// maxMutationsPerRequest bounds one /mutate body; larger feeds should
// split into multiple batches (each is one group commit anyway).
const maxMutationsPerRequest = 4096

// mutateRequest is the JSON body of POST /mutate.
type mutateRequest struct {
	Mutations []mutationSpec `json:"mutations"`
}

type mutationSpec struct {
	// Op is "add" or "del".
	Op  string `json:"op"`
	Src uint32 `json:"src"`
	Dst uint32 `json:"dst"`
	// Weight applies to adds on weighted graphs; ignored otherwise.
	Weight uint32 `json:"weight,omitempty"`
}

// mutateResponse acknowledges a durable, applied batch.
type mutateResponse struct {
	Acked   int    `json:"acked"`   // mutations in the batch
	Epoch   uint64 `json:"epoch"`   // epoch the batch published
	Pending int    `json:"pending"` // buffered delta side-entries after the batch
	Durable bool   `json:"durable"` // WAL-backed (false = volatile ingest)
	Merges  int    `json:"merges"`  // delta merges so far (did this batch trigger one)
}

// handleMutate admits one mutation batch. Admission mirrors the query
// path (method, body, validation, drain) minus deadline/queue/breaker:
// mutations are cheap until the WAL write, which is itself the ack.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	live := obsv.Live()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	if s.readOnly.Load() {
		writeError(w, http.StatusForbidden, "read_only",
			"this node is a read-only replication follower; mutate the primary, or promote this node via POST /admin/promote")
		return
	}
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	if len(req.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "mutations must be non-empty")
		return
	}
	if len(req.Mutations) > maxMutationsPerRequest {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Mutations), maxMutationsPerRequest))
		return
	}
	n := s.g.NumVertices()
	ms := make([]csr.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		switch m.Op {
		case "add":
			ms[i] = csr.Mutation{Src: m.Src, Dst: m.Dst, Weight: m.Weight}
		case "del":
			ms[i] = csr.Mutation{Del: true, Src: m.Src, Dst: m.Dst}
		default:
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("mutation %d: op %q (want \"add\" or \"del\")", i, m.Op))
			return
		}
		if m.Src >= n || m.Dst >= n {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("mutation %d: edge (%d,%d) out of range (graph has %d vertices)", i, m.Src, m.Dst, n))
			return
		}
	}
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining")
		return
	}

	if err := s.g.ApplyMutations(ms, s.opts.MergeThreshold); err != nil {
		code, status := classify(err)
		if errors.Is(err, csr.ErrIngestBackpressure) {
			live.IngestBackpressure.Add(1)
		} else {
			live.IngestErrors.Add(1)
		}
		writeError(w, status, code, err.Error())
		return
	}
	live.IngestBatches.Add(1)
	live.IngestMutations.Add(int64(len(ms)))
	st := s.g.IngestStats()
	writeJSON(w, http.StatusOK, mutateResponse{
		Acked:   len(ms),
		Epoch:   st.Epoch,
		Pending: st.Pending,
		Durable: st.Durable,
		Merges:  st.Merges,
	})
}
