package serve

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(cfg breakerConfig) (*breaker, *fakeClock, *int) {
	opens := 0
	b := newBreaker(cfg, func() { opens++ })
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk, &opens
}

// TestBreakerLifecycle walks the full state machine: closed under mixed
// traffic, open at the fault threshold, shedding with a Retry-After
// bounded by the cooldown, half-open probes after the cooldown, and
// closed again after consecutive probe successes.
func TestBreakerLifecycle(t *testing.T) {
	b, clk, opens := newTestBreaker(breakerConfig{
		window: 8, threshold: 0.5, minSamples: 4, cooldown: 10 * time.Second, probes: 2,
	})

	// Below min samples nothing trips, even at 100% faults.
	for i := 0; i < 3; i++ {
		if ok, _ := b.admit(); !ok {
			t.Fatal("closed breaker denied admission")
		}
		b.record(outcomeFault)
	}
	if st := b.snapshot(); st.State != breakerClosed {
		t.Fatalf("state %s before min samples", st.State)
	}

	// The 4th fault reaches minSamples at rate 1.0: open.
	b.admit()
	b.record(outcomeFault)
	if st := b.snapshot(); st.State != breakerOpen {
		t.Fatalf("state %s after sustained faults, want open", st.State)
	}
	if *opens != 1 {
		t.Fatalf("onOpen fired %d times, want 1", *opens)
	}

	// Open: shed with a Retry-After no larger than the cooldown.
	ok, ra := b.admit()
	if ok {
		t.Fatal("open breaker admitted a query")
	}
	if ra < 1 || ra > 10 {
		t.Fatalf("Retry-After %ds, want within (0,10]", ra)
	}

	// Cooldown served: next arrival is a half-open probe; concurrency is
	// capped at cfg.probes.
	clk.advance(11 * time.Second)
	if ok, _ := b.admit(); !ok {
		t.Fatal("first half-open probe denied")
	}
	if st := b.snapshot(); st.State != breakerHalfOpen {
		t.Fatalf("state %s after cooldown admission, want half_open", st.State)
	}
	if ok, _ := b.admit(); !ok {
		t.Fatal("second half-open probe denied")
	}
	if ok, _ := b.admit(); ok {
		t.Fatal("third concurrent probe admitted past the cap")
	}

	// Two successful probes close the breaker with a reset window.
	b.record(outcomeSuccess)
	b.record(outcomeSuccess)
	st := b.snapshot()
	if st.State != breakerClosed {
		t.Fatalf("state %s after probe successes, want closed", st.State)
	}
	if st.Samples != 0 {
		t.Fatalf("window not reset on close: %d samples", st.Samples)
	}
}

// TestBreakerHalfOpenFaultReopens: one faulty probe sends it straight
// back to open for another full cooldown.
func TestBreakerHalfOpenFaultReopens(t *testing.T) {
	b, clk, opens := newTestBreaker(breakerConfig{
		window: 8, threshold: 0.5, minSamples: 2, cooldown: 5 * time.Second, probes: 1,
	})
	b.admit()
	b.record(outcomeFault)
	b.admit()
	b.record(outcomeFault) // trips
	clk.advance(6 * time.Second)
	if ok, _ := b.admit(); !ok {
		t.Fatal("probe denied after cooldown")
	}
	b.record(outcomeFault)
	if st := b.snapshot(); st.State != breakerOpen {
		t.Fatalf("state %s after faulty probe, want open", st.State)
	}
	if *opens != 2 {
		t.Fatalf("onOpen fired %d times, want 2", *opens)
	}
	if ok, _ := b.admit(); ok {
		t.Fatal("reopened breaker admitted before the new cooldown")
	}
}

// TestBreakerNeutralOutcomes: deadlines and cancellations release probe
// slots without feeding the fault window either way.
func TestBreakerNeutralOutcomes(t *testing.T) {
	b, clk, _ := newTestBreaker(breakerConfig{
		window: 8, threshold: 0.5, minSamples: 2, cooldown: 5 * time.Second, probes: 1,
	})
	// Neutral outcomes never accumulate samples.
	for i := 0; i < 10; i++ {
		b.admit()
		b.record(outcomeNeutral)
	}
	if st := b.snapshot(); st.State != breakerClosed || st.Samples != 0 {
		t.Fatalf("neutral outcomes polluted the window: %+v", st)
	}

	// In half-open, a neutral probe frees the slot without closing.
	b.admit()
	b.record(outcomeFault)
	b.admit()
	b.record(outcomeFault)
	clk.advance(6 * time.Second)
	b.admit()                // the probe
	b.record(outcomeNeutral) // its deadline expired
	if st := b.snapshot(); st.State != breakerHalfOpen {
		t.Fatalf("state %s after neutral probe, want half_open", st.State)
	}
	if ok, _ := b.admit(); !ok {
		t.Fatal("probe slot not released by neutral outcome")
	}
}

// TestBreakerSlidingWindow: old faults age out, so a burst followed by
// sustained health never trips.
func TestBreakerSlidingWindow(t *testing.T) {
	b, _, opens := newTestBreaker(breakerConfig{
		window: 4, threshold: 0.75, minSamples: 4, cooldown: time.Second, probes: 1,
	})
	outcomes := []outcome{outcomeFault, outcomeFault, outcomeSuccess, outcomeSuccess,
		outcomeSuccess, outcomeSuccess, outcomeFault, outcomeSuccess}
	for _, o := range outcomes {
		if ok, _ := b.admit(); !ok {
			t.Fatal("denied while rate below threshold")
		}
		b.record(o)
	}
	if *opens != 0 {
		t.Fatalf("breaker opened %d times on a sub-threshold mix", *opens)
	}
	// The last 4 outcomes are S,S,F,S: rate 0.25.
	if st := b.snapshot(); st.FaultRate != 0.25 {
		t.Fatalf("windowed rate %.2f, want 0.25", st.FaultRate)
	}
}

// TestBreakerBrownout: brownout engages at half the trip threshold and
// in every non-closed state, and releases when the window clears.
func TestBreakerBrownout(t *testing.T) {
	b, clk, _ := newTestBreaker(breakerConfig{
		window: 8, threshold: 0.5, minSamples: 4, cooldown: 5 * time.Second, probes: 1,
	})
	if b.brownout() {
		t.Fatal("brownout on a fresh breaker")
	}
	// 1 fault + 3 successes = rate 0.25 = threshold/2 over >= minSamples/2.
	b.record(outcomeFault)
	b.record(outcomeSuccess)
	b.record(outcomeSuccess)
	b.record(outcomeSuccess)
	if !b.brownout() {
		t.Fatal("no brownout at half the trip threshold")
	}
	// Healthy traffic washes the fault out of the window.
	for i := 0; i < 8; i++ {
		b.record(outcomeSuccess)
	}
	if b.brownout() {
		t.Fatal("brownout held after the window cleared")
	}
	// Open and half-open always brown out.
	for i := 0; i < 8; i++ {
		b.record(outcomeFault)
	}
	if st := b.snapshot(); st.State != breakerOpen {
		t.Fatalf("setup: state %s, want open", st.State)
	}
	if !b.brownout() {
		t.Fatal("no brownout while open")
	}
	clk.advance(6 * time.Second)
	b.admit()
	if !b.brownout() {
		t.Fatal("no brownout while half-open")
	}
}
