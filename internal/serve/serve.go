// Package serve is the query-serving daemon behind cmd/mlvcd: one
// resident graph, one device and page cache, many concurrent point
// queries. It is the serving counterpart of the one-shot CLI — the shape
// the paper's motivation (§VII, concurrent analytics on one flash
// device) implies but never builds.
//
// Three mechanisms carry the design:
//
//   - Multi-source batching: compatible point queries (same app) that
//     arrive within a short window coalesce into ONE lane-batched engine
//     execution (apps.MultiBFS / apps.MultiSSSP), so K queued BFS
//     queries cost one pass over the logs instead of K. Per-lane results
//     are bit-identical to K individual runs — batching is invisible to
//     callers except in latency and shared IO.
//
//   - Isolation: every execution gets its own RunTag scratch namespace,
//     an Ephemeral config (scratch removed even on failure), and an
//     ssd.IOScope so its page traffic is attributed to the query rather
//     than smeared device-wide.
//
//   - Admission control: a concurrency semaphore bounds simultaneous
//     engine executions, a queue cap sheds excess load with structured
//     503s, per-query deadlines become context deadlines on the batch
//     (expired-on-arrival queries are shed with 504 before costing IO),
//     and device-quota exhaustion surfaces as 507 — the serving face of
//     PR 5's resource governance.
package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"multilogvc/internal/apps"
	"multilogvc/internal/csr"
	"multilogvc/internal/obsv"
	"multilogvc/internal/pagecache"
	"multilogvc/internal/ssd"
)

// Options configures a Server. Graph is required; everything else has a
// serving-sane default.
type Options struct {
	// Graph is the resident graph every query runs against.
	Graph *csr.Graph
	// Cache is the shared page cache attached to the graph's device
	// (nil = uncached serving; every query pays device reads).
	Cache *pagecache.Cache
	// BatchWindow is how long the first query of a batch waits for
	// companions before the batch executes. Defaults to 2ms.
	BatchWindow time.Duration
	// MaxBatch caps queries per execution; defaults to 16, clamped to
	// apps.MaxLanes (the packed-message format's limit).
	MaxBatch int
	// MaxConcurrent bounds simultaneous engine executions; defaults to 2.
	MaxConcurrent int
	// MaxQueue caps queries admitted but not yet executing; beyond it
	// requests are shed with 503. Defaults to 64.
	MaxQueue int
	// DefaultDeadline applies when a query names none. Defaults to 30s.
	DefaultDeadline time.Duration
	// MaxSupersteps bounds each execution; defaults to 100.
	MaxSupersteps int
	// MemoryBudget is the per-execution engine budget; 0 keeps the
	// engine default (64 MiB).
	MemoryBudget int64

	// BreakerWindow is the fault circuit breaker's sliding window in
	// query outcomes; defaults to 32.
	BreakerWindow int
	// BreakerThreshold is the windowed fault rate that opens the
	// breaker; defaults to 0.5.
	BreakerThreshold float64
	// BreakerMinSamples is the minimum outcomes before the breaker may
	// open; defaults to 8.
	BreakerMinSamples int
	// BreakerCooldown is how long an open breaker sheds before admitting
	// half-open probes; defaults to 5s.
	BreakerCooldown time.Duration
	// BreakerProbes is the half-open concurrency (and the consecutive
	// successes required to close); defaults to 2.
	BreakerProbes int

	// EnableIngest registers POST /mutate, the streaming-ingest endpoint.
	// The graph should be opened with csr.OpenIngest for durability;
	// without it mutations apply volatile (lost on restart).
	EnableIngest bool
	// MergeThreshold is passed through to ApplyMutations for /mutate
	// batches; 0 keeps the graph's configured default.
	MergeThreshold int

	// EnableReplication registers GET /replicate, the WAL-shipping
	// endpoint followers tail. Requires a WAL-backed graph (OpenIngest
	// with WAL: true); without one /replicate answers not_ready.
	EnableReplication bool
	// ReadOnly starts the server rejecting /mutate with a structured
	// read_only error — follower mode. Cleared by promotion.
	ReadOnly bool

	// FaultControl registers POST /debug/fault, the cross-process
	// fault-injection control surface. Testing only.
	FaultControl bool
}

func (o Options) withDefaults() Options {
	if o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxBatch > apps.MaxLanes {
		o.MaxBatch = apps.MaxLanes
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 30 * time.Second
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 100
	}
	return o
}

// Server is the query daemon: an http.Handler plus the batching and
// admission machinery behind it. Create with New, mount anywhere (or let
// cmd/mlvcd listen), and Close for a graceful drain.
type Server struct {
	opts Options
	g    *csr.Graph
	dev  *ssd.Device
	mux  *http.ServeMux

	sem     chan struct{} // MaxConcurrent execution slots
	runSeq  atomic.Uint64 // RunTag sequence: q1, q2, ...
	queued  atomic.Int64  // admitted-not-finished queries, vs MaxQueue
	closed  atomic.Bool   // shutting down: shed new queries
	started time.Time     // for /healthz uptime
	wg      sync.WaitGroup

	brk  *breaker // fault circuit breaker (health model)
	bfs  *batcher
	sssp *batcher

	// readOnly rejects /mutate (follower mode); promotion clears it.
	readOnly atomic.Bool
	// fol is the replication follower, set once by StartFollower.
	fol atomic.Pointer[Follower]

	// testBatchHook, when set by an in-package test, runs at the top of
	// every batch execution (after the admission slot is held) — the
	// injection point for panic-containment tests.
	testBatchHook func(kind string, batchSize int)
}

// New builds a Server over a resident graph.
func New(opts Options) (*Server, error) {
	if opts.Graph == nil {
		return nil, fmt.Errorf("serve: Options.Graph is required")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		g:       opts.Graph,
		dev:     opts.Graph.Device(),
		sem:     make(chan struct{}, opts.MaxConcurrent),
		started: time.Now(),
	}
	s.readOnly.Store(opts.ReadOnly)
	s.brk = newBreaker(breakerConfig{
		window:     opts.BreakerWindow,
		threshold:  opts.BreakerThreshold,
		minSamples: opts.BreakerMinSamples,
		cooldown:   opts.BreakerCooldown,
		probes:     opts.BreakerProbes,
	}, func() { obsv.Live().BreakerOpens.Add(1) })
	s.bfs = newBatcher(s, "bfs")
	s.sssp = newBatcher(s, "sssp")

	mux := http.NewServeMux()
	mux.HandleFunc("/query/bfs", func(w http.ResponseWriter, r *http.Request) { s.handlePoint(w, r, s.bfs) })
	mux.HandleFunc("/query/sssp", func(w http.ResponseWriter, r *http.Request) { s.handlePoint(w, r, s.sssp) })
	mux.HandleFunc("/walk", s.handleWalk)
	if opts.EnableIngest {
		mux.HandleFunc("/mutate", s.handleMutate)
	}
	if opts.EnableReplication {
		mux.HandleFunc("/replicate", s.handleReplicate)
	}
	mux.HandleFunc("/admin/promote", s.handlePromote)
	mux.HandleFunc("/graph", s.handleGraph)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	if opts.FaultControl {
		mux.HandleFunc("/debug/fault", s.handleFault)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", obsv.MetricsHandler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			writeError(w, http.StatusNotFound, "not_found", "no such endpoint")
			return
		}
		usage := "mlvcd: POST /query/bfs /query/sssp /walk; GET /graph /stats /healthz /readyz /metrics /debug/vars"
		if s.opts.EnableIngest {
			usage = "mlvcd: POST /query/bfs /query/sssp /walk /mutate; GET /graph /stats /healthz /readyz /metrics /debug/vars"
		}
		if s.opts.EnableReplication {
			usage += "; replication: GET /replicate, POST /admin/promote"
		}
		fmt.Fprintln(w, usage)
	})
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler, containing handler panics: net/http
// would keep the process alive anyway, but it aborts the connection with
// no body — this boundary turns the panic into the same structured
// internal error every other failure wears, and counts it.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			obsv.Live().PanicsRecovered.Add(1)
			// Best-effort: if the handler already wrote a header this is
			// a no-op body on a torn response, which is all that can be
			// promised mid-panic.
			writeError(w, http.StatusInternalServerError, "internal",
				fmt.Sprintf("panic in request handler: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// batchParams returns the effective MaxBatch and BatchWindow, shrunk 4×
// under brownout: while the breaker suspects the device, smaller batches
// mean fewer co-batched victims per faulty execution and cheaper solo
// isolation when one does fault.
func (s *Server) batchParams() (int, time.Duration) {
	if s.brk.brownout() {
		mb := s.opts.MaxBatch / 4
		if mb < 1 {
			mb = 1
		}
		return mb, s.opts.BatchWindow / 4
	}
	return s.opts.MaxBatch, s.opts.BatchWindow
}

// Close drains the server: new queries are shed with 503, queued batches
// flush immediately, and Close returns once every in-flight execution has
// finished.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if f := s.fol.Load(); f != nil {
		f.Stop()
	}
	s.bfs.flushNow()
	s.sssp.flushNow()
	s.wg.Wait()
}

// pointRequest is the JSON body of POST /query/bfs and /query/sssp.
type pointRequest struct {
	// Source is the query's start vertex.
	Source uint32 `json:"source"`
	// DeadlineMS bounds the query end-to-end; 0 uses the server default.
	DeadlineMS int64 `json:"deadline_ms"`
	// Targets asks for the distances of specific vertices.
	Targets []uint32 `json:"targets,omitempty"`
	// Values asks for the full per-vertex distance array (tests and
	// small graphs; large graphs should use Targets).
	Values bool `json:"values,omitempty"`
}

// pointResponse is the JSON reply of a successful point query.
type pointResponse struct {
	App        string `json:"app"`
	Source     uint32 `json:"source"`
	BatchSize  int    `json:"batch_size"`
	Supersteps int    `json:"supersteps"`
	// Isolated marks a result computed by a solo re-run after the
	// query's original batch died of a retryable device fault.
	Isolated bool `json:"isolated,omitempty"`
	// Reached counts vertices with a finite distance (source included).
	Reached uint64 `json:"reached"`
	// BatchPagesRead/Written is the batch's scoped device IO, shared by
	// all BatchSize members — the per-query cost is this divided by the
	// batch size, which is the entire point of batching.
	BatchPagesRead    uint64            `json:"batch_pages_read"`
	BatchPagesWritten uint64            `json:"batch_pages_written"`
	Dist              map[string]uint32 `json:"dist,omitempty"`
	AllValues         []uint32          `json:"all_values,omitempty"`
}

// handlePoint admits one point query into b's batching window and waits
// for its lane result.
func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request, b *batcher) {
	live := obsv.Live()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required")
		return
	}
	var req pointRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return
	}
	n := s.g.NumVertices()
	if req.Source >= n {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("source %d out of range (graph has %d vertices)", req.Source, n))
		return
	}
	for _, t := range req.Targets {
		if t >= n {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("target %d out of range (graph has %d vertices)", t, n))
			return
		}
	}
	if s.closed.Load() {
		live.QueriesShed.Add(1)
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining")
		return
	}
	deadline := time.Now().Add(s.opts.DefaultDeadline)
	if req.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	if !deadline.After(time.Now()) {
		live.QueriesShed.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline", "deadline expired before admission")
		return
	}
	if s.queued.Add(1) > int64(s.opts.MaxQueue) {
		s.queued.Add(-1)
		live.QueriesShed.Add(1)
		writeError(w, http.StatusServiceUnavailable, "overloaded",
			fmt.Sprintf("query queue full (%d)", s.opts.MaxQueue))
		return
	}
	defer s.queued.Add(-1)

	// The breaker gates admission last: a query it admits is recorded
	// exactly once at its final resolution (in the batch/solo paths), so
	// half-open probe accounting stays balanced.
	if ok, retryAfter := s.brk.admit(); !ok {
		live.QueriesShed.Add(1)
		live.BreakerSheds.Add(1)
		writeErrorRetry(w, http.StatusServiceUnavailable, "breaker_open",
			"fault circuit breaker is open; device faults are being shed", retryAfter)
		return
	}

	q := &pointQuery{source: req.Source, deadline: deadline, done: make(chan pointResult, 1)}
	if err := b.enqueue(q); err != nil {
		s.brk.record(outcomeNeutral)
		live.QueriesShed.Add(1)
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining")
		return
	}

	select {
	case <-r.Context().Done():
		// Client gone; the batch still runs (its companions want it) and
		// the buffered done channel absorbs the orphaned result.
		return
	case res := <-q.done:
		if res.err != nil {
			code, status := classify(res.err)
			switch code {
			case "deadline":
				live.QueryDeadlines.Add(1)
			case "shutting_down":
				live.QueriesShed.Add(1)
			default:
				live.QueryErrors.Add(1)
			}
			writeError(w, status, code, res.err.Error())
			return
		}
		live.QueriesServed.Add(1)
		resp := pointResponse{
			App:               b.kind,
			Source:            req.Source,
			BatchSize:         res.batchSize,
			Supersteps:        res.supersteps,
			Isolated:          res.isolated,
			BatchPagesRead:    res.pagesRead,
			BatchPagesWritten: res.pagesWritten,
		}
		for _, d := range res.values {
			if d != apps.Inf {
				resp.Reached++
			}
		}
		if len(req.Targets) > 0 {
			resp.Dist = make(map[string]uint32, len(req.Targets))
			for _, t := range req.Targets {
				resp.Dist[fmt.Sprint(t)] = res.values[t]
			}
		}
		if req.Values {
			resp.AllValues = res.values
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleGraph reports the resident graph's shape.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"name":           s.g.Name(),
		"vertices":       s.g.NumVertices(),
		"edges":          s.g.NumEdges(),
		"intervals":      len(s.g.Intervals()),
		"weighted":       s.g.HasWeights(),
		"max_out_degree": s.g.MaxOutDegree(),
		"page_size":      s.dev.PageSize(),
	})
}

// handleStats reports device totals plus the serving counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	live := obsv.Live()
	st := s.dev.Stats()
	out := map[string]interface{}{
		"device": map[string]uint64{
			"pages_read":    st.PagesRead,
			"pages_written": st.PagesWritten,
		},
		"serving": map[string]int64{
			"queries_served":      live.QueriesServed.Value(),
			"queries_shed":        live.QueriesShed.Value(),
			"query_deadlines":     live.QueryDeadlines.Value(),
			"query_errors":        live.QueryErrors.Value(),
			"queries_isolated":    live.QueriesIsolated.Value(),
			"queries_retried":     live.QueriesRetried.Value(),
			"panics_recovered":    live.PanicsRecovered.Value(),
			"breaker_opens":       live.BreakerOpens.Value(),
			"breaker_sheds":       live.BreakerSheds.Value(),
			"batches_run":         live.BatchesRun.Value(),
			"batched_queries":     live.BatchedQueries.Value(),
			"query_pages_read":    live.QueryPagesRead.Value(),
			"query_pages_written": live.QueryPagesWrite.Value(),
		},
		"breaker":        s.brk.snapshot(),
		"brownout":       s.brk.brownout(),
		"queued":         s.queued.Load(),
		"max_concurrent": s.opts.MaxConcurrent,
		"read_only":      s.readOnly.Load(),
	}
	if f := s.fol.Load(); f != nil {
		st := f.status()
		out["role"] = st.Role
		out["replica"] = st
	} else {
		out["role"] = "primary"
	}
	ist := s.g.IngestStats()
	out["ingest"] = map[string]interface{}{
		"pending_updates":    ist.Pending,
		"epoch":              ist.Epoch,
		"merges":             ist.Merges,
		"pinned_snapshots":   ist.Pins,
		"durable":            ist.Durable,
		"batches_acked":      live.IngestBatches.Value(),
		"mutations_acked":    live.IngestMutations.Value(),
		"backpressure_sheds": live.IngestBackpressure.Value(),
		"errors":             live.IngestErrors.Value(),
		"wal_appends":        ist.WAL.Appends,
		"wal_flushes":        ist.WAL.Flushes,
		"wal_replayed":       ist.WAL.Replayed,
		"wal_torn_tails":     ist.WAL.TornTails,
		"wal_truncates":      ist.WAL.Truncates,
		"wal_durable_bytes":  ist.WAL.DurableBytes,
		"wal_last_seq":       ist.WAL.LastSeq,
	}
	if s.opts.Cache != nil {
		out["cache_pinned_pages"] = s.opts.Cache.PinnedPages()
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
