package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"multilogvc/internal/csr"
	"multilogvc/internal/gen"
	"multilogvc/internal/ssd"
)

// ingestFixture builds a graph and reopens it through the ingest plane
// (volatile WAL-less ingest is enough for handler tests; durability is
// covered by csr/wal tests and the CI kill -9 smoke).
func ingestFixture(t *testing.T, opts csr.IngestOptions) *csr.Graph {
	t.Helper()
	edges, err := gen.RMAT(gen.DefaultRMAT(8, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.MustOpen(ssd.Config{PageSize: 512, Channels: 4})
	if _, err := csr.Build(dev, "g", edges, csr.BuildOptions{NumVertices: 1 << 8, IntervalBudget: 2048}); err != nil {
		t.Fatal(err)
	}
	g, err := csr.OpenIngest(dev, "g", opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newIngestServer(t *testing.T, g *csr.Graph) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Options{Graph: g, EnableIngest: true, MergeThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func mutateBody(muts ...mutationSpec) map[string]interface{} {
	return map[string]interface{}{"mutations": muts}
}

// TestMutateEndpoint pins the happy path: a batch acks with the epoch
// and pending counts, and subsequent queries see the new edges.
func TestMutateEndpoint(t *testing.T) {
	g := ingestFixture(t, csr.IngestOptions{})
	_, ts := newIngestServer(t, g)

	resp, data := postJSON(t, ts.URL+"/mutate", mutateBody(
		mutationSpec{Op: "add", Src: 1, Dst: 2},
		mutationSpec{Op: "add", Src: 2, Dst: 3},
		mutationSpec{Op: "del", Src: 1, Dst: 2},
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, data)
	}
	var mr mutateResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Acked != 3 || mr.Epoch == 0 {
		t.Fatalf("ack = %+v", mr)
	}
	if mr.Durable {
		t.Fatalf("volatile ingest reported durable: %+v", mr)
	}
	// The del cancelled its same-epoch add: only 2->3 remains buffered.
	if mr.Pending != 2 {
		t.Fatalf("pending = %d, want 2 (same-epoch cancel)", mr.Pending)
	}
	deg, err := g.OutDegreeSlow(2)
	if err != nil {
		t.Fatal(err)
	}
	var want uint32
	_, err = g.LoadOutEdges(g.IntervalOf(2), []uint32{2}, func(_ uint32, nbrs []uint32) {
		for _, nb := range nbrs {
			if nb == 3 {
				want++
			}
		}
	})
	if err != nil || want == 0 {
		t.Fatalf("added edge 2->3 not visible (deg=%d err=%v)", deg, err)
	}
}

// TestMutateValidation pins the 400 family: bad op, out-of-range edge,
// empty and oversized batches, wrong method.
func TestMutateValidation(t *testing.T) {
	g := ingestFixture(t, csr.IngestOptions{})
	_, ts := newIngestServer(t, g)

	cases := []struct {
		name string
		body interface{}
	}{
		{"bad op", mutateBody(mutationSpec{Op: "upsert", Src: 1, Dst: 2})},
		{"out of range", mutateBody(mutationSpec{Op: "add", Src: 1, Dst: 1 << 20})},
		{"empty", mutateBody()},
	}
	for _, c := range cases {
		resp, data := postJSON(t, ts.URL+"/mutate", c.body)
		if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != "bad_request" {
			t.Fatalf("%s: %d %s", c.name, resp.StatusCode, data)
		}
	}
	big := make([]mutationSpec, maxMutationsPerRequest+1)
	for i := range big {
		big[i] = mutationSpec{Op: "add", Src: 1, Dst: 2}
	}
	resp, data := postJSON(t, ts.URL+"/mutate", mutateBody(big...))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d %s", resp.StatusCode, data)
	}
	r, err := http.Get(ts.URL + "/mutate")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /mutate: %d", r.StatusCode)
	}
}

// TestMutateBackpressure pins the 503 contract: past MaxPending the
// batch is shed with code ingest_backpressure and a Retry-After header,
// and nothing of it is applied.
func TestMutateBackpressure(t *testing.T) {
	g := ingestFixture(t, csr.IngestOptions{MaxPending: 4})
	_, ts := newIngestServer(t, g)

	resp, data := postJSON(t, ts.URL+"/mutate", mutateBody(
		mutationSpec{Op: "add", Src: 1, Dst: 2},
		mutationSpec{Op: "add", Src: 2, Dst: 3},
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch: %d %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/mutate", mutateBody(mutationSpec{Op: "add", Src: 3, Dst: 4}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap batch: %d %s", resp.StatusCode, data)
	}
	if code := errCode(t, data); code != "ingest_backpressure" {
		t.Fatalf("code = %q", code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}
	if p := g.PendingUpdates(); p != 4 {
		t.Fatalf("shed batch leaked: pending = %d", p)
	}
}

// TestMutateDisabledByDefault pins that /mutate 404s unless EnableIngest
// is set.
func TestMutateDisabledByDefault(t *testing.T) {
	g := fixture(t, 7)
	s, err := New(Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()
	resp, _ := postJSON(t, ts.URL+"/mutate", mutateBody(mutationSpec{Op: "add", Src: 1, Dst: 2}))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/mutate without EnableIngest: %d", resp.StatusCode)
	}
}

// TestQueriesSnapshotIsolatedFromIngest runs a query, mutates heavily,
// reruns, and checks (a) both answers are self-consistent and (b) an
// in-flight pinned snapshot defers merges rather than racing them —
// exercised by mutating past the merge threshold while queries run.
func TestQueriesSnapshotIsolatedFromIngest(t *testing.T) {
	g := ingestFixture(t, csr.IngestOptions{})
	s, err := New(Options{Graph: g, EnableIngest: true, MergeThreshold: 64, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	before := single(t, g, "bfs", 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			n := g.NumVertices()
			postJSON(t, ts.URL+"/mutate", mutateBody(
				mutationSpec{Op: "add", Src: uint32(i) % n, Dst: uint32(i*7+1) % n},
				mutationSpec{Op: "add", Src: uint32(i*3) % n, Dst: uint32(i*11+2) % n},
			))
		}
	}()
	for i := 0; i < 10; i++ {
		resp, data := postJSON(t, ts.URL+"/query/bfs", map[string]interface{}{"source": 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d during ingest: %d %s", i, resp.StatusCode, data)
		}
	}
	<-done
	// Quiesced: a fresh sequential run and a served query must agree.
	resp, data := postJSON(t, ts.URL+"/query/bfs", map[string]interface{}{"source": 1, "values": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final query: %d %s", resp.StatusCode, data)
	}
	var pr pointResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	after := single(t, g, "bfs", 1)
	if len(pr.AllValues) != len(after) {
		t.Fatalf("value lengths: served %d vs sequential %d", len(pr.AllValues), len(after))
	}
	for i := range after {
		if pr.AllValues[i] != after[i] {
			t.Fatalf("vertex %d: served %d vs sequential %d", i, pr.AllValues[i], after[i])
		}
	}
	_ = before
	if st := g.IngestStats(); st.Pins != 0 {
		t.Fatalf("leaked snapshot pins: %d", st.Pins)
	}
}

// TestStatsIngestSection pins the /stats surface the CI smoke scrapes.
func TestStatsIngestSection(t *testing.T) {
	g := ingestFixture(t, csr.IngestOptions{MaxPending: 100})
	_, ts := newIngestServer(t, g)
	if _, data := postJSON(t, ts.URL+"/mutate", mutateBody(mutationSpec{Op: "add", Src: 1, Dst: 2})); data == nil {
		t.Fatal("no ack")
	}
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Ingest map[string]interface{} `json:"ingest"`
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Ingest == nil {
		t.Fatal("/stats has no ingest section")
	}
	for _, k := range []string{"pending_updates", "epoch", "merges", "durable", "wal_appends"} {
		if _, ok := st.Ingest[k]; !ok {
			t.Fatalf("/stats ingest missing %q: %v", k, st.Ingest)
		}
	}
	if fmt.Sprint(st.Ingest["pending_updates"]) != "2" {
		t.Fatalf("pending_updates = %v", st.Ingest["pending_updates"])
	}
}
