package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"multilogvc/internal/core"
	"multilogvc/internal/csr"
	"multilogvc/internal/ssd"
	"multilogvc/internal/wal"
)

// Every error a query can die of leaves as structured JSON —
// {"error":{"code":"...","message":"..."}} — with an HTTP status that
// mirrors cmd/mlvc's exit-code families, so a load balancer or client
// can react per class (retry later vs give up vs page an operator)
// without parsing prose.
//
//	deadline             504  query or batch deadline expired (retry with a longer one)
//	overloaded           503  admission queue full (back off and retry)
//	shutting_down        503  server draining (retry against a peer)
//	breaker_open         503  fault circuit breaker shedding (honor Retry-After)
//	ingest_backpressure  503  mutation buffer at its pending cap (back off; a merge drains it)
//	no_space             507  device quota held even after reclamation
//	device_fault         500  transient retries exhausted
//	corrupt              500  data failed checksum beyond recovery
//	bad_request          400  malformed query, or a mutation naming a vertex past the graph's bound
//	read_only            403  this node is a replication follower; mutate the primary or promote it
//	not_ready            503  replication asked of a graph with no WAL (run the primary with -ingest)
//	gap                  410  requested WAL frames were truncated by a merge checkpoint (re-seed the follower)
//	internal             500  anything else, panics included
//
// Every 503 and 507 carries a Retry-After header: a well-behaved client
// backs off exactly as long as the daemon asks, which is what lets the
// breaker's half-open probes breathe.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// classify maps an execution error to its (code, HTTP status) family.
func classify(err error) (string, int) {
	switch {
	case errors.Is(err, core.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return "deadline", http.StatusGatewayTimeout
	case errors.Is(err, core.ErrInterrupted):
		return "shutting_down", http.StatusServiceUnavailable
	case errors.Is(err, csr.ErrIngestBackpressure):
		return "ingest_backpressure", http.StatusServiceUnavailable
	case errors.Is(err, csr.ErrVertexOutOfRange):
		return "bad_request", http.StatusBadRequest
	case errors.Is(err, csr.ErrNotDurable):
		return "not_ready", http.StatusServiceUnavailable
	case errors.Is(err, wal.ErrSeqGap):
		return "gap", http.StatusGone
	case errors.Is(err, ssd.ErrNoSpace):
		return "no_space", http.StatusInsufficientStorage
	case errors.Is(err, ssd.ErrRetriesExhausted):
		return "device_fault", http.StatusInternalServerError
	case errors.Is(err, core.ErrCorruptData), errors.Is(err, ssd.ErrCorruptPage):
		return "corrupt", http.StatusInternalServerError
	default:
		return "internal", http.StatusInternalServerError
	}
}

// writeError emits the structured error body, with the default
// Retry-After for shed statuses (1s for 503s, 5s for 507 — quota
// reclamation is slower than queue drain). Use writeErrorRetry when the
// caller knows better (the breaker's remaining cooldown).
func writeError(w http.ResponseWriter, status int, code, msg string) {
	retryAfter := 0
	switch status {
	case http.StatusServiceUnavailable:
		retryAfter = 1
	case http.StatusInsufficientStorage:
		retryAfter = 5
	}
	writeErrorRetry(w, status, code, msg, retryAfter)
}

func writeErrorRetry(w http.ResponseWriter, status int, code, msg string, retryAfter int) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
