package csr

import (
	"encoding/binary"
	"fmt"
	"sort"

	"multilogvc/internal/ssd"
)

// Graph is an opened interval-partitioned CSR graph. It serves adjacency
// for sets of active vertices, reading only covering pages (the paper's
// graph loader unit), and reports per-page utilization.
type Graph struct {
	dev  *ssd.Device
	meta *Meta
	idx  *IntervalIndex

	outRow, outCol []*ssd.File
	inRow, inCol   []*ssd.File
	outVal, inVal  []*ssd.File // nil entries when the graph is unweighted

	// ing holds the shared mutable ingest plane (delta overlay, epochs,
	// WAL). Graph values are copied by View and Snapshot, so it sits
	// behind a pointer; atEpoch/pinned make a copy a frozen view.
	ing     *ingestState
	atEpoch uint64 // epoch a pinned view reads at
	pinned  bool
}

// Open opens a graph previously written with Build, first completing any
// merge a crash interrupted (see recoverIngest) so every open observes
// crash-consistent CSR files.
func Open(dev *ssd.Device, name string) (*Graph, error) {
	if err := recoverIngest(dev, name); err != nil {
		return nil, fmt.Errorf("csr: recover interrupted merge of %q: %w", name, err)
	}
	meta, err := readMeta(dev, name)
	if err != nil {
		return nil, err
	}
	g := &Graph{
		dev:  dev,
		meta: meta,
		idx:  NewIntervalIndex(meta.Intervals, meta.NumVertices),
		ing:  newIngestState(),
	}
	// Sequence numbers are identity across restarts (and across replicas):
	// the merged prefix 1..FoldedSeq lives in the CSR files, so the epoch
	// starts there and new mutations continue the numbering, never reuse it.
	g.ing.epoch.Store(meta.FoldedSeq)
	g.ing.nextSeq = meta.FoldedSeq
	for i := range meta.Intervals {
		rf, err := dev.OpenFile(outRowPtrName(name, i))
		if err != nil {
			return nil, err
		}
		rf.SetSize(meta.OutRowPtrSize[i])
		cf, err := dev.OpenFile(outColIdxName(name, i))
		if err != nil {
			return nil, err
		}
		cf.SetSize(meta.OutColIdxSize[i])
		irf, err := dev.OpenFile(inRowPtrName(name, i))
		if err != nil {
			return nil, err
		}
		irf.SetSize(meta.InRowPtrSize[i])
		icf, err := dev.OpenFile(inColIdxName(name, i))
		if err != nil {
			return nil, err
		}
		icf.SetSize(meta.InColIdxSize[i])
		g.outRow = append(g.outRow, rf)
		g.outCol = append(g.outCol, cf)
		g.inRow = append(g.inRow, irf)
		g.inCol = append(g.inCol, icf)
		if meta.HasWeights {
			ovf, err := dev.OpenFile(outValName(name, i))
			if err != nil {
				return nil, err
			}
			ovf.SetSize(meta.OutValSize[i])
			ivf, err := dev.OpenFile(inValName(name, i))
			if err != nil {
				return nil, err
			}
			ivf.SetSize(meta.InValSize[i])
			g.outVal = append(g.outVal, ovf)
			g.inVal = append(g.inVal, ivf)
		}
	}
	return g, nil
}

// HasWeights reports whether the graph stores per-edge weights.
func (g *Graph) HasWeights() bool { return g.meta.HasWeights }

// Name returns the graph's device name.
func (g *Graph) Name() string { return g.meta.Name }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() uint32 { return g.meta.NumVertices }

// NumEdges returns the current directed edge count of the CSR files
// (delta merges update it; buffered deltas are not counted).
func (g *Graph) NumEdges() uint64 {
	if g.ing != nil {
		g.ing.mu.RLock()
		defer g.ing.mu.RUnlock()
	}
	return g.meta.NumEdges
}

// MaxOutDegree returns the largest out-degree at build time.
func (g *Graph) MaxOutDegree() uint32 {
	if g.ing != nil {
		g.ing.mu.RLock()
		defer g.ing.mu.RUnlock()
	}
	return g.meta.MaxOutDegree
}

// Intervals returns the vertex intervals. Callers must not mutate.
func (g *Graph) Intervals() []Interval { return g.meta.Intervals }

// IntervalOf returns the index of the interval containing v.
func (g *Graph) IntervalOf(v uint32) int { return g.idx.Of(v) }

// Device returns the underlying device.
func (g *Graph) Device() *ssd.Device { return g.dev }

// PageKey identifies a column-index page for utilization tracking across
// supersteps. Side 0 = out-CSR, 1 = in-CSR.
type PageKey struct {
	Side     uint8
	Interval int32
	Page     int32
}

// PageUtil reports how many bytes of a fetched column-index page were
// needed by the request that fetched it.
type PageUtil struct {
	Key       PageKey
	UsedBytes int32
}

// LoadStats accounts one adjacency load.
type LoadStats struct {
	RowPtrPages int
	ColIdxPages int
	ValPages    int // weight (val vector) pages, weighted graphs only
	PageUtils   []PageUtil
}

// Add accumulates other into s.
func (s *LoadStats) Add(other LoadStats) {
	s.RowPtrPages += other.RowPtrPages
	s.ColIdxPages += other.ColIdxPages
	s.ValPages += other.ValPages
	s.PageUtils = append(s.PageUtils, other.PageUtils...)
}

// EdgeVisitor receives one vertex's neighbor list. nbrs aliases an
// internal buffer valid only during the call.
type EdgeVisitor func(v uint32, nbrs []uint32)

// EdgeVisitorEx additionally receives the column-index page range
// [firstPage, lastPage] the vertex's edges live on, so callers (the
// edge-log optimizer) can relate vertices to page utilization. For
// zero-degree vertices firstPage > lastPage.
type EdgeVisitorEx func(v uint32, nbrs []uint32, firstPage, lastPage int32)

// EdgeVisitorFull additionally receives the vertex's per-edge weights
// (nil for unweighted graphs), parallel to nbrs.
type EdgeVisitorFull func(v uint32, nbrs, weights []uint32, firstPage, lastPage int32)

// LoadOutEdges loads the out-edge lists of the given vertices, which must
// all lie in interval iv and be sorted ascending. Only the row-pointer and
// column-index pages covering the requested vertices are read, in batches.
func (g *Graph) LoadOutEdges(iv int, verts []uint32, visit EdgeVisitor) (LoadStats, error) {
	return g.loadEdges(0, g.outRow[iv], g.outCol[iv], nil, iv, verts,
		func(v uint32, nbrs, _ []uint32, _, _ int32) { visit(v, nbrs) })
}

// LoadOutEdgesEx is LoadOutEdges with page-range information.
func (g *Graph) LoadOutEdgesEx(iv int, verts []uint32, visit EdgeVisitorEx) (LoadStats, error) {
	return g.loadEdges(0, g.outRow[iv], g.outCol[iv], nil, iv, verts,
		func(v uint32, nbrs, _ []uint32, first, last int32) { visit(v, nbrs, first, last) })
}

// LoadOutEdgesFull is LoadOutEdgesEx plus per-edge weights for weighted
// graphs; the val pages are fetched alongside the colidx pages and
// counted in the stats.
func (g *Graph) LoadOutEdgesFull(iv int, verts []uint32, visit EdgeVisitorFull) (LoadStats, error) {
	var valF *ssd.File
	if g.meta.HasWeights {
		valF = g.outVal[iv]
	}
	return g.loadEdges(0, g.outRow[iv], g.outCol[iv], valF, iv, verts, visit)
}

// LoadInEdges is LoadOutEdges for the in-edge (source) lists.
func (g *Graph) LoadInEdges(iv int, verts []uint32, visit EdgeVisitor) (LoadStats, error) {
	return g.loadEdges(1, g.inRow[iv], g.inCol[iv], nil, iv, verts,
		func(v uint32, nbrs, _ []uint32, _, _ int32) { visit(v, nbrs) })
}

// LoadInEdgesFull is LoadInEdges plus in-edge weights.
func (g *Graph) LoadInEdgesFull(iv int, verts []uint32, visit EdgeVisitorFull) (LoadStats, error) {
	var valF *ssd.File
	if g.meta.HasWeights {
		valF = g.inVal[iv]
	}
	return g.loadEdges(1, g.inRow[iv], g.inCol[iv], valF, iv, verts, visit)
}

func (g *Graph) loadEdges(side uint8, rowF, colF, valF *ssd.File, iv int, verts []uint32, visit EdgeVisitorFull) (LoadStats, error) {
	var stats LoadStats
	if len(verts) == 0 {
		return stats, nil
	}
	// Shared-lock the ingest plane for the whole load: a crash-atomic
	// merge (exclusive) must never rewrite the CSR files under a
	// half-assembled neighbor list. Raw merge-internal views (ing == nil)
	// skip both the lock and the overlay.
	var epoch uint64
	if ing := g.ing; ing != nil {
		ing.mu.RLock()
		defer ing.mu.RUnlock()
		if err := ing.failed; err != nil {
			return stats, err
		}
		if g.pinned {
			epoch = g.atEpoch
		} else {
			epoch = ing.epoch.Load()
		}
	}
	interval := g.meta.Intervals[iv]
	for _, v := range verts {
		if !interval.Contains(v) {
			return stats, fmt.Errorf("csr: vertex %d outside interval %d %v", v, iv, interval)
		}
	}

	rows, rowPages, err := g.readRowEntries(rowF, interval, verts)
	if err != nil {
		return stats, err
	}
	stats.RowPtrPages = rowPages

	// Gather the set of colidx pages covering all requested edge ranges,
	// tracking used bytes per page.
	ps := g.dev.PageSize()
	used := make(map[int]int32) // page -> used bytes
	for i := range verts {
		start, end := rows[2*i], rows[2*i+1]
		if start == end {
			continue
		}
		bLo := int64(start) * 4
		bHi := int64(end) * 4
		for p := bLo / int64(ps); p <= (bHi-1)/int64(ps); p++ {
			pLo := p * int64(ps)
			pHi := pLo + int64(ps)
			lo, hi := bLo, bHi
			if lo < pLo {
				lo = pLo
			}
			if hi > pHi {
				hi = pHi
			}
			used[int(p)] += int32(hi - lo)
		}
	}
	pages := make([]int, 0, len(used))
	for p := range used {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	pageBuf := make([]byte, len(pages)*ps)
	if err := colF.ReadPages(pages, pageBuf); err != nil {
		return stats, err
	}
	stats.ColIdxPages = len(pages)
	pageAt := make(map[int][]byte, len(pages))
	for i, p := range pages {
		pageAt[p] = pageBuf[i*ps : (i+1)*ps]
		stats.PageUtils = append(stats.PageUtils, PageUtil{
			Key:       PageKey{Side: side, Interval: int32(iv), Page: int32(p)},
			UsedBytes: used[p],
		})
	}

	// Weighted graphs: the val file mirrors the colidx layout, so the
	// same page set serves the weights.
	var valAt map[int][]byte
	if valF != nil {
		valBuf := make([]byte, len(pages)*ps)
		// val files can be shorter than colidx files only by padding;
		// clamp the request to allocated pages.
		valPages := make([]int, 0, len(pages))
		for _, p := range pages {
			if p < valF.NumPages() {
				valPages = append(valPages, p)
			}
		}
		if err := valF.ReadPages(valPages, valBuf[:len(valPages)*ps]); err != nil {
			return stats, err
		}
		stats.ValPages = len(valPages)
		valAt = make(map[int][]byte, len(valPages))
		for i, p := range valPages {
			valAt[p] = valBuf[i*ps : (i+1)*ps]
		}
	}

	// Reassemble each vertex's neighbor list from the fetched pages and
	// overlay structural deltas if present.
	var nbrBuf, wBuf []uint32
	for i, v := range verts {
		start, end := rows[2*i], rows[2*i+1]
		deg := int(end - start)
		if cap(nbrBuf) < deg {
			nbrBuf = make([]uint32, deg)
			wBuf = make([]uint32, deg)
		}
		nbrs := nbrBuf[:deg]
		var weights []uint32
		if valAt != nil {
			weights = wBuf[:deg]
		}
		for j := 0; j < deg; j++ {
			off := (int64(start) + int64(j)) * 4
			page := pageAt[int(off/int64(ps))]
			nbrs[j] = binary.LittleEndian.Uint32(page[off%int64(ps):])
			if weights != nil {
				if vp := valAt[int(off/int64(ps))]; vp != nil {
					weights[j] = binary.LittleEndian.Uint32(vp[off%int64(ps):])
				}
			}
		}
		if g.ing != nil {
			nbrs, weights = g.ing.deltas.apply(side, v, nbrs, weights, epoch)
		}
		firstPage := int32(int64(start) * 4 / int64(ps))
		lastPage := int32((int64(end)*4 - 1) / int64(ps))
		if deg == 0 {
			firstPage, lastPage = 1, 0
		}
		visit(v, nbrs, weights, firstPage, lastPage)
	}
	return stats, nil
}

// readRowEntries returns, for each requested vertex, its (start, end) edge
// offsets, reading only the covering row-pointer pages. The result is laid
// out as [start0, end0, start1, end1, ...].
func (g *Graph) readRowEntries(rowF *ssd.File, interval Interval, verts []uint32) ([]uint64, int, error) {
	return g.readRowEntriesWith(rowF, interval, verts, rowF.ReadPages)
}

// readRowEntriesWith is readRowEntries with the page read indirected, so
// the prefetcher's planning path can issue it stage-tagged (its goroutine
// runs concurrently with the engine's ambient device tag).
func (g *Graph) readRowEntriesWith(rowF *ssd.File, interval Interval, verts []uint32,
	read func(pages []int, dst []byte) error) ([]uint64, int, error) {
	ps := g.dev.PageSize()
	pageSet := make(map[int]bool)
	for _, v := range verts {
		j := int64(v - interval.Lo)
		// Entries j and j+1, 8 bytes each.
		bLo := j * 8
		bHi := bLo + 16
		for p := bLo / int64(ps); p <= (bHi-1)/int64(ps); p++ {
			pageSet[int(p)] = true
		}
	}
	pages := make([]int, 0, len(pageSet))
	for p := range pageSet {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	buf := make([]byte, len(pages)*ps)
	if err := read(pages, buf); err != nil {
		return nil, 0, err
	}
	pageAt := make(map[int][]byte, len(pages))
	for i, p := range pages {
		pageAt[p] = buf[i*ps : (i+1)*ps]
	}
	entry := func(j int64) uint64 {
		off := j * 8
		page := pageAt[int(off/int64(ps))]
		return binary.LittleEndian.Uint64(page[off%int64(ps):])
	}
	out := make([]uint64, 2*len(verts))
	for i, v := range verts {
		j := int64(v - interval.Lo)
		out[2*i] = entry(j)
		out[2*i+1] = entry(j + 1)
	}
	return out, len(pages), nil
}

// ReadWholeInterval reads every out-edge list of an interval sequentially
// (used by builders of derived structures and by tests).
func (g *Graph) ReadWholeInterval(iv int, visit EdgeVisitor) error {
	interval := g.meta.Intervals[iv]
	verts := make([]uint32, 0, interval.Len())
	for v := interval.Lo; v < interval.Hi; v++ {
		verts = append(verts, v)
	}
	_, err := g.LoadOutEdges(iv, verts, visit)
	return err
}

// OutDegreeSlow returns v's current out-degree including deltas. Intended
// for tests and tools, not hot paths.
func (g *Graph) OutDegreeSlow(v uint32) (uint32, error) {
	iv := g.IntervalOf(v)
	var deg uint32
	_, err := g.LoadOutEdges(iv, []uint32{v}, func(_ uint32, nbrs []uint32) {
		deg = uint32(len(nbrs))
	})
	return deg, err
}
