package csr

import (
	"encoding/binary"
	"fmt"
	"sort"

	"multilogvc/internal/ssd"
)

// Aux is per-in-edge auxiliary vertex state stored on the device, one
// uint32 per in-edge, laid out per interval in in-CSR order. The community
// detection application uses it to remember each in-neighbor's last known
// label (paper Algorithm 2: V_inf.edge(src).set_label). Loading and
// storing aux state for active vertices is page-granular, which is why
// CDLP on MultiLogVC pays extra reads relative to GraphChi (§VIII).
type Aux struct {
	g     *Graph
	name  string
	files []*ssd.File
}

func auxFileName(graphName, auxName string, iv int) string {
	return fmt.Sprintf("%s.aux.%s.%d", graphName, auxName, iv)
}

// CreateAux creates (or resets) an aux array named auxName for graph g,
// one uint32 per in-edge, initialized to init.
func CreateAux(g *Graph, auxName string, init uint32) (*Aux, error) {
	a := &Aux{g: g, name: auxName}
	for i := range g.meta.Intervals {
		f, err := g.dev.OpenOrCreate(auxFileName(g.meta.Name, auxName, i))
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(); err != nil {
			return nil, err
		}
		w := ssd.NewWriter(f)
		entries := g.meta.InColIdxSize[i] / 4
		for j := int64(0); j < entries; j++ {
			if err := w.WriteU32(init); err != nil {
				return nil, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		a.files = append(a.files, f)
	}
	return a, nil
}

// DumpAll reads every interval's aux entries with page-batched streaming,
// one slice per interval. Checkpointing serializes the result.
func (a *Aux) DumpAll() ([][]uint32, error) {
	out := make([][]uint32, len(a.files))
	for i, f := range a.files {
		entries := a.g.meta.InColIdxSize[i] / 4
		vals := make([]uint32, entries)
		r := ssd.NewReaderN(f, entries*4, 0)
		for j := range vals {
			v, err := r.U32()
			if err != nil {
				return nil, fmt.Errorf("csr: dump aux %q interval %d: %w", a.name, i, err)
			}
			vals[j] = v
		}
		out[i] = vals
	}
	return out, nil
}

// RestoreAll overwrites every interval's aux entries from a DumpAll
// snapshot, truncating whatever the files held (a crashed run may have
// left partial writes behind).
func (a *Aux) RestoreAll(data [][]uint32) error {
	if len(data) != len(a.files) {
		return fmt.Errorf("csr: aux %q restore has %d intervals, graph has %d", a.name, len(data), len(a.files))
	}
	for i, f := range a.files {
		if want := a.g.meta.InColIdxSize[i] / 4; int64(len(data[i])) != want {
			return fmt.Errorf("csr: aux %q interval %d restore has %d entries, want %d", a.name, i, len(data[i]), want)
		}
		if err := f.Truncate(); err != nil {
			return err
		}
		w := ssd.NewWriter(f)
		for _, v := range data[i] {
			if err := w.WriteU32(v); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// AuxBatch holds the aux slices of a set of active vertices in one
// interval. Get returns a mutable slice (parallel to the vertex's in-CSR
// source list); Flush writes dirty entries back with page-granular RMW.
type AuxBatch struct {
	aux    *Aux
	iv     int
	ranges map[uint32][2]uint64 // vertex -> [start,end) entry offsets
	data   map[uint32][]uint32  // vertex -> loaded slice
	pages  map[int][]byte       // page index -> page image
	order  []int                // sorted page indices
}

// LoadBatch fetches the aux slices of the given vertices (sorted, all in
// interval iv). It reads the covering in-rowptr and aux pages as batches
// and returns IO stats alongside the batch.
func (a *Aux) LoadBatch(iv int, verts []uint32) (*AuxBatch, LoadStats, error) {
	var stats LoadStats
	b := &AuxBatch{
		aux:    a,
		iv:     iv,
		ranges: make(map[uint32][2]uint64, len(verts)),
		data:   make(map[uint32][]uint32, len(verts)),
		pages:  make(map[int][]byte),
	}
	if len(verts) == 0 {
		return b, stats, nil
	}
	interval := a.g.meta.Intervals[iv]
	rows, rowPages, err := a.g.readRowEntries(a.g.inRow[iv], interval, verts)
	if err != nil {
		return nil, stats, err
	}
	stats.RowPtrPages = rowPages

	ps := a.g.dev.PageSize()
	pageSet := make(map[int]bool)
	for i, v := range verts {
		start, end := rows[2*i], rows[2*i+1]
		b.ranges[v] = [2]uint64{start, end}
		if start == end {
			continue
		}
		for p := int64(start) * 4 / int64(ps); p <= (int64(end)*4-1)/int64(ps); p++ {
			pageSet[int(p)] = true
		}
	}
	pages := make([]int, 0, len(pageSet))
	for p := range pageSet {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	buf := make([]byte, len(pages)*ps)
	if err := a.files[iv].ReadPages(pages, buf); err != nil {
		return nil, stats, err
	}
	stats.ColIdxPages = len(pages)
	for i, p := range pages {
		b.pages[p] = buf[i*ps : (i+1)*ps]
	}
	b.order = pages

	for i, v := range verts {
		start, end := rows[2*i], rows[2*i+1]
		vals := make([]uint32, end-start)
		for j := range vals {
			off := (int64(start) + int64(j)) * 4
			page := b.pages[int(off/int64(ps))]
			vals[j] = binary.LittleEndian.Uint32(page[off%int64(ps):])
		}
		b.data[v] = vals
	}
	return b, stats, nil
}

// Get returns the mutable aux slice for v (parallel to its in-CSR source
// list), or nil if v was not in the batch.
func (b *AuxBatch) Get(v uint32) []uint32 { return b.data[v] }

// Flush writes all batch slices back into the loaded page images and
// writes those pages to the device. It returns the number of pages
// written.
func (b *AuxBatch) Flush() (int, error) {
	if len(b.pages) == 0 {
		return 0, nil
	}
	ps := b.aux.g.dev.PageSize()
	for v, vals := range b.data {
		start := b.ranges[v][0]
		for j, val := range vals {
			off := (int64(start) + int64(j)) * 4
			page := b.pages[int(off/int64(ps))]
			binary.LittleEndian.PutUint32(page[off%int64(ps):], val)
		}
	}
	// Write back in contiguous runs to batch channel usage.
	f := b.aux.files[b.iv]
	written := 0
	for i := 0; i < len(b.order); {
		j := i
		for j+1 < len(b.order) && b.order[j+1] == b.order[j]+1 {
			j++
		}
		run := make([]byte, (j-i+1)*ps)
		for k := i; k <= j; k++ {
			copy(run[(k-i)*ps:], b.pages[b.order[k]])
		}
		if err := f.WritePageRange(b.order[i], run); err != nil {
			return written, err
		}
		written += j - i + 1
		i = j + 1
	}
	return written, nil
}
