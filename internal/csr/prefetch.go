package csr

import (
	"sort"

	"multilogvc/internal/obsv"
	"multilogvc/internal/ssd"
)

// Prefetch planning helpers: these compute which device pages a future
// adjacency or value load for a predicted-active vertex set would touch,
// so the engine's prefetcher can warm them while the current batch
// computes. They mirror the page arithmetic of loadEdges/readRowEntries
// and LoadForVerts exactly — a page warmed here is precisely a page the
// demand load would otherwise miss on.

// File returns the device file backing the value array.
func (vv *Values) File() *ssd.File { return vv.f }

// PagesForVerts returns the distinct pages holding the value slots of the
// given vertices (all lanes), which must be sorted ascending.
func (vv *Values) PagesForVerts(verts []uint32) []int {
	ps := vv.dev.PageSize()
	lanes := int64(vv.laneCount())
	var pages []int
	last := -1
	for _, v := range verts {
		if v >= vv.n {
			continue
		}
		bLo := int64(v) * lanes * 4
		bHi := bLo + lanes*4
		for p := int(bLo / int64(ps)); p <= int((bHi-1)/int64(ps)); p++ {
			if p != last {
				pages = append(pages, p)
				last = p
			}
		}
	}
	return pages
}

// OutRowPages returns interval iv's out-CSR row-pointer file and the
// pages covering the row entries of verts. Pure arithmetic — no IO — so
// it is safe to call from the engine's main loop when planning prefetch.
func (g *Graph) OutRowPages(iv int, verts []uint32) (*ssd.File, []int) {
	if len(verts) == 0 {
		return nil, nil
	}
	interval := g.meta.Intervals[iv]
	ps := g.dev.PageSize()
	pageSet := make(map[int]bool)
	for _, v := range verts {
		if !interval.Contains(v) {
			continue
		}
		j := int64(v - interval.Lo)
		bLo := j * 8
		bHi := bLo + 16 // entries j and j+1
		for p := bLo / int64(ps); p <= (bHi-1)/int64(ps); p++ {
			pageSet[int(p)] = true
		}
	}
	return g.outRow[iv], sortedPages(pageSet)
}

// OutColPages reads the row entries of verts (a cache hit when the
// row-pointer pages were warmed first) and returns the column-index file
// and the pages holding those vertices' edges. This is the second stage
// of the two-stage CSR prefetch: rowptr pages first, then the colidx
// pages they point at. Runs on the prefetch worker.
func (g *Graph) OutColPages(iv int, verts []uint32) (*ssd.File, []int, error) {
	if len(verts) == 0 {
		return nil, nil, nil
	}
	interval := g.meta.Intervals[iv]
	inRange := verts[:0:0]
	for _, v := range verts {
		if interval.Contains(v) {
			inRange = append(inRange, v)
		}
	}
	if len(inRange) == 0 {
		return nil, nil, nil
	}
	// Runs on the prefetch worker, concurrent with the engine's tagged
	// phase — charge the row-entry reads to the prefetch stage explicitly.
	rowF := g.outRow[iv]
	rows, _, err := g.readRowEntriesWith(rowF, interval, inRange,
		func(pages []int, dst []byte) error {
			return rowF.ReadPagesTagged(pages, dst, obsv.StagePrefetch)
		})
	if err != nil {
		return nil, nil, err
	}
	ps := g.dev.PageSize()
	pageSet := make(map[int]bool)
	for i := range inRange {
		start, end := rows[2*i], rows[2*i+1]
		if start == end {
			continue
		}
		bLo := int64(start) * 4
		bHi := int64(end) * 4
		for p := bLo / int64(ps); p <= (bHi-1)/int64(ps); p++ {
			pageSet[int(p)] = true
		}
	}
	return g.outCol[iv], sortedPages(pageSet), nil
}

func sortedPages(set map[int]bool) []int {
	pages := make([]int, 0, len(set))
	for p := range set {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	return pages
}
