package csr

import (
	"encoding/binary"
	"fmt"
	"sort"

	"multilogvc/internal/ssd"
)

// ValueBatch holds the values of a sparse set of vertices, loaded by
// reading only the covering pages of the value file. Sets write into the
// loaded page images; Flush writes the touched pages back. Distinct
// vertices may be Set concurrently.
type ValueBatch struct {
	vv    *Values
	pages map[int][]byte
	order []int
}

// LoadForVerts reads the value-file pages covering the given vertices
// (sorted ascending) as one batch. Returns the batch and the number of
// pages read.
func (vv *Values) LoadForVerts(verts []uint32) (*ValueBatch, int, error) {
	b := &ValueBatch{vv: vv, pages: make(map[int][]byte)}
	if len(verts) == 0 {
		return b, 0, nil
	}
	ps := vv.dev.PageSize()
	lanes := int64(vv.laneCount())
	pageSet := make(map[int]bool)
	for _, v := range verts {
		if v >= vv.n {
			return nil, 0, fmt.Errorf("csr: value vertex %d out of [0,%d)", v, vv.n)
		}
		// All lanes of v: slots [v*lanes, (v+1)*lanes), 4 bytes each.
		bLo := int64(v) * lanes * 4
		bHi := bLo + lanes*4
		for p := bLo / int64(ps); p <= (bHi-1)/int64(ps); p++ {
			pageSet[int(p)] = true
		}
	}
	pages := make([]int, 0, len(pageSet))
	for p := range pageSet {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	buf := make([]byte, len(pages)*ps)
	if err := vv.f.ReadPages(pages, buf); err != nil {
		return nil, 0, err
	}
	for i, p := range pages {
		b.pages[p] = buf[i*ps : (i+1)*ps]
	}
	b.order = pages
	return b, len(pages), nil
}

// Get returns v's lane-0 value. v must be covered by the batch.
func (b *ValueBatch) Get(v uint32) uint32 { return b.GetLane(v, 0) }

// Set updates v's lane-0 value in the batch. v must be covered by the
// batch. Distinct vertices may be Set concurrently.
func (b *ValueBatch) Set(v uint32, val uint32) { b.SetLane(v, 0, val) }

// GetLane returns v's value in the given lane of a lane-strided array.
func (b *ValueBatch) GetLane(v uint32, lane int) uint32 {
	ps := b.vv.dev.PageSize()
	off := (int64(v)*int64(b.vv.laneCount()) + int64(lane)) * 4
	return binary.LittleEndian.Uint32(b.pages[int(off/int64(ps))][off%int64(ps):])
}

// SetLane updates v's value in the given lane. Distinct (vertex, lane)
// slots may be set concurrently.
func (b *ValueBatch) SetLane(v uint32, lane int, val uint32) {
	ps := b.vv.dev.PageSize()
	off := (int64(v)*int64(b.vv.laneCount()) + int64(lane)) * 4
	binary.LittleEndian.PutUint32(b.pages[int(off/int64(ps))][off%int64(ps):], val)
}

// Flush writes the batch's pages back to the device in contiguous runs and
// returns the number of pages written.
func (b *ValueBatch) Flush() (int, error) {
	ps := b.vv.dev.PageSize()
	written := 0
	for i := 0; i < len(b.order); {
		j := i
		for j+1 < len(b.order) && b.order[j+1] == b.order[j]+1 {
			j++
		}
		run := make([]byte, (j-i+1)*ps)
		for k := i; k <= j; k++ {
			copy(run[(k-i)*ps:], b.pages[b.order[k]])
		}
		if err := b.vv.f.WritePageRange(b.order[i], run); err != nil {
			return written, err
		}
		written += j - i + 1
		i = j + 1
	}
	return written, nil
}

// CreateValuesFunc creates a value array of n entries where entry v is
// init(v). Used by engines to materialize per-vertex initial values.
func CreateValuesFunc(dev *ssd.Device, name string, n uint32, init func(v uint32) uint32) (*Values, error) {
	return CreateValuesLanesFunc(dev, name, n, 1, nil, func(v uint32, _ int) uint32 { return init(v) })
}

// CreateValuesLanesFunc creates a lane-strided value array: lanes slots
// per vertex, slot (v, lane) initialized to init(v, lane) and laid out
// v*lanes+lane so vertex ranges stay page-contiguous. A multi-source
// query batch gives each member query one lane over a single array — one
// value-file pass serves every query. The creation IO is attributed to sc
// when non-nil (serving runs charge setup to the issuing query batch).
func CreateValuesLanesFunc(dev *ssd.Device, name string, n uint32, lanes int, sc *ssd.IOScope, init func(v uint32, lane int) uint32) (*Values, error) {
	if lanes < 1 {
		lanes = 1
	}
	f, err := dev.OpenOrCreate(name)
	if err != nil {
		return nil, err
	}
	f = f.Scoped(sc)
	if err := f.Truncate(); err != nil {
		return nil, err
	}
	w := ssd.NewWriter(f)
	for v := uint32(0); v < n; v++ {
		for l := 0; l < lanes; l++ {
			if err := w.WriteU32(init(v, l)); err != nil {
				return nil, err
			}
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Values{dev: dev, f: f, n: n, lanes: uint32(lanes)}, nil
}
